// Figures 29-31 — Combine-Two: intensity variation when the first, second,
// and third preference is combined with every later preference, under
// AND_OR and AND semantics.
//
// Paper: intensity decays along the list but NOT monotonically — combining
// the first preference with the third can beat combining it with the second
// (Fig. 31) — and several AND combinations return nothing at all. Shapes to
// check: inversions exist among applicable combinations, and AND has empty
// results where AND_OR does not.
#include <cstdio>

#include "bench_util.h"
#include "hypre/api/session.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

void RunForUser(api::Session* session, const Workload& w, core::UserId uid,
                const char* tag) {
  core::HypreGraph graph = w.BuildGraph(uid);
  std::vector<core::PreferenceAtom> atoms = w.Atoms(graph, uid, 30);

  // Both semantics run as requests against the shared session engine; only
  // the semantics field differs between them.
  api::EnumerationRequest request;
  request.algorithm = "combine-two";
  request.base_query = w.BaseQuery();
  request.key_column = "dblp.pid";
  request.preferences = atoms;
  request.semantics = core::CombineSemantics::kAnd;
  auto and_records = Unwrap(session->Enumerate(request)).records;
  request.semantics = core::CombineSemantics::kAndOr;
  auto andor_records = Unwrap(session->Enumerate(request)).records;

  std::printf("\n=== user %s (uid=%lld, %zu preferences, %zu pairs) ===\n",
              tag, (long long)uid, atoms.size(), and_records.size());
  // Fig. 29/30: first three "anchor" preferences vs the rest; Fig. 31 is
  // the first-20 zoom of the same series.
  size_t n = atoms.size();
  size_t offset = 0;
  for (size_t anchor = 0; anchor < 3 && anchor + 1 < n; ++anchor) {
    std::printf("\n-- anchor = preference %zu (intensity %.4f) --\n", anchor,
                atoms[anchor].intensity);
    std::printf("%8s %14s %10s %14s %10s\n", "partner", "AND_OR int.",
                "#tuples", "AND int.", "#tuples");
    size_t row = 0;
    for (size_t j = anchor + 1; j < n && row < 20; ++j, ++row) {
      const auto& ao = andor_records[offset + row];
      const auto& an = and_records[offset + row];
      std::printf("%8zu %14.4f %10zu %14.4f %10zu%s\n", j, ao.intensity,
                  ao.num_tuples, an.intensity, an.num_tuples,
                  an.num_tuples == 0 ? "  <- empty under AND" : "");
    }
    offset += n - anchor - 1;
  }

  // Summary: inversions among applicable AND pairs (the Fig. 31 point).
  size_t inversions = 0;
  size_t applicable = 0;
  double last = 2.0;
  for (const auto& r : and_records) {
    if (!r.applicable()) continue;
    ++applicable;
    if (r.intensity > last) ++inversions;
    last = r.intensity;
  }
  std::printf("\napplicable AND pairs: %zu of %zu; intensity-order "
              "inversions along generation order: %zu\n",
              applicable, and_records.size(), inversions);
}

}  // namespace

int main() {
  auto w = Workload::Create();
  api::Session session(&w->db);
  std::printf("Figures 29-31: Combine-Two intensity variation\n");
  RunForUser(&session, *w, w->user_a, "A");
  RunForUser(&session, *w, w->user_b, "B");
  return 0;
}
