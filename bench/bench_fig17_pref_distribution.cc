// Figure 17 — Distribution of the number of preferences per user.
//
// Paper: a long tail — very few users with 200-1500 preferences, most with
// a handful. This bench prints a histogram of per-user preference counts;
// the shape to check is monotone-decreasing frequency with a long tail.
#include <cstdio>

#include <map>

#include "bench_util.h"

using namespace hypre;
using namespace hypre::bench;

int main() {
  auto w = Workload::Create();

  std::map<size_t, size_t> histogram;  // bucket lower bound -> users
  size_t max_count = 0;
  for (const auto& [uid, count] : w->prefs.per_user_counts) {
    max_count = std::max(max_count, count);
    size_t bucket;
    if (count < 10) {
      bucket = count;  // unit buckets for the head
    } else if (count < 100) {
      bucket = count / 10 * 10;
    } else {
      bucket = count / 100 * 100;
    }
    ++histogram[bucket];
  }

  std::printf("Figure 17: distribution of number of preferences per user\n");
  std::printf("(%zu users, max %zu preferences for one user)\n\n",
              w->prefs.per_user_counts.size(), max_count);
  std::printf("%-14s %8s  %s\n", "#preferences", "#users", "");
  for (const auto& [bucket, users] : histogram) {
    std::string label = bucket < 10
                            ? std::to_string(bucket)
                            : std::to_string(bucket) + "-" +
                                  std::to_string(bucket +
                                                 (bucket < 100 ? 9 : 99));
    int bar = static_cast<int>(60.0 * (double)users /
                               (double)w->prefs.per_user_counts.size());
    std::printf("%-14s %8zu  %.*s\n", label.c_str(), users, bar,
                "############################################################");
  }
  return 0;
}
