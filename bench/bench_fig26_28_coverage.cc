// Figures 26-28 — Growth of quantitative preferences and coverage.
//
// Paper: the graph turns qualitative preferences into quantitative ones —
// uid=2 grows from 36 to 172 usable quantitative preferences, uid=38437
// from 24 to 50 (Figs. 26/27) — and coverage over the dataset grows up to
// 336% versus quantitative-only (Fig. 28, QT / QL / QT+QL / HYPRE bars).
// Shapes to check: post-graph preference count strictly larger, HYPRE
// coverage >= QT+QL coverage with a large gain over QT alone.
#include <cstdio>

#include "bench_util.h"
#include "hypre/metrics.h"
#include "sqlparse/parser.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

void RunForUser(const Workload& w, core::UserId uid, const char* tag) {
  core::QueryEnhancer enhancer(&w.db, w.BaseQuery(), "dblp.pid");

  // Original quantitative predicates (positive intensity only, §4.3).
  std::vector<reldb::ExprPtr> qt;
  for (const auto& q : w.prefs.quantitative) {
    if (q.uid != uid || q.intensity <= 0) continue;
    qt.push_back(Unwrap(sqlparse::ParsePredicate(q.predicate)));
  }
  // Original qualitative predicates: left side always (it is preferred);
  // right side too when the strength is zero (equally preferred, §7.1.2).
  std::vector<reldb::ExprPtr> ql;
  for (const auto& q : w.prefs.qualitative) {
    if (q.uid != uid) continue;
    ql.push_back(Unwrap(sqlparse::ParsePredicate(q.left)));
    if (q.intensity == 0.0) {
      ql.push_back(Unwrap(sqlparse::ParsePredicate(q.right)));
    }
  }
  std::vector<reldb::ExprPtr> qt_ql = qt;
  qt_ql.insert(qt_ql.end(), ql.begin(), ql.end());

  // HYPRE: every positive-intensity node of the full graph.
  core::HypreGraph graph = w.BuildGraph(uid);
  core::HypreGraph quant_graph = w.BuildGraph(uid, /*with_qualitative=*/false);
  std::vector<reldb::ExprPtr> hypre_predicates;
  for (const auto& entry : graph.ListPreferences(uid)) {
    hypre_predicates.push_back(
        Unwrap(sqlparse::ParsePredicate(entry.predicate)));
  }

  size_t quant_before =
      quant_graph.ListPreferences(uid, /*include_negative=*/true).size();
  size_t quant_after =
      graph.ListPreferences(uid, /*include_negative=*/true).size();

  size_t cov_qt = Unwrap(core::Coverage(enhancer, qt));
  size_t cov_ql = Unwrap(core::Coverage(enhancer, ql));
  size_t cov_qt_ql = Unwrap(core::Coverage(enhancer, qt_ql));
  size_t cov_hypre = Unwrap(core::Coverage(enhancer, hypre_predicates));

  std::printf("\n=== user %s (uid=%lld) ===\n", tag, (long long)uid);
  std::printf("Figs. 26/27: quantitative preferences before graph = %zu, "
              "after graph = %zu (%.0f%%)\n",
              quant_before, quant_after,
              100.0 * (double)quant_after / (double)quant_before);
  std::printf("Fig. 28 coverage (distinct tuples):\n");
  std::printf("  %-12s %8zu\n", "QT", cov_qt);
  std::printf("  %-12s %8zu\n", "QL", cov_ql);
  std::printf("  %-12s %8zu\n", "QT+QL", cov_qt_ql);
  std::printf("  %-12s %8zu\n", "HYPRE_Graph", cov_hypre);
  std::printf("  HYPRE vs QT: %.0f%%   HYPRE vs QT+QL: %.0f%%\n",
              cov_qt ? 100.0 * (double)cov_hypre / (double)cov_qt : 0.0,
              cov_qt_ql ? 100.0 * (double)cov_hypre / (double)cov_qt_ql
                        : 0.0);
}

}  // namespace

int main() {
  auto w = Workload::Create();
  std::printf("Figures 26-28: preference growth and coverage\n");
  RunForUser(*w, w->user_a, "A");
  RunForUser(*w, w->user_b, "B");
  return 0;
}
