// Shared setup for the experiment-reproduction benches.
//
// Every bench reproduces one table or figure of the dissertation's
// evaluation (see DESIGN.md's per-experiment index). They share one
// synthetic-DBLP workload; HYPRE_SCALE (positive integer, default 1)
// multiplies its size.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/hypre_graph.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"
#include "reldb/database.h"
#include "workload/dblp_generator.h"
#include "workload/preference_extraction.h"

namespace hypre {
namespace bench {

inline void Die(const Status& st) {
  std::fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).TakeValue();
}

inline size_t EnvScale() {
  const char* raw = std::getenv("HYPRE_SCALE");
  if (raw == nullptr) return 1;
  long v = std::strtol(raw, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 1;
}

/// The default workload shared by the benches: scaled synthetic DBLP plus
/// the §6.2 extraction and two focal users analogous to the dissertation's
/// uid=2 (busiest profile) and uid=38437 (mid-size profile).
struct Workload {
  reldb::Database db;
  workload::DblpStats stats;
  workload::ExtractedPreferences prefs;
  core::UserId user_a = 0;  // busiest profile
  core::UserId user_b = 0;  // mid-size profile

  static workload::DblpConfig DefaultConfig() {
    workload::DblpConfig config;
    config.num_papers = 20000 * EnvScale();
    config.num_authors = 8000 * EnvScale();
    config.seed = 42;
    return config;
  }

  static std::unique_ptr<Workload> Create(
      workload::DblpConfig config = DefaultConfig()) {
    auto w = std::make_unique<Workload>();
    w->stats = Unwrap(workload::GenerateDblp(config, &w->db));
    w->prefs = Unwrap(workload::ExtractPreferences(w->db, {}));
    // Focal users mirror the paper's pair: user A (uid=2 analog) combines a
    // strong original quantitative profile with a long qualitative list;
    // user B (uid=38437 analog) is a mid-size ~50-preference profile. A
    // profile with no user-provided anchors would derive all its
    // intensities from the flat DEFAULT seed, washing out the combination
    // experiments, so both picks require a minimum anchor count.
    std::map<core::UserId, size_t> positive_counts;
    for (const auto& q : w->prefs.quantitative) {
      if (q.intensity > 0) ++positive_counts[q.uid];
    }
    auto users = w->prefs.UsersByPreferenceCount();
    if (users.empty()) Die(Status::Internal("no users extracted"));
    auto anchors = [&](core::UserId uid) {
      auto it = positive_counts.find(uid);
      return it == positive_counts.end() ? size_t{0} : it->second;
    };
    w->user_a = users.front();
    for (core::UserId uid : users) {  // descending by total count
      if (anchors(uid) >= 6) {
        w->user_a = uid;
        break;
      }
    }
    size_t best_delta = ~0ULL;
    w->user_b = users.back();
    for (core::UserId uid : users) {
      if (uid == w->user_a || anchors(uid) < 6) continue;
      size_t count = w->prefs.per_user_counts.at(uid);
      size_t delta = count > 50 ? count - 50 : 50 - count;
      if (delta < best_delta) {
        best_delta = delta;
        w->user_b = uid;
      }
    }
    return w;
  }

  /// The dissertation's base query: SELECT * FROM dblp JOIN dblp_author.
  reldb::Query BaseQuery() const {
    reldb::Query q;
    q.from = "dblp";
    q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
    return q;
  }

  /// Builds the HYPRE graph for one user (optionally quantitative-only).
  core::HypreGraph BuildGraph(core::UserId uid,
                              bool with_qualitative = true,
                              core::HypreGraphConfig config = {}) const {
    core::HypreGraph graph(config);
    for (const auto& q : prefs.quantitative) {
      if (q.uid != uid) continue;
      Status st = graph.AddQuantitative(q).status();
      if (!st.ok()) Die(st);
    }
    if (with_qualitative) {
      for (const auto& q : prefs.qualitative) {
        if (q.uid != uid) continue;
        Status st = graph.AddQualitative(q).status();
        if (!st.ok()) Die(st);
      }
    }
    return graph;
  }

  /// Positive-intensity preference atoms of a user's graph, sorted
  /// descending, optionally truncated to the strongest `cap`.
  std::vector<core::PreferenceAtom> Atoms(const core::HypreGraph& graph,
                                          core::UserId uid,
                                          size_t cap = 0) const {
    std::vector<core::PreferenceAtom> atoms;
    for (const auto& entry : graph.ListPreferences(uid)) {
      atoms.push_back(Unwrap(core::MakeAtom(entry.predicate,
                                            entry.intensity)));
    }
    core::SortByIntensityDesc(&atoms);
    if (cap > 0 && atoms.size() > cap) atoms.resize(cap);
    return atoms;
  }
};

}  // namespace bench
}  // namespace hypre
