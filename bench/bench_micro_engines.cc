// Micro-benchmarks for the embedded substrates (not a paper experiment):
// index lookups, scans, hash joins, predicate parsing/evaluation, graph
// CRUD and traversal, cypher_lite queries, and the group-level enhancement
// probe. These put numbers on the building blocks the paper-level benches
// compose, so regressions are attributable.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "bench_util.h"
#include "common/random.h"
#include "graphdb/cypher_lite.h"
#include "graphdb/traversal.h"
#include "hypre/algorithms/peps.h"
#include "hypre/api/session.h"
#include "hypre/batch_prober.h"
#include "hypre/parallel/task_pool.h"
#include "hypre/parallel/word_kernels.h"
#include "hypre/probe_engine.h"
#include "hypre/telemetry/registry.h"
#include "reldb/csv.h"
#include "sqlparse/parser.h"
#include "sqlparse/select_parser.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

struct Micro {
  std::unique_ptr<Workload> w;
  std::unique_ptr<core::QueryEnhancer> enhancer;
  reldb::ExprPtr venue_pred;
  reldb::ExprPtr mixed_pred;
  graphdb::GraphStore graph;
  std::vector<graphdb::NodeId> chain;
};

Micro* GetMicro() {
  static Micro* micro = [] {
    auto* m = new Micro();
    workload::DblpConfig config;
    config.num_papers = 10000;
    config.num_authors = 4000;
    m->w = std::make_unique<Workload>();
    m->w->stats = Unwrap(workload::GenerateDblp(config, &m->w->db));
    reldb::Query base;
    base.from = "dblp";
    base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
    m->enhancer = std::make_unique<core::QueryEnhancer>(&m->w->db, base,
                                                        "dblp.pid");
    m->venue_pred =
        Unwrap(sqlparse::ParsePredicate("dblp.venue='SIGMOD'"));
    m->mixed_pred = Unwrap(sqlparse::ParsePredicate(
        "(dblp.venue='SIGMOD' OR dblp.venue='VLDB') AND "
        "(dblp_author.aid=1 OR dblp_author.aid=2 OR dblp_author.aid=3)"));
    // A 64-node PREFERS chain for traversal benchmarks.
    Status st = m->graph.CreateIndex("uidIndex", "uid");
    if (!st.ok()) Die(st);
    for (int i = 0; i < 64; ++i) {
      graphdb::PropertyMap props;
      props["uid"] = graphdb::PropertyValue(int64_t{1});
      props["intensity"] = graphdb::PropertyValue(1.0 - i * 0.01);
      m->chain.push_back(m->graph.AddNode({"uidIndex"}, std::move(props)));
      if (i > 0) {
        (void)m->graph.AddEdge(m->chain[i - 1], m->chain[i], "PREFERS");
      }
    }
    return m;
  }();
  return micro;
}

void BM_HashIndexLookup(benchmark::State& state) {
  Micro* m = GetMicro();
  const reldb::HashIndex* idx =
      m->w->db.GetTable("dblp")->GetHashIndex("venue");
  reldb::Value key = reldb::Value::Str("SIGMOD");
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->Lookup(key).size());
  }
}
BENCHMARK(BM_HashIndexLookup);

void BM_FullScanFilter(benchmark::State& state) {
  Micro* m = GetMicro();
  reldb::Executor exec(&m->w->db);
  reldb::Query q;
  q.from = "dblp";
  q.where = Unwrap(sqlparse::ParsePredicate("year>=2005 AND year<=2007"));
  q.select = {"dblp.pid"};
  for (auto _ : state) {
    auto r = exec.Execute(q);
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_FullScanFilter)->Unit(benchmark::kMicrosecond);

void BM_HashJoinCountDistinct(benchmark::State& state) {
  Micro* m = GetMicro();
  reldb::Executor exec(&m->w->db);
  reldb::Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  q.where = m->venue_pred;
  for (auto _ : state) {
    auto r = exec.CountDistinct(q, "dblp.pid");
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_HashJoinCountDistinct)->Unit(benchmark::kMicrosecond);

void BM_PredicateParse(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sqlparse::ParsePredicate(
        "(dblp.venue='SIGMOD' OR dblp.venue='VLDB') AND year>=2005 AND "
        "dblp_author.aid IN (1, 2, 3)");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PredicateParse);

void BM_SelectParse(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sqlparse::ParseSelect(
        "SELECT count(distinct dblp.pid) FROM dblp JOIN dblp_author ON "
        "dblp.pid = dblp_author.pid WHERE dblp.venue='SIGMOD' LIMIT 10");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SelectParse);

void BM_EnhancerProbeCold(benchmark::State& state) {
  // Fresh enhancer each round: measures the real leaf probes.
  Micro* m = GetMicro();
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  for (auto _ : state) {
    core::QueryEnhancer enhancer(&m->w->db, base, "dblp.pid");
    auto r = enhancer.CountMatching(m->mixed_pred);
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_EnhancerProbeCold)->Unit(benchmark::kMicrosecond);

void BM_EnhancerProbeWarm(benchmark::State& state) {
  // Shared enhancer: leaf sets cached, probe reduces to set algebra.
  Micro* m = GetMicro();
  (void)m->enhancer->CountMatching(m->mixed_pred);
  for (auto _ : state) {
    auto r = m->enhancer->CountMatching(m->mixed_pred);
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_EnhancerProbeWarm);

// --- Bitmap vs hash-set probe ----------------------------------------------
//
// Both benchmarks evaluate the same warm probe (leaf sets already cached) so
// the measured cost is pure set algebra: the hash-set reference replays the
// intersection/union loops QueryEnhancer ran before the probe engine; the
// bitmap path is the engine's word-wise ops + popcount. The count cache is
// bypassed in both so each iteration really re-runs the algebra.

/// The legacy evaluation: leaf key sets as unordered_sets, boolean
/// combination by hash-set intersection/union/complement.
class HashSetAlgebra {
 public:
  using KeySet = std::unordered_set<reldb::Value, reldb::ValueHash>;

  HashSetAlgebra(const reldb::Database* db, reldb::Query base_query,
                 std::string key_column)
      : executor_(db),
        base_query_(std::move(base_query)),
        key_column_(std::move(key_column)) {}

  KeySet Eval(const reldb::ExprPtr& expr) {
    switch (expr->kind()) {
      case reldb::ExprKind::kAnd: {
        const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
        bool first = true;
        KeySet acc;
        for (const auto& child : nary.children()) {
          KeySet child_set = Eval(child);
          if (first) {
            acc = std::move(child_set);
            first = false;
            continue;
          }
          KeySet next;
          for (const auto& v : acc) {
            if (child_set.count(v) > 0) next.insert(v);
          }
          acc = std::move(next);
        }
        return acc;
      }
      case reldb::ExprKind::kOr: {
        const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
        KeySet acc;
        for (const auto& child : nary.children()) {
          KeySet child_set = Eval(child);
          acc.insert(child_set.begin(), child_set.end());
        }
        return acc;
      }
      default: {
        // Leaf: cached probe, same as the old enhancer.
        std::string key = expr->ToString();
        auto it = leaf_cache_.find(key);
        if (it == leaf_cache_.end()) {
          reldb::Query query = base_query_;
          query.where =
              query.where ? reldb::MakeAnd(query.where, expr) : expr;
          auto keys = Unwrap(executor_.DistinctValues(query, key_column_));
          it = leaf_cache_
                   .emplace(std::move(key), KeySet(keys.begin(), keys.end()))
                   .first;
        }
        return it->second;
      }
    }
  }

 private:
  reldb::Executor executor_;
  reldb::Query base_query_;
  std::string key_column_;
  std::unordered_map<std::string, KeySet> leaf_cache_;
};

void BM_ProbeAlgebraHashSet(benchmark::State& state) {
  Micro* m = GetMicro();
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  HashSetAlgebra reference(&m->w->db, base, "dblp.pid");
  (void)reference.Eval(m->mixed_pred);  // warm the leaf cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference.Eval(m->mixed_pred).size());
  }
}
BENCHMARK(BM_ProbeAlgebraHashSet)->Unit(benchmark::kMicrosecond);

void BM_ProbeAlgebraBitmap(benchmark::State& state) {
  Micro* m = GetMicro();
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  core::ProbeEngine engine(&m->w->db, base, "dblp.pid");
  (void)engine.EvalBitmap(m->mixed_pred);  // warm the leaf bitmaps
  for (auto _ : state) {
    auto bits = engine.EvalBitmap(m->mixed_pred);
    benchmark::DoNotOptimize(bits->Count());
  }
}
BENCHMARK(BM_ProbeAlgebraBitmap)->Unit(benchmark::kMicrosecond);

// --- Batch vs scalar combination probing ------------------------------------
//
// The batch layer pays off when the frontier's leaf bitmaps exceed cache:
// scalar probing re-streams whole bitmaps per probe, the batch path keeps
// one shard of every leaf cache-resident while all pending combinations
// consume it. So these benches run on their own larger workload — a
// 400k-paper universe (~6250 words, ~50 KB per leaf bitmap, ~2.4 MB for the
// 48 preference leaves: past L2 on this box). The frontier benchmarks probe
// the same 512 mixed combinations scalar vs one CountBatch; the pair-table
// benchmarks rebuild the PEPS pair table (the C(48,2) upper triangle); the
// Cold variants use a fresh engine per iteration, so they include leaf
// loading — 48 on-demand leaf queries scalar vs one bulk prefetch pass
// batched.

struct BatchBench {
  std::unique_ptr<Workload> w;
  std::unique_ptr<core::QueryEnhancer> enhancer;
  reldb::Query base;
  std::vector<core::PreferenceAtom> atoms;
  std::unique_ptr<core::Combiner> combiner;
  std::unique_ptr<core::CombinationProber> prober;
  std::vector<core::Combination> frontier;
};

BatchBench* GetBatchBench() {
  static BatchBench* bench = [] {
    auto* b = new BatchBench();
    workload::DblpConfig config;
    config.num_papers = 400000;
    config.num_authors = 40000;
    config.max_authors_per_paper = 2;
    config.avg_citations_per_paper = 0.0;  // citations are not probed here
    b->w = std::make_unique<Workload>();
    b->w->stats = Unwrap(workload::GenerateDblp(config, &b->w->db));
    b->base.from = "dblp";
    b->base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
    b->enhancer = std::make_unique<core::QueryEnhancer>(&b->w->db, b->base,
                                                        "dblp.pid");
    auto add = [&](const std::string& pred, double intensity) {
      b->atoms.push_back(Unwrap(core::MakeAtom(pred, intensity)));
    };
    for (int aid = 1; aid <= 40; ++aid) {
      add("dblp_author.aid=" + std::to_string(aid), 0.9 - aid * 0.01);
    }
    const char* venues[] = {"SIGMOD", "VLDB",     "PVLDB", "PODS",
                            "ICDE",   "CIKM",     "KDD",   "INFOCOM"};
    for (int v = 0; v < 8; ++v) {
      add(std::string("dblp.venue='") + venues[v] + "'", 0.85 - v * 0.01);
    }
    core::SortByIntensityDesc(&b->atoms);
    b->combiner = std::make_unique<core::Combiner>(&b->atoms);
    b->prober = std::make_unique<core::CombinationProber>(
        b->combiner.get(), &b->enhancer->probe_engine());
    Status st = b->prober->PrefetchAll();
    if (!st.ok()) Die(st);
    Rng rng(7);
    for (int i = 0; i < 512; ++i) {
      size_t size = 2 + rng.NextBounded(3);
      std::set<size_t> members;
      while (members.size() < size) members.insert(rng.NextBounded(48));
      b->frontier.push_back(b->combiner->MixedClause(
          std::vector<size_t>(members.begin(), members.end())));
    }
    return b;
  }();
  return bench;
}

void BM_FrontierProbeScalar(benchmark::State& state) {
  BatchBench* b = GetBatchBench();
  for (auto _ : state) {
    size_t total = 0;
    for (const core::Combination& c : b->frontier) {
      total += b->prober->Count(c).value();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FrontierProbeScalar)->Unit(benchmark::kMicrosecond);

void BM_FrontierProbeBatch(benchmark::State& state) {
  BatchBench* b = GetBatchBench();
  core::ProbeOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  core::BatchProber batch(b->prober.get(), options);
  for (auto _ : state) {
    auto counts = batch.CountBatch(b->frontier);
    benchmark::DoNotOptimize(counts->size());
  }
}
BENCHMARK(BM_FrontierProbeBatch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// --- Work-stealing runtime + SIMD word kernels -------------------------------
//
// The scaling benches pit the PR 2 static split against the work-stealing
// TaskPool on the same 512-combination frontier (uniform) and on a skewed
// frontier (many 1-member combinations plus a block of 48-member ones) where
// static per-tile seeding is maximally unbalanced. Arg(0) = num_threads; the
// pool is a persistent 8-slot TaskPool so >hardware_concurrency thread
// counts still exercise real stealing on small machines. The kernel benches
// isolate the SIMD word loops (scalar vs compiled-in best) on a bitmap-sized
// buffer so the speedup is attributable separately from scheduling.

parallel::TaskPool* BenchPool() {
  static parallel::TaskPool pool(7);  // 7 workers + caller = 8 slots
  return &pool;
}

const std::vector<core::Combination>* GetSkewedFrontier() {
  static const std::vector<core::Combination>* frontier = [] {
    BatchBench* b = GetBatchBench();
    auto* f = new std::vector<core::Combination>();
    std::vector<size_t> all;
    for (size_t k = 0; k < b->atoms.size(); ++k) all.push_back(k);
    // 448 cheap singles + 64 full-width clauses, interleaved so consecutive
    // tiles alternate between light and heavy work.
    for (int i = 0; i < 512; ++i) {
      if (i % 8 == 7) {
        f->push_back(b->combiner->MixedClause(all));
      } else {
        f->push_back(b->combiner->Single(i % b->atoms.size()));
      }
    }
    return f;
  }();
  return frontier;
}

void RunFrontierScheduled(benchmark::State& state,
                          core::ProbeScheduler scheduler, bool simd,
                          bool skewed) {
  BatchBench* b = GetBatchBench();
  core::ProbeOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.scheduler = scheduler;
  options.simd = simd;
  if (options.num_threads != 1) options.pool = BenchPool();
  core::BatchProber batch(b->prober.get(), options);
  const std::vector<core::Combination>& frontier =
      skewed ? *GetSkewedFrontier() : b->frontier;
  for (auto _ : state) {
    auto counts = batch.CountBatch(frontier);
    benchmark::DoNotOptimize(counts->size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * frontier.size()));
}

void BM_FrontierStaticSplit(benchmark::State& state) {
  RunFrontierScheduled(state, core::ProbeScheduler::kStaticSplit,
                       /*simd=*/true, /*skewed=*/false);
}
void BM_FrontierWorkStealing(benchmark::State& state) {
  RunFrontierScheduled(state, core::ProbeScheduler::kWorkStealing,
                       /*simd=*/true, /*skewed=*/false);
}
void BM_FrontierWorkStealingScalar(benchmark::State& state) {
  RunFrontierScheduled(state, core::ProbeScheduler::kWorkStealing,
                       /*simd=*/false, /*skewed=*/false);
}
void BM_SkewedFrontierStaticSplit(benchmark::State& state) {
  RunFrontierScheduled(state, core::ProbeScheduler::kStaticSplit,
                       /*simd=*/true, /*skewed=*/true);
}
void BM_SkewedFrontierWorkStealing(benchmark::State& state) {
  RunFrontierScheduled(state, core::ProbeScheduler::kWorkStealing,
                       /*simd=*/true, /*skewed=*/true);
}
BENCHMARK(BM_FrontierStaticSplit)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FrontierWorkStealing)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FrontierWorkStealingScalar)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SkewedFrontierStaticSplit)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SkewedFrontierWorkStealing)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Kernel-level: one probe-shaped pass (AND two leaf bitmaps, count bits)
// over a buffer the size of the 400k-key universe bitmap, scalar vs the
// build's best compiled kernels. Bytes/sec makes the memory-bound ceiling
// visible.
void RunAndCountKernel(benchmark::State& state,
                       const parallel::WordKernels& kn) {
  constexpr size_t kWords = 400000 / 64 + 1;
  std::vector<uint64_t> a(kWords), b(kWords);
  Rng rng(11);
  for (size_t i = 0; i < kWords; ++i) {
    a[i] = rng.Next();
    b[i] = rng.Next();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kn.and_count(a.data(), b.data(), kWords));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * kWords * 2 * sizeof(uint64_t)));
  state.SetLabel(kn.name);
}

void BM_AndCountKernelScalar(benchmark::State& state) {
  RunAndCountKernel(state, parallel::ScalarWordKernels());
}
void BM_AndCountKernelActive(benchmark::State& state) {
  RunAndCountKernel(state, parallel::ActiveWordKernels());
}
BENCHMARK(BM_AndCountKernelScalar);
BENCHMARK(BM_AndCountKernelActive);

void RunPopcountKernel(benchmark::State& state,
                       const parallel::WordKernels& kn) {
  constexpr size_t kWords = 400000 / 64 + 1;
  std::vector<uint64_t> a(kWords);
  Rng rng(13);
  for (size_t i = 0; i < kWords; ++i) a[i] = rng.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kn.popcount(a.data(), kWords));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * kWords * sizeof(uint64_t)));
  state.SetLabel(kn.name);
}

void BM_PopcountKernelScalar(benchmark::State& state) {
  RunPopcountKernel(state, parallel::ScalarWordKernels());
}
void BM_PopcountKernelActive(benchmark::State& state) {
  RunPopcountKernel(state, parallel::ActiveWordKernels());
}
BENCHMARK(BM_PopcountKernelScalar);
BENCHMARK(BM_PopcountKernelActive);

void RunPairTable(benchmark::State& state, bool batching, bool cold,
                  size_t num_threads = 1) {
  BatchBench* b = GetBatchBench();
  core::ProbeOptions options;
  options.batching = batching;
  options.num_threads = num_threads;
  if (num_threads != 1) options.pool = BenchPool();
  for (auto _ : state) {
    std::unique_ptr<core::QueryEnhancer> fresh;
    const core::QueryEnhancer* enhancer = b->enhancer.get();
    if (cold) {
      fresh = std::make_unique<core::QueryEnhancer>(&b->w->db, b->base,
                                                    "dblp.pid");
      enhancer = fresh.get();
    }
    core::Peps peps(&b->atoms, enhancer, options);
    Status st = peps.PrecomputePairs();
    if (!st.ok()) {
      state.SkipWithError("precompute failed");
      return;
    }
    benchmark::DoNotOptimize(peps.pairs().size());
  }
}

void BM_PepsPairTableScalar(benchmark::State& state) {
  RunPairTable(state, /*batching=*/false, /*cold=*/false);
}
void BM_PepsPairTableBatch(benchmark::State& state) {
  RunPairTable(state, /*batching=*/true, /*cold=*/false);
}
void BM_PepsPairTableColdScalar(benchmark::State& state) {
  RunPairTable(state, /*batching=*/false, /*cold=*/true);
}
void BM_PepsPairTableColdBatch(benchmark::State& state) {
  RunPairTable(state, /*batching=*/true, /*cold=*/true);
}
void BM_PepsPairTableColdBatchWS(benchmark::State& state) {
  // Cold pair table on the work-stealing pool: bulk leaf prefetch
  // first-touches the bitmaps on the pool's workers, then the C(48,2)
  // pair-count batch fans out over the same slots.
  RunPairTable(state, /*batching=*/true, /*cold=*/true, /*num_threads=*/8);
}
BENCHMARK(BM_PepsPairTableScalar)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PepsPairTableBatch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PepsPairTableColdScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PepsPairTableColdBatch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PepsPairTableColdBatchWS)->Unit(benchmark::kMillisecond);

// --- Update throughput: incremental Refresh vs full rebuild -----------------
//
// The delta subsystem's contract: after base-table mutations, an
// incremental ProbeEngine::Refresh() must beat tearing the engine down and
// rebuilding it (full universe scan + bulk leaf prefetch) on small deltas.
// Each iteration applies a churn batch — Arg(0)/2 appended papers (with one
// author link each) and the same number of deleted papers — then brings a
// warm engine back to a probe-ready state either incrementally (Refresh;
// the shared prober re-derives its bitmaps from the patched caches) or from
// scratch (fresh QueryEnhancer + PrefetchAll). One representative
// combination probe closes each iteration so both variants end probe-ready.
// items_per_second == mutations absorbed per second.

struct DeltaBench {
  std::unique_ptr<Workload> w;
  reldb::Query base;
  std::unique_ptr<core::QueryEnhancer> enhancer;
  std::unique_ptr<api::Session> session;
  std::vector<core::PreferenceAtom> atoms;
  std::unique_ptr<core::Combiner> combiner;
  std::unique_ptr<core::CombinationProber> prober;
  core::Combination probe_combo;
  int64_t next_pid = 0;
  Rng rng{17};
};

DeltaBench* GetDeltaBench() {
  static DeltaBench* bench = [] {
    auto* b = new DeltaBench();
    workload::DblpConfig config;
    config.num_papers = 100000;
    config.num_authors = 10000;
    config.max_authors_per_paper = 2;
    config.avg_citations_per_paper = 0.0;
    b->w = std::make_unique<Workload>();
    b->w->stats = Unwrap(workload::GenerateDblp(config, &b->w->db));
    b->next_pid = static_cast<int64_t>(config.num_papers);
    b->base.from = "dblp";
    b->base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
    b->enhancer = std::make_unique<core::QueryEnhancer>(&b->w->db, b->base,
                                                        "dblp.pid");
    auto add = [&](const std::string& pred, double intensity) {
      b->atoms.push_back(Unwrap(core::MakeAtom(pred, intensity)));
    };
    for (int aid = 1; aid <= 16; ++aid) {
      add("dblp_author.aid=" + std::to_string(aid), 0.9 - aid * 0.01);
    }
    const char* venues[] = {"SIGMOD", "VLDB", "PVLDB", "PODS",
                            "ICDE",   "CIKM", "KDD",   "INFOCOM"};
    for (int v = 0; v < 8; ++v) {
      add(std::string("dblp.venue='") + venues[v] + "'", 0.85 - v * 0.01);
    }
    core::SortByIntensityDesc(&b->atoms);
    b->combiner = std::make_unique<core::Combiner>(&b->atoms);
    b->prober = std::make_unique<core::CombinationProber>(
        b->combiner.get(), &b->enhancer->probe_engine());
    Status st = b->prober->PrefetchAll();
    if (!st.ok()) Die(st);
    b->probe_combo = b->combiner->MixedClause({0, 5, 20});
    b->session = std::make_unique<api::Session>(&b->w->db);
    return b;
  }();
  return bench;
}

// --- Facade overhead: Session::Enumerate vs direct algorithm call -----------
//
// Both benchmarks run the identical PEPS workload — construct a Peps over
// the 24 warm, prefetched preference leaves and GenerateOrder (dominated by
// the C(24,2) batched pair table) — against the 100k-paper database. The
// Direct variant calls the algorithm on a long-lived QueryEnhancer the way
// pre-API call sites did; the Session variant goes through the full unified
// API path: registry lookup by name, enhancer-cache hit, no-op Refresh
// (epoch pin), preference copy + sort, leaf-prefetch dedup, and the
// per-request ProbeStats delta. The difference is the facade tax on a warm
// request (acceptance: <= 5%). Registered BEFORE the churn benches so both
// variants see the same un-mutated tables.

void BM_PepsOrderWarmDirect(benchmark::State& state) {
  DeltaBench* b = GetDeltaBench();
  for (auto _ : state) {
    core::Peps peps(&b->atoms, b->enhancer.get(), core::ProbeOptions{});
    auto order = peps.GenerateOrder(core::PepsMode::kComplete);
    if (!order.ok()) {
      state.SkipWithError("direct GenerateOrder failed");
      return;
    }
    benchmark::DoNotOptimize(order->size());
  }
}
BENCHMARK(BM_PepsOrderWarmDirect)->Unit(benchmark::kMicrosecond);

void BM_PepsOrderWarmSession(benchmark::State& state) {
  DeltaBench* b = GetDeltaBench();
  api::EnumerationRequest request;
  request.algorithm = "peps";
  request.base_query = b->base;
  request.key_column = "dblp.pid";
  request.preferences = b->atoms;
  // Warm the session's cached engine (universe + leaves) untimed.
  if (!b->session->Enumerate(request).ok()) {
    state.SkipWithError("session warmup failed");
    return;
  }
  for (auto _ : state) {
    auto result = b->session->Enumerate(request);
    if (!result.ok()) {
      state.SkipWithError("session Enumerate failed");
      return;
    }
    benchmark::DoNotOptimize(result->records.size());
  }
}
BENCHMARK(BM_PepsOrderWarmSession)->Unit(benchmark::kMicrosecond);

void BM_PepsOrderWarmSessionTraced(benchmark::State& state) {
  // The same warm request with a per-request span trace attached — the
  // telemetry overhead acceptance pits this (and the untraced Session
  // variant under -DHYPRE_TELEMETRY=ON) against an OFF build.
  DeltaBench* b = GetDeltaBench();
  api::EnumerationRequest request;
  request.algorithm = "peps";
  request.base_query = b->base;
  request.key_column = "dblp.pid";
  request.preferences = b->atoms;
  request.trace = true;
  if (!b->session->Enumerate(request).ok()) {
    state.SkipWithError("session warmup failed");
    return;
  }
  for (auto _ : state) {
    auto result = b->session->Enumerate(request);
    if (!result.ok()) {
      state.SkipWithError("session Enumerate failed");
      return;
    }
    benchmark::DoNotOptimize(result->records.size());
    benchmark::DoNotOptimize(result->trace.spans().size());
  }
}
BENCHMARK(BM_PepsOrderWarmSessionTraced)->Unit(benchmark::kMicrosecond);

// --- Concurrent serving: many clients, one session, one engine --------------
//
// The multi-tenant stress bench: N client threads each answering the warm
// 24-preference PEPS request against the SAME session and cached engine,
// every result checked byte-for-byte against a serial baseline computed
// before the threads start. Each client probes single-threaded (the
// many-client serving model: parallelism comes from requests, not from
// splitting one request), so read throughput should scale near-linearly
// with clients until the cores run out — the engine's shared state is
// reader-reader only (shared_mutex cache reads, atomic counters, epoch
// pins). items_per_second == requests/s across all client threads. Any
// divergence from the serial digest flips a global flag that turns the
// whole bench run's exit code nonzero, so CI fails loudly rather than
// shipping a wrong-results regression as a timing artifact. Registered
// BEFORE the churn benches: these clients must see un-mutated tables.

std::atomic<bool> g_serving_divergence{false};

api::EnumerationRequest ServingRequest() {
  DeltaBench* b = GetDeltaBench();
  api::EnumerationRequest request;
  request.algorithm = "peps";
  request.base_query = b->base;
  request.key_column = "dblp.pid";
  request.preferences = b->atoms;
  request.probe_options.num_threads = 1;
  return request;
}

std::string ServingDigest(const api::EnumerationResult& result) {
  std::string out;
  out.reserve(result.records.size() * 48);
  for (const auto& rec : result.records) {
    out += rec.predicate_sql;
    out += '|';
    out += std::to_string(rec.num_tuples);
    out += '|';
    out += std::to_string(rec.intensity);
    out += '\n';
  }
  return out;
}

const std::string& ServingSerialBaseline() {
  // Magic static: the first bench thread computes the serial baseline while
  // every other thread blocks on the initializer, so the reference request
  // runs with no concurrency and warms the session's engine untimed.
  static const std::string* digest = [] {
    DeltaBench* b = GetDeltaBench();
    auto result = b->session->Enumerate(ServingRequest());
    if (!result.ok()) Die(result.status());
    return new std::string(ServingDigest(*result));
  }();
  return *digest;
}

void BM_ConcurrentServing(benchmark::State& state) {
  const std::string& baseline = ServingSerialBaseline();
  DeltaBench* b = GetDeltaBench();
  api::EnumerationRequest request = ServingRequest();
  for (auto _ : state) {
    auto result = b->session->Enumerate(request);
    if (!result.ok()) {
      g_serving_divergence.store(true);
      state.SkipWithError("concurrent Enumerate failed");
      return;
    }
    if (ServingDigest(*result) != baseline) {
      g_serving_divergence.store(true);
      state.SkipWithError("concurrent result diverged from serial baseline");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentServing)
    ->Threads(1)
    ->Threads(2)
    ->Threads(8)
    ->Threads(64)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

/// Appends `n/2` papers (+1 author link each) and deletes `n/2` random live
/// papers from the bench tables.
void ApplyChurn(DeltaBench* b, size_t n) {
  static const char* venues[] = {"SIGMOD", "VLDB", "PVLDB", "PODS"};
  reldb::Table* dblp = b->w->db.GetTable("dblp");
  reldb::Table* da = b->w->db.GetTable("dblp_author");
  for (size_t i = 0; i < n / 2; ++i) {
    int64_t pid = b->next_pid++;
    dblp->AppendUnchecked(reldb::Row{
        reldb::Value::Int(pid), reldb::Value::Str("Paper"),
        reldb::Value::Int(2026), reldb::Value::Str(venues[b->rng.NextBounded(4)])});
    da->AppendUnchecked(reldb::Row{
        reldb::Value::Int(pid),
        reldb::Value::Int(1 + static_cast<int64_t>(b->rng.NextBounded(32)))});
  }
  for (size_t i = 0; i < n / 2; ++i) {
    for (int attempts = 0; attempts < 64; ++attempts) {
      reldb::RowId id = b->rng.NextBounded(dblp->num_rows());
      if (!dblp->is_deleted(id)) {
        Status st = dblp->Delete(id);
        if (!st.ok()) Die(st);
        break;
      }
    }
  }
}

void BM_UpdateChurnIncrementalRefresh(benchmark::State& state) {
  DeltaBench* b = GetDeltaBench();
  size_t churn = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ApplyChurn(b, churn);
    state.ResumeTiming();
    auto epoch = b->enhancer->Refresh();
    if (!epoch.ok()) Die(epoch.status());
    benchmark::DoNotOptimize(b->prober->Count(b->probe_combo).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * churn));
}
BENCHMARK(BM_UpdateChurnIncrementalRefresh)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_UpdateChurnFullRebuild(benchmark::State& state) {
  DeltaBench* b = GetDeltaBench();
  size_t churn = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ApplyChurn(b, churn);
    state.ResumeTiming();
    core::QueryEnhancer fresh(&b->w->db, b->base, "dblp.pid");
    core::CombinationProber prober(b->combiner.get(), &fresh.probe_engine());
    Status st = prober.PrefetchAll();
    if (!st.ok()) Die(st);
    benchmark::DoNotOptimize(prober.Count(b->probe_combo).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * churn));
}
BENCHMARK(BM_UpdateChurnFullRebuild)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// --- Durable storage: cold CSV start vs warm snapshot start -----------------
//
// The restart story the storage subsystem exists for. Both benchmarks end in
// the same place — an api::Session over the 100k-paper universe that has
// answered one PEPS request — starting from nothing but bytes on disk. The
// cold variant re-derives everything a pre-storage restart had to: CSV parse
// and journaled appends for all four tables, index builds, universe
// interning, and the 24 leaf queries. The warm variant reopens the
// checkpoint the fixture wrote once: dictionary, leaf bitmaps, and catalog
// come back from checksummed binary sections with no base-table scans.
// Acceptance (ISSUE 7): warm >= 5x faster than cold (BENCH_storage.json).

struct StorageBench {
  std::string store_dir;
  std::vector<std::pair<std::string, std::string>> csv_files;  // table, path
  std::vector<core::PreferenceAtom> atoms;
  api::EnumerationRequest request;
};

StorageBench* GetStorageBench() {
  static StorageBench* bench = [] {
    auto* b = new StorageBench();
    char tmpl[] = "/tmp/hypre_bench_storage_XXXXXX";
    char* root_raw = ::mkdtemp(tmpl);
    if (root_raw == nullptr) Die(Status::Internal("mkdtemp failed"));
    std::string root = root_raw;
    b->store_dir = root + "/store";

    auto db = std::make_unique<reldb::Database>();
    workload::DblpConfig config;
    config.num_papers = 100000;
    config.num_authors = 10000;
    config.max_authors_per_paper = 2;
    config.avg_citations_per_paper = 0.0;
    config.seed = 42;
    (void)Unwrap(workload::GenerateDblp(config, db.get()));

    // The cold path's input: one CSV dump per table.
    for (const std::string& name : db->TableNames()) {
      std::string path = root + "/" + name + ".csv";
      std::ofstream out(path);
      Status st = reldb::WriteCsv(*db->GetTable(name), &out);
      if (!st.ok()) Die(st);
      out.close();
      if (!out.good()) Die(Status::Internal("CSV dump failed: " + path));
      b->csv_files.emplace_back(name, path);
    }

    // The request both variants answer — same shape as DeltaBench's.
    auto add = [&](const std::string& pred, double intensity) {
      b->atoms.push_back(Unwrap(core::MakeAtom(pred, intensity)));
    };
    for (int aid = 1; aid <= 16; ++aid) {
      add("dblp_author.aid=" + std::to_string(aid), 0.9 - aid * 0.01);
    }
    const char* venues[] = {"SIGMOD", "VLDB", "PVLDB", "PODS",
                            "ICDE",   "CIKM", "KDD",   "INFOCOM"};
    for (int v = 0; v < 8; ++v) {
      add(std::string("dblp.venue='") + venues[v] + "'", 0.85 - v * 0.01);
    }
    core::SortByIntensityDesc(&b->atoms);
    b->request.algorithm = "peps";
    b->request.base_query.from = "dblp";
    b->request.base_query.joins.push_back({"dblp_author", "dblp.pid", "pid"});
    b->request.key_column = "dblp.pid";
    b->request.preferences = b->atoms;

    // The warm path's input: one checkpoint. The untimed Enumerate warms
    // the engine (universe + the 24 leaves) so the snapshot captures it.
    api::Session session(std::move(db));
    auto warmup = session.Enumerate(b->request);
    if (!warmup.ok()) Die(warmup.status());
    Status st = session.AttachStorage(b->store_dir);
    if (!st.ok()) Die(st);
    return b;
  }();
  return bench;
}

void BM_ColdStartFromCsv(benchmark::State& state) {
  StorageBench* b = GetStorageBench();
  using reldb::ValueType;
  for (auto _ : state) {
    // Recreate the schemas the synthetic generator uses, reload every table
    // from its CSV dump (journaled appends), rebuild the indexes, then
    // answer the request — universe interning and leaf prefetch included.
    auto db = std::make_unique<reldb::Database>();
    reldb::Table* dblp = Unwrap(db->CreateTable(
        "dblp", reldb::Schema({{"pid", ValueType::kInt64},
                               {"title", ValueType::kString},
                               {"year", ValueType::kInt64},
                               {"venue", ValueType::kString}})));
    reldb::Table* author = Unwrap(db->CreateTable(
        "author", reldb::Schema({{"aid", ValueType::kInt64},
                                 {"name", ValueType::kString}})));
    reldb::Table* dblp_author = Unwrap(db->CreateTable(
        "dblp_author", reldb::Schema({{"pid", ValueType::kInt64},
                                      {"aid", ValueType::kInt64}})));
    reldb::Table* citation = Unwrap(db->CreateTable(
        "citation", reldb::Schema({{"pid", ValueType::kInt64},
                                   {"cid", ValueType::kInt64}})));
    for (const auto& entry : b->csv_files) {
      (void)Unwrap(
          reldb::AppendCsvFile(entry.second, db->GetTable(entry.first)));
    }
    auto index = [&](Status st) {
      if (!st.ok()) Die(st);
    };
    index(dblp->CreateHashIndex("pid"));
    index(dblp->CreateHashIndex("venue"));
    index(dblp->CreateOrderedIndex("year"));
    index(dblp_author->CreateHashIndex("pid"));
    index(dblp_author->CreateHashIndex("aid"));
    index(citation->CreateHashIndex("pid"));
    index(author->CreateHashIndex("aid"));
    api::Session session(std::move(db));
    auto result = session.Enumerate(b->request);
    if (!result.ok()) {
      state.SkipWithError("cold Enumerate failed");
      return;
    }
    benchmark::DoNotOptimize(result->records.size());
  }
}
BENCHMARK(BM_ColdStartFromCsv)->Unit(benchmark::kMillisecond);

void BM_WarmStartFromSnapshot(benchmark::State& state) {
  StorageBench* b = GetStorageBench();
  for (auto _ : state) {
    auto reopened = api::Session::OpenFromSnapshot(b->store_dir);
    if (!reopened.ok()) {
      state.SkipWithError("OpenFromSnapshot failed");
      return;
    }
    auto session = std::move(reopened).TakeValue();
    auto result = session->Enumerate(b->request);
    if (!result.ok()) {
      state.SkipWithError("warm Enumerate failed");
      return;
    }
    benchmark::DoNotOptimize(result->records.size());
  }
}
BENCHMARK(BM_WarmStartFromSnapshot)->Unit(benchmark::kMillisecond);

void BM_GraphAddNode(benchmark::State& state) {
  graphdb::GraphStore store;
  (void)store.CreateIndex("uidIndex", "uid");
  int64_t i = 0;
  for (auto _ : state) {
    graphdb::PropertyMap props;
    props["uid"] = graphdb::PropertyValue(i++ % 1024);
    benchmark::DoNotOptimize(store.AddNode({"uidIndex"}, std::move(props)));
  }
}
BENCHMARK(BM_GraphAddNode);

void BM_GraphHasPathChain(benchmark::State& state) {
  Micro* m = GetMicro();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphdb::HasPath(
        m->graph, m->chain.front(), m->chain.back(), "PREFERS"));
  }
}
BENCHMARK(BM_GraphHasPathChain)->Unit(benchmark::kMicrosecond);

void BM_CypherProfileListing(benchmark::State& state) {
  Micro* m = GetMicro();
  for (auto _ : state) {
    auto r = graphdb::RunCypher(
        m->graph,
        "START n=node(*) WHERE n.uid=1 RETURN n.intensity "
        "ORDER BY n.intensity DESC LIMIT 10");
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_CypherProfileListing)->Unit(benchmark::kMicrosecond);

}  // namespace

// Standard benchmark main plus an optional registry dump: when
// HYPRE_TELEMETRY_DUMP names a file, everything the benchmarks just pushed
// through the metrics registry (request counters, batch-shape histograms,
// scheduler gauges) is written there as JSON after the run — CI uploads it
// as an artifact next to the timing output.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (g_serving_divergence.load()) {
    std::fprintf(stderr,
                 "concurrent serving produced results diverging from the "
                 "serial baseline\n");
    return 1;
  }
  if (const char* dump_path = std::getenv("HYPRE_TELEMETRY_DUMP")) {
    BenchPool()->PublishStats();
    std::ofstream out(dump_path);
    out << telemetry::MetricsRegistry::Global().ToJson() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write telemetry dump to %s\n",
                   dump_path);
      return 1;
    }
  }
  return 0;
}
