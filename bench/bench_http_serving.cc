// HTTP serving bench: requests/sec and tail latency through the full REST
// stack — socket, framing, JSON decode, admission, warm enumeration, JSON
// encode — against the 100k-paper universe (see BENCH_server.json for the
// recorded numbers; the CI server-integration job re-runs this as
// BENCH_server.ci.json).
//
// Each bench thread is one keep-alive client connection firing the warm
// 24-preference PEPS request (the same request BM_PepsOrderWarmSession
// times WITHOUT the network) at a loopback HttpServer whose tenant holds
// the synthetic 100k-paper DBLP network. items_per_second is end-to-end
// requests/sec; the p95_us counter is the per-thread 95th-percentile
// request latency (averaged across threads). Comparing against the
// session-only bench isolates the serving tax: framing + codec + one
// round-trip on loopback.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/json.h"
#include "hypre/server/http.h"
#include "hypre/server/server.h"
#include "hypre/server/service.h"
#include "hypre/server/tenant.h"

namespace hypre {
namespace bench {
namespace {

using server::ConnectTcp;
using server::HttpServer;
using server::HttpServerOptions;
using server::SendHttpRequest;
using server::Service;
using server::ServiceOptions;
using server::TenantManager;
using server::TenantManagerOptions;
using server::TenantSpec;

constexpr size_t kPapers = 100000;

struct ServingStack {
  std::unique_ptr<TenantManager> tenants;
  std::unique_ptr<Service> service;
  std::unique_ptr<HttpServer> server;
  std::string request_body;
};

void Die(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

/// The warm serving request: the 24-preference complete-PEPS order the
/// micro bench times directly (16 author leaves + 8 venue leaves).
std::string BuildRequestBody() {
  Json body = Json::Object();
  body.Set("algorithm", Json::Str("peps"));
  body.Set("base_query",
           Json::Str("SELECT * FROM dblp JOIN dblp_author ON dblp.pid = "
                     "dblp_author.pid"));
  body.Set("key_column", Json::Str("dblp.pid"));
  Json prefs = Json::Array();
  auto add = [&](const std::string& predicate, double intensity) {
    Json p = Json::Object();
    p.Set("predicate", Json::Str(predicate));
    p.Set("intensity", Json::Double(intensity));
    prefs.Append(std::move(p));
  };
  for (int aid = 1; aid <= 16; ++aid) {
    add("dblp_author.aid=" + std::to_string(aid), 0.9 - aid * 0.01);
  }
  const char* venues[] = {"SIGMOD", "VLDB", "PVLDB", "PODS",
                          "ICDE",   "CIKM", "KDD",   "INFOCOM"};
  for (int v = 0; v < 8; ++v) {
    add(std::string("dblp.venue='") + venues[v] + "'", 0.85 - v * 0.01);
  }
  body.Set("preferences", std::move(prefs));
  // Warm repeats must stay pure reads: no refresh, no epoch churn.
  body.Set("refresh", Json::Bool(false));
  return body.Dump();
}

ServingStack* GetStack() {
  static ServingStack* stack = [] {
    auto* s = new ServingStack();
    TenantSpec spec;
    spec.name = "bench";
    spec.synthetic_papers = kPapers;
    spec.synthetic_seed = 42;
    s->tenants = std::make_unique<TenantManager>(
        std::vector<TenantSpec>{spec}, TenantManagerOptions{});
    s->service = std::make_unique<Service>(s->tenants.get(), ServiceOptions{});
    HttpServerOptions options;
    options.num_workers = 64;  // never the bottleneck for <=32 clients
    s->server = std::make_unique<HttpServer>(s->service.get(), options);
    Status started = s->server->Start();
    if (!started.ok()) Die("server start", started);
    s->request_body = BuildRequestBody();
    // One untimed request loads the tenant (100k-paper synthesis) and
    // warms the session's cached engine + probe caches.
    auto fd = ConnectTcp("127.0.0.1", s->server->port());
    if (!fd.ok()) Die("warmup connect", fd.status());
    auto reply = SendHttpRequest(*fd, "POST", "/v1/bench/enumerate",
                                 s->request_body);
    ::close(*fd);
    if (!reply.ok()) Die("warmup request", reply.status());
    if (reply->status != 200) {
      std::fprintf(stderr, "warmup request got %d: %s\n", reply->status,
                   reply->body.c_str());
      std::exit(1);
    }
    return s;
  }();
  return stack;
}

void BM_HttpServing(benchmark::State& state) {
  ServingStack* stack = GetStack();
  auto fd = ConnectTcp("127.0.0.1", stack->server->port());
  if (!fd.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  std::vector<double> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto reply = SendHttpRequest(*fd, "POST", "/v1/bench/enumerate",
                                 stack->request_body);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (!reply.ok() || reply->status != 200) {
      ::close(*fd);
      state.SkipWithError("request failed");
      return;
    }
    benchmark::DoNotOptimize(reply->body.size());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ::close(*fd);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    const double p95 =
        latencies_us[(latencies_us.size() * 95) / 100 == latencies_us.size()
                         ? latencies_us.size() - 1
                         : (latencies_us.size() * 95) / 100];
    state.counters["p95_us"] =
        benchmark::Counter(p95, benchmark::Counter::kAvgThreads);
  }
}
BENCHMARK(BM_HttpServing)
    ->Threads(1)
    ->Threads(8)
    ->Threads(32)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace hypre

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  hypre::bench::GetStack();  // build + warm before any timing
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
