// Figures 32-34 — Partially-Combine-All: intensity variation for
// combinations of 2, 5, 10, and >= 10 preferences.
//
// Paper: the first combination of a size is NOT the best of that size —
// later re-runs (old combinations AND-extended with a new preference) beat
// it, confirming that intensity-sorted greedy selection is insufficient
// (§7.4). Shape to check: within each size the series is non-monotone, and
// the >= 10 series (Fig. 34) spans a wide intensity band.
#include <cstdio>

#include "bench_util.h"
#include "hypre/api/session.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

void RunForUser(api::Session* session, const Workload& w, core::UserId uid,
                const char* tag, bool print_large) {
  core::HypreGraph graph = w.BuildGraph(uid);
  std::vector<core::PreferenceAtom> atoms = w.Atoms(graph, uid, 40);
  api::EnumerationRequest request;
  request.algorithm = "partially-combine-all";
  request.base_query = w.BaseQuery();
  request.key_column = "dblp.pid";
  request.preferences = atoms;
  auto records = Unwrap(session->Enumerate(request)).records;

  std::printf("\n=== user %s (uid=%lld, %zu preferences, %zu probes) ===\n",
              tag, (long long)uid, atoms.size(), records.size());
  for (size_t size : {2, 5, 10}) {
    std::printf("\n-- intensity series, combinations of %zu --\n", size);
    std::printf("%5s %10s %9s\n", "order", "intensity", "#tuples");
    size_t order = 0;
    bool non_monotone = false;
    double last = 2.0;
    for (const auto& r : records) {
      if (r.num_predicates != size) continue;
      if (order < 15) {
        std::printf("%5zu %10.4f %9zu\n", order, r.intensity, r.num_tuples);
      }
      if (r.intensity > last) non_monotone = true;
      last = r.intensity;
      ++order;
    }
    if (order == 0) {
      std::printf("  (none reached)\n");
    } else {
      std::printf("  total %zu; later combination beats an earlier one: "
                  "%s\n",
                  order, non_monotone ? "yes" : "no");
    }
  }
  if (print_large) {
    // Fig. 34: every combination of 10 or more preferences.
    std::printf("\n-- Fig. 34: all combinations of >= 10 preferences --\n");
    size_t count = 0;
    double lo = 2.0;
    double hi = -2.0;
    for (const auto& r : records) {
      if (r.num_predicates < 10) continue;
      ++count;
      lo = std::min(lo, r.intensity);
      hi = std::max(hi, r.intensity);
    }
    if (count > 0) {
      std::printf("  %zu combinations, intensity range [%.4f, %.4f]\n",
                  count, lo, hi);
    } else {
      std::printf("  (none reached)\n");
    }
  }
}

}  // namespace

int main() {
  auto w = Workload::Create();
  api::Session session(&w->db);
  std::printf("Figures 32-34: Partially-Combine-All intensity variation\n");
  RunForUser(&session, *w, w->user_a, "A", /*print_large=*/true);
  RunForUser(&session, *w, w->user_b, "B", /*print_large=*/false);
  return 0;
}
