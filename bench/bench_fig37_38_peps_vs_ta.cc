// Figures 37-38 — PEPS vs. Fagin's TA: intensity per rank, similarity and
// overlap (§7.6.3).
//
// Paper: (1) on quantitative-only input PEPS and TA match exactly — 100%
// similarity, 100% overlap; (2) on the full hybrid graph PEPS finds more
// tuples above the intensity threshold and assigns overall higher
// intensities; similarity drops (~37% in the paper) because TA cannot see
// graph-derived preferences, yet the common tuples keep their relative
// order (100% overlap). All three shapes are checked below.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "hypre/algorithms/peps.h"
#include "hypre/algorithms/threshold_algorithm.h"
#include "hypre/metrics.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

/// Builds TA's venue/author graded lists from a set of atoms, probing the
/// enhancer's bitmap engine.
std::vector<core::GradedList> BuildLists(
    const core::QueryEnhancer& enhancer,
    const std::vector<core::PreferenceAtom>& atoms) {
  std::vector<core::GradedList> built = Unwrap(core::BuildGradedLists(
      enhancer.probe_engine(), atoms, [](const core::PreferenceAtom& atom) {
        return atom.attribute_key.find("venue") != std::string::npos
                   ? std::string("venue")
                   : std::string("author");
      }));
  // TA always ran with both lists in {venue, author} order (the order sets
  // tie-break behavior at the k-cutoff), even when one side had no atoms.
  std::vector<core::GradedList> lists;
  for (const char* name : {"venue", "author"}) {
    bool found = false;
    for (auto& list : built) {
      if (list.name() == name) {
        lists.push_back(std::move(list));
        found = true;
        break;
      }
    }
    if (!found) lists.emplace_back(name);
  }
  return lists;
}

std::vector<reldb::Value> KeysOf(const std::vector<core::RankedTuple>& list) {
  std::vector<reldb::Value> keys;
  keys.reserve(list.size());
  for (const auto& t : list) keys.push_back(t.key);
  return keys;
}

void RunForUser(const Workload& w, core::UserId uid, const char* tag) {
  core::QueryEnhancer enhancer(&w.db, w.BaseQuery(), "dblp.pid");
  constexpr size_t kK = 50;

  std::printf("\n=== user %s (uid=%lld) ===\n", tag, (long long)uid);

  // --- Experiment 1: quantitative-only graph ------------------------------
  core::HypreGraph quant_graph = w.BuildGraph(uid, false);
  std::vector<core::PreferenceAtom> quant_atoms =
      w.Atoms(quant_graph, uid, 60);
  std::vector<core::GradedList> lists_q = BuildLists(enhancer, quant_atoms);
  auto ta_q = Unwrap(core::ThresholdAlgorithmTopK(lists_q, kK));
  core::Peps peps_q(&quant_atoms, &enhancer);
  auto peps_top_q = Unwrap(peps_q.TopK(kK, core::PepsMode::kComplete));
  std::printf("quantitative-only: similarity %.0f%%, rank agreement %.0f%% "
              "(paper: 100%% / 100%%)\n",
              core::Similarity(KeysOf(ta_q), KeysOf(peps_top_q)),
              core::RankAgreement(ta_q, peps_top_q));

  // --- Experiment 2: full hybrid graph -------------------------------------
  core::HypreGraph full_graph = w.BuildGraph(uid);
  std::vector<core::PreferenceAtom> full_atoms =
      w.Atoms(full_graph, uid, 60);
  core::Peps peps_f(&full_atoms, &enhancer);
  auto peps_top_f = Unwrap(peps_f.TopK(kK, core::PepsMode::kComplete));

  std::printf("hybrid graph:      similarity %.0f%%, rank agreement %.0f%% "
              "(paper: ~37%% / 100%%)\n",
              core::Similarity(KeysOf(ta_q), KeysOf(peps_top_f)),
              core::RankAgreement(ta_q, peps_top_f));

  // Intensity-per-rank series (the Fig. 37/38 curves).
  std::printf("\n%5s %12s %12s\n", "rank", "PEPS(full)", "TA(quant)");
  for (size_t i = 0; i < kK; i += 5) {
    std::printf("%5zu %12s %12s\n", i,
                i < peps_top_f.size()
                    ? StringFormat("%.4f", peps_top_f[i].intensity).c_str()
                    : "-",
                i < ta_q.size()
                    ? StringFormat("%.4f", ta_q[i].intensity).c_str()
                    : "-");
  }

  // Count tuples above the best single-preference intensity threshold.
  double threshold =
      quant_atoms.empty() ? 0.0 : quant_atoms.front().intensity;
  size_t peps_above = 0;
  size_t ta_above = 0;
  for (const auto& t : peps_top_f) {
    if (t.intensity >= threshold) ++peps_above;
  }
  for (const auto& t : ta_q) {
    if (t.intensity >= threshold) ++ta_above;
  }
  std::printf("\ntuples with intensity >= %.3f in the top-%zu: PEPS %zu, "
              "TA %zu (paper: PEPS covers more)\n",
              threshold, kK, peps_above, ta_above);
}

}  // namespace

int main() {
  auto w = Workload::Create();
  std::printf("Figures 37-38: PEPS vs TopK TA\n");
  RunForUser(*w, w->user_a, "A");
  RunForUser(*w, w->user_b, "B");
  return 0;
}
