// Ablation — DEFAULT_VALUE strategy (extends Table 12 / §6.3.1).
//
// The dissertation lists the strategies but evaluates only the fixed 0.5
// seed. This ablation builds the focal users' graphs under every strategy
// and reports how the choice shifts (a) the distribution of derived
// intensities and (b) coverage — quantifying how much the "seed of the
// entire process" matters.
#include <cstdio>

#include "bench_util.h"
#include "hypre/metrics.h"
#include "sqlparse/parser.h"

using namespace hypre;
using namespace hypre::bench;

int main() {
  auto w = Workload::Create();
  core::QueryEnhancer enhancer(&w->db, w->BaseQuery(), "dblp.pid");

  // The seed only matters for qualitative chains with NO user-provided
  // anchor (scenario 3 of §6.3); the focal users' chains are anchored, so
  // add a third, seed-dependent profile: the user with the longest
  // qualitative list among those with no author preference above the 0.1
  // cutoff (their whole author chain derives from the DEFAULT_VALUE).
  std::map<core::UserId, size_t> author_anchors;
  std::map<core::UserId, size_t> qual_counts;
  for (const auto& q : w->prefs.quantitative) {
    if (q.intensity > 0 &&
        q.predicate.find("aid") != std::string::npos) {
      ++author_anchors[q.uid];
    }
  }
  for (const auto& q : w->prefs.qualitative) ++qual_counts[q.uid];
  core::UserId seed_user = w->user_a;
  size_t best = 0;
  for (const auto& [uid, count] : qual_counts) {
    if (author_anchors.count(uid) > 0) continue;
    if (count > best) {
      best = count;
      seed_user = uid;
    }
  }

  const core::DefaultValueStrategy kStrategies[] = {
      core::DefaultValueStrategy::kFixed,
      core::DefaultValueStrategy::kMin,
      core::DefaultValueStrategy::kMinPositive,
      core::DefaultValueStrategy::kMax,
      core::DefaultValueStrategy::kMaxPositive,
      core::DefaultValueStrategy::kAvg,
      core::DefaultValueStrategy::kAvgPositive,
  };

  for (core::UserId uid : {w->user_a, w->user_b, seed_user}) {
    std::printf("\n=== uid=%lld%s ===\n", (long long)uid,
                uid == seed_user ? " (seed-dependent: no author anchors)"
                                 : "");
    std::printf("%-10s %8s %10s %10s %10s %9s\n", "strategy", "#prefs",
                "mean int.", "min int.", "max int.", "coverage");
    for (auto strategy : kStrategies) {
      core::HypreGraphConfig config;
      config.default_strategy = strategy;
      core::HypreGraph graph = w->BuildGraph(uid, true, config);
      auto entries = graph.ListPreferences(uid);
      double sum = 0.0;
      double lo = 2.0;
      double hi = -2.0;
      std::vector<reldb::ExprPtr> predicates;
      for (const auto& e : entries) {
        sum += e.intensity;
        lo = std::min(lo, e.intensity);
        hi = std::max(hi, e.intensity);
        predicates.push_back(Unwrap(sqlparse::ParsePredicate(e.predicate)));
      }
      size_t coverage = Unwrap(core::Coverage(enhancer, predicates));
      std::printf("%-10s %8zu %10.4f %10.4f %10.4f %9zu\n",
                  core::DefaultValueStrategyToString(strategy),
                  entries.size(),
                  entries.empty() ? 0.0 : sum / (double)entries.size(), lo,
                  hi, coverage);
    }
  }
  std::printf(
      "\nReading: anchored profiles are insensitive to the strategy (the "
      "seed never fires). For seed-dependent profiles the choice matters a "
      "lot: `min` can seed NEGATIVE values, pushing whole chains below zero "
      "and out of the usable (positive) profile — coverage collapses — "
      "while the positive-preserving strategies (default, max/max_pos, "
      "avg/avg_pos) keep every chain usable and only shift the intensity "
      "band.\n");
  return 0;
}
