// Table 11 — Insertion time for building the HYPRE graph.
//
// Paper: 10,361,592 quantitative preferences in 256.61 s (batch-insertable)
// vs 7,901,874 qualitative in 3680.26 s (per-edge conflict checks).
// Shape to reproduce: qualitative insertion is much slower *per preference*
// than quantitative insertion, because every qualitative edge pays node
// lookup + cycle check + intensity resolution.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"

using namespace hypre;
using namespace hypre::bench;

int main() {
  auto w = Workload::Create();

  core::HypreGraph graph;
  WallTimer timer;
  for (const auto& q : w->prefs.quantitative) {
    Status st = graph.AddQuantitative(q).status();
    if (!st.ok()) Die(st);
  }
  double quant_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (const auto& q : w->prefs.qualitative) {
    Status st = graph.AddQualitative(q).status();
    if (!st.ok()) Die(st);
  }
  double qual_seconds = timer.ElapsedSeconds();

  auto labels = graph.CountEdgeLabels();
  std::printf("Table 11: Insertion Time\n");
  std::printf("%-26s %12s %10s %14s\n", "Insertion Type", "#preferences",
              "Time (s)", "us/preference");
  std::printf("%-26s %12zu %10.2f %14.2f\n", "Quantitative Preferences",
              w->prefs.quantitative.size(), quant_seconds,
              quant_seconds * 1e6 / (double)w->prefs.quantitative.size());
  std::printf("%-26s %12zu %10.2f %14.2f\n", "Qualitative Preferences",
              w->prefs.qualitative.size(), qual_seconds,
              qual_seconds * 1e6 / (double)w->prefs.qualitative.size());
  std::printf("\nResulting graph: %zu nodes; PREFERS=%zu CYCLE=%zu "
              "DISCARD=%zu\n",
              graph.num_nodes(), labels.prefers, labels.cycle,
              labels.discard);
  std::printf("Shape check (paper: qualitative ~14x slower in total, worse "
              "per item): per-preference ratio = %.1fx\n",
              (qual_seconds / (double)w->prefs.qualitative.size()) /
                  (quant_seconds / (double)w->prefs.quantitative.size()));
  return 0;
}
