// Figures 35-36 — Bias-Random-Selection: valid vs. invalid combination
// probes across repeated runs.
//
// Paper: 100 runs per user; even in the best run only a couple of valid
// combinations are found against tens of invalid probes (uid=2: best ~30
// invalid for 2 valid, worst ~160 invalid for 3 valid). Shape to check:
// invalid probes dominate valid ones by an order of magnitude — the
// motivation for PEPS's precomputed applicable-pair table.
#include <cstdio>

#include <algorithm>

#include "bench_util.h"
#include "hypre/api/session.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

void RunForUser(api::Session* session, const Workload& w, core::UserId uid,
                const char* tag) {
  core::HypreGraph graph = w.BuildGraph(uid);
  std::vector<core::PreferenceAtom> atoms = w.Atoms(graph, uid, 25);

  // One request template; only the seed varies per run. All 100 runs share
  // the session's cached engine — the leaf probes are paid once.
  api::EnumerationRequest request;
  request.algorithm = "bias-random";
  request.base_query = w.BaseQuery();
  request.key_column = "dblp.pid";
  request.preferences = std::move(atoms);

  constexpr int kRuns = 100;
  struct RunStats {
    size_t valid;
    size_t invalid;
  };
  std::vector<RunStats> runs;
  for (int seed = 0; seed < kRuns; ++seed) {
    request.seed = static_cast<uint64_t>(seed + 1);
    auto result = Unwrap(session->Enumerate(request));
    runs.push_back({result.records.size(), result.invalid_checks});
  }
  std::sort(runs.begin(), runs.end(), [](const RunStats& a, const RunStats& b) {
    if (a.valid != b.valid) return a.valid < b.valid;
    return a.invalid < b.invalid;
  });

  std::printf("\n=== user %s (uid=%lld, %zu preferences, %d runs) ===\n",
              tag, (long long)uid, request.preferences.size(), kRuns);
  std::printf("%6s %8s %10s\n", "run", "#valid", "#invalid");
  for (int i = 0; i < kRuns; i += 10) {  // print every 10th, sorted
    std::printf("%6d %8zu %10zu\n", i, runs[i].valid, runs[i].invalid);
  }
  std::printf("%6s %8zu %10zu  (last)\n", "", runs.back().valid,
              runs.back().invalid);
  double total_valid = 0;
  double total_invalid = 0;
  for (const auto& r : runs) {
    total_valid += (double)r.valid;
    total_invalid += (double)r.invalid;
  }
  std::printf("mean valid per run: %.1f; mean invalid per run: %.1f "
              "(invalid/valid ratio %.1fx)\n",
              total_valid / kRuns, total_invalid / kRuns,
              total_valid > 0 ? total_invalid / total_valid : 0.0);
}

}  // namespace

int main() {
  auto w = Workload::Create();
  api::Session session(&w->db);
  std::printf("Figures 35-36: Bias-Random valid vs invalid combinations\n");
  RunForUser(&session, *w, w->user_a, "A");
  RunForUser(&session, *w, w->user_b, "B");
  return 0;
}
