// Table 12 — Possible DEFAULT_VALUEs.
//
// Paper: the seven seeding strategies (default/min/min_pos/max/max_pos/
// avg/avg_pos) with the conditions on which values participate and the
// fallbacks picked. This bench prints, per strategy, the seed computed for
// the two focal users from their extracted intensities, plus the fallback
// used on an empty profile — the reproduction of the table plus a live
// demonstration on real profiles.
#include <cstdio>

#include "bench_util.h"
#include "hypre/default_value.h"

using namespace hypre;
using namespace hypre::bench;

int main() {
  auto w = Workload::Create();

  auto intensities_of = [&](core::UserId uid) {
    std::vector<double> out;
    for (const auto& q : w->prefs.quantitative) {
      if (q.uid == uid) out.push_back(q.intensity);
    }
    return out;
  };
  std::vector<double> user_a = intensities_of(w->user_a);
  std::vector<double> user_b = intensities_of(w->user_b);
  std::vector<double> empty;

  const core::DefaultValueStrategy kStrategies[] = {
      core::DefaultValueStrategy::kFixed,
      core::DefaultValueStrategy::kMin,
      core::DefaultValueStrategy::kMinPositive,
      core::DefaultValueStrategy::kMax,
      core::DefaultValueStrategy::kMaxPositive,
      core::DefaultValueStrategy::kAvg,
      core::DefaultValueStrategy::kAvgPositive,
  };
  const char* kConditions[] = {
      "no condition", "no condition", ">= 0", "no condition",
      ">= 0 and < 1", "no condition", ">= 0",
  };

  std::printf("Table 12: Possible DEFAULT_VALUEs\n");
  std::printf("%-10s %-16s %12s %12s %14s\n", "Algorithm",
              "Values Considered", "user A seed", "user B seed",
              "empty profile");
  for (size_t i = 0; i < 7; ++i) {
    std::printf("%-10s %-16s %12.4f %12.4f %14.4f\n",
                core::DefaultValueStrategyToString(kStrategies[i]),
                kConditions[i],
                core::ComputeDefaultValue(kStrategies[i], user_a),
                core::ComputeDefaultValue(kStrategies[i], user_b),
                core::ComputeDefaultValue(kStrategies[i], empty));
  }
  std::printf("\n(user A = uid %lld with %zu quantitative prefs; "
              "user B = uid %lld with %zu)\n",
              (long long)w->user_a, user_a.size(), (long long)w->user_b,
              user_b.size());
  return 0;
}
