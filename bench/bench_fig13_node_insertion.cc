// Figure 13 — Node insertion time as the graph grows (batched).
//
// Paper: 7 billion nodes inserted into Neo4j in 1M-node batches; per-batch
// time grows from ~10 s to <70 s at the end. Scaled here to 100k-node
// batches (x HYPRE_SCALE): the shape to check is slow per-batch growth —
// insertion stays near-linear with a mild upward drift as the arena and
// index grow.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "graphdb/batch.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

void PrintBatchSeries() {
  const size_t batch_size = 100000;
  const size_t num_batches = 30 * EnvScale();
  graphdb::GraphStore store;
  Status st = store.CreateIndex("uidIndex", "uid");
  if (!st.ok()) Die(st);
  store.Reserve(batch_size * num_batches, 0);
  graphdb::BatchInserter inserter(&store, batch_size);
  for (size_t i = 0; i < batch_size * num_batches; ++i) {
    graphdb::PropertyMap props;
    props["uid"] = graphdb::PropertyValue(static_cast<int64_t>(i % 4096));
    props["predicate"] =
        graphdb::PropertyValue("dblp_author.aid=" + std::to_string(i));
    props["intensity"] =
        graphdb::PropertyValue(static_cast<double>(i % 1000) / 1000.0);
    inserter.Add({"uidIndex"}, std::move(props));
  }
  inserter.Flush();

  std::printf("Figure 13: node insertion time per %zu-node batch\n",
              batch_size);
  std::printf("%14s %16s %12s\n", "nodes (total)", "batch time (ms)",
              "ns/node");
  for (const auto& stats : inserter.stats()) {
    std::printf("%14zu %16.2f %12.1f\n", stats.total_nodes_after,
                stats.seconds * 1e3,
                stats.seconds * 1e9 / (double)stats.nodes_inserted);
  }
}

void BM_BatchInsert100k(benchmark::State& state) {
  for (auto _ : state) {
    graphdb::GraphStore store;
    benchmark::DoNotOptimize(store.CreateIndex("uidIndex", "uid"));
    graphdb::BatchInserter inserter(&store, 100000);
    for (size_t i = 0; i < 100000; ++i) {
      graphdb::PropertyMap props;
      props["uid"] = graphdb::PropertyValue(static_cast<int64_t>(i % 4096));
      props["intensity"] = graphdb::PropertyValue(0.5);
      inserter.Add({"uidIndex"}, std::move(props));
    }
    inserter.Flush();
    benchmark::DoNotOptimize(store.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_BatchInsert100k)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintBatchSeries();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
