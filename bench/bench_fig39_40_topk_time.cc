// Figures 39-40 — Top-K retrieval time as K grows (10..800), for the
// Complete and Approximate PEPS variants, on quantitative-only and full
// hybrid profiles.
//
// Paper: retrieval time grows mildly with K; the Complete variant is only
// slightly slower than the Approximate one (uid=2: ~2.2 s vs ~2.0 s at
// K=800; uid=38437 under a second throughout). Absolute numbers here are
// smaller (in-memory store, smaller profiles); the shapes to check are the
// mild growth in K and the small Complete-vs-Approximate gap.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hypre/algorithms/peps.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

struct Setup {
  std::unique_ptr<Workload> w;
  std::unique_ptr<core::QueryEnhancer> enhancer;
  std::vector<core::PreferenceAtom> quant_atoms_a;
  std::vector<core::PreferenceAtom> full_atoms_a;
  std::vector<core::PreferenceAtom> full_atoms_b;
};

Setup* GetSetup() {
  static Setup* setup = [] {
    auto* s = new Setup();
    s->w = Workload::Create();
    s->enhancer = std::make_unique<core::QueryEnhancer>(
        &s->w->db, s->w->BaseQuery(), "dblp.pid");
    core::HypreGraph quant_a = s->w->BuildGraph(s->w->user_a, false);
    core::HypreGraph full_a = s->w->BuildGraph(s->w->user_a, true);
    core::HypreGraph full_b = s->w->BuildGraph(s->w->user_b, true);
    s->quant_atoms_a = s->w->Atoms(quant_a, s->w->user_a, 80);
    s->full_atoms_a = s->w->Atoms(full_a, s->w->user_a, 80);
    s->full_atoms_b = s->w->Atoms(full_b, s->w->user_b, 80);
    return s;
  }();
  return setup;
}

void RunTopK(benchmark::State& state,
             const std::vector<core::PreferenceAtom>* atoms,
             core::PepsMode mode) {
  Setup* s = GetSetup();
  size_t k = static_cast<size_t>(state.range(0));
  // The pair table is a profile-maintenance artifact (recomputed on graph
  // updates, §5.5), so it is excluded from the per-query timing.
  core::Peps warm(atoms, s->enhancer.get());
  if (!warm.PrecomputePairs().ok()) state.SkipWithError("precompute failed");
  for (auto _ : state) {
    auto top = warm.TopK(k, mode);
    if (!top.ok()) state.SkipWithError("TopK failed");
    benchmark::DoNotOptimize(top->size());
  }
}

void BM_UserA_Complete_All(benchmark::State& state) {
  RunTopK(state, &GetSetup()->full_atoms_a, core::PepsMode::kComplete);
}
void BM_UserA_Approx_All(benchmark::State& state) {
  RunTopK(state, &GetSetup()->full_atoms_a, core::PepsMode::kApproximate);
}
void BM_UserA_Approx_QuantOnly(benchmark::State& state) {
  RunTopK(state, &GetSetup()->quant_atoms_a, core::PepsMode::kApproximate);
}
void BM_UserB_Complete_All(benchmark::State& state) {
  RunTopK(state, &GetSetup()->full_atoms_b, core::PepsMode::kComplete);
}
void BM_UserB_Approx_All(benchmark::State& state) {
  RunTopK(state, &GetSetup()->full_atoms_b, core::PepsMode::kApproximate);
}

void KRange(benchmark::internal::Benchmark* b) {
  for (int k : {10, 100, 200, 400, 800}) b->Arg(k);
}

BENCHMARK(BM_UserA_Complete_All)->Apply(KRange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UserA_Approx_All)->Apply(KRange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UserA_Approx_QuantOnly)
    ->Apply(KRange)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UserB_Complete_All)->Apply(KRange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UserB_Approx_All)->Apply(KRange)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
