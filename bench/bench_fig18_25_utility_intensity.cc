// Figures 18-25 — Utility, #tuples, and combined intensity for all
// combinations of 2, 5, and 10 preferences (two focal users).
//
// Paper: utility trends downward with combination order but combinations of
// 5 quickly top combinations of 2 (Figs. 18/19); tuple counts are spiky and
// uncorrelated with the smoothly-varying combined intensity (Figs. 20-25).
// The series below are produced by the same procedure: run
// Partially-Combine-All, then slice the probe stream by combination size.
#include <cstdio>

#include "bench_util.h"
#include "hypre/algorithms/partially_combine_all.h"
#include "hypre/metrics.h"

using namespace hypre;
using namespace hypre::bench;

namespace {

void RunForUser(const Workload& w, core::UserId uid, const char* tag) {
  core::HypreGraph graph = w.BuildGraph(uid);
  // Cap profiles so the probe stream stays printable; the paper plots the
  // first ~15 occurrences per size anyway.
  std::vector<core::PreferenceAtom> atoms = w.Atoms(graph, uid, 40);
  core::QueryEnhancer enhancer(&w.db, w.BaseQuery(), "dblp.pid");
  auto records = Unwrap(core::PartiallyCombineAll(atoms, enhancer));

  std::printf("\n=== user %s (uid=%lld, %zu preferences used, %zu probes) "
              "===\n",
              tag, (long long)uid, atoms.size(), records.size());
  for (size_t size : {2, 5, 10}) {
    std::printf("\n-- combinations of %zu preferences "
                "(Figs. 18/19 utility; 20-25 tuples & intensity) --\n",
                size);
    std::printf("%5s %8s %10s %9s\n", "order", "#tuples", "intensity",
                "utility");
    size_t order = 0;
    for (const auto& r : records) {
      if (r.num_predicates != size) continue;
      if (order >= 15) break;  // the paper plots the first ~15 occurrences
      std::printf("%5zu %8zu %10.4f %9.3f\n", order, r.num_tuples,
                  r.intensity,
                  core::Utility(r.num_tuples, r.num_predicates, r.intensity));
      ++order;
    }
    if (order == 0) std::printf("  (no combinations of this size reached)\n");
  }
}

}  // namespace

int main() {
  auto w = Workload::Create();
  std::printf("Figures 18-25: utility / #tuples / intensity per combination "
              "order\n");
  RunForUser(*w, w->user_a, "A");
  RunForUser(*w, w->user_b, "B");
  return 0;
}
