// Ablation — intensity propagation function (extends §4.4).
//
// Eq. 4.1/4.2 use an exponential gap (qt * 2^(±ql)); §4.4 notes any pair of
// functions with the four listed properties works. This ablation compares
// the dissertation's exponential form against two alternatives that also
// satisfy the properties:
//   linear   : left = min(1, qt + ql),         right = max(-1, qt - ql)
//   midpoint : left = qt + ql*(1-qt)/2,        right = qt - ql*(qt+1)/2
// over a sweep of (ql, qt), reporting the induced left-right gap — the
// quantity that decides how quickly chains of qualitative preferences
// saturate at the -1/1 bounds.
#include <cstdio>

#include <algorithm>
#include <cmath>

#include "hypre/intensity.h"

using namespace hypre;

namespace {

double LinearLeft(double ql, double qt) { return std::min(1.0, qt + ql); }
double LinearRight(double ql, double qt) { return std::max(-1.0, qt - ql); }
double MidLeft(double ql, double qt) {
  return qt + ql * (1.0 - qt) / 2.0;
}
double MidRight(double ql, double qt) {
  return qt - ql * (qt + 1.0) / 2.0;
}

/// Chain saturation: starting from a 0.5 seed, how many PREFERS hops until
/// the left-value chain hits 1 (longer = more rank levels expressible).
template <typename LeftFn>
int ChainLengthToSaturation(LeftFn left, double ql) {
  double v = 0.5;
  for (int hops = 1; hops <= 64; ++hops) {
    v = left(ql, v);
    if (v >= 1.0 - 1e-12) return hops;
  }
  return 64;
}

}  // namespace

int main() {
  std::printf("Ablation: intensity propagation functions (extends §4.4)\n\n");
  std::printf("%5s %5s | %9s %9s | %9s %9s | %9s %9s\n", "ql", "qt",
              "exp L", "exp R", "lin L", "lin R", "mid L", "mid R");
  for (double ql : {0.1, 0.3, 0.5, 0.8}) {
    for (double qt : {-0.5, 0.0, 0.3, 0.7}) {
      std::printf("%5.1f %5.1f | %9.4f %9.4f | %9.4f %9.4f | %9.4f %9.4f\n",
                  ql, qt, core::IntensityLeft(ql, qt),
                  core::IntensityRight(ql, qt), LinearLeft(ql, qt),
                  LinearRight(ql, qt), MidLeft(ql, qt), MidRight(ql, qt));
    }
  }

  std::printf("\nChain hops from a 0.5 seed until the derived value "
              "saturates at 1:\n");
  std::printf("%5s %12s %12s %12s\n", "ql", "exponential", "linear",
              "midpoint");
  for (double ql : {0.1, 0.25, 0.5, 1.0}) {
    std::printf("%5.2f %12d %12d %12d\n", ql,
                ChainLengthToSaturation(core::IntensityLeft, ql),
                ChainLengthToSaturation(LinearLeft, ql),
                ChainLengthToSaturation(MidLeft, ql));
  }
  std::printf(
      "\nReading: the midpoint form never saturates (asymptotic), giving "
      "the most distinguishable rank levels; the linear form saturates "
      "fastest; the dissertation's exponential form sits between — cheap "
      "and saturation-bounded, which matches its use of min/max clamps.\n");
  return 0;
}
