// Table 10 — Statistics for the DBLP database.
//
// Paper (real DBLP-Citation-network V4):
//   dblp 1,614,306 papers; author 1,033,111; citation 2,327,450 entries
//   (316,562 distinct cited); dblp_author 4,265,164;
//   quantitative_pref 10,361,592 (1,033,010 users);
//   qualitative_pref 7,901,874 (462,843 users).
// This bench prints the same rows for the synthetic workload (scaled down;
// see DESIGN.md substitutions). The shape to check: author links ~2-3x
// papers, citations ~3x papers, quantitative > qualitative preference
// counts, and fewer users with qualitative than with quantitative
// preferences is NOT expected here because every user with >= 2 cited
// authors gets pairs — the ratio, not the absolute counts, carries over.
#include <cstdio>

#include <set>

#include "bench_util.h"

using namespace hypre;
using namespace hypre::bench;

int main() {
  auto w = Workload::Create();

  std::set<core::UserId> quant_users;
  for (const auto& q : w->prefs.quantitative) quant_users.insert(q.uid);
  std::set<core::UserId> qual_users;
  for (const auto& q : w->prefs.qualitative) qual_users.insert(q.uid);

  std::printf("Table 10: Statistics for the (synthetic) DBLP database\n");
  std::printf("%-18s %5s  %s\n", "Relation", "Arity", "Cardinality");
  std::printf("%-18s %5d  %zu papers\n", "dblp", 4, w->stats.num_papers);
  std::printf("%-18s %5d  %zu authors\n", "author", 2, w->stats.num_authors);
  std::printf("%-18s %5d  %zu total entries\n", "citation", 2,
              w->stats.num_citations);
  std::printf("%-18s %5s  %zu distinct papers\n", "", "",
              w->stats.num_cited_papers);
  std::printf("%-18s %5d  %zu entries\n", "dblp_author", 2,
              w->stats.num_author_links);
  std::printf("%-18s %5d  %zu entries\n", "quantitative_pref", 4,
              w->prefs.quantitative.size());
  std::printf("%-18s %5s  %zu distinct users\n", "", "", quant_users.size());
  std::printf("%-18s %5d  %zu entries\n", "qualitative_pref", 5,
              w->prefs.qualitative.size());
  std::printf("%-18s %5s  %zu distinct users\n", "", "", qual_users.size());
  std::printf("\nBreakdown: %zu venue prefs, %zu author prefs, "
              "%zu negative venue prefs\n",
              w->prefs.num_venue_prefs, w->prefs.num_author_prefs,
              w->prefs.num_negative_prefs);
  return 0;
}
