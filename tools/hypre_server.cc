// hypre_server: the REST front end as a process.
//
//   hypre_server --config server.json
//   hypre_server --port 8080 --tenant demo=synthetic:5000:7 --debug
//
// Config file (JSON; flags override scalar fields):
//   {"host": "127.0.0.1", "port": 8080, "workers": 4,
//    "debug": false, "default_deadline_ms": 0,
//    "max_open_tenants": 0, "writer_queue_depth": 64,
//    "scheduler": {"max_concurrent": 0, "max_inflight_probe_budget": 0,
//                  "max_queue_depth": 0},
//    "tenants": [{"name": "demo", "synthetic_papers": 5000,
//                 "synthetic_seed": 7, "storage_dir": "", "csv_dir": ""}]}
//
// Shutdown: SIGINT/SIGTERM are caught through a self-pipe (the handler
// only write(2)s one byte — async-signal-safe); the main thread then stops
// accepting, lets in-flight requests finish (HttpServer::Stop), drains
// every tenant's writer and flushes a final checkpoint per storage-backed
// tenant (TenantManager::ShutdownAll), and exits 0. A second signal during
// the drain exits 1 immediately (the escape hatch when a checkpoint disk
// hangs).
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "hypre/server/server.h"
#include "hypre/server/service.h"
#include "hypre/server/tenant.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  char byte = 1;
  // The only async-signal-safe thing to do: poke the main thread.
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

struct ServerConfig {
  hypre::server::HttpServerOptions http;
  hypre::server::ServiceOptions service;
  hypre::server::TenantManagerOptions tenants;
  std::vector<hypre::server::TenantSpec> specs;
};

hypre::Status ReadUint(const hypre::Json& object, const std::string& key,
                       uint64_t* out) {
  const hypre::Json* field = object.Find(key);
  if (field == nullptr) return hypre::Status::OK();
  if (field->kind() != hypre::Json::Kind::kInt || field->AsInt() < 0) {
    return hypre::Status::InvalidArgument("config field '" + key +
                                          "' must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(field->AsInt());
  return hypre::Status::OK();
}

hypre::Status LoadConfigFile(const std::string& path, ServerConfig* config) {
  std::ifstream in(path);
  if (!in.good()) {
    return hypre::Status::NotFound("cannot read config '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  HYPRE_ASSIGN_OR_RETURN(hypre::Json root,
                         hypre::Json::Parse(text.str(), "server config"));
  if (root.kind() != hypre::Json::Kind::kObject) {
    return hypre::Status::InvalidArgument("server config must be an object");
  }
  if (const hypre::Json* host = root.Find("host")) {
    if (host->kind() != hypre::Json::Kind::kString) {
      return hypre::Status::InvalidArgument("config 'host' must be a string");
    }
    config->http.host = host->AsString();
  }
  uint64_t port = config->http.port;
  HYPRE_RETURN_NOT_OK(ReadUint(root, "port", &port));
  config->http.port = static_cast<uint16_t>(port);
  uint64_t workers = config->http.num_workers;
  HYPRE_RETURN_NOT_OK(ReadUint(root, "workers", &workers));
  config->http.num_workers = static_cast<size_t>(workers);
  if (const hypre::Json* debug = root.Find("debug")) {
    if (debug->kind() != hypre::Json::Kind::kBool) {
      return hypre::Status::InvalidArgument("config 'debug' must be a bool");
    }
    config->service.enable_debug = debug->AsBool();
  }
  HYPRE_RETURN_NOT_OK(ReadUint(root, "default_deadline_ms",
                               &config->service.default_deadline_ms));
  uint64_t max_open = config->tenants.max_open_tenants;
  HYPRE_RETURN_NOT_OK(ReadUint(root, "max_open_tenants", &max_open));
  config->tenants.max_open_tenants = static_cast<size_t>(max_open);
  uint64_t writer_depth = config->tenants.writer_queue_depth;
  HYPRE_RETURN_NOT_OK(ReadUint(root, "writer_queue_depth", &writer_depth));
  config->tenants.writer_queue_depth = static_cast<size_t>(writer_depth);

  if (const hypre::Json* scheduler = root.Find("scheduler")) {
    if (scheduler->kind() != hypre::Json::Kind::kObject) {
      return hypre::Status::InvalidArgument(
          "config 'scheduler' must be an object");
    }
    uint64_t value = 0;
    HYPRE_RETURN_NOT_OK(ReadUint(*scheduler, "max_concurrent", &value));
    config->tenants.scheduler.max_concurrent = static_cast<size_t>(value);
    value = 0;
    HYPRE_RETURN_NOT_OK(
        ReadUint(*scheduler, "max_inflight_probe_budget", &value));
    config->tenants.scheduler.max_inflight_probe_budget =
        static_cast<size_t>(value);
    value = 0;
    HYPRE_RETURN_NOT_OK(ReadUint(*scheduler, "max_queue_depth", &value));
    config->tenants.scheduler.max_queue_depth = static_cast<size_t>(value);
  }

  if (const hypre::Json* tenants = root.Find("tenants")) {
    if (tenants->kind() != hypre::Json::Kind::kArray) {
      return hypre::Status::InvalidArgument(
          "config 'tenants' must be an array");
    }
    for (size_t i = 0; i < tenants->size(); ++i) {
      const hypre::Json& entry = tenants->at(i);
      const std::string context = "tenants[" + std::to_string(i) + "]";
      if (entry.kind() != hypre::Json::Kind::kObject) {
        return hypre::Status::InvalidArgument(context + " must be an object");
      }
      hypre::server::TenantSpec spec;
      HYPRE_ASSIGN_OR_RETURN(spec.name, entry.GetString("name", context));
      if (const hypre::Json* dir = entry.Find("storage_dir")) {
        spec.storage_dir = dir->AsString();
      }
      if (const hypre::Json* dir = entry.Find("csv_dir")) {
        spec.csv_dir = dir->AsString();
      }
      uint64_t papers = 0;
      HYPRE_RETURN_NOT_OK(ReadUint(entry, "synthetic_papers", &papers));
      spec.synthetic_papers = static_cast<size_t>(papers);
      HYPRE_RETURN_NOT_OK(
          ReadUint(entry, "synthetic_seed", &spec.synthetic_seed));
      config->specs.push_back(std::move(spec));
    }
  }
  return hypre::Status::OK();
}

/// --tenant name=synthetic:<papers>[:<seed>] | name=storage:<dir> |
/// name=csv:<dir>
hypre::Status ParseTenantFlag(const std::string& value,
                              hypre::server::TenantSpec* spec) {
  size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0) {
    return hypre::Status::InvalidArgument(
        "--tenant expects name=kind:arg, got '" + value + "'");
  }
  spec->name = value.substr(0, eq);
  const std::string rest = value.substr(eq + 1);
  size_t colon = rest.find(':');
  const std::string kind = rest.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : rest.substr(colon + 1);
  if (kind == "synthetic") {
    size_t second = arg.find(':');
    spec->synthetic_papers =
        static_cast<size_t>(std::atoll(arg.substr(0, second).c_str()));
    if (second != std::string::npos) {
      spec->synthetic_seed =
          static_cast<uint64_t>(std::atoll(arg.substr(second + 1).c_str()));
    }
    if (spec->synthetic_papers == 0) {
      return hypre::Status::InvalidArgument(
          "--tenant synthetic needs a paper count: " + value);
    }
  } else if (kind == "storage") {
    spec->storage_dir = arg;
  } else if (kind == "csv") {
    spec->csv_dir = arg;
  } else {
    return hypre::Status::InvalidArgument(
        "--tenant kind must be synthetic|storage|csv, got '" + kind + "'");
  }
  return hypre::Status::OK();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--config <json>] [--host <ipv4>] [--port <n>]\n"
      "          [--workers <n>] [--debug] [--default-deadline-ms <n>]\n"
      "          [--tenant name=synthetic:<papers>[:<seed>]]\n"
      "          [--tenant name=storage:<dir>] [--tenant name=csv:<dir>]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config") {
      const char* path = next();
      if (path == nullptr) return Usage(argv[0]);
      hypre::Status loaded = LoadConfigFile(path, &config);
      if (!loaded.ok()) {
        std::fprintf(stderr, "hypre_server: %s\n",
                     loaded.ToString().c_str());
        return 1;
      }
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.http.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.http.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.http.num_workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--debug") {
      config.service.enable_debug = true;
    } else if (arg == "--default-deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.service.default_deadline_ms =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      hypre::server::TenantSpec spec;
      hypre::Status parsed = ParseTenantFlag(v, &spec);
      if (!parsed.ok()) {
        std::fprintf(stderr, "hypre_server: %s\n",
                     parsed.ToString().c_str());
        return 1;
      }
      config.specs.push_back(std::move(spec));
    } else {
      return Usage(argv[0]);
    }
  }
  if (config.specs.empty()) {
    std::fprintf(stderr,
                 "hypre_server: no tenants configured (--tenant or a config "
                 "file with a tenants array)\n");
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("hypre_server: pipe");
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A worker writing to a socket the client already closed must get EPIPE,
  // not die.
  ::signal(SIGPIPE, SIG_IGN);

  hypre::server::TenantManager tenants(std::move(config.specs),
                                       config.tenants);
  hypre::server::Service service(&tenants, config.service);
  hypre::server::HttpServer server(&service, config.http);
  hypre::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "hypre_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "hypre_server: listening on %s:%u (%zu workers)\n",
               config.http.host.c_str(), server.port(),
               config.http.num_workers);
  std::fflush(stderr);

  // Park until SIGINT/SIGTERM pokes the pipe.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "hypre_server: shutdown signal — draining\n");
  std::fflush(stderr);

  // Escape hatch: a second signal during the drain kills the process.
  struct sigaction die;
  std::memset(&die, 0, sizeof(die));
  die.sa_handler = SIG_DFL;
  ::sigaction(SIGINT, &die, nullptr);
  ::sigaction(SIGTERM, &die, nullptr);

  server.Stop();
  hypre::Status flushed = tenants.ShutdownAll();
  if (!flushed.ok()) {
    std::fprintf(stderr, "hypre_server: shutdown flush: %s\n",
                 flushed.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "hypre_server: drained (%llu requests served); bye\n",
               static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
