// End-to-end tests for the HTTP serving layer: a real HttpServer on a real
// loopback socket, driven through the tiny client in server/http.h.
//
// The load-bearing test is the DIFFERENTIAL: for every one of the six
// algorithms, the bytes that come back over the wire must be IDENTICAL to
// running the same EnumerationRequest on a directly constructed Session
// over an identically generated database and encoding the result through
// the same codec. The server adds routing, tenancy, a writer thread, and
// admission — none of which may perturb a single byte of the result.
//
// Also covered: HTTP framing (bounded parsing, 400/408/413/431/501),
// malformed JSON -> 400, unknown tenant -> 404, method checks -> 405,
// mutate round-trips (applied + visible + epoch advance), deadline-based
// shedding -> 429 + Retry-After, concurrent mutate+read mixes (the TSan
// job runs this file), keep-alive, /metrics, /healthz, and graceful Stop()
// under load.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "hypre/api/session.h"
#include "hypre/server/codec.h"
#include "hypre/server/http.h"
#include "hypre/server/server.h"
#include "hypre/server/service.h"
#include "hypre/server/tenant.h"
#include "hypre/telemetry/telemetry.h"
#include "workload/dblp_generator.h"

namespace hypre {
namespace server {
namespace {

constexpr size_t kPapers = 400;
constexpr uint64_t kSeed = 7;
const char kBaseSql[] =
    "SELECT * FROM dblp JOIN dblp_author ON dblp.pid = dblp_author.pid";

/// The same database TenantManager builds for a synthetic tenant — the
/// differential's ground truth must be grown from identical bytes.
std::unique_ptr<reldb::Database> MakeTenantDatabase() {
  workload::DblpConfig config;
  config.num_papers = kPapers;
  config.num_authors = kPapers / 3;
  config.seed = kSeed;
  auto db = std::make_unique<reldb::Database>();
  auto stats = workload::GenerateDblp(config, db.get());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return db;
}

/// {"predicate", intensity} pairs every test reuses. Venue names come from
/// workload::VenueName's familiar head ranks.
std::vector<std::pair<std::string, double>> TestPreferences() {
  return {{"dblp.venue='SIGMOD'", 0.9},
          {"dblp.venue='VLDB'", 0.7},
          {"dblp.year>2005", 0.5},
          {"dblp.year<1995", 0.3}};
}

/// Builds an enumerate body. `extra` keys are merged in last.
std::string EnumerateBody(const std::string& algorithm, Json extra = Json()) {
  Json body = Json::Object();
  body.Set("algorithm", Json::Str(algorithm));
  body.Set("base_query", Json::Str(kBaseSql));
  body.Set("key_column", Json::Str("dblp.pid"));
  Json prefs = Json::Array();
  for (const auto& [predicate, intensity] : TestPreferences()) {
    Json p = Json::Object();
    p.Set("predicate", Json::Str(predicate));
    p.Set("intensity", Json::Double(intensity));
    prefs.Append(std::move(p));
  }
  body.Set("preferences", std::move(prefs));
  if (extra.kind() == Json::Kind::kObject) {
    // Json has no iteration API for objects beyond Find; merge by Dump is
    // overkill — callers pass the handful of knobs below instead.
  }
  if (const Json* k = extra.Find("k")) body.Set("k", *k);
  if (const Json* seed = extra.Find("seed")) body.Set("seed", *seed);
  if (const Json* budget = extra.Find("probe_budget")) {
    body.Set("probe_budget", *budget);
  }
  if (const Json* nap = extra.Find("debug_sleep_ms")) {
    body.Set("debug_sleep_ms", *nap);
  }
  if (const Json* deadline = extra.Find("deadline_ms")) {
    body.Set("deadline_ms", *deadline);
  }
  return body.Dump();
}

/// The matching DIRECT request, decoded through the same codec the server
/// uses so both sides agree on every default.
api::EnumerationRequest DirectRequest(const std::string& body) {
  auto decoded = DecodeEnumerateRequest(body);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded->request;
}

/// One HTTP request over a fresh connection.
Result<SimpleHttpReply> Fetch(
    uint16_t port, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  HYPRE_ASSIGN_OR_RETURN(int fd, ConnectTcp("127.0.0.1", port));
  Result<SimpleHttpReply> reply =
      SendHttpRequest(fd, method, target, body, headers);
  ::close(fd);
  return reply;
}

const std::string* FindHeader(const SimpleHttpReply& reply,
                              const std::string& lower_name) {
  for (const auto& [name, value] : reply.headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

/// Drops the "stats" object from an encoded result. Probe stats depend on
/// the probe cache's temperature (a warm repeat has fewer leaf queries), so
/// repeat-stability assertions compare everything BUT them; the cold-vs-cold
/// differential still compares full bodies.
std::string StripStats(const std::string& body) {
  const size_t start = body.find(",\"stats\":{");
  if (start == std::string::npos) return body;
  const size_t end = body.find('}', start);
  if (end == std::string::npos) return body;
  return body.substr(0, start) + body.substr(end + 1);
}

bool WaitFor(const std::function<bool()>& predicate, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

/// Fixture: one server over tenants "alpha" and "beta" (identical synthetic
/// universes), debug endpoints on, fresh per test.
class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer(api::AdmissionScheduler::Options scheduler = {},
                   size_t writer_queue_depth = 16) {
    std::vector<TenantSpec> specs(2);
    specs[0].name = "alpha";
    specs[0].synthetic_papers = kPapers;
    specs[0].synthetic_seed = kSeed;
    specs[1].name = "beta";
    specs[1].synthetic_papers = kPapers;
    specs[1].synthetic_seed = kSeed;
    TenantManagerOptions topts;
    topts.scheduler = scheduler;
    topts.writer_queue_depth = writer_queue_depth;
    tenants_ = std::make_unique<TenantManager>(std::move(specs), topts);
    ServiceOptions sopts;
    sopts.enable_debug = true;
    service_ = std::make_unique<Service>(tenants_.get(), sopts);
    HttpServerOptions hopts;
    hopts.num_workers = 4;
    server_ = std::make_unique<HttpServer>(service_.get(), hopts);
    auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (tenants_ != nullptr) {
      auto shutdown = tenants_->ShutdownAll();
      EXPECT_TRUE(shutdown.ok()) << shutdown.ToString();
    }
  }

  uint16_t port() const { return server_->port(); }

  std::unique_ptr<TenantManager> tenants_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<HttpServer> server_;
};

// --- Framing unit tests (no sockets) ---------------------------------------

TEST(HttpFraming, ParsesARequestHead) {
  HttpRequest request;
  int error_status = 0;
  auto length = ParseRequestHead(
      "POST /v1/alpha/enumerate?x=1 HTTP/1.1\r\nHost: h\r\n"
      "Content-Length: 12\r\nX-Hypre-Deadline-Ms:  250 \r\n\r\n",
      &request, &error_status);
  ASSERT_TRUE(length.ok()) << length.status().ToString();
  EXPECT_EQ(*length, 12u);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/v1/alpha/enumerate");
  EXPECT_EQ(request.query, "x=1");
  ASSERT_NE(request.FindHeader("x-hypre-deadline-ms"), nullptr);
  EXPECT_EQ(*request.FindHeader("x-hypre-deadline-ms"), "250");
  EXPECT_FALSE(request.WantsClose());
}

TEST(HttpFraming, RejectsProtocolFaultsWithTheRightStatus) {
  const std::vector<std::pair<std::string, int>> cases = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET /x HTTP/2.0\r\n\r\n", 400},
      {"GET x HTTP/1.1\r\n\r\n", 400},          // not origin-form
      {"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"GET /x HTTP/1.1\r\nContent-Length: 9x\r\n\r\n", 400},
      {"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\n",
       400},
      {"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  for (const auto& [head, want_status] : cases) {
    HttpRequest request;
    int error_status = 0;
    auto result = ParseRequestHead(head, &request, &error_status);
    EXPECT_FALSE(result.ok()) << head;
    EXPECT_EQ(error_status, want_status) << head;
  }
}

TEST(HttpFraming, SerializesAResponse) {
  HttpResponse response;
  response.status = 429;
  response.body = "{}";
  response.headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeHttpResponse(response, false);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// --- The differential: HTTP bytes == direct Session bytes ------------------

TEST_F(HttpServerTest, AllSixAlgorithmsAreByteIdenticalToDirectSession) {
  StartServer();
  api::Session direct(MakeTenantDatabase());

  struct Case {
    const char* algorithm;
    const char* extra;  // JSON object merged into the body
  };
  const std::vector<Case> cases = {
      {"exhaustive", "{}"},
      {"combine-two", "{}"},
      {"partially-combine-all", "{}"},
      {"bias-random", "{\"seed\":11,\"probe_budget\":64}"},
      {"peps", "{\"k\":5}"},
      {"peps", "{}"},  // k=0: combination records
      {"ta", "{\"k\":3}"},
  };
  for (const Case& c : cases) {
    auto extra = Json::Parse(c.extra, "test extra");
    ASSERT_TRUE(extra.ok());
    const std::string body = EnumerateBody(c.algorithm, std::move(*extra));

    auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate", body);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->status, 200) << c.algorithm << ": " << reply->body;

    auto direct_result = direct.Enumerate(DirectRequest(body));
    ASSERT_TRUE(direct_result.ok())
        << c.algorithm << ": " << direct_result.status().ToString();
    const std::string expected =
        EncodeEnumerationResult(c.algorithm, *direct_result);
    EXPECT_EQ(reply->body, expected) << c.algorithm << " " << c.extra;
  }
}

TEST_F(HttpServerTest, TenantsAreIsolatedAndDeterministic) {
  StartServer();
  const std::string body = EnumerateBody("combine-two");
  auto alpha = Fetch(port(), "POST", "/v1/alpha/enumerate", body);
  auto beta = Fetch(port(), "POST", "/v1/beta/enumerate", body);
  ASSERT_TRUE(alpha.ok() && beta.ok());
  ASSERT_EQ(alpha->status, 200);
  ASSERT_EQ(beta->status, 200);
  // Identical seeds -> identical universes -> identical bytes; and a repeat
  // against a warm tenant is stable.
  EXPECT_EQ(alpha->body, beta->body);
  auto again = Fetch(port(), "POST", "/v1/alpha/enumerate", body);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(StripStats(again->body), StripStats(alpha->body));
  EXPECT_EQ(tenants_->num_open(), 2u);
}

// --- Error mapping ---------------------------------------------------------

TEST_F(HttpServerTest, MalformedJsonIs400) {
  StartServer();
  for (const char* bad : {"", "{", "not json", "[1,2]", "{\"a\":01}",
                          "{\"algorithm\":\"peps\"}"}) {
    auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate", bad);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->status, 400) << bad;
    auto parsed = Json::Parse(reply->body, "error body");
    ASSERT_TRUE(parsed.ok()) << reply->body;
    EXPECT_TRUE(parsed->Has("error")) << reply->body;
  }
}

TEST_F(HttpServerTest, UnknownTenantIs404AndUnknownRouteIs404) {
  StartServer();
  auto tenant = Fetch(port(), "POST", "/v1/nobody/enumerate",
                      EnumerateBody("combine-two"));
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(tenant->status, 404);
  for (const char* target : {"/", "/v1", "/v1/alpha", "/v1/alpha/nope",
                             "/v2/alpha/enumerate", "/favicon.ico"}) {
    auto reply = Fetch(port(), "GET", target, "");
    ASSERT_TRUE(reply.ok()) << target;
    EXPECT_EQ(reply->status, 404) << target;
  }
}

TEST_F(HttpServerTest, WrongMethodIs405) {
  StartServer();
  auto get_enumerate = Fetch(port(), "GET", "/v1/alpha/enumerate", "");
  ASSERT_TRUE(get_enumerate.ok());
  EXPECT_EQ(get_enumerate->status, 405);
  auto post_stats = Fetch(port(), "POST", "/v1/alpha/stats", "{}");
  ASSERT_TRUE(post_stats.ok());
  EXPECT_EQ(post_stats->status, 405);
  auto post_metrics = Fetch(port(), "POST", "/metrics", "{}");
  ASSERT_TRUE(post_metrics.ok());
  EXPECT_EQ(post_metrics->status, 405);
}

TEST_F(HttpServerTest, UnknownAlgorithmIs400) {
  StartServer();
  auto reply =
      Fetch(port(), "POST", "/v1/alpha/enumerate", EnumerateBody("quantum"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, 400);
  EXPECT_NE(reply->body.find("quantum"), std::string::npos);
}

TEST_F(HttpServerTest, RawProtocolGarbageGets400AndClose) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAllToSocket(*fd, "EHLO hypre\r\n\r\n").ok());
  std::string buffer;
  char chunk[1024];
  for (;;) {
    ssize_t n = ::recv(*fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(*fd);
  EXPECT_NE(buffer.find("HTTP/1.1 400"), std::string::npos) << buffer;
  EXPECT_NE(buffer.find("Connection: close"), std::string::npos);
}

// --- Mutations -------------------------------------------------------------

TEST_F(HttpServerTest, MutateRoundTripsAndAdvancesTheEpoch) {
  StartServer();
  const std::string probe = EnumerateBody("combine-two");
  auto before = Fetch(port(), "POST", "/v1/alpha/enumerate", probe);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->status, 200);
  auto before_doc = Json::Parse(before->body, "before");
  ASSERT_TRUE(before_doc.ok());
  const int64_t epoch_before = before_doc->GetInt("epoch", "t").value();

  // Append two fresh SIGMOD papers (and author links so the join sees
  // them), then delete one of them again.
  Json ops = Json::Array();
  auto append = [&](const char* table, Json row) {
    Json op = Json::Object();
    op.Set("op", Json::Str("append"));
    op.Set("table", Json::Str(table));
    op.Set("row", std::move(row));
    ops.Append(std::move(op));
  };
  Json paper1 = Json::Array();
  paper1.Append(Json::Int(900001));
  paper1.Append(Json::Str("Injected over HTTP"));
  paper1.Append(Json::Int(2007));
  paper1.Append(Json::Str("SIGMOD"));
  append("dblp", std::move(paper1));
  Json paper2 = Json::Array();
  paper2.Append(Json::Int(900002));
  paper2.Append(Json::Str("Also injected"));
  paper2.Append(Json::Int(2008));
  paper2.Append(Json::Str("SIGMOD"));
  append("dblp", std::move(paper2));
  Json link1 = Json::Array();
  link1.Append(Json::Int(900001));
  link1.Append(Json::Int(1));
  append("dblp_author", std::move(link1));
  Json link2 = Json::Array();
  link2.Append(Json::Int(900002));
  link2.Append(Json::Int(2));
  append("dblp_author", std::move(link2));
  Json body = Json::Object();
  body.Set("ops", std::move(ops));

  auto mutate = Fetch(port(), "POST", "/v1/alpha/mutate", body.Dump());
  ASSERT_TRUE(mutate.ok()) << mutate.status().ToString();
  ASSERT_EQ(mutate->status, 200) << mutate->body;
  auto mutate_doc = Json::Parse(mutate->body, "mutate");
  ASSERT_TRUE(mutate_doc.ok());
  EXPECT_EQ(mutate_doc->GetInt("applied", "t").value(), 4);
  // No storage attached: the commit flag is a no-op.
  EXPECT_FALSE(mutate_doc->Find("committed")->AsBool());

  // A refresh-bearing read (the default) sees the mutation: more tuples
  // for the SIGMOD predicate, and a bumped epoch.
  auto after = Fetch(port(), "POST", "/v1/alpha/enumerate", probe);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->status, 200);
  auto after_doc = Json::Parse(after->body, "after");
  ASSERT_TRUE(after_doc.ok());
  EXPECT_GT(after_doc->GetInt("epoch", "t").value(), epoch_before);
  EXPECT_NE(after->body, before->body);

  // The unchanged sibling tenant still serves the original bytes.
  auto beta = Fetch(port(), "POST", "/v1/beta/enumerate", probe);
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta->body, before->body);

  // Stats reflect the writer's work and the new live rows.
  auto stats = Fetch(port(), "GET", "/v1/alpha/stats", "");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->status, 200);
  auto stats_doc = Json::Parse(stats->body, "stats");
  ASSERT_TRUE(stats_doc.ok());
  auto writer = stats_doc->GetObject("writer", "t");
  ASSERT_TRUE(writer.ok());
  EXPECT_GE((*writer)->GetInt("executed", "t").value(), 1);
  auto tables = stats_doc->GetObject("tables", "t");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ((*tables)->GetInt("dblp", "t").value(),
            static_cast<int64_t>(kPapers + 2));
}

TEST_F(HttpServerTest, MutateFaultsAreTyped) {
  StartServer();
  // Unknown table -> 404; wrong arity -> 400 (Table::Append validation).
  auto unknown = Fetch(port(), "POST", "/v1/alpha/mutate",
                       R"({"ops":[{"op":"append","table":"nope","row":[1]}]})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404) << unknown->body;
  auto arity = Fetch(port(), "POST", "/v1/alpha/mutate",
                     R"({"ops":[{"op":"append","table":"dblp","row":[1]}]})");
  ASSERT_TRUE(arity.ok());
  EXPECT_EQ(arity->status, 400) << arity->body;
  auto bad_op = Fetch(port(), "POST", "/v1/alpha/mutate",
                      R"({"ops":[{"op":"truncate","table":"dblp"}]})");
  ASSERT_TRUE(bad_op.ok());
  EXPECT_EQ(bad_op->status, 400);
}

// --- Overload shedding -----------------------------------------------------

TEST_F(HttpServerTest, SaturatedAdmissionShedsWith429AndRetryAfter) {
  api::AdmissionScheduler::Options scheduler;
  scheduler.max_concurrent = 1;
  scheduler.max_queue_depth = 1;
  StartServer(scheduler);

  // Warm the tenant so the slow request below measures admission, not the
  // synthetic generation.
  auto warm = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two"));
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->status, 200);
  auto tenant = tenants_->Get("alpha");
  ASSERT_TRUE(tenant.ok());

  // A debug-slowed request holds the single admission slot...
  std::thread slow([&] {
    auto extra = Json::Parse("{\"debug_sleep_ms\":700}", "t");
    ASSERT_TRUE(extra.ok());
    auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate",
                       EnumerateBody("combine-two", std::move(*extra)));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, 200);
  });
  ASSERT_TRUE(WaitFor([&] {
    return (*tenant)->session()->scheduler().stats().inflight == 1;
  }));

  // ...a second request with a short deadline times out in the queue...
  auto deadline_extra = Json::Parse("{\"deadline_ms\":60}", "t");
  ASSERT_TRUE(deadline_extra.ok());
  auto shed = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two", std::move(*deadline_extra)));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 429) << shed->body;
  ASSERT_NE(FindHeader(*shed, "retry-after"), nullptr);
  EXPECT_EQ(*FindHeader(*shed, "retry-after"), "1");
  EXPECT_NE(shed->body.find("Unavailable"), std::string::npos);

  // ...and with one waiter occupying the bounded queue, a third request is
  // rejected IMMEDIATELY (queue full), no deadline needed.
  std::thread queued([&] {
    auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate",
                       EnumerateBody("combine-two"));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, 200);  // eventually admitted FIFO
  });
  ASSERT_TRUE(WaitFor([&] {
    return (*tenant)->session()->scheduler().stats().queue_depth == 1;
  }));
  auto full_extra = Json::Parse("{\"deadline_ms\":2000}", "t");
  ASSERT_TRUE(full_extra.ok());
  auto full = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two", std::move(*full_extra)));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->status, 429) << full->body;
  EXPECT_NE(full->body.find("queue full"), std::string::npos) << full->body;

  slow.join();
  queued.join();
  EXPECT_GE((*tenant)->session()->scheduler().stats().rejected, 2u);
}

TEST_F(HttpServerTest, DeadlineHeaderIsHonored) {
  api::AdmissionScheduler::Options scheduler;
  scheduler.max_concurrent = 1;
  StartServer(scheduler);
  auto warm = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two"));
  ASSERT_EQ(warm->status, 200);
  auto tenant = tenants_->Get("alpha");
  ASSERT_TRUE(tenant.ok());

  std::thread slow([&] {
    auto extra = Json::Parse("{\"debug_sleep_ms\":500}", "t");
    auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate",
                       EnumerateBody("combine-two", std::move(*extra)));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, 200);
  });
  ASSERT_TRUE(WaitFor([&] {
    return (*tenant)->session()->scheduler().stats().inflight == 1;
  }));
  auto shed = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two"),
                    {{"X-Hypre-Deadline-Ms", "50"}});
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 429) << shed->body;
  slow.join();
}

// --- Concurrency (the TSan job leans on this) ------------------------------

TEST_F(HttpServerTest, ConcurrentMutateAndReadMixStaysConsistent) {
  StartServer();
  // Warm both the tenant and its engine before racing.
  auto warm = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two"));
  ASSERT_EQ(warm->status, 200);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0}, writes_ok{0}, failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      const char* algorithm = t == 0 ? "combine-two" : (t == 1 ? "ta" : "peps");
      Json extra = Json::Object();
      if (t != 0) extra.Set("k", Json::Int(5));
      const std::string body = EnumerateBody(algorithm, std::move(extra));
      while (!stop.load(std::memory_order_relaxed)) {
        auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate", body);
        if (reply.ok() && reply->status == 200) {
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread writer([&] {
    int64_t pid = 910000;
    while (!stop.load(std::memory_order_relaxed)) {
      Json row = Json::Array();
      row.Append(Json::Int(pid));
      row.Append(Json::Str("racer"));
      row.Append(Json::Int(2009));
      row.Append(Json::Str("SIGMOD"));
      Json op = Json::Object();
      op.Set("op", Json::Str("append"));
      op.Set("table", Json::Str("dblp"));
      op.Set("row", std::move(row));
      Json ops = Json::Array();
      ops.Append(std::move(op));
      Json body = Json::Object();
      body.Set("ops", std::move(ops));
      auto reply = Fetch(port(), "POST", "/v1/alpha/mutate", body.Dump());
      if (reply.ok() && reply->status == 200) {
        writes_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      ++pid;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)Fetch(port(), "GET", "/v1/alpha/stats", "");
      (void)Fetch(port(), "GET", "/metrics", "");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  for (auto& thread : readers) thread.join();
  writer.join();
  scraper.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GT(writes_ok.load(), 0u);
}

// --- Keep-alive, endpoints, shutdown ---------------------------------------

TEST_F(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", port());
  ASSERT_TRUE(fd.ok());
  const std::string body = EnumerateBody("combine-two");
  std::string first_body;
  for (int i = 0; i < 5; ++i) {
    auto reply = SendHttpRequest(*fd, "POST", "/v1/alpha/enumerate", body);
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status().ToString();
    ASSERT_EQ(reply->status, 200);
    if (i == 0) {
      first_body = reply->body;
    } else {
      EXPECT_EQ(StripStats(reply->body), StripStats(first_body));
    }
  }
  // Connection: close is honored.
  auto last = SendHttpRequest(*fd, "GET", "/healthz", "",
                              {{"Connection", "close"}});
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->status, 200);
  char byte;
  EXPECT_EQ(::recv(*fd, &byte, 1, 0), 0);  // server closed
  ::close(*fd);
}

TEST_F(HttpServerTest, HealthzAndMetricsEndpoints) {
  StartServer();
  auto health = Fetch(port(), "GET", "/healthz", "");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health->status, 200);
  auto doc = Json::Parse(health->body, "healthz");
  ASSERT_TRUE(doc.ok()) << health->body;
  EXPECT_EQ(doc->GetString("status", "t").value(), "ok");
  auto names = doc->GetArray("tenants", "t");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ((*names)->size(), 2u);

  // Touch a tenant so server metrics have been registered and bumped.
  auto warm = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two"));
  ASSERT_EQ(warm->status, 200);
  auto metrics = Fetch(port(), "GET", "/metrics", "");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  const std::string* type = FindHeader(*metrics, "content-type");
  ASSERT_NE(type, nullptr);
  EXPECT_NE(type->find("text/plain"), std::string::npos);
#if HYPRE_TELEMETRY_ENABLED
  EXPECT_NE(metrics->body.find("hypre_server_requests_total"),
            std::string::npos)
      << metrics->body.substr(0, 500);
  EXPECT_NE(metrics->body.find("# TYPE"), std::string::npos);
#else
  EXPECT_NE(metrics->body.find("telemetry compiled out"), std::string::npos);
#endif
}

TEST_F(HttpServerTest, GracefulStopFinishesInFlightRequests) {
  StartServer();
  auto warm = Fetch(port(), "POST", "/v1/alpha/enumerate",
                    EnumerateBody("combine-two"));
  ASSERT_EQ(warm->status, 200);

  // Hammer the server from several threads, then Stop() mid-load. Every
  // response that arrives must be complete and valid; requests cut off by
  // the closing listener may fail at the transport, never with a torn
  // response body.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0}, torn{0};
  std::vector<std::thread> clients;
  const std::string body = EnumerateBody("combine-two");
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto reply = Fetch(port(), "POST", "/v1/alpha/enumerate", body);
        if (!reply.ok()) continue;  // connection refused/cut: fine
        if (reply->status == 200 &&
            Json::Parse(reply->body, "t").ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server_->Stop();  // drains in-flight, then joins workers
  stop.store(true);
  for (auto& thread : clients) thread.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_FALSE(server_->running());
  // The tenant layer survives the transport stopping and shuts down clean.
  auto shutdown = tenants_->ShutdownAll();
  EXPECT_TRUE(shutdown.ok()) << shutdown.ToString();
}

}  // namespace
}  // namespace server
}  // namespace hypre
