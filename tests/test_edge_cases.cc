// Cross-module edge cases not naturally covered by the per-module suites:
// deleted-node interactions, persistence of intensity-less nodes, ordering
// over joins, and workload configuration corners.
#include <gtest/gtest.h>

#include <sstream>

#include "graphdb/cypher_lite.h"
#include "graphdb/traversal.h"
#include "hypre/persistence.h"
#include "hypre/query_enhancement.h"
#include "reldb/executor.h"
#include "sqlparse/parser.h"
#include "workload/dblp_generator.h"
#include "workload/preference_extraction.h"

namespace hypre {
namespace {

// --- graphdb with deletions -------------------------------------------------

TEST(GraphDeletedNodes, TraversalSkipsTombstones) {
  graphdb::GraphStore g;
  graphdb::NodeId a = g.AddNode({}, {});
  graphdb::NodeId b = g.AddNode({}, {});
  graphdb::NodeId c = g.AddNode({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "T").ok());
  ASSERT_TRUE(g.AddEdge(b, c, "T").ok());
  ASSERT_TRUE(graphdb::HasPath(g, a, c, "T"));
  ASSERT_TRUE(g.RemoveNode(b).ok());
  EXPECT_FALSE(graphdb::HasPath(g, a, c, "T"));
  EXPECT_EQ(graphdb::ReachableFrom(g, a, "T").size(), 1u);
  // Queries over the store never surface the tombstone.
  auto r = graphdb::RunCypher(g, "START n=node(*) RETURN id(n)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  // Accessors on the dead id fail cleanly.
  EXPECT_FALSE(g.GetNode(b).ok());
  EXPECT_FALSE(g.SetNodeProperty(b, "x", graphdb::PropertyValue(1.0)).ok());
  EXPECT_FALSE(g.AddLabel(b, "L").ok());
  EXPECT_TRUE(g.OutEdges(b).empty());
}

TEST(GraphDeletedNodes, CypherByIdOnDeletedNodeIsEmpty) {
  graphdb::GraphStore g;
  graphdb::NodeId a = g.AddNode({}, {});
  ASSERT_TRUE(g.RemoveNode(a).ok());
  auto r = graphdb::RunCypher(g, "START n=node(0) RETURN id(n)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

// --- persistence corner: nodes without intensity ------------------------------

TEST(PersistenceEdge, IntensityLessNodeRoundTrips) {
  core::HypreGraph graph;
  // RestoreNode can create a node without an intensity (a predicate parked
  // in the profile before any value is known).
  auto id = graph.RestoreNode(5, "x=1", std::nullopt, std::nullopt);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(graph.NodeIntensity(*id).has_value());
  std::stringstream buffer;
  ASSERT_TRUE(core::SaveGraph(graph, &buffer).ok());
  core::HypreGraph restored;
  ASSERT_TRUE(core::LoadGraph(&buffer, &restored).ok());
  graphdb::NodeId rid = restored.FindNode(5, "x=1");
  ASSERT_NE(rid, graphdb::kInvalidNode);
  EXPECT_FALSE(restored.NodeIntensity(rid).has_value());
  // Duplicate restore is rejected.
  EXPECT_FALSE(restored.RestoreNode(5, "x=1", 0.5,
                                    core::Provenance::kUser)
                   .ok());
}

// --- executor: ORDER BY a column from the joined table -----------------------

TEST(ExecutorEdge, OrderByJoinedColumn) {
  reldb::Database db;
  workload::DblpConfig config;
  config.num_papers = 120;
  config.num_authors = 40;
  config.num_venues = 4;
  config.num_communities = 2;
  config.seed = 31;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());
  reldb::Executor exec(&db);
  reldb::Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  q.select = {"dblp_author.aid"};
  q.order_by = "dblp_author.aid";
  q.order_desc = false;
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_LE(r->rows[i - 1][0].AsInt(), r->rows[i][0].AsInt());
  }
}

TEST(ExecutorEdge, LimitLargerThanResult) {
  reldb::Database db;
  auto t = db.CreateTable("t", reldb::Schema({{"v", reldb::ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  (*t)->AppendUnchecked({reldb::Value::Int(1)});
  reldb::Executor exec(&db);
  reldb::Query q;
  q.from = "t";
  q.limit = 100;
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

// --- enhancer: empty-result predicates and NOT over the universe ---------------

TEST(EnhancerEdge, NotOverEverythingIsEmpty) {
  reldb::Database db;
  workload::DblpConfig config;
  config.num_papers = 100;
  config.num_authors = 30;
  config.num_venues = 3;
  config.num_communities = 2;
  config.seed = 5;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  core::QueryEnhancer enhancer(&db, base, "dblp.pid");

  auto all = sqlparse::ParsePredicate("dblp.pid>=0");
  ASSERT_TRUE(all.ok());
  auto count_all = enhancer.CountMatching(*all);
  ASSERT_TRUE(count_all.ok());
  EXPECT_GT(count_all.value(), 0u);
  auto none = sqlparse::ParsePredicate("NOT dblp.pid>=0");
  ASSERT_TRUE(none.ok());
  auto count_none = enhancer.CountMatching(*none);
  ASSERT_TRUE(count_none.ok());
  EXPECT_EQ(count_none.value(), 0u);
}

// --- extraction configuration corners -----------------------------------------

TEST(ExtractionEdge, MinPapersFiltersUsers) {
  reldb::Database db;
  workload::DblpConfig config;
  config.num_papers = 400;
  config.num_authors = 150;
  config.num_venues = 5;
  config.num_communities = 3;
  config.seed = 9;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());
  workload::ExtractionConfig loose;
  workload::ExtractionConfig strict;
  strict.min_papers = 5;
  auto all_users = workload::ExtractPreferences(db, loose);
  auto few_users = workload::ExtractPreferences(db, strict);
  ASSERT_TRUE(all_users.ok());
  ASSERT_TRUE(few_users.ok());
  EXPECT_LT(few_users->per_user_counts.size(),
            all_users->per_user_counts.size());
  EXPECT_GT(few_users->per_user_counts.size(), 0u);
}

TEST(ExtractionEdge, UnlimitedNegativesGrowTheProfile) {
  reldb::Database db;
  workload::DblpConfig config;
  config.num_papers = 400;
  config.num_authors = 150;
  config.num_venues = 8;
  config.num_communities = 3;
  config.seed = 9;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());
  workload::ExtractionConfig capped;
  workload::ExtractionConfig unlimited;
  unlimited.max_negative_per_user = 0;
  auto capped_prefs = workload::ExtractPreferences(db, capped);
  auto unlimited_prefs = workload::ExtractPreferences(db, unlimited);
  ASSERT_TRUE(capped_prefs.ok());
  ASSERT_TRUE(unlimited_prefs.ok());
  EXPECT_GE(unlimited_prefs->num_negative_prefs,
            capped_prefs->num_negative_prefs);
}

// --- HypreGraph: qualitative listing with all labels ---------------------------

TEST(GraphListingEdge, ListQualitativeAllLabels) {
  core::HypreGraph graph;
  ASSERT_TRUE(graph.AddQualitative({1, "a=1", "b=2", 0.3}).ok());
  ASSERT_TRUE(graph.AddQualitative({1, "b=2", "a=1", 0.3}).ok());  // CYCLE
  auto prefers_only = graph.ListQualitative(1, /*prefers_only=*/true);
  auto all_labels = graph.ListQualitative(1, /*prefers_only=*/false);
  EXPECT_EQ(prefers_only.size(), 1u);
  EXPECT_EQ(all_labels.size(), 2u);
  bool saw_cycle = false;
  for (const auto& edge : all_labels) {
    if (edge.label == core::EdgeLabel::kCycle) saw_cycle = true;
  }
  EXPECT_TRUE(saw_cycle);
}

}  // namespace
}  // namespace hypre
