// Tests for the durable storage layer: format primitives, JSON catalog,
// write-ahead log, snapshots, journal truncation edge cases, and the
// api::Session storage surface (AttachStorage / SaveSnapshot /
// OpenFromSnapshot / auto-checkpoint).
//
// The load-bearing guarantees:
//  * every on-disk artifact round-trips exactly (bytes in == state out);
//  * a torn WAL tail recovers the valid prefix, while a fully-present
//    record failing a checksum fails CLOSED (never a silent drop);
//  * a session reopened from a snapshot answers enumeration requests
//    byte-identically to the session that wrote it.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "hypre/api/session.h"
#include "hypre/storage/format.h"
#include "common/json.h"
#include "hypre/storage/snapshot.h"
#include "hypre/storage/store.h"
#include "hypre/storage/wal.h"
#include "sqlparse/select_parser.h"
#include "test_fixtures.h"

namespace hypre {
namespace storage {
namespace {

using core::testing_fixtures::BuildMiniDblp;
using core::testing_fixtures::MiniBaseQuery;
using core::testing_fixtures::MiniPreferences;

std::string MakeTempDir(const std::string& tag) {
  std::string tpl = ::testing::TempDir() + "hypre_" + tag + "_XXXXXX";
  std::vector<char> buf(tpl.begin(), tpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << tpl;
  return got == nullptr ? std::string() : std::string(got);
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  auto file = Env::Default()->NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append(bytes).ok());
  ASSERT_TRUE((*file)->Close().ok());
}

std::string ReadFileBytes(const std::string& path) {
  auto contents = Env::Default()->ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status().ToString();
  return contents.ok() ? *contents : std::string();
}

// --- format.h primitives ----------------------------------------------------

TEST(FormatTest, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32/IEEE check vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(FormatTest, BufferRoundTripsPrimitivesAndValues) {
  BufferWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutString("hello");
  w.PutValue(reldb::Value::Null());
  w.PutValue(reldb::Value::Int(-42));
  w.PutValue(reldb::Value::Real(3.25));
  w.PutValue(reldb::Value::Str("SIGMOD"));

  BufferReader r(w.data(), "test");
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_TRUE(r.ReadValue().value().is_null());
  EXPECT_EQ(r.ReadValue().value().AsInt(), -42);
  EXPECT_EQ(r.ReadValue().value().AsDouble(), 3.25);
  EXPECT_EQ(r.ReadValue().value().AsString(), "SIGMOD");
  EXPECT_TRUE(r.AtEnd());

  // Reading past the end fails with the context and offset in the message.
  auto past = r.ReadU32();
  ASSERT_FALSE(past.ok());
  EXPECT_NE(past.status().message().find("test"), std::string::npos);
}

TEST(FormatTest, SectionFramingDetectsTruncationAndCorruption) {
  std::string file;
  AppendSection(kSectionMeta, "payload-bytes", &file);
  AppendSection(kSectionEnd, "", &file);

  uint64_t offset = 0;
  auto meta = ReadSection(file.data(), file.size(), &offset, "test");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->type, kSectionMeta);
  EXPECT_EQ(std::string(meta->payload, meta->size), "payload-bytes");
  auto end = ReadSection(file.data(), file.size(), &offset, "test");
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end->type, kSectionEnd);
  EXPECT_EQ(offset, file.size());

  // Any truncation point inside the first section fails the read.
  for (size_t cut = 1; cut < file.size(); ++cut) {
    uint64_t off = 0;
    auto first = ReadSection(file.data(), cut, &off, "test");
    if (!first.ok()) continue;  // cut inside section 0's frame
    auto second = ReadSection(file.data(), cut, &off, "test");
    EXPECT_FALSE(second.ok()) << "cut=" << cut;
  }

  // A flipped payload bit fails the checksum.
  std::string corrupt = file;
  corrupt[corrupt.size() - 20] ^= 0x01;
  offset = 0;
  bool failed = false;
  while (true) {
    auto section = ReadSection(corrupt.data(), corrupt.size(), &offset,
                               "test");
    if (!section.ok()) {
      failed = true;
      break;
    }
    if (section->type == kSectionEnd) break;
  }
  EXPECT_TRUE(failed);
}

// --- json.h -----------------------------------------------------------------

TEST(JsonTest, RoundTripsThroughDumpAndParse) {
  Json obj = Json::Object();
  obj.Set("seq", Json::Int(int64_t{1} << 62));
  obj.Set("name", Json::Str("wal \"quoted\" \n path"));
  obj.Set("pi", Json::Double(3.5));
  obj.Set("flag", Json::Bool(true));
  obj.Set("nothing", Json::Null());
  Json arr = Json::Array();
  arr.Append(Json::Int(-7));
  arr.Append(Json::Str("x"));
  obj.Set("list", std::move(arr));

  auto parsed = Json::Parse(obj.Dump(), "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetInt("seq", "t").value(), int64_t{1} << 62);
  EXPECT_EQ(parsed->GetString("name", "t").value(), "wal \"quoted\" \n path");
  EXPECT_EQ(parsed->Find("pi")->AsDouble(), 3.5);
  EXPECT_TRUE(parsed->Find("flag")->AsBool());
  EXPECT_TRUE(parsed->Find("nothing")->is_null());
  ASSERT_TRUE(parsed->GetArray("list", "t").ok());
  EXPECT_EQ((*parsed->GetArray("list", "t"))->at(0).AsInt(), -7);
  // Insertion-ordered serialization: a second dump is byte-identical.
  EXPECT_EQ(parsed->Dump(), obj.Dump());
}

TEST(JsonTest, ParseFailsClosedOnMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing", "\"\\q\"",
        "nul", "01", "{\"a\" 1}"}) {
    EXPECT_FALSE(Json::Parse(bad, "test").ok()) << bad;
  }
  // Typed lookups fail on absent keys and wrong kinds.
  auto doc = Json::Parse("{\"a\":\"str\"}", "test");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->GetInt("a", "t").ok());
  EXPECT_FALSE(doc->GetInt("missing", "t").ok());
}

// --- WAL --------------------------------------------------------------------

reldb::Row SampleRow(int64_t pid, const char* venue) {
  return {reldb::Value::Int(pid), reldb::Value::Str(venue),
          reldb::Value::Null()};
}

void WriteSampleWal(const std::string& path, uint64_t base_seq) {
  auto writer = WalWriter::Create(Env::Default(), path, base_seq);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  reldb::Row row = SampleRow(9, "V1");
  ASSERT_TRUE((*writer)
                  ->AppendRecord(EncodeWalRecord(
                      base_seq, reldb::Mutation::Kind::kAppend, "dblp", 8,
                      &row))
                  .ok());
  ASSERT_TRUE((*writer)
                  ->AppendRecord(EncodeWalRecord(
                      base_seq + 1, reldb::Mutation::Kind::kDelete, "dblp", 3,
                      nullptr))
                  .ok());
  ASSERT_TRUE((*writer)->Sync().ok());
}

TEST(WalTest, RoundTripsAppendAndDeleteRecords) {
  std::string dir = MakeTempDir("wal");
  std::string path = dir + "/wal.log";
  WriteSampleWal(path, 20);

  auto wal = ReadWal(Env::Default(), path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->base_seq, 20u);
  ASSERT_EQ(wal->records.size(), 2u);
  EXPECT_EQ(wal->records[0].seq, 20u);
  EXPECT_EQ(wal->records[0].kind, reldb::Mutation::Kind::kAppend);
  EXPECT_EQ(wal->records[0].table, "dblp");
  EXPECT_EQ(wal->records[0].row_id, 8u);
  ASSERT_EQ(wal->records[0].row.size(), 3u);
  EXPECT_EQ(wal->records[0].row[0].AsInt(), 9);
  EXPECT_EQ(wal->records[0].row[1].AsString(), "V1");
  EXPECT_TRUE(wal->records[0].row[2].is_null());
  EXPECT_EQ(wal->records[1].seq, 21u);
  EXPECT_EQ(wal->records[1].kind, reldb::Mutation::Kind::kDelete);
  auto size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(wal->valid_size, *size);
}

TEST(WalTest, TornTailRecoversTheValidPrefixAtEveryCut) {
  std::string dir = MakeTempDir("wal_torn");
  std::string path = dir + "/wal.log";
  WriteSampleWal(path, 20);
  std::string full = ReadFileBytes(path);
  constexpr size_t kHeaderSize = 8 + 8 + 4;

  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteFileBytes(path, full.substr(0, cut));
    auto wal = ReadWal(Env::Default(), path);
    if (cut < kHeaderSize) {
      // The WAL only exists under its final name after a synced header, so
      // a short header is corruption, not a torn tail.
      EXPECT_FALSE(wal.ok()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(wal.ok()) << "cut=" << cut << ": " << wal.status().ToString();
    EXPECT_LE(wal->valid_size, cut) << "cut=" << cut;
    EXPECT_LE(wal->records.size(), 2u) << "cut=" << cut;
    // Whatever survived is a prefix: record i is only present if the full
    // file's record i fit entirely under the cut.
    for (size_t i = 0; i < wal->records.size(); ++i) {
      EXPECT_EQ(wal->records[i].seq, 20u + i) << "cut=" << cut;
    }
  }
}

TEST(WalTest, FullyPresentCorruptionFailsClosedAtEveryByte) {
  std::string dir = MakeTempDir("wal_flip");
  std::string path = dir + "/wal.log";
  WriteSampleWal(path, 20);
  std::string full = ReadFileBytes(path);

  // Flip one bit at every byte of the file. Every record is fully present,
  // so no flip may be silently absorbed: either some checksum catches it
  // (the read fails) or the decoded records must be unchanged (impossible —
  // every byte of this file is covered by a checksum, so we simply require
  // failure).
  for (size_t i = 0; i < full.size(); ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    WriteFileBytes(path, corrupt);
    auto wal = ReadWal(Env::Default(), path);
    EXPECT_FALSE(wal.ok()) << "flipped byte " << i;
  }
}

TEST(WalTest, AttachTruncatesTheTornTailAndResumesAppending) {
  std::string dir = MakeTempDir("wal_attach");
  std::string path = dir + "/wal.log";
  WriteSampleWal(path, 20);
  std::string full = ReadFileBytes(path);
  // Simulate a torn tail: half of record 1 survives.
  WriteFileBytes(path, full.substr(0, full.size() - 5));
  auto torn = ReadWal(Env::Default(), path);
  ASSERT_TRUE(torn.ok());
  ASSERT_EQ(torn->records.size(), 1u);

  auto writer = WalWriter::Attach(Env::Default(), path, torn->valid_size);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)
                  ->AppendRecord(EncodeWalRecord(
                      21, reldb::Mutation::Kind::kDelete, "dblp", 5, nullptr))
                  .ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  auto repaired = ReadWal(Env::Default(), path);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ASSERT_EQ(repaired->records.size(), 2u);
  EXPECT_EQ(repaired->records[1].seq, 21u);
  EXPECT_EQ(repaired->records[1].row_id, 5u);
}

// --- Snapshot ---------------------------------------------------------------

TEST(SnapshotTest, RoundTripsTablesTombstonesAndIndexes) {
  reldb::Database db;
  BuildMiniDblp(&db);
  ASSERT_TRUE(db.GetTable("dblp")->Delete(4).ok());  // pid 5 -> tombstone
  uint64_t seq = db.journal().sequence();

  std::string dir = MakeTempDir("snap");
  std::string path = dir + "/snapshot.hypre";
  ASSERT_TRUE(
      WriteSnapshot(Env::Default(), path, db, seq, {}).ok());

  auto contents = ReadSnapshot(Env::Default(), path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->journal_sequence, seq);
  reldb::Database* restored = contents->db.get();
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->TableNames(), db.TableNames());
  // The restored journal starts numbering at the snapshot's sequence and
  // records nothing for the restore itself.
  EXPECT_EQ(restored->journal().sequence(), seq);
  EXPECT_EQ(restored->journal().start(), seq);

  const reldb::Table* dblp = restored->GetTable("dblp");
  ASSERT_NE(dblp, nullptr);
  // Physical row space is preserved, tombstone included.
  EXPECT_EQ(dblp->num_rows(), 8u);
  EXPECT_EQ(dblp->num_live_rows(), 7u);
  EXPECT_TRUE(dblp->is_deleted(4));
  EXPECT_EQ(dblp->row(4)[0].AsInt(), 5);  // payload retained
  // Indexes were rebuilt from the catalog and skip the tombstone.
  const reldb::HashIndex* venue = dblp->GetHashIndex("venue");
  ASSERT_NE(venue, nullptr);
  for (size_t r = 0; r < db.GetTable("dblp")->num_rows(); ++r) {
    EXPECT_EQ(dblp->row(r), db.GetTable("dblp")->row(r)) << "row " << r;
  }
}

TEST(SnapshotTest, EveryFlippedBitFailsClosed) {
  reldb::Database db;
  BuildMiniDblp(&db);
  std::string dir = MakeTempDir("snap_flip");
  std::string path = dir + "/snapshot.hypre";
  ASSERT_TRUE(WriteSnapshot(Env::Default(), path, db,
                            db.journal().sequence(), {})
                  .ok());
  std::string full = ReadFileBytes(path);
  // Stride 3 keeps the matrix fast while still hitting every section.
  for (size_t i = 0; i < full.size(); i += 3) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    WriteFileBytes(path, corrupt);
    EXPECT_FALSE(ReadSnapshot(Env::Default(), path).ok())
        << "flipped byte " << i;
  }
  // Every truncation fails closed too (the end marker is load-bearing).
  for (size_t cut = 0; cut < full.size(); cut += 3) {
    WriteFileBytes(path, full.substr(0, cut));
    EXPECT_FALSE(ReadSnapshot(Env::Default(), path).ok()) << "cut " << cut;
  }
}

// --- MutationJournal edge cases (satellite: journal test coverage) ----------

TEST(MutationJournalTest, TruncatingAnEmptyJournalIsANoOp) {
  reldb::MutationJournal journal;
  journal.TruncateTo(0);
  journal.TruncateTo(100);  // beyond sequence(): clamped, still a no-op
  EXPECT_EQ(journal.start(), 0u);
  EXPECT_EQ(journal.sequence(), 0u);
  EXPECT_EQ(journal.num_retained(), 0u);
  journal.SetStart(7);  // still legal after the no-op truncations
  EXPECT_EQ(journal.start(), 7u);
  EXPECT_EQ(journal.sequence(), 7u);
}

TEST(MutationJournalTest, TruncationDropsWholeSegmentsOnly) {
  reldb::MutationJournal journal;
  const uint64_t seg = reldb::MutationJournal::kSegmentEntries;
  for (uint64_t i = 0; i < 2 * seg + 10; ++i) {
    journal.RecordAppend("t", i);
  }
  // Mid-segment truncation keeps the containing segment.
  journal.TruncateTo(seg / 2);
  EXPECT_EQ(journal.start(), 0u);
  journal.TruncateTo(seg);
  EXPECT_EQ(journal.start(), seg);
  // Sequence numbers survive truncation: entry(seq) addresses the same
  // mutation it always did.
  EXPECT_EQ(journal.entry(seg).row, seg);
  // Truncating to sequence() drops everything, the partial tail segment
  // included — it is wholly covered.
  journal.TruncateTo(journal.sequence());
  EXPECT_EQ(journal.start(), journal.sequence());
  EXPECT_EQ(journal.num_retained(), 0u);
}

TEST(MutationJournalTest, ReplayIsIdempotentBySequence) {
  reldb::MutationJournal journal;
  journal.RecordAppend("t", 0);
  journal.RecordDelete("t", 0);
  journal.RecordAppend("t", 1);

  // A consumer that replays from its cursor twice sees the suffix once
  // each time — and an up-to-date cursor sees nothing (the idempotence the
  // WAL replay path relies on when the snapshot already covers a record).
  size_t seen = 0;
  journal.ForEachSince(1, [&](const reldb::Mutation&) { ++seen; });
  EXPECT_EQ(seen, 2u);
  seen = 0;
  journal.ForEachSince(journal.sequence(),
                       [&](const reldb::Mutation&) { ++seen; });
  EXPECT_EQ(seen, 0u);
  // A cursor below start() clamps instead of faulting.
  journal.TruncateTo(journal.sequence());
  seen = 0;
  journal.ForEachSince(0, [&](const reldb::Mutation&) { ++seen; });
  EXPECT_EQ(seen, 0u);
}

TEST(MutationJournalTest, DeleteBeforeCheckpointKeepsThePayloadSpillable) {
  // A row appended and deleted between two checkpoints: the WAL spill that
  // runs at the next checkpoint must still find the append's payload (the
  // table retains tombstone payloads precisely for this).
  auto db = std::make_unique<reldb::Database>();
  auto table = db->CreateTable(
      "t", reldb::Schema({{"id", reldb::ValueType::kInt64}}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append({reldb::Value::Int(1)}).ok());

  std::string dir = MakeTempDir("tombstone_spill");
  StorageOptions options;
  auto store = EngineStore::Open(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->InitialCheckpoint(db.get(), {}).ok());
  uint64_t base = (*store)->snapshot_sequence();

  // Append + delete entirely within the un-checkpointed tail.
  ASSERT_TRUE((*table)->Append({reldb::Value::Int(2)}).ok());
  ASSERT_TRUE((*table)->Delete(1).ok());
  ASSERT_TRUE((*store)->CommitJournal(*db).ok());

  auto wal = ReadWal(Env::Default(), (*store)->wal_path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(wal->records.size(), 2u);
  EXPECT_EQ(wal->records[0].kind, reldb::Mutation::Kind::kAppend);
  ASSERT_EQ(wal->records[0].row.size(), 1u);
  EXPECT_EQ(wal->records[0].row[0].AsInt(), 2);  // dead row, payload intact
  EXPECT_EQ(wal->records[1].kind, reldb::Mutation::Kind::kDelete);
  EXPECT_EQ(wal->records[1].row_id, 1u);

  // And recovery applies both: the row exists as a tombstone.
  store->reset();
  auto reopened = EngineStore::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  auto recovered = (*reopened)->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  reldb::Table* t = recovered->db->GetTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->num_live_rows(), 1u);
  EXPECT_TRUE(t->is_deleted(1));
  EXPECT_EQ(recovered->db->journal().sequence(), base + 2);
}

TEST(MutationJournalTest, RecoveryIsDeterministic) {
  // Recovering the same directory twice yields identical databases — the
  // replay path has no hidden state.
  auto db = std::make_unique<reldb::Database>();
  BuildMiniDblp(db.get());
  std::string dir = MakeTempDir("recover_twice");
  StorageOptions options;
  {
    auto store = EngineStore::Open(dir, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->InitialCheckpoint(db.get(), {}).ok());
    ASSERT_TRUE(db->GetTable("dblp")
                    ->Append({reldb::Value::Int(9), reldb::Value::Str("V1"),
                              reldb::Value::Int(2009)})
                    .ok());
    ASSERT_TRUE((*store)->CommitJournal(*db).ok());
  }
  for (int round = 0; round < 2; ++round) {
    auto store = EngineStore::Open(dir, options);
    ASSERT_TRUE(store.ok());
    auto recovered = (*store)->Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const reldb::Table* dblp = recovered->db->GetTable("dblp");
    ASSERT_NE(dblp, nullptr);
    EXPECT_EQ(dblp->num_rows(), 9u) << "round " << round;
    EXPECT_EQ(recovered->db->journal().sequence(),
              db->journal().sequence())
        << "round " << round;
  }
}

// --- Session storage surface ------------------------------------------------

class SessionStorageTest : public ::testing::Test {
 protected:
  static std::unique_ptr<reldb::Database> MakeDb() {
    auto db = std::make_unique<reldb::Database>();
    BuildMiniDblp(db.get());
    return db;
  }

  static api::EnumerationRequest MakeRequest(const std::string& algorithm) {
    api::EnumerationRequest request;
    request.algorithm = algorithm;
    request.base_query = MiniBaseQuery();
    request.key_column = "dblp.pid";
    request.preferences = MiniPreferences();
    return request;
  }

  static void ExpectSameRecords(const api::EnumerationResult& actual,
                                const api::EnumerationResult& expected,
                                const std::string& label) {
    ASSERT_EQ(actual.records.size(), expected.records.size()) << label;
    for (size_t i = 0; i < actual.records.size(); ++i) {
      EXPECT_EQ(actual.records[i].predicate_sql,
                expected.records[i].predicate_sql)
          << label << " record " << i;
      EXPECT_EQ(actual.records[i].num_tuples, expected.records[i].num_tuples)
          << label << " record " << i;
      EXPECT_EQ(actual.records[i].intensity, expected.records[i].intensity)
          << label << " record " << i;
    }
  }
};

TEST_F(SessionStorageTest, AttachStorageRequiresAnOwnedDatabase) {
  reldb::Database db;
  BuildMiniDblp(&db);
  api::Session borrowed(&db);
  Status st = borrowed.AttachStorage(MakeTempDir("borrowed"));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("owns"), std::string::npos) << st.ToString();
}

TEST_F(SessionStorageTest, AttachStorageRefusesAnExistingSnapshot) {
  std::string dir = MakeTempDir("attach_twice");
  uint64_t saved_seq = 0;
  {
    api::Session first(MakeDb());
    ASSERT_TRUE(first.AttachStorage(dir).ok());
    saved_seq = first.store()->snapshot_sequence();
  }
  // Pointing a second session's AttachStorage at the same directory would
  // overwrite the first one's durable state with an initial checkpoint of
  // unrelated in-memory data — it must refuse, not silently destroy.
  api::Session second(MakeDb());
  Status st = second.AttachStorage(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("OpenFromSnapshot"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(second.has_storage());
  // The refusal left the original durable state intact and reopenable.
  auto reopened = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->db()->journal().sequence(), saved_seq);
}

TEST_F(SessionStorageTest, SnapshotLeafWordCountOverflowFailsClosed) {
  // A crafted leaf section whose declared word count wraps `num_words * 8`
  // past 2^64 must be rejected with a clean Status: a multiply-based length
  // check passes on the wrapped product and the bogus count then reaches
  // words.reserve() as a multi-exabyte allocation (std::length_error).
  std::string dir = MakeTempDir("leaf_overflow");
  {
    api::Session session(MakeDb());
    // Warm the engine so the snapshot carries real leaf sections.
    ASSERT_TRUE(session.Enumerate(MakeRequest("combine-two")).ok());
    ASSERT_TRUE(session.AttachStorage(dir).ok());
  }
  std::string path = dir + "/snapshot.hypre";
  std::string full = ReadFileBytes(path);

  // Walk the section table to the first leaf.
  uint64_t offset = 8;  // past the magic
  Section leaf;
  for (;;) {
    auto section = ReadSection(full.data(), full.size(), &offset, "test");
    ASSERT_TRUE(section.ok()) << section.status().ToString();
    ASSERT_NE(section->type, uint32_t{kSectionEnd})
        << "snapshot carries no leaf section";
    if (section->type == kSectionLeaf) {
      leaf = *section;
      break;
    }
  }

  // Leaf payload = [string sql][u64 num_words][words...]. Overwrite
  // num_words with 2^61 + words, whose *8 wraps to exactly the remaining
  // byte count, and re-stamp the section checksum so only the semantic
  // guard stands between the count and the allocator.
  size_t payload_off = static_cast<size_t>(leaf.payload - full.data());
  BufferReader r(leaf.payload, leaf.size, "leaf");
  ASSERT_TRUE(r.ReadString().ok());
  size_t words_at = payload_off + r.offset();
  uint64_t num_word_bytes = leaf.size - r.offset() - 8;
  BufferWriter patched_count;
  patched_count.PutU64((uint64_t{1} << 61) + num_word_bytes / 8);
  full.replace(words_at, 8, patched_count.data());
  BufferWriter patched_crc;
  patched_crc.PutU32(Crc32(full.data() + payload_off, leaf.size));
  full.replace(static_cast<size_t>(leaf.file_offset) + 12, 4,
               patched_crc.data());
  WriteFileBytes(path, full);

  auto contents = ReadSnapshot(Env::Default(), path);
  ASSERT_FALSE(contents.ok());
  EXPECT_NE(contents.status().message().find("bitmap words"),
            std::string::npos)
      << contents.status().ToString();
}

TEST_F(SessionStorageTest, ReopenedSessionAnswersByteIdentically) {
  std::string dir = MakeTempDir("session_e2e");
  api::EnumerationRequest request = MakeRequest("combine-two");
  api::EnumerationResult reference;
  uint64_t saved_seq = 0;
  {
    api::Session session(MakeDb());
    // Warm the engine BEFORE attaching so the snapshot carries a populated
    // universe and leaf cache.
    ASSERT_TRUE(session.Enumerate(request).ok());
    ASSERT_TRUE(session.AttachStorage(dir).ok());

    // Mutate past the initial checkpoint, checkpoint, mutate again, and
    // group-commit the tail — the reopened session must see all of it.
    reldb::Table* dblp = session.mutable_db()->GetTable("dblp");
    reldb::Table* da = session.mutable_db()->GetTable("dblp_author");
    ASSERT_TRUE(dblp->Append({reldb::Value::Int(9), reldb::Value::Str("V1"),
                              reldb::Value::Int(2009)})
                    .ok());
    ASSERT_TRUE(da->Append({reldb::Value::Int(9), reldb::Value::Int(1)}).ok());
    ASSERT_TRUE(session.SaveSnapshot().ok());
    ASSERT_TRUE(dblp->Delete(4).ok());  // pid 5 disappears
    ASSERT_TRUE(da->Append({reldb::Value::Int(2), reldb::Value::Int(2)}).ok());
    ASSERT_TRUE(session.CommitJournal().ok());
    saved_seq = session.db()->journal().sequence();

    auto result = session.Enumerate(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference = std::move(result).TakeValue();
  }

  auto reopened = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  api::Session* session = reopened->get();
  EXPECT_EQ(session->db()->journal().sequence(), saved_seq);
  EXPECT_TRUE(session->has_storage());
  // The persisted engine came back as a cached engine (same cache key), so
  // the request reuses it rather than re-interning.
  EXPECT_EQ(session->num_cached_engines(), 1u);

  auto result = session->Enumerate(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRecords(*result, reference, "reopened combine-two");
  // The restored leaf cache means the repeat request is leaf-query-free.
  EXPECT_EQ(result->stats.num_leaf_queries, 0u);

  // Top-k algorithms agree too.
  api::EnumerationRequest topk = MakeRequest("ta");
  topk.k = 4;
  {
    api::Session fresh(MakeDb());
    reldb::Table* dblp = fresh.mutable_db()->GetTable("dblp");
    reldb::Table* da = fresh.mutable_db()->GetTable("dblp_author");
    ASSERT_TRUE(dblp->Append({reldb::Value::Int(9), reldb::Value::Str("V1"),
                              reldb::Value::Int(2009)})
                    .ok());
    ASSERT_TRUE(da->Append({reldb::Value::Int(9), reldb::Value::Int(1)}).ok());
    ASSERT_TRUE(dblp->Delete(4).ok());
    ASSERT_TRUE(da->Append({reldb::Value::Int(2), reldb::Value::Int(2)}).ok());
    auto expect = fresh.Enumerate(topk);
    ASSERT_TRUE(expect.ok());
    auto got = session->Enumerate(topk);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->top_k.size(), expect->top_k.size());
    for (size_t i = 0; i < got->top_k.size(); ++i) {
      EXPECT_EQ(got->top_k[i].key.Compare(expect->top_k[i].key), 0) << i;
      EXPECT_EQ(got->top_k[i].intensity, expect->top_k[i].intensity) << i;
    }
  }

  // The reopened session keeps checkpointing into the same directory.
  ASSERT_TRUE(session->mutable_db()
                  ->GetTable("dblp_author")
                  ->Append({reldb::Value::Int(3), reldb::Value::Int(1)})
                  .ok());
  ASSERT_TRUE(session->SaveSnapshot().ok());
  EXPECT_EQ(session->store()->snapshot_sequence(), saved_seq + 1);
}

TEST_F(SessionStorageTest, RecoveredTablesAnswerSqlThroughLazyIndexes) {
  // Recovery declares the cataloged indexes instead of building them (a
  // warm restart that only probes restored bitmaps never touches them).
  // The first SQL query against a recovered table must materialize what it
  // needs and answer exactly like the uncrashed database.
  std::string dir = MakeTempDir("lazy_idx");
  const std::string sql =
      "SELECT count(distinct dblp.pid) FROM dblp JOIN dblp_author ON "
      "dblp.pid = dblp_author.pid WHERE dblp.venue='V1'";
  std::string expected;
  {
    api::Session session(MakeDb());
    ASSERT_TRUE(session.Enumerate(MakeRequest("combine-two")).ok());
    auto reference = sqlparse::ExecuteSql(*session.db(), sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_EQ(reference->rows.size(), 1u);
    expected = reference->rows[0][0].ToString();
    ASSERT_TRUE(session.AttachStorage(dir).ok());
  }
  auto reopened = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto got = sqlparse::ExecuteSql(*(*reopened)->db(), sql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->rows.size(), 1u);
  EXPECT_EQ(got->rows[0][0].ToString(), expected);
  // The query's equality predicate touched the venue index, so by now it
  // is a built, live-maintained index again.
  EXPECT_NE((*reopened)->db()->GetTable("dblp")->GetHashIndex("venue"),
            nullptr);
}

TEST_F(SessionStorageTest, OpenFromSnapshotFailsClosedOnMissingOrCorrupt) {
  EXPECT_FALSE(
      api::Session::OpenFromSnapshot(MakeTempDir("empty_dir")).ok());

  std::string dir = MakeTempDir("corrupt_session");
  {
    api::Session session(MakeDb());
    ASSERT_TRUE(session.Enumerate(MakeRequest("combine-two")).ok());
    ASSERT_TRUE(session.AttachStorage(dir).ok());
  }
  std::string path = dir + "/snapshot.hypre";
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(api::Session::OpenFromSnapshot(dir).ok());
}

TEST_F(SessionStorageTest, AutoCheckpointFiresOnceEnoughMutationsAccrue) {
  std::string dir = MakeTempDir("auto_ckpt");
  StorageOptions options;
  options.auto_checkpoint_mutations = 3;
  api::Session session(MakeDb());
  api::EnumerationRequest request = MakeRequest("combine-two");
  ASSERT_TRUE(session.Enumerate(request).ok());
  ASSERT_TRUE(session.AttachStorage(dir, options).ok());
  uint64_t base = session.store()->snapshot_sequence();

  reldb::Table* da = session.mutable_db()->GetTable("dblp_author");
  // Two mutations: below the threshold, no new checkpoint.
  ASSERT_TRUE(da->Append({reldb::Value::Int(2), reldb::Value::Int(3)}).ok());
  ASSERT_TRUE(da->Append({reldb::Value::Int(5), reldb::Value::Int(1)}).ok());
  ASSERT_TRUE(session.Enumerate(request).ok());
  EXPECT_EQ(session.store()->snapshot_sequence(), base);

  // A third crosses it: the next request commits the WAL and hands the
  // snapshot write to the background worker before pinning.
  ASSERT_TRUE(da->Append({reldb::Value::Int(6), reldb::Value::Int(4)}).ok());
  ASSERT_TRUE(session.Enumerate(request).ok());
  // Wait for the worker to publish, then let a follow-up request retire the
  // snapshot (WAL rotation + journal truncation happen on the request path).
  while (session.checkpoint_in_flight()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(session.Enumerate(request).ok());
  EXPECT_EQ(session.store()->snapshot_sequence(), base + 3);

  // The directory is immediately reopenable at the auto-checkpointed state.
  auto reopened = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->db()->journal().sequence(), base + 3);
}

}  // namespace
}  // namespace storage
}  // namespace hypre
