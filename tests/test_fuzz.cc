// Randomized differential tests ("fuzz-light"):
//  1. random predicate ASTs: executor (push-down + index candidates) vs.
//     brute-force row evaluation;
//  2. parse -> print -> parse fixpoint on randomly generated predicates;
//  3. QueryEnhancer's group-level set algebra vs. naive per-key evaluation.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"
#include "hypre/query_enhancement.h"
#include "reldb/executor.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace reldb {
namespace {

/// Builds a random single-table database with mixed-type columns.
void BuildRandomTable(Rng* rng, Database* db, size_t rows) {
  auto table = db->CreateTable("t", Schema({{"id", ValueType::kInt64},
                                            {"cat", ValueType::kString},
                                            {"num", ValueType::kInt64},
                                            {"score", ValueType::kDouble}}));
  ASSERT_TRUE(table.ok());
  const char* cats[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(rng->NextBernoulli(0.1)
                      ? Value::Null()
                      : Value::Str(cats[rng->NextBounded(4)]));
    row.push_back(Value::Int(rng->NextInt(0, 30)));
    row.push_back(Value::Real(rng->NextDouble(0.0, 1.0)));
    (*table)->AppendUnchecked(std::move(row));
  }
  ASSERT_TRUE((*table)->CreateHashIndex("cat").ok());
  ASSERT_TRUE((*table)->CreateOrderedIndex("num").ok());
}

/// Generates a random predicate over the random table's columns.
ExprPtr RandomPredicate(Rng* rng, int depth) {
  const char* cats[] = {"a", "b", "c", "d", "zz"};
  if (depth <= 0 || rng->NextBernoulli(0.4)) {
    switch (rng->NextBounded(5)) {
      case 0:
        return Eq(Col("t", "cat"), Lit(Value::Str(cats[rng->NextBounded(5)])));
      case 1: {
        CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                           CompareOp::kGe, CompareOp::kNe};
        return Cmp(ops[rng->NextBounded(5)], Col("t", "num"),
                   Lit(Value::Int(rng->NextInt(0, 30))));
      }
      case 2: {
        int64_t lo = rng->NextInt(0, 20);
        return Between(Col("t", "num"), Value::Int(lo),
                       Value::Int(lo + rng->NextInt(0, 10)));
      }
      case 3:
        return In(Col("t", "cat"),
                  {Value::Str(cats[rng->NextBounded(5)]),
                   Value::Str(cats[rng->NextBounded(5)])});
      default:
        return Cmp(CompareOp::kGe, Col("t", "score"),
                   Lit(Value::Real(rng->NextDouble())));
    }
  }
  switch (rng->NextBounded(3)) {
    case 0:
      return MakeAnd(RandomPredicate(rng, depth - 1),
                     RandomPredicate(rng, depth - 1));
    case 1:
      return MakeOr(RandomPredicate(rng, depth - 1),
                    RandomPredicate(rng, depth - 1));
    default:
      return MakeNot(RandomPredicate(rng, depth - 1));
  }
}

class SingleTableAccessor : public RowAccessor {
 public:
  SingleTableAccessor(const Table* table, RowId row)
      : table_(table), row_(row) {}
  Result<Value> Get(const std::string& table,
                    const std::string& column) const override {
    if (!table.empty() && table != table_->name()) {
      return Status::NotFound("table");
    }
    int col = table_->schema().FindColumn(column);
    if (col < 0) return Status::NotFound("col");
    return table_->row(row_)[static_cast<size_t>(col)];
  }
  void set_row(RowId row) { row_ = row; }

 private:
  const Table* table_;
  RowId row_;
};

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, ExecutorMatchesBruteForce) {
  Rng rng(GetParam());
  Database db;
  BuildRandomTable(&rng, &db, 200);
  Executor exec(&db);
  const Table* table = db.GetTable("t");

  for (int trial = 0; trial < 25; ++trial) {
    ExprPtr predicate = RandomPredicate(&rng, 3);
    Query q;
    q.from = "t";
    q.where = predicate;
    q.select = {"t.id"};
    auto planned = exec.Execute(q);
    ASSERT_TRUE(planned.ok()) << predicate->ToString() << " -> "
                              << planned.status().ToString();
    std::unordered_set<int64_t> actual;
    for (const auto& row : planned->rows) actual.insert(row[0].AsInt());

    SingleTableAccessor accessor(table, 0);
    std::unordered_set<int64_t> expected;
    for (RowId id = 0; id < table->num_rows(); ++id) {
      accessor.set_row(id);
      auto v = Evaluate(*predicate, accessor);
      ASSERT_TRUE(v.ok());
      if (v.value()) expected.insert(table->row(id)[0].AsInt());
    }
    EXPECT_EQ(actual, expected) << predicate->ToString();
  }
}

TEST_P(FuzzSweep, ParsePrintParseFixpoint) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    ExprPtr original = RandomPredicate(&rng, 4);
    std::string printed = original->ToString();
    auto reparsed = sqlparse::ParsePredicate(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << " -> "
                               << reparsed.status().ToString();
    // The printed form is a fixpoint even when the tree shape normalizes
    // (e.g. nested same-operator nodes re-associate).
    EXPECT_EQ(printed, (*reparsed)->ToString());
    // And semantics are preserved: evaluate both over a random table.
    Database db;
    Rng table_rng(GetParam() * 131 + static_cast<uint64_t>(trial));
    BuildRandomTable(&table_rng, &db, 40);
    const Table* table = db.GetTable("t");
    SingleTableAccessor accessor(table, 0);
    for (RowId id = 0; id < table->num_rows(); ++id) {
      accessor.set_row(id);
      auto v1 = Evaluate(*original, accessor);
      auto v2 = Evaluate(**reparsed, accessor);
      ASSERT_TRUE(v1.ok());
      ASSERT_TRUE(v2.ok());
      EXPECT_EQ(v1.value(), v2.value()) << printed;
    }
  }
}

TEST_P(FuzzSweep, GroupSemanticsMatchNaivePerKeyEvaluation) {
  // Two-table join db: papers with 1-3 tags each; predicates over tags.
  Rng rng(GetParam() + 2000);
  Database db;
  auto papers = db.CreateTable("p", Schema({{"pid", ValueType::kInt64},
                                            {"venue", ValueType::kString}}));
  ASSERT_TRUE(papers.ok());
  auto tags = db.CreateTable(
      "tag", Schema({{"pid", ValueType::kInt64}, {"t", ValueType::kInt64}}));
  ASSERT_TRUE(tags.ok());
  const char* venues[] = {"V1", "V2", "V3"};
  std::map<int64_t, std::set<int64_t>> tags_of;
  std::map<int64_t, std::string> venue_of;
  for (int64_t pid = 0; pid < 60; ++pid) {
    std::string venue = venues[rng.NextBounded(3)];
    (*papers)->AppendUnchecked(Row{Value::Int(pid), Value::Str(venue)});
    venue_of[pid] = venue;
    size_t n = 1 + rng.NextBounded(3);
    for (size_t k = 0; k < n; ++k) {
      int64_t tag = rng.NextInt(0, 6);
      if (tags_of[pid].insert(tag).second) {
        (*tags)->AppendUnchecked(Row{Value::Int(pid), Value::Int(tag)});
      }
    }
  }
  ASSERT_TRUE((*papers)->CreateHashIndex("venue").ok());
  ASSERT_TRUE((*tags)->CreateHashIndex("t").ok());
  ASSERT_TRUE((*tags)->CreateHashIndex("pid").ok());

  Query base;
  base.from = "p";
  base.joins.push_back({"tag", "p.pid", "pid"});
  core::QueryEnhancer enhancer(&db, base, "p.pid");

  // Random boolean combinations of leaf predicates venue=X / t=N.
  std::function<ExprPtr(int)> random_pred = [&](int depth) -> ExprPtr {
    if (depth <= 0 || rng.NextBernoulli(0.45)) {
      if (rng.NextBernoulli(0.5)) {
        return Eq(Col("p", "venue"),
                  Lit(Value::Str(venues[rng.NextBounded(3)])));
      }
      return Eq(Col("tag", "t"), Lit(Value::Int(rng.NextInt(0, 6))));
    }
    switch (rng.NextBounded(3)) {
      case 0:
        return MakeAnd(random_pred(depth - 1), random_pred(depth - 1));
      case 1:
        return MakeOr(random_pred(depth - 1), random_pred(depth - 1));
      default:
        return MakeNot(random_pred(depth - 1));
    }
  };

  // Naive per-key evaluation of the group semantics: a leaf matches a key
  // iff some joined row satisfies it; booleans combine per key.
  std::function<bool(const Expr&, int64_t)> naive = [&](const Expr& e,
                                                        int64_t pid) -> bool {
    switch (e.kind()) {
      case ExprKind::kAnd: {
        for (const auto& c : static_cast<const NaryExpr&>(e).children()) {
          if (!naive(*c, pid)) return false;
        }
        return true;
      }
      case ExprKind::kOr: {
        for (const auto& c : static_cast<const NaryExpr&>(e).children()) {
          if (naive(*c, pid)) return true;
        }
        return false;
      }
      case ExprKind::kNot:
        return !naive(*static_cast<const NotExpr&>(e).child(), pid);
      default: {
        const auto& cmp = static_cast<const CompareExpr&>(e);
        const auto& ref = static_cast<const ColumnRefExpr&>(*cmp.lhs());
        const auto& lit = static_cast<const LiteralExpr&>(*cmp.rhs());
        if (ref.table() == "p") {
          return venue_of[pid] == lit.value().AsString();
        }
        return tags_of[pid].count(lit.value().AsInt()) > 0;
      }
    }
  };

  for (int trial = 0; trial < 30; ++trial) {
    ExprPtr predicate = random_pred(3);
    auto keys = enhancer.MatchingKeys(predicate);
    ASSERT_TRUE(keys.ok()) << predicate->ToString();
    std::set<int64_t> actual;
    for (const auto& key : *keys) actual.insert(key.AsInt());
    std::set<int64_t> expected;
    for (int64_t pid = 0; pid < 60; ++pid) {
      if (naive(*predicate, pid)) expected.insert(pid);
    }
    EXPECT_EQ(actual, expected) << predicate->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace reldb
}  // namespace hypre
