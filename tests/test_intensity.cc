// Intensity algebra tests: Eq. 4.1-4.4 and Propositions 1, 2, 6 —
// including parameterized property sweeps over the intensity ranges.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hypre/intensity.h"

namespace hypre {
namespace core {
namespace {

TEST(IntensityValidation, Ranges) {
  EXPECT_TRUE(IsValidQuantitativeIntensity(-1.0));
  EXPECT_TRUE(IsValidQuantitativeIntensity(0.0));
  EXPECT_TRUE(IsValidQuantitativeIntensity(1.0));
  EXPECT_FALSE(IsValidQuantitativeIntensity(1.0001));
  EXPECT_FALSE(IsValidQuantitativeIntensity(-1.0001));
  EXPECT_FALSE(IsValidQuantitativeIntensity(NAN));
  EXPECT_TRUE(IsValidQualitativeIntensity(0.0));
  EXPECT_TRUE(IsValidQualitativeIntensity(1.0));
  EXPECT_FALSE(IsValidQualitativeIntensity(-0.1));
}

TEST(IntensityFunctions, ZeroStrengthIsIdentity) {
  // Property 3 of §4.4: ql = 0 means equally preferred — no change.
  for (double qt : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(IntensityLeft(0.0, qt), qt);
    EXPECT_DOUBLE_EQ(IntensityRight(0.0, qt), qt);
  }
}

TEST(IntensityFunctions, KnownValues) {
  // qt=0.5, ql=1: left = min(1, 0.5 * 2^1) = 1.
  EXPECT_DOUBLE_EQ(IntensityLeft(1.0, 0.5), 1.0);
  // qt=0.5, ql=1: right = 0.5 * 2^-1 = 0.25.
  EXPECT_DOUBLE_EQ(IntensityRight(1.0, 0.5), 0.25);
  // Negative quantitative value: left moves toward zero, right away.
  EXPECT_DOUBLE_EQ(IntensityLeft(1.0, -0.5), -0.25);
  EXPECT_DOUBLE_EQ(IntensityRight(1.0, -0.5), -1.0);
}

TEST(CombineFunctions, KnownValues) {
  // The dissertation's worked Example 6.
  EXPECT_NEAR(CombineAnd(0.8, 0.5), 0.9, 1e-12);
  EXPECT_NEAR(CombineAnd(0.9, 0.2), 0.92, 1e-12);
  EXPECT_NEAR(CombineAnd(0.5, 0.2), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(CombineOr(0.8, 0.4), 0.6);
}

TEST(CombineFunctions, AndIdentityAndAbsorption) {
  EXPECT_DOUBLE_EQ(CombineAnd(0.0, 0.7), 0.7);  // 0 is the identity
  EXPECT_DOUBLE_EQ(CombineAnd(1.0, 0.7), 1.0);  // 1 absorbs
}

TEST(CombineFunctions, Folds) {
  std::vector<double> vals{0.8, 0.5, 0.2};
  EXPECT_NEAR(CombineAndAll(vals), 0.92, 1e-12);
  EXPECT_DOUBLE_EQ(CombineAndAll({}), 0.0);
  // OR fold: ((0.8+0.5)/2 + 0.2)/2 = 0.425
  EXPECT_DOUBLE_EQ(CombineOrFold(vals), 0.425);
  EXPECT_DOUBLE_EQ(CombineOrFold({}), 0.0);
  std::vector<double> one{0.3};
  EXPECT_DOUBLE_EQ(CombineOrFold(one), 0.3);
}

TEST(Proposition6, Bound) {
  // p1 = 0.75, p2 = 0.5: K = log(0.25)/log(0.5) = 2.
  EXPECT_NEAR(MinPredicatesToExceed(0.75, 0.5), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(MinPredicatesToExceed(0.3, 0.5), 1.0);  // already enough
  EXPECT_TRUE(std::isinf(MinPredicatesToExceed(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(MinPredicatesToExceed(1.0, 0.5)));
}

TEST(Proposition6, BoundIsSufficient) {
  // AND-combining ceil(K) preferences of intensity p2 reaches p1.
  double p1 = 0.9;
  double p2 = 0.3;
  double k = MinPredicatesToExceed(p1, p2);
  size_t n = static_cast<size_t>(std::ceil(k));
  std::vector<double> vals(n, p2);
  EXPECT_GE(CombineAndAll(vals) + 1e-12, p1);
  // One fewer is NOT enough.
  std::vector<double> fewer(n - 1, p2);
  EXPECT_LT(CombineAndAll(fewer), p1);
}

// --- parameterized sweeps ------------------------------------------------------

struct LeftRightCase {
  double ql;
  double qt;
};

class IntensityProperty : public ::testing::TestWithParam<LeftRightCase> {};

TEST_P(IntensityProperty, LeftDominatesInput) {
  // §4.4 property 1: left value >= the given quantitative value.
  auto [ql, qt] = GetParam();
  EXPECT_GE(IntensityLeft(ql, qt), qt - 1e-12);
}

TEST_P(IntensityProperty, RightDominatedByInput) {
  // §4.4 property 2: right value <= the given quantitative value.
  auto [ql, qt] = GetParam();
  EXPECT_LE(IntensityRight(ql, qt), qt + 1e-12);
}

TEST_P(IntensityProperty, ResultsStayInRange) {
  // §4.4 property 4: results never leave [-1, 1].
  auto [ql, qt] = GetParam();
  EXPECT_TRUE(IsValidQuantitativeIntensity(IntensityLeft(ql, qt)));
  EXPECT_TRUE(IsValidQuantitativeIntensity(IntensityRight(ql, qt)));
}

TEST_P(IntensityProperty, MonotoneInStrength) {
  // §4.4 property 3: a stronger qualitative preference widens the gap.
  auto [ql, qt] = GetParam();
  double stronger = std::min(1.0, ql + 0.25);
  EXPECT_GE(IntensityLeft(stronger, qt), IntensityLeft(ql, qt) - 1e-12);
  EXPECT_LE(IntensityRight(stronger, qt), IntensityRight(ql, qt) + 1e-12);
}

std::vector<LeftRightCase> SweepCases() {
  std::vector<LeftRightCase> cases;
  for (double ql : {0.0, 0.1, 0.3, 0.5, 0.75, 1.0}) {
    for (double qt : {-1.0, -0.6, -0.2, 0.0, 0.2, 0.5, 0.9, 1.0}) {
      cases.push_back({ql, qt});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntensityProperty,
                         ::testing::ValuesIn(SweepCases()));

struct TripleCase {
  double p1, p2, p3;
};

class CompositionProperty : public ::testing::TestWithParam<TripleCase> {};

TEST_P(CompositionProperty, Proposition1AndOrderIndependent) {
  auto [p1, p2, p3] = GetParam();
  double a = CombineAnd(p1, CombineAnd(p2, p3));
  double b = CombineAnd(p2, CombineAnd(p1, p3));
  double c = CombineAnd(p3, CombineAnd(p1, p2));
  EXPECT_NEAR(a, b, 1e-12);
  EXPECT_NEAR(b, c, 1e-12);
  // Closed form 1 - prod(1 - pi).
  EXPECT_NEAR(a, 1.0 - (1.0 - p1) * (1.0 - p2) * (1.0 - p3), 1e-12);
}

TEST_P(CompositionProperty, Proposition2OrOrderDependent) {
  // With p1 >= p2 >= p3: applying the larger value LAST yields the larger
  // fold result: f_or(p1, f_or(p2,p3)) >= f_or(p2, f_or(p1,p3)) >= ...
  auto [p1, p2, p3] = GetParam();
  std::vector<double> sorted{p1, p2, p3};
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double a = CombineOr(sorted[0], CombineOr(sorted[1], sorted[2]));
  double b = CombineOr(sorted[1], CombineOr(sorted[0], sorted[2]));
  double c = CombineOr(sorted[2], CombineOr(sorted[0], sorted[1]));
  EXPECT_GE(a, b - 1e-12);
  EXPECT_GE(b, c - 1e-12);
}

TEST_P(CompositionProperty, AndInflationaryOrReserved) {
  // §2.3.1 taxonomy: f_and >= max (inflationary) for non-negative inputs;
  // f_or lies between min and max (reserved).
  auto [p1, p2, p3] = GetParam();
  (void)p3;
  if (p1 >= 0 && p2 >= 0) {
    EXPECT_GE(CombineAnd(p1, p2) + 1e-12, std::max(p1, p2));
  }
  EXPECT_GE(CombineOr(p1, p2), std::min(p1, p2) - 1e-12);
  EXPECT_LE(CombineOr(p1, p2), std::max(p1, p2) + 1e-12);
}

std::vector<TripleCase> TripleCases() {
  std::vector<TripleCase> cases;
  for (double a : {0.9, 0.5, 0.2}) {
    for (double b : {0.8, 0.4, 0.1}) {
      for (double c : {0.7, 0.3, 0.05}) {
        cases.push_back({a, b, c});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompositionProperty,
                         ::testing::ValuesIn(TripleCases()));

}  // namespace
}  // namespace core
}  // namespace hypre
