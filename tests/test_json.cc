// hypre::Json hardening tests: the parser now sits at the network edge
// (HTTP request bodies), so malformed input is no longer a "corrupt
// snapshot" rarity — it is every byte an arbitrary client sends. This
// suite covers escape-correct encoding round-trips and a fuzz-ish
// malformed-input corpus: every prefix of a valid document, every
// single-byte corruption of one, plus a curated pile of classic JSON
// traps. The invariant throughout: Parse never crashes, never accepts a
// malformed document, and every accepted document re-dumps byte-stably.
#include <string>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"

namespace hypre {
namespace {

TEST(JsonEscapeTest, RoundTripsEveryControlCharacter) {
  for (int c = 0; c < 0x20; ++c) {
    std::string raw(1, static_cast<char>(c));
    Json doc = Json::Object();
    doc.Set("s", Json::Str(raw));
    const std::string dumped = doc.Dump();
    // The wire form must not contain a literal control byte.
    for (char b : dumped) {
      EXPECT_GE(static_cast<unsigned char>(b), 0x20u)
          << "control byte leaked for c=" << c;
    }
    auto parsed = Json::Parse(dumped, "escape");
    ASSERT_TRUE(parsed.ok()) << "c=" << c << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->GetString("s", "escape").value(), raw) << "c=" << c;
  }
}

TEST(JsonEscapeTest, RoundTripsQuotesBackslashesAndUtf8) {
  const std::vector<std::string> cases = {
      "\"",         "\\",           "\\\"",       "a\"b\\c",
      "\\\\\\\\",   "tab\there",    "nl\nthere",  "cr\rthere",
      "\xc3\xa9",                      // é (UTF-8 passes through raw)
      "\xe2\x82\xac",                  // €
      "\xf0\x9f\x92\xbe",              // 💾
      "mixed \"q\" \\ \n \t \xc3\xa9", "",
      std::string("embedded\0nul", 12),
  };
  for (const std::string& raw : cases) {
    Json doc = Json::Object();
    doc.Set("s", Json::Str(raw));
    auto parsed = Json::Parse(doc.Dump(), "escape");
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->GetString("s", "escape").value(), raw);
    // Stability: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(parsed->Dump(), doc.Dump());
  }
}

TEST(JsonEscapeTest, EscapedKeysRoundTrip) {
  Json doc = Json::Object();
  doc.Set("ke\"y\n\\", Json::Int(1));
  auto parsed = Json::Parse(doc.Dump(), "keys");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetInt("ke\"y\n\\", "keys").value(), 1);
}

// A representative valid document exercising every value kind.
const char kValidDoc[] =
    "{\"a\":1,\"b\":-2.5,\"c\":\"x\\\"y\\\\z\\u0007\",\"d\":true,"
    "\"e\":null,\"f\":[1,\"two\",{\"g\":false}],\"h\":{}}";

TEST(JsonFuzzTest, EveryPrefixOfAValidDocumentIsRejected) {
  const std::string doc = kValidDoc;
  ASSERT_TRUE(Json::Parse(doc, "fuzz").ok());
  for (size_t len = 0; len < doc.size(); ++len) {
    auto result = Json::Parse(doc.substr(0, len), "fuzz");
    EXPECT_FALSE(result.ok()) << "prefix length " << len << " parsed";
  }
}

TEST(JsonFuzzTest, SingleByteCorruptionsNeverCrash) {
  const std::string doc = kValidDoc;
  // Flip each position through a handful of hostile bytes. Some mutations
  // stay valid JSON (digit -> digit); the requirement is no crash and a
  // clean verdict either way, with errors carrying the context string.
  const char hostile[] = {'\0', '{', '}', '[', ']', '"', '\\',
                          ',',  ':', 'x', '9', ' ', '\x7f', '\xff'};
  for (size_t pos = 0; pos < doc.size(); ++pos) {
    for (char b : hostile) {
      std::string mutated = doc;
      mutated[pos] = b;
      auto result = Json::Parse(mutated, "fuzz-mut");
      if (!result.ok()) {
        EXPECT_NE(result.status().message().find("fuzz-mut"),
                  std::string::npos);
      }
    }
  }
}

TEST(JsonFuzzTest, ClassicMalformedCorpusIsRejected) {
  const std::vector<std::string> corpus = {
      // Structure
      "", " ", "{", "}", "[", "]", "{]", "[}", "{\"a\":1", "[1,2",
      "{\"a\":1}}", "[1]]", "{\"a\":1,}", "[1,]", "[,1]", "{,}",
      "{\"a\",}", "{\"a\"}", "{\"a\":}", "{:1}", "{1:2}", "{\"a\"::1}",
      "{\"a\":1 \"b\":2}", "[1 2]",
      // Literals
      "tru", "truee", "True", "FALSE", "nul", "nulll", "None", "undefined",
      // Numbers
      "01", "-01", "1.", ".5", "-", "+1", "1e", "1e+", "0x10", "1_000",
      "--1", "1..2", "9223372036854775808999999999",
      // Strings
      "\"unterminated", "\"bad\\q\"", "\"\\u12\"", "\"\\u12zz\"", "\"\\\"",
      "'single'", "\"tab\there\"",  // literal control byte inside a string
      // Trailing garbage
      "{} {}", "1 2", "null null", "{}x", "[]\"\"",
      // Duplicate-adjacent weirdness and separators
      "{\"a\":1;\"b\":2}", "[1;2]",
  };
  for (const std::string& bad : corpus) {
    auto result = Json::Parse(bad, "corpus");
    EXPECT_FALSE(result.ok()) << "accepted: " << bad;
  }
}

TEST(JsonFuzzTest, NestingBeyondTheDepthCapIsRejected) {
  // 64 is the documented cap; 63 opens parse fine.
  std::string deep_ok(63, '[');
  deep_ok += "1";
  deep_ok += std::string(63, ']');
  EXPECT_TRUE(Json::Parse(deep_ok, "depth").ok());

  std::string too_deep(100000, '[');
  auto result = Json::Parse(too_deep, "depth");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("deep"), std::string::npos);

  std::string deep_objects;
  for (int i = 0; i < 200; ++i) deep_objects += "{\"a\":";
  deep_objects += "1";
  for (int i = 0; i < 200; ++i) deep_objects += "}";
  EXPECT_FALSE(Json::Parse(deep_objects, "depth").ok());
}

TEST(JsonFuzzTest, IntegersSurviveExactlyAndErrorsCarryOffsets) {
  auto parsed = Json::Parse(
      "{\"max\":9223372036854775807,\"min\":-9223372036854775808}", "int");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetInt("max", "int").value(), INT64_MAX);
  EXPECT_EQ(parsed->GetInt("min", "int").value(), INT64_MIN);

  auto bad = Json::Parse("{\"a\": 01}", "offsets");
  ASSERT_FALSE(bad.ok());
  // The error names the context, points into the document, and carries the
  // ParseError code the HTTP layer maps to 400.
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find("offsets"), std::string::npos);
  EXPECT_NE(bad.status().message().find("at byte"), std::string::npos);
}

TEST(JsonFuzzTest, LargeFlatDocumentsParse) {
  // Breadth is fine (no cap); only depth is bounded.
  std::string wide = "[";
  for (int i = 0; i < 10000; ++i) {
    if (i > 0) wide += ",";
    wide += std::to_string(i);
  }
  wide += "]";
  auto parsed = Json::Parse(wide, "wide");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 10000u);
  EXPECT_EQ(parsed->at(9999).AsInt(), 9999);
}

}  // namespace
}  // namespace hypre
