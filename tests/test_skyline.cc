// Skyline extension tests (attribute-based preferences, §1.4/§8.2).
#include <gtest/gtest.h>

#include "common/random.h"
#include "hypre/skyline.h"
#include "reldb/database.h"

namespace hypre {
namespace core {
namespace {

using reldb::Row;
using reldb::RowId;
using reldb::Schema;
using reldb::Table;
using reldb::Value;
using reldb::ValueType;

Table MakeHotels() {
  Table t("hotel", Schema({{"name", ValueType::kString},
                           {"price", ValueType::kInt64},
                           {"distance", ValueType::kDouble}}));
  // (price, distance): skyline under (min, min) = rows 0, 1, 3.
  t.AppendUnchecked(Row{Value::Str("cheap-far"), Value::Int(40),
                        Value::Real(3.0)});
  t.AppendUnchecked(Row{Value::Str("mid-mid"), Value::Int(100),
                        Value::Real(0.5)});
  t.AppendUnchecked(
      Row{Value::Str("dominated"), Value::Int(120), Value::Real(0.9)});
  t.AppendUnchecked(Row{Value::Str("pricey-close"), Value::Int(200),
                        Value::Real(0.1)});
  return t;
}

std::vector<AttributePreference> MinMinPrefs() {
  return {{"price", AttributePreference::Direction::kMin, 0.5},
          {"distance", AttributePreference::Direction::kMin, 0.5}};
}

TEST(SkylineTest, DominatesBasics) {
  Table t = MakeHotels();
  auto prefs = MinMinPrefs();
  // Row 1 (100, 0.5) dominates row 2 (120, 0.9).
  EXPECT_TRUE(Dominates(t, 1, 2, prefs).value());
  EXPECT_FALSE(Dominates(t, 2, 1, prefs).value());
  // Rows 0 and 1 are incomparable.
  EXPECT_FALSE(Dominates(t, 0, 1, prefs).value());
  EXPECT_FALSE(Dominates(t, 1, 0, prefs).value());
  // A row never dominates itself.
  EXPECT_FALSE(Dominates(t, 1, 1, prefs).value());
}

TEST(SkylineTest, BnlFindsUndominatedSet) {
  Table t = MakeHotels();
  auto skyline = BlockNestedLoopSkyline(t, MinMinPrefs());
  ASSERT_TRUE(skyline.ok()) << skyline.status().ToString();
  EXPECT_EQ(*skyline, (std::vector<RowId>{0, 1, 3}));
}

TEST(SkylineTest, BnlOverCandidateBitmap) {
  Table t = MakeHotels();
  // Excluding row 1 removes the dominator of row 2, so the restricted
  // skyline is {0, 2, 3}.
  KeyBitmap candidates(t.num_rows(), /*all_set=*/true);
  candidates.Reset(1);
  auto skyline = BlockNestedLoopSkyline(t, MinMinPrefs(), candidates);
  ASSERT_TRUE(skyline.ok()) << skyline.status().ToString();
  EXPECT_EQ(*skyline, (std::vector<RowId>{0, 2, 3}));
  // A wrongly sized bitmap is rejected.
  EXPECT_FALSE(
      BlockNestedLoopSkyline(t, MinMinPrefs(), KeyBitmap(2)).ok());
}

TEST(SkylineTest, MaxDirection) {
  Table t = MakeHotels();
  // Maximize price: only the most expensive hotel survives.
  std::vector<AttributePreference> prefs{
      {"price", AttributePreference::Direction::kMax, 1.0}};
  auto skyline = BlockNestedLoopSkyline(t, prefs);
  ASSERT_TRUE(skyline.ok());
  EXPECT_EQ(*skyline, (std::vector<RowId>{3}));
}

TEST(SkylineTest, NullIsWorst) {
  Table t("x", Schema({{"v", ValueType::kInt64}}));
  t.AppendUnchecked(Row{Value::Int(5)});
  t.AppendUnchecked(Row{Value::Null()});
  std::vector<AttributePreference> prefs{
      {"v", AttributePreference::Direction::kMin, 1.0}};
  auto skyline = BlockNestedLoopSkyline(t, prefs);
  ASSERT_TRUE(skyline.ok());
  EXPECT_EQ(*skyline, (std::vector<RowId>{0}));
}

TEST(SkylineTest, ErrorsOnBadInput) {
  Table t = MakeHotels();
  EXPECT_FALSE(BlockNestedLoopSkyline(t, {}).ok());
  std::vector<AttributePreference> bad{
      {"nope", AttributePreference::Direction::kMin, 1.0}};
  EXPECT_FALSE(BlockNestedLoopSkyline(t, bad).ok());
}

TEST(SkylineTest, PriorityRankingRespondsToWeights) {
  Table t = MakeHotels();
  auto prefs = MinMinPrefs();
  auto skyline = BlockNestedLoopSkyline(t, prefs).value();

  // Price matters much more: the cheapest skyline hotel ranks first.
  prefs[0].weight = 0.9;
  prefs[1].weight = 0.1;
  auto by_price = RankSkylineByPriority(t, skyline, prefs);
  ASSERT_TRUE(by_price.ok());
  EXPECT_EQ((*by_price)[0], 0u);  // cheap-far

  // Distance matters much more: the closest ranks first.
  prefs[0].weight = 0.1;
  prefs[1].weight = 0.9;
  auto by_distance = RankSkylineByPriority(t, skyline, prefs);
  ASSERT_TRUE(by_distance.ok());
  EXPECT_EQ((*by_distance)[0], 3u);  // pricey-close
}

TEST(SkylineTest, PriorityRankingErrors) {
  Table t = MakeHotels();
  auto prefs = MinMinPrefs();
  prefs[0].weight = 0.0;
  prefs[1].weight = 0.0;
  auto skyline = BlockNestedLoopSkyline(t, MinMinPrefs()).value();
  EXPECT_FALSE(RankSkylineByPriority(t, skyline, prefs).ok());
  EXPECT_TRUE(RankSkylineByPriority(t, {}, MinMinPrefs()).value().empty());
}

// Property sweep: on random tables, every skyline member is undominated and
// every non-member is dominated by some member (soundness + completeness of
// BNL vs. the quadratic definition).
class SkylineRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkylineRandomized, MatchesQuadraticDefinition) {
  Rng rng(GetParam());
  Table t("r", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  for (int i = 0; i < 80; ++i) {
    t.AppendUnchecked(
        Row{Value::Int(rng.NextInt(0, 20)), Value::Int(rng.NextInt(0, 20))});
  }
  std::vector<AttributePreference> prefs{
      {"a", AttributePreference::Direction::kMin, 1.0},
      {"b", AttributePreference::Direction::kMax, 1.0}};
  auto skyline = BlockNestedLoopSkyline(t, prefs);
  ASSERT_TRUE(skyline.ok());
  std::set<RowId> members(skyline->begin(), skyline->end());
  for (RowId candidate = 0; candidate < t.num_rows(); ++candidate) {
    bool dominated = false;
    for (RowId other = 0; other < t.num_rows(); ++other) {
      if (other == candidate) continue;
      if (Dominates(t, other, candidate, prefs).value()) {
        dominated = true;
        break;
      }
    }
    EXPECT_EQ(members.count(candidate) > 0, !dominated)
        << "row " << candidate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylineRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace core
}  // namespace hypre
