// Parser tests: every predicate shape from the dissertation, error cases,
// and a parse -> print -> parse round-trip property sweep.
#include <gtest/gtest.h>

#include "reldb/expr.h"
#include "sqlparse/lexer.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace sqlparse {
namespace {

using reldb::ExprKind;
using reldb::ExprPtr;

ExprPtr MustParse(const std::string& text) {
  auto r = ParsePredicate(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? r.value() : nullptr;
}

TEST(LexerTest, TokenStream) {
  auto toks = Tokenize("dblp.venue = 'VLDB' AND year >= 2010");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenType> types;
  for (const auto& t : *toks) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kIdent, TokenType::kDot, TokenType::kIdent,
                TokenType::kEq, TokenType::kString, TokenType::kAnd,
                TokenType::kIdent, TokenType::kGe, TokenType::kInt,
                TokenType::kEnd}));
}

TEST(LexerTest, NumberForms) {
  auto toks = Tokenize("1 -2 3.5 -0.25 1e3 2.5E-2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kInt);
  EXPECT_EQ((*toks)[0].int_value, 1);
  EXPECT_EQ((*toks)[1].type, TokenType::kInt);
  EXPECT_EQ((*toks)[1].int_value, -2);
  EXPECT_EQ((*toks)[2].type, TokenType::kReal);
  EXPECT_DOUBLE_EQ((*toks)[2].real_value, 3.5);
  EXPECT_DOUBLE_EQ((*toks)[3].real_value, -0.25);
  EXPECT_DOUBLE_EQ((*toks)[4].real_value, 1000.0);
  EXPECT_DOUBLE_EQ((*toks)[5].real_value, 0.025);
}

TEST(LexerTest, QuoteStyles) {
  auto toks = Tokenize("\"INFOCOM\" 'O''Hara'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "INFOCOM");
  EXPECT_EQ((*toks)[1].text, "O'Hara");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(ParserTest, SimpleEquality) {
  ExprPtr e = MustParse("dblp.venue=\"INFOCOM\"");
  ASSERT_EQ(e->kind(), ExprKind::kCompare);
  EXPECT_EQ(e->ToString(), "dblp.venue='INFOCOM'");
}

TEST(ParserTest, UnqualifiedColumn) {
  ExprPtr e = MustParse("year>2010");
  EXPECT_EQ(e->ToString(), "year>2010");
}

TEST(ParserTest, Between) {
  ExprPtr e = MustParse("price between 7000 AND 16000");
  ASSERT_EQ(e->kind(), ExprKind::kBetween);
  EXPECT_EQ(e->ToString(), "price BETWEEN 7000 AND 16000");
}

TEST(ParserTest, InList) {
  ExprPtr e = MustParse("make IN ('BMW', 'Honda')");
  ASSERT_EQ(e->kind(), ExprKind::kInList);
  EXPECT_EQ(e->ToString(), "make IN ('BMW', 'Honda')");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  // a=1 OR b=2 AND c=3  parses as  a=1 OR (b=2 AND c=3)
  ExprPtr e = MustParse("a=1 OR b=2 AND c=3");
  ASSERT_EQ(e->kind(), ExprKind::kOr);
  const auto& orx = static_cast<const reldb::NaryExpr&>(*e);
  ASSERT_EQ(orx.children().size(), 2u);
  EXPECT_EQ(orx.children()[1]->kind(), ExprKind::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  ExprPtr e = MustParse("(a=1 OR b=2) AND c=3");
  ASSERT_EQ(e->kind(), ExprKind::kAnd);
}

TEST(ParserTest, NotBindsTightest) {
  ExprPtr e = MustParse("NOT a=1 AND b=2");
  ASSERT_EQ(e->kind(), ExprKind::kAnd);
  const auto& andx = static_cast<const reldb::NaryExpr&>(*e);
  EXPECT_EQ(andx.children()[0]->kind(), ExprKind::kNot);
}

TEST(ParserTest, DissertationPredicates) {
  // Every predicate string that appears in the dissertation's text.
  for (const char* text : {
           "dblp.venue=\"INFOCOM\"",
           "dblp.venue=\"PODS\"",
           "dblp_author.aid=128",
           "dblp_author.aid=116",
           "year>=2000 AND year<=2005",
           "year>=2009",
           "venue=\"VLDB\" AND year>=2010",
           "venue=\"VLDB\" AND year<2010",
           "(dblp.venue=\"INFOCOM\" OR dblp.venue=\"PODS\") AND "
           "(author.aid=128 OR author.aid=116)",
           "price between 7000 AND 16000",
           "mileage between 20000 and 50000",
           "make IN ('BMW', 'Honda')",
           "color in ('red')",
       }) {
    // "color in ('red')" alone is the PREFERRING-clause fragment; our
    // grammar accepts IN as a complete predicate.
    EXPECT_TRUE(ParsePredicate(text).ok()) << text;
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParsePredicate("").ok());
  EXPECT_FALSE(ParsePredicate("a=").ok());
  EXPECT_FALSE(ParsePredicate("a==1").ok());
  EXPECT_FALSE(ParsePredicate("(a=1").ok());
  EXPECT_FALSE(ParsePredicate("a=1 extra").ok());
  EXPECT_FALSE(ParsePredicate("a BETWEEN 1").ok());
  EXPECT_FALSE(ParsePredicate("a IN ()").ok());
  EXPECT_FALSE(ParsePredicate("a IN (1,)").ok());
  EXPECT_FALSE(ParsePredicate("AND a=1").ok());
  EXPECT_FALSE(ParsePredicate("a.b.c=1").ok());
}

TEST(ParserTest, LiteralOnLeft) {
  ExprPtr e = MustParse("2010 <= year");
  EXPECT_EQ(e->ToString(), "2010<=year");
}

// Round-trip property: parse(text).ToString() re-parses to a structurally
// identical tree, and the printed form is a fixed point.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParsePrintParse) {
  ExprPtr first = MustParse(GetParam());
  ASSERT_NE(first, nullptr);
  std::string printed = first->ToString();
  ExprPtr second = MustParse(printed);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(reldb::ExprEquals(*first, *second)) << printed;
  EXPECT_EQ(printed, second->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "dblp.venue='VLDB'", "a=1 AND b=2 AND c=3", "a=1 OR b=2 OR c=3",
        "a=1 AND (b=2 OR c=3)", "(a=1 OR b=2) AND (c=3 OR d=4)",
        "NOT (a=1)", "NOT (a=1 AND b=2)", "x BETWEEN -1 AND 1",
        "score>=0.5", "name!='x'", "v IN (1, 2, 3)",
        "v IN ('a', 'b')", "t.c<=-0.25",
        "(a=1 AND b=2) OR (a=2 AND b=1)",
        "dblp.venue='VLDB' AND (dblp_author.aid=1 OR dblp_author.aid=2)"));

}  // namespace
}  // namespace sqlparse
}  // namespace hypre
