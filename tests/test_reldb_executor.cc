// Executor tests: filters, index push-down, joins, projection, ordering,
// aggregation — including a property sweep checking the planned execution
// against brute-force evaluation.
#include <gtest/gtest.h>

#include "common/random.h"
#include "reldb/executor.h"
#include "sqlparse/parser.h"
#include "workload/canonical.h"
#include "workload/dblp_generator.h"

namespace hypre {
namespace reldb {
namespace {

ExprPtr Parse(const std::string& text) {
  auto r = sqlparse::ParsePredicate(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : nullptr;
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db_).ok());
  }
  Database db_;
};

TEST_F(ExecutorTest, FullScanNoWhere) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 9u);
  EXPECT_EQ(r->column_names.size(), 4u);  // all columns
}

TEST_F(ExecutorTest, EqualityFilterUsesIndex) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  q.where = Parse("dblp.venue='PVLDB'");
  q.select = {"dblp.pid"};
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);  // t3, t4, t5
}

TEST_F(ExecutorTest, RangeFilter) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  q.where = Parse("year BETWEEN 2000 AND 2009");
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);  // t1(2000) t2(2006) t5(2009) t7(2008) t9(2007)
}

TEST_F(ExecutorTest, RangeFilterCorrectCount) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  q.where = Parse("year >= 2010");
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 4u);  // t3 t4 t6 t8
}

TEST_F(ExecutorTest, OrderByDescWithLimit) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  q.select = {"dblp.pid", "dblp.year"};
  q.order_by = "dblp.year";
  q.order_desc = true;
  q.limit = 2;
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 2010);
  EXPECT_EQ(r->rows[1][1].AsInt(), 2010);
}

TEST_F(ExecutorTest, Projection) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  q.select = {"venue"};
  auto r = exec.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column_names, std::vector<std::string>{"venue"});
  EXPECT_EQ(r->rows[0].size(), 1u);
}

TEST_F(ExecutorTest, UnknownColumnErrors) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  q.select = {"nope"};
  EXPECT_FALSE(exec.Execute(q).ok());
  Query q2;
  q2.from = "nope_table";
  EXPECT_FALSE(exec.Execute(q2).ok());
}

TEST_F(ExecutorTest, CountDistinct) {
  Executor exec(&db_);
  Query q;
  q.from = "dblp";
  auto r = exec.CountDistinct(q, "venue");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4u);  // VLDB, PVLDB, SIGMOD, INFOCOM
}

TEST_F(ExecutorTest, ToSqlRendering) {
  Query q;
  q.from = "dblp";
  q.where = Parse("dblp.venue='VLDB'");
  q.select = {"dblp.pid"};
  q.order_by = "dblp.year";
  q.order_desc = true;
  q.limit = 3;
  EXPECT_EQ(q.ToSql(),
            "SELECT dblp.pid FROM dblp WHERE dblp.venue='VLDB' "
            "ORDER BY dblp.year DESC LIMIT 3");
}

TEST(ExecutorJoinTest, HashJoinWithPushdown) {
  Database db;
  workload::DblpConfig config;
  config.num_papers = 500;
  config.num_authors = 200;
  config.num_venues = 8;
  config.num_communities = 5;
  config.seed = 7;
  auto stats = workload::GenerateDblp(config, &db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  Executor exec(&db);
  Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  q.where = Parse("dblp.venue='SIGMOD'");

  // Join output count must equal the number of author links whose paper is a
  // SIGMOD paper — verified by brute force.
  auto result = exec.Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Table* dblp = db.GetTable("dblp");
  const Table* dblp_author = db.GetTable("dblp_author");
  std::set<int64_t> sigmod_pids;
  for (const auto& row : dblp->rows()) {
    if (row[3].AsString() == "SIGMOD") sigmod_pids.insert(row[0].AsInt());
  }
  size_t expected = 0;
  for (const auto& row : dblp_author->rows()) {
    if (sigmod_pids.count(row[0].AsInt()) > 0) ++expected;
  }
  EXPECT_EQ(result->rows.size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(ExecutorJoinTest, CountDistinctOverJoin) {
  Database db;
  workload::DblpConfig config;
  config.num_papers = 300;
  config.num_authors = 100;
  config.num_venues = 6;
  config.num_communities = 4;
  config.seed = 11;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());

  Executor exec(&db);
  Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  q.where = Parse("dblp_author.aid=1");
  auto count = exec.CountDistinct(q, "dblp.pid");
  ASSERT_TRUE(count.ok()) << count.status().ToString();

  const Table* dblp_author = db.GetTable("dblp_author");
  std::set<int64_t> expected;
  for (const auto& row : dblp_author->rows()) {
    if (row[1].AsInt() == 1) expected.insert(row[0].AsInt());
  }
  EXPECT_EQ(count.value(), expected.size());
}

TEST(ExecutorJoinTest, SelfJoinRejected) {
  Database db;
  ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db).ok());
  Executor exec(&db);
  Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp", "dblp.pid", "pid"});
  EXPECT_FALSE(exec.Execute(q).ok());
}

TEST_F(ExecutorTest, GroupByCountPerVenue) {
  Executor exec(&db_);
  GroupByQuery q;
  q.base.from = "dblp";
  q.group_by = {"dblp.venue"};
  q.aggregates = {{AggregateFunc::kCount, ""}};
  auto r = exec.ExecuteGroupBy(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Sorted by venue: INFOCOM(2), PVLDB(3), SIGMOD(2), VLDB(2).
  ASSERT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->column_names,
            (std::vector<std::string>{"dblp.venue", "count(*)"}));
  EXPECT_EQ(r->rows[0][0].AsString(), "INFOCOM");
  EXPECT_EQ(r->rows[0][1].AsInt(), 2);
  EXPECT_EQ(r->rows[1][0].AsString(), "PVLDB");
  EXPECT_EQ(r->rows[1][1].AsInt(), 3);
}

TEST_F(ExecutorTest, GroupByMinMaxAvgSum) {
  Executor exec(&db_);
  GroupByQuery q;
  q.base.from = "dblp";
  q.group_by = {"dblp.venue"};
  q.aggregates = {{AggregateFunc::kMin, "year"},
                  {AggregateFunc::kMax, "year"},
                  {AggregateFunc::kAvg, "year"},
                  {AggregateFunc::kSum, "year"}};
  auto r = exec.ExecuteGroupBy(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // PVLDB years: 2010, 2010, 2009.
  const Row& pvldb = r->rows[1];
  EXPECT_EQ(pvldb[1].AsInt(), 2009);
  EXPECT_EQ(pvldb[2].AsInt(), 2010);
  EXPECT_NEAR(pvldb[3].AsDouble(), (2010 + 2010 + 2009) / 3.0, 1e-9);
  EXPECT_NEAR(pvldb[4].AsDouble(), 2010 + 2010 + 2009, 1e-9);
}

TEST_F(ExecutorTest, GroupByGlobalGroupAndWhere) {
  Executor exec(&db_);
  GroupByQuery q;
  q.base.from = "dblp";
  q.base.where = Parse("year>=2010");
  q.aggregates = {{AggregateFunc::kCount, ""},
                  {AggregateFunc::kCountDistinct, "venue"}};
  auto r = exec.ExecuteGroupBy(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);  // single global group
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);  // t3 t4 t6 t8
  EXPECT_EQ(r->rows[0][1].AsInt(), 3);  // PVLDB, SIGMOD, INFOCOM
}

TEST_F(ExecutorTest, GroupByValidation) {
  Executor exec(&db_);
  GroupByQuery q;
  q.base.from = "dblp";
  EXPECT_FALSE(exec.ExecuteGroupBy(q).ok());  // no aggregates
  q.aggregates = {{AggregateFunc::kSum, "venue"}};
  EXPECT_FALSE(exec.ExecuteGroupBy(q).ok());  // SUM over strings
  q.aggregates = {{AggregateFunc::kCount, ""}};
  q.group_by = {"nope"};
  EXPECT_FALSE(exec.ExecuteGroupBy(q).ok());  // unknown column
}

TEST(ExecutorGroupByJoinTest, AuthorsPerVenue) {
  // Grouped aggregation over a join — the §6.2-style extraction query
  // "papers per (author, venue)" expressed in the engine itself.
  reldb::Database db;
  workload::DblpConfig config;
  config.num_papers = 300;
  config.num_authors = 80;
  config.num_venues = 5;
  config.num_communities = 4;
  config.seed = 17;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());
  Executor exec(&db);
  GroupByQuery q;
  q.base.from = "dblp";
  q.base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  q.group_by = {"dblp.venue"};
  q.aggregates = {{AggregateFunc::kCountDistinct, "dblp_author.aid"}};
  auto r = exec.ExecuteGroupBy(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 5u);
  // Cross-check one venue by brute force.
  const std::string venue = r->rows[0][0].AsString();
  std::set<int64_t> authors;
  const Table* dblp = db.GetTable("dblp");
  const Table* links = db.GetTable("dblp_author");
  std::set<int64_t> venue_pids;
  for (const auto& row : dblp->rows()) {
    if (row[3].AsString() == venue) venue_pids.insert(row[0].AsInt());
  }
  for (const auto& row : links->rows()) {
    if (venue_pids.count(row[0].AsInt()) > 0) authors.insert(row[1].AsInt());
  }
  EXPECT_EQ(static_cast<size_t>(r->rows[0][1].AsInt()), authors.size());
}

// Property sweep: for a corpus of predicates over the sample database, the
// planned execution (push-down + index candidates) matches brute-force
// row-by-row evaluation.
class ExecutorEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ExecutorEquivalence, PlannedMatchesBruteForce) {
  Database db;
  ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db).ok());
  Executor exec(&db);
  ExprPtr predicate = Parse(GetParam());
  ASSERT_NE(predicate, nullptr);

  Query q;
  q.from = "dblp";
  q.where = predicate;
  q.select = {"dblp.pid"};
  auto planned = exec.Execute(q);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  // Brute force through a map-backed accessor.
  class RowAcc : public RowAccessor {
   public:
    RowAcc(const Schema* schema, const Row* row) : schema_(schema), row_(row) {}
    Result<Value> Get(const std::string& table,
                      const std::string& column) const override {
      if (!table.empty() && table != "dblp") {
        return Status::NotFound("table " + table);
      }
      int idx = schema_->FindColumn(column);
      if (idx < 0) return Status::NotFound("col " + column);
      return (*row_)[static_cast<size_t>(idx)];
    }
   private:
    const Schema* schema_;
    const Row* row_;
  };
  const Table* dblp = db.GetTable("dblp");
  std::set<std::string> expected;
  for (const auto& row : dblp->rows()) {
    RowAcc acc(&dblp->schema(), &row);
    auto v = Evaluate(*predicate, acc);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    if (v.value()) expected.insert(row[0].AsString());
  }
  std::set<std::string> actual;
  for (const auto& row : planned->rows) actual.insert(row[0].AsString());
  EXPECT_EQ(actual, expected) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    PredicateCorpus, ExecutorEquivalence,
    ::testing::Values(
        "dblp.venue='VLDB'", "venue='PVLDB' AND year=2010",
        "venue='PVLDB' OR venue='SIGMOD'", "year BETWEEN 2006 AND 2009",
        "year>=2010", "year<2005", "year<=2000", "year>2012",
        "NOT (venue='INFOCOM')", "venue IN ('VLDB', 'PVLDB')",
        "(venue='VLDB' AND year>=2005) OR (venue='SIGMOD' AND year<2009)",
        "venue!='SIGMOD'", "pid='t1'", "year=2010 AND venue!='PVLDB'"));

}  // namespace
}  // namespace reldb
}  // namespace hypre
