// Unit tests for src/common: Status/Result, RNG, Zipf, strings, timer.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace hypre {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Conflict("x").code(), StatusCode::kConflict);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubler(Result<int> in) {
  HYPRE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::NotFound("n")).ok());
  EXPECT_EQ(Doubler(Status::NotFound("n")).status().code(),
            StatusCode::kNotFound);
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int v) {
  HYPRE_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

// --- Zipf --------------------------------------------------------------------

TEST(ZipfTest, RankZeroIsMostPopular) {
  Rng rng(5);
  ZipfSampler zipf(50, 1.1);
  std::map<size_t, size_t> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  // Head rank clearly dominates a mid rank.
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], counts[40]);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(5);
  ZipfSampler zipf(10, 0.0);
  std::map<size_t, size_t> counts;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), kDraws / 10.0, kDraws * 0.02);
  }
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(3);
  ZipfSampler zipf(7, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

// --- Shuffle ------------------------------------------------------------------

TEST(ShuffleTest, PermutesAllElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  Shuffle(&v, &rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --- strings -----------------------------------------------------------------

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("dblp.venue", "dblp"));
  EXPECT_FALSE(StartsWith("db", "dblp"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("AND", "and"));
  EXPECT_FALSE(EqualsIgnoreCase("AND", "andx"));
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%s", ""), "");
}

// --- timer --------------------------------------------------------------------

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  double t1 = timer.ElapsedSeconds();
  double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1000.0, 10.0);
}

}  // namespace
}  // namespace hypre
