// Persistence tests: save/load round-trips and format error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "common/string_util.h"
#include "hypre/persistence.h"

namespace hypre {
namespace core {
namespace {

HypreGraph BuildSampleGraph() {
  HypreGraph graph;
  EXPECT_TRUE(graph.AddQuantitative({2, "dblp.venue='VLDB'", 0.5}).ok());
  EXPECT_TRUE(graph.AddQuantitative({2, "dblp.venue='SIGMOD'", -0.4}).ok());
  EXPECT_TRUE(graph.AddQuantitative({7, "dblp.venue='VLDB'", 0.9}).ok());
  EXPECT_TRUE(
      graph.AddQualitative({2, "dblp_author.aid=1", "dblp_author.aid=2", 0.3})
          .ok());
  // A cycle edge for label coverage.
  EXPECT_TRUE(
      graph.AddQualitative({2, "dblp_author.aid=2", "dblp_author.aid=1", 0.1})
          .ok());
  return graph;
}

TEST(PersistenceTest, RoundTripPreservesEverything) {
  HypreGraph original = BuildSampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(original, &buffer).ok());

  HypreGraph restored;
  ASSERT_TRUE(LoadGraph(&buffer, &restored).ok());

  EXPECT_EQ(restored.num_nodes(), original.num_nodes());
  EXPECT_EQ(restored.num_edges(), original.num_edges());
  auto original_labels = original.CountEdgeLabels();
  auto restored_labels = restored.CountEdgeLabels();
  EXPECT_EQ(restored_labels.prefers, original_labels.prefers);
  EXPECT_EQ(restored_labels.cycle, original_labels.cycle);
  EXPECT_EQ(restored_labels.discard, original_labels.discard);

  for (UserId uid : original.Users()) {
    auto original_prefs = original.ListPreferences(uid, true);
    auto restored_prefs = restored.ListPreferences(uid, true);
    ASSERT_EQ(original_prefs.size(), restored_prefs.size()) << uid;
    for (size_t i = 0; i < original_prefs.size(); ++i) {
      EXPECT_EQ(original_prefs[i].predicate, restored_prefs[i].predicate);
      EXPECT_DOUBLE_EQ(original_prefs[i].intensity,
                       restored_prefs[i].intensity);
      EXPECT_EQ(original_prefs[i].provenance, restored_prefs[i].provenance);
    }
    auto original_edges = original.ListQualitative(uid, false);
    auto restored_edges = restored.ListQualitative(uid, false);
    ASSERT_EQ(original_edges.size(), restored_edges.size());
    for (size_t i = 0; i < original_edges.size(); ++i) {
      EXPECT_EQ(original_edges[i].left_predicate,
                restored_edges[i].left_predicate);
      EXPECT_EQ(original_edges[i].right_predicate,
                restored_edges[i].right_predicate);
      EXPECT_DOUBLE_EQ(original_edges[i].intensity,
                       restored_edges[i].intensity);
      EXPECT_EQ(original_edges[i].label, restored_edges[i].label);
    }
  }
  EXPECT_TRUE(restored.CheckInvariants().ok());
}

TEST(PersistenceTest, PredicatesWithSpecialCharactersSurvive) {
  HypreGraph graph;
  ASSERT_TRUE(
      graph.AddQuantitative({1, "title='a b  c' AND venue='X'", 0.25}).ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(graph, &buffer).ok());
  HypreGraph restored;
  ASSERT_TRUE(LoadGraph(&buffer, &restored).ok());
  auto prefs = restored.ListPreferences(1);
  ASSERT_EQ(prefs.size(), 1u);
  EXPECT_EQ(prefs[0].predicate, "title='a b  c' AND venue='X'");
}

TEST(PersistenceTest, LoadRejectsBadInput) {
  HypreGraph graph;
  std::stringstream no_header{"node 0 1 user 1 0.5 p=1\n"};
  EXPECT_FALSE(LoadGraph(&no_header, &graph).ok());

  std::stringstream bad_record{"hypre-graph v1\nblob 1 2 3\n"};
  HypreGraph graph2;
  EXPECT_FALSE(LoadGraph(&bad_record, &graph2).ok());

  std::stringstream bad_edge{
      "hypre-graph v1\nedge 0 1 PREFERS 0.5\n"};  // unknown node ids
  HypreGraph graph3;
  EXPECT_FALSE(LoadGraph(&bad_edge, &graph3).ok());

  std::stringstream bad_label{
      "hypre-graph v1\n"
      "node 0 1 user 1 0.5 a=1\n"
      "node 1 1 user 1 0.4 b=2\n"
      "edge 0 1 NOPE 0.5\n"};
  HypreGraph graph4;
  EXPECT_FALSE(LoadGraph(&bad_label, &graph4).ok());
}

TEST(PersistenceTest, FailedLoadLeavesTheGraphUntouched) {
  // A malformed line MID-file must not leave the target holding the valid
  // prefix — the load is all-or-nothing, so a caller can treat a non-OK
  // load as "nothing happened" and retry into the same object.
  std::stringstream partial{
      "hypre-graph v1\n"
      "node 0 1 user 1 0.5 a=1\n"
      "node 1 1 user 1 0.4 b=2\n"
      "edge 0 1 PREFERS 0.5\n"
      "node 2 1 user broken\n"};
  HypreGraph graph;
  EXPECT_FALSE(LoadGraph(&partial, &graph).ok());
  EXPECT_EQ(graph.num_nodes(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);

  // And the untouched graph is still loadable afterwards.
  HypreGraph sample = BuildSampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(sample, &buffer).ok());
  ASSERT_TRUE(LoadGraph(&buffer, &graph).ok());
  EXPECT_EQ(graph.num_nodes(), sample.num_nodes());
  EXPECT_EQ(graph.num_edges(), sample.num_edges());
}

TEST(PersistenceTest, LoadRequiresEmptyGraph) {
  HypreGraph graph = BuildSampleGraph();
  std::stringstream buffer{"hypre-graph v1\n"};
  EXPECT_FALSE(LoadGraph(&buffer, &graph).ok());
}

TEST(PersistenceTest, FileRoundTrip) {
  HypreGraph graph = BuildSampleGraph();
  std::string path = ::testing::TempDir() + "/hypre_graph_roundtrip.txt";
  ASSERT_TRUE(SaveGraphToFile(graph, path).ok());
  HypreGraph restored;
  ASSERT_TRUE(LoadGraphFromFile(path, &restored).ok());
  EXPECT_EQ(restored.num_nodes(), graph.num_nodes());
  EXPECT_FALSE(LoadGraphFromFile("/nonexistent/dir/file", &restored).ok());
}

TEST(PersistenceTest, RandomGraphRoundTrip) {
  Rng rng(99);
  HypreGraph graph;
  for (int i = 0; i < 120; ++i) {
    std::string a = StringFormat("p=%d", (int)rng.NextBounded(25));
    std::string b = StringFormat("p=%d", (int)rng.NextBounded(25));
    if (rng.NextBernoulli(0.5)) {
      ASSERT_TRUE(
          graph.AddQuantitative({3, a, rng.NextDouble(-1, 1)}).ok());
    } else if (a != b) {
      ASSERT_TRUE(
          graph.AddQualitative({3, a, b, rng.NextDouble(-1, 1)}).ok());
    }
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(graph, &buffer).ok());
  HypreGraph restored;
  ASSERT_TRUE(LoadGraph(&buffer, &restored).ok());
  EXPECT_EQ(restored.num_nodes(), graph.num_nodes());
  EXPECT_EQ(restored.num_edges(), graph.num_edges());
  EXPECT_TRUE(restored.CheckInvariants().ok());
}

}  // namespace
}  // namespace core
}  // namespace hypre
