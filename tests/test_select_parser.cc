// SELECT statement parser tests, including the dissertation's literal SQL.
#include <gtest/gtest.h>

#include "sqlparse/select_parser.h"
#include "workload/canonical.h"
#include "workload/dblp_generator.h"

namespace hypre {
namespace sqlparse {
namespace {

TEST(SelectParseTest, StarQuery) {
  auto stmt = ParseSelect("SELECT * FROM dblp;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->query.from, "dblp");
  EXPECT_TRUE(stmt->query.select.empty());
  EXPECT_FALSE(stmt->count_distinct);
  EXPECT_EQ(stmt->query.where, nullptr);
}

TEST(SelectParseTest, ColumnsAndWhere) {
  auto stmt = ParseSelect(
      "SELECT dblp.pid, dblp.venue FROM dblp WHERE year >= 2010");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->query.select.size(), 2u);
  ASSERT_NE(stmt->query.where, nullptr);
  EXPECT_EQ(stmt->query.where->ToString(), "year>=2010");
}

TEST(SelectParseTest, DissertationCountDistinctJoin) {
  // Verbatim from §5.3.1 (modulo the author ids).
  auto stmt = ParseSelect(
      "SELECT count(distinct dblp.pid) "
      "FROM dblp join dblp_author on dblp.pid = dblp_author.pid "
      "WHERE dblp.venue=\"INFOCOM\" AND dblp_author.aid=2222;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->count_distinct);
  EXPECT_EQ(stmt->count_column, "dblp.pid");
  ASSERT_EQ(stmt->query.joins.size(), 1u);
  EXPECT_EQ(stmt->query.joins[0].right_table, "dblp_author");
  EXPECT_EQ(stmt->query.joins[0].left_column, "dblp.pid");
  EXPECT_EQ(stmt->query.joins[0].right_column, "pid");
}

TEST(SelectParseTest, JoinOperandOrderNormalizes) {
  auto stmt = ParseSelect(
      "SELECT * FROM dblp JOIN dblp_author ON dblp_author.pid = dblp.pid");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->query.joins[0].left_column, "dblp.pid");
  EXPECT_EQ(stmt->query.joins[0].right_column, "pid");
}

TEST(SelectParseTest, OrderByLimit) {
  auto stmt = ParseSelect(
      "SELECT pid FROM dblp WHERE venue='VLDB' ORDER BY year DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->query.order_by, "year");
  EXPECT_TRUE(stmt->query.order_desc);
  EXPECT_EQ(stmt->query.limit, 5u);
  // The WHERE predicate stops before ORDER.
  EXPECT_EQ(stmt->query.where->ToString(), "venue='VLDB'");
}

TEST(SelectParseTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("FROM dblp").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM dblp").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM dblp JOIN x ON a.b").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM dblp LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM dblp extra").ok());
  EXPECT_FALSE(ParseSelect("SELECT count(pid) FROM dblp").ok());
  EXPECT_FALSE(
      ParseSelect("SELECT * FROM a JOIN b ON c.x = d.y").ok());  // bad ON
}

TEST(ExecuteSqlTest, SelectOverSample) {
  reldb::Database db;
  ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db).ok());
  auto result = ExecuteSql(
      db, "SELECT dblp.pid FROM dblp WHERE venue='PVLDB' ORDER BY year");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0].AsString(), "t5");  // 2009 first ascending
}

TEST(ExecuteSqlTest, CountDistinctOverJoin) {
  reldb::Database db;
  workload::DblpConfig config;
  config.num_papers = 400;
  config.num_authors = 150;
  config.num_venues = 6;
  config.num_communities = 4;
  config.seed = 3;
  ASSERT_TRUE(workload::GenerateDblp(config, &db).ok());
  auto result = ExecuteSql(
      db,
      "SELECT count(distinct dblp.pid) "
      "FROM dblp JOIN dblp_author ON dblp.pid = dblp_author.pid "
      "WHERE dblp_author.aid=0;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  // Cross-check against a manual count.
  const reldb::Table* links = db.GetTable("dblp_author");
  std::set<int64_t> expected;
  for (const auto& row : links->rows()) {
    if (row[1].AsInt() == 0) expected.insert(row[0].AsInt());
  }
  EXPECT_EQ(static_cast<size_t>(result->rows[0][0].AsInt()),
            expected.size());
}

TEST(ExecuteSqlTest, ErrorsSurface) {
  reldb::Database db;
  ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db).ok());
  EXPECT_FALSE(ExecuteSql(db, "SELECT * FROM nope").ok());
  EXPECT_FALSE(ExecuteSql(db, "SELECT nope FROM dblp").ok());
}

}  // namespace
}  // namespace sqlparse
}  // namespace hypre
