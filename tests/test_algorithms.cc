// Tests for Combine-Two, Partially-Combine-All, Bias-Random-Selection, and
// the exhaustive reference enumerator, on the hand-crafted mini-DBLP whose
// pair applicability is known by inspection (see test_fixtures.h).
//
// All runs dispatch BY NAME through the unified enumeration API
// (api::Session::Enumerate) — the same path the shell, the examples, and a
// serving deployment use; one test keeps exercising a direct free-function
// entry point so the compatibility shims stay covered.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "hypre/algorithms/combine_two.h"
#include "hypre/api/session.h"
#include "hypre/intensity.h"
#include "test_fixtures.h"

namespace hypre {
namespace core {
namespace {

using testing_fixtures::BuildMiniDblp;
using testing_fixtures::MiniBaseQuery;
using testing_fixtures::MiniPreferences;

class AlgorithmsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildMiniDblp(&db_);
    session_ = std::make_unique<api::Session>(&db_);
    prefs_ = MiniPreferences();
  }

  /// Dispatches through the registry with the fixture's query spec and
  /// preference list (overridable per call).
  Result<api::EnumerationResult> Run(
      const std::string& algorithm,
      CombineSemantics semantics = CombineSemantics::kAnd,
      const std::vector<PreferenceAtom>* preferences = nullptr,
      uint64_t seed = 0) {
    api::EnumerationRequest request;
    request.algorithm = algorithm;
    request.base_query = MiniBaseQuery();
    request.key_column = "dblp.pid";
    request.preferences = preferences ? *preferences : prefs_;
    request.semantics = semantics;
    request.seed = seed;
    return session_->Enumerate(request);
  }

  std::vector<CombinationRecord> Records(
      const std::string& algorithm,
      CombineSemantics semantics = CombineSemantics::kAnd,
      const std::vector<PreferenceAtom>* preferences = nullptr,
      uint64_t seed = 0) {
    auto result = Run(algorithm, semantics, preferences, seed);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result->records);
  }

  reldb::Database db_;
  std::unique_ptr<api::Session> session_;
  std::vector<PreferenceAtom> prefs_;
};

TEST_F(AlgorithmsTest, CombineTwoAndEmitsAllPairs) {
  auto records = Records("combine-two");
  EXPECT_EQ(records.size(), 10u);  // C(5,2)
  for (const auto& r : records) {
    EXPECT_EQ(r.num_predicates, 2u);
  }
  // Venue-venue AND combinations are inapplicable by construction.
  size_t empty = 0;
  for (const auto& r : records) {
    if (!r.applicable()) ++empty;
  }
  EXPECT_GE(empty, 1u);  // at least V1 AND V2
}

TEST_F(AlgorithmsTest, CombineTwoAndOrRescuesSameAttributePairs) {
  auto and_records = Records("combine-two", CombineSemantics::kAnd);
  auto andor_records = Records("combine-two", CombineSemantics::kAndOr);
  ASSERT_EQ(and_records.size(), andor_records.size());
  // Same-attribute pairs: AND gives 0 tuples, OR gives the union.
  for (size_t i = 0; i < and_records.size(); ++i) {
    const auto& a = and_records[i];
    const auto& o = andor_records[i];
    if (a.predicate_sql.find("venue") != std::string::npos &&
        a.predicate_sql.find("AND") != std::string::npos &&
        a.predicate_sql.find("aid") == std::string::npos) {
      EXPECT_EQ(a.num_tuples, 0u) << a.predicate_sql;
      EXPECT_GT(o.num_tuples, 0u) << o.predicate_sql;
      // OR uses the reserved combination: intensity strictly below AND's.
      EXPECT_LT(o.intensity, a.intensity);
    }
  }
}

TEST_F(AlgorithmsTest, CombineTwoAndIntensityExceedsComponents) {
  auto records = Records("combine-two");
  // Every AND pair's combined intensity is >= both member intensities
  // (inflationary behavior drives the §7.3 observation that pair order !=
  // single-preference order).
  for (const auto& r : records) {
    for (size_t member : r.combination.SortedMembers()) {
      EXPECT_GE(r.intensity + 1e-12, prefs_[member].intensity)
          << r.predicate_sql;
    }
  }
}

TEST_F(AlgorithmsTest, CombineTwoOrderingObservation) {
  // §7.3's headline: combining pref[0] with a LATER preference can beat
  // combining it with an earlier one. aid=1&aid=3 (applicable) has higher
  // combined intensity than aid=1&V2 pair ordering would suggest; verify
  // that the applicable-pair ranking is not the intensity-sorted pair order.
  auto records = Records("combine-two");
  std::vector<const CombinationRecord*> applicable;
  for (const auto& r : records) {
    if (r.applicable()) applicable.push_back(&r);
  }
  ASSERT_GE(applicable.size(), 2u);
  bool found_inversion = false;
  for (size_t i = 0; i + 1 < applicable.size(); ++i) {
    if (applicable[i]->intensity < applicable[i + 1]->intensity) {
      found_inversion = true;
      break;
    }
  }
  EXPECT_TRUE(found_inversion)
      << "generation order should not equal intensity order";
}

TEST_F(AlgorithmsTest, CombineTwoDirectShimMatchesSession) {
  // The free-function entry point is kept as a compatibility shim; its
  // output must stay identical to registry dispatch.
  QueryEnhancer enhancer(&db_, MiniBaseQuery(), "dblp.pid");
  auto direct = CombineTwo(prefs_, enhancer, CombineSemantics::kAnd);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto via_session = Records("combine-two");
  ASSERT_EQ(direct->size(), via_session.size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].predicate_sql, via_session[i].predicate_sql);
    EXPECT_EQ((*direct)[i].num_tuples, via_session[i].num_tuples);
    EXPECT_EQ((*direct)[i].intensity, via_session[i].intensity);
  }
}

TEST_F(AlgorithmsTest, PartiallyCombineAllTrace) {
  auto records = Records("partially-combine-all");
  ASSERT_FALSE(records.empty());
  // First record is the single top preference.
  EXPECT_EQ(records[0].num_predicates, 1u);
  EXPECT_EQ(records[0].predicate_sql, "dblp_author.aid=1");
  // Second preference (V1) is a new attribute: ANDed onto the first.
  EXPECT_EQ(records[1].num_predicates, 2u);
  EXPECT_EQ(records[1].predicate_sql,
            "dblp_author.aid=1 AND dblp.venue='V1'");
  // AND combinations carry higher intensity than their components.
  EXPECT_GT(records[1].intensity, records[0].intensity);
  // Combination sizes never exceed the preference count.
  for (const auto& r : records) {
    EXPECT_LE(r.num_predicates, prefs_.size());
    EXPECT_GE(r.num_predicates, 1u);
  }
}

TEST_F(AlgorithmsTest, PartiallyCombineAllOrIntoLastGroup) {
  // With only same-attribute preferences the algorithm degenerates to a
  // growing OR chain (the §5.3.2 best case [1]).
  std::vector<PreferenceAtom> venues;
  venues.push_back(MakeAtom("dblp.venue='V1'", 0.5).value());
  venues.push_back(MakeAtom("dblp.venue='V2'", 0.3).value());
  venues.push_back(MakeAtom("dblp.venue='V3'", 0.1).value());
  auto records =
      Records("partially-combine-all", CombineSemantics::kAnd, &venues);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].predicate_sql,
            "dblp.venue='V1' OR dblp.venue='V2'");
  EXPECT_EQ(records[2].predicate_sql,
            "dblp.venue='V1' OR dblp.venue='V2' OR dblp.venue='V3'");
  // OR keeps results growing while intensity shrinks.
  EXPECT_GT(records[2].num_tuples, records[0].num_tuples);
  EXPECT_LT(records[2].intensity, records[0].intensity);
}

TEST_F(AlgorithmsTest, BiasRandomDeterministicPerSeed) {
  auto a = Run("bias-random", CombineSemantics::kAnd, nullptr, 7);
  auto b = Run("bias-random", CombineSemantics::kAnd, nullptr, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->valid_checks, b->valid_checks);
  EXPECT_EQ(a->invalid_checks, b->invalid_checks);
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].predicate_sql, b->records[i].predicate_sql);
  }
}

TEST_F(AlgorithmsTest, BiasRandomRecordsAreApplicable) {
  auto result = Run("bias-random", CombineSemantics::kAnd, nullptr, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->records.empty());
  for (const auto& r : result->records) {
    EXPECT_GT(r.num_tuples, 0u) << r.predicate_sql;
    EXPECT_GE(r.num_predicates, 2u);
  }
  // Probes happened, and some of them failed (the Fig. 35/36 point).
  EXPECT_GT(result->valid_checks + result->invalid_checks, 0u);
  EXPECT_GT(result->invalid_checks, 0u);
}

TEST_F(AlgorithmsTest, ExhaustiveMatchesManualApplicability) {
  auto records = Records("exhaustive");
  // Applicable sets (by inspection, see fixture comment):
  //  singles: 5
  //  pairs: a1&a2 {1,7}, a1&a3 {4}, a2&a3 {3}, V1&a1 {1,2}, V1&a2 {1,6},
  //         V2&a1 {4,7}, V2&a2 {3,7}, V2&a3 {3,4}  -> 8
  //  triples: V1&a1&a2 {1}, V2&a1&a2 {7}, V2&a1&a3 {4}, V2&a2&a3 {3} -> 4
  //  (a1&a2&a3 empty; venue pairs empty)
  EXPECT_EQ(records.size(), 5u + 8u + 4u);
  // Descending intensity.
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_GE(records[i].intensity, records[i + 1].intensity);
  }
}

TEST_F(AlgorithmsTest, ExhaustiveGuardsAgainstBlowup) {
  std::vector<PreferenceAtom> many;
  for (int i = 0; i < 25; ++i) {
    many.push_back(MakeAtom(StringFormat("dblp_author.aid=%d", i), 0.1).value());
  }
  EXPECT_FALSE(Run("exhaustive", CombineSemantics::kAnd, &many).ok());
}

}  // namespace
}  // namespace core
}  // namespace hypre
