// Fault-injected crash-recovery differential test.
//
// A scripted workload (attach storage, mutate, checkpoint, mutate, group
// commit, mutate) runs against a FaultInjectionEnv once per injection
// point: the write stream of the snapshot and of the write-ahead log are
// each cut at every offset (kTruncateWriteAt), bit-flipped at every offset
// (kFlipBitAt), and hit with clean write/fsync failures. After each faulted
// run, recovery is attempted on a CLEAN env from whatever bytes survived.
//
// The contract under test, for every injection point:
//
//  * recovery either succeeds or fails CLOSED — a successful recovery's
//    database and enumeration results are byte-identical to a from-scratch
//    session at the recovered journal sequence (no partial state, no
//    reordered history, no silently dropped committed records);
//  * the recovered sequence never falls below the durable floor — the last
//    storage operation that was acknowledged before the crash;
//  * crashes (truncation, failed writes/fsyncs) never make recovery fail
//    once a first checkpoint committed; only silent corruption (bit flips)
//    may, and then it must be DETECTED, not absorbed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hypre/api/session.h"
#include "hypre/storage/env.h"
#include "hypre/storage/store.h"
#include "test_fixtures.h"

namespace hypre {
namespace storage {
namespace {

using core::testing_fixtures::BuildMiniDblp;
using core::testing_fixtures::MiniBaseQuery;
using core::testing_fixtures::MiniPreferences;

std::string MakeTempDir(const std::string& tag) {
  std::string tpl = ::testing::TempDir() + "hypre_crash_" + tag + "_XXXXXX";
  std::vector<char> buf(tpl.begin(), tpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << tpl;
  return got == nullptr ? std::string() : std::string(got);
}

void RemoveDirRecursively(const std::string& dir) {
  Env* env = Env::Default();
  for (const char* name :
       {"snapshot.hypre", "wal.log", "snapshot.hypre.tmp", "wal.tmp"}) {
    (void)env->RemoveFile(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

// The mini fixture journals 20 appends (8 dblp + 12 dblp_author).
constexpr uint64_t kBaseSeq = 20;

/// The scripted mutations, applied one per journal sequence past kBaseSeq.
/// Index i maps to sequence kBaseSeq + i.
void ApplyMutation(reldb::Database* db, size_t i) {
  reldb::Table* dblp = db->GetTable("dblp");
  reldb::Table* da = db->GetTable("dblp_author");
  Status st;
  switch (i) {
    case 0:
      st = dblp->Append({reldb::Value::Int(9), reldb::Value::Str("V1"),
                         reldb::Value::Int(2009)});
      break;
    case 1:
      st = da->Append({reldb::Value::Int(9), reldb::Value::Int(1)});
      break;
    case 2:
      st = dblp->Delete(4);  // pid 5 (V3, author 3) disappears
      break;
    case 3:
      st = da->Append({reldb::Value::Int(2), reldb::Value::Int(2)});
      break;
    case 4:
      st = da->Append({reldb::Value::Int(5), reldb::Value::Int(1)});
      break;
    case 5:
      st = da->Append({reldb::Value::Int(3), reldb::Value::Int(4)});
      break;
    default:
      FAIL() << "no mutation " << i;
  }
  ASSERT_TRUE(st.ok()) << "mutation " << i << ": " << st.ToString();
}
constexpr size_t kNumMutations = 6;
constexpr uint64_t kFinalSeq = kBaseSeq + kNumMutations;

api::EnumerationRequest RecordsRequest() {
  api::EnumerationRequest request;
  request.algorithm = "combine-two";
  request.base_query = MiniBaseQuery();
  request.key_column = "dblp.pid";
  request.preferences = MiniPreferences();
  return request;
}

api::EnumerationRequest TopKRequest() {
  api::EnumerationRequest request = RecordsRequest();
  request.algorithm = "ta";
  request.k = 4;
  return request;
}

struct WorkloadOutcome {
  /// Journal sequence of the last storage operation that returned OK — the
  /// durability floor recovery must not fall below. 0 when AttachStorage
  /// itself never succeeded (nothing was ever acknowledged as durable).
  uint64_t floor_seq = 0;
};

/// Runs the scripted workload against `env`, stopping at the first storage
/// error (the simulated process death). In-memory mutations always apply.
WorkloadOutcome RunWorkload(const std::string& dir, Env* env) {
  WorkloadOutcome outcome;
  auto db = std::make_unique<reldb::Database>();
  BuildMiniDblp(db.get());
  api::Session session(std::move(db));
  // Warm the engine so the snapshots carry a real universe + leaf cache.
  auto warm = session.Enumerate(RecordsRequest());
  EXPECT_TRUE(warm.ok()) << warm.status().ToString();

  StorageOptions options;
  options.env = env;
  if (!session.AttachStorage(dir, options).ok()) return outcome;
  outcome.floor_seq = kBaseSeq;

  for (size_t i = 0; i < 3; ++i) ApplyMutation(session.mutable_db(), i);
  if (!session.SaveSnapshot().ok()) return outcome;
  outcome.floor_seq = kBaseSeq + 3;

  for (size_t i = 3; i < 5; ++i) ApplyMutation(session.mutable_db(), i);
  if (!session.CommitJournal().ok()) return outcome;
  outcome.floor_seq = kBaseSeq + 5;

  ApplyMutation(session.mutable_db(), 5);  // never made durable
  return outcome;
}

/// Differential check: the recovered session's database and answers must be
/// identical to a from-scratch session holding the first
/// (recovered_seq - kBaseSeq) mutations.
void ExpectMatchesReferenceAt(api::Session* recovered, uint64_t seq,
                              const std::string& label) {
  ASSERT_GE(seq, kBaseSeq) << label;
  ASSERT_LE(seq, kFinalSeq) << label;
  auto ref_db = std::make_unique<reldb::Database>();
  BuildMiniDblp(ref_db.get());
  for (size_t i = 0; i < static_cast<size_t>(seq - kBaseSeq); ++i) {
    ApplyMutation(ref_db.get(), i);
  }

  // Table-level identity: same physical rows, same tombstones.
  for (const std::string& name : ref_db->TableNames()) {
    const reldb::Table* expect = ref_db->GetTable(name);
    const reldb::Table* got = recovered->db()->GetTable(name);
    ASSERT_NE(got, nullptr) << label << " table " << name;
    ASSERT_EQ(got->num_rows(), expect->num_rows()) << label << " " << name;
    for (size_t r = 0; r < expect->num_rows(); ++r) {
      EXPECT_EQ(got->is_deleted(r), expect->is_deleted(r))
          << label << " " << name << " row " << r;
      EXPECT_EQ(got->row(r), expect->row(r))
          << label << " " << name << " row " << r;
    }
  }

  // Answer-level identity, records and top-k.
  api::Session reference(std::move(ref_db));
  auto expect_records = reference.Enumerate(RecordsRequest());
  auto got_records = recovered->Enumerate(RecordsRequest());
  ASSERT_TRUE(expect_records.ok()) << label;
  ASSERT_TRUE(got_records.ok())
      << label << ": " << got_records.status().ToString();
  ASSERT_EQ(got_records->records.size(), expect_records->records.size())
      << label;
  for (size_t i = 0; i < got_records->records.size(); ++i) {
    EXPECT_EQ(got_records->records[i].predicate_sql,
              expect_records->records[i].predicate_sql)
        << label << " record " << i;
    EXPECT_EQ(got_records->records[i].num_tuples,
              expect_records->records[i].num_tuples)
        << label << " record " << i;
    EXPECT_EQ(got_records->records[i].intensity,
              expect_records->records[i].intensity)
        << label << " record " << i;
  }
  auto expect_topk = reference.Enumerate(TopKRequest());
  auto got_topk = recovered->Enumerate(TopKRequest());
  ASSERT_TRUE(expect_topk.ok()) << label;
  ASSERT_TRUE(got_topk.ok()) << label;
  ASSERT_EQ(got_topk->top_k.size(), expect_topk->top_k.size()) << label;
  for (size_t i = 0; i < got_topk->top_k.size(); ++i) {
    EXPECT_EQ(got_topk->top_k[i].key.Compare(expect_topk->top_k[i].key), 0)
        << label << " tuple " << i;
    EXPECT_EQ(got_topk->top_k[i].intensity, expect_topk->top_k[i].intensity)
        << label << " tuple " << i;
  }
}

/// One faulted run + clean recovery + the differential assertions.
/// `crash_like` distinguishes crash faults (truncation, failed writes and
/// fsyncs — recovery MUST succeed once a checkpoint committed) from silent
/// corruption (bit flips — recovery may fail, but must fail CLOSED).
/// Returns whether the fault actually fired (the sweep stops when the
/// offset runs past the write stream).
bool RunFaultPoint(const FaultPlan& plan, bool crash_like,
                   const std::string& label) {
  std::string dir = MakeTempDir("pt");
  FaultInjectionEnv env(Env::Default());
  env.set_plan(plan);
  WorkloadOutcome outcome = RunWorkload(dir, &env);
  bool fired = env.fault_fired();

  auto recovered = api::Session::OpenFromSnapshot(dir);
  if (recovered.ok()) {
    uint64_t seq = (*recovered)->db()->journal().sequence();
    EXPECT_GE(seq, outcome.floor_seq) << label << ": committed data lost";
    ExpectMatchesReferenceAt(recovered->get(), seq, label);
  } else if (crash_like) {
    // A crash may only defeat recovery when nothing was ever committed
    // (the fault landed inside the initial checkpoint).
    EXPECT_EQ(outcome.floor_seq, 0u)
        << label << ": recovery failed after a committed checkpoint: "
        << recovered.status().ToString();
  }
  // else: bit-flip corruption detected and refused — fail closed is the
  // required behavior; the directory was not partially loaded.

  RemoveDirRecursively(dir);
  return fired;
}

/// Sweeps `kind` over every offset of the write streams matching
/// `path_substring`, stopping once an offset no longer fires (the stream
/// ended). `stride` trades matrix density for runtime.
void SweepOffsets(FaultPlan::Kind kind, bool crash_like,
                  const std::string& path_substring, uint64_t stride,
                  const char* label) {
  uint64_t offset = 0;
  size_t fired_points = 0;
  for (;; offset += stride) {
    FaultPlan plan;
    plan.kind = kind;
    plan.byte_offset = offset;
    plan.path_substring = path_substring;
    std::string point =
        std::string(label) + " " + path_substring + "@" +
        std::to_string(offset);
    if (!RunFaultPoint(plan, crash_like, point)) break;
    ++fired_points;
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The sweep must have exercised real injection points before running off
  // the end of the write stream.
  EXPECT_GT(fired_points, 10u) << label << " " << path_substring;
}

TEST(CrashRecoveryTest, KillAtEveryWalOffset) {
  SweepOffsets(FaultPlan::Kind::kTruncateWriteAt, /*crash_like=*/true,
               "wal", /*stride=*/1, "kill");
}

TEST(CrashRecoveryTest, KillAtEverySnapshotOffset) {
  // The snapshot is a few KB; stride keeps the matrix dense but bounded.
  SweepOffsets(FaultPlan::Kind::kTruncateWriteAt, /*crash_like=*/true,
               "snapshot", /*stride=*/17, "kill");
}

TEST(CrashRecoveryTest, FlipABitAtEveryWalOffset) {
  SweepOffsets(FaultPlan::Kind::kFlipBitAt, /*crash_like=*/false, "wal",
               /*stride=*/1, "flip");
}

TEST(CrashRecoveryTest, FlipABitAtEverySnapshotOffset) {
  SweepOffsets(FaultPlan::Kind::kFlipBitAt, /*crash_like=*/false,
               "snapshot", /*stride=*/17, "flip");
}

TEST(CrashRecoveryTest, CleanWriteFailuresAreNotDataLoss) {
  SweepOffsets(FaultPlan::Kind::kFailWriteAt, /*crash_like=*/true, "wal",
               /*stride=*/13, "failwrite");
  SweepOffsets(FaultPlan::Kind::kFailWriteAt, /*crash_like=*/true,
               "snapshot", /*stride=*/97, "failwrite");
}

TEST(CrashRecoveryTest, FailedFsyncFailsTheOperationNotTheData) {
  for (const char* target : {"wal", "snapshot"}) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kFailSync;
    plan.path_substring = target;
    EXPECT_TRUE(RunFaultPoint(plan, /*crash_like=*/true,
                              std::string("failsync ") + target))
        << target;
  }
}

/// One faulted RECOVERY (not workload) + a clean re-recovery + the
/// differential assertions. The directory holds a committed state produced
/// by a clean workload run and then damaged the way a crash would damage it
/// (torn WAL tail, or a missing WAL from the snapshot-rename/WAL-rotate
/// window); the fault env then kills recovery's own repair writes.
/// Whatever recovery managed to do before dying, the bytes it leaves behind
/// must still recover to exactly `expect_seq`.
void RunRecoveryRepairFaultPoint(bool drop_wal, const FaultPlan& plan,
                                 uint64_t expect_seq,
                                 const std::string& label, bool* fired) {
  *fired = false;
  std::string dir = MakeTempDir("repair");
  WorkloadOutcome outcome = RunWorkload(dir, Env::Default());
  ASSERT_EQ(outcome.floor_seq, kBaseSeq + 5) << label;
  Env* posix = Env::Default();
  std::string wal = dir + "/wal.log";
  if (drop_wal) {
    ASSERT_TRUE(posix->RemoveFile(wal).ok()) << label;
    (void)posix->RemoveFile(dir + "/wal.tmp");
  } else {
    auto size = posix->FileSize(wal);
    ASSERT_TRUE(size.ok()) << label;
    ASSERT_TRUE(posix->TruncateFile(wal, *size - 3).ok()) << label;
  }

  FaultInjectionEnv env(posix);
  env.set_plan(plan);
  StorageOptions options;
  options.env = &env;
  // The faulted recovery may fail (the env dies mid-repair); it must not
  // destroy committed bytes while doing so.
  auto faulted = api::Session::OpenFromSnapshot(dir, options);
  (void)faulted;
  *fired = env.fault_fired();

  auto recovered = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(recovered.ok())
      << label << ": " << recovered.status().ToString();
  uint64_t seq = (*recovered)->db()->journal().sequence();
  EXPECT_EQ(seq, expect_seq) << label << ": committed data lost";
  ExpectMatchesReferenceAt(recovered->get(), seq, label);
  RemoveDirRecursively(dir);
}

TEST(CrashRecoveryTest, KillDuringRecoveryRepairPreservesCommittedState) {
  // Recovery runs on every warm restart, so its own repair writes are kill
  // points too. The committed WAL tail must survive them: the torn-tail
  // case re-attaches the writer in place (no WAL writes at all), and only a
  // MISSING WAL is rebuilt fresh — precisely because nothing can be lost
  // then.
  struct Scenario {
    const char* name;
    bool drop_wal;
    uint64_t expect_seq;
  };
  const Scenario scenarios[] = {
      // Torn last record (died mid-append): repair cuts the tail in place;
      // the intact record below it stays committed.
      {"torn_tail", false, kBaseSeq + 4},
      // Crash window between snapshot publish and WAL rotation: the
      // snapshot alone is the committed state.
      {"missing_wal", true, kBaseSeq + 3},
  };
  for (const Scenario& s : scenarios) {
    size_t fired_points = 0;
    for (uint64_t offset = 0;; ++offset) {
      FaultPlan plan;
      plan.kind = FaultPlan::Kind::kTruncateWriteAt;
      plan.byte_offset = offset;
      plan.path_substring = "wal";
      bool fired = false;
      RunRecoveryRepairFaultPoint(
          s.drop_wal, plan, s.expect_seq,
          std::string("repair-kill ") + s.name + "@" + std::to_string(offset),
          &fired);
      if (::testing::Test::HasFatalFailure()) return;
      if (!fired) break;
      ++fired_points;
    }
    FaultPlan sync_plan;
    sync_plan.kind = FaultPlan::Kind::kFailSync;
    sync_plan.path_substring = "wal";
    bool sync_fired = false;
    RunRecoveryRepairFaultPoint(s.drop_wal, sync_plan, s.expect_seq,
                                std::string("repair-failsync ") + s.name,
                                &sync_fired);
    if (::testing::Test::HasFatalFailure()) return;
    if (s.drop_wal) {
      // Rebuilding the missing WAL writes and syncs a fresh header; the
      // sweep must have killed inside those writes to mean anything.
      EXPECT_GT(fired_points, 10u) << s.name;
      EXPECT_TRUE(sync_fired) << s.name;
    } else {
      // In-place re-attach performs no WAL writes, so there is nothing for
      // a crash to destroy. (The old rotate-based repair renamed a
      // header-only WAL over the committed one before re-spilling — the
      // window this test exists to keep closed.)
      EXPECT_EQ(fired_points, 0u) << s.name;
      EXPECT_FALSE(sync_fired) << s.name;
    }
  }
}

TEST(CrashRecoveryTest, NoFaultRecoversTheFullFinalState) {
  std::string dir = MakeTempDir("clean");
  WorkloadOutcome outcome = RunWorkload(dir, Env::Default());
  EXPECT_EQ(outcome.floor_seq, kBaseSeq + 5);
  auto recovered = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Mutation 5 was applied in memory but never spilled, so the recovered
  // state is exactly the last commit point.
  uint64_t seq = (*recovered)->db()->journal().sequence();
  EXPECT_EQ(seq, kBaseSeq + 5);
  ExpectMatchesReferenceAt(recovered->get(), seq, "clean");
  RemoveDirRecursively(dir);
}

}  // namespace
}  // namespace storage
}  // namespace hypre
