// QueryEnhancer tests: WHERE splicing, counting, key collection, caching.
#include <gtest/gtest.h>

#include "hypre/query_enhancement.h"
#include "sqlparse/parser.h"
#include "workload/canonical.h"

namespace hypre {
namespace core {
namespace {

reldb::ExprPtr Parse(const std::string& text) {
  auto r = sqlparse::ParsePredicate(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : nullptr;
}

class QueryEnhancerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db_).ok());
    base_.from = "dblp";
  }
  reldb::Database db_;
  reldb::Query base_;
};

TEST_F(QueryEnhancerTest, EnhanceSetsWhere) {
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  reldb::Query q = enhancer.Enhance(Parse("dblp.venue='VLDB'"));
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->ToString(), "dblp.venue='VLDB'");
  EXPECT_EQ(q.ToSql(), "SELECT * FROM dblp WHERE dblp.venue='VLDB'");
}

TEST_F(QueryEnhancerTest, EnhancePreservesHardConstraints) {
  // Base WHERE is a hard constraint; the preference is ANDed on top.
  base_.where = Parse("year>=2008");
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  reldb::Query q = enhancer.Enhance(Parse("dblp.venue='PVLDB'"));
  EXPECT_EQ(q.where->ToString(), "year>=2008 AND dblp.venue='PVLDB'");
  auto count = enhancer.CountMatching(Parse("dblp.venue='PVLDB'"));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3u);  // t3, t4, t5 all >= 2008
}

TEST_F(QueryEnhancerTest, NullPredicateLeavesBaseQuery) {
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  reldb::Query q = enhancer.Enhance(nullptr);
  EXPECT_EQ(q.where, nullptr);
  auto count = enhancer.CountMatching(nullptr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 9u);
}

TEST_F(QueryEnhancerTest, CountAndKeys) {
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  auto count = enhancer.CountMatching(Parse("dblp.venue='SIGMOD'"));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 2u);
  auto keys = enhancer.MatchingKeys(Parse("dblp.venue='SIGMOD'"));
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 2u);
}

TEST_F(QueryEnhancerTest, CountCacheHitsOnRepeat) {
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  reldb::ExprPtr p = Parse("dblp.venue='VLDB'");
  ASSERT_TRUE(enhancer.CountMatching(p).ok());
  EXPECT_EQ(enhancer.stats().num_leaf_queries, 1u);
  EXPECT_EQ(enhancer.stats().num_cache_hits, 0u);
  ASSERT_TRUE(enhancer.CountMatching(p).ok());
  EXPECT_EQ(enhancer.stats().num_leaf_queries, 1u);
  EXPECT_EQ(enhancer.stats().num_cache_hits, 1u);
  // A structurally identical but distinct AST also hits (keyed by SQL text).
  ASSERT_TRUE(enhancer.CountMatching(Parse("dblp.venue='VLDB'")).ok());
  EXPECT_EQ(enhancer.stats().num_leaf_queries, 1u);
}

TEST_F(QueryEnhancerTest, GroupLevelSemanticsOnJoinedAuthors) {
  // Two author predicates ANDed must mean "papers having BOTH authors"
  // (see the header comment): impossible per joined row, intended per key.
  reldb::Database db;
  {
    using reldb::Row;
    using reldb::Schema;
    using reldb::Value;
    using reldb::ValueType;
    auto dblp = db.CreateTable("dblp", Schema({{"pid", ValueType::kInt64},
                                               {"venue", ValueType::kString}}));
    ASSERT_TRUE(dblp.ok());
    (*dblp)->AppendUnchecked(Row{Value::Int(1), Value::Str("V")});
    (*dblp)->AppendUnchecked(Row{Value::Int(2), Value::Str("V")});
    ASSERT_TRUE((*dblp)->CreateHashIndex("pid").ok());
    auto da = db.CreateTable(
        "dblp_author",
        Schema({{"pid", ValueType::kInt64}, {"aid", ValueType::kInt64}}));
    ASSERT_TRUE(da.ok());
    // Paper 1 by authors 1 and 2; paper 2 by author 1 only.
    (*da)->AppendUnchecked(Row{Value::Int(1), Value::Int(1)});
    (*da)->AppendUnchecked(Row{Value::Int(1), Value::Int(2)});
    (*da)->AppendUnchecked(Row{Value::Int(2), Value::Int(1)});
    ASSERT_TRUE((*da)->CreateHashIndex("aid").ok());
    ASSERT_TRUE((*da)->CreateHashIndex("pid").ok());
  }
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  QueryEnhancer enhancer(&db, base, "dblp.pid");

  auto both = enhancer.CountMatching(
      Parse("dblp_author.aid=1 AND dblp_author.aid=2"));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both.value(), 1u);  // only paper 1 has both authors
  auto either = enhancer.CountMatching(
      Parse("dblp_author.aid=1 OR dblp_author.aid=2"));
  ASSERT_TRUE(either.ok());
  EXPECT_EQ(either.value(), 2u);
  // NOT complements against the key universe.
  auto not_a2 = enhancer.CountMatching(Parse("NOT dblp_author.aid=2"));
  ASSERT_TRUE(not_a2.ok());
  EXPECT_EQ(not_a2.value(), 1u);  // paper 2
}

TEST_F(QueryEnhancerTest, StarvationAndFloodingIllustration) {
  // §4.6: ANDing two venue predicates starves (0 tuples); ORing them does
  // not.
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  auto starved = enhancer.CountMatching(
      Parse("dblp.venue='VLDB' AND dblp.venue='SIGMOD'"));
  ASSERT_TRUE(starved.ok());
  EXPECT_EQ(starved.value(), 0u);
  auto ored = enhancer.CountMatching(
      Parse("dblp.venue='VLDB' OR dblp.venue='SIGMOD'"));
  ASSERT_TRUE(ored.ok());
  EXPECT_EQ(ored.value(), 4u);
}

TEST_F(QueryEnhancerTest, InvalidPredicateSurfacesError) {
  QueryEnhancer enhancer(&db_, base_, "dblp.pid");
  EXPECT_FALSE(enhancer.CountMatching(Parse("nosuch.column=1")).ok());
}

}  // namespace
}  // namespace core
}  // namespace hypre
