// Tests for concurrent multi-tenant serving through one api::Session.
//
// The contract under test (see the thread-model section of api/session.h):
// any number of threads may call Enumerate() on ONE session and ONE cached
// engine simultaneously and get results byte-identical to running the same
// requests serially; first-touch races build exactly one engine and one
// TaskPool; a Refresh() racing in-flight enumerations returns promptly and
// DEFERS its journal suffix until the pinned readers drain (epoch-pin
// discipline); per-request ProbeStats are exact (collector-based, not
// engine-snapshot subtraction); and the AdmissionScheduler admits strictly
// FIFO under its concurrency and probe-budget caps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hypre/api/scheduler.h"
#include "hypre/api/session.h"
#include "test_fixtures.h"

namespace hypre {
namespace api {
namespace {

using core::testing_fixtures::BuildMiniDblp;
using core::testing_fixtures::MiniBaseQuery;
using core::testing_fixtures::MiniPreferences;

/// Serializes everything deterministic about a result into one comparable
/// string, so "concurrent run == serial run" is a single byte comparison.
std::string Digest(const EnumerationResult& result) {
  std::string out;
  for (const auto& rec : result.records) {
    out += rec.predicate_sql;
    out += '|';
    out += std::to_string(rec.num_predicates);
    out += '|';
    out += std::to_string(rec.num_tuples);
    out += '|';
    out += std::to_string(rec.intensity);
    out += '\n';
  }
  for (const auto& tuple : result.top_k) {
    out += tuple.key.ToString();
    out += '|';
    out += std::to_string(tuple.intensity);
    out += '\n';
  }
  out += "truncated=";
  out += result.truncated ? '1' : '0';
  return out;
}

EnumerationRequest MakeRequest(const std::string& algorithm,
                               const std::vector<core::PreferenceAtom>& prefs,
                               const core::ProbeOptions& options =
                                   core::ProbeOptions()) {
  EnumerationRequest request;
  request.algorithm = algorithm;
  request.base_query = MiniBaseQuery();
  request.key_column = "dblp.pid";
  request.preferences = prefs;
  request.probe_options = options;
  return request;
}

/// The request mix every differential test drives: combination enumerators
/// and rankers, batching on and off, single- and multi-threaded probes.
std::vector<EnumerationRequest> RequestMix(
    const std::vector<core::PreferenceAtom>& prefs) {
  std::vector<EnumerationRequest> requests;
  requests.push_back(MakeRequest("exhaustive", prefs));
  {
    core::ProbeOptions scalar;
    scalar.batching = false;
    requests.push_back(MakeRequest("combine-two", prefs, scalar));
  }
  {
    core::ProbeOptions parallel_opts;
    parallel_opts.num_threads = 3;
    requests.push_back(MakeRequest("partially-combine-all", prefs,
                                   parallel_opts));
  }
  {
    EnumerationRequest peps = MakeRequest("peps", prefs);
    peps.k = SIZE_MAX;
    requests.push_back(std::move(peps));
  }
  requests.push_back(MakeRequest("ta", prefs));
  return requests;
}

/// Polls until `predicate` holds (the scheduler has no "is waiting" hook, so
/// tests observe queue depth with a bounded spin).
template <typename Pred>
bool WaitFor(Pred predicate, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// --- The differential: N threads on one engine == serial ------------------

TEST(ConcurrentSession, ManyThreadsMatchSerialByteForByte) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto prefs = MiniPreferences();
  std::vector<EnumerationRequest> requests = RequestMix(prefs);

  // Serial baselines from an INDEPENDENT session (fresh engine), so the
  // concurrent session cannot accidentally agree with itself.
  std::vector<std::string> baseline;
  {
    Session serial(&db);
    for (const auto& request : requests) {
      auto result = serial.Enumerate(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      baseline.push_back(Digest(*result));
    }
  }

  Session session(&db);
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 6;
  std::atomic<size_t> mismatches{0};
  std::mutex report_mu;
  std::string first_error;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        // Stagger which request each thread starts with so every pair of
        // request shapes overlaps at some point.
        size_t i = (t + round) % requests.size();
        auto result = session.Enumerate(requests[i]);
        if (!result.ok()) {
          mismatches.fetch_add(1);
          std::lock_guard<std::mutex> lock(report_mu);
          if (first_error.empty()) first_error = result.status().ToString();
          continue;
        }
        if (Digest(*result) != baseline[i]) {
          mismatches.fetch_add(1);
          std::lock_guard<std::mutex> lock(report_mu);
          if (first_error.empty()) {
            first_error = "digest mismatch for request " + std::to_string(i) +
                          " (" + requests[i].algorithm + ")";
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u) << first_error;
  // All five request shapes share one base query: one engine, built once.
  EXPECT_EQ(session.num_cached_engines(), 1u);
}

TEST(ConcurrentSession, AdmissionCapsPreserveResults) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto prefs = MiniPreferences();
  EnumerationRequest request = MakeRequest("exhaustive", prefs);
  request.probe_budget = 10;

  std::string baseline;
  {
    Session serial(&db);
    auto result = serial.Enumerate(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    baseline = Digest(*result);
  }

  Session session(&db);
  AdmissionScheduler::Options caps;
  caps.max_concurrent = 2;
  caps.max_inflight_probe_budget = 15;  // two budget-10 requests can't overlap
  session.scheduler().set_options(caps);

  // Hold a budget-10 reservation so the client threads' budget-10 requests
  // cannot fit under the cap until we let go: at least one of them is
  // forced to queue, deterministically (on a single core the clients might
  // otherwise serialize naturally and never wait).
  AdmissionScheduler::Ticket plug = session.scheduler().Admit(10);

  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 4; ++round) {
        auto result = session.Enumerate(request);
        if (!result.ok() || Digest(*result) != baseline) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  ASSERT_TRUE(WaitFor(
      [&] { return session.scheduler().stats().queue_depth > 0; }));
  plug.Release();

  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  AdmissionScheduler::Stats stats = session.scheduler().stats();
  EXPECT_EQ(stats.admitted, kThreads * 4 + 1);  // +1 for the plug ticket
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.inflight_budget, 0u);
  // Every client request that arrived while the plug was held had to queue.
  EXPECT_GT(stats.waited, 0u);
}

// --- First-touch races ----------------------------------------------------

TEST(ConcurrentSession, FirstTouchBuildsExactlyOneEngineAndPool) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto prefs = MiniPreferences();

  std::string baseline;
  {
    Session serial(&db);
    auto result = serial.Enumerate(MakeRequest("exhaustive", prefs));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    baseline = Digest(*result);
  }

  Session session(&db);
  constexpr size_t kThreads = 16;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Half the threads ask for parallel probes, so TaskPool creation
      // races engine creation AND other pool requests.
      core::ProbeOptions options;
      options.num_threads = (t % 2 == 0) ? size_t{1} : size_t{2};
      auto result =
          session.Enumerate(MakeRequest("exhaustive", prefs, options));
      if (!result.ok() || Digest(*result) != baseline) {
        mismatches.fetch_add(1);
      }
      // Lazy accessors must be safe to race with first-touch requests.
      (void)session.num_cached_engines();
      (void)session.has_task_pool();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(session.num_cached_engines(), 1u);
  EXPECT_TRUE(session.has_task_pool());
  // The find-or-create race resolved to ONE pool: engine and session agree.
  auto enhancer = session.GetEnhancer(MiniBaseQuery(), "dblp.pid");
  ASSERT_TRUE(enhancer.ok());
  EXPECT_EQ((*enhancer)->probe_engine().task_pool(), session.task_pool());
}

// --- Epoch pinning: mutate + Refresh while an enumeration is in flight ----

TEST(ConcurrentSession, RefreshDefersWhileReaderPinned) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto prefs = MiniPreferences();

  Session session(&db);
  // Warm baseline (also interns the universe).
  EnumerationRequest request = MakeRequest("exhaustive", prefs);
  std::string baseline;
  {
    auto result = session.Enumerate(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    baseline = Digest(*result);
  }
  auto enhancer = session.GetEnhancer(MiniBaseQuery(), "dblp.pid");
  ASSERT_TRUE(enhancer.ok());
  const core::ProbeEngine& engine = (*enhancer)->probe_engine();
  const uint64_t epoch_before = engine.epoch();

  // A record sink that parks the enumeration mid-run (on the request
  // thread, with the epoch pin held) until the main thread releases it.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  EnumerationRequest pinned = request;
  pinned.record_sink = [&](const core::CombinationRecord&) {
    std::unique_lock<std::mutex> lock(mu);
    if (!started) {
      started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  };

  std::string pinned_digest;
  Status pinned_status = Status::OK();
  std::thread reader([&] {
    auto result = session.Enumerate(pinned);
    if (!result.ok()) {
      pinned_status = result.status();
      return;
    }
    pinned_digest = Digest(*result);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }

  // Reader is parked mid-enumeration, pin held. Mutate the base tables and
  // refresh: the call must return promptly (deferring, not blocking on the
  // parked reader) and must NOT advance the epoch under the pin.
  using reldb::Row;
  using reldb::Value;
  ASSERT_TRUE(db.GetTable("dblp")
                  ->Append(Row{Value::Int(9), Value::Str("V1"),
                               Value::Int(2009)})
                  .ok());
  ASSERT_TRUE(
      db.GetTable("dblp_author")->Append(Row{Value::Int(9), Value::Int(1)}).ok());
  auto refreshed = session.Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(engine.epoch(), epoch_before);
  EXPECT_GT(engine.num_deferred_refreshes(), 0u);
  EXPECT_TRUE(engine.has_deferred_refresh());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  reader.join();
  ASSERT_TRUE(pinned_status.ok()) << pinned_status.ToString();
  // The pinned run saw the PRE-mutation snapshot end to end, even though
  // the mutation and the Refresh landed mid-run.
  EXPECT_EQ(pinned_digest, baseline);

  // The next refresh-bearing request applies the deferred suffix: new
  // epoch, and the appended paper (pid 9, V1, aid=1) is visible.
  auto result = session.Enumerate(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->epoch, epoch_before);
  bool saw_new_paper = false;
  for (const auto& rec : result->records) {
    if (rec.num_predicates == 1 && rec.predicate_sql == "dblp_author.aid=1") {
      // aid=1 matched papers {1,2,4,7} before; pid 9 joins them.
      EXPECT_EQ(rec.num_tuples, 5u);
      saw_new_paper = true;
    }
  }
  EXPECT_TRUE(saw_new_paper);
  EXPECT_FALSE(engine.has_deferred_refresh());
}

TEST(ConcurrentSession, PureReadersSkipRefreshAndPinLiveEpoch) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto prefs = MiniPreferences();
  Session session(&db);
  EnumerationRequest request = MakeRequest("exhaustive", prefs);
  auto warm = session.Enumerate(request);
  ASSERT_TRUE(warm.ok());

  auto enhancer = session.GetEnhancer(MiniBaseQuery(), "dblp.pid");
  ASSERT_TRUE(enhancer.ok());
  const uint64_t epoch = (*enhancer)->probe_engine().epoch();

  // Mutate, but enumerate with refresh=false: a pure reader must not drain
  // the journal — same epoch, pre-mutation results.
  using reldb::Row;
  using reldb::Value;
  ASSERT_TRUE(db.GetTable("dblp")
                  ->Append(Row{Value::Int(9), Value::Str("V2"),
                               Value::Int(2009)})
                  .ok());
  EnumerationRequest stale = request;
  stale.refresh = false;
  auto result = session.Enumerate(stale);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, epoch);
  EXPECT_EQ(Digest(*result), Digest(*warm));
}

// --- Per-request statistics under concurrency -----------------------------

TEST(ConcurrentSession, PerRequestStatsAreExactUnderConcurrency) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto prefs = MiniPreferences();
  Session session(&db);
  EnumerationRequest request = MakeRequest("exhaustive", prefs);

  // Warm the engine: leaves materialized, so steady-state requests are
  // leaf-query-free and their batch counters are a fixed, known quantity.
  auto warm = session.Enumerate(request);
  ASSERT_TRUE(warm.ok());
  auto steady = session.Enumerate(request);
  ASSERT_TRUE(steady.ok());
  ASSERT_EQ(steady->stats.num_leaf_queries, 0u);
  const core::ProbeStats expected = steady->stats;
  ASSERT_GT(expected.num_cache_hits, 0u);

  // Engine-snapshot subtraction would smear overlapping requests' probes
  // into each other (double counts, even negatives). The collector makes
  // every concurrent request report EXACTLY the serial numbers.
  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 4; ++round) {
        auto result = session.Enumerate(request);
        if (!result.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const core::ProbeStats& stats = result->stats;
        if (stats.num_leaf_queries != 0 ||
            stats.num_cache_hits != expected.num_cache_hits ||
            stats.num_batches != expected.num_batches ||
            stats.num_batched_probes != expected.num_batched_probes ||
            stats.num_shard_passes != expected.num_shard_passes) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// --- AdmissionScheduler unit tests ----------------------------------------

TEST(AdmissionScheduler, UnlimitedByDefault) {
  AdmissionScheduler scheduler;
  auto a = scheduler.Admit(100);
  auto b = scheduler.Admit(0);
  auto c = scheduler.Admit(1000000);
  AdmissionScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.waited, 0u);
  EXPECT_EQ(stats.inflight, 3u);
  EXPECT_EQ(stats.inflight_budget, 1000100u);
  a.Release();
  b.Release();
  c.Release();
  EXPECT_EQ(scheduler.stats().inflight, 0u);
  EXPECT_EQ(scheduler.stats().inflight_budget, 0u);
}

TEST(AdmissionScheduler, ConcurrencyCapBlocksAndReleases) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 2;
  AdmissionScheduler scheduler(options);
  auto a = scheduler.Admit(0);
  auto b = scheduler.Admit(0);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto c = scheduler.Admit(0);
    admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));
  EXPECT_FALSE(admitted.load());
  a.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  AdmissionScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_GE(stats.waited, 1u);
}

TEST(AdmissionScheduler, BudgetCapBlocksUntilSpendDrains) {
  AdmissionScheduler::Options options;
  options.max_inflight_probe_budget = 10;
  AdmissionScheduler scheduler(options);
  auto a = scheduler.Admit(6);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto b = scheduler.Admit(6);  // 6 + 6 > 10: must wait for a
    admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));
  EXPECT_FALSE(admitted.load());
  // Unbudgeted requests pass the budget cap... but FIFO holds them behind
  // the blocked budget-6 request: strict arrival order, no overtaking.
  std::atomic<bool> zero_admitted{false};
  std::thread zero([&] {
    auto c = scheduler.Admit(0);
    zero_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 2; }));
  EXPECT_FALSE(zero_admitted.load());
  a.Release();
  waiter.join();
  zero.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(zero_admitted.load());
}

TEST(AdmissionScheduler, OversizedRequestAdmittedWhenAlone) {
  AdmissionScheduler::Options options;
  options.max_inflight_probe_budget = 10;
  AdmissionScheduler scheduler(options);
  // Cost 50 > cap 10, but nothing is in flight: admit rather than starve.
  auto huge = scheduler.Admit(50);
  EXPECT_EQ(scheduler.stats().inflight, 1u);
  // While the oversized request runs, everything budgeted queues.
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto small = scheduler.Admit(1);
    admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));
  EXPECT_FALSE(admitted.load());
  huge.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionScheduler, FifoOrderUnderSingleSlot) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  AdmissionScheduler scheduler(options);
  auto gate = scheduler.Admit(0);

  std::mutex order_mu;
  std::vector<int> admission_order;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      auto ticket = scheduler.Admit(0);
      std::lock_guard<std::mutex> lock(order_mu);
      admission_order.push_back(i);
    });
    // Each waiter must be ENQUEUED (FIFO position taken) before the next
    // thread starts, or arrival order itself would be racy.
    ASSERT_TRUE(WaitFor([&] {
      return scheduler.stats().queue_depth == static_cast<size_t>(i + 1);
    }));
  }
  gate.Release();
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(admission_order, (std::vector<int>{0, 1, 2, 3}));
  AdmissionScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.waited, 4u);
}

TEST(AdmissionScheduler, LooseningCapsWakesWaiters) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  AdmissionScheduler scheduler(options);
  auto gate = scheduler.Admit(0);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto ticket = scheduler.Admit(0);
    admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));
  EXPECT_FALSE(admitted.load());
  scheduler.set_options(AdmissionScheduler::Options());  // unlimited
  waiter.join();
  EXPECT_TRUE(admitted.load());
  gate.Release();
}

// --- Bounded admission (TryAdmit: queue depth + wait deadline) -------------

TEST(AdmissionScheduler, TryAdmitMatchesAdmitWhenUnloaded) {
  AdmissionScheduler scheduler;
  auto ticket = scheduler.TryAdmit(5);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  EXPECT_EQ(scheduler.stats().inflight, 1u);
  EXPECT_EQ(scheduler.stats().rejected, 0u);
  ticket->Release();
  EXPECT_EQ(scheduler.stats().inflight, 0u);
}

TEST(AdmissionScheduler, QueueDepthBoundShedsWithUnavailable) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  options.max_queue_depth = 1;
  AdmissionScheduler scheduler(options);
  auto gate = scheduler.Admit(0);

  // One waiter fills the queue to its bound.
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto ticket = scheduler.TryAdmit(0);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));

  // The next bounded request would queue BEHIND the bound: shed, typed.
  auto shed = scheduler.TryAdmit(0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("queue full"), std::string::npos);
  EXPECT_EQ(scheduler.stats().rejected, 1u);

  // The legacy unbounded Admit still waits (never sheds) — the in-process
  // API contract is unchanged.
  std::atomic<bool> legacy_admitted{false};
  std::thread legacy([&] {
    auto ticket = scheduler.Admit(0);
    legacy_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 2; }));
  EXPECT_FALSE(legacy_admitted.load());

  gate.Release();
  waiter.join();
  legacy.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(legacy_admitted.load());
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(AdmissionScheduler, WaitDeadlineShedsAQueuedRequest) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  AdmissionScheduler scheduler(options);
  auto gate = scheduler.Admit(0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  auto shed = scheduler.TryAdmit(0, deadline);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  AdmissionScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);  // the abandoned waiter left no residue

  // An already-expired deadline is shed before even taking a ticket.
  auto expired = scheduler.TryAdmit(
      0, std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(scheduler.stats().rejected, 2u);

  // With capacity free, the same deadline admits immediately.
  gate.Release();
  auto ok = scheduler.TryAdmit(
      0, std::chrono::steady_clock::now() + std::chrono::milliseconds(50));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(AdmissionScheduler, AbandonedHeadTicketDoesNotStallTheQueue) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  AdmissionScheduler scheduler(options);
  auto gate = scheduler.Admit(0);

  // Head waiter with a short deadline; a patient waiter queues behind it.
  std::thread head([&] {
    auto shed = scheduler.TryAdmit(
        0, std::chrono::steady_clock::now() + std::chrono::milliseconds(50));
    EXPECT_FALSE(shed.ok());
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));
  std::atomic<bool> admitted{false};
  std::thread patient([&] {
    auto ticket = scheduler.Admit(0);
    admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 2; }));

  // Let the head abandon, then free capacity: the patient waiter must be
  // admitted — the abandoned HEAD ticket advanced the cursor itself.
  head.join();
  EXPECT_FALSE(admitted.load());
  gate.Release();
  patient.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(AdmissionScheduler, AbandonedMiddleTicketIsSkippedByTheCursor) {
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  AdmissionScheduler scheduler(options);
  auto gate = scheduler.Admit(0);

  // Queue: [patient-A, deadline-B, patient-C]. B abandons from the MIDDLE;
  // when capacity frees, A then C must both admit (cursor skips B's slot).
  std::atomic<int> admitted{0};
  std::thread a([&] {
    auto ticket = scheduler.Admit(0);
    admitted.fetch_add(1);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 1; }));
  std::thread b([&] {
    auto shed = scheduler.TryAdmit(
        0, std::chrono::steady_clock::now() + std::chrono::milliseconds(50));
    EXPECT_FALSE(shed.ok());
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 2; }));
  std::thread c([&] {
    auto ticket = scheduler.Admit(0);
    admitted.fetch_add(1);
  });
  ASSERT_TRUE(WaitFor([&] { return scheduler.stats().queue_depth == 3; }));

  b.join();  // B times out mid-queue
  EXPECT_EQ(admitted.load(), 0);
  gate.Release();  // admits A; A's release admits C over B's abandoned slot
  a.join();
  c.join();
  EXPECT_EQ(admitted.load(), 2);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(ConcurrentSession, AdmissionTimeoutSurfacesAsUnavailable) {
  reldb::Database db;
  BuildMiniDblp(&db);
  Session session(&db);
  AdmissionScheduler::Options options;
  options.max_concurrent = 1;
  session.scheduler().set_options(options);

  // Hold the only slot with a raw ticket, then send a request with a tiny
  // admission timeout: it must shed with Unavailable, not block.
  auto gate = session.scheduler().Admit(0);
  EnumerationRequest request = MakeRequest("combine-two", MiniPreferences());
  request.admission_timeout_ms = 30;
  auto result = session.Enumerate(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  gate.Release();

  // With the slot free the same request runs.
  auto ok = session.Enumerate(request);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace api
}  // namespace hypre
