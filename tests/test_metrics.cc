// Metric tests: selectivity, utility, coverage, similarity, overlap, and
// the combination-space bounds (Eq. 5.1-5.6).
#include <gtest/gtest.h>

#include "hypre/metrics.h"
#include "sqlparse/parser.h"
#include "workload/canonical.h"

namespace hypre {
namespace core {
namespace {

using reldb::Value;

reldb::ExprPtr Parse(const std::string& text) {
  return sqlparse::ParsePredicate(text).value();
}

TEST(MetricsTest, PrefSelectivity) {
  EXPECT_DOUBLE_EQ(PrefSelectivity(10, 2), 5.0);
  EXPECT_DOUBLE_EQ(PrefSelectivity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(PrefSelectivity(10, 0), 0.0);
}

TEST(MetricsTest, UtilityWithFirstPageCap) {
  // §7.1.1: only the first 25 tuples count.
  EXPECT_DOUBLE_EQ(Utility(10, 2, 0.5), 10.0 / 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(Utility(1000, 2, 0.5), 25.0 / 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(Utility(1000, 2, 0.5, 0), 1000.0 / 2.0 * 0.5);  // uncapped
}

TEST(MetricsTest, CombinationCounts) {
  // Eq. 5.3 and Eq. 5.6 for N = 5 (the dissertation's example list).
  EXPECT_DOUBLE_EQ(CountAndCombinations(5), 31.0);
  EXPECT_DOUBLE_EQ(CountAndOrCombinations(5), 121.0);
  EXPECT_DOUBLE_EQ(CountAndCombinations(0), 0.0);
  EXPECT_DOUBLE_EQ(CountAndOrCombinations(0), 0.0);
  EXPECT_DOUBLE_EQ(CountAndCombinations(1), 1.0);
  EXPECT_DOUBLE_EQ(CountAndOrCombinations(1), 1.0);
  // Exponential growth: N=20 AND-only already past a million.
  EXPECT_GT(CountAndCombinations(20), 1e6);
  EXPECT_GT(CountAndOrCombinations(20), CountAndCombinations(20));
}

TEST(MetricsTest, CoverageUnionsDistinctTuples) {
  reldb::Database db;
  ASSERT_TRUE(workload::BuildDblpSampleDatabase(&db).ok());
  reldb::Query base;
  base.from = "dblp";
  QueryEnhancer enhancer(&db, base, "dblp.pid");
  // VLDB (2) + PVLDB (3) overlap-free = 5; adding year>=2010 (4: t3 t4 t6
  // t8) overlaps t3, t4 -> 7 distinct.
  auto c1 = Coverage(enhancer, {Parse("dblp.venue='VLDB'"),
                                Parse("dblp.venue='PVLDB'")});
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.value(), 5u);
  auto c2 = Coverage(enhancer, {Parse("dblp.venue='VLDB'"),
                                Parse("dblp.venue='PVLDB'"),
                                Parse("year>=2010")});
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2.value(), 7u);
  auto empty = Coverage(enhancer, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value(), 0u);
}

std::vector<Value> Keys(std::initializer_list<const char*> ids) {
  std::vector<Value> out;
  for (const char* id : ids) out.push_back(Value::Str(id));
  return out;
}

TEST(MetricsTest, SimilarityBasics) {
  EXPECT_DOUBLE_EQ(Similarity(Keys({"a", "b"}), Keys({"a", "b"})), 100.0);
  EXPECT_DOUBLE_EQ(Similarity(Keys({"a", "b"}), Keys({"b", "a"})), 100.0);
  EXPECT_DOUBLE_EQ(Similarity(Keys({"a", "b"}), Keys({"c", "d"})), 0.0);
  EXPECT_DOUBLE_EQ(Similarity(Keys({"a", "b", "c", "d"}), Keys({"a"})), 25.0);
  EXPECT_DOUBLE_EQ(Similarity({}, {}), 100.0);
  EXPECT_DOUBLE_EQ(Similarity(Keys({"a"}), {}), 0.0);
}

TEST(MetricsTest, OverlapOrderAgreement) {
  // Same common tuples, same relative order: 100%.
  EXPECT_DOUBLE_EQ(Overlap(Keys({"a", "x", "b"}), Keys({"a", "b", "y"})),
                   100.0);
  // Reversed relative order of the two common tuples: 0%.
  EXPECT_DOUBLE_EQ(Overlap(Keys({"a", "b"}), Keys({"b", "a"})), 0.0);
  // Half agree.
  EXPECT_DOUBLE_EQ(
      Overlap(Keys({"a", "b", "c", "d"}), Keys({"a", "c", "b", "d"})), 50.0);
  // Nothing in common: vacuously 100%.
  EXPECT_DOUBLE_EQ(Overlap(Keys({"a"}), Keys({"b"})), 100.0);
}

TEST(MetricsTest, RankAgreementTieAware) {
  using core::RankedTuple;
  auto rt = [](const char* k, double v) {
    return RankedTuple{Value::Str(k), v};
  };
  // Identical grading: 100%.
  std::vector<RankedTuple> a{rt("x", 0.9), rt("y", 0.5), rt("z", 0.1)};
  EXPECT_DOUBLE_EQ(RankAgreement(a, a), 100.0);
  // One inverted pair out of three comparable pairs: 2/3 concordant.
  std::vector<RankedTuple> b{rt("y", 0.9), rt("x", 0.5), rt("z", 0.1)};
  EXPECT_NEAR(RankAgreement(a, b), 200.0 / 3.0, 1e-9);
  // Ties are skipped rather than counted as disagreement.
  std::vector<RankedTuple> tied{rt("x", 0.5), rt("y", 0.5), rt("z", 0.1)};
  EXPECT_DOUBLE_EQ(RankAgreement(a, tied), 100.0);
  // Disjoint lists: vacuously 100.
  std::vector<RankedTuple> other{rt("q", 0.4)};
  EXPECT_DOUBLE_EQ(RankAgreement(a, other), 100.0);
}

TEST(MetricsTest, QuantOnlyListsIdenticalMeansPerfectScores) {
  // The §7.6.3 quantitative-only expectation: identical lists give 100/100.
  auto list = Keys({"p1", "p2", "p3", "p4"});
  EXPECT_DOUBLE_EQ(Similarity(list, list), 100.0);
  EXPECT_DOUBLE_EQ(Overlap(list, list), 100.0);
}

}  // namespace
}  // namespace core
}  // namespace hypre
