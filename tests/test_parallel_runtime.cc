// Tests for the work-stealing parallel runtime (parallel::TaskPool,
// parallel::PartitionRange, parallel::RangeDeque via the pool) and the
// scalar/SIMD word-kernel tables.
//
// The steal-stress tests are deliberately racy-by-design workloads (skewed
// per-index work, repeated back-to-back regions, concurrent ParallelFor
// callers) and run under the CI TSan job: the Chase-Lev deque uses seq_cst
// atomics rather than standalone fences precisely so TSan can verify it.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hypre/key_bitmap.h"
#include "hypre/parallel/task_pool.h"
#include "hypre/parallel/word_kernels.h"

namespace hypre {
namespace parallel {
namespace {

// --- PartitionRange ---------------------------------------------------------

TEST(PartitionRangeTest, CoversExactlyAndBalances) {
  for (size_t n : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul, 1023ul}) {
    for (size_t parts : {1ul, 2ul, 3ul, 7ul, 8ul, 64ul}) {
      size_t covered = 0;
      size_t min_size = ~size_t{0};
      size_t max_size = 0;
      size_t expected_begin = 0;
      for (size_t p = 0; p < parts; ++p) {
        Range r = PartitionRange(n, parts, p);
        EXPECT_EQ(r.begin, expected_begin) << n << "/" << parts << "#" << p;
        expected_begin = r.end;
        covered += r.size();
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(expected_begin, n);
      // Balanced: sizes differ by at most one.
      EXPECT_LE(max_size - min_size, 1u) << n << "/" << parts;
      // No empty part unless there are more parts than indices — the
      // regression for the old ceil-division split, which handed later
      // workers nothing (e.g. 10 shards / 4 threads = sizes {3,3,3,1}
      // works but 9/8 gave {2,2,2,2,1,0,0,0}).
      if (parts <= n) EXPECT_GE(min_size, 1u) << n << "/" << parts;
    }
  }
}

TEST(PartitionRangeTest, MorePartsThanItems) {
  // parts > n: the first n parts get one index each, the rest are empty.
  size_t n = 3, parts = 8;
  for (size_t p = 0; p < parts; ++p) {
    Range r = PartitionRange(n, parts, p);
    EXPECT_EQ(r.size(), p < n ? 1u : 0u);
  }
}

// --- ParallelFor correctness ------------------------------------------------

class TaskPoolTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(PoolSizes, TaskPoolTest,
                         ::testing::Values(0, 1, 3, 7));

TEST_P(TaskPoolTest, EveryIndexExactlyOnce) {
  TaskPool pool(GetParam());
  for (size_t n : {0ul, 1ul, 2ul, 63ul, 64ul, 65ul, 4096ul, 100001ul}) {
    for (size_t grain : {0ul, 1ul, 16ul, 1000ul}) {
      std::vector<std::atomic<uint32_t>> hits(n);
      for (auto& h : hits) h.store(0, std::memory_order_relaxed);
      pool.ParallelFor(n, grain, /*max_slots=*/0,
                       [&](size_t begin, size_t end, size_t slot) {
                         ASSERT_LT(slot, pool.max_parallelism());
                         for (size_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         }
                       });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u)
            << "n=" << n << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST_P(TaskPoolTest, PerSlotSumsReduceExactly) {
  TaskPool pool(GetParam());
  const size_t n = 50000;
  std::vector<size_t> per_slot(pool.max_parallelism(), 0);
  pool.ParallelFor(n, 64, 0, [&](size_t begin, size_t end, size_t slot) {
    for (size_t i = begin; i < end; ++i) per_slot[slot] += i;
  });
  size_t total = std::accumulate(per_slot.begin(), per_slot.end(), size_t{0});
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST_P(TaskPoolTest, MaxSlotsCapsSlotIds) {
  TaskPool pool(GetParam());
  std::atomic<size_t> max_seen{0};
  pool.ParallelFor(10000, 1, /*max_slots=*/2,
                   [&](size_t, size_t, size_t slot) {
                     size_t prev = max_seen.load(std::memory_order_relaxed);
                     while (slot > prev && !max_seen.compare_exchange_weak(
                                               prev, slot,
                                               std::memory_order_relaxed)) {
                     }
                   });
  EXPECT_LT(max_seen.load(), 2u);
}

TEST_P(TaskPoolTest, NestedParallelForRunsInline) {
  TaskPool pool(GetParam());
  std::atomic<size_t> outer_done{0};
  pool.ParallelFor(16, 1, 0, [&](size_t begin, size_t end, size_t outer_slot) {
    for (size_t i = begin; i < end; ++i) {
      // A nested region must run inline on the calling slot (no deadlock on
      // the region serialization, no slot-id collisions).
      pool.ParallelFor(100, 10, 0, [&](size_t, size_t, size_t inner_slot) {
        ASSERT_EQ(inner_slot, 0u);
      });
      outer_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(outer_done.load(), 16u);
}

TEST(TaskPoolTest, SharedPoolIsSingleton) {
  TaskPool* a = TaskPool::Shared();
  TaskPool* b = TaskPool::Shared();
  EXPECT_EQ(a, b);
  std::atomic<size_t> sum{0};
  a->ParallelFor(1000, 0, 0, [&](size_t begin, size_t end, size_t) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000u);
}

// --- Steal stress (TSan target) ---------------------------------------------

TEST(TaskPoolStressTest, SkewedWorkStealsCorrectly) {
  // Heavily skewed per-index cost: the first slots' seeded ranges hold all
  // the heavy indices, so finishing fast requires stealing. Every index
  // must still run exactly once and the reduction must be exact.
  TaskPool pool(7);
  const size_t n = 2000;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<uint8_t>> ran(n);
    for (auto& r : ran) r.store(0, std::memory_order_relaxed);
    std::vector<size_t> per_slot(pool.max_parallelism(), 0);
    pool.ParallelFor(n, 4, 0, [&](size_t begin, size_t end, size_t slot) {
      for (size_t i = begin; i < end; ++i) {
        // Quadratic skew: index 0 spins ~0, the last ~4k iterations.
        volatile size_t sink = 0;
        for (size_t s = 0; s < (i * i) / 1000; ++s) sink = sink + s;
        uint8_t prev = ran[i].exchange(1, std::memory_order_relaxed);
        ASSERT_EQ(prev, 0) << "index " << i << " ran twice";
        per_slot[slot] += 1;
      }
    });
    size_t total =
        std::accumulate(per_slot.begin(), per_slot.end(), size_t{0});
    ASSERT_EQ(total, n);
  }
}

TEST(TaskPoolStressTest, BackToBackRegions) {
  // Many consecutive small regions: exercises the park/unpark generation
  // protocol (a worker must never act on a stale region or miss a wakeup).
  TaskPool pool(3);
  for (int round = 0; round < 300; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(64, 1, 0, [&](size_t begin, size_t end, size_t) {
      count.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64u);
  }
}

TEST(TaskPoolStressTest, ConcurrentCallersSerialize) {
  // ParallelFor from several external threads at once: regions must
  // serialize internally and each caller must get its own exact result.
  TaskPool pool(3);
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &failures, c] {
      for (int round = 0; round < 50; ++round) {
        size_t n = 128 + static_cast<size_t>(c) * 17;
        std::atomic<size_t> sum{0};
        pool.ParallelFor(n, 8, 0, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            sum.fetch_add(i, std::memory_order_relaxed);
          }
        });
        if (sum.load() != n * (n - 1) / 2) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Word kernels -----------------------------------------------------------

std::vector<uint64_t> RandomWords(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

TEST(WordKernelsTest, ActiveMatchesScalarOnAllOps) {
  const WordKernels& scalar = ScalarWordKernels();
  const WordKernels& active = ActiveWordKernels();
  // Lengths straddle the 4-word SIMD block boundary and include the
  // scalar-tail-only cases.
  for (size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 8ul, 33ul, 512ul, 1001ul}) {
    auto a = RandomWords(n, 1000 + n);
    auto b = RandomWords(n, 2000 + n);
    auto c = RandomWords(n, 3000 + n);

    auto dst_s = a, dst_v = a;
    scalar.or_into(dst_s.data(), b.data(), n);
    active.or_into(dst_v.data(), b.data(), n);
    EXPECT_EQ(dst_s, dst_v) << "or_into n=" << n;

    dst_s = a, dst_v = a;
    scalar.and_into(dst_s.data(), b.data(), n);
    active.and_into(dst_v.data(), b.data(), n);
    EXPECT_EQ(dst_s, dst_v) << "and_into n=" << n;

    dst_s = a, dst_v = a;
    scalar.andnot_into(dst_s.data(), b.data(), n);
    active.andnot_into(dst_v.data(), b.data(), n);
    EXPECT_EQ(dst_s, dst_v) << "andnot_into n=" << n;

    std::vector<uint64_t> to_s(n), to_v(n);
    scalar.and_to(to_s.data(), a.data(), b.data(), n);
    active.and_to(to_v.data(), a.data(), b.data(), n);
    EXPECT_EQ(to_s, to_v) << "and_to n=" << n;

    std::vector<uint64_t> copy_v(n, 0);
    active.copy(copy_v.data(), a.data(), n);
    EXPECT_EQ(copy_v, a) << "copy n=" << n;

    EXPECT_EQ(scalar.popcount(a.data(), n), active.popcount(a.data(), n));
    EXPECT_EQ(scalar.and_count(a.data(), b.data(), n),
              active.and_count(a.data(), b.data(), n));
    EXPECT_EQ(scalar.and3_count(a.data(), b.data(), c.data(), n),
              active.and3_count(a.data(), b.data(), c.data(), n));
    for (size_t k : {1ul, 2ul, 3ul, 5ul}) {
      std::vector<const uint64_t*> ops;
      const std::vector<uint64_t>* sources[] = {&a, &b, &c};
      for (size_t j = 0; j < k; ++j) ops.push_back(sources[j % 3]->data());
      EXPECT_EQ(scalar.and_count_multi(ops.data(), k, n),
                active.and_count_multi(ops.data(), k, n))
          << "and_count_multi k=" << k << " n=" << n;
    }
  }
}

TEST(WordKernelsTest, AndToAllowsAliasedAccumulator) {
  // and_to's documented aliasing exception: dst == a (the batch kernel's
  // acc = acc & group step).
  const WordKernels& active = ActiveWordKernels();
  auto a = RandomWords(100, 7);
  auto b = RandomWords(100, 8);
  auto expect = a;
  for (size_t i = 0; i < 100; ++i) expect[i] &= b[i];
  active.and_to(a.data(), a.data(), b.data(), 100);
  EXPECT_EQ(a, expect);
}

TEST(WordKernelsTest, SelectRoutesSimdFlag) {
  EXPECT_STREQ(SelectWordKernels(false).name, "scalar");
  if (SimdKernelsCompiled()) {
    EXPECT_STREQ(SelectWordKernels(true).name, "avx2");
  } else {
    EXPECT_STREQ(SelectWordKernels(true).name, "scalar");
  }
}

// --- KeyBitmap first-touch constructor --------------------------------------

TEST(KeyBitmapPoolTest, PoolConstructorZeroesEverything) {
  TaskPool pool(3);
  for (size_t bits : {0ul, 63ul, 64ul, 65ul, 1ul << 20}) {
    core::KeyBitmap parallel_zeroed(bits, &pool);
    core::KeyBitmap serial(bits);
    EXPECT_EQ(parallel_zeroed, serial) << "bits=" << bits;
    EXPECT_EQ(parallel_zeroed.Count(), 0u);
    EXPECT_EQ(parallel_zeroed.num_bits(), bits);
  }
  // Null pool degrades to inline zeroing.
  core::KeyBitmap no_pool(1 << 18, static_cast<TaskPool*>(nullptr));
  EXPECT_EQ(no_pool.Count(), 0u);
}

}  // namespace
}  // namespace parallel
}  // namespace hypre
