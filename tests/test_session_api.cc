// Tests for the unified enumeration API (api::Session + EnumeratorRegistry).
//
// The load-bearing guarantee: dispatching an algorithm BY NAME through
// Session::Enumerate produces byte-identical records/tuples to calling the
// algorithm's direct entry point on an equivalent enhancer — for all six
// algorithms, with batching on and off, across thread counts. On top of
// that: probe budgets truncate deterministically (and identically batched
// vs scalar), streaming sinks see exactly the collected output, unknown
// names fail cleanly, the session's engine cache makes repeat requests
// leaf-query-free, and refresh pins the epoch after mutations.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hypre/algorithms/bias_random.h"
#include "hypre/algorithms/combine_two.h"
#include "hypre/algorithms/exhaustive.h"
#include "hypre/algorithms/partially_combine_all.h"
#include "hypre/algorithms/peps.h"
#include "hypre/algorithms/threshold_algorithm.h"
#include "hypre/api/session.h"
#include "test_fixtures.h"

namespace hypre {
namespace api {
namespace {

using core::CombinationRecord;
using core::RankedTuple;
using core::testing_fixtures::BuildMiniDblp;
using core::testing_fixtures::MiniBaseQuery;
using core::testing_fixtures::MiniPreferences;

void ExpectRecordsEqual(const std::vector<CombinationRecord>& actual,
                        const std::vector<CombinationRecord>& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].predicate_sql, expected[i].predicate_sql)
        << label << " record " << i;
    EXPECT_EQ(actual[i].num_predicates, expected[i].num_predicates)
        << label << " record " << i;
    EXPECT_EQ(actual[i].num_tuples, expected[i].num_tuples)
        << label << " record " << i;
    EXPECT_EQ(actual[i].intensity, expected[i].intensity)
        << label << " record " << i;
    EXPECT_EQ(actual[i].combination.SortedMembers(),
              expected[i].combination.SortedMembers())
        << label << " record " << i;
  }
}

void ExpectTuplesEqual(const std::vector<RankedTuple>& actual,
                       const std::vector<RankedTuple>& expected,
                       const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].key.Compare(expected[i].key), 0)
        << label << " tuple " << i;
    EXPECT_EQ(actual[i].intensity, expected[i].intensity)
        << label << " tuple " << i;
  }
}

class SessionApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildMiniDblp(&db_);
    session_ = std::make_unique<Session>(&db_);
    prefs_ = MiniPreferences();
  }

  EnumerationRequest MakeRequest(const std::string& algorithm,
                                 const core::ProbeOptions& options =
                                     core::ProbeOptions{}) const {
    EnumerationRequest request;
    request.algorithm = algorithm;
    request.base_query = MiniBaseQuery();
    request.key_column = "dblp.pid";
    request.preferences = prefs_;
    request.probe_options = options;
    return request;
  }

  EnumerationResult Enumerate(const EnumerationRequest& request) {
    auto result = session_->Enumerate(request);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).TakeValue();
  }

  reldb::Database db_;
  std::unique_ptr<Session> session_;
  std::vector<core::PreferenceAtom> prefs_;
};

// --- The differential: Session output == direct entry-point output --------

TEST_F(SessionApiTest, ByteIdenticalToDirectCallsAllSixAlgorithms) {
  for (bool batching : {true, false}) {
    for (size_t num_threads : {size_t{1}, size_t{3}}) {
      core::ProbeOptions options;
      options.batching = batching;
      options.num_threads = num_threads;
      std::string label = std::string("batching=") +
                          (batching ? "on" : "off") + " threads=" +
                          std::to_string(num_threads);
      // A fresh direct enhancer per configuration; the session keeps
      // reusing ITS cached engine across all configurations, which is
      // exactly the sharing the equality must survive.
      core::QueryEnhancer direct(&db_, MiniBaseQuery(), "dblp.pid");

      ExpectRecordsEqual(
          Enumerate(MakeRequest("exhaustive", options)).records,
          *core::ExhaustiveAndCombinations(prefs_, direct, 20, options),
          "exhaustive " + label);

      for (core::CombineSemantics semantics :
           {core::CombineSemantics::kAnd, core::CombineSemantics::kAndOr}) {
        EnumerationRequest request = MakeRequest("combine-two", options);
        request.semantics = semantics;
        ExpectRecordsEqual(
            Enumerate(request).records,
            *core::CombineTwo(prefs_, direct, semantics, options),
            "combine-two " + label);
      }

      ExpectRecordsEqual(
          Enumerate(MakeRequest("partially-combine-all", options)).records,
          *core::PartiallyCombineAll(prefs_, direct, options),
          "partially-combine-all " + label);

      {
        EnumerationRequest request = MakeRequest("bias-random", options);
        request.seed = 7;
        EnumerationResult result = Enumerate(request);
        auto direct_run =
            core::BiasRandomSelection(prefs_, direct, 7, options);
        ASSERT_TRUE(direct_run.ok());
        ExpectRecordsEqual(result.records, direct_run->records,
                           "bias-random " + label);
        EXPECT_EQ(result.valid_checks, direct_run->valid_checks) << label;
        EXPECT_EQ(result.invalid_checks, direct_run->invalid_checks)
            << label;
      }

      for (core::PepsMode mode :
           {core::PepsMode::kComplete, core::PepsMode::kApproximate}) {
        EnumerationRequest request = MakeRequest("peps", options);
        request.mode = mode;
        core::Peps peps(&prefs_, &direct, options);
        ExpectRecordsEqual(Enumerate(request).records,
                           *peps.GenerateOrder(mode), "peps order " + label);

        request.k = 6;
        core::Peps peps_topk(&prefs_, &direct, options);
        ExpectTuplesEqual(Enumerate(request).top_k,
                          *peps_topk.TopK(6, mode), "peps topk " + label);
      }

      {
        EnumerationRequest request = MakeRequest("ta", options);
        request.k = 3;
        auto lists =
            core::BuildGradedLists(direct.probe_engine(), prefs_);
        ASSERT_TRUE(lists.ok());
        ExpectTuplesEqual(Enumerate(request).top_k,
                          *core::ThresholdAlgorithmTopK(*lists, 3),
                          "ta k=3 " + label);
        request.k = 0;
        ExpectTuplesEqual(Enumerate(request).top_k,
                          *core::ThresholdAlgorithmTopK(*lists, 0),
                          "ta k=0 " + label);
      }
    }
  }
}

// --- Probe budgets ---------------------------------------------------------

TEST_F(SessionApiTest, BudgetTruncatesCombineTwoDeterministically) {
  EnumerationRequest request = MakeRequest("combine-two");
  EnumerationResult full = Enumerate(request);
  ASSERT_EQ(full.records.size(), 10u);  // C(5,2)
  EXPECT_FALSE(full.truncated);

  request.probe_budget = 4;
  EnumerationResult capped = Enumerate(request);
  EXPECT_TRUE(capped.truncated);
  ASSERT_EQ(capped.records.size(), 4u);
  // The budgeted run's records are the generation-order prefix of the full
  // run, and they are identical batched or scalar.
  for (size_t i = 0; i < capped.records.size(); ++i) {
    EXPECT_EQ(capped.records[i].predicate_sql, full.records[i].predicate_sql);
    EXPECT_EQ(capped.records[i].num_tuples, full.records[i].num_tuples);
  }
  request.probe_options.batching = false;
  ExpectRecordsEqual(Enumerate(request).records, capped.records,
                     "combine-two budget scalar-vs-batched");

  // A budget exactly covering the run does not truncate.
  request.probe_options.batching = true;
  request.probe_budget = 10;
  EnumerationResult exact = Enumerate(request);
  EXPECT_FALSE(exact.truncated);
  ExpectRecordsEqual(exact.records, full.records, "combine-two exact budget");
}

TEST_F(SessionApiTest, BudgetTruncatesEveryRecordAlgorithmIdentically) {
  // For every record-producing algorithm: a small budget truncates, and the
  // truncated output is identical with batching on and off (the budget is
  // enforced at generation granularity on both paths).
  for (const char* algorithm :
       {"exhaustive", "combine-two", "partially-combine-all", "bias-random",
        "peps"}) {
    EnumerationRequest request = MakeRequest(algorithm);
    request.seed = 7;
    request.probe_budget = 5;
    EnumerationResult batched = Enumerate(request);
    EXPECT_TRUE(batched.truncated) << algorithm;
    request.probe_options.batching = false;
    EnumerationResult scalar = Enumerate(request);
    EXPECT_TRUE(scalar.truncated) << algorithm;
    ExpectRecordsEqual(scalar.records, batched.records,
                       std::string(algorithm) + " budget=5");
  }
}

TEST_F(SessionApiTest, BudgetCountsBiasRandomChecks) {
  EnumerationRequest request = MakeRequest("bias-random");
  request.seed = 3;
  EnumerationResult full = Enumerate(request);
  size_t total_checks = full.valid_checks + full.invalid_checks;
  ASSERT_GT(total_checks, 4u);

  request.probe_budget = 4;
  EnumerationResult capped = Enumerate(request);
  EXPECT_TRUE(capped.truncated);
  // Every admitted probe was consumed as a check; none leaked past the cap.
  EXPECT_EQ(capped.valid_checks + capped.invalid_checks, 4u);
}

TEST_F(SessionApiTest, BudgetCapsTaSortedAccessDepth) {
  EnumerationRequest request = MakeRequest("ta");
  request.k = 0;
  EnumerationResult full = Enumerate(request);
  EXPECT_FALSE(full.truncated);
  ASSERT_GT(full.top_k.size(), 2u);

  // 5 atoms build the lists; one sorted-access round remains.
  request.probe_budget = prefs_.size() + 1;
  EnumerationResult capped = Enumerate(request);
  EXPECT_TRUE(capped.truncated);
  EXPECT_LT(capped.top_k.size(), full.top_k.size());

  // Budget smaller than the atom list: even the graded lists are partial.
  request.probe_budget = 2;
  EnumerationResult tiny = Enumerate(request);
  EXPECT_TRUE(tiny.truncated);
}

// --- Streaming sinks -------------------------------------------------------

TEST_F(SessionApiTest, RecordSinkStreamsProbeOrder) {
  std::vector<CombinationRecord> streamed;
  EnumerationRequest request = MakeRequest("partially-combine-all");
  request.record_sink = [&](const CombinationRecord& record) {
    streamed.push_back(record);
  };
  EnumerationResult result = Enumerate(request);
  // Partially-combine-all's result order IS probe order, so the stream
  // matches the collected vector exactly.
  ExpectRecordsEqual(streamed, result.records, "streamed records");
}

TEST_F(SessionApiTest, RecordSinkSeesAllApplicableExhaustiveRecords) {
  std::vector<std::string> streamed;
  EnumerationRequest request = MakeRequest("exhaustive");
  request.record_sink = [&](const CombinationRecord& record) {
    streamed.push_back(record.predicate_sql);
  };
  EnumerationResult result = Enumerate(request);
  // The sink runs in probe order, the vector is intensity-sorted: same
  // multiset.
  ASSERT_EQ(streamed.size(), result.records.size());
  std::vector<std::string> collected;
  for (const auto& record : result.records) {
    collected.push_back(record.predicate_sql);
  }
  std::sort(streamed.begin(), streamed.end());
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(streamed, collected);
}

TEST_F(SessionApiTest, TupleSinkStreamsRankOrder) {
  std::vector<RankedTuple> streamed;
  EnumerationRequest request = MakeRequest("peps");
  request.k = 5;
  request.tuple_sink = [&](const RankedTuple& tuple) {
    streamed.push_back(tuple);
  };
  EnumerationResult result = Enumerate(request);
  ExpectTuplesEqual(streamed, result.top_k, "peps streamed tuples");

  streamed.clear();
  request = MakeRequest("ta");
  request.k = 4;
  request.tuple_sink = [&](const RankedTuple& tuple) {
    streamed.push_back(tuple);
  };
  result = Enumerate(request);
  ExpectTuplesEqual(streamed, result.top_k, "ta streamed tuples");
}

// --- Errors and the registry ----------------------------------------------

TEST_F(SessionApiTest, UnknownAlgorithmNameFails) {
  EnumerationRequest request = MakeRequest("combine-three");
  auto result = session_->Enumerate(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The error names what IS registered.
  EXPECT_NE(result.status().message().find("peps"), std::string::npos)
      << result.status().ToString();
}

TEST_F(SessionApiTest, RegistryListsAllSixAlgorithms) {
  std::vector<std::string> names = session_->Algorithms();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "bias-random", "combine-two", "exhaustive",
                       "partially-combine-all", "peps", "ta"}));
  for (const CombinationEnumerator* e :
       EnumeratorRegistry::Global().Enumerators()) {
    EXPECT_FALSE(e->description().empty());
  }
}

TEST_F(SessionApiTest, RejectsEmptyQuerySpec) {
  EnumerationRequest request = MakeRequest("peps");
  request.base_query = reldb::Query{};
  EXPECT_FALSE(session_->Enumerate(request).ok());
  request = MakeRequest("peps");
  request.key_column.clear();
  EXPECT_FALSE(session_->Enumerate(request).ok());
}

// --- Session caching, statistics, and epochs -------------------------------

TEST_F(SessionApiTest, CachedEngineMakesRepeatRequestsLeafQueryFree) {
  EnumerationRequest request = MakeRequest("peps");
  EnumerationResult first = Enumerate(request);
  EXPECT_GT(first.stats.num_leaf_queries, 0u);
  EXPECT_EQ(session_->num_cached_engines(), 1u);

  // Same query spec, different algorithm: the leaf cache is shared.
  EnumerationResult second = Enumerate(MakeRequest("combine-two"));
  EXPECT_EQ(second.stats.num_leaf_queries, 0u);
  EXPECT_GT(second.stats.num_cache_hits, 0u);
  EXPECT_EQ(session_->num_cached_engines(), 1u);

  // A different key column is a different engine.
  EnumerationRequest other = MakeRequest("combine-two");
  other.key_column = "dblp.venue";
  Enumerate(other);
  EXPECT_EQ(session_->num_cached_engines(), 2u);
}

TEST_F(SessionApiTest, ProbeStatsReportBatchShape) {
  EnumerationResult batched = Enumerate(MakeRequest("combine-two"));
  EXPECT_GT(batched.stats.num_batches, 0u);
  EXPECT_EQ(batched.stats.num_batched_probes, 10u);  // C(5,2)
  EXPECT_GE(batched.stats.num_shard_passes, batched.stats.num_batches);
  EXPECT_GE(batched.stats.num_cache_hits, batched.stats.num_batched_probes);

  core::ProbeOptions scalar;
  scalar.batching = false;
  EnumerationResult unbatched = Enumerate(MakeRequest("combine-two", scalar));
  EXPECT_EQ(unbatched.stats.num_batches, 0u);
  EXPECT_EQ(unbatched.stats.num_batched_probes, 0u);
}

TEST_F(SessionApiTest, RefreshPinsEpochAfterMutations) {
  EnumerationRequest request = MakeRequest("peps");
  EnumerationResult before = Enumerate(request);
  EXPECT_EQ(before.epoch, 0u);

  // A new V1 paper by author 1 and a deleted paper change the answers.
  reldb::Table* dblp = db_.GetTable("dblp");
  reldb::Table* da = db_.GetTable("dblp_author");
  ASSERT_TRUE(dblp->Append({reldb::Value::Int(9), reldb::Value::Str("V1"),
                            reldb::Value::Int(2009)})
                  .ok());
  ASSERT_TRUE(
      da->Append({reldb::Value::Int(9), reldb::Value::Int(1)}).ok());
  ASSERT_TRUE(dblp->Delete(4).ok());  // pid 5 (V3, author 3) disappears

  EnumerationResult after = Enumerate(request);
  EXPECT_GT(after.epoch, before.epoch);

  // The refreshed session answers match a from-scratch engine on the
  // mutated database.
  core::QueryEnhancer fresh(&db_, MiniBaseQuery(), "dblp.pid");
  core::Peps peps(&prefs_, &fresh, core::ProbeOptions{});
  ExpectRecordsEqual(after.records,
                     *peps.GenerateOrder(core::PepsMode::kComplete),
                     "post-mutation peps order");
}

}  // namespace
}  // namespace api
}  // namespace hypre
