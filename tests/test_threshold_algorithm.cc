// Fagin's TA tests: hand-checked cases, early termination, and a
// parameterized random sweep against brute-force aggregation.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "hypre/algorithms/threshold_algorithm.h"
#include "hypre/intensity.h"

namespace hypre {
namespace core {
namespace {

using reldb::Value;

TEST(GradedListTest, AddAndMergeGrades) {
  GradedList list("venue");
  list.AddGrade(Value::Int(1), 0.5);
  list.AddGrade(Value::Int(2), 0.8);
  // Duplicate key: f_and-merged (0.5, 0.5 -> 0.75).
  list.AddGrade(Value::Int(1), 0.5);
  list.Finalize();
  EXPECT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(*list.Grade(Value::Int(2)), 0.8);
  EXPECT_DOUBLE_EQ(*list.Grade(Value::Int(1)), 0.75);
  EXPECT_FALSE(list.Grade(Value::Int(9)).has_value());
  // Sorted access is descending.
  EXPECT_DOUBLE_EQ(list.at(0).second, 0.8);
}

TEST(ThresholdAlgorithmTest, HandChecked) {
  // Venue list: p1=0.9 p2=0.5 p3=0.2 ; author list: p2=0.8 p3=0.6 p4=0.4.
  GradedList venue("venue");
  venue.AddGrade(Value::Int(1), 0.9);
  venue.AddGrade(Value::Int(2), 0.5);
  venue.AddGrade(Value::Int(3), 0.2);
  venue.Finalize();
  GradedList author("author");
  author.AddGrade(Value::Int(2), 0.8);
  author.AddGrade(Value::Int(3), 0.6);
  author.AddGrade(Value::Int(4), 0.4);
  author.Finalize();

  auto top = ThresholdAlgorithmTopK({venue, author}, 4);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->size(), 4u);
  // Aggregates: p1=0.9, p2=f(0.5,0.8)=0.9, p3=f(0.2,0.6)=0.68, p4=0.4.
  std::map<int64_t, double> expected{
      {1, 0.9}, {2, CombineAnd(0.5, 0.8)}, {3, CombineAnd(0.2, 0.6)},
      {4, 0.4}};
  for (const auto& t : *top) {
    EXPECT_NEAR(t.intensity, expected.at(t.key.AsInt()), 1e-12);
  }
  EXPECT_NEAR((*top)[0].intensity, 0.9, 1e-12);
  EXPECT_NEAR((*top)[3].intensity, 0.4, 1e-12);
}

TEST(ThresholdAlgorithmTest, EarlyTermination) {
  // With a clear leader, TA should stop before exhausting the lists.
  GradedList a("a");
  GradedList b("b");
  for (int i = 0; i < 100; ++i) {
    a.AddGrade(Value::Int(i), i == 0 ? 0.99 : 0.01);
    b.AddGrade(Value::Int(i), i == 0 ? 0.99 : 0.01);
  }
  a.Finalize();
  b.Finalize();
  size_t rounds = 0;
  auto top = ThresholdAlgorithmTopK({a, b}, 1, &rounds);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_EQ((*top)[0].key.AsInt(), 0);
  EXPECT_LT(rounds, 100u);
}

TEST(ThresholdAlgorithmTest, KLargerThanObjectCount) {
  GradedList a("a");
  a.AddGrade(Value::Int(1), 0.5);
  a.Finalize();
  auto top = ThresholdAlgorithmTopK({a}, 10);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 1u);
}

TEST(ThresholdAlgorithmTest, EmptyListsAndErrors) {
  EXPECT_FALSE(ThresholdAlgorithmTopK({}, 3).ok());
  GradedList a("a");
  a.Finalize();
  auto top = ThresholdAlgorithmTopK({a}, 3);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
}

// Random sweep: TA's top-k equals brute-force aggregate ranking.
class TaRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaRandomized, MatchesBruteForce) {
  Rng rng(GetParam());
  constexpr int kObjects = 60;
  GradedList venue("venue");
  GradedList author("author");
  std::map<int64_t, double> aggregate;
  for (int64_t i = 0; i < kObjects; ++i) {
    double acc = 0.0;
    if (rng.NextBernoulli(0.7)) {
      double g = rng.NextDouble(0.0, 1.0);
      venue.AddGrade(Value::Int(i), g);
      acc = CombineAnd(acc, g);
    }
    if (rng.NextBernoulli(0.7)) {
      double g = rng.NextDouble(0.0, 1.0);
      author.AddGrade(Value::Int(i), g);
      acc = CombineAnd(acc, g);
    }
    if (venue.Grade(Value::Int(i)) || author.Grade(Value::Int(i))) {
      aggregate[i] = acc;
    }
  }
  venue.Finalize();
  author.Finalize();

  constexpr size_t kK = 10;
  auto top = ThresholdAlgorithmTopK({venue, author}, kK);
  ASSERT_TRUE(top.ok());
  ASSERT_LE(top->size(), kK);

  // Brute-force: sort aggregates descending.
  std::vector<double> sorted;
  for (const auto& [key, grade] : aggregate) sorted.push_back(grade);
  std::sort(sorted.rbegin(), sorted.rend());
  size_t n = std::min(kK, sorted.size());
  ASSERT_EQ(top->size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*top)[i].intensity, sorted[i], 1e-9) << "rank " << i;
    // And the reported grade matches the object's true aggregate.
    EXPECT_NEAR((*top)[i].intensity, aggregate.at((*top)[i].key.AsInt()),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 20, 40));

}  // namespace
}  // namespace core
}  // namespace hypre
