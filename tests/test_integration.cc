// End-to-end integration tests: generate DBLP -> extract preferences ->
// build the HYPRE graph -> enhance queries -> rank. Verifies the
// dissertation's two headline claims at small scale:
//   (1) the graph mints quantitative intensities for qualitative-only
//       predicates, so coverage grows (Figures 26-28);
//   (2) PEPS == TA on quantitative-only input (100% similarity/overlap,
//       §7.6.3) and covers strictly more with the full hybrid graph.
#include <gtest/gtest.h>

#include <unordered_set>

#include "hypre/algorithms/peps.h"
#include "hypre/algorithms/threshold_algorithm.h"
#include "hypre/hypre_graph.h"
#include "hypre/metrics.h"
#include "hypre/ranking.h"
#include "sqlparse/parser.h"
#include "workload/dblp_generator.h"
#include "workload/preference_extraction.h"

namespace hypre {
namespace core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new reldb::Database();
    workload::DblpConfig config;
    config.num_papers = 4000;
    config.num_authors = 1200;
    config.num_venues = 15;
    config.num_communities = 15;
    config.seed = 1234;
    auto stats = workload::GenerateDblp(config, db_);
    ASSERT_TRUE(stats.ok());
    auto extracted = workload::ExtractPreferences(*db_, {});
    ASSERT_TRUE(extracted.ok());
    prefs_ = new workload::ExtractedPreferences(std::move(extracted.value()));
    // Focal user: the busiest one keeps the test interesting but bounded.
    focal_user_ = prefs_->UsersByPreferenceCount().front();
  }
  static void TearDownTestSuite() {
    delete prefs_;
    delete db_;
    prefs_ = nullptr;
    db_ = nullptr;
  }

  static reldb::Query BaseQuery() {
    reldb::Query q;
    q.from = "dblp";
    q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
    return q;
  }

  /// Builds a HYPRE graph for the focal user only; optionally including the
  /// qualitative preferences.
  static HypreGraph BuildGraph(bool with_qualitative) {
    HypreGraph graph;
    for (const auto& q : prefs_->quantitative) {
      if (q.uid != focal_user_) continue;
      EXPECT_TRUE(graph.AddQuantitative(q).ok());
    }
    if (with_qualitative) {
      for (const auto& q : prefs_->qualitative) {
        if (q.uid != focal_user_) continue;
        EXPECT_TRUE(graph.AddQualitative(q).ok());
      }
    }
    return graph;
  }

  static std::vector<PreferenceAtom> AtomsFromGraph(const HypreGraph& graph) {
    std::vector<PreferenceAtom> atoms;
    for (const auto& entry : graph.ListPreferences(focal_user_)) {
      auto atom = MakeAtom(entry.predicate, entry.intensity);
      EXPECT_TRUE(atom.ok()) << atom.status().ToString();
      if (atom.ok()) atoms.push_back(std::move(atom.value()));
    }
    SortByIntensityDesc(&atoms);
    return atoms;
  }

  static reldb::Database* db_;
  static workload::ExtractedPreferences* prefs_;
  static UserId focal_user_;
};

reldb::Database* IntegrationTest::db_ = nullptr;
workload::ExtractedPreferences* IntegrationTest::prefs_ = nullptr;
UserId IntegrationTest::focal_user_ = 0;

TEST_F(IntegrationTest, GraphInvariantsHoldOnRealWorkload) {
  HypreGraph graph = BuildGraph(/*with_qualitative=*/true);
  EXPECT_TRUE(graph.CheckInvariants().ok());
  EXPECT_GT(graph.num_nodes(), 0u);
}

TEST_F(IntegrationTest, QualitativeInsertionGrowsQuantitativeCount) {
  // Figures 26/27: the graph mints intensities for predicates that had
  // none.
  HypreGraph quant_only = BuildGraph(false);
  HypreGraph full = BuildGraph(true);
  size_t before = quant_only.ListPreferences(focal_user_, true).size();
  size_t after = full.ListPreferences(focal_user_, true).size();
  EXPECT_GE(after, before);
  // The qualitative lists pair mostly-known predicates for the busiest
  // user; growth must be visible on at least the whole-population level:
  // count nodes with computed/default provenance.
  size_t minted = 0;
  for (auto node : full.UserNodes(focal_user_)) {
    auto provenance = full.NodeProvenance(node);
    if (provenance && *provenance != Provenance::kUser) ++minted;
  }
  EXPECT_GT(minted + (after - before), 0u);
}

TEST_F(IntegrationTest, HybridCoverageAtLeastQuantitative) {
  // Figure 28: HYPRE coverage >= quantitative-only coverage.
  QueryEnhancer enhancer(db_, BaseQuery(), "dblp.pid");
  HypreGraph quant_only = BuildGraph(false);
  HypreGraph full = BuildGraph(true);

  auto predicates_of = [&](const HypreGraph& graph) {
    std::vector<reldb::ExprPtr> out;
    for (const auto& entry : graph.ListPreferences(focal_user_)) {
      auto parsed = sqlparse::ParsePredicate(entry.predicate);
      EXPECT_TRUE(parsed.ok());
      if (parsed.ok()) out.push_back(parsed.value());
    }
    return out;
  };
  auto cov_quant = Coverage(enhancer, predicates_of(quant_only));
  auto cov_full = Coverage(enhancer, predicates_of(full));
  ASSERT_TRUE(cov_quant.ok());
  ASSERT_TRUE(cov_full.ok());
  EXPECT_GE(cov_full.value(), cov_quant.value());
  EXPECT_GT(cov_full.value(), 0u);
}

TEST_F(IntegrationTest, PepsMatchesTaOnQuantitativeOnlyInput) {
  // §7.6.3 experiment 1: with only quantitative preferences, PEPS and TA
  // produce the same ranked list (100% similarity, 100% overlap).
  HypreGraph graph = BuildGraph(false);
  std::vector<PreferenceAtom> atoms = AtomsFromGraph(graph);
  ASSERT_FALSE(atoms.empty());
  QueryEnhancer enhancer(db_, BaseQuery(), "dblp.pid");

  // Ground truth by brute force == what TA computes over per-attribute
  // lists (test_threshold_algorithm verifies TA == brute force separately;
  // here we build TA's lists from the same preferences).
  GradedList venue_list("venue");
  GradedList author_list("author");
  for (const auto& atom : atoms) {
    auto keys = enhancer.MatchingKeys(atom.expr);
    ASSERT_TRUE(keys.ok());
    bool is_venue = atom.attribute_key.find("venue") != std::string::npos;
    for (const auto& key : *keys) {
      if (is_venue) {
        venue_list.AddGrade(key, atom.intensity);
      } else {
        author_list.AddGrade(key, atom.intensity);
      }
    }
  }
  venue_list.Finalize();
  author_list.Finalize();

  constexpr size_t kK = 25;
  auto ta = ThresholdAlgorithmTopK({venue_list, author_list}, kK);
  ASSERT_TRUE(ta.ok());

  Peps peps(&atoms, &enhancer);
  auto peps_top = peps.TopK(kK, PepsMode::kComplete);
  ASSERT_TRUE(peps_top.ok()) << peps_top.status().ToString();

  ASSERT_EQ(peps_top->size(), ta->size());
  // Intensities agree rank by rank (the lists may permute within ties).
  for (size_t i = 0; i < ta->size(); ++i) {
    EXPECT_NEAR((*peps_top)[i].intensity, (*ta)[i].intensity, 1e-9)
        << "rank " << i;
  }
  // Similarity of the key sets: 100% up to tie-boundary effects at rank K.
  std::vector<reldb::Value> ta_keys;
  std::vector<reldb::Value> peps_keys;
  for (const auto& t : *ta) ta_keys.push_back(t.key);
  for (const auto& t : *peps_top) peps_keys.push_back(t.key);
  double tail = ta->empty() ? 1.0 : ta->back().intensity;
  // Count disagreements strictly above the tie boundary: must be none.
  std::unordered_set<reldb::Value, reldb::ValueHash> peps_set(
      peps_keys.begin(), peps_keys.end());
  for (const auto& t : *ta) {
    if (t.intensity > tail + 1e-9) {
      EXPECT_TRUE(peps_set.count(t.key) > 0)
          << "tuple above tie boundary missing from PEPS";
    }
  }
}

TEST_F(IntegrationTest, HybridPepsReachesHigherIntensitiesThanTa) {
  // §7.6.3 experiment 2: with graph-derived preferences PEPS ranks tuples
  // TA cannot see, and combined intensities reach at least TA's levels.
  HypreGraph full = BuildGraph(true);
  std::vector<PreferenceAtom> full_atoms = AtomsFromGraph(full);
  HypreGraph quant_only = BuildGraph(false);
  std::vector<PreferenceAtom> quant_atoms = AtomsFromGraph(quant_only);
  ASSERT_GE(full_atoms.size(), quant_atoms.size());

  QueryEnhancer enhancer(db_, BaseQuery(), "dblp.pid");
  constexpr size_t kK = 25;

  Peps peps_full(&full_atoms, &enhancer);
  auto top_full = peps_full.TopK(kK, PepsMode::kComplete);
  ASSERT_TRUE(top_full.ok());
  Peps peps_quant(&quant_atoms, &enhancer);
  auto top_quant = peps_quant.TopK(kK, PepsMode::kComplete);
  ASSERT_TRUE(top_quant.ok());

  ASSERT_FALSE(top_full->empty());
  ASSERT_FALSE(top_quant->empty());
  // More preferences can only help the best rank.
  EXPECT_GE((*top_full)[0].intensity, (*top_quant)[0].intensity - 1e-9);
}

TEST_F(IntegrationTest, ApproximatePepsTopIntensityCloseToComplete) {
  HypreGraph full = BuildGraph(true);
  std::vector<PreferenceAtom> atoms = AtomsFromGraph(full);
  QueryEnhancer enhancer(db_, BaseQuery(), "dblp.pid");
  Peps complete(&atoms, &enhancer);
  Peps approx(&atoms, &enhancer);
  auto top_c = complete.TopK(10, PepsMode::kComplete);
  auto top_a = approx.TopK(10, PepsMode::kApproximate);
  ASSERT_TRUE(top_c.ok());
  ASSERT_TRUE(top_a.ok());
  ASSERT_FALSE(top_c->empty());
  ASSERT_FALSE(top_a->empty());
  // The approximate variant may drop whole combinations but its best tuple
  // cannot beat the complete one's.
  EXPECT_LE((*top_a)[0].intensity, (*top_c)[0].intensity + 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace hypre
