// Unit tests for reldb tables, schemas, and secondary indexes.
#include <gtest/gtest.h>

#include "reldb/database.h"
#include "reldb/table.h"

namespace hypre {
namespace reldb {
namespace {

Schema PaperSchema() {
  return Schema({{"pid", ValueType::kInt64},
                 {"venue", ValueType::kString},
                 {"year", ValueType::kInt64}});
}

TEST(SchemaTest, LookupByName) {
  Schema schema = PaperSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.FindColumn("venue"), 1);
  EXPECT_EQ(schema.FindColumn("nope"), -1);
  ASSERT_TRUE(schema.ResolveColumn("year").ok());
  EXPECT_EQ(schema.ResolveColumn("year").value(), 2u);
  EXPECT_FALSE(schema.ResolveColumn("nope").ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(PaperSchema().ToString(),
            "(pid INT64, venue STRING, year INT64)");
}

TEST(TableTest, AppendValidatesArity) {
  Table t("papers", PaperSchema());
  EXPECT_FALSE(t.Append(Row{Value::Int(1)}).ok());
  EXPECT_TRUE(
      t.Append(Row{Value::Int(1), Value::Str("VLDB"), Value::Int(2001)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AppendValidatesTypes) {
  Table t("papers", PaperSchema());
  EXPECT_FALSE(
      t.Append(Row{Value::Str("x"), Value::Str("VLDB"), Value::Int(2001)})
          .ok());
  // NULL is allowed in any column.
  EXPECT_TRUE(
      t.Append(Row{Value::Int(1), Value::Null(), Value::Int(2001)}).ok());
}

TEST(TableTest, IntAcceptedInDoubleColumn) {
  Table t("scores", Schema({{"v", ValueType::kDouble}}));
  EXPECT_TRUE(t.Append(Row{Value::Int(3)}).ok());
  EXPECT_TRUE(t.Append(Row{Value::Real(3.5)}).ok());
  EXPECT_FALSE(t.Append(Row{Value::Str("x")}).ok());
}

TEST(TableTest, HashIndexLookup) {
  Table t("papers", PaperSchema());
  ASSERT_TRUE(t.CreateHashIndex("venue").ok());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(1), Value::Str("VLDB"), Value::Int(2001)}).ok());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(2), Value::Str("SIGMOD"), Value::Int(2002)})
          .ok());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(3), Value::Str("VLDB"), Value::Int(2003)}).ok());
  const HashIndex* idx = t.GetHashIndex("venue");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(Value::Str("VLDB")).size(), 2u);
  EXPECT_EQ(idx->Lookup(Value::Str("SIGMOD")).size(), 1u);
  EXPECT_TRUE(idx->Lookup(Value::Str("PODS")).empty());
  EXPECT_TRUE(idx->Lookup(Value::Null()).empty());
}

TEST(TableTest, HashIndexBackfillsExistingRows) {
  Table t("papers", PaperSchema());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(1), Value::Str("VLDB"), Value::Int(2001)}).ok());
  ASSERT_TRUE(t.CreateHashIndex("venue").ok());
  EXPECT_EQ(t.GetHashIndex("venue")->Lookup(Value::Str("VLDB")).size(), 1u);
}

TEST(TableTest, DeclaredHashIndexMaterializesOnFirstTouch) {
  Table t("papers", PaperSchema());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(1), Value::Str("VLDB"), Value::Int(2001)}).ok());
  ASSERT_TRUE(t.DeclareHashIndex("venue").ok());
  // Declared but unbuilt: it appears in the catalog listing (a snapshot of
  // this table must persist it), and mutations before the first touch are
  // reflected when the index finally materializes.
  EXPECT_EQ(t.HashIndexColumns(), std::vector<std::string>{"venue"});
  ASSERT_TRUE(
      t.Append(Row{Value::Int(2), Value::Str("VLDB"), Value::Int(2002)}).ok());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(3), Value::Str("SIGMOD"), Value::Int(2003)})
          .ok());
  ASSERT_TRUE(t.Delete(0).ok());
  const HashIndex* idx = t.GetHashIndex("venue");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(Value::Str("VLDB")).size(), 1u);  // row 0 is dead
  EXPECT_EQ(idx->Lookup(Value::Str("SIGMOD")).size(), 1u);
  // After materialization the index is live-maintained like a built one.
  ASSERT_TRUE(
      t.Append(Row{Value::Int(4), Value::Str("VLDB"), Value::Int(2004)}).ok());
  EXPECT_EQ(t.GetHashIndex("venue")->Lookup(Value::Str("VLDB")).size(), 2u);
  EXPECT_EQ(t.HashIndexColumns(), std::vector<std::string>{"venue"});
}

TEST(TableTest, DeclaredOrderedIndexMaterializesOnFirstTouch) {
  Table t("papers", PaperSchema());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(1), Value::Str("VLDB"), Value::Int(2001)}).ok());
  ASSERT_TRUE(t.DeclareOrderedIndex("year").ok());
  ASSERT_TRUE(
      t.Append(Row{Value::Int(2), Value::Str("VLDB"), Value::Int(2005)}).ok());
  EXPECT_EQ(t.OrderedIndexColumns(), std::vector<std::string>{"year"});
  const OrderedIndex* idx = t.GetOrderedIndex("year");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Range(Value::Int(2000), true, Value::Int(2010), true).size(),
            2u);
}

TEST(TableTest, ExplicitBuildSupersedesDeclaredIndex) {
  Table t("papers", PaperSchema());
  ASSERT_TRUE(t.DeclareHashIndex("venue").ok());
  ASSERT_TRUE(t.DeclareHashIndex("venue").ok());  // idempotent
  ASSERT_TRUE(t.CreateHashIndex("venue").ok());
  // One built index, no pending leftovers double-listing the column.
  EXPECT_EQ(t.HashIndexColumns(), std::vector<std::string>{"venue"});
  ASSERT_TRUE(
      t.Append(Row{Value::Int(1), Value::Str("VLDB"), Value::Int(2001)}).ok());
  EXPECT_EQ(t.GetHashIndex("venue")->Lookup(Value::Str("VLDB")).size(), 1u);
  EXPECT_FALSE(t.DeclareHashIndex("nope").ok());
}

TEST(TableTest, OrderedIndexRange) {
  Table t("papers", PaperSchema());
  ASSERT_TRUE(t.CreateOrderedIndex("year").ok());
  for (int64_t y = 2000; y <= 2010; ++y) {
    ASSERT_TRUE(
        t.Append(Row{Value::Int(y), Value::Str("V"), Value::Int(y)}).ok());
  }
  const OrderedIndex* idx = t.GetOrderedIndex("year");
  ASSERT_NE(idx, nullptr);
  // Inclusive BETWEEN semantics.
  EXPECT_EQ(idx->Range(Value::Int(2003), true, Value::Int(2005), true).size(),
            3u);
  // Exclusive bounds.
  EXPECT_EQ(idx->Range(Value::Int(2003), false, Value::Int(2005), false).size(),
            1u);
  // Open-ended ranges.
  EXPECT_EQ(idx->Range(Value::Int(2008), true, Value::Null(), true).size(),
            3u);
  EXPECT_EQ(idx->Range(Value::Null(), true, Value::Int(2001), true).size(),
            2u);
}

TEST(TableTest, OrderedIndexSkipsNullKeys) {
  Table t("s", Schema({{"v", ValueType::kInt64}}));
  ASSERT_TRUE(t.CreateOrderedIndex("v").ok());
  ASSERT_TRUE(t.Append(Row{Value::Null()}).ok());
  ASSERT_TRUE(t.Append(Row{Value::Int(1)}).ok());
  // Unbounded scan must not surface NULL-keyed rows.
  EXPECT_EQ(
      t.GetOrderedIndex("v")->Range(Value::Null(), true, Value::Null(), true)
          .size(),
      1u);
}

TEST(TableTest, IndexOnUnknownColumnFails) {
  Table t("papers", PaperSchema());
  EXPECT_FALSE(t.CreateHashIndex("nope").ok());
  EXPECT_FALSE(t.CreateOrderedIndex("nope").ok());
  EXPECT_EQ(t.GetHashIndex("nope"), nullptr);
}

TEST(DatabaseTest, CreateAndResolve) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", PaperSchema()).ok());
  EXPECT_FALSE(db.CreateTable("a", PaperSchema()).ok());  // duplicate
  EXPECT_NE(db.GetTable("a"), nullptr);
  EXPECT_EQ(db.GetTable("b"), nullptr);
  EXPECT_TRUE(db.ResolveTable("a").ok());
  EXPECT_FALSE(db.ResolveTable("b").ok());
  EXPECT_EQ(db.TableNames().size(), 1u);
}

}  // namespace
}  // namespace reldb
}  // namespace hypre
