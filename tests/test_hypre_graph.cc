// HYPRE graph tests: Algorithm 1 branches, the §3.3 running example,
// conflicts (CYCLE/DISCARD), Proposition 7 reversal, duplicate averaging,
// and randomized invariant sweeps.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "hypre/hypre_graph.h"
#include "hypre/intensity.h"

namespace hypre {
namespace core {
namespace {

constexpr UserId kUid = 2;

QuantitativePreference Quant(const std::string& pred, double intensity) {
  return {kUid, pred, intensity};
}

QualitativePreference Qual(const std::string& left, const std::string& right,
                           double intensity) {
  return {kUid, left, right, intensity};
}

TEST(HypreGraphTest, QuantitativeInsertCreatesNode) {
  HypreGraph graph;
  auto id = graph.AddQuantitative(Quant("dblp.venue='VLDB'", 0.5));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(graph.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(*id), 0.5);
  EXPECT_EQ(*graph.NodeProvenance(*id), Provenance::kUser);
  EXPECT_EQ(graph.FindNode(kUid, "dblp.venue='VLDB'"), *id);
}

TEST(HypreGraphTest, QuantitativeValidation) {
  HypreGraph graph;
  EXPECT_FALSE(graph.AddQuantitative(Quant("p=1", 1.5)).ok());
  EXPECT_FALSE(graph.AddQuantitative(Quant("p=1", -1.5)).ok());
  EXPECT_FALSE(graph.AddQuantitative(Quant("", 0.5)).ok());
  EXPECT_TRUE(graph.AddQuantitative(Quant("p=1", -1.0)).ok());  // boundary ok
}

TEST(HypreGraphTest, DuplicateQuantitativeAveragesIntensity) {
  // §4.5 Step 1: duplicate predicate -> average of the two intensities.
  HypreGraph graph;
  auto first = graph.AddQuantitative(Quant("p=1", 0.4));
  auto second = graph.AddQuantitative(Quant("p=1", 0.8));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(graph.num_nodes(), 1u);
  EXPECT_NEAR(*graph.NodeIntensity(*first), 0.6, 1e-12);
}

TEST(HypreGraphTest, QualitativeBothNodesNewUsesDefaultSeed) {
  // Scenario 3 (§6.3): right node seeded with the DEFAULT_VALUE (0.5),
  // left computed with Eq. 4.1.
  HypreGraph graph;
  auto r = graph.AddQualitative(Qual("a=1", "b=2", 0.8));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->label, EdgeLabel::kPrefers);
  EXPECT_TRUE(r->used_default);
  EXPECT_TRUE(r->computed_left);
  graphdb::NodeId left = graph.FindNode(kUid, "a=1");
  graphdb::NodeId right = graph.FindNode(kUid, "b=2");
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(right), 0.5);
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(left), IntensityLeft(0.8, 0.5));
  EXPECT_EQ(*graph.NodeProvenance(right), Provenance::kDefault);
  EXPECT_EQ(*graph.NodeProvenance(left), Provenance::kComputed);
  EXPECT_GE(*graph.NodeIntensity(left), *graph.NodeIntensity(right));
}

TEST(HypreGraphTest, QualitativeRightKnownComputesLeft) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("b=2", 0.4)).ok());
  auto r = graph.AddQualitative(Qual("a=1", "b=2", 0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->computed_left);
  EXPECT_FALSE(r->used_default);
  graphdb::NodeId left = graph.FindNode(kUid, "a=1");
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(left), IntensityLeft(0.5, 0.4));
}

TEST(HypreGraphTest, QualitativeLeftKnownComputesRight) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.4)).ok());
  auto r = graph.AddQualitative(Qual("a=1", "b=2", 0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->computed_right);
  graphdb::NodeId right = graph.FindNode(kUid, "b=2");
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(right), IntensityRight(0.5, 0.4));
}

TEST(HypreGraphTest, ConsistentUserValuesKeptVerbatim) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.8)).ok());
  ASSERT_TRUE(graph.AddQuantitative(Quant("b=2", 0.3)).ok());
  auto r = graph.AddQualitative(Qual("a=1", "b=2", 0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, EdgeLabel::kPrefers);
  EXPECT_FALSE(r->computed_left);
  EXPECT_FALSE(r->computed_right);
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "a=1")), 0.8);
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "b=2")), 0.3);
}

TEST(HypreGraphTest, IncompatibleAnchoredValuesDiscard) {
  // Both endpoints user-provided with left < right and both anchored by the
  // incoming edge being their only connection — user values are never
  // recomputed, so the edge is DISCARDed (§6.2.3 "incompatible
  // intensities").
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.2)).ok());
  ASSERT_TRUE(graph.AddQuantitative(Quant("b=2", 0.9)).ok());
  auto r = graph.AddQualitative(Qual("a=1", "b=2", 0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, EdgeLabel::kDiscard);
  // Intensities untouched.
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "a=1")), 0.2);
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "b=2")), 0.9);
  EXPECT_EQ(graph.CountEdgeLabels().discard, 1u);
  EXPECT_EQ(graph.CountEdgeLabels().prefers, 0u);
}

TEST(HypreGraphTest, IncompatibleWithAnchoredComputedNodeDiscards) {
  // A computed node that already has a PREFERS connection is anchored: the
  // conflicting edge is DISCARDed rather than propagating a recomputation.
  HypreGraph graph;
  // b=2 gets a computed value (0.25) via a first qualitative preference.
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.5)).ok());
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 1.0)).ok());
  double b_value = *graph.NodeIntensity(graph.FindNode(kUid, "b=2"));
  EXPECT_DOUBLE_EQ(b_value, 0.25);
  // Now c=3 (user 0.1) preferred over b=2 (computed 0.25): conflict, but b's
  // only PREFERS link... b IS connected (degree 1) so not recomputable; c is
  // user-provided so not recomputable either -> DISCARD.
  ASSERT_TRUE(graph.AddQuantitative(Quant("c=3", 0.1)).ok());
  auto r = graph.AddQualitative(Qual("c=3", "b=2", 0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, EdgeLabel::kDiscard);
}

TEST(HypreGraphTest, CycleDetectedAndLabeled) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 0.3)).ok());
  ASSERT_TRUE(graph.AddQualitative(Qual("b=2", "c=3", 0.3)).ok());
  auto r = graph.AddQualitative(Qual("c=3", "a=1", 0.3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, EdgeLabel::kCycle);
  EXPECT_EQ(graph.CountEdgeLabels().cycle, 1u);
  EXPECT_EQ(graph.CountEdgeLabels().prefers, 2u);
  EXPECT_TRUE(graph.CheckInvariants().ok());
}

TEST(HypreGraphTest, TwoNodeCycle) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 0.3)).ok());
  auto r = graph.AddQualitative(Qual("b=2", "a=1", 0.3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, EdgeLabel::kCycle);
}

TEST(HypreGraphTest, Proposition7NegativeIntensityReverses) {
  HypreGraph graph;
  auto r = graph.AddQualitative(Qual("a=1", "b=2", -0.4));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reversed);
  EXPECT_EQ(r->label, EdgeLabel::kPrefers);
  // Stored as b=2 PREFERS a=1 with strength 0.4.
  auto edges = graph.ListQualitative(kUid);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].left_predicate, "b=2");
  EXPECT_EQ(edges[0].right_predicate, "a=1");
  EXPECT_DOUBLE_EQ(edges[0].intensity, 0.4);
}

TEST(HypreGraphTest, ZeroIntensityMeansEquallyPreferred) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("b=2", 0.4)).ok());
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 0.0)).ok());
  // Eq. 4.1 with ql=0 copies the value: equally preferred.
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "a=1")), 0.4);
}

TEST(HypreGraphTest, SelfQualitativeRejected) {
  HypreGraph graph;
  EXPECT_FALSE(graph.AddQualitative(Qual("a=1", "a=1", 0.3)).ok());
  EXPECT_FALSE(graph.AddQualitative(Qual("", "a=1", 0.3)).ok());
  EXPECT_FALSE(graph.AddQualitative(Qual("a=1", "b=1", 1.5)).ok());
}

TEST(HypreGraphTest, ListPreferencesSortedAndFiltered) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.3)).ok());
  ASSERT_TRUE(graph.AddQuantitative(Quant("b=2", 0.9)).ok());
  ASSERT_TRUE(graph.AddQuantitative(Quant("c=3", -0.5)).ok());
  auto positive = graph.ListPreferences(kUid);
  ASSERT_EQ(positive.size(), 2u);
  EXPECT_EQ(positive[0].predicate, "b=2");
  EXPECT_EQ(positive[1].predicate, "a=1");
  auto all = graph.ListPreferences(kUid, /*include_negative=*/true);
  EXPECT_EQ(all.size(), 3u);
  // Unknown user: empty.
  EXPECT_TRUE(graph.ListPreferences(999).empty());
}

TEST(HypreGraphTest, UsersAreIsolated) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative({1, "a=1", 0.3}).ok());
  ASSERT_TRUE(graph.AddQuantitative({2, "a=1", 0.9}).ok());
  EXPECT_EQ(graph.num_nodes(), 2u);
  EXPECT_NE(graph.FindNode(1, "a=1"), graph.FindNode(2, "a=1"));
  EXPECT_EQ(graph.Users().size(), 2u);
  // Same-predicate qualitative chains do not leak across users.
  ASSERT_TRUE(graph.AddQualitative({1, "a=1", "b=2", 0.2}).ok());
  EXPECT_TRUE(graph.ListQualitative(2).empty());
  EXPECT_EQ(graph.ListQualitative(1).size(), 1u);
}

TEST(HypreGraphTest, UserValueSupersedesComputedAndReconciles) {
  HypreGraph graph;
  // a=1 (user 0.5) PREFERS b=2 (computed 0.25).
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.5)).ok());
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 1.0)).ok());
  // User now states b=2 directly with 0.9 > 0.5: the PREFERS edge's
  // invariant breaks and the edge is relabeled DISCARD.
  ASSERT_TRUE(graph.AddQuantitative(Quant("b=2", 0.9)).ok());
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "b=2")), 0.9);
  EXPECT_EQ(*graph.NodeProvenance(graph.FindNode(kUid, "b=2")),
            Provenance::kUser);
  EXPECT_EQ(graph.CountEdgeLabels().discard, 1u);
  EXPECT_TRUE(graph.CheckInvariants().ok());
}

TEST(HypreGraphTest, Section33RunningExample) {
  // The full §3.3 walk-through: P1..P4 quantitative, then the relative
  // preference (P5 > P6), the preference set (P7 > P3), and the
  // different-levels preference (P7 > P8).
  HypreGraph graph;
  ASSERT_TRUE(graph
                  .AddQuantitative(
                      Quant("year>=2000 AND year<=2005", 0.3))
                  .ok());
  ASSERT_TRUE(graph
                  .AddQuantitative(
                      Quant("year>=2005 AND year<=2009", 0.5))
                  .ok());
  ASSERT_TRUE(graph.AddQuantitative(Quant("year>=2009", 0.8)).ok());
  ASSERT_TRUE(
      graph.AddQuantitative(Quant("venue='INFOCOM'", -1.0)).ok());
  EXPECT_EQ(graph.num_nodes(), 4u);

  // Relative preference: two fresh nodes, default seeding.
  auto r5 = graph.AddQualitative(
      Qual("venue='VLDB' AND year>=2010", "venue='VLDB' AND year<2010", 0.8));
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5->label, EdgeLabel::kPrefers);
  EXPECT_TRUE(r5->used_default);
  EXPECT_EQ(graph.num_nodes(), 6u);

  // Preference set: node P3 (year>=2009) already exists and is reused.
  auto r7 = graph.AddQualitative(Qual("venue='VLDB'", "year>=2009", 0.2));
  ASSERT_TRUE(r7.ok());
  EXPECT_FALSE(r7->right_created);
  EXPECT_TRUE(r7->left_created);
  EXPECT_TRUE(r7->computed_left);
  EXPECT_EQ(graph.num_nodes(), 7u);
  // P7's intensity derives from P3's user value 0.8.
  EXPECT_DOUBLE_EQ(
      *graph.NodeIntensity(graph.FindNode(kUid, "venue='VLDB'")),
      IntensityLeft(0.2, 0.8));

  // Different levels of intensity: P8 = SIGMOD with its own quantitative
  // value 0.8, then VLDB preferred over SIGMOD by 0.3 — but P7's computed
  // value (~0.92) already exceeds 0.8, so values are consistent.
  ASSERT_TRUE(graph.AddQuantitative(Quant("venue='SIGMOD'", 0.8)).ok());
  auto r8 = graph.AddQualitative(
      Qual("venue='VLDB'", "venue='SIGMOD'", 0.3));
  ASSERT_TRUE(r8.ok());
  EXPECT_EQ(r8->label, EdgeLabel::kPrefers);
  EXPECT_EQ(graph.num_nodes(), 8u);
  EXPECT_EQ(graph.CountEdgeLabels().prefers, 3u);
  EXPECT_TRUE(graph.CheckInvariants().ok());

  // Coverage growth: the qualitative insertions minted intensities for four
  // nodes that had none.
  EXPECT_EQ(graph.ListPreferences(kUid).size(), 7u);  // all but INFOCOM(-1)
}

TEST(HypreGraphTest, RemovePreferenceCascades) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQuantitative(Quant("a=1", 0.5)).ok());
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 0.3)).ok());
  ASSERT_EQ(graph.num_nodes(), 2u);
  ASSERT_EQ(graph.num_edges(), 1u);

  ASSERT_TRUE(graph.RemovePreference(kUid, "a=1").ok());
  EXPECT_EQ(graph.num_nodes(), 1u);
  EXPECT_EQ(graph.num_edges(), 0u);  // incident edge cascaded
  EXPECT_EQ(graph.FindNode(kUid, "a=1"), graphdb::kInvalidNode);
  // The derived value on b=2 survives removal (documented behavior).
  EXPECT_TRUE(graph.NodeIntensity(graph.FindNode(kUid, "b=2")).has_value());
  // Removing again fails; re-adding works and creates a fresh node.
  EXPECT_FALSE(graph.RemovePreference(kUid, "a=1").ok());
  EXPECT_TRUE(graph.AddQuantitative(Quant("a=1", 0.9)).ok());
  EXPECT_DOUBLE_EQ(*graph.NodeIntensity(graph.FindNode(kUid, "a=1")), 0.9);
  EXPECT_TRUE(graph.CheckInvariants().ok());
}

TEST(HypreGraphTest, RemoveQualitativeEdgeOnly) {
  HypreGraph graph;
  ASSERT_TRUE(graph.AddQualitative(Qual("a=1", "b=2", 0.3)).ok());
  auto removed = graph.RemoveQualitative(kUid, "a=1", "b=2");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.num_nodes(), 2u);  // nodes survive
  // Direction matters; nothing in the reverse direction.
  EXPECT_EQ(*graph.RemoveQualitative(kUid, "b=2", "a=1"), 0u);
  // Unknown predicates: zero removed, not an error.
  EXPECT_EQ(*graph.RemoveQualitative(kUid, "x=9", "b=2"), 0u);
  // After removal, the reverse statement no longer trips the cycle check.
  auto r = graph.AddQualitative(Qual("b=2", "a=1", 0.2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, EdgeLabel::kPrefers);
  EXPECT_TRUE(graph.CheckInvariants().ok());
}

// Randomized invariant sweep: arbitrary interleavings of insertions keep
// the graph invariants intact.
class HypreGraphRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HypreGraphRandomized, InvariantsHoldUnderRandomInsertions) {
  Rng rng(GetParam());
  HypreGraph graph;
  constexpr int kPredicates = 12;
  auto pred = [](int i) { return StringFormat("attr%d=%d", i % 3, i); };
  for (int step = 0; step < 200; ++step) {
    if (rng.NextBernoulli(0.4)) {
      QuantitativePreference q{kUid, pred(static_cast<int>(
                                          rng.NextBounded(kPredicates))),
                               rng.NextDouble(-1.0, 1.0)};
      ASSERT_TRUE(graph.AddQuantitative(q).ok());
    } else {
      int a = static_cast<int>(rng.NextBounded(kPredicates));
      int b = static_cast<int>(rng.NextBounded(kPredicates));
      if (a == b) continue;
      QualitativePreference q{kUid, pred(a), pred(b),
                              rng.NextDouble(-1.0, 1.0)};
      ASSERT_TRUE(graph.AddQualitative(q).ok());
    }
  }
  EXPECT_TRUE(graph.CheckInvariants().ok());
  // Every node ended up with an intensity (qualitative insertion always
  // resolves values).
  for (graphdb::NodeId node : graph.UserNodes(kUid)) {
    EXPECT_TRUE(graph.NodeIntensity(node).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypreGraphRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace core
}  // namespace hypre
