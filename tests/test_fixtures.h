// Shared hand-crafted mini-DBLP fixture for the algorithm tests.
//
// Papers and author links are chosen so that pair applicability is known by
// inspection:
//   dblp:        pid 1..8, venues V1 {1,2,6}, V2 {3,4,7}, V3 {5,8}
//   dblp_author: 1:{a1,a2} 2:{a1} 3:{a2,a3} 4:{a1,a3} 5:{a3} 6:{a2}
//                7:{a1,a2} 8:{a4}
// Hence:
//   V1 AND V2          -> empty      (venues are exclusive)
//   aid=1 AND aid=2    -> {1, 7}
//   aid=1 AND aid=3    -> {4}
//   aid=2 AND aid=3    -> {3}
//   aid=1 AND aid=2 AND aid=3 -> empty
//   V1 AND aid=1       -> {1, 2}
//   V2 AND aid=3       -> {3, 4}
#pragma once

#include <gtest/gtest.h>

#include "hypre/preference.h"
#include "hypre/query_enhancement.h"
#include "reldb/database.h"

namespace hypre {
namespace core {
namespace testing_fixtures {

inline void BuildMiniDblp(reldb::Database* db) {
  using reldb::Row;
  using reldb::Schema;
  using reldb::Value;
  using reldb::ValueType;
  auto dblp = db->CreateTable("dblp", Schema({{"pid", ValueType::kInt64},
                                              {"venue", ValueType::kString},
                                              {"year", ValueType::kInt64}}));
  ASSERT_TRUE(dblp.ok());
  struct P {
    int64_t pid;
    const char* venue;
    int64_t year;
  };
  const P papers[] = {{1, "V1", 2001}, {2, "V1", 2002}, {3, "V2", 2003},
                      {4, "V2", 2004}, {5, "V3", 2005}, {6, "V1", 2006},
                      {7, "V2", 2007}, {8, "V3", 2008}};
  for (const auto& p : papers) {
    (*dblp)->AppendUnchecked(
        Row{Value::Int(p.pid), Value::Str(p.venue), Value::Int(p.year)});
  }
  ASSERT_TRUE((*dblp)->CreateHashIndex("venue").ok());
  ASSERT_TRUE((*dblp)->CreateHashIndex("pid").ok());

  auto da = db->CreateTable(
      "dblp_author",
      Schema({{"pid", ValueType::kInt64}, {"aid", ValueType::kInt64}}));
  ASSERT_TRUE(da.ok());
  const std::pair<int64_t, int64_t> links[] = {
      {1, 1}, {1, 2}, {2, 1}, {3, 2}, {3, 3}, {4, 1},
      {4, 3}, {5, 3}, {6, 2}, {7, 1}, {7, 2}, {8, 4}};
  for (const auto& [pid, aid] : links) {
    (*da)->AppendUnchecked(Row{Value::Int(pid), Value::Int(aid)});
  }
  ASSERT_TRUE((*da)->CreateHashIndex("pid").ok());
  ASSERT_TRUE((*da)->CreateHashIndex("aid").ok());
}

/// The dissertation's base query: dblp JOIN dblp_author, keys = dblp.pid.
inline reldb::Query MiniBaseQuery() {
  reldb::Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  return q;
}

/// Preferences sorted descending by intensity:
/// aid=1 (0.6), V1 (0.5), aid=2 (0.4), V2 (0.3), aid=3 (0.2).
inline std::vector<PreferenceAtom> MiniPreferences() {
  std::vector<PreferenceAtom> prefs;
  auto add = [&](const std::string& pred, double intensity) {
    auto atom = MakeAtom(pred, intensity);
    EXPECT_TRUE(atom.ok()) << atom.status().ToString();
    if (atom.ok()) prefs.push_back(std::move(atom.value()));
  };
  add("dblp_author.aid=1", 0.6);
  add("dblp.venue='V1'", 0.5);
  add("dblp_author.aid=2", 0.4);
  add("dblp.venue='V2'", 0.3);
  add("dblp_author.aid=3", 0.2);
  SortByIntensityDesc(&prefs);
  return prefs;
}

}  // namespace testing_fixtures
}  // namespace core
}  // namespace hypre
