// GraphStore tests: CRUD, cascade deletion, label/property indexes,
// traversal primitives, and the batch inserter.
#include <gtest/gtest.h>

#include "graphdb/batch.h"
#include "graphdb/graph_store.h"
#include "graphdb/traversal.h"

namespace hypre {
namespace graphdb {
namespace {

PropertyMap Props(int64_t uid, const std::string& pred) {
  PropertyMap p;
  p["uid"] = PropertyValue(uid);
  p["predicate"] = PropertyValue(pred);
  return p;
}

TEST(PropertyValueTest, TypesAndComparison) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_TRUE(PropertyValue(true).is_bool());
  EXPECT_TRUE(PropertyValue(int64_t{4}).is_int());
  EXPECT_TRUE(PropertyValue(0.5).is_double());
  EXPECT_TRUE(PropertyValue("x").is_string());
  EXPECT_EQ(PropertyValue(int64_t{2}).Compare(PropertyValue(2.0)), 0);
  EXPECT_LT(PropertyValue(int64_t{1}).Compare(PropertyValue(2.0)), 0);
  EXPECT_LT(PropertyValue().Compare(PropertyValue(false)), 0);
  EXPECT_LT(PropertyValue(true).Compare(PropertyValue(int64_t{0})), 0);
  EXPECT_LT(PropertyValue(int64_t{5}).Compare(PropertyValue("a")), 0);
}

TEST(PropertyValueTest, ToString) {
  EXPECT_EQ(PropertyValue().ToString(), "null");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue(int64_t{7}).ToString(), "7");
  EXPECT_EQ(PropertyValue("hi").ToString(), "\"hi\"");
}

TEST(GraphStoreTest, AddAndGetNode) {
  GraphStore g;
  NodeId id = g.AddNode({"uidIndex"}, Props(2, "p"));
  EXPECT_TRUE(g.NodeExists(id));
  EXPECT_EQ(g.num_nodes(), 1u);
  auto node = g.GetNode(id);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->labels.size(), 1u);
  EXPECT_EQ(g.GetNodeProperty(id, "uid")->AsInt(), 2);
  EXPECT_FALSE(g.GetNodeProperty(id, "nope").has_value());
}

TEST(GraphStoreTest, EdgesAndAdjacency) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  NodeId c = g.AddNode({}, {});
  auto e1 = g.AddEdge(a, b, "PREFERS");
  auto e2 = g.AddEdge(a, c, "DISCARD");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.OutDegree(a, "PREFERS"), 1u);
  EXPECT_EQ(g.InDegree(b, "PREFERS"), 1u);
  EXPECT_EQ(g.InDegree(c, "PREFERS"), 0u);
  EXPECT_EQ(g.Degree(a), 2u);
  EXPECT_FALSE(g.AddEdge(a, 999, "X").ok());
  EXPECT_FALSE(g.AddEdge(999, a, "X").ok());
}

TEST(GraphStoreTest, RemoveEdge) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  EdgeId e = g.AddEdge(a, b, "PREFERS").value();
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  EXPECT_FALSE(g.EdgeExists(e));
  EXPECT_EQ(g.OutDegree(a), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.RemoveEdge(e).ok());  // double delete
}

TEST(GraphStoreTest, RemoveNodeCascades) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  NodeId c = g.AddNode({}, {});
  EdgeId e1 = g.AddEdge(a, b, "T").value();
  EdgeId e2 = g.AddEdge(c, a, "T").value();
  ASSERT_TRUE(g.RemoveNode(a).ok());
  EXPECT_FALSE(g.NodeExists(a));
  EXPECT_FALSE(g.EdgeExists(e1));
  EXPECT_FALSE(g.EdgeExists(e2));
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.OutDegree(c), 0u);
}

TEST(GraphStoreTest, SetEdgeTypeRelabels) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  EdgeId e = g.AddEdge(a, b, "PREFERS").value();
  EXPECT_EQ(g.OutDegree(a, "PREFERS"), 1u);
  ASSERT_TRUE(g.SetEdgeType(e, "DISCARD").ok());
  EXPECT_EQ(g.OutDegree(a, "PREFERS"), 0u);
  EXPECT_EQ(g.OutDegree(a, "DISCARD"), 1u);
}

TEST(GraphStoreTest, IndexLookupAndMaintenance) {
  GraphStore g;
  ASSERT_TRUE(g.CreateIndex("uidIndex", "uid").ok());
  NodeId a = g.AddNode({"uidIndex"}, Props(2, "p1"));
  NodeId b = g.AddNode({"uidIndex"}, Props(2, "p2"));
  g.AddNode({"uidIndex"}, Props(3, "p3"));
  g.AddNode({"other"}, Props(2, "p4"));  // wrong label: not indexed

  auto found = g.FindNodes("uidIndex", "uid", PropertyValue(int64_t{2}));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->size(), 2u);

  // Property update moves the node between index buckets.
  ASSERT_TRUE(g.SetNodeProperty(a, "uid", PropertyValue(int64_t{9})).ok());
  EXPECT_EQ(g.FindNodes("uidIndex", "uid", PropertyValue(int64_t{2}))->size(),
            1u);
  EXPECT_EQ(g.FindNodes("uidIndex", "uid", PropertyValue(int64_t{9}))->size(),
            1u);

  // Node removal drops it from the index.
  ASSERT_TRUE(g.RemoveNode(b).ok());
  EXPECT_TRUE(g.FindNodes("uidIndex", "uid", PropertyValue(int64_t{2}))
                  ->empty());

  // Late label add back-fills.
  NodeId d = g.AddNode({}, Props(7, "p5"));
  ASSERT_TRUE(g.AddLabel(d, "uidIndex").ok());
  EXPECT_EQ(g.FindNodes("uidIndex", "uid", PropertyValue(int64_t{7}))->size(),
            1u);

  EXPECT_FALSE(g.FindNodes("noIndex", "uid", PropertyValue(int64_t{2})).ok());
  EXPECT_TRUE(g.HasIndex("uidIndex", "uid"));
  EXPECT_FALSE(g.HasIndex("uidIndex", "intensity"));
}

TEST(GraphStoreTest, IndexCreatedAfterNodesBackfills) {
  GraphStore g;
  g.AddNode({"L"}, Props(1, "x"));
  g.AddNode({"L"}, Props(1, "y"));
  ASSERT_TRUE(g.CreateIndex("L", "uid").ok());
  EXPECT_EQ(g.FindNodes("L", "uid", PropertyValue(int64_t{1}))->size(), 2u);
}

TEST(TraversalTest, HasPathFollowsTypedEdges) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  NodeId c = g.AddNode({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "PREFERS").ok());
  ASSERT_TRUE(g.AddEdge(b, c, "DISCARD").ok());
  EXPECT_TRUE(HasPath(g, a, b, "PREFERS"));
  EXPECT_FALSE(HasPath(g, a, c, "PREFERS"));  // DISCARD edges inhibit paths
  EXPECT_TRUE(HasPath(g, a, c));              // any-type traversal reaches c
  EXPECT_TRUE(HasPath(g, a, a, "PREFERS"));   // trivial self path
  EXPECT_FALSE(HasPath(g, c, a));
}

TEST(TraversalTest, ReachableAndComponent) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  NodeId c = g.AddNode({}, {});
  NodeId d = g.AddNode({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "T").ok());
  ASSERT_TRUE(g.AddEdge(c, b, "T").ok());
  (void)d;
  EXPECT_EQ(ReachableFrom(g, a, "T").size(), 2u);  // a, b
  EXPECT_EQ(WeaklyConnectedComponent(g, a, "T").size(), 3u);  // a, b, c
}

TEST(TraversalTest, TopologicalSortAndCycles) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  NodeId c = g.AddNode({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "T").ok());
  ASSERT_TRUE(g.AddEdge(b, c, "T").ok());
  auto order = TopologicalSort(g, {a, b, c}, "T");
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[0], a);
  EXPECT_EQ((*order)[2], c);
  EXPECT_TRUE(IsAcyclic(g, {a, b, c}, "T"));

  ASSERT_TRUE(g.AddEdge(c, a, "T").ok());  // close the cycle
  EXPECT_FALSE(TopologicalSort(g, {a, b, c}, "T").ok());
  EXPECT_FALSE(IsAcyclic(g, {a, b, c}, "T"));
}

TEST(TraversalTest, ShortestPathLength) {
  GraphStore g;
  NodeId a = g.AddNode({}, {});
  NodeId b = g.AddNode({}, {});
  NodeId c = g.AddNode({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "T").ok());
  ASSERT_TRUE(g.AddEdge(b, c, "T").ok());
  ASSERT_TRUE(g.AddEdge(a, c, "T").ok());
  EXPECT_EQ(ShortestPathLength(g, a, c, "T"), 1);
  EXPECT_EQ(ShortestPathLength(g, a, b, "T"), 1);
  EXPECT_EQ(ShortestPathLength(g, c, a, "T"), -1);
  EXPECT_EQ(ShortestPathLength(g, a, a, "T"), 0);
}

TEST(BatchInserterTest, FlushesInBatches) {
  GraphStore g;
  BatchInserter inserter(&g, 10);
  for (int i = 0; i < 25; ++i) {
    inserter.Add({"L"}, Props(i, "p"));
  }
  inserter.Flush();
  EXPECT_EQ(g.num_nodes(), 25u);
  ASSERT_EQ(inserter.stats().size(), 3u);
  EXPECT_EQ(inserter.stats()[0].nodes_inserted, 10u);
  EXPECT_EQ(inserter.stats()[1].nodes_inserted, 10u);
  EXPECT_EQ(inserter.stats()[2].nodes_inserted, 5u);
  EXPECT_EQ(inserter.stats()[2].total_nodes_after, 25u);
  EXPECT_GE(inserter.stats()[0].seconds, 0.0);
  // Double flush is a no-op.
  inserter.Flush();
  EXPECT_EQ(inserter.stats().size(), 3u);
}

}  // namespace
}  // namespace graphdb
}  // namespace hypre
