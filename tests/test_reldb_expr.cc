// Unit tests for the predicate AST: evaluation, printing, equality.
#include <gtest/gtest.h>

#include <map>

#include "reldb/expr.h"

namespace hypre {
namespace reldb {
namespace {

// A row accessor over a flat map of "table.column" -> Value.
class MapRow : public RowAccessor {
 public:
  explicit MapRow(std::map<std::string, Value> values)
      : values_(std::move(values)) {}

  Result<Value> Get(const std::string& table,
                    const std::string& column) const override {
    std::string key = table.empty() ? column : table + "." + column;
    auto it = values_.find(key);
    if (it == values_.end()) return Status::NotFound("no column " + key);
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

bool Eval(const ExprPtr& e, const MapRow& row) {
  auto r = Evaluate(*e, row);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() && r.value();
}

TEST(ExprTest, Comparisons) {
  MapRow row({{"t.x", Value::Int(5)}, {"t.s", Value::Str("VLDB")}});
  EXPECT_TRUE(Eval(Eq(Col("t", "x"), Lit(Value::Int(5))), row));
  EXPECT_FALSE(Eval(Eq(Col("t", "x"), Lit(Value::Int(6))), row));
  EXPECT_TRUE(Eval(Cmp(CompareOp::kNe, Col("t", "x"), Lit(Value::Int(6))), row));
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLt, Col("t", "x"), Lit(Value::Int(6))), row));
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLe, Col("t", "x"), Lit(Value::Int(5))), row));
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGt, Col("t", "x"), Lit(Value::Int(4))), row));
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGe, Col("t", "x"), Lit(Value::Int(5))), row));
  EXPECT_TRUE(Eval(Eq(Col("t", "s"), Lit(Value::Str("VLDB"))), row));
}

TEST(ExprTest, MirroredComparison) {
  MapRow row({{"t.x", Value::Int(5)}});
  // literal op column
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLt, Lit(Value::Int(4)), Col("t", "x")), row));
}

TEST(ExprTest, NullNeverMatches) {
  MapRow row({{"t.x", Value::Null()}});
  EXPECT_FALSE(Eval(Eq(Col("t", "x"), Lit(Value::Int(5))), row));
  EXPECT_FALSE(Eval(Cmp(CompareOp::kNe, Col("t", "x"), Lit(Value::Int(5))), row));
  EXPECT_FALSE(Eval(Between(Col("t", "x"), Value::Int(0), Value::Int(9)), row));
  EXPECT_FALSE(Eval(In(Col("t", "x"), {Value::Int(5)}), row));
}

TEST(ExprTest, BetweenInclusive) {
  MapRow row({{"t.x", Value::Int(5)}});
  EXPECT_TRUE(Eval(Between(Col("t", "x"), Value::Int(5), Value::Int(9)), row));
  EXPECT_TRUE(Eval(Between(Col("t", "x"), Value::Int(0), Value::Int(5)), row));
  EXPECT_FALSE(Eval(Between(Col("t", "x"), Value::Int(6), Value::Int(9)), row));
}

TEST(ExprTest, InList) {
  MapRow row({{"t.make", Value::Str("BMW")}});
  EXPECT_TRUE(Eval(In(Col("t", "make"), {Value::Str("BMW"), Value::Str("Honda")}),
                   row));
  EXPECT_FALSE(Eval(In(Col("t", "make"), {Value::Str("VW")}), row));
}

TEST(ExprTest, AndOrNot) {
  MapRow row({{"t.x", Value::Int(5)}, {"t.y", Value::Int(7)}});
  ExprPtr x5 = Eq(Col("t", "x"), Lit(Value::Int(5)));
  ExprPtr y9 = Eq(Col("t", "y"), Lit(Value::Int(9)));
  EXPECT_FALSE(Eval(MakeAnd(x5, y9), row));
  EXPECT_TRUE(Eval(MakeOr(x5, y9), row));
  EXPECT_TRUE(Eval(MakeNot(y9), row));
  EXPECT_FALSE(Eval(MakeNot(x5), row));
}

TEST(ExprTest, ScalarAsPredicateFails) {
  MapRow row({{"t.x", Value::Int(5)}});
  EXPECT_FALSE(Evaluate(*Col("t", "x"), row).ok());
  EXPECT_FALSE(Evaluate(*Lit(Value::Int(1)), row).ok());
}

TEST(ExprTest, MissingColumnPropagatesError) {
  MapRow row({});
  EXPECT_FALSE(Evaluate(*Eq(Col("t", "x"), Lit(Value::Int(5))), row).ok());
}

TEST(ExprTest, ToStringFormats) {
  EXPECT_EQ(Eq(Col("dblp", "venue"), Lit(Value::Str("VLDB")))->ToString(),
            "dblp.venue='VLDB'");
  EXPECT_EQ(Between(Col("price"), Value::Int(7000), Value::Int(16000))
                ->ToString(),
            "price BETWEEN 7000 AND 16000");
  EXPECT_EQ(In(Col("make"), {Value::Str("BMW"), Value::Str("Honda")})
                ->ToString(),
            "make IN ('BMW', 'Honda')");
  ExprPtr x = Eq(Col("a"), Lit(Value::Int(1)));
  ExprPtr y = Eq(Col("b"), Lit(Value::Int(2)));
  ExprPtr z = Eq(Col("c"), Lit(Value::Int(3)));
  EXPECT_EQ(MakeAnd(MakeOr(x, y), z)->ToString(), "(a=1 OR b=2) AND c=3");
  EXPECT_EQ(MakeNot(x)->ToString(), "NOT (a=1)");
}

TEST(ExprTest, CollectConjunctsFlattensNestedAnds) {
  ExprPtr x = Eq(Col("a"), Lit(Value::Int(1)));
  ExprPtr y = Eq(Col("b"), Lit(Value::Int(2)));
  ExprPtr z = Eq(Col("c"), Lit(Value::Int(3)));
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(MakeAnd(MakeAnd(x, y), z), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  conjuncts.clear();
  // OR is a leaf for conjunct purposes.
  CollectConjuncts(MakeOr(x, y), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(ExprTest, CollectTables) {
  ExprPtr e = MakeAnd(Eq(Col("dblp", "venue"), Lit(Value::Str("V"))),
                      Eq(Col("dblp_author", "aid"), Lit(Value::Int(1))));
  std::set<std::string> tables;
  e->CollectTables(&tables);
  EXPECT_EQ(tables.size(), 2u);
  EXPECT_TRUE(tables.count("dblp") > 0);
  EXPECT_TRUE(tables.count("dblp_author") > 0);
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a = Eq(Col("t", "x"), Lit(Value::Int(1)));
  ExprPtr b = Eq(Col("t", "x"), Lit(Value::Int(1)));
  ExprPtr c = Eq(Col("t", "x"), Lit(Value::Int(2)));
  EXPECT_TRUE(ExprEquals(*a, *b));
  EXPECT_FALSE(ExprEquals(*a, *c));
  EXPECT_TRUE(ExprEquals(*MakeAnd(a, b), *MakeAnd(a, b)));
  EXPECT_FALSE(ExprEquals(*MakeAnd(a, b), *MakeOr(a, b)));
  EXPECT_TRUE(ExprEquals(*Between(Col("x"), Value::Int(1), Value::Int(2)),
                         *Between(Col("x"), Value::Int(1), Value::Int(2))));
  EXPECT_FALSE(ExprEquals(*Between(Col("x"), Value::Int(1), Value::Int(2)),
                          *Between(Col("x"), Value::Int(1), Value::Int(3))));
  EXPECT_TRUE(ExprEquals(*In(Col("x"), {Value::Int(1)}),
                         *In(Col("x"), {Value::Int(1)})));
  EXPECT_FALSE(ExprEquals(*In(Col("x"), {Value::Int(1)}),
                          *In(Col("x"), {Value::Int(1), Value::Int(2)})));
  EXPECT_TRUE(ExprEquals(*MakeNot(a), *MakeNot(b)));
}

}  // namespace
}  // namespace reldb
}  // namespace hypre
