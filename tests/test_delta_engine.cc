// Delta subsystem tests: the mutation journal, tombstone deletes at the
// reldb layer, and the probe engine's incremental Refresh() — unit coverage
// for append/delete/recycle/compaction plus the randomized mutation
// differential: after ANY interleaving of appends, deletes, and Refresh()
// calls, every probe count, key set, and algorithm output must be
// byte-identical to a probe engine built from scratch on the mutated
// database, across shard widths and thread counts.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "hypre/algorithms/peps.h"
#include "hypre/batch_prober.h"
#include "hypre/delta_engine.h"
#include "reldb/csv.h"
#include "test_fixtures.h"

namespace hypre {
namespace core {
namespace {

using reldb::Row;
using reldb::RowId;
using reldb::Schema;
using reldb::Value;
using reldb::ValueType;
using testing_fixtures::BuildMiniDblp;
using testing_fixtures::MiniBaseQuery;
using testing_fixtures::MiniPreferences;

std::vector<ProbeOptions> OptionMatrix() {
  std::vector<ProbeOptions> matrix;
  for (size_t shard_words : {size_t{1}, size_t{4}, size_t{1} << 20}) {
    for (size_t num_threads : {size_t{1}, size_t{4}}) {
      matrix.push_back(ProbeOptions{shard_words, num_threads, true});
    }
  }
  return matrix;
}

// --- reldb layer ----------------------------------------------------------

TEST(MutationJournal, RecordsAppendsAndDeletesInOrder) {
  reldb::Database db;
  auto t = db.CreateTable("t", Schema({{"x", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(db.journal().sequence(), 0u);

  (*t)->AppendUnchecked(Row{Value::Int(1)});
  ASSERT_TRUE((*t)->Append(Row{Value::Int(2)}).ok());
  ASSERT_TRUE((*t)->Delete(0).ok());
  ASSERT_EQ(db.journal().sequence(), 3u);

  EXPECT_EQ(db.journal().entry(0).kind, reldb::Mutation::Kind::kAppend);
  EXPECT_EQ(db.journal().entry(0).table, "t");
  EXPECT_EQ(db.journal().entry(0).row, 0u);
  EXPECT_EQ(db.journal().entry(2).kind, reldb::Mutation::Kind::kDelete);
  EXPECT_EQ(db.journal().entry(2).row, 0u);
  EXPECT_EQ(db.journal().num_appends(), 2u);
  EXPECT_EQ(db.journal().num_deletes(), 1u);

  size_t replayed = 0;
  db.journal().ForEachSince(1, [&](const reldb::Mutation&) { ++replayed; });
  EXPECT_EQ(replayed, 2u);
}

TEST(TableDelete, TombstonesRowAndErasesIndexes) {
  reldb::Database db;
  auto t = db.CreateTable(
      "t", Schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  for (int64_t i = 0; i < 5; ++i) {
    (*t)->AppendUnchecked(Row{Value::Int(i), Value::Int(i % 2)});
  }
  ASSERT_TRUE((*t)->CreateHashIndex("y").ok());
  ASSERT_TRUE((*t)->CreateOrderedIndex("x").ok());

  ASSERT_TRUE((*t)->Delete(2).ok());
  EXPECT_TRUE((*t)->is_deleted(2));
  EXPECT_EQ((*t)->num_rows(), 5u);       // RowId space is stable
  EXPECT_EQ((*t)->num_live_rows(), 4u);  // but one row is gone
  EXPECT_EQ((*t)->num_deleted(), 1u);

  // Unindexed immediately.
  const reldb::HashIndex* hash = (*t)->GetHashIndex("y");
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->Lookup(Value::Int(0)).size(), 2u);  // rows 0, 4 (not 2)
  const reldb::OrderedIndex* ordered = (*t)->GetOrderedIndex("x");
  ASSERT_NE(ordered, nullptr);
  EXPECT_EQ(ordered->Range(Value::Int(2), true, Value::Int(2), true).size(),
            0u);

  // Invisible to scans, with or without an index assist.
  reldb::Executor exec(&db);
  reldb::Query q;
  q.from = "t";
  auto rows = exec.Execute(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 4u);

  // Rebuilding an index skips tombstones.
  ASSERT_TRUE((*t)->CreateHashIndex("y").ok());
  EXPECT_EQ((*t)->GetHashIndex("y")->Lookup(Value::Int(0)).size(), 2u);

  // Error paths.
  EXPECT_FALSE((*t)->Delete(2).ok());   // already deleted
  EXPECT_FALSE((*t)->Delete(99).ok());  // out of range
}

// --- Refresh: append path -------------------------------------------------

/// CountMatching / MatchingKeys / KeysOf(EvalBitmap) of `engine` must agree
/// with a fresh engine built on the same database for every predicate.
void ExpectEngineMatchesFresh(const ProbeEngine& engine,
                              const reldb::Database& db,
                              const std::vector<reldb::ExprPtr>& predicates,
                              const char* context) {
  ProbeEngine fresh(&db, engine.base_query(), engine.key_column());
  for (size_t i = 0; i < predicates.size(); ++i) {
    SCOPED_TRACE(testing::Message()
                 << context << " predicate " << i << ": "
                 << (predicates[i] ? predicates[i]->ToString() : "<null>"));
    auto count = engine.CountMatching(predicates[i]);
    auto fresh_count = fresh.CountMatching(predicates[i]);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    ASSERT_TRUE(fresh_count.ok()) << fresh_count.status().ToString();
    EXPECT_EQ(*count, *fresh_count);

    auto keys = engine.MatchingKeys(predicates[i]);
    auto fresh_keys = fresh.MatchingKeys(predicates[i]);
    ASSERT_TRUE(keys.ok() && fresh_keys.ok());
    ASSERT_EQ(keys->size(), fresh_keys->size());
    for (size_t k = 0; k < keys->size(); ++k) {
      EXPECT_EQ((*keys)[k].Compare((*fresh_keys)[k]), 0)
          << "key " << k << ": " << (*keys)[k].ToString() << " vs "
          << (*fresh_keys)[k].ToString();
    }
  }
}

TEST(DeltaEngine, RefreshPicksUpAppends) {
  reldb::Database db;
  BuildMiniDblp(&db);
  ProbeEngine engine(&db, MiniBaseQuery(), "dblp.pid");

  auto v1 = MakeAtom("dblp.venue='V1'", 0.5);
  ASSERT_TRUE(v1.ok());
  auto count = engine.CountMatching(v1->expr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);  // papers 1, 2, 6
  auto universe = engine.UniverseSize();
  ASSERT_TRUE(universe.ok());
  EXPECT_EQ(*universe, 8u);

  // New V1 paper with an author link, plus a link that gives paper 3 a new
  // author (no new key, but key 3 joins more rows).
  reldb::Table* dblp = db.GetTable("dblp");
  reldb::Table* da = db.GetTable("dblp_author");
  ASSERT_TRUE(dblp->Append(Row{Value::Int(9), Value::Str("V1"),
                               Value::Int(2009)})
                  .ok());
  ASSERT_TRUE(da->Append(Row{Value::Int(9), Value::Int(1)}).ok());
  ASSERT_TRUE(da->Append(Row{Value::Int(3), Value::Int(1)}).ok());

  // The engine is a snapshot: stale until Refresh.
  count = engine.CountMatching(v1->expr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);

  auto epoch = engine.Refresh();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(engine.delta_engine().stats().appends_seen, 3u);
  EXPECT_EQ(engine.delta_engine().stats().keys_added, 1u);

  count = engine.CountMatching(v1->expr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);

  auto aid1 = MakeAtom("dblp_author.aid=1", 0.5);
  ASSERT_TRUE(aid1.ok());
  std::vector<reldb::ExprPtr> preds{nullptr, v1->expr, aid1->expr,
                                    reldb::MakeAnd(v1->expr, aid1->expr),
                                    reldb::MakeNot(aid1->expr)};
  ExpectEngineMatchesFresh(engine, db, preds, "after append refresh");
}

TEST(DeltaEngine, RefreshOnUntouchedTablesKeepsEpoch) {
  reldb::Database db;
  BuildMiniDblp(&db);
  auto other = db.CreateTable("other", Schema({{"x", ValueType::kInt64}}));
  ASSERT_TRUE(other.ok());

  ProbeEngine engine(&db, MiniBaseQuery(), "dblp.pid");
  ASSERT_TRUE(engine.UniverseSize().ok());

  (*other)->AppendUnchecked(Row{Value::Int(1)});
  auto epoch = engine.Refresh();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 0u);  // nothing relevant: no epoch change

  // Refresh with no journal entries at all is also a no-op.
  epoch = engine.Refresh();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 0u);
}

// --- Refresh: delete path -------------------------------------------------

TEST(DeltaEngine, RefreshHandlesDeletes) {
  reldb::Database db;
  BuildMiniDblp(&db);
  ProbeEngine engine(&db, MiniBaseQuery(), "dblp.pid");

  auto v1 = MakeAtom("dblp.venue='V1'", 0.5);
  auto aid2 = MakeAtom("dblp_author.aid=2", 0.5);
  ASSERT_TRUE(v1.ok() && aid2.ok());
  ASSERT_TRUE(engine.PrefetchLeaves({v1->expr, aid2->expr}).ok());

  // Delete paper 6 (a V1 paper; key leaves the universe) and the aid=2 link
  // of paper 1 (key 1 stays alive via its other links, but loses aid=2
  // membership).
  reldb::Table* dblp = db.GetTable("dblp");
  reldb::Table* da = db.GetTable("dblp_author");
  ASSERT_TRUE(dblp->Delete(5).ok());  // row 5 = pid 6
  // dblp_author rows: {1,1},{1,2},{2,1},... -> row 1 is the (1, aid=2) link.
  ASSERT_TRUE(da->Delete(1).ok());

  auto epoch = engine.Refresh();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);
  const DeltaEngine::Stats& stats = engine.delta_engine().stats();
  EXPECT_EQ(stats.deletes_seen, 2u);
  EXPECT_EQ(stats.keys_tombstoned, 1u);  // pid 6
  EXPECT_GE(stats.keys_recomputed, 2u);  // pids 6 and 1
  EXPECT_TRUE(engine.has_tombstones());

  auto count = engine.CountMatching(v1->expr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);  // papers 1, 2
  count = engine.CountMatching(aid2->expr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);  // papers 3, 7 (1 lost its link, 6 is gone)
  count = engine.CountMatching(nullptr);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 7u);  // universe shrank by pid 6

  std::vector<reldb::ExprPtr> preds{
      nullptr, v1->expr, aid2->expr, reldb::MakeOr(v1->expr, aid2->expr),
      reldb::MakeNot(v1->expr)};  // NOT must not resurrect tombstoned keys
  ExpectEngineMatchesFresh(engine, db, preds, "after delete refresh");
}

TEST(DeltaEngine, RecyclesTombstonedIdsForNewKeys) {
  reldb::Database db;
  BuildMiniDblp(&db);
  ProbeEngine engine(&db, MiniBaseQuery(), "dblp.pid");
  ASSERT_TRUE(engine.UniverseSize().ok());

  // Kill pid 8 (row 7, its only author link is row 11).
  ASSERT_TRUE(db.GetTable("dblp")->Delete(7).ok());
  ASSERT_TRUE(engine.Refresh().ok());
  EXPECT_EQ(engine.num_tombstones(), 1u);

  // A brand-new paper should take pid 8's dense id instead of growing.
  ASSERT_TRUE(db.GetTable("dblp")
                  ->Append(Row{Value::Int(42), Value::Str("V3"),
                               Value::Int(2042)})
                  .ok());
  ASSERT_TRUE(
      db.GetTable("dblp_author")->Append(Row{Value::Int(42), Value::Int(4)})
          .ok());
  ASSERT_TRUE(engine.Refresh().ok());
  EXPECT_EQ(engine.delta_engine().stats().keys_recycled, 1u);
  EXPECT_EQ(engine.num_tombstones(), 0u);
  auto size = engine.UniverseSize();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 8u);  // id space did not grow

  auto v3 = MakeAtom("dblp.venue='V3'", 0.5);
  ASSERT_TRUE(v3.ok());
  std::vector<reldb::ExprPtr> preds{nullptr, v3->expr,
                                    reldb::MakeNot(v3->expr)};
  ExpectEngineMatchesFresh(engine, db, preds, "after recycle");
}

TEST(DeltaEngine, CompactsViaEpochRebuildPastTombstoneThreshold) {
  reldb::Database db;
  BuildMiniDblp(&db);
  ProbeEngine engine(&db, MiniBaseQuery(), "dblp.pid");
  engine.set_delta_options(DeltaOptions{/*rebuild_tombstone_ratio=*/0.05});
  ASSERT_TRUE(engine.UniverseSize().ok());

  ASSERT_TRUE(db.GetTable("dblp")->Delete(7).ok());  // pid 8
  ASSERT_TRUE(db.GetTable("dblp")->Delete(4).ok());  // pid 5
  auto epoch = engine.Refresh();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(engine.delta_engine().stats().full_rebuilds, 1u);
  EXPECT_FALSE(engine.has_tombstones());

  auto size = engine.UniverseSize();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);  // compaction re-interned a tight id space

  auto v3 = MakeAtom("dblp.venue='V3'", 0.5);
  ASSERT_TRUE(v3.ok());
  std::vector<reldb::ExprPtr> preds{nullptr, v3->expr,
                                    reldb::MakeNot(v3->expr)};
  ExpectEngineMatchesFresh(engine, db, preds, "after compaction");
}

// --- CSV loads through the journal ----------------------------------------

TEST(DeltaEngine, CsvAppendAfterConstructionIsPickedUpByRefresh) {
  reldb::Database db;
  BuildMiniDblp(&db);
  ProbeEngine engine(&db, MiniBaseQuery(), "dblp.pid");
  ASSERT_TRUE(engine.UniverseSize().ok());

  std::istringstream csv(
      "pid,venue,year\n"
      "20,V1,2020\n"
      "21,V1,2021\n");
  auto loaded = reldb::AppendCsv(&csv, db.GetTable("dblp"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  std::istringstream links(
      "pid,aid\n"
      "20,1\n"
      "21,2\n");
  ASSERT_TRUE(reldb::AppendCsv(&links, db.GetTable("dblp_author")).ok());

  ASSERT_TRUE(engine.Refresh().ok());
  auto size = engine.UniverseSize();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10u);

  auto v1 = MakeAtom("dblp.venue='V1'", 0.5);
  ASSERT_TRUE(v1.ok());
  std::vector<reldb::ExprPtr> preds{nullptr, v1->expr};
  ExpectEngineMatchesFresh(engine, db, preds, "after CSV refresh");
}

TEST(AppendCsv, ErrorsNameTheOffendingRow) {
  reldb::Database db;
  BuildMiniDblp(&db);
  {
    std::istringstream csv(
        "pid,venue,year\n"
        "20,V1,2020\n"
        "bad,V1,2021\n");
    auto loaded = reldb::AppendCsv(&csv, db.GetTable("dblp"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().ToString().find("row 2"), std::string::npos)
        << loaded.status().ToString();
    EXPECT_NE(loaded.status().ToString().find("line 3"), std::string::npos)
        << loaded.status().ToString();
  }
  {
    // Arity error: too few fields.
    std::istringstream csv(
        "pid,venue,year\n"
        "20,V1\n");
    auto loaded = reldb::AppendCsv(&csv, db.GetTable("dblp"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().ToString().find("row 1"), std::string::npos)
        << loaded.status().ToString();
  }
}

// --- Randomized mutation differential -------------------------------------

/// Random papers/tags workload whose tables keep mutating; mirrors the
/// batch-prober fuzz shape so predicates exercise indexes, full scans, and
/// multi-word universes.
class MutatingWorkload {
 public:
  explicit MutatingWorkload(uint64_t seed) : rng_(seed) {
    auto papers =
        db_.CreateTable("p", Schema({{"pid", ValueType::kInt64},
                                     {"venue", ValueType::kString}}));
    EXPECT_TRUE(papers.ok());
    papers_ = *papers;
    auto tags = db_.CreateTable(
        "tag", Schema({{"pid", ValueType::kInt64}, {"t", ValueType::kInt64}}));
    EXPECT_TRUE(tags.ok());
    tags_ = *tags;
    for (int64_t pid = 0; pid < 220; ++pid) AddPaper();
    EXPECT_TRUE(papers_->CreateHashIndex("venue").ok());
    EXPECT_TRUE(papers_->CreateHashIndex("pid").ok());
    EXPECT_TRUE(tags_->CreateHashIndex("t").ok());
    EXPECT_TRUE(tags_->CreateHashIndex("pid").ok());

    base_.from = "p";
    base_.joins.push_back({"tag", "p.pid", "pid"});

    auto add = [&](const std::string& pred, double intensity) {
      auto atom = MakeAtom(pred, intensity);
      ASSERT_TRUE(atom.ok()) << atom.status().ToString();
      prefs_.push_back(std::move(atom.value()));
    };
    add("p.venue='V1'", 0.9);
    add("p.venue='V2'", 0.8);
    add("tag.t=0", 0.7);
    add("tag.t=1", 0.6);
    add("tag.t>=5", 0.5);  // no ordered index on t: full-scan leaf
    add("tag.t=2", 0.4);
    add("p.venue='V3'", 0.3);
    add("tag.t=3", 0.2);
    SortByIntensityDesc(&prefs_);
  }

  void AddPaper() {
    static const char* venues[] = {"V1", "V2", "V3", "V4"};
    int64_t pid = next_pid_++;
    papers_->AppendUnchecked(
        Row{Value::Int(pid), Value::Str(venues[rng_.NextBounded(4)])});
    size_t n = 1 + rng_.NextBounded(3);
    std::set<int64_t> used;
    for (size_t k = 0; k < n; ++k) {
      int64_t tag = rng_.NextInt(0, 7);
      if (used.insert(tag).second) {
        tags_->AppendUnchecked(Row{Value::Int(pid), Value::Int(tag)});
      }
    }
  }

  /// One random mutation batch: a few appends (new papers, extra tag links
  /// for existing pids) and a few deletes of live rows in either table.
  void Mutate() {
    size_t new_papers = rng_.NextBounded(4);
    for (size_t i = 0; i < new_papers; ++i) AddPaper();
    size_t new_links = rng_.NextBounded(4);
    for (size_t i = 0; i < new_links; ++i) {
      // Existing, dead, or unseen pid — all must be handled.
      int64_t pid = rng_.NextInt(0, next_pid_ + 3);
      tags_->AppendUnchecked(
          Row{Value::Int(pid), Value::Int(rng_.NextInt(0, 7))});
    }
    DeleteSomeRows(papers_, rng_.NextBounded(4));
    DeleteSomeRows(tags_, rng_.NextBounded(5));
  }

  Combination RandomCombination(const Combiner& combiner) {
    size_t n = prefs_.size();
    size_t size = 1 + rng_.NextBounded(4);
    std::set<size_t> members;
    while (members.size() < size) members.insert(rng_.NextBounded(n));
    return combiner.MixedClause(
        std::vector<size_t>(members.begin(), members.end()));
  }

  /// Random predicate tree over the preference leaves (depth <= 2).
  reldb::ExprPtr RandomPredicate() {
    auto leaf = [&] { return prefs_[rng_.NextBounded(prefs_.size())].expr; };
    switch (rng_.NextBounded(5)) {
      case 0:
        return leaf();
      case 1:
        return reldb::MakeAnd(leaf(), leaf());
      case 2:
        return reldb::MakeOr(leaf(), leaf());
      case 3:
        return reldb::MakeNot(leaf());
      default:
        return reldb::MakeOr(reldb::MakeAnd(leaf(), leaf()),
                             reldb::MakeNot(leaf()));
    }
  }

  reldb::Database db_;
  reldb::Table* papers_ = nullptr;
  reldb::Table* tags_ = nullptr;
  reldb::Query base_;
  std::vector<PreferenceAtom> prefs_;
  int64_t next_pid_ = 0;
  Rng rng_;

 private:
  void DeleteSomeRows(reldb::Table* table, size_t how_many) {
    for (size_t i = 0; i < how_many; ++i) {
      if (table->num_live_rows() == 0) return;
      RowId id = rng_.NextBounded(table->num_rows());
      if (!table->is_deleted(id)) ASSERT_TRUE(table->Delete(id).ok());
    }
  }
};

TEST(DeltaEngine, RandomizedMutationDifferential) {
  for (uint64_t seed : {11u, 29u, 47u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    MutatingWorkload w(seed);
    ProbeEngine engine(&w.db_, w.base_, "p.pid");
    Combiner combiner(&w.prefs_);
    CombinationProber prober(&combiner, &engine);
    ASSERT_TRUE(prober.PrefetchAll().ok());

    // Warm some probe state so Refresh has caches to patch.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(engine.CountMatching(w.RandomPredicate()).ok());
    }

    for (int round = 0; round < 8; ++round) {
      SCOPED_TRACE(testing::Message() << "round=" << round);
      // 1 or 2 mutation batches before the refresh: Refresh must absorb
      // arbitrary interleavings, not just single-batch slices.
      size_t batches = 1 + w.rng_.NextBounded(2);
      for (size_t b = 0; b < batches; ++b) w.Mutate();
      auto epoch = engine.Refresh();
      ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

      // Fresh reference engine + prober on the mutated database.
      ProbeEngine fresh(&w.db_, w.base_, "p.pid");
      CombinationProber fresh_prober(&combiner, &fresh);
      ASSERT_TRUE(fresh_prober.PrefetchAll().ok());

      // Raw predicate probes: counts and key sets.
      std::vector<reldb::ExprPtr> preds{nullptr};
      for (int i = 0; i < 12; ++i) preds.push_back(w.RandomPredicate());
      ExpectEngineMatchesFresh(engine, w.db_, preds, "differential");

      // Combination probes: scalar counts, batched counts, and evaluated
      // key sets across the shard/thread matrix.
      std::vector<Combination> frontier;
      for (int i = 0; i < 12; ++i) {
        frontier.push_back(w.RandomCombination(combiner));
      }
      frontier.push_back(Combination{});  // degenerate
      std::vector<size_t> expected_counts;
      std::vector<std::vector<Value>> expected_keys;
      KeyBitmap scratch;
      for (const Combination& c : frontier) {
        auto count = fresh_prober.Count(c);
        ASSERT_TRUE(count.ok()) << count.status().ToString();
        expected_counts.push_back(*count);
        ASSERT_TRUE(fresh_prober.BitsInto(c, &scratch).ok());
        expected_keys.push_back(fresh.KeysOf(scratch));
      }
      for (size_t f = 0; f < frontier.size(); ++f) {
        auto count = prober.Count(frontier[f]);
        ASSERT_TRUE(count.ok());
        EXPECT_EQ(*count, expected_counts[f]) << "scalar count " << f;
        ASSERT_TRUE(prober.BitsInto(frontier[f], &scratch).ok());
        EXPECT_EQ(engine.KeysOf(scratch), expected_keys[f])
            << "scalar keys " << f;
      }
      for (const ProbeOptions& options : OptionMatrix()) {
        SCOPED_TRACE(testing::Message()
                     << "shard_words=" << options.shard_words
                     << " threads=" << options.num_threads);
        BatchProber batch(&prober, options);
        auto counts = batch.CountBatch(frontier);
        ASSERT_TRUE(counts.ok()) << counts.status().ToString();
        EXPECT_EQ(*counts, expected_counts);
        std::vector<KeyBitmap> bits;
        ASSERT_TRUE(batch.EvalBatch(frontier, &bits).ok());
        ASSERT_EQ(bits.size(), frontier.size());
        for (size_t f = 0; f < frontier.size(); ++f) {
          EXPECT_EQ(engine.KeysOf(bits[f]), expected_keys[f])
              << "batched keys " << f;
        }
      }
    }
  }
}

TEST(DeltaEngine, PepsTopKAfterRefreshMatchesFreshEngine) {
  MutatingWorkload w(7);
  QueryEnhancer enhancer(&w.db_, w.base_, "p.pid");
  Peps warm(&w.prefs_, &enhancer);
  auto before = warm.TopK(10, PepsMode::kComplete);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  for (int round = 0; round < 3; ++round) w.Mutate();
  ASSERT_TRUE(enhancer.Refresh().ok());

  QueryEnhancer fresh_enhancer(&w.db_, w.base_, "p.pid");
  for (bool batching : {true, false}) {
    SCOPED_TRACE(testing::Message() << "batching=" << batching);
    ProbeOptions options;
    options.batching = batching;
    Peps refreshed(&w.prefs_, &enhancer, options);
    Peps fresh(&w.prefs_, &fresh_enhancer, options);
    auto got = refreshed.TopK(10, PepsMode::kComplete);
    auto want = fresh.TopK(10, PepsMode::kComplete);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(*got, *want);
  }
}

}  // namespace
}  // namespace core
}  // namespace hypre
