// ProbeEngine tests: KeyBitmap word-packing, dense-dictionary interning,
// canonical cache keys, and a randomized differential sweep asserting the
// bitmap set algebra matches the legacy unordered_set evaluation on random
// predicate trees (same harness style as test_fuzz.cc).
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "common/random.h"
#include "hypre/key_bitmap.h"
#include "hypre/probe_engine.h"
#include "reldb/executor.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace core {
namespace {

using reldb::Col;
using reldb::Database;
using reldb::Eq;
using reldb::Expr;
using reldb::ExprKind;
using reldb::ExprPtr;
using reldb::Lit;
using reldb::MakeAnd;
using reldb::MakeNot;
using reldb::MakeOr;
using reldb::Row;
using reldb::Schema;
using reldb::Value;
using reldb::ValueHash;
using reldb::ValueType;

ExprPtr Parse(const std::string& text) {
  auto r = sqlparse::ParsePredicate(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : nullptr;
}

// --- KeyBitmap ------------------------------------------------------------

TEST(KeyBitmap, SetTestCountAcrossWordBoundaries) {
  KeyBitmap bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) bits.Set(i);
  EXPECT_EQ(bits.Count(), 7u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(128));
  EXPECT_FALSE(bits.Test(1));
  bits.Reset(63);
  EXPECT_EQ(bits.Count(), 6u);
  EXPECT_FALSE(bits.Test(63));
}

TEST(KeyBitmap, AllSetRespectsTail) {
  KeyBitmap bits(70, /*all_set=*/true);
  EXPECT_EQ(bits.Count(), 70u);
  bits.FlipAll();
  EXPECT_EQ(bits.Count(), 0u);
  bits.FlipAll();
  EXPECT_EQ(bits.Count(), 70u);  // complement never leaks past num_bits
}

TEST(KeyBitmap, SetAlgebra) {
  KeyBitmap a(100);
  KeyBitmap b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);   // evens
  for (size_t i = 0; i < 100; i += 3) b.Set(i);   // multiples of 3
  EXPECT_EQ(KeyBitmap::AndCount(a, b), 17u);      // multiples of 6 in [0,100)
  EXPECT_TRUE(KeyBitmap::Intersects(a, b));

  KeyBitmap u = a;
  u.OrWith(b);
  EXPECT_EQ(u.Count(), 50u + 34u - 17u);
  KeyBitmap i = a;
  i.AndWith(b);
  EXPECT_EQ(i.Count(), 17u);
  KeyBitmap d = a;
  d.AndNotWith(b);
  EXPECT_EQ(d.Count(), 50u - 17u);

  std::vector<uint32_t> ids = i.ToIds();
  ASSERT_FALSE(ids.empty());
  for (size_t k = 0; k + 1 < ids.size(); ++k) EXPECT_LT(ids[k], ids[k + 1]);
  for (uint32_t id : ids) EXPECT_EQ(id % 6, 0u);
}

// --- DenseDictionary ------------------------------------------------------

TEST(DenseDictionary, InternsFirstSeenAndCollapsesNumericEquality) {
  reldb::DenseDictionary dict;
  EXPECT_EQ(dict.Intern(Value::Str("a")), 0u);
  EXPECT_EQ(dict.Intern(Value::Int(2)), 1u);
  EXPECT_EQ(dict.Intern(Value::Str("a")), 0u);
  // Int(2) and Real(2.0) compare equal, so they must share an id (matching
  // DistinctValues' dedup semantics).
  EXPECT_EQ(dict.Intern(Value::Real(2.0)), 1u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Lookup(Value::Str("a")), 0u);
  EXPECT_EQ(dict.Lookup(Value::Str("zz")), reldb::DenseDictionary::kNotFound);
}

// --- Canonical cache keys -------------------------------------------------

TEST(CanonicalKey, CommutativeAndMirroredFormsCollide) {
  auto key = [](const std::string& text) {
    return ProbeEngine::CanonicalKey(*Parse(text));
  };
  // Operand order of commutative AND/OR.
  EXPECT_EQ(key("a.x=1 AND b.y=2"), key("b.y=2 AND a.x=1"));
  EXPECT_EQ(key("a.x=1 OR b.y=2"), key("b.y=2 OR a.x=1"));
  // Associativity (nested same-operator nodes flatten).
  EXPECT_EQ(key("(a.x=1 AND b.y=2) AND c.z=3"),
            key("a.x=1 AND (b.y=2 AND c.z=3)"));
  // Mirrored comparisons.
  EXPECT_EQ(key("a.x > 5"), key("5 < a.x"));
  EXPECT_EQ(key("a.x = 5"), key("5 = a.x"));
  // IN-list order.
  EXPECT_EQ(key("a.x IN (3, 1, 2)"), key("a.x IN (1, 2, 3)"));
  // AND must not collide with OR over the same children.
  EXPECT_NE(key("a.x=1 AND b.y=2"), key("a.x=1 OR b.y=2"));
  // Different trees must not collide.
  EXPECT_NE(key("a.x=1"), key("a.x=2"));
  EXPECT_NE(key("NOT a.x=1"), key("a.x=1"));
}

class ProbeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dblp =
        db_.CreateTable("dblp", Schema({{"pid", ValueType::kInt64},
                                        {"venue", ValueType::kString}}));
    ASSERT_TRUE(dblp.ok());
    auto da = db_.CreateTable(
        "dblp_author",
        Schema({{"pid", ValueType::kInt64}, {"aid", ValueType::kInt64}}));
    ASSERT_TRUE(da.ok());
    const char* venues[] = {"V1", "V1", "V2", "V2", "V3"};
    for (int64_t pid = 1; pid <= 5; ++pid) {
      (*dblp)->AppendUnchecked(
          Row{Value::Int(pid), Value::Str(venues[pid - 1])});
    }
    const std::pair<int64_t, int64_t> links[] = {
        {1, 1}, {1, 2}, {2, 1}, {3, 2}, {3, 3}, {4, 1}, {4, 3}, {5, 3}};
    for (const auto& [pid, aid] : links) {
      (*da)->AppendUnchecked(Row{Value::Int(pid), Value::Int(aid)});
    }
    base_.from = "dblp";
    base_.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  }

  reldb::Database db_;
  reldb::Query base_;
};

TEST_F(ProbeEngineTest, CanonicalizedPredicatesShareCacheEntries) {
  ProbeEngine engine(&db_, base_, "dblp.pid");
  ASSERT_TRUE(
      engine.CountMatching(Parse("dblp.venue='V1' AND dblp_author.aid=1"))
          .ok());
  size_t leaves_after_first = engine.num_leaf_queries();
  EXPECT_EQ(leaves_after_first, 2u);  // one probe per distinct leaf

  // Swapped conjunct order: count cache hit, no new leaf probes.
  auto swapped =
      engine.CountMatching(Parse("dblp_author.aid=1 AND dblp.venue='V1'"));
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(engine.num_leaf_queries(), leaves_after_first);
  EXPECT_EQ(engine.num_cache_hits(), 1u);

  // A mirrored leaf (`1 = aid`) reuses the cached leaf bitmap even inside a
  // structurally new tree.
  auto mirrored =
      engine.CountMatching(Parse("dblp.venue='V2' OR 1=dblp_author.aid"));
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(engine.num_leaf_queries(), leaves_after_first + 1);  // only 'V2'
}

TEST_F(ProbeEngineTest, BitmapHandlesComposeLikeKeySets) {
  ProbeEngine engine(&db_, base_, "dblp.pid");
  auto a1 = engine.EvalBitmap(Parse("dblp_author.aid=1"));
  auto a3 = engine.EvalBitmap(Parse("dblp_author.aid=3"));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a3.ok());
  // aid=1 -> {1,2,4}; aid=3 -> {3,4,5}; intersection {4}.
  EXPECT_EQ(a1->Count(), 3u);
  EXPECT_EQ(a3->Count(), 3u);
  EXPECT_EQ(KeyBitmap::AndCount(*a1, *a3), 1u);
  KeyBitmap both = *a1;
  both.AndWith(*a3);
  std::vector<Value> keys = engine.KeysOf(both);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].AsInt(), 4);
}

// --- Randomized differential sweep ---------------------------------------
//
// Reference implementation: the legacy unordered_set evaluation that
// QueryEnhancer used before the bitmap engine (leaf probes through
// DistinctValues, hash-set intersection/union/complement).
class HashSetReference {
 public:
  using KeySet = std::unordered_set<Value, ValueHash>;

  HashSetReference(const Database* db, reldb::Query base_query,
                   std::string key_column)
      : executor_(db),
        base_query_(std::move(base_query)),
        key_column_(std::move(key_column)) {}

  Result<KeySet> Universe() {
    HYPRE_ASSIGN_OR_RETURN(std::vector<Value> keys,
                           executor_.DistinctValues(base_query_, key_column_));
    return KeySet(keys.begin(), keys.end());
  }

  Result<KeySet> Eval(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kAnd: {
        const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
        bool first = true;
        KeySet acc;
        for (const auto& child : nary.children()) {
          HYPRE_ASSIGN_OR_RETURN(KeySet child_set, Eval(child));
          if (first) {
            acc = std::move(child_set);
            first = false;
            continue;
          }
          KeySet next;
          for (const auto& v : acc) {
            if (child_set.count(v) > 0) next.insert(v);
          }
          acc = std::move(next);
        }
        return acc;
      }
      case ExprKind::kOr: {
        const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
        KeySet acc;
        for (const auto& child : nary.children()) {
          HYPRE_ASSIGN_OR_RETURN(KeySet child_set, Eval(child));
          acc.insert(child_set.begin(), child_set.end());
        }
        return acc;
      }
      case ExprKind::kNot: {
        const auto& n = static_cast<const reldb::NotExpr&>(*expr);
        HYPRE_ASSIGN_OR_RETURN(KeySet child_set, Eval(n.child()));
        HYPRE_ASSIGN_OR_RETURN(KeySet universe, Universe());
        KeySet acc;
        for (const auto& v : universe) {
          if (child_set.count(v) == 0) acc.insert(v);
        }
        return acc;
      }
      default: {
        reldb::Query query = base_query_;
        query.where =
            query.where ? reldb::MakeAnd(query.where, expr) : expr;
        HYPRE_ASSIGN_OR_RETURN(std::vector<Value> keys,
                               executor_.DistinctValues(query, key_column_));
        return KeySet(keys.begin(), keys.end());
      }
    }
  }

 private:
  reldb::Executor executor_;
  reldb::Query base_query_;
  std::string key_column_;
};

class ProbeEngineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProbeEngineFuzz, BitmapAlgebraMatchesHashSetReference) {
  Rng rng(GetParam());
  Database db;
  // Random papers/tags join database (same shape as test_fuzz.cc).
  auto papers = db.CreateTable("p", Schema({{"pid", ValueType::kInt64},
                                            {"venue", ValueType::kString}}));
  ASSERT_TRUE(papers.ok());
  auto tags = db.CreateTable(
      "tag", Schema({{"pid", ValueType::kInt64}, {"t", ValueType::kInt64}}));
  ASSERT_TRUE(tags.ok());
  const char* venues[] = {"V1", "V2", "V3"};
  for (int64_t pid = 0; pid < 80; ++pid) {
    (*papers)->AppendUnchecked(
        Row{Value::Int(pid), Value::Str(venues[rng.NextBounded(3)])});
    size_t n = 1 + rng.NextBounded(3);
    std::set<int64_t> used;
    for (size_t k = 0; k < n; ++k) {
      int64_t tag = rng.NextInt(0, 6);
      if (used.insert(tag).second) {
        (*tags)->AppendUnchecked(Row{Value::Int(pid), Value::Int(tag)});
      }
    }
  }
  ASSERT_TRUE((*papers)->CreateHashIndex("venue").ok());
  ASSERT_TRUE((*tags)->CreateHashIndex("t").ok());
  ASSERT_TRUE((*tags)->CreateHashIndex("pid").ok());

  reldb::Query base;
  base.from = "p";
  base.joins.push_back({"tag", "p.pid", "pid"});
  ProbeEngine engine(&db, base, "p.pid");
  HashSetReference reference(&db, base, "p.pid");

  std::function<ExprPtr(int)> random_pred = [&](int depth) -> ExprPtr {
    if (depth <= 0 || rng.NextBernoulli(0.45)) {
      if (rng.NextBernoulli(0.5)) {
        return Eq(Col("p", "venue"),
                  Lit(Value::Str(venues[rng.NextBounded(3)])));
      }
      return Eq(Col("tag", "t"), Lit(Value::Int(rng.NextInt(0, 6))));
    }
    switch (rng.NextBounded(3)) {
      case 0:
        return MakeAnd(random_pred(depth - 1), random_pred(depth - 1));
      case 1:
        return MakeOr(random_pred(depth - 1), random_pred(depth - 1));
      default:
        return MakeNot(random_pred(depth - 1));
    }
  };

  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr predicate = random_pred(4);
    auto expected = reference.Eval(predicate);
    ASSERT_TRUE(expected.ok()) << predicate->ToString();

    auto count = engine.CountMatching(predicate);
    ASSERT_TRUE(count.ok()) << predicate->ToString();
    EXPECT_EQ(count.value(), expected->size()) << predicate->ToString();

    auto keys = engine.MatchingKeys(predicate);
    ASSERT_TRUE(keys.ok()) << predicate->ToString();
    ASSERT_EQ(keys->size(), expected->size()) << predicate->ToString();
    for (size_t i = 0; i < keys->size(); ++i) {
      EXPECT_TRUE(expected->count((*keys)[i]) > 0) << predicate->ToString();
      if (i > 0) {
        // MatchingKeys stays sorted by the Value total order.
        EXPECT_LT((*keys)[i - 1].Compare((*keys)[i]), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeEngineFuzz,
                         ::testing::Values(7, 21, 42, 77, 111, 123));

}  // namespace
}  // namespace core
}  // namespace hypre
