// CP-net tests (Definition 12, Figure 3) including a property sweep:
// flip-dominance implies earlier rank in the linearization.
#include <gtest/gtest.h>

#include "common/random.h"
#include "hypre/cp_net.h"

namespace hypre {
namespace core {
namespace {

/// The Figure 3 network: genre -> director,
///   genre:  comedy > drama
///   comedy: W.Allen > M.Curtiz ; drama: M.Curtiz > W.Allen
CpNet Figure3Net() {
  CpNet net;
  EXPECT_TRUE(net.AddAttribute("genre", {"comedy", "drama"}).ok());
  EXPECT_TRUE(net.AddAttribute("director", {"W.Allen", "M.Curtiz"}).ok());
  EXPECT_TRUE(net.AddDependency("genre", "director").ok());
  EXPECT_TRUE(net.SetPreferenceOrder("genre", {}, {"comedy", "drama"}).ok());
  EXPECT_TRUE(net.SetPreferenceOrder("director", {"comedy"},
                                     {"W.Allen", "M.Curtiz"})
                  .ok());
  EXPECT_TRUE(net.SetPreferenceOrder("director", {"drama"},
                                     {"M.Curtiz", "W.Allen"})
                  .ok());
  return net;
}

TEST(CpNetTest, ConstructionValidation) {
  CpNet net;
  EXPECT_FALSE(net.AddAttribute("", {"a"}).ok());
  EXPECT_FALSE(net.AddAttribute("x", {}).ok());
  EXPECT_FALSE(net.AddAttribute("x", {"a", "a"}).ok());
  ASSERT_TRUE(net.AddAttribute("x", {"a", "b"}).ok());
  EXPECT_FALSE(net.AddAttribute("x", {"c"}).ok());  // duplicate
  EXPECT_FALSE(net.AddDependency("x", "x").ok());   // self
  EXPECT_FALSE(net.AddDependency("y", "x").ok());   // unknown parent
  ASSERT_TRUE(net.AddAttribute("y", {"c", "d"}).ok());
  ASSERT_TRUE(net.AddDependency("x", "y").ok());
  EXPECT_FALSE(net.AddDependency("y", "x").ok());   // cycle
  EXPECT_FALSE(net.AddDependency("x", "y").ok());   // duplicate edge
}

TEST(CpNetTest, CptValidation) {
  CpNet net = Figure3Net();
  EXPECT_FALSE(net.SetPreferenceOrder("genre", {}, {"comedy"}).ok());
  EXPECT_FALSE(
      net.SetPreferenceOrder("director", {}, {"W.Allen", "M.Curtiz"}).ok());
  EXPECT_FALSE(net.SetPreferenceOrder("director", {"thriller"},
                                      {"W.Allen", "M.Curtiz"})
                   .ok());
  EXPECT_FALSE(net.SetPreferenceOrder("nope", {}, {"a"}).ok());
}

TEST(CpNetTest, Completeness) {
  CpNet net;
  ASSERT_TRUE(net.AddAttribute("a", {"x", "y"}).ok());
  EXPECT_FALSE(net.IsComplete());
  ASSERT_TRUE(net.SetPreferenceOrder("a", {}, {"x", "y"}).ok());
  EXPECT_TRUE(net.IsComplete());
  EXPECT_TRUE(Figure3Net().IsComplete());
}

TEST(CpNetTest, BestOutcomeForwardSweep) {
  CpNet net = Figure3Net();
  auto best = net.BestOutcome();
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->at("genre"), "comedy");
  EXPECT_EQ(best->at("director"), "W.Allen");
}

TEST(CpNetTest, BestOutcomeWithEvidence) {
  CpNet net = Figure3Net();
  // Pinned to drama, the preferred director flips to Curtiz.
  auto best = net.BestOutcome({{"genre", "drama"}});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->at("director"), "M.Curtiz");
  EXPECT_FALSE(net.BestOutcome({{"genre", "horror"}}).ok());
}

TEST(CpNetTest, FlipDominance) {
  CpNet net = Figure3Net();
  Outcome comedy_allen{{"genre", "comedy"}, {"director", "W.Allen"}};
  Outcome comedy_curtiz{{"genre", "comedy"}, {"director", "M.Curtiz"}};
  Outcome drama_curtiz{{"genre", "drama"}, {"director", "M.Curtiz"}};
  Outcome drama_allen{{"genre", "drama"}, {"director", "W.Allen"}};

  // Under comedy: Allen > Curtiz (the Figure 3 reading).
  EXPECT_TRUE(net.FlipDominates(comedy_allen, comedy_curtiz).value());
  EXPECT_FALSE(net.FlipDominates(comedy_curtiz, comedy_allen).value());
  // Under drama: Curtiz > Allen.
  EXPECT_TRUE(net.FlipDominates(drama_curtiz, drama_allen).value());
  // Genre flip with the director fixed: comedy > drama.
  EXPECT_TRUE(net.FlipDominates(comedy_allen, drama_allen).value());
  // Errors: identical or two-attribute differences.
  EXPECT_FALSE(net.FlipDominates(comedy_allen, comedy_allen).ok());
  EXPECT_FALSE(net.FlipDominates(comedy_allen, drama_curtiz).ok());
}

TEST(CpNetTest, RankOutcomesFigure3) {
  CpNet net = Figure3Net();
  auto ranked = net.RankOutcomes();
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  ASSERT_EQ(ranked->size(), 4u);
  EXPECT_EQ((*ranked)[0].at("genre"), "comedy");
  EXPECT_EQ((*ranked)[0].at("director"), "W.Allen");
  // The worst outcome violates both CPTs: drama with Allen.
  EXPECT_EQ((*ranked)[3].at("genre"), "drama");
  EXPECT_EQ((*ranked)[3].at("director"), "W.Allen");
}

TEST(CpNetTest, RankOutcomesGuard) {
  CpNet net;
  ASSERT_TRUE(net.AddAttribute("a", {"1", "2", "3", "4"}).ok());
  ASSERT_TRUE(net.SetPreferenceOrder("a", {}, {"1", "2", "3", "4"}).ok());
  EXPECT_FALSE(net.RankOutcomes(/*max_outcomes=*/3).ok());
}

// Property: whenever FlipDominates(a, b), a ranks strictly before b in the
// linearization (consistency of RankOutcomes with the CP-net semantics).
class CpNetLinearization : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CpNetLinearization, FlipDominanceImpliesEarlierRank) {
  Rng rng(GetParam());
  // Random chain net a -> b -> c with random CPT orders.
  CpNet net;
  ASSERT_TRUE(net.AddAttribute("a", {"a0", "a1"}).ok());
  ASSERT_TRUE(net.AddAttribute("b", {"b0", "b1"}).ok());
  ASSERT_TRUE(net.AddAttribute("c", {"c0", "c1"}).ok());
  ASSERT_TRUE(net.AddDependency("a", "b").ok());
  ASSERT_TRUE(net.AddDependency("b", "c").ok());
  auto random_order = [&](std::vector<std::string> values) {
    if (rng.NextBernoulli(0.5)) std::swap(values[0], values[1]);
    return values;
  };
  ASSERT_TRUE(
      net.SetPreferenceOrder("a", {}, random_order({"a0", "a1"})).ok());
  for (const char* av : {"a0", "a1"}) {
    ASSERT_TRUE(
        net.SetPreferenceOrder("b", {av}, random_order({"b0", "b1"})).ok());
  }
  for (const char* bv : {"b0", "b1"}) {
    ASSERT_TRUE(
        net.SetPreferenceOrder("c", {bv}, random_order({"c0", "c1"})).ok());
  }

  auto ranked = net.RankOutcomes();
  ASSERT_TRUE(ranked.ok());
  auto rank_of = [&](const Outcome& o) {
    for (size_t i = 0; i < ranked->size(); ++i) {
      if ((*ranked)[i] == o) return i;
    }
    return ranked->size();
  };
  for (const auto& a : *ranked) {
    for (const auto& b : *ranked) {
      auto dom = net.FlipDominates(a, b);
      if (!dom.ok() || !dom.value()) continue;
      EXPECT_LT(rank_of(a), rank_of(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpNetLinearization,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace core
}  // namespace hypre
