// Combination tests: mixed AND/OR clause construction, combined intensity,
// and the dissertation's worked examples (§4.6, Example 6 / Table 9).
#include <gtest/gtest.h>

#include "hypre/combination.h"
#include "hypre/intensity.h"
#include "hypre/query_enhancement.h"
#include "hypre/ranking.h"
#include "workload/canonical.h"

namespace hypre {
namespace core {
namespace {

std::vector<PreferenceAtom> DealershipPreferences() {
  // Example 6: price 0.8, mileage 0.5, make 0.2.
  std::vector<PreferenceAtom> prefs;
  auto add = [&](const std::string& pred, double intensity) {
    auto atom = MakeAtom(pred, intensity);
    ASSERT_TRUE(atom.ok()) << atom.status().ToString();
    prefs.push_back(std::move(atom.value()));
  };
  add("price BETWEEN 7000 AND 16000", 0.8);
  add("mileage BETWEEN 20000 AND 50000", 0.5);
  add("make IN ('BMW', 'Honda')", 0.2);
  return prefs;
}

TEST(AtomTest, AttributeExtraction) {
  auto atom = MakeAtom("dblp.venue='VLDB' AND year>=2010", 0.5);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->attributes.size(), 2u);
  EXPECT_TRUE(atom->attributes.count("dblp.venue") > 0);
  EXPECT_TRUE(atom->attributes.count("year") > 0);
  EXPECT_EQ(atom->attribute_key, "dblp.venue|year");
  EXPECT_FALSE(MakeAtom("not valid sql !!!", 0.5).ok());
}

TEST(AtomTest, SortByIntensityDescIsStableAndDeterministic) {
  std::vector<PreferenceAtom> prefs = DealershipPreferences();
  std::reverse(prefs.begin(), prefs.end());
  SortByIntensityDesc(&prefs);
  EXPECT_DOUBLE_EQ(prefs[0].intensity, 0.8);
  EXPECT_DOUBLE_EQ(prefs[1].intensity, 0.5);
  EXPECT_DOUBLE_EQ(prefs[2].intensity, 0.2);
}

TEST(CombinationTest, SingleAndExtendOrInto) {
  std::vector<PreferenceAtom> prefs = DealershipPreferences();
  Combiner combiner(&prefs);
  Combination single = combiner.Single(0);
  EXPECT_EQ(single.NumPredicates(), 1u);
  EXPECT_FALSE(single.HasAnd());
  EXPECT_TRUE(single.ContainsMember(0));
  EXPECT_FALSE(single.ContainsMember(1));

  Combination both = combiner.AndExtend(single, 1);
  EXPECT_EQ(both.NumPredicates(), 2u);
  EXPECT_TRUE(both.HasAnd());
  EXPECT_EQ(both.groups.size(), 2u);

  // OrInto with a distinct attribute appends its own group.
  Combination with_make = combiner.OrInto(both, 2);
  EXPECT_EQ(with_make.groups.size(), 3u);
}

TEST(CombinationTest, OrIntoMergesSameAttribute) {
  std::vector<PreferenceAtom> prefs;
  auto add = [&](const std::string& pred, double intensity) {
    prefs.push_back(MakeAtom(pred, intensity).value());
  };
  add("dblp.venue='A'", 0.6);
  add("dblp.venue='B'", 0.4);
  add("dblp_author.aid=1", 0.5);
  Combiner combiner(&prefs);
  Combination c = combiner.MixedClause({0, 2, 1});
  // venue group holds {0, 1}; author group holds {2}.
  ASSERT_EQ(c.groups.size(), 2u);
  EXPECT_EQ(c.groups[0].members.size(), 2u);
  EXPECT_EQ(c.groups[1].members.size(), 1u);
  EXPECT_EQ(combiner.ToSql(c),
            "(dblp.venue='A' OR dblp.venue='B') AND dblp_author.aid=1");
}

TEST(CombinationTest, BuildExprShape) {
  std::vector<PreferenceAtom> prefs;
  prefs.push_back(MakeAtom("dblp.venue='INFOCOM'", 0.23).value());
  prefs.push_back(MakeAtom("dblp.venue='PODS'", 0.14).value());
  prefs.push_back(MakeAtom("dblp_author.aid=128", 0.19).value());
  prefs.push_back(MakeAtom("dblp_author.aid=116", 0.14).value());
  Combiner combiner(&prefs);
  // The §4.6 rewritten query: (venue OR venue) AND (aid OR aid).
  Combination c = combiner.MixedClause({0, 1, 2, 3});
  EXPECT_EQ(combiner.ToSql(c),
            "(dblp.venue='INFOCOM' OR dblp.venue='PODS') AND "
            "(dblp_author.aid=128 OR dblp_author.aid=116)");
}

TEST(CombinationTest, IntensityMixedClause) {
  std::vector<PreferenceAtom> prefs;
  prefs.push_back(MakeAtom("a=1", 0.6).value());
  prefs.push_back(MakeAtom("a=2", 0.4).value());
  prefs.push_back(MakeAtom("b=1", 0.5).value());
  Combiner combiner(&prefs);
  Combination c = combiner.MixedClause({0, 1, 2});
  // venue-group f_or(0.6, 0.4) = 0.5; AND with 0.5 -> 0.75.
  EXPECT_NEAR(combiner.ComputeIntensity(c), CombineAnd(0.5, 0.5), 1e-12);
}

TEST(CombinationTest, PureAndIntensityMatchesFold) {
  std::vector<PreferenceAtom> prefs = DealershipPreferences();
  Combiner combiner(&prefs);
  Combination c =
      combiner.AndExtend(combiner.AndExtend(combiner.Single(0), 1), 2);
  EXPECT_NEAR(combiner.ComputeIntensity(c), 0.92, 1e-12);
  EXPECT_EQ(c.SortedMembers(), (std::vector<size_t>{0, 1, 2}));
}

TEST(Example6, DealershipRanking) {
  // Table 9: t1 -> 0.92, t2 -> 0.9, t3 -> 0.6.
  reldb::Database db;
  ASSERT_TRUE(workload::BuildDealershipDatabase(&db).ok());
  reldb::Query base;
  base.from = "car";
  QueryEnhancer enhancer(&db, base, "car.id");

  std::vector<PreferenceAtom> prefs = DealershipPreferences();
  auto ranked = ScoreTuplesByPreferences(enhancer, prefs);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].key.AsString(), "t1");
  EXPECT_NEAR((*ranked)[0].intensity, 0.92, 1e-12);
  EXPECT_EQ((*ranked)[1].key.AsString(), "t2");
  EXPECT_NEAR((*ranked)[1].intensity, 0.9, 1e-12);
  EXPECT_EQ((*ranked)[2].key.AsString(), "t3");
  EXPECT_NEAR((*ranked)[2].intensity, 0.6, 1e-12);
}

}  // namespace
}  // namespace core
}  // namespace hypre
