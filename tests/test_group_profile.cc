// Group-profile tests (§8.2 future work #3).
#include <gtest/gtest.h>

#include "hypre/group_profile.h"

namespace hypre {
namespace core {
namespace {

HypreGraph ThreeMemberGraph() {
  HypreGraph graph;
  // Member 1: VLDB 0.6, SIGMOD 0.2.
  EXPECT_TRUE(graph.AddQuantitative({1, "venue='VLDB'", 0.6}).ok());
  EXPECT_TRUE(graph.AddQuantitative({1, "venue='SIGMOD'", 0.2}).ok());
  // Member 2: VLDB 0.3, PODS disliked.
  EXPECT_TRUE(graph.AddQuantitative({2, "venue='VLDB'", 0.3}).ok());
  EXPECT_TRUE(graph.AddQuantitative({2, "venue='PODS'", -0.4}).ok());
  // Member 3: VLDB 0.9 only.
  EXPECT_TRUE(graph.AddQuantitative({3, "venue='VLDB'", 0.9}).ok());
  return graph;
}

double IntensityOf(const std::vector<QuantitativePreference>& prefs,
                   const std::string& predicate) {
  for (const auto& p : prefs) {
    if (p.predicate == predicate) return p.intensity;
  }
  ADD_FAILURE() << "missing " << predicate;
  return -99;
}

TEST(GroupProfileTest, AverageDilutesByGroupSize) {
  HypreGraph graph = ThreeMemberGraph();
  auto profile = BuildGroupProfile(graph, {1, 2, 3}, 100);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  // VLDB held by all three: (0.6+0.3+0.9)/3.
  EXPECT_NEAR(IntensityOf(*profile, "venue='VLDB'"), 0.6, 1e-12);
  // SIGMOD held by one of three: diluted 0.2/3.
  EXPECT_NEAR(IntensityOf(*profile, "venue='SIGMOD'"), 0.2 / 3, 1e-12);
  // The dislike carries through.
  EXPECT_NEAR(IntensityOf(*profile, "venue='PODS'"), -0.4 / 3, 1e-12);
  for (const auto& p : *profile) EXPECT_EQ(p.uid, 100);
}

TEST(GroupProfileTest, MinAndMaxAggregation) {
  HypreGraph graph = ThreeMemberGraph();
  GroupProfileConfig config;
  config.aggregation = GroupProfileConfig::Aggregation::kMin;
  auto min_profile = BuildGroupProfile(graph, {1, 2, 3}, 100, config);
  ASSERT_TRUE(min_profile.ok());
  EXPECT_NEAR(IntensityOf(*min_profile, "venue='VLDB'"), 0.3, 1e-12);

  config.aggregation = GroupProfileConfig::Aggregation::kMax;
  auto max_profile = BuildGroupProfile(graph, {1, 2, 3}, 100, config);
  ASSERT_TRUE(max_profile.ok());
  EXPECT_NEAR(IntensityOf(*max_profile, "venue='VLDB'"), 0.9, 1e-12);
}

TEST(GroupProfileTest, MinSupportFiltersNonConsensus) {
  HypreGraph graph = ThreeMemberGraph();
  GroupProfileConfig config;
  config.min_support = 2;
  auto profile = BuildGroupProfile(graph, {1, 2, 3}, 100, config);
  ASSERT_TRUE(profile.ok());
  // Only VLDB is held by >= 2 members.
  ASSERT_EQ(profile->size(), 1u);
  EXPECT_EQ((*profile)[0].predicate, "venue='VLDB'");
}

TEST(GroupProfileTest, ExcludeNegative) {
  HypreGraph graph = ThreeMemberGraph();
  GroupProfileConfig config;
  config.include_negative = false;
  auto profile = BuildGroupProfile(graph, {1, 2, 3}, 100, config);
  ASSERT_TRUE(profile.ok());
  for (const auto& p : *profile) {
    EXPECT_NE(p.predicate, "venue='PODS'");
  }
}

TEST(GroupProfileTest, Validation) {
  HypreGraph graph = ThreeMemberGraph();
  EXPECT_FALSE(BuildGroupProfile(graph, {}, 100).ok());
  EXPECT_FALSE(BuildGroupProfile(graph, {1, 100}, 100).ok());
}

TEST(GroupProfileTest, MaterializeInsertsIntoGraph) {
  HypreGraph graph = ThreeMemberGraph();
  auto count = MaterializeGroupProfile(&graph, {1, 2, 3}, 100);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 3u);
  auto prefs = graph.ListPreferences(100, /*include_negative=*/true);
  EXPECT_EQ(prefs.size(), 3u);
  // The group user behaves like any other: further qualitative statements
  // can refine it.
  EXPECT_TRUE(
      graph.AddQualitative({100, "venue='VLDB'", "venue='SIGMOD'", 0.2})
          .ok());
  EXPECT_TRUE(graph.CheckInvariants().ok());
}

TEST(GroupProfileTest, MemberWithEmptyProfileIsHarmless) {
  HypreGraph graph = ThreeMemberGraph();
  auto profile = BuildGroupProfile(graph, {1, 2, 3, 999}, 100);
  ASSERT_TRUE(profile.ok());
  // Dilution now over four members.
  EXPECT_NEAR(IntensityOf(*profile, "venue='VLDB'"), (0.6 + 0.3 + 0.9) / 4,
              1e-12);
}

}  // namespace
}  // namespace core
}  // namespace hypre
