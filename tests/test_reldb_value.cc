// Unit tests for reldb::Value semantics: typing, comparison, hashing.
#include <gtest/gtest.h>

#include <unordered_set>

#include "reldb/value.h"

namespace hypre {
namespace reldb {
namespace {

TEST(ValueTest, Types) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Real(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Str("a").type(), ValueType::kString);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Real(1.0).is_numeric());
  EXPECT_FALSE(Value::Str("a").is_numeric());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, ExactInt64Comparison) {
  // Values that would collide if compared as doubles.
  int64_t big = (1LL << 53) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Int(big - 1)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("a").Compare(Value::Str("b")), 0);
  EXPECT_EQ(Value::Str("ab").Compare(Value::Str("ab")), 0);
}

TEST(ValueTest, TypeRankOrdering) {
  // NULL < numeric < string in the total order.
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Int(1000000).Compare(Value::Str("")), 0);
}

TEST(ValueTest, SqlEqualsRejectsNull) {
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_FALSE(Value::Int(0).Equals(Value::Null()));
  EXPECT_TRUE(Value::Int(3).Equals(Value::Int(3)));
}

TEST(ValueTest, TotalOrderTreatsNullsEqual) {
  // Compare (container order) must be total: NULL == NULL there.
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Real(2.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(ValueTest, UnorderedSetDedup) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(2));
  set.insert(Value::Real(2.0));  // numerically equal -> deduped
  set.insert(Value::Str("2"));   // different type -> distinct
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Real(0.5).ToString(), "0.5");
}

TEST(ValueTest, NumericValueWidening) {
  EXPECT_DOUBLE_EQ(Value::Int(7).NumericValue(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Real(7.25).NumericValue(), 7.25);
}

// Comparison is antisymmetric and transitive over a mixed sample
// (property-style sweep).
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderProperty, Antisymmetry) {
  std::vector<Value> sample{Value::Null(),     Value::Int(-3),
                            Value::Int(0),     Value::Int(5),
                            Value::Real(-2.5), Value::Real(5.0),
                            Value::Str(""),    Value::Str("abc")};
  const Value& a = sample[GetParam() % sample.size()];
  for (const Value& b : sample) {
    // sign(a cmp b) == -sign(b cmp a)
    int ab = a.Compare(b);
    int ba = b.Compare(a);
    EXPECT_EQ(ab > 0, ba < 0);
    EXPECT_EQ(ab == 0, ba == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSampleValues, ValueOrderProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace reldb
}  // namespace hypre
