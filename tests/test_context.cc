// Contextual-preference tests (Definition 11, Figure 2).
#include <gtest/gtest.h>

#include "hypre/context.h"

namespace hypre {
namespace core {
namespace {

QuantitativePreference Pref(const char* tag) {
  return QuantitativePreference{1, tag, 0.5};
}

TEST(ContextCoversTest, Basics) {
  // (friends, good, ALL) covers (friends, good, Easter).
  EXPECT_TRUE(Covers({"friends", "good", "ALL"},
                     {"friends", "good", "Easter"}));
  EXPECT_TRUE(Covers({"ALL", "ALL", "ALL"}, {"family", "bad", "work"}));
  EXPECT_TRUE(Covers({"friends"}, {"friends"}));  // covers itself
  EXPECT_FALSE(Covers({"friends", "good", "ALL"},
                      {"family", "good", "Easter"}));
  EXPECT_FALSE(Covers({"friends"}, {"friends", "good"}));  // arity mismatch
}

class ContextualProfileTest : public ::testing::Test {
 protected:
  // The Figure 2 profile: p1..p7 over (company, mood, period).
  void SetUp() override {
    profile_ = std::make_unique<ContextualProfile>(
        std::vector<std::string>{"company", "mood", "period"});
    auto add = [&](std::initializer_list<const char*> state,
                   const char* tag) {
      ContextState cs;
      for (const char* value : state) cs.push_back(value);
      ASSERT_TRUE(profile_->AddContextPreference(cs, Pref(tag)).ok());
    };
    add({"friends", "good", "holidays"}, "P1");
    add({"friends", "good", "ALL"}, "P2");
    add({"friends", "good", "Easter"}, "P3");
    add({"friends", "ALL", "Christmas"}, "P4");
    add({"ALL", "ALL", "Easter"}, "P5");
    add({"family", "ALL", "Easter"}, "P6");
    add({"ALL", "ALL", "ALL"}, "P7");
  }
  std::unique_ptr<ContextualProfile> profile_;
};

TEST_F(ContextualProfileTest, StatesRecorded) {
  EXPECT_EQ(profile_->States().size(), 7u);
}

TEST_F(ContextualProfileTest, ValidationErrors) {
  EXPECT_FALSE(
      profile_->AddContextPreference({"friends", "good"}, Pref("x")).ok());
  EXPECT_FALSE(
      profile_->AddContextPreference({"", "good", "Easter"}, Pref("x")).ok());
  EXPECT_FALSE(profile_->Resolve({"friends", "good", "ALL"}).ok());
  EXPECT_FALSE(profile_->Resolve({"friends"}).ok());
}

TEST_F(ContextualProfileTest, TightCoverEdgesMatchFigure2) {
  // Figure 2's DAG: e.g. (friends,good,ALL)=P2 tightly covers
  // (friends,good,holidays)=P1 and (friends,good,Easter)=P3; the root
  // (ALL,ALL,ALL)=P7 tightly covers P2, P4 (via no intermediate), P5 — but
  // NOT P1/P3/P6 (P2/P5 sit between).
  auto states = profile_->States();
  auto index_of = [&](const ContextState& s) {
    for (size_t i = 0; i < states.size(); ++i) {
      if (states[i] == s) return i;
    }
    return states.size();
  };
  size_t p1 = index_of({"friends", "good", "holidays"});
  size_t p2 = index_of({"friends", "good", "ALL"});
  size_t p3 = index_of({"friends", "good", "Easter"});
  size_t p5 = index_of({"ALL", "ALL", "Easter"});
  size_t p6 = index_of({"family", "ALL", "Easter"});
  size_t p7 = index_of({"ALL", "ALL", "ALL"});

  auto edges = profile_->TightCoverEdges();
  auto has_edge = [&](size_t from, size_t to) {
    return std::find(edges.begin(), edges.end(),
                     std::make_pair(from, to)) != edges.end();
  };
  EXPECT_TRUE(has_edge(p1, p2));
  EXPECT_TRUE(has_edge(p3, p2));
  EXPECT_TRUE(has_edge(p3, p5));
  EXPECT_TRUE(has_edge(p6, p5));
  EXPECT_TRUE(has_edge(p2, p7));
  EXPECT_TRUE(has_edge(p5, p7));
  EXPECT_FALSE(has_edge(p1, p7));  // P2 sits in between
  EXPECT_FALSE(has_edge(p3, p7));
  EXPECT_FALSE(has_edge(p6, p7));  // P5 sits in between
  EXPECT_FALSE(has_edge(p2, p1));  // direction: specific -> general
}

TEST_F(ContextualProfileTest, ResolveOrdersMostSpecificFirst) {
  auto prefs = profile_->Resolve({"friends", "good", "Easter"});
  ASSERT_TRUE(prefs.ok()) << prefs.status().ToString();
  // Matching states: P3 (3 concrete), P2 (2), P5 (1), P7 (0).
  ASSERT_EQ(prefs->size(), 4u);
  EXPECT_EQ((*prefs)[0].predicate, "P3");
  EXPECT_EQ((*prefs)[1].predicate, "P2");
  EXPECT_EQ((*prefs)[2].predicate, "P5");
  EXPECT_EQ((*prefs)[3].predicate, "P7");
}

TEST_F(ContextualProfileTest, ResolveMostSpecificOverrides) {
  auto prefs = profile_->ResolveMostSpecific({"friends", "good", "Easter"});
  ASSERT_TRUE(prefs.ok());
  ASSERT_EQ(prefs->size(), 1u);
  EXPECT_EQ((*prefs)[0].predicate, "P3");

  // A context matched only by the root: the generic profile applies.
  auto generic = profile_->ResolveMostSpecific({"family", "bad", "work"});
  ASSERT_TRUE(generic.ok());
  ASSERT_EQ(generic->size(), 1u);
  EXPECT_EQ((*generic)[0].predicate, "P7");
}

TEST_F(ContextualProfileTest, SameStateAccumulatesPreferences) {
  ASSERT_TRUE(profile_
                  ->AddContextPreference({"friends", "good", "Easter"},
                                         Pref("P3b"))
                  .ok());
  auto prefs = profile_->ResolveMostSpecific({"friends", "good", "Easter"});
  ASSERT_TRUE(prefs.ok());
  EXPECT_EQ(prefs->size(), 2u);
  EXPECT_EQ(profile_->States().size(), 7u);  // no new state created
}

TEST(ContextualProfileEmptyTest, ResolveOnEmptyProfile) {
  ContextualProfile profile({"mood"});
  auto prefs = profile.Resolve({"good"});
  ASSERT_TRUE(prefs.ok());
  EXPECT_TRUE(prefs->empty());
}

}  // namespace
}  // namespace core
}  // namespace hypre
