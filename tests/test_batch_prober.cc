// BatchProber tests: randomized differential sweep of the batched, sharded
// probe kernels against the scalar CombinationProber across shard widths
// (1 word, 4 words, universe-in-one-shard), thread counts (1, 2, 4, 8,
// auto), schedulers (static split vs work-stealing on a real 8-slot pool),
// and SIMD on/off; degenerate frontiers; the probe-statistics contract
// under prefetch and batching; and byte-identical algorithm outputs with
// batching on vs off. Every configuration must be BYTE-identical to the
// scalar path — the batch layer's core contract.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "hypre/parallel/task_pool.h"
#include "hypre/algorithms/bias_random.h"
#include "hypre/algorithms/combine_two.h"
#include "hypre/algorithms/exhaustive.h"
#include "hypre/algorithms/partially_combine_all.h"
#include "hypre/algorithms/peps.h"
#include "hypre/batch_prober.h"
#include "test_fixtures.h"

namespace hypre {
namespace core {
namespace {

using reldb::Row;
using reldb::Schema;
using reldb::Value;
using reldb::ValueType;
using testing_fixtures::BuildMiniDblp;
using testing_fixtures::MiniBaseQuery;
using testing_fixtures::MiniPreferences;

// A real work-stealing pool for the parallel matrix entries: the machine
// running the tests may report 1 hardware thread (which would make the
// shared pool run everything inline), so the sweep pins an explicit 8-slot
// pool to genuinely exercise steals.
parallel::TaskPool* TestPool() {
  static parallel::TaskPool pool(7);  // 7 workers + caller = 8 slots
  return &pool;
}

// The shard-width / thread-count / scheduler / SIMD matrix every
// differential sweep runs: one-word shards (maximum shard count), small
// shards, and a shard wide enough to hold any test universe in one piece;
// serial, 4-way (legacy matrix), and 8-way on both schedulers; SIMD kernels
// on and off; plus num_threads = 0 (auto-detect).
std::vector<ProbeOptions> OptionMatrix() {
  std::vector<ProbeOptions> matrix;
  for (size_t shard_words : {size_t{1}, size_t{4}, size_t{1} << 20}) {
    for (size_t num_threads : {size_t{1}, size_t{4}}) {
      matrix.push_back(ProbeOptions{shard_words, num_threads, true});
    }
    for (ProbeScheduler scheduler :
         {ProbeScheduler::kStaticSplit, ProbeScheduler::kWorkStealing}) {
      for (bool simd : {true, false}) {
        ProbeOptions options{shard_words, 8, true};
        options.scheduler = scheduler;
        options.pool = TestPool();
        options.simd = simd;
        matrix.push_back(options);
      }
    }
    // Auto-detected thread count on the work-stealing pool.
    ProbeOptions auto_detect{shard_words, 0, true};
    auto_detect.pool = TestPool();
    matrix.push_back(auto_detect);
  }
  return matrix;
}

std::string DescribeOptions(const ProbeOptions& options) {
  std::string desc = "shard_words=" + std::to_string(options.shard_words) +
                     " threads=" + std::to_string(options.num_threads);
  desc += options.scheduler == ProbeScheduler::kWorkStealing ? " ws" : " static";
  if (!options.simd) desc += " scalar-kernels";
  return desc;
}

/// Random papers/tags workload (same shape as the probe-engine fuzz) big
/// enough that the universe spans several bitmap words.
class RandomWorkload {
 public:
  explicit RandomWorkload(uint64_t seed) : rng_(seed) {
    auto papers =
        db_.CreateTable("p", Schema({{"pid", ValueType::kInt64},
                                     {"venue", ValueType::kString}}));
    EXPECT_TRUE(papers.ok());
    auto tags = db_.CreateTable(
        "tag", Schema({{"pid", ValueType::kInt64}, {"t", ValueType::kInt64}}));
    EXPECT_TRUE(tags.ok());
    const char* venues[] = {"V1", "V2", "V3", "V4"};
    for (int64_t pid = 0; pid < 300; ++pid) {
      (*papers)->AppendUnchecked(
          Row{Value::Int(pid), Value::Str(venues[rng_.NextBounded(4)])});
      size_t n = 1 + rng_.NextBounded(3);
      std::set<int64_t> used;
      for (size_t k = 0; k < n; ++k) {
        int64_t tag = rng_.NextInt(0, 7);
        if (used.insert(tag).second) {
          (*tags)->AppendUnchecked(Row{Value::Int(pid), Value::Int(tag)});
        }
      }
    }
    EXPECT_TRUE((*papers)->CreateHashIndex("venue").ok());
    EXPECT_TRUE((*tags)->CreateHashIndex("t").ok());
    EXPECT_TRUE((*tags)->CreateHashIndex("pid").ok());

    reldb::Query base;
    base.from = "p";
    base.joins.push_back({"tag", "p.pid", "pid"});
    enhancer_ = std::make_unique<QueryEnhancer>(&db_, base, "p.pid");

    auto add = [&](const std::string& pred, double intensity) {
      auto atom = MakeAtom(pred, intensity);
      ASSERT_TRUE(atom.ok()) << atom.status().ToString();
      prefs_.push_back(std::move(atom.value()));
    };
    add("p.venue='V1'", 0.9);
    add("p.venue='V2'", 0.8);
    add("tag.t=0", 0.7);
    add("tag.t=1", 0.6);
    add("tag.t=2", 0.5);
    add("tag.t=3", 0.4);
    add("p.venue='V3'", 0.3);
    add("tag.t=4", 0.2);
    SortByIntensityDesc(&prefs_);
  }

  /// A random combination of 1..4 members (mixed AND/OR via the §4.6 rule).
  Combination RandomCombination(const Combiner& combiner) {
    size_t n = prefs_.size();
    size_t size = 1 + rng_.NextBounded(4);
    std::set<size_t> members;
    while (members.size() < size) members.insert(rng_.NextBounded(n));
    return combiner.MixedClause(
        std::vector<size_t>(members.begin(), members.end()));
  }

  reldb::Database db_;
  std::unique_ptr<QueryEnhancer> enhancer_;
  std::vector<PreferenceAtom> prefs_;
  Rng rng_;
};

TEST(BatchProber, CountAndEvalMatchScalarAcrossShardWidthsAndThreads) {
  RandomWorkload w(1234);
  Combiner combiner(&w.prefs_);
  CombinationProber scalar(&combiner, &w.enhancer_->probe_engine());

  // Frontier with mixed shapes, duplicates, and the empty combination.
  std::vector<Combination> frontier;
  for (int i = 0; i < 40; ++i) frontier.push_back(w.RandomCombination(combiner));
  frontier.push_back(frontier.front());  // duplicate
  frontier.push_back(Combination{});     // degenerate: no groups

  std::vector<size_t> expected_counts;
  std::vector<KeyBitmap> expected_bits(frontier.size());
  for (size_t f = 0; f < frontier.size(); ++f) {
    auto count = scalar.Count(frontier[f]);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    expected_counts.push_back(count.value());
    ASSERT_TRUE(scalar.BitsInto(frontier[f], &expected_bits[f]).ok());
  }

  for (const ProbeOptions& options : OptionMatrix()) {
    SCOPED_TRACE(DescribeOptions(options));
    BatchProber batch(&scalar, options);
    auto counts = batch.CountBatch(frontier);
    ASSERT_TRUE(counts.ok()) << counts.status().ToString();
    EXPECT_EQ(*counts, expected_counts);

    std::vector<KeyBitmap> bits;
    ASSERT_TRUE(batch.EvalBatch(frontier, &bits).ok());
    ASSERT_EQ(bits.size(), frontier.size());
    for (size_t f = 0; f < frontier.size(); ++f) {
      EXPECT_EQ(bits[f], expected_bits[f]) << "frontier item " << f;
    }

    // Degenerate: the empty frontier.
    auto empty_counts = batch.CountBatch({});
    ASSERT_TRUE(empty_counts.ok());
    EXPECT_TRUE(empty_counts->empty());
    std::vector<KeyBitmap> empty_bits;
    ASSERT_TRUE(batch.EvalBatch({}, &empty_bits).ok());
    EXPECT_TRUE(empty_bits.empty());
  }
}

TEST(BatchProber, CountExtensionsAndPairsMatchScalarAndCount) {
  RandomWorkload w(99);
  Combiner combiner(&w.prefs_);
  CombinationProber scalar(&combiner, &w.enhancer_->probe_engine());
  size_t n = w.prefs_.size();

  KeyBitmap base;
  ASSERT_TRUE(scalar.BitsInto(w.RandomCombination(combiner), &base).ok());
  std::vector<size_t> candidates;
  for (size_t k = 0; k < n; ++k) candidates.push_back(k);
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }

  for (const ProbeOptions& options : OptionMatrix()) {
    SCOPED_TRACE(DescribeOptions(options));
    BatchProber batch(&scalar, options);

    auto ext = batch.CountExtensions(base, candidates);
    ASSERT_TRUE(ext.ok()) << ext.status().ToString();
    ASSERT_EQ(ext->size(), candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      auto bits = scalar.PreferenceBits(candidates[c]);
      ASSERT_TRUE(bits.ok());
      EXPECT_EQ((*ext)[c], KeyBitmap::AndCount(base, **bits));
    }
    auto no_ext = batch.CountExtensions(base, {});
    ASSERT_TRUE(no_ext.ok());
    EXPECT_TRUE(no_ext->empty());

    auto pair_counts = batch.CountPairs(pairs);
    ASSERT_TRUE(pair_counts.ok()) << pair_counts.status().ToString();
    ASSERT_EQ(pair_counts->size(), pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      auto a = scalar.PreferenceBits(pairs[p].first);
      auto b = scalar.PreferenceBits(pairs[p].second);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ((*pair_counts)[p], KeyBitmap::AndCount(**a, **b));
    }
  }
}

TEST(BatchProber, SkewedFrontierByteIdenticalUnderWorkStealing) {
  // Steal-heavy shape: a frontier mixing many cheap single-member
  // combinations with a block of maximum-size ones, so seeded tile ranges
  // have wildly different costs and the pool must rebalance. Counts and
  // bitmaps must stay byte-identical to the scalar path.
  RandomWorkload w(31337);
  Combiner combiner(&w.prefs_);
  CombinationProber scalar(&combiner, &w.enhancer_->probe_engine());
  size_t n = w.prefs_.size();

  std::vector<Combination> frontier;
  std::vector<size_t> all_members;
  for (size_t k = 0; k < n; ++k) all_members.push_back(k);
  for (int rep = 0; rep < 60; ++rep) {
    frontier.push_back(combiner.Single(rep % n));  // cheap: one member
  }
  for (int rep = 0; rep < 12; ++rep) {
    frontier.push_back(combiner.MixedClause(all_members));  // heavy: all 8
  }
  for (int rep = 0; rep < 60; ++rep) {
    frontier.push_back(combiner.Single((rep + 3) % n));
  }

  std::vector<size_t> expected;
  std::vector<KeyBitmap> expected_bits(frontier.size());
  for (size_t f = 0; f < frontier.size(); ++f) {
    auto count = scalar.Count(frontier[f]);
    ASSERT_TRUE(count.ok());
    expected.push_back(count.value());
    ASSERT_TRUE(scalar.BitsInto(frontier[f], &expected_bits[f]).ok());
  }

  for (size_t shard_words : {size_t{1}, size_t{4}}) {
    for (bool simd : {true, false}) {
      ProbeOptions options{shard_words, 8, true};
      options.pool = TestPool();
      options.simd = simd;
      SCOPED_TRACE(DescribeOptions(options));
      BatchProber batch(&scalar, options);
      auto counts = batch.CountBatch(frontier);
      ASSERT_TRUE(counts.ok());
      EXPECT_EQ(*counts, expected);
      std::vector<KeyBitmap> bits;
      ASSERT_TRUE(batch.EvalBatch(frontier, &bits).ok());
      for (size_t f = 0; f < frontier.size(); ++f) {
        ASSERT_EQ(bits[f], expected_bits[f]) << "frontier item " << f;
      }
    }
  }
}

TEST(BatchProber, MoreThreadsThanShardsStaysExact) {
  // Regression for the tail imbalance of the old ceil-division static
  // split: with num_threads > num_shards the per-worker quota rounded up,
  // so early workers swallowed everything and later ones got empty ranges
  // (and with shards % threads != 0 the last worker could carry half the
  // quota of the rest). The split now partitions balanced and never hands
  // out empty ranges; both schedulers must stay exact whatever the
  // thread/shard ratio.
  RandomWorkload w(2024);
  Combiner combiner(&w.prefs_);
  CombinationProber scalar(&combiner, &w.enhancer_->probe_engine());

  std::vector<Combination> frontier;
  for (int i = 0; i < 10; ++i) frontier.push_back(w.RandomCombination(combiner));
  std::vector<size_t> expected;
  for (const auto& c : frontier) {
    auto count = scalar.Count(c);
    ASSERT_TRUE(count.ok());
    expected.push_back(count.value());
  }

  // The test universe is a few hundred bits (<= 6 words), so shard_words of
  // {1 << 20, 3, 1} give ~1, 2-3, and 6+ shards respectively.
  for (size_t shard_words : {size_t{1} << 20, size_t{3}, size_t{1}}) {
    for (size_t num_threads : {size_t{2}, size_t{3}, size_t{5}, size_t{8},
                               size_t{16}}) {
      for (ProbeScheduler scheduler :
           {ProbeScheduler::kStaticSplit, ProbeScheduler::kWorkStealing}) {
        ProbeOptions options{shard_words, num_threads, true};
        options.scheduler = scheduler;
        options.pool = TestPool();
        SCOPED_TRACE(DescribeOptions(options));
        BatchProber batch(&scalar, options);
        auto counts = batch.CountBatch(frontier);
        ASSERT_TRUE(counts.ok());
        EXPECT_EQ(*counts, expected);
      }
    }
  }
}

TEST(BatchProber, PureAndChainShortcutMatchesMaterializedPath) {
  // The generalized Count shortcut: AND chains of every length must agree
  // with the materializing BitsInto+Count evaluation.
  RandomWorkload w(7);
  Combiner combiner(&w.prefs_);
  CombinationProber prober(&combiner, &w.enhancer_->probe_engine());
  Combination chain;
  for (size_t len = 1; len <= w.prefs_.size(); ++len) {
    chain = len == 1 ? combiner.Single(0) : combiner.AndExtend(chain, len - 1);
    // Force the chain into single-member groups regardless of attribute
    // keys: AndExtend always appends a new group.
    ASSERT_EQ(chain.groups.size(), len);
    auto fast = prober.Count(chain);
    ASSERT_TRUE(fast.ok());
    KeyBitmap bits;
    ASSERT_TRUE(prober.BitsInto(chain, &bits).ok());
    EXPECT_EQ(fast.value(), bits.Count()) << "chain length " << len;
  }
}

TEST(BatchProber, PrefetchedLeavesMatchOnDemandLeaves) {
  // Two engines over the same data: one bulk-prefetched, one probing leaf
  // by leaf. Every preference bitmap must come out identical.
  reldb::Database db;
  BuildMiniDblp(&db);
  QueryEnhancer prefetched(&db, MiniBaseQuery(), "dblp.pid");
  QueryEnhancer on_demand(&db, MiniBaseQuery(), "dblp.pid");
  std::vector<PreferenceAtom> prefs = MiniPreferences();

  std::vector<reldb::ExprPtr> exprs;
  for (const auto& pref : prefs) exprs.push_back(pref.expr);
  ASSERT_TRUE(prefetched.probe_engine().PrefetchLeaves(exprs).ok());

  for (const auto& pref : prefs) {
    auto a = prefetched.probe_engine().EvalBitmap(pref.expr);
    auto b = on_demand.probe_engine().EvalBitmap(pref.expr);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << pref.predicate;
  }
}

TEST(BatchProber, ProbeStatisticsContract) {
  // Locks the statistics contract from probe_engine.h: one leaf query per
  // distinct leaf (prefetched or not), one cache hit per answered probe.
  reldb::Database db;
  BuildMiniDblp(&db);
  QueryEnhancer enhancer(&db, MiniBaseQuery(), "dblp.pid");
  const ProbeEngine& engine = enhancer.probe_engine();
  std::vector<PreferenceAtom> prefs = MiniPreferences();
  Combiner combiner(&prefs);
  CombinationProber prober(&combiner, &engine);
  BatchProber batch(&prober, ProbeOptions{4, 2, true});

  // Bulk prefetch: 5 preferences = 5 distinct leaves, ONE executor pass but
  // one counted leaf query per leaf; no probes answered yet.
  ASSERT_TRUE(prober.PrefetchAll().ok());
  EXPECT_EQ(engine.num_leaf_queries(), 5u);
  EXPECT_EQ(engine.num_cache_hits(), 0u);
  // Idempotent: nothing new to load.
  ASSERT_TRUE(prober.PrefetchAll().ok());
  EXPECT_EQ(engine.num_leaf_queries(), 5u);

  // A scalar combination probe answers one probe from cache.
  ASSERT_TRUE(prober.Count(combiner.MixedClause({0, 1})).ok());
  EXPECT_EQ(engine.num_cache_hits(), 1u);
  EXPECT_EQ(engine.num_leaf_queries(), 5u);  // no new DB work

  // A batch of M combinations answers M probes.
  std::vector<Combination> frontier = {combiner.MixedClause({0, 1}),
                                       combiner.MixedClause({1, 2, 3}),
                                       combiner.MixedClause({0, 4})};
  ASSERT_TRUE(batch.CountBatch(frontier).ok());
  EXPECT_EQ(engine.num_cache_hits(), 4u);

  // An extension batch answers one probe per candidate.
  KeyBitmap base;
  ASSERT_TRUE(prober.BitsInto(combiner.Single(0), &base).ok());
  ASSERT_TRUE(batch.CountExtensions(base, {1, 2}).ok());
  EXPECT_EQ(engine.num_cache_hits(), 6u);

  // The CountMatching memo hit still counts (PR 1 behavior preserved).
  auto pred = prefs[0].expr;
  ASSERT_TRUE(engine.CountMatching(pred).ok());
  size_t hits_before = engine.num_cache_hits();
  ASSERT_TRUE(engine.CountMatching(pred).ok());
  EXPECT_EQ(engine.num_cache_hits(), hits_before + 1);
  EXPECT_EQ(engine.num_leaf_queries(), 5u);
}

// --- Byte-identical algorithm outputs, batching on vs off ------------------

void ExpectRecordsIdentical(const std::vector<CombinationRecord>& a,
                            const std::vector<CombinationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "record " << i);
    EXPECT_EQ(a[i].num_predicates, b[i].num_predicates);
    EXPECT_EQ(a[i].num_tuples, b[i].num_tuples);
    EXPECT_EQ(a[i].intensity, b[i].intensity);  // exact, not approximate
    EXPECT_EQ(a[i].predicate_sql, b[i].predicate_sql);
    EXPECT_EQ(a[i].combination.SortedMembers(), b[i].combination.SortedMembers());
  }
}

class BatchVsScalarAlgorithms : public ::testing::Test {
 protected:
  void SetUp() override {
    scalar_.batching = false;
    batched_ = ProbeOptions{2, 4, true};  // tiny shards + threads: max stress
  }

  ProbeOptions scalar_;
  ProbeOptions batched_;
};

TEST_F(BatchVsScalarAlgorithms, PepsOrderAndTopKByteIdentical) {
  RandomWorkload w(42);
  SortByIntensityDesc(&w.prefs_);
  for (PepsMode mode : {PepsMode::kComplete, PepsMode::kApproximate}) {
    Peps off(&w.prefs_, w.enhancer_.get(), scalar_);
    Peps on(&w.prefs_, w.enhancer_.get(), batched_);
    auto order_off = off.GenerateOrder(mode);
    auto order_on = on.GenerateOrder(mode);
    ASSERT_TRUE(order_off.ok() && order_on.ok());
    ExpectRecordsIdentical(*order_off, *order_on);
    EXPECT_EQ(off.num_expansion_probes(), on.num_expansion_probes());
    EXPECT_EQ(off.pairs().size(), on.pairs().size());

    auto topk_off = off.TopK(25, mode);
    auto topk_on = on.TopK(25, mode);
    ASSERT_TRUE(topk_off.ok() && topk_on.ok());
    ASSERT_EQ(topk_off->size(), topk_on->size());
    for (size_t i = 0; i < topk_off->size(); ++i) {
      EXPECT_EQ((*topk_off)[i].key, (*topk_on)[i].key) << "rank " << i;
      EXPECT_EQ((*topk_off)[i].intensity, (*topk_on)[i].intensity);
    }
  }
}

TEST_F(BatchVsScalarAlgorithms, ExhaustiveCombineTwoPartiallyByteIdentical) {
  RandomWorkload w(77);
  auto ex_off = ExhaustiveAndCombinations(w.prefs_, *w.enhancer_, 20, scalar_);
  auto ex_on = ExhaustiveAndCombinations(w.prefs_, *w.enhancer_, 20, batched_);
  ASSERT_TRUE(ex_off.ok() && ex_on.ok());
  ExpectRecordsIdentical(*ex_off, *ex_on);

  for (CombineSemantics semantics :
       {CombineSemantics::kAnd, CombineSemantics::kAndOr}) {
    auto ct_off = CombineTwo(w.prefs_, *w.enhancer_, semantics, scalar_);
    auto ct_on = CombineTwo(w.prefs_, *w.enhancer_, semantics, batched_);
    ASSERT_TRUE(ct_off.ok() && ct_on.ok());
    ExpectRecordsIdentical(*ct_off, *ct_on);
  }

  auto pca_off = PartiallyCombineAll(w.prefs_, *w.enhancer_, scalar_);
  auto pca_on = PartiallyCombineAll(w.prefs_, *w.enhancer_, batched_);
  ASSERT_TRUE(pca_off.ok() && pca_on.ok());
  ExpectRecordsIdentical(*pca_off, *pca_on);
}

TEST_F(BatchVsScalarAlgorithms, BiasRandomByteIdentical) {
  RandomWorkload w(5);
  for (uint64_t seed : {1ull, 17ull, 123ull}) {
    auto off = BiasRandomSelection(w.prefs_, *w.enhancer_, seed, scalar_);
    auto on = BiasRandomSelection(w.prefs_, *w.enhancer_, seed, batched_);
    ASSERT_TRUE(off.ok() && on.ok());
    ExpectRecordsIdentical(off->records, on->records);
    EXPECT_EQ(off->valid_checks, on->valid_checks);
    EXPECT_EQ(off->invalid_checks, on->invalid_checks);
  }
}

}  // namespace
}  // namespace core
}  // namespace hypre
