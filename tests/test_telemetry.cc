// Telemetry tests: sharded counter/histogram correctness under concurrent
// writers, trace span nesting and truncation, export formats (JSON +
// Prometheus text golden), and the end-to-end guarantees the subsystem
// makes to the engine:
//  * tracing a request changes NOTHING about its results or ProbeStats;
//  * one mutate + refresh + enumerate round-trip produces spans from at
//    least four layers (api, prober, delta, storage);
//  * the background auto-checkpoint never blocks the request path;
//  * TaskPool's scheduler counters actually see skewed work (steals/parks).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hypre/api/session.h"
#include "hypre/parallel/task_pool.h"
#include "hypre/storage/env.h"
#include "hypre/storage/store.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"
#include "test_fixtures.h"

namespace hypre {
namespace telemetry {
namespace {

using core::testing_fixtures::BuildMiniDblp;
using core::testing_fixtures::MiniBaseQuery;
using core::testing_fixtures::MiniPreferences;

std::string MakeTempDir(const std::string& tag) {
  std::string tpl = ::testing::TempDir() + "hypre_" + tag + "_XXXXXX";
  std::vector<char> buf(tpl.begin(), tpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << tpl;
  return got == nullptr ? std::string() : std::string(got);
}

// --- Counter / Histogram shard folding --------------------------------------

TEST(TelemetryCounterTest, FoldsConcurrentWriters) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Add(42);
  EXPECT_EQ(counter.Value(), kThreads * kPerThread + 42);
}

TEST(TelemetryHistogramTest, FoldsConcurrentWriters) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(uint64_t(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // sum = kPerThread * (1 + 2 + ... + kThreads)
  EXPECT_EQ(snap.sum, kPerThread * (kThreads * (kThreads + 1) / 2));
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < 65; ++b) bucket_total += snap.buckets[b];
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(TelemetryHistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::UpperBound(0), 0u);
  EXPECT_EQ(Histogram::UpperBound(2), 3u);
  EXPECT_EQ(Histogram::UpperBound(10), 1023u);
  EXPECT_EQ(Histogram::UpperBound(64), UINT64_MAX);
}

TEST(TelemetryHistogramTest, PercentilesAreMonotoneAndBucketAccurate) {
  Histogram histogram;
  HistogramSnapshot empty = histogram.Snapshot();
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);

  // 1000 identical samples: every percentile lands inside value 100's
  // bucket, [64, 128).
  for (int i = 0; i < 1000; ++i) histogram.Record(100);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Mean(), 100.0);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    double p = snap.Percentile(q);
    EXPECT_GE(p, 64.0) << q;
    EXPECT_LT(p, 128.0) << q;
  }

  // A bimodal distribution keeps the quantiles ordered and in the right
  // modes: 90% small (8), 10% large (100000).
  Histogram bimodal;
  for (int i = 0; i < 900; ++i) bimodal.Record(8);
  for (int i = 0; i < 100; ++i) bimodal.Record(100000);
  HistogramSnapshot b = bimodal.Snapshot();
  double p50 = b.Percentile(0.50);
  double p95 = b.Percentile(0.95);
  double p99 = b.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LT(p50, 16.0);       // in 8's bucket
  EXPECT_GE(p95, 65536.0);    // in 100000's bucket [2^16, 2^17)
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateIsPointerStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("c", "api", "help");
  Counter* b = registry.GetCounter("c", "ignored", "ignored");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_metrics(), 1u);
  a->Add(7);
  EXPECT_EQ(b->Value(), 7u);
}

TEST(MetricsRegistryTest, KindCollisionReturnsDetachedDummy) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("name", "api", "help");
  counter->Add(5);
  // Re-registering as a gauge must not corrupt the counter; the gauge is a
  // detached sink.
  Gauge* gauge = registry.GetGauge("name", "api", "help");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(999);
  EXPECT_EQ(counter->Value(), 5u);
  EXPECT_EQ(registry.num_metrics(), 1u);
  // The export still shows the original kind.
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"name\":5}"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, JsonExportIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b_counter", "api", "")->Add(2);
  registry.GetCounter("a_counter", "api", "")->Add(1);
  registry.GetGauge("g", "parallel", "")->Set(-3);
  registry.GetHistogram("h", "storage", "")->Record(100);
  std::string json = registry.ToJson();
  EXPECT_EQ(json.find("\"a_counter\":1,\"b_counter\":2") !=
                std::string::npos,
            true)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":-3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1,\"sum\":100"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, PrometheusExportGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "api", "Requests served")->Add(3);
  Histogram* h = registry.GetHistogram("latency_us", "storage", "Latency");
  h->Record(0);     // bucket 0, le="0"
  h->Record(3);     // bucket 2, le="3"
  h->Record(1000);  // bucket 10, le="1023"
  std::string expected =
      "# HELP latency_us Latency\n"
      "# TYPE latency_us histogram\n"
      "latency_us_bucket{layer=\"storage\",le=\"0\"} 1\n"
      "latency_us_bucket{layer=\"storage\",le=\"3\"} 2\n"
      "latency_us_bucket{layer=\"storage\",le=\"1023\"} 3\n"
      "latency_us_bucket{layer=\"storage\",le=\"+Inf\"} 3\n"
      "latency_us_sum{layer=\"storage\"} 1003\n"
      "latency_us_count{layer=\"storage\"} 3\n"
      "# HELP requests_total Requests served\n"
      "# TYPE requests_total counter\n"
      "requests_total{layer=\"api\"} 3\n";
  EXPECT_EQ(registry.ToPrometheusText(), expected);
}

TEST(MetricsRegistryTest, PrometheusEscapesNamesAndLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("bad name-1", "la\"y\\er\n", "h")->Add(1);
  std::string text = registry.ToPrometheusText();
  // Name sanitized to [a-zA-Z0-9_:]; label value escapes quote, backslash,
  // and newline.
  EXPECT_NE(text.find("bad_name_1{layer=\"la\\\"y\\\\er\\n\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("shared_total", "api", "")->Increment();
        registry.GetHistogram("shared_us", "api", "")->Record(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared_total", "api", "")->Value(),
            uint64_t(kThreads) * 200);
  EXPECT_EQ(registry.GetHistogram("shared_us", "api", "")->Snapshot().count,
            uint64_t(kThreads) * 200);
  EXPECT_EQ(registry.num_metrics(), 2u);
}

// --- Trace spans ------------------------------------------------------------

TEST(TraceTest, SpansNestWithParentAndDepth) {
  Trace trace;
  int32_t root = trace.Open("api", "root");
  int32_t child = trace.Open("engine", "child");
  trace.Note("engine", "note");
  int32_t grandchild = trace.Open("prober", "grandchild");
  trace.Close(grandchild);
  trace.Close(child);
  int32_t sibling = trace.Open("storage", "sibling");
  trace.Close(sibling);
  trace.Close(root);

  ASSERT_EQ(trace.spans().size(), 5u);
  const auto& spans = trace.spans();
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[2].name, "note");
  EXPECT_EQ(spans[2].parent, 1);  // note nests under the open child
  EXPECT_EQ(spans[3].parent, 1);
  EXPECT_EQ(spans[3].depth, 2);
  EXPECT_EQ(spans[4].parent, 0);  // sibling reattaches to the root
  EXPECT_EQ(spans[4].depth, 1);
  // Closed spans have durations; the root's covers its children.
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
  EXPECT_TRUE(trace.HasLayer("api"));
  EXPECT_TRUE(trace.HasLayer("prober"));
  EXPECT_FALSE(trace.HasLayer("delta"));
}

TEST(TraceTest, BufferTruncatesAndCountsDrops) {
  Trace trace(/*max_spans=*/3);
  int32_t a = trace.Open("api", "a");
  int32_t b = trace.Open("api", "b");
  int32_t c = trace.Open("api", "c");
  int32_t d = trace.Open("api", "d");  // over the cap
  EXPECT_EQ(d, -1);
  trace.Note("api", "dropped-note");
  trace.Close(d);  // no-op
  trace.Close(c);
  trace.Close(b);
  trace.Close(a);
  EXPECT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos) << json;
}

TEST(TraceTest, ScopedTargetInstallsAndRestores) {
#if HYPRE_TELEMETRY_ENABLED
  EXPECT_EQ(ActiveTrace(), nullptr);
  Trace outer_trace;
  Trace inner_trace;
  {
    ScopedTraceTarget outer(&outer_trace);
    EXPECT_EQ(ActiveTrace(), &outer_trace);
    { TraceSpan span("api", "outer_span"); }
    {
      ScopedTraceTarget inner(&inner_trace);
      EXPECT_EQ(ActiveTrace(), &inner_trace);
      { TraceSpan span("api", "inner_span"); }
      // Null suppresses tracing within a sub-scope.
      {
        ScopedTraceTarget quiet(nullptr);
        EXPECT_EQ(ActiveTrace(), nullptr);
        TraceSpan span("api", "suppressed");
      }
      EXPECT_EQ(ActiveTrace(), &inner_trace);
    }
    EXPECT_EQ(ActiveTrace(), &outer_trace);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
  ASSERT_EQ(outer_trace.spans().size(), 1u);
  EXPECT_STREQ(outer_trace.spans()[0].name, "outer_span");
  ASSERT_EQ(inner_trace.spans().size(), 1u);
  EXPECT_STREQ(inner_trace.spans()[0].name, "inner_span");
#else
  GTEST_SKIP() << "telemetry compiled out";
#endif
}

// --- Session integration ----------------------------------------------------

class TelemetrySessionTest : public ::testing::Test {
 protected:
  static std::unique_ptr<reldb::Database> MakeDb() {
    auto db = std::make_unique<reldb::Database>();
    BuildMiniDblp(db.get());
    return db;
  }

  static api::EnumerationRequest MakeRequest(const std::string& algorithm) {
    api::EnumerationRequest request;
    request.algorithm = algorithm;
    request.base_query = MiniBaseQuery();
    request.key_column = "dblp.pid";
    request.preferences = MiniPreferences();
    return request;
  }
};

TEST_F(TelemetrySessionTest, TracedRequestMatchesUntracedResults) {
  api::Session session(MakeDb());
  api::EnumerationRequest request = MakeRequest("combine-two");
  // Warm the engine so both measured requests hit the same cache state.
  ASSERT_TRUE(session.Enumerate(request).ok());

  auto untraced = session.Enumerate(request);
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
  request.trace = true;
  auto traced = session.Enumerate(request);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  // Tracing is observation only: identical records and identical
  // per-request probe accounting.
  ASSERT_EQ(traced->records.size(), untraced->records.size());
  for (size_t i = 0; i < traced->records.size(); ++i) {
    EXPECT_EQ(traced->records[i].predicate_sql,
              untraced->records[i].predicate_sql);
    EXPECT_EQ(traced->records[i].num_tuples, untraced->records[i].num_tuples);
  }
  EXPECT_EQ(traced->stats.num_leaf_queries, untraced->stats.num_leaf_queries);
  EXPECT_EQ(traced->stats.num_cache_hits, untraced->stats.num_cache_hits);
  EXPECT_EQ(traced->stats.num_batches, untraced->stats.num_batches);
  EXPECT_EQ(traced->stats.num_batched_probes,
            untraced->stats.num_batched_probes);

  EXPECT_TRUE(untraced->trace.empty());
#if HYPRE_TELEMETRY_ENABLED
  ASSERT_FALSE(traced->trace.empty());
  EXPECT_STREQ(traced->trace.spans()[0].name, "enumerate");
  EXPECT_TRUE(traced->trace.HasLayer("api"));
#else
  EXPECT_TRUE(traced->trace.empty());
#endif
}

TEST_F(TelemetrySessionTest, MutateRefreshEnumerateTracesFourLayers) {
#if HYPRE_TELEMETRY_ENABLED
  std::string dir = MakeTempDir("trace_layers");
  storage::StorageOptions options;
  options.auto_checkpoint_mutations = 1;
  api::Session session(MakeDb());
  api::EnumerationRequest request = MakeRequest("combine-two");
  ASSERT_TRUE(session.Enumerate(request).ok());
  ASSERT_TRUE(session.AttachStorage(dir, options).ok());

  // One mutation crosses the threshold; the traced request then commits
  // the WAL + queues the snapshot (storage), drains the journal (delta),
  // and probes (prober) under the api root span.
  reldb::Table* da = session.mutable_db()->GetTable("dblp_author");
  ASSERT_TRUE(da->Append({reldb::Value::Int(2), reldb::Value::Int(3)}).ok());
  request.trace = true;
  auto traced = session.Enumerate(request);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  const Trace& trace = traced->trace;
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(trace.HasLayer("api")) << trace.ToJson();
  EXPECT_TRUE(trace.HasLayer("prober")) << trace.ToJson();
  EXPECT_TRUE(trace.HasLayer("delta")) << trace.ToJson();
  EXPECT_TRUE(trace.HasLayer("storage")) << trace.ToJson();
#else
  GTEST_SKIP() << "telemetry compiled out";
#endif
}

// Env wrapper that can hold the snapshot's temp-file creation hostage —
// proving the request path returns while the snapshot write is in flight.
class BlockingEnv : public storage::Env {
 public:
  explicit BlockingEnv(Env* base) : base_(base) {}

  void Arm() { armed_.store(true); }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  bool IsBlocked() {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }

  Result<std::unique_ptr<storage::WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    if (armed_.load() && path.find("snapshot.hypre.tmp") != std::string::npos) {
      std::unique_lock<std::mutex> lock(mu_);
      blocked_ = true;
      cv_.wait(lock, [&] { return released_; });
      blocked_ = false;
    }
    return base_->NewWritableFile(path, truncate);
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status CreateDirIfMissing(const std::string& path) override {
    return base_->CreateDirIfMissing(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }

 private:
  Env* base_;
  std::atomic<bool> armed_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool released_ = false;
};

TEST_F(TelemetrySessionTest, BackgroundCheckpointDoesNotBlockRequests) {
  std::string dir = MakeTempDir("bg_ckpt");
  BlockingEnv env(storage::Env::Default());
  storage::StorageOptions options;
  options.env = &env;
  options.auto_checkpoint_mutations = 1;

  uint64_t final_seq = 0;
  {
    api::Session session(MakeDb());
    api::EnumerationRequest request = MakeRequest("combine-two");
    ASSERT_TRUE(session.Enumerate(request).ok());
    // The initial checkpoint is synchronous; arm the gate only afterwards.
    ASSERT_TRUE(session.AttachStorage(dir, options).ok());
    env.Arm();

    reldb::Table* da = session.mutable_db()->GetTable("dblp_author");
    ASSERT_TRUE(
        da->Append({reldb::Value::Int(2), reldb::Value::Int(3)}).ok());
    // This request queues the snapshot write and MUST return while the
    // worker is stuck in the blocked env.
    ASSERT_TRUE(session.Enumerate(request).ok());
    EXPECT_TRUE(session.checkpoint_in_flight());

    // The request path stays fully serviceable while the write is hostage —
    // including further mutations (their checkpoint is skipped, not waited
    // on, while one is in flight).
    ASSERT_TRUE(
        da->Append({reldb::Value::Int(5), reldb::Value::Int(1)}).ok());
    ASSERT_TRUE(session.Enumerate(request).ok());
    EXPECT_TRUE(session.checkpoint_in_flight());

    env.Release();
    while (session.checkpoint_in_flight()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // An explicit snapshot drains + retires the background one and covers
    // the second mutation synchronously.
    ASSERT_TRUE(session.SaveSnapshot().ok());
    final_seq = session.store()->snapshot_sequence();
    EXPECT_EQ(final_seq, session.db()->journal().sequence());
  }

  auto reopened = api::Session::OpenFromSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->db()->journal().sequence(), final_seq);
}

// --- TaskPool scheduler counters --------------------------------------------

TEST(TaskPoolStatsTest, SkewedRegionCountsStealsAndParks) {
#if HYPRE_TELEMETRY_ENABLED
  parallel::TaskPool pool(/*num_workers=*/3);
  // Heavily skewed body: the first indices carry nearly all the work, so
  // idle workers must steal from the loaded slot's deque.
  std::atomic<uint64_t> sink{0};
  auto skewed = [&sink](size_t begin, size_t end, size_t /*slot*/) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) {
      uint64_t spin = i < 64 ? 20000 : 1;
      for (uint64_t j = 0; j < spin; ++j) local += j ^ i;
    }
    sink.fetch_add(local, std::memory_order_relaxed);
  };
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  parallel::TaskPool::Stats stats;
  do {
    pool.ParallelFor(4096, /*grain=*/1, /*max_slots=*/0, skewed);
    stats = pool.DumpStats();
  } while ((stats.steals == 0 || stats.parks == 0) &&
           std::chrono::steady_clock::now() < deadline);
  EXPECT_GT(stats.executes, 0u);
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.steals, 0u) << stats.ToString();
  EXPECT_GT(stats.parks, 0u) << stats.ToString();

  // PublishStats mirrors the fold into the global registry's gauges.
  pool.PublishStats();
  MetricsRegistry& global = MetricsRegistry::Global();
  EXPECT_EQ(global.GetGauge("hypre_parallel_steals", "parallel", "")->Value(),
            int64_t(stats.steals));
  EXPECT_EQ(
      global.GetGauge("hypre_parallel_executes", "parallel", "")->Value(),
      int64_t(stats.executes));
#else
  GTEST_SKIP() << "telemetry compiled out";
#endif
}

}  // namespace
}  // namespace telemetry
}  // namespace hypre
