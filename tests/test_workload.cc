// Workload tests: canonical relations, DBLP generator shape and
// determinism, and §6.2 extraction correctness on a hand-crafted network.
#include <gtest/gtest.h>

#include <map>

#include "workload/canonical.h"
#include "workload/dblp_generator.h"
#include "workload/preference_extraction.h"

namespace hypre {
namespace workload {
namespace {

using reldb::Row;
using reldb::Schema;
using reldb::Value;
using reldb::ValueType;

TEST(CanonicalTest, MovieRelation) {
  reldb::Database db;
  ASSERT_TRUE(BuildMovieDatabase(&db).ok());
  const reldb::Table* movies = db.GetTable("movie");
  ASSERT_NE(movies, nullptr);
  EXPECT_EQ(movies->num_rows(), 6u);
  EXPECT_EQ(MovieIntensities().size(), 5u);  // m6 has no score (Table 4)
  EXPECT_NE(movies->GetHashIndex("genre"), nullptr);
}

TEST(CanonicalTest, DealershipRelation) {
  reldb::Database db;
  ASSERT_TRUE(BuildDealershipDatabase(&db).ok());
  EXPECT_EQ(db.GetTable("car")->num_rows(), 3u);
}

TEST(CanonicalTest, DblpSample) {
  reldb::Database db;
  ASSERT_TRUE(BuildDblpSampleDatabase(&db).ok());
  EXPECT_EQ(db.GetTable("dblp")->num_rows(), 9u);
}

TEST(DblpGeneratorTest, ProducesExpectedShape) {
  DblpConfig config;
  config.num_papers = 2000;
  config.num_authors = 800;
  config.num_venues = 12;
  config.num_communities = 10;
  config.seed = 5;
  reldb::Database db;
  auto stats = GenerateDblp(config, &db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_papers, 2000u);
  EXPECT_EQ(stats->num_authors, 800u);
  EXPECT_EQ(db.GetTable("dblp")->num_rows(), 2000u);
  EXPECT_EQ(db.GetTable("author")->num_rows(), 800u);
  EXPECT_EQ(db.GetTable("dblp_author")->num_rows(), stats->num_author_links);
  EXPECT_EQ(db.GetTable("citation")->num_rows(), stats->num_citations);
  EXPECT_GE(stats->num_author_links, stats->num_papers);  // >= 1 author each
  EXPECT_GT(stats->num_citations, 0u);
  EXPECT_GE(stats->num_citations, stats->num_cited_papers);
  // Indexes exist for the enhancement queries.
  EXPECT_NE(db.GetTable("dblp")->GetHashIndex("venue"), nullptr);
  EXPECT_NE(db.GetTable("dblp_author")->GetHashIndex("aid"), nullptr);
}

TEST(DblpGeneratorTest, DeterministicGivenSeed) {
  DblpConfig config;
  config.num_papers = 300;
  config.num_authors = 100;
  config.num_venues = 6;
  config.num_communities = 4;
  config.seed = 9;
  reldb::Database a;
  reldb::Database b;
  ASSERT_TRUE(GenerateDblp(config, &a).ok());
  ASSERT_TRUE(GenerateDblp(config, &b).ok());
  const auto& rows_a = a.GetTable("dblp")->rows();
  const auto& rows_b = b.GetTable("dblp")->rows();
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i][3].AsString(), rows_b[i][3].AsString());
    EXPECT_EQ(rows_a[i][2].AsInt(), rows_b[i][2].AsInt());
  }
}

TEST(DblpGeneratorTest, VenuePopularityIsSkewed) {
  DblpConfig config;
  config.num_papers = 5000;
  config.num_authors = 1000;
  config.num_venues = 20;
  config.num_communities = 1;  // single community isolates the Zipf shape
  config.seed = 13;
  reldb::Database db;
  ASSERT_TRUE(GenerateDblp(config, &db).ok());
  std::map<std::string, size_t> venue_counts;
  for (const auto& row : db.GetTable("dblp")->rows()) {
    ++venue_counts[row[3].AsString()];
  }
  // The top venue should clearly dominate the median one.
  std::vector<size_t> counts;
  for (const auto& [venue, count] : venue_counts) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GE(counts.size(), 10u);
  EXPECT_GT(counts[0], counts[9] * 2);
}

TEST(DblpGeneratorTest, RejectsZeroSizes) {
  DblpConfig config;
  config.num_papers = 0;
  reldb::Database db;
  EXPECT_FALSE(GenerateDblp(config, &db).ok());
}

// Hand-crafted network with exactly computable extraction results:
//   author 1 wrote papers 1 (VLDB), 2 (VLDB), 3 (SIGMOD)
//   author 2 wrote papers 4 (PODS), 5 (PODS)
//   author 3 wrote paper 6 (ICDE)
//   paper 1 cites 4 and 5 (both by author 2); paper 2 cites 6 (author 3);
//   paper 3 cites 4.
class ExtractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dblp = db_.CreateTable(
        "dblp", Schema({{"pid", ValueType::kInt64},
                        {"title", ValueType::kString},
                        {"year", ValueType::kInt64},
                        {"venue", ValueType::kString}}));
    ASSERT_TRUE(dblp.ok());
    struct P {
      int64_t pid;
      const char* venue;
    };
    for (const P& p : std::initializer_list<P>{{1, "VLDB"},
                                               {2, "VLDB"},
                                               {3, "SIGMOD"},
                                               {4, "PODS"},
                                               {5, "PODS"},
                                               {6, "ICDE"}}) {
      (*dblp)->AppendUnchecked(Row{Value::Int(p.pid), Value::Str("t"),
                                   Value::Int(2005), Value::Str(p.venue)});
    }
    auto author = db_.CreateTable(
        "author",
        Schema({{"aid", ValueType::kInt64}, {"name", ValueType::kString}}));
    ASSERT_TRUE(author.ok());
    for (int64_t a : {1, 2, 3}) {
      (*author)->AppendUnchecked(Row{Value::Int(a), Value::Str("n")});
    }
    auto da = db_.CreateTable(
        "dblp_author",
        Schema({{"pid", ValueType::kInt64}, {"aid", ValueType::kInt64}}));
    ASSERT_TRUE(da.ok());
    for (auto [pid, aid] : std::initializer_list<std::pair<int, int>>{
             {1, 1}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3}}) {
      (*da)->AppendUnchecked(Row{Value::Int(pid), Value::Int(aid)});
    }
    auto cit = db_.CreateTable(
        "citation",
        Schema({{"pid", ValueType::kInt64}, {"cid", ValueType::kInt64}}));
    ASSERT_TRUE(cit.ok());
    for (auto [pid, cid] : std::initializer_list<std::pair<int, int>>{
             {1, 4}, {1, 5}, {2, 6}, {3, 4}}) {
      (*cit)->AppendUnchecked(Row{Value::Int(pid), Value::Int(cid)});
    }
  }
  reldb::Database db_;
};

TEST_F(ExtractionTest, VenueSharesForAuthor1) {
  auto prefs = ExtractPreferences(db_, {});
  ASSERT_TRUE(prefs.ok()) << prefs.status().ToString();
  // Author 1's venues: VLDB 2/3, SIGMOD 1/3.
  double vldb = -1;
  double sigmod = -1;
  for (const auto& q : prefs->quantitative) {
    if (q.uid != 1) continue;
    if (q.predicate == "dblp.venue='VLDB'") vldb = q.intensity;
    if (q.predicate == "dblp.venue='SIGMOD'") sigmod = q.intensity;
  }
  EXPECT_NEAR(vldb, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sigmod, 1.0 / 3.0, 1e-12);
}

TEST_F(ExtractionTest, AuthorSharesForAuthor1) {
  auto prefs = ExtractPreferences(db_, {});
  ASSERT_TRUE(prefs.ok());
  // Author 1 cites: author 2 three times (papers 4, 5, 4), author 3 once
  // -> shares 3/4 and 1/4 (both above the 0.1 cutoff).
  double a2 = -1;
  double a3 = -1;
  for (const auto& q : prefs->quantitative) {
    if (q.uid != 1) continue;
    if (q.predicate == "dblp_author.aid=2") a2 = q.intensity;
    if (q.predicate == "dblp_author.aid=3") a3 = q.intensity;
  }
  EXPECT_NEAR(a2, 0.75, 1e-12);
  EXPECT_NEAR(a3, 0.25, 1e-12);
}

TEST_F(ExtractionTest, NegativeVenuePreferences) {
  auto prefs = ExtractPreferences(db_, {});
  ASSERT_TRUE(prefs.ok());
  // Author 1 never published in PODS, but cited author 2 (share 0.75) who
  // publishes only there (share 1.0): intensity = -(0.75 * 1.0).
  double pods = 1;
  double icde = 1;
  for (const auto& q : prefs->quantitative) {
    if (q.uid != 1) continue;
    if (q.predicate == "dblp.venue='PODS'") pods = q.intensity;
    if (q.predicate == "dblp.venue='ICDE'") icde = q.intensity;
  }
  EXPECT_NEAR(pods, -0.75, 1e-12);
  EXPECT_NEAR(icde, -0.25, 1e-12);
  EXPECT_EQ(prefs->num_negative_prefs, 2u);
}

TEST_F(ExtractionTest, QualitativeFromConsecutivePairs) {
  auto prefs = ExtractPreferences(db_, {});
  ASSERT_TRUE(prefs.ok());
  // Author 1: author list sorted desc = a2 (0.75), a3 (0.25) -> one
  // qualitative with intensity 0.5; venue list VLDB (2/3), SIGMOD (1/3) ->
  // one qualitative with intensity 1/3.
  bool found_author_pair = false;
  bool found_venue_pair = false;
  for (const auto& q : prefs->qualitative) {
    if (q.uid != 1) continue;
    if (q.left == "dblp_author.aid=2" && q.right == "dblp_author.aid=3") {
      found_author_pair = true;
      EXPECT_NEAR(q.intensity, 0.5, 1e-12);
    }
    if (q.left == "dblp.venue='VLDB'" && q.right == "dblp.venue='SIGMOD'") {
      found_venue_pair = true;
      EXPECT_NEAR(q.intensity, 1.0 / 3.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_author_pair);
  EXPECT_TRUE(found_venue_pair);
}

TEST_F(ExtractionTest, PerUserCountsAndOrdering) {
  auto prefs = ExtractPreferences(db_, {});
  ASSERT_TRUE(prefs.ok());
  ASSERT_TRUE(prefs->per_user_counts.count(1) > 0);
  auto users = prefs->UsersByPreferenceCount();
  ASSERT_FALSE(users.empty());
  // Author 1 has the most preferences (venues + authors + negatives +
  // qualitative pairs).
  EXPECT_EQ(users[0], 1);
}

TEST(ExtractionScaleTest, GeneratedNetworkYieldsLongTail) {
  DblpConfig config;
  config.num_papers = 3000;
  config.num_authors = 900;
  config.num_venues = 12;
  config.num_communities = 12;
  config.seed = 21;
  reldb::Database db;
  ASSERT_TRUE(GenerateDblp(config, &db).ok());
  auto prefs = ExtractPreferences(db, {});
  ASSERT_TRUE(prefs.ok());
  EXPECT_GT(prefs->quantitative.size(), 1000u);
  EXPECT_GT(prefs->qualitative.size(), 100u);
  // Figure 17's shape: few users with many preferences, many users with
  // few. Compare the top user's count against the median user's.
  auto users = prefs->UsersByPreferenceCount();
  ASSERT_GT(users.size(), 10u);
  size_t top = prefs->per_user_counts.at(users.front());
  size_t median = prefs->per_user_counts.at(users[users.size() / 2]);
  EXPECT_GT(top, median * 2);
}

}  // namespace
}  // namespace workload
}  // namespace hypre
