// Preference SQL baseline tests: PREFERRING clause parsing and best-match
// evaluation, including the dissertation's Example 5 anomaly.
#include <gtest/gtest.h>

#include "hypre/preference_sql.h"
#include "workload/canonical.h"

namespace hypre {
namespace core {
namespace {

TEST(PreferringParseTest, SingleBlock) {
  auto clause = ParsePreferring("price BETWEEN 7000 AND 16000");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  ASSERT_EQ(clause->blocks.size(), 1u);
  EXPECT_EQ(clause->blocks[0].size(), 1u);
  EXPECT_EQ(clause->top_k, 0u);
}

TEST(PreferringParseTest, AndSplitsButBetweenAndDoesNot) {
  auto clause = ParsePreferring(
      "price BETWEEN 7000 AND 16000 AND mileage BETWEEN 20000 AND 50000 "
      "AND make IN ('BMW', 'Honda')");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  ASSERT_EQ(clause->blocks.size(), 1u);
  EXPECT_EQ(clause->blocks[0].size(), 3u);
}

TEST(PreferringParseTest, PriorToMakesBlocks) {
  auto clause = ParsePreferring(
      "price BETWEEN 7000 AND 16000 AND mileage BETWEEN 20000 AND 50000 "
      "PRIOR TO make IN ('BMW', 'Honda')");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  ASSERT_EQ(clause->blocks.size(), 2u);
  EXPECT_EQ(clause->blocks[0].size(), 2u);
  EXPECT_EQ(clause->blocks[1].size(), 1u);
}

TEST(PreferringParseTest, ElseQualitative) {
  // The dissertation's §1.3 example clause.
  auto clause = ParsePreferring(
      "venue IN ('CIKM') ELSE venue IN ('SIGMOD') PRIOR TO year > 2010");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  ASSERT_EQ(clause->blocks.size(), 2u);
  ASSERT_EQ(clause->blocks[0].size(), 1u);
  EXPECT_NE(clause->blocks[0][0].else_predicate, nullptr);
  EXPECT_EQ(clause->blocks[1][0].else_predicate, nullptr);
}

TEST(PreferringParseTest, TopK) {
  auto clause = ParsePreferring("make IN ('BMW') TOP 3");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  EXPECT_EQ(clause->top_k, 3u);
}

TEST(PreferringParseTest, Errors) {
  EXPECT_FALSE(ParsePreferring("").ok());
  EXPECT_FALSE(ParsePreferring("AND make IN ('BMW')").ok());
  EXPECT_FALSE(ParsePreferring("ELSE make IN ('BMW')").ok());
  EXPECT_FALSE(
      ParsePreferring("a=1 ELSE b=2 ELSE c=3").ok());  // chained ELSE
  EXPECT_FALSE(ParsePreferring("a = ").ok());
}

class PreferenceSqlEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::BuildDealershipDatabase(&db_).ok());
    cars_ = db_.GetTable("car");
  }
  std::string IdOf(const PreferenceSqlRow& row) {
    return cars_->row(row.row)[0].AsString();
  }
  reldb::Database db_;
  const reldb::Table* cars_ = nullptr;
};

TEST_F(PreferenceSqlEvalTest, Example5ReproducesTheAnomaly) {
  // §2.5 Example 5, equally-important formulation: Preference SQL returns
  // t1, t3, t2 — though the user's intent (mileage more important than
  // make) implies t1, t2, t3. t3's small price overshoot (distance 0.44)
  // costs less than t2's categorical make miss (1.0), and no intensity
  // exists to say the make preference barely matters.
  auto clause = ParsePreferring(
      "price BETWEEN 7000 AND 16000 AND mileage BETWEEN 20000 AND 50000 "
      "AND make IN ('BMW', 'Honda') TOP 3");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  auto rows = EvaluatePreferring(*cars_, *clause);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ(IdOf((*rows)[0]), "t1");
  EXPECT_EQ(IdOf((*rows)[1]), "t3");
  EXPECT_EQ(IdOf((*rows)[2]), "t2");
}

TEST_F(PreferenceSqlEvalTest, Example5PriorToFormulation) {
  // The PRIOR TO formulation under strict lexicographic semantics: the
  // primary (price, mileage) block now dominates, so t2 overtakes t3.
  // (The dissertation reports t1, t3, t2 for the original system here as
  // well; our baseline implements the textbook lexicographic PRIOR TO, and
  // either way the clause cannot express *how much* more mileage matters.)
  auto clause = ParsePreferring(
      "price BETWEEN 7000 AND 16000 AND mileage BETWEEN 20000 AND 50000 "
      "PRIOR TO make IN ('BMW', 'Honda')");
  ASSERT_TRUE(clause.ok());
  auto rows = EvaluatePreferring(*cars_, *clause);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ(IdOf((*rows)[0]), "t1");
  EXPECT_EQ(IdOf((*rows)[1]), "t2");
  EXPECT_EQ(IdOf((*rows)[2]), "t3");
}

TEST_F(PreferenceSqlEvalTest, PriorToDominatesLexicographically) {
  // make-first prioritization: Hondas (t1, t3) beat the VW regardless of
  // the secondary price block.
  auto clause =
      ParsePreferring("make IN ('Honda') PRIOR TO price BETWEEN 0 AND 10000");
  ASSERT_TRUE(clause.ok());
  auto rows = EvaluatePreferring(*cars_, *clause);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(IdOf((*rows)[0]), "t1");  // Honda and cheap
  EXPECT_EQ(IdOf((*rows)[1]), "t3");  // Honda but pricey
  EXPECT_EQ(IdOf((*rows)[2]), "t2");  // not a Honda
}

TEST_F(PreferenceSqlEvalTest, ElsePrefersFallbackOverNothing) {
  auto clause = ParsePreferring("make IN ('BMW') ELSE make IN ('VW')");
  ASSERT_TRUE(clause.ok());
  auto rows = EvaluatePreferring(*cars_, *clause);
  ASSERT_TRUE(rows.ok());
  // No BMWs: the VW (fallback, error 0.5) beats the Hondas (error 1).
  EXPECT_EQ(IdOf((*rows)[0]), "t2");
}

TEST_F(PreferenceSqlEvalTest, TopKTruncates) {
  auto clause = ParsePreferring("make IN ('Honda') TOP 1");
  ASSERT_TRUE(clause.ok());
  auto rows = EvaluatePreferring(*cars_, *clause);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(PreferenceSqlEvalTest, IntensityBlindness) {
  // §1.3's P1 vs P3: "much more preferred" and "slightly better" produce
  // the SAME clause, hence the same ranking — the information loss HYPRE
  // fixes. Both render as an ELSE preference here.
  auto strong = ParsePreferring("make IN ('Honda') ELSE make IN ('VW')");
  auto weak = ParsePreferring("make IN ('Honda') ELSE make IN ('VW')");
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());
  auto rows_strong = EvaluatePreferring(*cars_, *strong);
  auto rows_weak = EvaluatePreferring(*cars_, *weak);
  ASSERT_TRUE(rows_strong.ok());
  ASSERT_TRUE(rows_weak.ok());
  for (size_t i = 0; i < rows_strong->size(); ++i) {
    EXPECT_EQ((*rows_strong)[i].row, (*rows_weak)[i].row);
  }
}

}  // namespace
}  // namespace core
}  // namespace hypre
