// CSV import/export tests: round-trips, quoting, type inference, errors.
#include <gtest/gtest.h>

#include <sstream>

#include "reldb/csv.h"
#include "workload/canonical.h"

namespace hypre {
namespace reldb {
namespace {

TEST(CsvTest, WriteTableHeaderAndRows) {
  Database db;
  ASSERT_TRUE(workload::BuildDealershipDatabase(&db).ok());
  std::stringstream out;
  ASSERT_TRUE(WriteCsv(*db.GetTable("car"), &out).ok());
  std::string text = out.str();
  EXPECT_TRUE(text.rfind("id,price,mileage,make\n", 0) == 0);
  EXPECT_NE(text.find("t1,7000,43489,Honda\n"), std::string::npos);
}

TEST(CsvTest, RoundTripThroughAppend) {
  Database db;
  ASSERT_TRUE(workload::BuildDealershipDatabase(&db).ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(*db.GetTable("car"), &buffer).ok());

  Database db2;
  auto table = db2.CreateTable(
      "car", Schema({{"id", ValueType::kString},
                     {"price", ValueType::kInt64},
                     {"mileage", ValueType::kInt64},
                     {"make", ValueType::kString}}));
  ASSERT_TRUE(table.ok());
  auto loaded = AppendCsv(&buffer, *table);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);
  ASSERT_EQ((*table)->num_rows(), 3u);
  EXPECT_EQ((*table)->row(1)[1].AsInt(), 16000);
  EXPECT_EQ((*table)->row(2)[3].AsString(), "Honda");
}

TEST(CsvTest, QuotingRoundTrip) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"name", ValueType::kString},
                   {"note", ValueType::kString}}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)
                  ->Append(Row{Value::Str("a,b"), Value::Str("say \"hi\"")})
                  .ok());
  ASSERT_TRUE((*table)->Append(Row{Value::Null(), Value::Str("plain")}).ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(**table, &buffer).ok());

  Database db2;
  auto restored = LoadCsvAsTable(&buffer, "t", &db2);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ((*restored)->num_rows(), 2u);
  EXPECT_EQ((*restored)->row(0)[0].AsString(), "a,b");
  EXPECT_EQ((*restored)->row(0)[1].AsString(), "say \"hi\"");
  EXPECT_TRUE((*restored)->row(1)[0].is_null());
}

TEST(CsvTest, LoadInfersTypes) {
  std::stringstream in(
      "pid,title,year,score\n"
      "1,Paper One,2001,0.5\n"
      "2,\"Paper, Two\",2002,0.75\n");
  Database db;
  auto table = LoadCsvAsTable(&in, "papers", &db);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Schema& schema = (*table)->schema();
  EXPECT_EQ(schema.column(0).type, ValueType::kInt64);
  EXPECT_EQ(schema.column(1).type, ValueType::kString);
  EXPECT_EQ(schema.column(2).type, ValueType::kInt64);
  EXPECT_EQ(schema.column(3).type, ValueType::kDouble);
  ASSERT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->row(1)[1].AsString(), "Paper, Two");
  EXPECT_DOUBLE_EQ((*table)->row(1)[3].AsDouble(), 0.75);
}

TEST(CsvTest, WriteResultSet) {
  ResultSet result;
  result.column_names = {"venue", "count(*)"};
  result.rows.push_back({Value::Str("VLDB"), Value::Int(3)});
  std::stringstream out;
  ASSERT_TRUE(WriteCsv(result, &out).ok());
  EXPECT_EQ(out.str(), "venue,count(*)\nVLDB,3\n");
}

TEST(CsvTest, Errors) {
  Database db;
  auto table =
      db.CreateTable("t", Schema({{"a", ValueType::kInt64}}));
  ASSERT_TRUE(table.ok());

  std::stringstream empty("");
  EXPECT_FALSE(AppendCsv(&empty, *table).ok());

  std::stringstream wrong_header("b\n1\n");
  EXPECT_FALSE(AppendCsv(&wrong_header, *table).ok());

  std::stringstream wrong_arity("a\n1,2\n");
  EXPECT_FALSE(AppendCsv(&wrong_arity, *table).ok());

  std::stringstream bad_type("a\nnotanint\n");
  EXPECT_FALSE(AppendCsv(&bad_type, *table).ok());

  std::stringstream bad_quote("a\n\"unterminated\n");
  EXPECT_FALSE(AppendCsv(&bad_quote, *table).ok());

  std::stringstream empty2("");
  EXPECT_FALSE(LoadCsvAsTable(&empty2, "x", &db).ok());
}

TEST(CsvTest, HeaderOnlyCreatesEmptyTable) {
  std::stringstream in("a,b\n");
  Database db;
  auto table = LoadCsvAsTable(&in, "t", &db);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 0u);
  // Types default to STRING without data.
  EXPECT_EQ((*table)->schema().column(0).type, ValueType::kString);
}

}  // namespace
}  // namespace reldb
}  // namespace hypre
