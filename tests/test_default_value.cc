// DEFAULT_VALUE strategy tests (Table 12 / §6.3.1).
#include <gtest/gtest.h>

#include "hypre/default_value.h"

namespace hypre {
namespace core {
namespace {

const std::vector<double> kMixed{-0.4, 0.1, 0.5, 0.9};
const std::vector<double> kAllNegative{-0.8, -0.2};
const std::vector<double> kEmpty{};

TEST(DefaultValueTest, FixedIgnoresExisting) {
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kFixed, kMixed, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kFixed, kEmpty, 0.7), 0.7);
}

TEST(DefaultValueTest, Min) {
  EXPECT_DOUBLE_EQ(ComputeDefaultValue(DefaultValueStrategy::kMin, kMixed),
                   -0.4);
  EXPECT_DOUBLE_EQ(ComputeDefaultValue(DefaultValueStrategy::kMin, kEmpty),
                   0.5);  // fallback
}

TEST(DefaultValueTest, MinPositive) {
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kMinPositive, kMixed), 0.1);
  // No non-negative value: Table 12's fallback of 0.
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kMinPositive, kAllNegative),
      0.0);
}

TEST(DefaultValueTest, Max) {
  EXPECT_DOUBLE_EQ(ComputeDefaultValue(DefaultValueStrategy::kMax, kMixed),
                   0.9);
}

TEST(DefaultValueTest, MaxPositiveExcludesOne) {
  std::vector<double> with_one{0.2, 1.0};
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kMaxPositive, with_one), 0.2);
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kMaxPositive, kAllNegative),
      0.0);
}

TEST(DefaultValueTest, Avg) {
  EXPECT_NEAR(ComputeDefaultValue(DefaultValueStrategy::kAvg, kMixed),
              (-0.4 + 0.1 + 0.5 + 0.9) / 4.0, 1e-12);
}

TEST(DefaultValueTest, AvgPositive) {
  EXPECT_NEAR(
      ComputeDefaultValue(DefaultValueStrategy::kAvgPositive, kMixed),
      (0.1 + 0.5 + 0.9) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kAvgPositive, kAllNegative),
      0.0);
}

TEST(DefaultValueTest, SeedOfOneClampsBelowOne) {
  // §6.3.1: a seed of exactly 1 would make every derived value 1.
  std::vector<double> all_ones{1.0, 1.0};
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kAvg, all_ones), 0.98);
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kMax, all_ones), 0.98);
  EXPECT_DOUBLE_EQ(
      ComputeDefaultValue(DefaultValueStrategy::kMin, all_ones), 0.98);
}

TEST(DefaultValueTest, StrategyNames) {
  EXPECT_STREQ(DefaultValueStrategyToString(DefaultValueStrategy::kFixed),
               "default");
  EXPECT_STREQ(DefaultValueStrategyToString(DefaultValueStrategy::kMinPositive),
               "min_pos");
  EXPECT_STREQ(DefaultValueStrategyToString(DefaultValueStrategy::kAvgPositive),
               "avg_pos");
}

// Seeds stay inside [-1, 1) for every strategy over every sample
// (parameterized sweep).
class DefaultValueProperty
    : public ::testing::TestWithParam<DefaultValueStrategy> {};

TEST_P(DefaultValueProperty, SeedInRange) {
  for (const auto& sample :
       {kMixed, kAllNegative, kEmpty, std::vector<double>{1.0},
        std::vector<double>{0.0}, std::vector<double>{-1.0, 1.0}}) {
    double seed = ComputeDefaultValue(GetParam(), sample);
    EXPECT_GE(seed, -1.0);
    EXPECT_LT(seed, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DefaultValueProperty,
    ::testing::Values(DefaultValueStrategy::kFixed, DefaultValueStrategy::kMin,
                      DefaultValueStrategy::kMinPositive,
                      DefaultValueStrategy::kMax,
                      DefaultValueStrategy::kMaxPositive,
                      DefaultValueStrategy::kAvg,
                      DefaultValueStrategy::kAvgPositive));

}  // namespace
}  // namespace core
}  // namespace hypre
