// cypher_lite tests using the dissertation's query shapes (§4.3).
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "graphdb/cypher_lite.h"

namespace hypre {
namespace graphdb {
namespace {

class CypherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(g_.CreateIndex("uidIndex", "uid").ok());
    auto add = [&](int64_t uid, const std::string& pred, double intensity) {
      PropertyMap props;
      props["uid"] = PropertyValue(uid);
      props["predicate"] = PropertyValue(pred);
      props["intensity"] = PropertyValue(intensity);
      return g_.AddNode({"uidIndex"}, std::move(props));
    };
    n1_ = add(2, "dblp.venue='INFOCOM'", 0.23);
    n2_ = add(2, "dblp.venue='PODS'", 0.14);
    n3_ = add(2, "dblp_author.aid=128", -0.4);
    n4_ = add(38437, "dblp.venue='VLDB'", 0.5);
    ASSERT_TRUE(g_.AddEdge(n1_, n2_, "PREFERS").ok());
    ASSERT_TRUE(g_.AddEdge(n1_, n3_, "DISCARD").ok());
  }
  GraphStore g_;
  NodeId n1_ = 0, n2_ = 0, n3_ = 0, n4_ = 0;
};

TEST_F(CypherTest, StartAllWithWhereOrderBy) {
  // The dissertation's profile-listing query (§4.3).
  auto r = RunCypher(g_,
                     "START n=node(*) WHERE n.uid=2 "
                     "RETURN n.predicate, n.intensity "
                     "ORDER BY n.intensity DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsString(), "dblp.venue='INFOCOM'");
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 0.23);
  EXPECT_EQ(r->rows[2][0].AsString(), "dblp_author.aid=128");
}

TEST_F(CypherTest, MatchPrefersEdge) {
  // The dissertation's qualitative-traversal query (§4.3).
  auto r = RunCypher(g_,
                     "START n=node(0) MATCH n -[:PREFERS]-> m "
                     "RETURN id(n) as leftId, id(m) as rightId");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->columns[0], "leftId");
  EXPECT_EQ(static_cast<NodeId>(r->rows[0][0].AsInt()), n1_);
  EXPECT_EQ(static_cast<NodeId>(r->rows[0][1].AsInt()), n2_);
}

TEST_F(CypherTest, MatchIncomingEdge) {
  auto r = RunCypher(g_, "START n=node(1) MATCH n <-[:PREFERS]- m RETURN id(m)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(static_cast<NodeId>(r->rows[0][0].AsInt()), n1_);
}

TEST_F(CypherTest, IndexStart) {
  auto r = RunCypher(g_,
                     "START n=node:uidIndex(uid=38437) RETURN n.predicate");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "dblp.venue='VLDB'");
}

TEST_F(CypherTest, WhereExcludesNegativeIntensities) {
  auto r = RunCypher(g_,
                     "START n=node(*) WHERE n.uid=2 AND n.intensity>=0 "
                     "RETURN n.predicate ORDER BY n.intensity DESC");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(CypherTest, SkipAndLimit) {
  auto r = RunCypher(g_,
                     "START n=node(*) WHERE n.uid=2 RETURN n.predicate "
                     "ORDER BY n.intensity DESC SKIP 1 LIMIT 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "dblp.venue='PODS'");
}

TEST_F(CypherTest, MissingPropertyReturnsNull) {
  NodeId bare = g_.AddNode({}, {});
  (void)bare;
  auto r = RunCypher(g_, "START n=node(4) RETURN n.predicate");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->rows[0][0].is_null());
}

TEST_F(CypherTest, ParseErrors) {
  EXPECT_FALSE(RunCypher(g_, "").ok());
  EXPECT_FALSE(RunCypher(g_, "RETURN n.x").ok());
  EXPECT_FALSE(RunCypher(g_, "START n=node(*)").ok());  // no RETURN
  EXPECT_FALSE(RunCypher(g_, "START n=node(*) RETURN m.x").ok());  // unbound
  EXPECT_FALSE(RunCypher(g_, "START n=node(*) MATCH x -[:T]-> m RETURN id(m)")
                   .ok());  // MATCH must start at START var
  EXPECT_FALSE(RunCypher(g_, "START n=node(*) RETURN n.").ok());
}

TEST_F(CypherTest, MutateCreateNode) {
  auto r = RunCypherMutate(
      &g_,
      "CREATE (n:uidIndex {uid: 9, predicate: 'a=1', intensity: 0.25})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  NodeId id = static_cast<NodeId>(r->rows[0][0].AsInt());
  EXPECT_TRUE(g_.NodeExists(id));
  EXPECT_EQ(g_.GetNodeProperty(id, "uid")->AsInt(), 9);
  EXPECT_DOUBLE_EQ(g_.GetNodeProperty(id, "intensity")->AsDouble(), 0.25);
  // The label/property index picked the new node up.
  EXPECT_EQ(g_.FindNodes("uidIndex", "uid", PropertyValue(int64_t{9}))
                ->size(),
            1u);
  // RETURN id(n) flavor also accepted.
  auto r2 = RunCypherMutate(&g_, "CREATE (m:uidIndex {uid: 9}) RETURN id(m)");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST_F(CypherTest, MutateCreateEdgeAndSetDelete) {
  auto a = RunCypherMutate(&g_, "CREATE (a {})");
  auto b = RunCypherMutate(&g_, "CREATE (b {})");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  NodeId na = static_cast<NodeId>(a->rows[0][0].AsInt());
  NodeId nb = static_cast<NodeId>(b->rows[0][0].AsInt());
  auto e = RunCypherMutate(
      &g_, StringFormat("CREATE (%llu) -[:PREFERS]-> (%llu) {intensity: 0.3}",
                        (unsigned long long)na, (unsigned long long)nb));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(g_.OutDegree(na, "PREFERS"), 1u);

  auto set = RunCypherMutate(
      &g_, StringFormat("START n=node(%llu) SET n.intensity = 0.7",
                        (unsigned long long)na));
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_DOUBLE_EQ(g_.GetNodeProperty(na, "intensity")->AsDouble(), 0.7);

  auto del = RunCypherMutate(
      &g_, StringFormat("START n=node(%llu) DELETE n",
                        (unsigned long long)na));
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_FALSE(g_.NodeExists(na));
  EXPECT_EQ(g_.InDegree(nb), 0u);  // edge cascaded
}

TEST_F(CypherTest, MutateDelegatesReadsAndRejectsBadInput) {
  // A read-only query through the mutate entry point still works.
  auto r = RunCypherMutate(&g_,
                           "START n=node(*) WHERE n.uid=2 RETURN n.predicate");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_FALSE(RunCypherMutate(&g_, "CREATE ()").ok());
  EXPECT_FALSE(RunCypherMutate(&g_, "CREATE (n:L {uid 2})").ok());
  EXPECT_FALSE(RunCypherMutate(&g_, "START n=node(0) SET m.x = 1").ok());
  EXPECT_FALSE(RunCypherMutate(&g_, "START n=node(999) DELETE n").ok());
  EXPECT_FALSE(
      RunCypherMutate(&g_, "CREATE (999) -[:T]-> (1000)").ok());
}

TEST_F(CypherTest, NoIndexErrors) {
  EXPECT_FALSE(
      RunCypher(g_, "START n=node:missing(uid=1) RETURN n.predicate").ok());
}

}  // namespace
}  // namespace graphdb
}  // namespace hypre
