// PEPS tests: pair-table precomputation, completeness of the Complete mode
// against the exhaustive oracle, approximate-mode pruning, and Top-K
// agreement with the brute-force tuple ranking.
#include <gtest/gtest.h>

#include <set>

#include "hypre/algorithms/exhaustive.h"
#include "hypre/algorithms/peps.h"
#include "hypre/ranking.h"
#include "test_fixtures.h"

namespace hypre {
namespace core {
namespace {

using testing_fixtures::BuildMiniDblp;
using testing_fixtures::MiniBaseQuery;
using testing_fixtures::MiniPreferences;

class PepsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildMiniDblp(&db_);
    enhancer_ =
        std::make_unique<QueryEnhancer>(&db_, MiniBaseQuery(), "dblp.pid");
    prefs_ = MiniPreferences();
  }
  reldb::Database db_;
  std::unique_ptr<QueryEnhancer> enhancer_;
  std::vector<PreferenceAtom> prefs_;
};

TEST_F(PepsTest, PairTableKeepsOnlyApplicablePairs) {
  Peps peps(&prefs_, enhancer_.get());
  ASSERT_TRUE(peps.PrecomputePairs().ok());
  // 8 applicable pairs by inspection (fixture comment).
  EXPECT_EQ(peps.pairs().size(), 8u);
  for (const auto& pair : peps.pairs()) {
    EXPECT_GT(pair.num_tuples, 0u);
  }
  // Sorted descending by combined intensity.
  for (size_t i = 0; i + 1 < peps.pairs().size(); ++i) {
    EXPECT_GE(peps.pairs()[i].intensity, peps.pairs()[i + 1].intensity);
  }
}

TEST_F(PepsTest, CompleteOrderMatchesExhaustiveOracle) {
  Peps peps(&prefs_, enhancer_.get());
  auto order = peps.GenerateOrder(PepsMode::kComplete);
  ASSERT_TRUE(order.ok()) << order.status().ToString();

  auto oracle = ExhaustiveAndCombinations(prefs_, *enhancer_);
  ASSERT_TRUE(oracle.ok());
  // The oracle includes singles; PEPS order covers sizes >= 2.
  std::set<std::vector<size_t>> oracle_sets;
  for (const auto& r : *oracle) {
    if (r.num_predicates >= 2) oracle_sets.insert(r.combination.SortedMembers());
  }
  std::set<std::vector<size_t>> peps_sets;
  for (const auto& r : *order) {
    peps_sets.insert(r.combination.SortedMembers());
  }
  EXPECT_EQ(peps_sets, oracle_sets);
  // Descending intensity.
  for (size_t i = 0; i + 1 < order->size(); ++i) {
    EXPECT_GE((*order)[i].intensity, (*order)[i + 1].intensity);
  }
}

TEST_F(PepsTest, ApproximateIsSubsetOfComplete) {
  Peps complete(&prefs_, enhancer_.get());
  Peps approx(&prefs_, enhancer_.get());
  auto complete_order = complete.GenerateOrder(PepsMode::kComplete);
  auto approx_order = approx.GenerateOrder(PepsMode::kApproximate);
  ASSERT_TRUE(complete_order.ok());
  ASSERT_TRUE(approx_order.ok());
  std::set<std::vector<size_t>> complete_sets;
  for (const auto& r : *complete_order) {
    complete_sets.insert(r.combination.SortedMembers());
  }
  for (const auto& r : *approx_order) {
    EXPECT_TRUE(complete_sets.count(r.combination.SortedMembers()) > 0);
  }
  EXPECT_LE(approx_order->size(), complete_order->size());
  // Every approximate seed beats the best single preference.
  for (const auto& r : *approx_order) {
    EXPECT_GT(r.intensity, prefs_.front().intensity);
  }
}

TEST_F(PepsTest, TopKMatchesBruteForceGroundTruth) {
  // The brute-force ranking scores each tuple by f_and over ALL matched
  // preferences; complete PEPS must reproduce it, because the full matched
  // set of every tuple is itself an applicable combination.
  auto truth = ScoreTuplesByPreferences(*enhancer_, prefs_);
  ASSERT_TRUE(truth.ok());

  Peps peps(&prefs_, enhancer_.get());
  auto topk = peps.TopK(truth->size(), PepsMode::kComplete);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ASSERT_EQ(topk->size(), truth->size());
  for (size_t i = 0; i < truth->size(); ++i) {
    EXPECT_NEAR((*topk)[i].intensity, (*truth)[i].intensity, 1e-9)
        << "rank " << i;
  }
  // Tuple sets agree rank-by-rank up to ties: compare multisets of
  // (intensity) and the full key sets.
  std::set<std::string> truth_keys;
  std::set<std::string> peps_keys;
  for (const auto& t : *truth) truth_keys.insert(t.key.ToString());
  for (const auto& t : *topk) peps_keys.insert(t.key.ToString());
  EXPECT_EQ(truth_keys, peps_keys);
}

TEST_F(PepsTest, TopKHonorsK) {
  Peps peps(&prefs_, enhancer_.get());
  auto top3 = peps.TopK(3, PepsMode::kComplete);
  ASSERT_TRUE(top3.ok());
  EXPECT_EQ(top3->size(), 3u);
  // Descending intensity.
  for (size_t i = 0; i + 1 < top3->size(); ++i) {
    EXPECT_GE((*top3)[i].intensity, (*top3)[i + 1].intensity);
  }
  // No duplicate tuples.
  std::set<std::string> keys;
  for (const auto& t : *top3) keys.insert(t.key.ToString());
  EXPECT_EQ(keys.size(), top3->size());
}

TEST_F(PepsTest, TopKCoversSinglePreferenceTuples) {
  // Paper 8 matches only aid=4... not in the preference list; paper 5
  // matches only aid=3 (single preference). Singles participation must
  // surface it when k is large.
  Peps peps(&prefs_, enhancer_.get());
  auto all = peps.TopK(100, PepsMode::kComplete);
  ASSERT_TRUE(all.ok());
  bool found_p5 = false;
  for (const auto& t : *all) {
    if (t.key.AsInt() == 5) {
      found_p5 = true;
      EXPECT_NEAR(t.intensity, 0.2, 1e-12);  // aid=3's own intensity
    }
    EXPECT_NE(t.key.AsInt(), 8);  // matches no preference: never ranked
  }
  EXPECT_TRUE(found_p5);
}

TEST_F(PepsTest, ExpansionProbesAreCounted) {
  Peps peps(&prefs_, enhancer_.get());
  ASSERT_TRUE(peps.GenerateOrder(PepsMode::kComplete).ok());
  EXPECT_GT(peps.num_expansion_probes(), 0u);
}

TEST(PepsEdge, EmptyAndSinglePreferenceLists) {
  reldb::Database db;
  BuildMiniDblp(&db);
  QueryEnhancer enhancer(&db, MiniBaseQuery(), "dblp.pid");

  std::vector<PreferenceAtom> empty;
  Peps peps_empty(&empty, &enhancer);
  auto order = peps_empty.GenerateOrder(PepsMode::kComplete);
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->empty());
  auto topk = peps_empty.TopK(5, PepsMode::kComplete);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->empty());

  std::vector<PreferenceAtom> one{MakeAtom("dblp.venue='V1'", 0.5).value()};
  Peps peps_one(&one, &enhancer);
  auto topk_one = peps_one.TopK(10, PepsMode::kComplete);
  ASSERT_TRUE(topk_one.ok());
  EXPECT_EQ(topk_one->size(), 3u);  // V1 papers 1, 2, 6
  for (const auto& t : *topk_one) {
    EXPECT_DOUBLE_EQ(t.intensity, 0.5);
  }
}

}  // namespace
}  // namespace core
}  // namespace hypre
