// Car dealership: HYPRE vs. a Preference-SQL-style baseline (§2.5,
// Example 5).
//
// The dissertation motivates the hybrid model with this scenario: three
// preferences where mileage matters more than make. Preference SQL's
// PRIOR-TO returns t1, t3, t2 — but t2 matches the price AND mileage
// preferences while t3 misses the price preference, so the expected answer
// is t1, t2, t3. HYPRE's intensities produce exactly that (§4.6.1).
#include <cstdio>

#include <algorithm>

#include "example_util.h"
#include "hypre/api/session.h"
#include "hypre/ranking.h"

using namespace hypre;
using examples::Unwrap;

namespace {

/// A Preference-SQL-style evaluation of
///   PREFERRING price BETWEEN ... AND mileage BETWEEN ...
///              AND make IN ('BMW', 'Honda')
/// under best-match (distance) semantics: each soft clause contributes an
/// error — 0 if satisfied, the normalized distance to the range for
/// BETWEEN, 1 for a violated IN — and tuples are ranked by total error.
/// This reproduces the order the dissertation reports for Preference SQL
/// (t1, t3, t2): t3's small price overshoot costs less than t2's
/// categorical make miss. No intensities exist in this model, so "mileage
/// matters more than make" cannot tip the scale (§1.3, §2.5).
std::vector<std::pair<std::string, double>> PreferenceSqlOrder(
    const reldb::Database& db) {
  const reldb::Table* cars = db.GetTable("car");
  auto range_error = [](double v, double lo, double hi) {
    if (v >= lo && v <= hi) return 0.0;
    double dist = v < lo ? lo - v : v - hi;
    return std::min(1.0, dist / (hi - lo));
  };
  std::vector<std::pair<std::string, double>> scored;  // (id, total error)
  for (const auto& row : cars->rows()) {
    double price = static_cast<double>(row[1].AsInt());
    double mileage = static_cast<double>(row[2].AsInt());
    const std::string& make = row[3].AsString();
    double error = range_error(price, 7000, 16000) +
                   range_error(mileage, 20000, 50000) +
                   ((make == "BMW" || make == "Honda") ? 0.0 : 1.0);
    scored.emplace_back(row[0].AsString(), error);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.second < b.second;
                   });
  return scored;
}

}  // namespace

int main() {
  api::Session session(examples::MakeDealershipDatabase());
  const reldb::Database& db = *session.db();

  std::printf("Dealership relation (Table 5):\n");
  for (const auto& row : db.GetTable("car")->rows()) {
    std::printf("  %-3s price=$%-6lld mileage=%-6lld make=%s\n",
                row[0].AsString().c_str(), (long long)row[1].AsInt(),
                (long long)row[2].AsInt(), row[3].AsString().c_str());
  }

  // Baseline: Preference SQL semantics (no intensities).
  std::printf(
      "\nPreference-SQL-style order (best-match distance, no intensities; "
      "expected t1 > t3 > t2):\n");
  for (const auto& [id, error] : PreferenceSqlOrder(db)) {
    std::printf("  %s (total clause error %.2f)\n", id.c_str(), error);
  }

  // HYPRE: the same preferences with intensities 0.8 / 0.5 / 0.2.
  std::vector<core::PreferenceAtom> atoms;
  atoms.push_back(
      Unwrap(core::MakeAtom("price BETWEEN 7000 AND 16000", 0.8)));
  atoms.push_back(
      Unwrap(core::MakeAtom("mileage BETWEEN 20000 AND 50000", 0.5)));
  atoms.push_back(Unwrap(core::MakeAtom("make IN ('BMW', 'Honda')", 0.2)));

  reldb::Query base;
  base.from = "car";
  core::QueryEnhancer* enhancer = Unwrap(session.GetEnhancer(base, "car.id"));
  auto ranked = Unwrap(core::ScoreTuplesByPreferences(*enhancer, atoms));

  std::printf("\nHYPRE order (intensity-combined, expected t1 > t2 > t3):\n");
  for (const auto& tuple : ranked) {
    std::printf("  %s (combined intensity %.2f)\n",
                tuple.key.AsString().c_str(), tuple.intensity);
  }
  std::printf(
      "\nt2 overtakes t3 because it matches the two high-intensity "
      "preferences\n(price, mileage) while t3 misses price — information "
      "the intensity-free\nPRIOR TO clause cannot encode.\n");
  return 0;
}
