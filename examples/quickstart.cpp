// Quickstart: the dissertation's running car-dealership example (Example 6)
// end to end — build a profile, enhance a query, rank the results.
//
//   $ ./quickstart
//
// Expected ranking (Table 9): t1 (0.92), t2 (0.90), t3 (0.60).
#include <cstdio>

#include "example_util.h"
#include "hypre/api/session.h"
#include "hypre/combination.h"
#include "hypre/hypre_graph.h"
#include "hypre/ranking.h"

using namespace hypre;
using examples::Unwrap;

int main() {
  // 1. A session over the dealership relation of Tables 5/8.
  api::Session session(examples::MakeDealershipDatabase());

  // 2. A user profile in the HYPRE graph: three quantitative preferences.
  core::HypreGraph graph;
  const core::UserId uid = 1;
  struct {
    const char* predicate;
    double intensity;
  } prefs[] = {
      {"price BETWEEN 7000 AND 16000", 0.8},
      {"mileage BETWEEN 20000 AND 50000", 0.5},
      {"make IN ('BMW', 'Honda')", 0.2},
  };
  for (const auto& p : prefs) {
    Unwrap(graph.AddQuantitative({uid, p.predicate, p.intensity}));
  }

  std::printf("User profile (descending by intensity):\n");
  for (const auto& entry : graph.ListPreferences(uid)) {
    std::printf("  %-36s intensity=%.2f  (%s)\n", entry.predicate.c_str(),
                entry.intensity,
                core::ProvenanceToString(entry.provenance));
  }

  // 3. Enhance the base query "SELECT * FROM car" with the profile and rank
  //    each car by f_and over the preferences it matches (§4.6.1). The
  //    session caches the probe engine under (base query, key column).
  reldb::Query base;
  base.from = "car";
  core::QueryEnhancer* enhancer =
      Unwrap(session.GetEnhancer(base, "car.id"));

  std::vector<core::PreferenceAtom> atoms;
  for (const auto& entry : graph.ListPreferences(uid)) {
    atoms.push_back(Unwrap(core::MakeAtom(entry.predicate, entry.intensity)));
  }

  // Show the §4.6-style rewritten SQL for the mixed clause.
  core::Combiner combiner(&atoms);
  std::vector<size_t> all(atoms.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  core::Combination mixed = combiner.MixedClause(all);
  std::printf("\nEnhanced query:\n  %s\n",
              enhancer->Enhance(combiner.BuildExpr(mixed)).ToSql().c_str());

  auto ranked = Unwrap(core::ScoreTuplesByPreferences(*enhancer, atoms));

  std::printf("\nRanked results (Table 9 expects 0.92 / 0.90 / 0.60):\n");
  for (const auto& tuple : ranked) {
    std::printf("  car %-4s combined intensity = %.2f\n",
                tuple.key.AsString().c_str(), tuple.intensity);
  }
  return 0;
}
