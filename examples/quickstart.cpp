// Quickstart: the dissertation's running car-dealership example (Example 6)
// end to end — build a profile, enhance a query, rank the results.
//
//   $ ./quickstart
//
// Expected ranking (Table 9): t1 (0.92), t2 (0.90), t3 (0.60).
#include <cstdio>

#include "hypre/combination.h"
#include "hypre/hypre_graph.h"
#include "hypre/query_enhancement.h"
#include "hypre/ranking.h"
#include "workload/canonical.h"

using namespace hypre;

int main() {
  // 1. A database: the dealership relation of Tables 5/8.
  reldb::Database db;
  Status st = workload::BuildDealershipDatabase(&db);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. A user profile in the HYPRE graph: three quantitative preferences.
  core::HypreGraph graph;
  const core::UserId uid = 1;
  struct {
    const char* predicate;
    double intensity;
  } prefs[] = {
      {"price BETWEEN 7000 AND 16000", 0.8},
      {"mileage BETWEEN 20000 AND 50000", 0.5},
      {"make IN ('BMW', 'Honda')", 0.2},
  };
  for (const auto& p : prefs) {
    auto r = graph.AddQuantitative({uid, p.predicate, p.intensity});
    if (!r.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("User profile (descending by intensity):\n");
  for (const auto& entry : graph.ListPreferences(uid)) {
    std::printf("  %-36s intensity=%.2f  (%s)\n", entry.predicate.c_str(),
                entry.intensity,
                core::ProvenanceToString(entry.provenance));
  }

  // 3. Enhance the base query "SELECT * FROM car" with the profile and rank
  //    each car by f_and over the preferences it matches (§4.6.1).
  reldb::Query base;
  base.from = "car";
  core::QueryEnhancer enhancer(&db, base, "car.id");

  std::vector<core::PreferenceAtom> atoms;
  for (const auto& entry : graph.ListPreferences(uid)) {
    auto atom = core::MakeAtom(entry.predicate, entry.intensity);
    if (!atom.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   atom.status().ToString().c_str());
      return 1;
    }
    atoms.push_back(std::move(atom.value()));
  }

  // Show the §4.6-style rewritten SQL for the mixed clause.
  core::Combiner combiner(&atoms);
  std::vector<size_t> all(atoms.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  core::Combination mixed = combiner.MixedClause(all);
  std::printf("\nEnhanced query:\n  %s\n",
              enhancer.Enhance(combiner.BuildExpr(mixed)).ToSql().c_str());

  auto ranked = core::ScoreTuplesByPreferences(enhancer, atoms);
  if (!ranked.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 ranked.status().ToString().c_str());
    return 1;
  }

  std::printf("\nRanked results (Table 9 expects 0.92 / 0.90 / 0.60):\n");
  for (const auto& tuple : *ranked) {
    std::printf("  car %-4s combined intensity = %.2f\n",
                tuple.key.AsString().c_str(), tuple.intensity);
  }
  return 0;
}
