// Contextual recommendations: the dissertation's background machinery
// (§2.4) and future-work items (§8.2) working together —
//  * a contextual profile (Definition 11 / Figure 2): different preferences
//    under (company, period) contexts;
//  * a CP-net (Definition 12 / Figure 3): genre-conditional director
//    preferences;
//  * a group profile (§8.2): merging the family's preferences for a shared
//    movie night.
#include <cstdio>

#include "example_util.h"
#include "hypre/api/session.h"
#include "hypre/context.h"
#include "hypre/cp_net.h"
#include "hypre/group_profile.h"
#include "hypre/hypre_graph.h"
#include "hypre/ranking.h"

using namespace hypre;
using examples::Die;
using examples::Unwrap;

namespace {

void PrintRanking(api::Session* session,
                  const std::vector<core::QuantitativePreference>& prefs) {
  // Every context resolves through the SAME session-cached probe engine:
  // the first ranking pays the leaf probes, later ones are pure algebra.
  reldb::Query base;
  base.from = "movie";
  core::QueryEnhancer* enhancer =
      Unwrap(session->GetEnhancer(base, "movie.movie_id"));
  std::vector<core::PreferenceAtom> atoms;
  for (const auto& p : prefs) {
    atoms.push_back(Unwrap(core::MakeAtom(p.predicate, p.intensity)));
  }
  auto ranked = Unwrap(core::ScoreTuplesByPreferences(*enhancer, atoms));
  const reldb::Table* movies = session->db()->GetTable("movie");
  for (const auto& tuple : ranked) {
    for (const auto& row : movies->rows()) {
      if (row[0].Equals(tuple.key)) {
        std::printf("  %+0.3f  %s\n", tuple.intensity,
                    row[1].AsString().c_str());
      }
    }
  }
}

}  // namespace

int main() {
  api::Session session(examples::MakeMovieDatabase());

  // --- 1. Contextual profile over (company, period) ------------------------
  core::ContextualProfile profile({"company", "period"});
  const core::UserId uid = 1;
  auto add = [&](core::ContextState state, const char* predicate,
                 double intensity) {
    Status s = profile.AddContextPreference(
        state, {uid, predicate, intensity});
    if (!s.ok()) Die(s);
  };
  // Generic taste; overridden with friends on weekends (comedy night) and
  // with family during holidays (no horror, dramas welcome).
  add({"ALL", "ALL"}, "movie.genre='drama'", 0.4);
  add({"friends", "weekend"}, "movie.genre='comedy'", 0.9);
  add({"friends", "weekend"}, "movie.genre='drama'", 0.1);
  add({"family", "holidays"}, "movie.genre='horror'", -0.9);
  add({"family", "holidays"}, "movie.genre='drama'", 0.8);

  std::printf("Context (friends, weekend):\n");
  PrintRanking(&session, Unwrap(profile.Resolve({"friends", "weekend"})));
  std::printf("\nContext (family, holidays):\n");
  PrintRanking(&session, Unwrap(profile.Resolve({"family", "holidays"})));

  // --- 2. CP-net: Figure 3's genre-conditional director preference ---------
  core::CpNet net;
  if (!net.AddAttribute("genre", {"comedy", "drama"}).ok() ||
      !net.AddAttribute("director", {"S. Spielberg", "M. Curtiz"}).ok() ||
      !net.AddDependency("genre", "director").ok()) {
    Die(Status::Internal("CP-net setup failed"));
  }
  Status s1 = net.SetPreferenceOrder("genre", {}, {"comedy", "drama"});
  Status s2 = net.SetPreferenceOrder("director", {"comedy"},
                                     {"S. Spielberg", "M. Curtiz"});
  Status s3 = net.SetPreferenceOrder("director", {"drama"},
                                     {"M. Curtiz", "S. Spielberg"});
  if (!s1.ok() || !s2.ok() || !s3.ok()) Die(Status::Internal("CPT failed"));

  std::printf("\nCP-net outcome ranking (genre-conditional director):\n");
  for (const auto& outcome : Unwrap(net.RankOutcomes())) {
    std::printf("  %s by %s\n", outcome.at("genre").c_str(),
                outcome.at("director").c_str());
  }
  core::Outcome best = Unwrap(net.BestOutcome({{"genre", "drama"}}));
  std::printf("Best pick when the group settles on drama: %s\n",
              best.at("director").c_str());

  // --- 3. Group profile: family movie night ---------------------------------
  core::HypreGraph graph;
  // Parent 1 likes dramas, parent 2 likes comedies, the kid dislikes drama.
  Unwrap(graph.AddQuantitative({10, "movie.genre='drama'", 0.8}));
  Unwrap(graph.AddQuantitative({11, "movie.genre='comedy'", 0.7}));
  Unwrap(graph.AddQuantitative({12, "movie.genre='drama'", -0.6}));
  Unwrap(graph.AddQuantitative({12, "movie.genre='comedy'", 0.5}));
  Unwrap(core::MaterializeGroupProfile(&graph, {10, 11, 12}, 99));

  std::printf("\nFamily group profile (average aggregation):\n");
  std::vector<core::QuantitativePreference> group_prefs;
  for (const auto& entry : graph.ListPreferences(99, true)) {
    std::printf("  %-24s %+0.3f\n", entry.predicate.c_str(),
                entry.intensity);
    group_prefs.push_back({99, entry.predicate, entry.intensity});
  }
  std::printf("Group ranking:\n");
  PrintRanking(&session, group_prefs);
  return 0;
}
