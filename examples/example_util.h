// Shared boilerplate for the example programs: Status exit helpers and the
// canonical database setups, so each example is only its scenario.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/status.h"
#include "hypre/ranking.h"
#include "reldb/database.h"
#include "reldb/executor.h"
#include "workload/canonical.h"
#include "workload/dblp_generator.h"

namespace hypre {
namespace examples {

[[noreturn]] inline void Die(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  std::exit(1);
}

inline void CheckOk(const Status& st) {
  if (!st.ok()) Die(st);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).TakeValue();
}

/// \brief The dissertation's car-dealership relation (Tables 5/8).
inline std::unique_ptr<reldb::Database> MakeDealershipDatabase() {
  auto db = std::make_unique<reldb::Database>();
  CheckOk(workload::BuildDealershipDatabase(db.get()));
  return db;
}

/// \brief The Movie relation (Table 3).
inline std::unique_ptr<reldb::Database> MakeMovieDatabase() {
  auto db = std::make_unique<reldb::Database>();
  CheckOk(workload::BuildMovieDatabase(db.get()));
  return db;
}

/// \brief Synthetic DBLP sized to `num_papers`; `stats_out`, if non-null,
/// receives the generation stats.
inline std::unique_ptr<reldb::Database> MakeDblpDatabase(
    size_t num_papers, uint64_t seed = 0,
    workload::DblpStats* stats_out = nullptr) {
  workload::DblpConfig config;
  config.num_papers = num_papers;
  config.num_authors = num_papers / 3;
  if (seed != 0) config.seed = seed;
  auto db = std::make_unique<reldb::Database>();
  workload::DblpStats stats = Unwrap(workload::GenerateDblp(config, db.get()));
  if (stats_out != nullptr) *stats_out = stats;
  return db;
}

/// \brief The dissertation's base query: SELECT * FROM dblp JOIN
/// dblp_author, tuple identity dblp.pid.
inline reldb::Query DblpBaseQuery() {
  reldb::Query q;
  q.from = "dblp";
  q.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  return q;
}

/// \brief Prints one "<intensity>  pid=<pid> <venue> (<year>)" line for a
/// ranked DBLP paper, resolved through the pid hash index.
inline void PrintRankedPaper(const reldb::Database& db,
                             const core::RankedTuple& tuple) {
  const reldb::Table* dblp = db.GetTable("dblp");
  const reldb::HashIndex* by_pid = dblp->GetHashIndex("pid");
  const auto& rows = by_pid->Lookup(tuple.key);
  if (rows.empty()) return;
  const reldb::Row& row = dblp->row(rows[0]);
  std::printf("  %.3f  pid=%-6lld %-10s (%lld)\n", tuple.intensity,
              (long long)tuple.key.AsInt(), row[3].AsString().c_str(),
              (long long)row[2].AsInt());
}

}  // namespace examples
}  // namespace hypre
