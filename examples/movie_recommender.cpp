// Movie recommender: hybrid preferences over the Movie relation (Table 3).
//
// Demonstrates what makes the HYPRE model *hybrid*:
//  * quantitative preferences, including a NEGATIVE one ("I dislike horror")
//    — inexpressible in a purely qualitative model (§1.2);
//  * qualitative preferences ("comedy over drama") whose intensities are
//    converted into quantitative scores via Eq. 4.1/4.2, totally ordering
//    movies a qualitative model could only partially order;
//  * conflict handling: a cyclic statement is kept but quarantined (CYCLE).
#include <cstdio>

#include "example_util.h"
#include "hypre/api/session.h"
#include "hypre/hypre_graph.h"
#include "hypre/ranking.h"

using namespace hypre;
using examples::Unwrap;

int main() {
  api::Session session(examples::MakeMovieDatabase());
  const reldb::Database& db = *session.db();

  core::HypreGraph graph;
  const core::UserId uid = 7;

  // Quantitative: likes comedies a lot, dislikes horror outright.
  Unwrap(graph.AddQuantitative({uid, "movie.genre='comedy'", 0.8}));
  Unwrap(graph.AddQuantitative({uid, "movie.genre='horror'", -0.9}));

  // Qualitative: dramas are clearly preferred over thrillers (0.6), and
  // Spielberg slightly over Curtiz (0.2). None of these four predicates has
  // a user-given score — the graph mints them all.
  Unwrap(graph.AddQualitative(
      {uid, "movie.genre='drama'", "movie.genre='thriller'", 0.6}));
  Unwrap(graph.AddQualitative({uid, "movie.director='S. Spielberg'",
                               "movie.director='M. Curtiz'", 0.2}));

  // A contradictory follow-up ("thriller over drama") closes a cycle: it is
  // stored, labeled CYCLE, and excluded from ranking.
  auto cyclic = Unwrap(graph.AddQualitative(
      {uid, "movie.genre='thriller'", "movie.genre='drama'", 0.3}));
  std::printf("Contradictory insert handled as: %s edge\n\n",
              core::EdgeLabelToString(cyclic.label));

  std::printf("Derived profile (note computed/default provenance):\n");
  for (const auto& entry :
       graph.ListPreferences(uid, /*include_negative=*/true)) {
    std::printf("  %-36s %+.3f  (%s)\n", entry.predicate.c_str(),
                entry.intensity,
                core::ProvenanceToString(entry.provenance));
  }

  // Rank all movies. Negative preferences push horror below everything.
  // The session hands out the cached probe engine for this query spec.
  reldb::Query base;
  base.from = "movie";
  core::QueryEnhancer* enhancer =
      Unwrap(session.GetEnhancer(base, "movie.movie_id"));
  std::vector<core::PreferenceAtom> atoms;
  for (const auto& entry :
       graph.ListPreferences(uid, /*include_negative=*/true)) {
    atoms.push_back(Unwrap(core::MakeAtom(entry.predicate, entry.intensity)));
  }
  auto ranked = Unwrap(core::ScoreTuplesByPreferences(*enhancer, atoms));

  std::printf("\nPersonalized movie ranking:\n");
  const reldb::Table* movies = db.GetTable("movie");
  for (const auto& tuple : ranked) {
    // Fetch the title for display.
    for (const auto& row : movies->rows()) {
      if (row[0].Equals(tuple.key)) {
        std::printf("  %+.3f  %-28s (%s, %s)\n", tuple.intensity,
                    row[1].AsString().c_str(), row[4].AsString().c_str(),
                    row[3].AsString().c_str());
      }
    }
  }
  std::printf(
      "\nA purely qualitative model could not even express the horror "
      "dislike;\na purely quantitative one had no score for drama/thriller/"
      "director\npredicates until the graph computed them.\n");
  return 0;
}
