// DBLP personalization: the dissertation's full pipeline at example scale.
//
//   synthetic DBLP -> §6.2 preference extraction -> HYPRE graph ->
//   PEPS Top-K ("show me all papers" personalized) vs. the TA baseline.
//
//   $ ./dblp_personalization [num_papers] [k]
#include <cstdio>
#include <cstdlib>

#include "hypre/algorithms/peps.h"
#include "hypre/algorithms/threshold_algorithm.h"
#include "hypre/hypre_graph.h"
#include "hypre/metrics.h"
#include "sqlparse/parser.h"
#include "workload/dblp_generator.h"
#include "workload/preference_extraction.h"

using namespace hypre;

namespace {

void Die(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).TakeValue();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_papers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 15;

  // 1. Generate the citation network.
  workload::DblpConfig config;
  config.num_papers = num_papers;
  config.num_authors = num_papers / 3;
  config.seed = 2024;
  reldb::Database db;
  auto stats = Unwrap(workload::GenerateDblp(config, &db));
  std::printf("Generated DBLP: %zu papers, %zu authors, %zu author links, "
              "%zu citations\n",
              stats.num_papers, stats.num_authors, stats.num_author_links,
              stats.num_citations);

  // 2. Extract preferences (§6.2) and pick the busiest user.
  auto extracted = Unwrap(workload::ExtractPreferences(db, {}));
  core::UserId uid = extracted.UsersByPreferenceCount().front();
  std::printf("Extracted %zu quantitative + %zu qualitative preferences; "
              "focal user %lld has %zu\n",
              extracted.quantitative.size(), extracted.qualitative.size(),
              static_cast<long long>(uid),
              extracted.per_user_counts.at(uid));

  // 3. Build the user's HYPRE graph.
  core::HypreGraph graph;
  size_t quant_nodes = 0;
  for (const auto& q : extracted.quantitative) {
    if (q.uid != uid) continue;
    Unwrap(graph.AddQuantitative(q));
    ++quant_nodes;
  }
  for (const auto& q : extracted.qualitative) {
    if (q.uid != uid) continue;
    Unwrap(graph.AddQualitative(q));
  }
  auto labels = graph.CountEdgeLabels();
  std::printf("HYPRE graph: %zu nodes (%zu user quantitative), edges "
              "PREFERS=%zu CYCLE=%zu DISCARD=%zu\n",
              graph.num_nodes(), quant_nodes, labels.prefers, labels.cycle,
              labels.discard);

  // 4. Personalize "SELECT * FROM dblp" via PEPS Top-K.
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  core::QueryEnhancer enhancer(&db, base, "dblp.pid");

  std::vector<core::PreferenceAtom> atoms;
  for (const auto& entry : graph.ListPreferences(uid)) {
    atoms.push_back(Unwrap(core::MakeAtom(entry.predicate, entry.intensity)));
  }
  core::SortByIntensityDesc(&atoms);

  core::Peps peps(&atoms, &enhancer);
  auto top = Unwrap(peps.TopK(k, core::PepsMode::kComplete));
  std::printf("\nPEPS Top-%zu papers for user %lld:\n", k,
              static_cast<long long>(uid));
  const reldb::Table* dblp = db.GetTable("dblp");
  const reldb::HashIndex* by_pid = dblp->GetHashIndex("pid");
  for (const auto& tuple : top) {
    const auto& rows = by_pid->Lookup(tuple.key);
    if (rows.empty()) continue;
    const reldb::Row& row = dblp->row(rows[0]);
    std::printf("  %.3f  pid=%-6lld %-10s (%lld)\n", tuple.intensity,
                (long long)tuple.key.AsInt(), row[3].AsString().c_str(),
                (long long)row[2].AsInt());
  }

  // 5. Compare coverage against the TA baseline (quantitative-only view).
  core::GradedList venue_list("venue");
  core::GradedList author_list("author");
  for (const auto& q : extracted.quantitative) {
    if (q.uid != uid || q.intensity <= 0) continue;
    auto expr = Unwrap(sqlparse::ParsePredicate(q.predicate));
    auto keys = Unwrap(enhancer.MatchingKeys(expr));
    bool is_venue = q.predicate.find("venue") != std::string::npos;
    for (const auto& key : keys) {
      (is_venue ? venue_list : author_list).AddGrade(key, q.intensity);
    }
  }
  venue_list.Finalize();
  author_list.Finalize();
  auto ta = Unwrap(core::ThresholdAlgorithmTopK({venue_list, author_list},
                                                /*k=*/0));
  auto all_peps = Unwrap(peps.TopK(/*k=*/0, core::PepsMode::kComplete));
  std::printf("\nCoverage: PEPS (hybrid graph) ranks %zu papers; "
              "TA (original quantitative only) ranks %zu.\n",
              all_peps.size(), ta.size());
  return 0;
}
