// DBLP personalization: the dissertation's full pipeline at example scale.
//
//   synthetic DBLP -> §6.2 preference extraction -> HYPRE graph ->
//   PEPS Top-K ("show me all papers" personalized) vs. the TA baseline —
//   both dispatched BY NAME through the unified enumeration API, sharing
//   one session-cached probe engine.
//
//   $ ./dblp_personalization [num_papers] [k]
#include <cstdio>
#include <cstdlib>

#include "example_util.h"
#include "hypre/api/session.h"
#include "hypre/hypre_graph.h"
#include "hypre/metrics.h"
#include "workload/dblp_generator.h"
#include "workload/preference_extraction.h"

using namespace hypre;
using examples::Unwrap;

int main(int argc, char** argv) {
  size_t num_papers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 15;

  // 1. Generate the citation network into a session-owned database.
  workload::DblpStats stats;
  api::Session session(
      examples::MakeDblpDatabase(num_papers, /*seed=*/2024, &stats));
  std::printf("Generated DBLP: %zu papers, %zu authors, %zu author links, "
              "%zu citations\n",
              stats.num_papers, stats.num_authors, stats.num_author_links,
              stats.num_citations);

  // 2. Extract preferences (§6.2) and pick the busiest user.
  auto extracted = Unwrap(workload::ExtractPreferences(*session.db(), {}));
  core::UserId uid = extracted.UsersByPreferenceCount().front();
  std::printf("Extracted %zu quantitative + %zu qualitative preferences; "
              "focal user %lld has %zu\n",
              extracted.quantitative.size(), extracted.qualitative.size(),
              static_cast<long long>(uid),
              extracted.per_user_counts.at(uid));

  // 3. Build the user's HYPRE graph.
  core::HypreGraph graph;
  size_t quant_nodes = 0;
  for (const auto& q : extracted.quantitative) {
    if (q.uid != uid) continue;
    Unwrap(graph.AddQuantitative(q));
    ++quant_nodes;
  }
  for (const auto& q : extracted.qualitative) {
    if (q.uid != uid) continue;
    Unwrap(graph.AddQualitative(q));
  }
  auto labels = graph.CountEdgeLabels();
  std::printf("HYPRE graph: %zu nodes (%zu user quantitative), edges "
              "PREFERS=%zu CYCLE=%zu DISCARD=%zu\n",
              graph.num_nodes(), quant_nodes, labels.prefers, labels.cycle,
              labels.discard);

  // 4. Personalize "SELECT * FROM dblp": one request, algorithm by name.
  api::EnumerationRequest request;
  request.algorithm = "peps";
  request.base_query = examples::DblpBaseQuery();
  request.key_column = "dblp.pid";
  request.k = k;
  for (const auto& entry : graph.ListPreferences(uid)) {
    request.preferences.push_back(
        Unwrap(core::MakeAtom(entry.predicate, entry.intensity)));
  }

  api::EnumerationResult top = Unwrap(session.Enumerate(request));
  std::printf("\nPEPS Top-%zu papers for user %lld "
              "(epoch %llu, %zu leaf queries, %zu cache hits):\n",
              k, static_cast<long long>(uid),
              (unsigned long long)top.epoch, top.stats.num_leaf_queries,
              top.stats.num_cache_hits);
  for (const auto& tuple : top.top_k) {
    examples::PrintRankedPaper(*session.db(), tuple);
  }

  // 5. Compare coverage against the TA baseline: SAME request shape, the
  //    algorithm name and preference view swapped. TA sees only the
  //    original quantitative preferences (no graph-derived intensities) —
  //    exactly why PEPS covers more tuples in Figures 37/38.
  api::EnumerationRequest ta_request;
  ta_request.algorithm = "ta";
  ta_request.base_query = request.base_query;
  ta_request.key_column = request.key_column;
  ta_request.k = 0;  // rank everything TA can see
  for (const auto& q : extracted.quantitative) {
    if (q.uid != uid || q.intensity <= 0) continue;
    ta_request.preferences.push_back(
        Unwrap(core::MakeAtom(q.predicate, q.intensity)));
  }
  api::EnumerationResult ta = Unwrap(session.Enumerate(ta_request));

  api::EnumerationRequest all_request = request;
  all_request.k = ~size_t{0};  // every ranked tuple
  api::EnumerationResult all_peps = Unwrap(session.Enumerate(all_request));
  std::printf("\nCoverage: PEPS (hybrid graph) ranks %zu papers; "
              "TA (original quantitative only) ranks %zu.\n"
              "Second PEPS request reused the session's engine: "
              "%zu leaf queries.\n",
              all_peps.top_k.size(), ta.top_k.size(),
              all_peps.stats.num_leaf_queries);
  return 0;
}
