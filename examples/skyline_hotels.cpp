// Skyline hotels: attribute-based preferences (dissertation §1.4 / §8.2).
//
// "I want the cheapest hotel that is close to the beach" becomes two
// attribute nodes <price, min> and <distance, min>; the skyline operator
// returns the undominated hotels, and a qualitative priority between the
// attribute nodes ("price is more important than distance") totally orders
// the skyline — the future-work extension implemented in hypre/skyline.h.
//
// Part two wires the probe layer into the skyline end-to-end: a preference
// COMBINATION (§4.6 AND-of-OR-groups) is evaluated to a candidate key
// bitmap by the probe engine, the matching keys are mapped back to row ids,
// and the skyline runs only over the tuples matching the combination —
// "the cheapest well-reviewed hotel among the 4-star-or-better ones". It
// then mutates the table (one new hotel, one closure) and shows
// ProbeEngine::Refresh() carrying the whole pipeline to the new state
// without a rebuild.
#include <cstdio>

#include "example_util.h"
#include "hypre/api/session.h"
#include "hypre/combination.h"
#include "hypre/delta_engine.h"
#include "hypre/preference.h"
#include "hypre/probe_engine.h"
#include "hypre/skyline.h"
#include "reldb/database.h"

using namespace hypre;
using examples::Die;
using examples::Unwrap;

int main() {
  using reldb::Row;
  using reldb::Schema;
  using reldb::Value;
  using reldb::ValueType;

  reldb::Database db;
  auto hotels = db.CreateTable(
      "hotel", Schema({{"name", ValueType::kString},
                       {"price", ValueType::kInt64},
                       {"distance", ValueType::kDouble},
                       {"stars", ValueType::kInt64}}));
  if (!hotels.ok()) Die(hotels.status());
  struct H {
    const char* name;
    int64_t price;
    double distance;
    int64_t stars;
  };
  const H kHotels[] = {
      {"Sea Breeze", 120, 0.2, 4}, {"Dune Lodge", 80, 1.5, 3},
      {"Palm Court", 200, 0.1, 5}, {"Backpacker Inn", 40, 3.0, 2},
      {"Bay View", 95, 0.8, 4},    {"Grand Royal", 260, 0.5, 5},
      {"Shell Motel", 60, 2.4, 2}, {"Coast Hotel", 110, 0.4, 3},
      {"Budget Stay", 45, 2.9, 1}, {"Marina Suites", 150, 0.15, 4},
  };
  for (const auto& h : kHotels) {
    (*hotels)->AppendUnchecked(Row{Value::Str(h.name), Value::Int(h.price),
                                   Value::Real(h.distance),
                                   Value::Int(h.stars)});
  }

  std::printf("All hotels:\n");
  for (const auto& row : (*hotels)->rows()) {
    std::printf("  %-15s $%-4lld %.2f km  %lld*\n",
                row[0].AsString().c_str(), (long long)row[1].AsInt(),
                row[2].AsDouble(), (long long)row[3].AsInt());
  }

  // Attribute-based preferences: <price, min> weighted above
  // <distance, min> (the qualitative priority between attribute nodes).
  std::vector<core::AttributePreference> prefs{
      {"price", core::AttributePreference::Direction::kMin, /*weight=*/0.7},
      {"distance", core::AttributePreference::Direction::kMin,
       /*weight=*/0.3},
  };

  auto skyline = Unwrap(core::BlockNestedLoopSkyline(**hotels, prefs));
  std::printf("\nSkyline (<price, min> x <distance, min>): %zu hotels\n",
              skyline.size());
  for (reldb::RowId id : skyline) {
    const Row& row = (*hotels)->row(id);
    std::printf("  %-15s $%-4lld %.2f km\n", row[0].AsString().c_str(),
                (long long)row[1].AsInt(), row[2].AsDouble());
  }

  auto ranked = Unwrap(core::RankSkylineByPriority(**hotels, skyline, prefs));
  std::printf(
      "\nSkyline totally ordered with 'price more important than "
      "distance':\n");
  for (reldb::RowId id : ranked) {
    const Row& row = (*hotels)->row(id);
    std::printf("  %-15s $%-4lld %.2f km\n", row[0].AsString().c_str(),
                (long long)row[1].AsInt(), row[2].AsDouble());
  }

  // Flip the priority to show the order responds to it.
  prefs[0].weight = 0.2;
  prefs[1].weight = 0.8;
  auto flipped = Unwrap(core::RankSkylineByPriority(**hotels, skyline, prefs));
  std::printf("\n...and with 'distance more important than price':\n");
  for (reldb::RowId id : flipped) {
    const Row& row = (*hotels)->row(id);
    std::printf("  %-15s $%-4lld %.2f km\n", row[0].AsString().c_str(),
                (long long)row[1].AsInt(), row[2].AsDouble());
  }

  // --- Part two: skyline of the tuples matching a preference combination.
  //
  // Quantitative preferences feed the probe engine; the combination's
  // candidate bitmap restricts the skyline. Keys (hotel names) come back
  // from the engine and are mapped to row ids through the name index —
  // engine bitmaps index dense key ids, skyline bitmaps index RowIds, so
  // the hop through the index is the documented seam between the two.
  if (!(*hotels)->CreateHashIndex("name").ok()) {
    Die(Status::Internal("index build failed"));
  }
  // The probe engine comes from a session over the (borrowed) database —
  // the same cache Enumerate requests would share.
  api::Session session(&db);
  reldb::Query base;
  base.from = "hotel";
  const core::ProbeEngine& engine =
      Unwrap(session.GetEnhancer(base, "hotel.name"))->probe_engine();

  std::vector<core::PreferenceAtom> atoms;
  auto add = [&](const char* pred, double intensity) {
    auto atom = core::MakeAtom(pred, intensity);
    if (!atom.ok()) Die(atom.status());
    atoms.push_back(std::move(atom).TakeValue());
  };
  add("hotel.stars>=4", 0.9);
  add("hotel.stars=3", 0.4);  // same attribute: OR-combined (§4.6)
  add("hotel.price<=150", 0.7);
  core::SortByIntensityDesc(&atoms);

  core::Combiner combiner(&atoms);
  core::CombinationProber prober(&combiner, &engine);
  if (!prober.PrefetchAll().ok()) Die(Status::Internal("prefetch failed"));
  core::Combination combo = combiner.MixedClause({0, 1, 2});

  auto skyline_of_combo = [&]() {
    core::KeyBitmap combo_bits;
    Status st = prober.BitsInto(combo, &combo_bits);
    if (!st.ok()) Die(st);
    // Dense key ids -> hotel names -> RowIds.
    core::KeyBitmap candidates((*hotels)->num_rows());
    const reldb::HashIndex* by_name = (*hotels)->GetHashIndex("name");
    for (const reldb::Value& name : engine.KeysOf(combo_bits)) {
      for (reldb::RowId id : by_name->Lookup(name)) candidates.Set(id);
    }
    auto restricted =
        Unwrap(core::BlockNestedLoopSkyline(**hotels, prefs, candidates));
    std::printf("  combination %s -> %zu candidates, skyline:\n",
                combiner.ToSql(combo).c_str(), combo_bits.Count());
    for (reldb::RowId id : restricted) {
      const Row& row = (*hotels)->row(id);
      std::printf("    %-15s $%-4lld %.2f km  %lld*\n",
                  row[0].AsString().c_str(), (long long)row[1].AsInt(),
                  row[2].AsDouble(), (long long)row[3].AsInt());
    }
  };

  std::printf("\nSkyline restricted to a preference combination:\n");
  skyline_of_combo();

  // Mutate the base table and Refresh: a new cheap 4-star hotel opens, a
  // skyline member closes. The journal-driven delta pass patches the
  // engine's universe and cached bitmaps — no engine rebuild.
  if (!(*hotels)
           ->Append(Row{Value::Str("Driftwood Inn"), Value::Int(85),
                        Value::Real(0.3), Value::Int(4)})
           .ok()) {
    Die(Status::Internal("append failed"));
  }
  if (!(*hotels)->Delete(4).ok()) {  // Bay View closes
    Die(Status::Internal("delete failed"));
  }
  auto epoch = session.Refresh();  // refreshes every cached engine
  if (!epoch.ok()) Die(epoch.status());
  std::printf(
      "\nAfter one append + one delete (Refresh -> epoch %llu, "
      "%zu keys recomputed, %zu tombstoned):\n",
      (unsigned long long)*epoch,
      engine.delta_engine().stats().keys_recomputed,
      engine.delta_engine().stats().keys_tombstoned);
  skyline_of_combo();
  return 0;
}
