// Skyline hotels: attribute-based preferences (dissertation §1.4 / §8.2).
//
// "I want the cheapest hotel that is close to the beach" becomes two
// attribute nodes <price, min> and <distance, min>; the skyline operator
// returns the undominated hotels, and a qualitative priority between the
// attribute nodes ("price is more important than distance") totally orders
// the skyline — the future-work extension implemented in hypre/skyline.h.
#include <cstdio>

#include "hypre/skyline.h"
#include "reldb/database.h"

using namespace hypre;

namespace {

void Die(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).TakeValue();
}

}  // namespace

int main() {
  using reldb::Row;
  using reldb::Schema;
  using reldb::Value;
  using reldb::ValueType;

  reldb::Database db;
  auto hotels = db.CreateTable(
      "hotel", Schema({{"name", ValueType::kString},
                       {"price", ValueType::kInt64},
                       {"distance", ValueType::kDouble},
                       {"stars", ValueType::kInt64}}));
  if (!hotels.ok()) Die(hotels.status());
  struct H {
    const char* name;
    int64_t price;
    double distance;
    int64_t stars;
  };
  const H kHotels[] = {
      {"Sea Breeze", 120, 0.2, 4}, {"Dune Lodge", 80, 1.5, 3},
      {"Palm Court", 200, 0.1, 5}, {"Backpacker Inn", 40, 3.0, 2},
      {"Bay View", 95, 0.8, 4},    {"Grand Royal", 260, 0.5, 5},
      {"Shell Motel", 60, 2.4, 2}, {"Coast Hotel", 110, 0.4, 3},
      {"Budget Stay", 45, 2.9, 1}, {"Marina Suites", 150, 0.15, 4},
  };
  for (const auto& h : kHotels) {
    (*hotels)->AppendUnchecked(Row{Value::Str(h.name), Value::Int(h.price),
                                   Value::Real(h.distance),
                                   Value::Int(h.stars)});
  }

  std::printf("All hotels:\n");
  for (const auto& row : (*hotels)->rows()) {
    std::printf("  %-15s $%-4lld %.2f km  %lld*\n",
                row[0].AsString().c_str(), (long long)row[1].AsInt(),
                row[2].AsDouble(), (long long)row[3].AsInt());
  }

  // Attribute-based preferences: <price, min> weighted above
  // <distance, min> (the qualitative priority between attribute nodes).
  std::vector<core::AttributePreference> prefs{
      {"price", core::AttributePreference::Direction::kMin, /*weight=*/0.7},
      {"distance", core::AttributePreference::Direction::kMin,
       /*weight=*/0.3},
  };

  auto skyline = Unwrap(core::BlockNestedLoopSkyline(**hotels, prefs));
  std::printf("\nSkyline (<price, min> x <distance, min>): %zu hotels\n",
              skyline.size());
  for (reldb::RowId id : skyline) {
    const Row& row = (*hotels)->row(id);
    std::printf("  %-15s $%-4lld %.2f km\n", row[0].AsString().c_str(),
                (long long)row[1].AsInt(), row[2].AsDouble());
  }

  auto ranked = Unwrap(core::RankSkylineByPriority(**hotels, skyline, prefs));
  std::printf(
      "\nSkyline totally ordered with 'price more important than "
      "distance':\n");
  for (reldb::RowId id : ranked) {
    const Row& row = (*hotels)->row(id);
    std::printf("  %-15s $%-4lld %.2f km\n", row[0].AsString().c_str(),
                (long long)row[1].AsInt(), row[2].AsDouble());
  }

  // Flip the priority to show the order responds to it.
  prefs[0].weight = 0.2;
  prefs[1].weight = 0.8;
  auto flipped = Unwrap(core::RankSkylineByPriority(**hotels, skyline, prefs));
  std::printf("\n...and with 'distance more important than price':\n");
  for (reldb::RowId id : flipped) {
    const Row& row = (*hotels)->row(id);
    std::printf("  %-15s $%-4lld %.2f km\n", row[0].AsString().c_str(),
                (long long)row[1].AsInt(), row[2].AsDouble());
  }
  return 0;
}
