// hypre_shell: an interactive driver for the whole stack — the "practical
// system" face of the library. Loads the synthetic DBLP workload and lets
// you manage a profile and personalize queries from a prompt.
//
//   $ ./hypre_shell [num_papers]
//   hypre> help
//   hypre> pref add 0.5 dblp.venue='SIGMOD'
//   hypre> pref over 0.3 dblp.venue='SIGMOD' dblp.venue='ICDE'
//   hypre> pref list
//   hypre> topk 10
//   hypre> sql SELECT count(distinct dblp.pid) FROM dblp JOIN dblp_author
//          ON dblp.pid = dblp_author.pid WHERE dblp.venue='SIGMOD'
//   hypre> cypher START n=node(*) WHERE n.uid=1 RETURN n.predicate,
//          n.intensity ORDER BY n.intensity DESC
//
// Also scriptable: pipe commands on stdin (used by the smoke test below).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "graphdb/cypher_lite.h"
#include "hypre/algorithms/peps.h"
#include "hypre/hypre_graph.h"
#include "hypre/query_enhancement.h"
#include "sqlparse/select_parser.h"
#include "workload/dblp_generator.h"

using namespace hypre;

namespace {

constexpr core::UserId kShellUser = 1;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  pref add <intensity> <predicate>         quantitative preference\n"
      "  pref over <strength> <left> <right>      qualitative (left > right;\n"
      "                                           predicates must not contain "
      "spaces)\n"
      "  pref rm <predicate>                      remove a preference\n"
      "  pref list                                show the profile\n"
      "  topk <k>                                 personalized top-k papers\n"
      "  sql <select statement>                   run SQL directly\n"
      "  cypher <query>                           query the profile graph\n"
      "  help | quit\n");
}

std::string Rest(std::istringstream* in) {
  std::string rest;
  std::getline(*in, rest);
  size_t start = rest.find_first_not_of(' ');
  return start == std::string::npos ? "" : rest.substr(start);
}

void PrintValue(const reldb::Value& v) {
  std::printf("%s", v.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_papers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  workload::DblpConfig config;
  config.num_papers = num_papers;
  config.num_authors = num_papers / 3;
  reldb::Database db;
  auto stats = workload::GenerateDblp(config, &db);
  if (!stats.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded synthetic DBLP: %zu papers, %zu authors. "
              "Type 'help' for commands.\n",
              stats->num_papers, stats->num_authors);

  core::HypreGraph graph;
  reldb::Query base;
  base.from = "dblp";
  base.joins.push_back({"dblp_author", "dblp.pid", "pid"});
  core::QueryEnhancer enhancer(&db, base, "dblp.pid");

  std::string line;
  while ((std::printf("hypre> "), std::fflush(stdout),
          std::getline(std::cin, line))) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "pref") {
      std::string sub;
      in >> sub;
      if (sub == "add") {
        double intensity = 0;
        in >> intensity;
        std::string predicate = Rest(&in);
        auto r = graph.AddQuantitative({kShellUser, predicate, intensity});
        std::printf("%s\n", r.ok() ? "ok" : r.status().ToString().c_str());
      } else if (sub == "over") {
        double strength = 0;
        std::string left;
        std::string right;
        in >> strength >> left >> right;
        auto r = graph.AddQualitative({kShellUser, left, right, strength});
        if (r.ok()) {
          std::printf("ok (%s edge)\n", core::EdgeLabelToString(r->label));
        } else {
          std::printf("%s\n", r.status().ToString().c_str());
        }
      } else if (sub == "rm") {
        std::string predicate = Rest(&in);
        Status st = graph.RemovePreference(kShellUser, predicate);
        std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
      } else if (sub == "list") {
        for (const auto& entry :
             graph.ListPreferences(kShellUser, /*include_negative=*/true)) {
          std::printf("  %+0.3f  %-40s (%s)\n", entry.intensity,
                      entry.predicate.c_str(),
                      core::ProvenanceToString(entry.provenance));
        }
      } else {
        std::printf("unknown pref subcommand '%s'\n", sub.c_str());
      }
      continue;
    }
    if (command == "topk") {
      size_t k = 10;
      in >> k;
      std::vector<core::PreferenceAtom> atoms;
      bool parse_failed = false;
      for (const auto& entry : graph.ListPreferences(kShellUser)) {
        auto atom = core::MakeAtom(entry.predicate, entry.intensity);
        if (!atom.ok()) {
          std::printf("bad predicate in profile: %s\n",
                      atom.status().ToString().c_str());
          parse_failed = true;
          break;
        }
        atoms.push_back(std::move(atom.value()));
      }
      if (parse_failed) continue;
      if (atoms.empty()) {
        std::printf("profile is empty; use 'pref add' first\n");
        continue;
      }
      core::SortByIntensityDesc(&atoms);
      core::Peps peps(&atoms, &enhancer);
      auto top = peps.TopK(k, core::PepsMode::kComplete);
      if (!top.ok()) {
        std::printf("%s\n", top.status().ToString().c_str());
        continue;
      }
      const reldb::Table* dblp = db.GetTable("dblp");
      const reldb::HashIndex* by_pid = dblp->GetHashIndex("pid");
      for (const auto& tuple : *top) {
        const auto& rows = by_pid->Lookup(tuple.key);
        if (rows.empty()) continue;
        const reldb::Row& row = dblp->row(rows[0]);
        std::printf("  %.3f  pid=%-6lld %-10s (%lld)\n", tuple.intensity,
                    (long long)tuple.key.AsInt(), row[3].AsString().c_str(),
                    (long long)row[2].AsInt());
      }
      continue;
    }
    if (command == "sql") {
      auto result = sqlparse::ExecuteSql(db, Rest(&in));
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      for (size_t c = 0; c < result->column_names.size(); ++c) {
        std::printf(c == 0 ? "%s" : " | %s",
                    result->column_names[c].c_str());
      }
      std::printf("\n");
      size_t shown = 0;
      for (const auto& row : result->rows) {
        if (shown++ >= 20) {
          std::printf("  ... (%zu rows total)\n", result->rows.size());
          break;
        }
        for (size_t c = 0; c < row.size(); ++c) {
          if (c > 0) std::printf(" | ");
          PrintValue(row[c]);
        }
        std::printf("\n");
      }
      continue;
    }
    if (command == "cypher") {
      auto result =
          graphdb::RunCypherMutate(graph.mutable_store(), Rest(&in));
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      for (size_t c = 0; c < result->columns.size(); ++c) {
        std::printf(c == 0 ? "%s" : " | %s", result->columns[c].c_str());
      }
      std::printf("\n");
      for (const auto& row : result->rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          std::printf(c == 0 ? "%s" : " | %s", row[c].ToString().c_str());
        }
        std::printf("\n");
      }
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", command.c_str());
  }
  std::printf("\n");
  return 0;
}
