// hypre_shell: an interactive driver for the whole stack — the "practical
// system" face of the library. Loads the synthetic DBLP workload into a
// Session and lets you manage a profile and personalize queries from a
// prompt. Every personalization command dispatches by NAME through the
// unified enumeration API (api::Session + EnumeratorRegistry), so all six
// combination algorithms are one `\algo` switch away.
//
//   $ ./hypre_shell [num_papers]
//   hypre> help
//   hypre> pref add 0.5 dblp.venue='SIGMOD'
//   hypre> pref over 0.3 dblp.venue='SIGMOD' dblp.venue='ICDE'
//   hypre> pref list
//   hypre> \algo                    list algorithms (current one starred)
//   hypre> \algo combine-two       switch the enumeration algorithm
//   hypre> topk 10                  personalized top-k / top records
//   hypre> budget 500               cap probes per request (0 = unlimited)
//   hypre> save /tmp/hypre_store    checkpoint (snapshot + journal)
//   hypre> open /tmp/hypre_store    warm restart from a checkpoint
//   hypre> sql SELECT count(distinct dblp.pid) FROM dblp JOIN dblp_author
//          ON dblp.pid = dblp_author.pid WHERE dblp.venue='SIGMOD'
//   hypre> cypher START n=node(*) WHERE n.uid=1 RETURN n.predicate,
//          n.intensity ORDER BY n.intensity DESC
//
// Also scriptable: pipe commands on stdin (used by the smoke test below).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "example_util.h"
#include "graphdb/cypher_lite.h"
#include "hypre/api/session.h"
#include "hypre/hypre_graph.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"
#include "sqlparse/select_parser.h"
#include "workload/dblp_generator.h"

using namespace hypre;

namespace {

constexpr core::UserId kShellUser = 1;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  pref add <intensity> <predicate>         quantitative preference\n"
      "  pref over <strength> <left> <right>      qualitative (left > right;\n"
      "                                           predicates must not contain "
      "spaces)\n"
      "  pref rm <predicate>                      remove a preference\n"
      "  pref list                                show the profile\n"
      "  \\algo [name]                             list / switch the "
      "enumeration algorithm\n"
      "  topk <k>                                 personalized top-k via the "
      "current algorithm\n"
      "  budget <probes>                          probe budget per request "
      "(0 = unlimited)\n"
      "  threads <n>                              probe threads per request "
      "(1 = serial, 0 = auto)\n"
      "  save <dir>                               checkpoint the session "
      "(snapshot + journal)\n"
      "  open <dir>                               reopen a session from a "
      "saved directory\n"
      "  sql <select statement>                   run SQL directly\n"
      "  cypher <query>                           query the profile graph\n"
      "  stats [prom]                             dump the telemetry "
      "registry (JSON, or Prometheus text)\n"
      "  trace on|off                             attach a span trace to "
      "each topk and print it\n"
      "  help | quit\n");
}

std::string Rest(std::istringstream* in) {
  std::string rest;
  std::getline(*in, rest);
  size_t start = rest.find_first_not_of(' ');
  return start == std::string::npos ? "" : rest.substr(start);
}

void PrintValue(const reldb::Value& v) {
  std::printf("%s", v.ToString().c_str());
}

void PrintTrace(const telemetry::Trace& trace) {
  if (trace.empty()) {
    std::printf("(no trace; rebuild with -DHYPRE_TELEMETRY=ON)\n");
    return;
  }
  for (const auto& span : trace.spans()) {
    std::printf("  %*s%-8s %-20s %8.3f ms\n", int(span.depth * 2), "",
                span.layer, span.name, double(span.duration_ns) / 1e6);
  }
  if (trace.dropped() > 0) {
    std::printf("  (%" PRIu64 " spans dropped: buffer full)\n",
                trace.dropped());
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_papers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  workload::DblpStats stats;
  // Held by pointer so `open <dir>` can swap in a recovered session.
  auto session = std::make_unique<api::Session>(
      examples::MakeDblpDatabase(num_papers, 0, &stats));
  std::printf("loaded synthetic DBLP: %zu papers, %zu authors. "
              "Type 'help' for commands.\n",
              stats.num_papers, stats.num_authors);

  core::HypreGraph graph;
  std::string algorithm = "peps";
  size_t probe_budget = 0;
  size_t probe_threads = 1;
  bool trace_requests = false;

  std::string line;
  while ((std::printf("hypre> "), std::fflush(stdout),
          std::getline(std::cin, line))) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "\\algo" || command == "algo") {
      std::string name;
      in >> name;
      if (name.empty()) {
        for (const api::CombinationEnumerator* e :
             api::EnumeratorRegistry::Global().Enumerators()) {
          std::printf("  %c %-22s %s\n",
                      e->name() == algorithm ? '*' : ' ',
                      std::string(e->name()).c_str(),
                      std::string(e->description()).c_str());
        }
        continue;
      }
      auto found = api::EnumeratorRegistry::Global().Find(name);
      if (!found.ok()) {
        std::printf("%s\n", found.status().ToString().c_str());
        continue;
      }
      algorithm = name;
      std::printf("algorithm = %s\n", algorithm.c_str());
      continue;
    }
    if (command == "budget") {
      in >> probe_budget;
      std::printf("probe budget = %zu%s\n", probe_budget,
                  probe_budget == 0 ? " (unlimited)" : "");
      continue;
    }
    if (command == "threads") {
      in >> probe_threads;
      // Runs on the session's work-stealing pool; 0 auto-detects the
      // hardware concurrency (clamped to the batch shape per request).
      std::printf("probe threads = %zu%s\n", probe_threads,
                  probe_threads == 0 ? " (auto)" : "");
      continue;
    }
    if (command == "stats") {
      std::string format;
      in >> format;
      if (format == "prom") {
        std::printf("%s",
                    telemetry::MetricsRegistry::Global()
                        .ToPrometheusText()
                        .c_str());
      } else {
        std::printf("%s\n",
                    telemetry::MetricsRegistry::Global().ToJson().c_str());
      }
      continue;
    }
    if (command == "trace") {
      std::string mode;
      in >> mode;
      if (mode == "on") {
        trace_requests = true;
      } else if (mode == "off") {
        trace_requests = false;
      } else {
        std::printf("usage: trace on|off\n");
        continue;
      }
      std::printf("trace = %s\n", trace_requests ? "on" : "off");
      continue;
    }
    if (command == "pref") {
      std::string sub;
      in >> sub;
      if (sub == "add") {
        double intensity = 0;
        in >> intensity;
        std::string predicate = Rest(&in);
        auto r = graph.AddQuantitative({kShellUser, predicate, intensity});
        std::printf("%s\n", r.ok() ? "ok" : r.status().ToString().c_str());
      } else if (sub == "over") {
        double strength = 0;
        std::string left;
        std::string right;
        in >> strength >> left >> right;
        auto r = graph.AddQualitative({kShellUser, left, right, strength});
        if (r.ok()) {
          std::printf("ok (%s edge)\n", core::EdgeLabelToString(r->label));
        } else {
          std::printf("%s\n", r.status().ToString().c_str());
        }
      } else if (sub == "rm") {
        std::string predicate = Rest(&in);
        Status st = graph.RemovePreference(kShellUser, predicate);
        std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
      } else if (sub == "list") {
        for (const auto& entry :
             graph.ListPreferences(kShellUser, /*include_negative=*/true)) {
          std::printf("  %+0.3f  %-40s (%s)\n", entry.intensity,
                      entry.predicate.c_str(),
                      core::ProvenanceToString(entry.provenance));
        }
      } else {
        std::printf("unknown pref subcommand '%s'\n", sub.c_str());
      }
      continue;
    }
    if (command == "topk") {
      size_t k = 10;
      in >> k;
      api::EnumerationRequest request;
      request.algorithm = algorithm;
      request.base_query = examples::DblpBaseQuery();
      request.key_column = "dblp.pid";
      // "topk 0" means everything (matching TA's k=0-is-unlimited and
      // PEPS's pre-API TopK(0) behavior).
      request.k = k == 0 ? ~size_t{0} : k;
      request.probe_budget = probe_budget;
      request.probe_options.num_threads = probe_threads;
      request.trace = trace_requests;
      bool parse_failed = false;
      for (const auto& entry : graph.ListPreferences(kShellUser)) {
        auto atom = core::MakeAtom(entry.predicate, entry.intensity);
        if (!atom.ok()) {
          std::printf("bad predicate in profile: %s\n",
                      atom.status().ToString().c_str());
          parse_failed = true;
          break;
        }
        request.preferences.push_back(std::move(atom.value()));
      }
      if (parse_failed) continue;
      if (request.preferences.empty()) {
        std::printf("profile is empty; use 'pref add' first\n");
        continue;
      }
      auto result = session->Enumerate(request);
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      if (!result->top_k.empty() || algorithm == "peps" ||
          algorithm == "ta") {
        for (const auto& tuple : result->top_k) {
          examples::PrintRankedPaper(*session->db(), tuple);
        }
      } else {
        // Enumeration-only algorithms: show the strongest k records.
        // Records arrive in each algorithm's documented order (generation
        // order for most), so sort a view by intensity first.
        std::vector<const core::CombinationRecord*> strongest;
        strongest.reserve(result->records.size());
        for (const auto& record : result->records) {
          strongest.push_back(&record);
        }
        std::stable_sort(strongest.begin(), strongest.end(),
                         [](const core::CombinationRecord* a,
                            const core::CombinationRecord* b) {
                           return a->intensity > b->intensity;
                         });
        if (k > 0 && strongest.size() > k) strongest.resize(k);
        for (const auto* record : strongest) {
          std::printf("  %.3f  #%zu tuples=%-5zu %s\n", record->intensity,
                      record->num_predicates, record->num_tuples,
                      record->predicate_sql.c_str());
        }
      }
      std::printf(
          "[%s] epoch=%llu leaf_queries=%zu cache_hits=%zu batches=%zu%s\n",
          algorithm.c_str(), (unsigned long long)result->epoch,
          result->stats.num_leaf_queries, result->stats.num_cache_hits,
          result->stats.num_batches,
          result->truncated ? " TRUNCATED (budget)" : "");
      if (trace_requests) PrintTrace(result->trace);
      continue;
    }
    if (command == "save") {
      std::string dir = Rest(&in);
      if (dir.empty()) {
        std::printf("usage: save <dir>\n");
        continue;
      }
      // First save attaches the store (initial checkpoint); later saves to
      // the same session checkpoint incrementally.
      Status st = session->has_storage() ? session->SaveSnapshot()
                                         : session->AttachStorage(dir);
      if (st.ok()) {
        std::printf("checkpointed to %s (journal seq %llu)\n", dir.c_str(),
                    (unsigned long long)session->store()->snapshot_sequence());
      } else {
        std::printf("%s\n", st.ToString().c_str());
      }
      continue;
    }
    if (command == "open") {
      std::string dir = Rest(&in);
      if (dir.empty()) {
        std::printf("usage: open <dir>\n");
        continue;
      }
      auto reopened = api::Session::OpenFromSnapshot(dir);
      if (!reopened.ok()) {
        std::printf("%s\n", reopened.status().ToString().c_str());
        continue;
      }
      session = std::move(reopened).TakeValue();
      std::printf("opened %s: %zu engine(s) restored, journal seq %llu\n",
                  dir.c_str(), session->num_cached_engines(),
                  (unsigned long long)session->store()->snapshot_sequence());
      continue;
    }
    if (command == "sql") {
      auto result = sqlparse::ExecuteSql(*session->db(), Rest(&in));
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      for (size_t c = 0; c < result->column_names.size(); ++c) {
        std::printf(c == 0 ? "%s" : " | %s",
                    result->column_names[c].c_str());
      }
      std::printf("\n");
      size_t shown = 0;
      for (const auto& row : result->rows) {
        if (shown++ >= 20) {
          std::printf("  ... (%zu rows total)\n", result->rows.size());
          break;
        }
        for (size_t c = 0; c < row.size(); ++c) {
          if (c > 0) std::printf(" | ");
          PrintValue(row[c]);
        }
        std::printf("\n");
      }
      continue;
    }
    if (command == "cypher") {
      auto result =
          graphdb::RunCypherMutate(graph.mutable_store(), Rest(&in));
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      for (size_t c = 0; c < result->columns.size(); ++c) {
        std::printf(c == 0 ? "%s" : " | %s", result->columns[c].c_str());
      }
      std::printf("\n");
      for (const auto& row : result->rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          std::printf(c == 0 ? "%s" : " | %s", row[c].ToString().c_str());
        }
        std::printf("\n");
      }
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", command.c_str());
  }
  std::printf("\n");
  return 0;
}
