// The six built-in enumerators behind the unified API, and the global
// registry they live in.
//
// Each enumerator is a thin, stateless adapter from the request/response
// shape to one algorithm's native entry point; the budget/sink control
// plane is forwarded into the algorithm, which enforces it at generation
// granularity (see hypre/algorithms/common.h). Everything session-level —
// enhancer caching, epoch pinning, leaf prefetch, statistics deltas — is
// the Session's job, not the enumerators'.
#include <algorithm>
#include <memory>

#include "common/string_util.h"
#include "hypre/algorithms/bias_random.h"
#include "hypre/algorithms/combine_two.h"
#include "hypre/algorithms/exhaustive.h"
#include "hypre/algorithms/partially_combine_all.h"
#include "hypre/algorithms/peps.h"
#include "hypre/algorithms/threshold_algorithm.h"
#include "hypre/api/enumeration.h"

namespace hypre {
namespace api {

namespace {

class ExhaustiveEnumerator : public CombinationEnumerator {
 public:
  std::string_view name() const override { return "exhaustive"; }
  std::string_view description() const override {
    return "every non-empty AND subset (2^N - 1 probes; reference oracle)";
  }
  Status Run(const EnumerationContext& ctx,
             EnumerationResult* result) const override {
    HYPRE_ASSIGN_OR_RETURN(
        result->records,
        core::ExhaustiveAndCombinations(
            *ctx.preferences, *ctx.enhancer, ctx.request->max_exhaustive_n,
            ctx.probe_options, ctx.control));
    return Status::OK();
  }
};

class CombineTwoEnumerator : public CombinationEnumerator {
 public:
  std::string_view name() const override { return "combine-two"; }
  std::string_view description() const override {
    return "all C(N,2) preference pairs (Algorithms 2/3; AND or AND/OR)";
  }
  Status Run(const EnumerationContext& ctx,
             EnumerationResult* result) const override {
    HYPRE_ASSIGN_OR_RETURN(
        result->records,
        core::CombineTwo(*ctx.preferences, *ctx.enhancer,
                         ctx.request->semantics, ctx.probe_options,
                         ctx.control));
    return Status::OK();
  }
};

class PartiallyCombineAllEnumerator : public CombinationEnumerator {
 public:
  std::string_view name() const override { return "partially-combine-all"; }
  std::string_view description() const override {
    return "growing mixed AND/OR clauses, one preference at a time "
           "(Algorithm 4)";
  }
  Status Run(const EnumerationContext& ctx,
             EnumerationResult* result) const override {
    HYPRE_ASSIGN_OR_RETURN(
        result->records,
        core::PartiallyCombineAll(*ctx.preferences, *ctx.enhancer,
                                  ctx.probe_options, ctx.control));
    return Status::OK();
  }
};

class BiasRandomEnumerator : public CombinationEnumerator {
 public:
  std::string_view name() const override { return "bias-random"; }
  std::string_view description() const override {
    return "intensity-biased random chain growth (Algorithm 5; "
           "deterministic per seed)";
  }
  Status Run(const EnumerationContext& ctx,
             EnumerationResult* result) const override {
    HYPRE_ASSIGN_OR_RETURN(
        core::BiasRandomResult run,
        core::BiasRandomSelection(*ctx.preferences, *ctx.enhancer,
                                  ctx.request->seed,
                                  ctx.probe_options, ctx.control));
    result->records = std::move(run.records);
    result->valid_checks = run.valid_checks;
    result->invalid_checks = run.invalid_checks;
    return Status::OK();
  }
};

class PepsEnumerator : public CombinationEnumerator {
 public:
  std::string_view name() const override { return "peps"; }
  std::string_view description() const override {
    return "pair-table-pruned expansion (Algorithm 6); k > 0 ranks tuples";
  }
  Status Run(const EnumerationContext& ctx,
             EnumerationResult* result) const override {
    core::Peps peps(ctx.preferences, ctx.enhancer,
                    ctx.probe_options);
    if (ctx.request->k > 0) {
      HYPRE_ASSIGN_OR_RETURN(
          result->top_k,
          peps.TopK(ctx.request->k, ctx.request->mode, ctx.control));
    } else {
      HYPRE_ASSIGN_OR_RETURN(
          result->records, peps.GenerateOrder(ctx.request->mode, ctx.control));
    }
    return Status::OK();
  }
};

class ThresholdAlgorithmEnumerator : public CombinationEnumerator {
 public:
  std::string_view name() const override { return "ta"; }
  std::string_view description() const override {
    return "Fagin's Threshold Algorithm over per-attribute graded lists "
           "(Top-K baseline)";
  }
  Status Run(const EnumerationContext& ctx,
             EnumerationResult* result) const override {
    // One probe per atom builds the graded lists (each atom's key bitmap is
    // materialized once); the remaining budget caps the sorted-access
    // depth, TA's unit of work.
    const auto& atoms = *ctx.preferences;
    size_t admitted = ctx.control.Admit(atoms.size());
    std::vector<core::PreferenceAtom> prefix;
    const std::vector<core::PreferenceAtom>* list_atoms = &atoms;
    if (admitted < atoms.size()) {
      prefix.assign(atoms.begin(),
                    atoms.begin() + static_cast<std::ptrdiff_t>(admitted));
      list_atoms = &prefix;
    }
    HYPRE_ASSIGN_OR_RETURN(
        std::vector<core::GradedList> lists,
        core::BuildGradedLists(ctx.enhancer->probe_engine(), *list_atoms));
    size_t max_depth = 0;
    if (ctx.control.budget != nullptr && ctx.control.budget->limited()) {
      max_depth = ctx.control.budget->remaining();
      if (max_depth == 0) {
        if (ctx.control.truncated != nullptr) *ctx.control.truncated = true;
        return Status::OK();
      }
    }
    size_t sorted_accesses = 0;
    bool capped = false;
    HYPRE_ASSIGN_OR_RETURN(
        result->top_k,
        core::ThresholdAlgorithmTopK(lists, ctx.request->k, &sorted_accesses,
                                     max_depth, &capped));
    ctx.control.Admit(sorted_accesses);  // always fits: max_depth bounded it
    if (capped && ctx.control.truncated != nullptr) {
      *ctx.control.truncated = true;
    }
    for (const core::RankedTuple& tuple : result->top_k) {
      ctx.control.Emit(tuple);
    }
    return Status::OK();
  }
};

}  // namespace

Status EnumeratorRegistry::Register(
    std::unique_ptr<CombinationEnumerator> enumerator) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : enumerators_) {
    if (existing->name() == enumerator->name()) {
      return Status::AlreadyExists(StringFormat(
          "enumerator '%s' is already registered",
          std::string(enumerator->name()).c_str()));
    }
  }
  enumerators_.push_back(std::move(enumerator));
  return Status::OK();
}

Result<const CombinationEnumerator*> EnumeratorRegistry::Find(
    const std::string& name) const {
  std::string known;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& enumerator : enumerators_) {
      if (enumerator->name() == name) return enumerator.get();
    }
  }
  for (const std::string& n : Names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::InvalidArgument(StringFormat(
      "unknown algorithm '%s' (registered: %s)", name.c_str(),
      known.c_str()));
}

std::vector<std::string> EnumeratorRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(enumerators_.size());
  for (const auto& enumerator : enumerators_) {
    names.emplace_back(enumerator->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<const CombinationEnumerator*> EnumeratorRegistry::Enumerators()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const CombinationEnumerator*> out;
  out.reserve(enumerators_.size());
  for (const auto& enumerator : enumerators_) out.push_back(enumerator.get());
  std::sort(out.begin(), out.end(),
            [](const CombinationEnumerator* a,
               const CombinationEnumerator* b) { return a->name() < b->name(); });
  return out;
}

EnumeratorRegistry& EnumeratorRegistry::Global() {
  static EnumeratorRegistry* registry = [] {
    auto* r = new EnumeratorRegistry();
    (void)r->Register(std::make_unique<ExhaustiveEnumerator>());
    (void)r->Register(std::make_unique<CombineTwoEnumerator>());
    (void)r->Register(std::make_unique<PartiallyCombineAllEnumerator>());
    (void)r->Register(std::make_unique<BiasRandomEnumerator>());
    (void)r->Register(std::make_unique<PepsEnumerator>());
    (void)r->Register(std::make_unique<ThresholdAlgorithmEnumerator>());
    return r;
  }();
  return *registry;
}

}  // namespace api
}  // namespace hypre
