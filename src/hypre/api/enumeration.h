// Unified enumeration API: one request/response shape for all six
// combination algorithms.
//
// The dissertation's algorithms (§5.3-§5.5) grew up as six divergent entry
// points — free functions, the Peps class, TA's graded-list pipeline — each
// hand-wired to a QueryEnhancer the caller had to assemble. This layer
// turns algorithm choice into a REQUEST PARAMETER:
//
//   EnumerationRequest{algorithm="peps", base_query, key_column,
//                      preferences, k, probe_budget, sinks, ...}
//         │
//         ▼
//   Session::Enumerate ── registry lookup ("exhaustive", "combine-two",
//                         "partially-combine-all", "bias-random", "peps",
//                         "ta") ── cached ProbeEngine per (base query, key
//                         column) ── epoch pinned via Refresh() ── run
//         │
//         ▼
//   EnumerationResult{records / top_k, ProbeStats delta, epoch, truncated}
//
// Two capabilities exist only on this path: a probe BUDGET (bounded probe
// spend with a truncation verdict — the admission knob a multi-tenant
// deployment meters requests with) and STREAMING sinks (records / ranked
// tuples emitted as they are produced). With no budget, results are
// byte-identical to the direct algorithm entry points (enforced by
// tests/test_session_api.cc).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hypre/algorithms/combine_two.h"
#include "hypre/algorithms/common.h"
#include "hypre/algorithms/peps.h"
#include "hypre/batch_prober.h"
#include "hypre/preference.h"
#include "hypre/probe_engine.h"
#include "hypre/query_enhancement.h"
#include "hypre/ranking.h"
#include "hypre/telemetry/trace.h"
#include "reldb/executor.h"

namespace hypre {
namespace api {

/// \brief One enumeration request: everything that was a compile-time call
/// site before — algorithm, query, preferences, per-algorithm knobs, probe
/// options, budget, sinks — as data.
struct EnumerationRequest {
  /// Registry name: "exhaustive", "combine-two", "partially-combine-all",
  /// "bias-random", "peps", or "ta".
  std::string algorithm;
  /// Query skeleton the probes run against (FROM/JOINs; an existing WHERE
  /// is a hard constraint every probe keeps).
  reldb::Query base_query;
  /// Tuple identity column (e.g. "dblp.pid"); with base_query it keys the
  /// Session's ProbeEngine cache.
  std::string key_column;
  /// Preference atoms in ANY order; the session sorts a copy descending by
  /// intensity (the precondition every algorithm shares).
  std::vector<core::PreferenceAtom> preferences;

  /// Top-K size for the ranking algorithms ("peps", "ta"). For "peps",
  /// k == 0 enumerates combination records and k > 0 ranks tuples (use
  /// SIZE_MAX for "all tuples"); "ta" always ranks (k == 0 = unlimited).
  size_t k = 0;
  /// "combine-two": AND vs AND/OR pair semantics.
  core::CombineSemantics semantics = core::CombineSemantics::kAnd;
  /// "peps": complete vs approximate seeding.
  core::PepsMode mode = core::PepsMode::kComplete;
  /// "bias-random": draw seed (runs are deterministic per seed).
  uint64_t seed = 0;
  /// "exhaustive": refuse preference lists longer than this (2^N guard).
  size_t max_exhaustive_n = 20;

  /// Batch-probe knobs, threaded through every algorithm.
  core::ProbeOptions probe_options;
  /// Probe budget: maximum combination probes (pair entries, frontier
  /// members, expansion candidates, bias-random checks, TA sorted-access
  /// rounds) this request may spend. 0 = unlimited. A budgeted run stops
  /// early with EnumerationResult::truncated set; the records produced up
  /// to that point are byte-identical whether batching is on or off.
  /// The budget meters per-request probe work only: leaf-bitmap
  /// materialization is engine-lifetime shared warm-up (one DB query per
  /// DISTINCT leaf, reused by every later request over the same query
  /// spec) and is reported in stats but not charged against the budget.
  size_t probe_budget = 0;

  /// Streaming: called per combination record in probe order, before any
  /// final intensity sort.
  core::RecordSink record_sink;
  /// Streaming: called per ranked tuple in rank order ("peps" with k > 0,
  /// "ta").
  core::TupleSink tuple_sink;

  /// Pin the engine to the current database state before running: the
  /// session applies all journal entries recorded since the engine's last
  /// Refresh (no-op when nothing mutated) and reports the epoch probed.
  bool refresh = true;

  /// Admission wait bound: when > 0, the request waits at most this long in
  /// the session's AdmissionScheduler queue before being shed with a typed
  /// Status::Unavailable (the HTTP layer's 429). 0 = wait indefinitely.
  /// Either way the scheduler's max_queue_depth bound applies — a request
  /// that would queue behind a full line is rejected immediately.
  uint64_t admission_timeout_ms = 0;

  /// Collect a per-request trace: EnumerationResult::trace gets one span
  /// per timed phase (enhancer cache, refresh, prefetch, batch passes, WAL
  /// and checkpoint work) with parent/child nesting. Off by default — the
  /// probe hot path stays untouched; in a -DHYPRE_TELEMETRY=OFF build the
  /// flag is accepted but the trace comes back empty.
  bool trace = false;
};

/// \brief One enumeration response. Which payload is filled depends on the
/// algorithm: combination enumerators fill `records`; "ta" (and "peps" with
/// k > 0) fill `top_k`.
struct EnumerationResult {
  /// Combination records, in the algorithm's documented output order.
  std::vector<core::CombinationRecord> records;
  /// Ranked tuples, descending by intensity.
  std::vector<core::RankedTuple> top_k;
  /// Per-request probe statistics (engine counters after minus before).
  core::ProbeStats stats;
  /// Engine epoch the request probed (see ProbeEngine::epoch()).
  uint64_t epoch = 0;
  /// True when the probe budget ran dry before the algorithm finished.
  /// The output is deterministic (and identical batched or scalar), but
  /// incomplete: for the generation-ordered algorithms ("exhaustive",
  /// "combine-two", "partially-combine-all", "bias-random") it is the
  /// prefix of the unbounded run's probe sequence; for "peps" and "ta" —
  /// which re-rank intermediate state (pair table, graded lists) before
  /// emitting — it is a subset that may order differently than the
  /// unbounded run, so re-run with a larger budget rather than paginating.
  bool truncated = false;
  /// "bias-random" extras: probes that returned >= 1 tuple / nothing.
  size_t valid_checks = 0;
  size_t invalid_checks = 0;
  /// Structured span timeline (empty unless EnumerationRequest::trace).
  telemetry::Trace trace;
};

/// \brief Everything an enumerator implementation receives: the session's
/// cached enhancer, the intensity-sorted preference list, the original
/// request, and the budget/sink control plane already wired to the result.
struct EnumerationContext {
  const core::QueryEnhancer* enhancer = nullptr;
  /// Sorted descending by intensity (the session sorts its own copy).
  const std::vector<core::PreferenceAtom>* preferences = nullptr;
  const EnumerationRequest* request = nullptr;
  /// The request's probe options with the session's runtime filled in: when
  /// the request names no pool and asks for more than one thread, the
  /// session injects its own persistent TaskPool here. Enumerators read
  /// THIS copy, not request->probe_options.
  core::ProbeOptions probe_options;
  core::EnumerationControl control;
};

/// \brief One algorithm behind the unified API. Implementations are
/// stateless dispatchers (per-run state lives in the Run call), so one
/// registered instance serves every session and request.
class CombinationEnumerator {
 public:
  virtual ~CombinationEnumerator() = default;

  /// \brief Registry key ("peps", "combine-two", ...).
  virtual std::string_view name() const = 0;
  /// \brief One-line description for listings (shell \algo, errors).
  virtual std::string_view description() const = 0;
  /// \brief Runs the algorithm; fills result->records / result->top_k (and
  /// the bias-random tallies). The session owns stats/epoch/truncated.
  virtual Status Run(const EnumerationContext& ctx,
                     EnumerationResult* result) const = 0;
};

/// \brief Name-keyed registry of enumerators — the dispatch point request
/// routing (and the ROADMAP's distributed-probe split) goes through.
/// Registration and lookup are mutex-guarded, so one process-wide registry
/// safely serves concurrent per-tenant sessions even if a tenant registers
/// a custom enumerator late; the returned enumerator pointers themselves
/// are stable for the registry's lifetime (entries are never removed).
class EnumeratorRegistry {
 public:
  /// \brief The process-wide registry, with the six built-in algorithms
  /// registered on first use.
  static EnumeratorRegistry& Global();

  /// \brief Registers an enumerator under its name(). Fails with
  /// AlreadyExists on a duplicate name.
  Status Register(std::unique_ptr<CombinationEnumerator> enumerator);

  /// \brief Looks up an enumerator; unknown names fail with
  /// InvalidArgument naming the registered algorithms.
  Result<const CombinationEnumerator*> Find(const std::string& name) const;

  /// \brief Registered names, sorted.
  std::vector<std::string> Names() const;

  /// \brief The registered enumerators, sorted by name (for listings).
  std::vector<const CombinationEnumerator*> Enumerators() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<CombinationEnumerator>> enumerators_;
};

}  // namespace api
}  // namespace hypre
