// Admission scheduler: graceful degradation for many-client serving.
//
// Thousands of concurrent Enumerate() callers on one Session would all
// pile onto the shared TaskPool and the engine caches at once; past the
// core count that buys no throughput, only latency variance and memory
// pressure (every admitted request holds its frontier buffers and an
// epoch pin). The scheduler turns that cliff into a queue: requests are
// admitted strictly FIFO, subject to
//
//   * a concurrency cap (max_concurrent in-flight requests), and
//   * a probe-budget cap (the sum of admitted requests' probe budgets —
//     the API layer's unit of probe spend — stays below
//     max_inflight_probe_budget).
//
// A request whose budget alone exceeds the cap is admitted when it is the
// only one in flight (otherwise it would starve forever); unbudgeted
// requests (probe_budget == 0) count only against the concurrency cap.
// Both caps default to 0 = unlimited, which reduces Admit() to one
// uncontended mutex round-trip — cheap enough to sit on every request.
//
// Telemetry: queue depth and in-flight gauges, an admitted-requests
// counter, and a wait-time histogram (hypre_api_admission_*).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace hypre {
namespace api {

class AdmissionScheduler {
 public:
  struct Options {
    /// In-flight request cap; 0 = unlimited.
    size_t max_concurrent = 0;
    /// Cap on the summed probe budgets of in-flight requests; 0 =
    /// unlimited. An oversized request is admitted when alone.
    size_t max_inflight_probe_budget = 0;
  };

  /// \brief One scheduler snapshot, for tests and introspection.
  struct Stats {
    uint64_t admitted = 0;        // requests admitted so far
    uint64_t waited = 0;          // of those, how many had to queue
    size_t inflight = 0;          // currently admitted requests
    size_t inflight_budget = 0;   // summed probe budgets of those
    size_t queue_depth = 0;       // requests currently waiting
  };

  /// \brief RAII admission slot: holds the request's concurrency/budget
  /// reservation, released on destruction. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : scheduler_(other.scheduler_), cost_(other.cost_) {
      other.scheduler_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        scheduler_ = other.scheduler_;
        cost_ = other.cost_;
        other.scheduler_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();
    bool admitted() const { return scheduler_ != nullptr; }

   private:
    friend class AdmissionScheduler;
    Ticket(AdmissionScheduler* scheduler, size_t cost)
        : scheduler_(scheduler), cost_(cost) {}
    AdmissionScheduler* scheduler_ = nullptr;
    size_t cost_ = 0;
  };

  AdmissionScheduler() = default;
  explicit AdmissionScheduler(const Options& options) : options_(options) {}
  AdmissionScheduler(const AdmissionScheduler&) = delete;
  AdmissionScheduler& operator=(const AdmissionScheduler&) = delete;

  /// \brief Blocks until this request is admitted (strict FIFO by arrival,
  /// then capacity), reserving one concurrency slot and `probe_budget`
  /// units of in-flight probe spend. Returns the RAII reservation.
  Ticket Admit(size_t probe_budget);

  /// \brief Replaces the caps. Takes effect for future admission checks;
  /// already-admitted requests keep their reservations. Waiters are
  /// re-woken so a LOOSENED cap admits them promptly.
  void set_options(const Options& options);
  Options options() const;

  Stats stats() const;

 private:
  /// True when `cost` fits under the current caps; caller holds mu_.
  bool HasCapacityLocked(size_t cost) const;
  void ReleaseLocked(size_t cost);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Options options_;
  // FIFO by ticket number: a waiter is admitted only when it is the oldest
  // waiter (its number == admit_cursor_) AND capacity allows.
  uint64_t next_ticket_ = 0;
  uint64_t admit_cursor_ = 0;
  size_t inflight_ = 0;
  size_t inflight_budget_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t waited_total_ = 0;

  friend class Ticket;
};

}  // namespace api
}  // namespace hypre
