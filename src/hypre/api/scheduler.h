// Admission scheduler: graceful degradation for many-client serving.
//
// Thousands of concurrent Enumerate() callers on one Session would all
// pile onto the shared TaskPool and the engine caches at once; past the
// core count that buys no throughput, only latency variance and memory
// pressure (every admitted request holds its frontier buffers and an
// epoch pin). The scheduler turns that cliff into a queue: requests are
// admitted strictly FIFO, subject to
//
//   * a concurrency cap (max_concurrent in-flight requests), and
//   * a probe-budget cap (the sum of admitted requests' probe budgets —
//     the API layer's unit of probe spend — stays below
//     max_inflight_probe_budget).
//
// A request whose budget alone exceeds the cap is admitted when it is the
// only one in flight (otherwise it would starve forever); unbudgeted
// requests (probe_budget == 0) count only against the concurrency cap.
// Both caps default to 0 = unlimited, which reduces Admit() to one
// uncontended mutex round-trip — cheap enough to sit on every request.
//
// Overload shedding (the HTTP front end's contract): a saturated scheduler
// must fail fast, not queue unboundedly. TryAdmit() adds two bounds on top
// of the FIFO discipline —
//
//   * max_queue_depth: a request that WOULD have to wait while that many
//     requests are already waiting is rejected immediately, and
//   * a wait deadline: a request still queued when its deadline passes
//     abandons its place in line and is rejected.
//
// Both rejections are Status::Unavailable (typed, so the server maps them
// to 429 + Retry-After). The legacy Admit() keeps its wait-forever,
// never-rejected contract for embedded callers; the serving path goes
// through TryAdmit. Abandoned tickets are skipped when the FIFO cursor
// reaches them, so a timed-out head-of-line waiter cannot stall the queue.
//
// Telemetry: queue depth and in-flight gauges, admitted- and
// rejected-request counters, and a wait-time histogram
// (hypre_api_admission_*).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "common/status.h"

namespace hypre {
namespace api {

class AdmissionScheduler {
 public:
  struct Options {
    /// In-flight request cap; 0 = unlimited.
    size_t max_concurrent = 0;
    /// Cap on the summed probe budgets of in-flight requests; 0 =
    /// unlimited. An oversized request is admitted when alone.
    size_t max_inflight_probe_budget = 0;
    /// Cap on requests WAITING for admission; 0 = unlimited. Enforced by
    /// TryAdmit only: a request that would have to queue behind this many
    /// waiters is rejected with Status::Unavailable instead of blocking.
    size_t max_queue_depth = 0;
  };

  /// \brief One scheduler snapshot, for tests and introspection.
  struct Stats {
    uint64_t admitted = 0;        // requests admitted so far
    uint64_t waited = 0;          // of those, how many had to queue
    uint64_t rejected = 0;        // TryAdmit rejections (queue full/timeout)
    size_t inflight = 0;          // currently admitted requests
    size_t inflight_budget = 0;   // summed probe budgets of those
    size_t queue_depth = 0;       // requests currently waiting
  };

  /// \brief RAII admission slot: holds the request's concurrency/budget
  /// reservation, released on destruction. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : scheduler_(other.scheduler_), cost_(other.cost_) {
      other.scheduler_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        scheduler_ = other.scheduler_;
        cost_ = other.cost_;
        other.scheduler_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();
    bool admitted() const { return scheduler_ != nullptr; }

   private:
    friend class AdmissionScheduler;
    Ticket(AdmissionScheduler* scheduler, size_t cost)
        : scheduler_(scheduler), cost_(cost) {}
    AdmissionScheduler* scheduler_ = nullptr;
    size_t cost_ = 0;
  };

  AdmissionScheduler() = default;
  explicit AdmissionScheduler(const Options& options) : options_(options) {}
  AdmissionScheduler(const AdmissionScheduler&) = delete;
  AdmissionScheduler& operator=(const AdmissionScheduler&) = delete;

  /// \brief Blocks until this request is admitted (strict FIFO by arrival,
  /// then capacity), reserving one concurrency slot and `probe_budget`
  /// units of in-flight probe spend. Returns the RAII reservation. Never
  /// rejected: max_queue_depth does not apply to this entry point.
  Ticket Admit(size_t probe_budget);

  /// \brief Deadline-aware admission for the serving path: rejects with
  /// Status::Unavailable when the request would have to queue behind
  /// max_queue_depth waiters, or when it is still queued at `deadline`
  /// (std::nullopt = wait forever). FIFO order and the capacity caps are
  /// identical to Admit().
  Result<Ticket> TryAdmit(
      size_t probe_budget,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// \brief Replaces the caps. Takes effect for future admission checks;
  /// already-admitted requests keep their reservations. Waiters are
  /// re-woken so a LOOSENED cap admits them promptly.
  void set_options(const Options& options);
  Options options() const;

  Stats stats() const;

 private:
  /// True when `cost` fits under the current caps; caller holds mu_.
  bool HasCapacityLocked(size_t cost) const;
  void ReleaseLocked(size_t cost);
  /// Shared FIFO wait loop. `bounded` enables the queue-depth bound.
  Result<Ticket> AdmitInternal(
      size_t cost, bool bounded,
      std::optional<std::chrono::steady_clock::time_point> deadline);
  /// Advances the cursor past tickets whose waiters gave up; caller holds
  /// mu_. Without this, a timed-out head waiter would stall FIFO forever.
  void SkipAbandonedLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Options options_;
  // FIFO by ticket number: a waiter is admitted only when it is the oldest
  // waiter (its number == admit_cursor_) AND capacity allows.
  uint64_t next_ticket_ = 0;
  uint64_t admit_cursor_ = 0;
  // Tickets abandoned by a deadline expiry while not at the cursor yet;
  // skipped (and erased) when the cursor reaches them.
  std::unordered_set<uint64_t> abandoned_;
  size_t waiting_ = 0;
  size_t inflight_ = 0;
  size_t inflight_budget_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t waited_total_ = 0;
  uint64_t rejected_total_ = 0;

  friend class Ticket;
};

}  // namespace api
}  // namespace hypre
