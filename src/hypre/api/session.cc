#include "hypre/api/session.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"
#include "sqlparse/select_parser.h"

namespace hypre {
namespace api {

namespace {

#if HYPRE_TELEMETRY_ENABLED
/// Folds one finished request's ProbeStats delta into the registry — ONE
/// counter add per field per request, so the probe hot path itself never
/// touches the registry and the numbers exactly match the per-request
/// stats contract (no double counting between layers).
void FoldRequestStats(const core::ProbeStats& stats, uint64_t request_us) {
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* requests = registry.GetCounter(
      "hypre_api_requests_total", "api", "Enumeration requests served");
  static telemetry::Histogram* latency = registry.GetHistogram(
      "hypre_api_request_us", "api", "Microseconds per enumeration request");
  static telemetry::Counter* leaf_queries = registry.GetCounter(
      "hypre_engine_leaf_queries_total", "engine",
      "Relational queries run to materialize leaf bitmaps");
  static telemetry::Counter* cache_hits = registry.GetCounter(
      "hypre_engine_cache_hits_total", "engine",
      "Probes answered from the memoized count cache");
  static telemetry::Counter* batches = registry.GetCounter(
      "hypre_prober_batches_total", "prober", "Batch kernel invocations");
  static telemetry::Counter* batched_probes = registry.GetCounter(
      "hypre_prober_batched_probes_total", "prober",
      "Probes answered through batch kernels");
  static telemetry::Counter* shard_passes = registry.GetCounter(
      "hypre_prober_shard_passes_total", "prober",
      "Shard passes executed by batch kernels");
  requests->Increment();
  latency->Record(request_us);
  leaf_queries->Add(stats.num_leaf_queries);
  cache_hits->Add(stats.num_cache_hits);
  batches->Add(stats.num_batches);
  batched_probes->Add(stats.num_batched_probes);
  shard_passes->Add(stats.num_shard_passes);
}
#endif

}  // namespace

Session::~Session() {
  if (checkpoint_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(checkpoint_mu_);
      checkpoint_shutdown_ = true;
    }
    checkpoint_cv_.notify_all();
    checkpoint_thread_.join();
  }
}

Result<core::QueryEnhancer*> Session::GetEnhancer(
    const reldb::Query& base_query, const std::string& key_column) {
  if (base_query.from.empty()) {
    return Status::InvalidArgument("request has no base query (FROM empty)");
  }
  if (key_column.empty()) {
    return Status::InvalidArgument("request has no key column");
  }
  // The rendered SQL is a stable identity for the query skeleton; the key
  // column joins it because one base query can be probed under different
  // tuple identities.
  std::string key = base_query.ToSql();
  key += '\n';
  key += key_column;
  {
    // Fast path: every request after the first over a query spec finds its
    // engine under the shared lock, so concurrent readers never serialize.
    std::shared_lock<std::shared_mutex> lock(enhancers_mu_);
    auto it = enhancers_.find(key);
    if (it != enhancers_.end()) {
      telemetry::TraceNote("api", "enhancer_cache_hit");
      return it->second.get();
    }
  }
  std::unique_lock<std::shared_mutex> lock(enhancers_mu_);
  // Re-check: another first-touch request may have built the engine while
  // this one upgraded its lock — find-or-create must resolve to ONE engine.
  auto it = enhancers_.find(key);
  if (it != enhancers_.end()) {
    telemetry::TraceNote("api", "enhancer_cache_hit");
    return it->second.get();
  }
  telemetry::TraceNote("api", "enhancer_cache_miss");
  it = enhancers_
           .emplace(std::move(key), std::make_unique<core::QueryEnhancer>(
                                        db_, base_query, key_column))
           .first;
  // A pool created before this engine existed missed it in its attach
  // sweep; attaching under the unique lock pairs with that sweep's shared
  // lock, so exactly one of the two paths always sees the other's work.
  if (parallel::TaskPool* pool = pool_ptr_.load(std::memory_order_acquire)) {
    it->second->probe_engine().set_task_pool(pool);
  }
  return it->second.get();
}

parallel::TaskPool* Session::task_pool() {
  if (parallel::TaskPool* pool = pool_ptr_.load(std::memory_order_acquire)) {
    return pool;
  }
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (!pool_) {
    pool_ = std::make_unique<parallel::TaskPool>();
    // Publish BEFORE the attach sweep: an engine inserted concurrently
    // either lands in the sweep below or observes the published pointer in
    // GetEnhancer — never neither.
    pool_ptr_.store(pool_.get(), std::memory_order_release);
    std::shared_lock<std::shared_mutex> engines(enhancers_mu_);
    for (auto& [key, enhancer] : enhancers_) {
      enhancer->probe_engine().set_task_pool(pool_.get());
    }
  }
  return pool_.get();
}

Result<uint64_t> Session::Refresh() {
  std::shared_lock<std::shared_mutex> lock(enhancers_mu_);
  uint64_t epoch = 0;
  for (auto& [key, enhancer] : enhancers_) {
    HYPRE_ASSIGN_OR_RETURN(uint64_t e, enhancer->Refresh());
    epoch = std::max(epoch, e);
  }
  return epoch;
}

Result<uint64_t> Session::RefreshAllBlocking() {
  std::shared_lock<std::shared_mutex> lock(enhancers_mu_);
  uint64_t epoch = 0;
  for (auto& [key, enhancer] : enhancers_) {
    HYPRE_ASSIGN_OR_RETURN(uint64_t e, enhancer->RefreshBlocking());
    epoch = std::max(epoch, e);
  }
  return epoch;
}

std::vector<storage::SnapshotEngineState> Session::CaptureEngineStates()
    const {
  // Sorted by cache key so identical sessions write byte-identical
  // snapshots (the unordered_map's iteration order is not stable).
  std::map<std::string, const core::QueryEnhancer*> ordered;
  {
    std::shared_lock<std::shared_mutex> lock(enhancers_mu_);
    for (const auto& [key, enhancer] : enhancers_) {
      ordered.emplace(key, enhancer.get());
    }
  }
  std::vector<storage::SnapshotEngineState> states;
  states.reserve(ordered.size());
  for (const auto& [key, enhancer] : ordered) {
    storage::SnapshotEngineState state;
    state.base_sql = enhancer->base_query().ToSql();
    state.key_column = enhancer->key_column();
    state.image = enhancer->CaptureSnapshotImage();
    states.push_back(std::move(state));
  }
  return states;
}

Status Session::AttachStorage(const std::string& dir,
                              const storage::StorageOptions& options) {
  std::lock_guard<std::mutex> storage_lock(storage_mu_);
  if (store_ != nullptr) {
    return Status::InvalidArgument("session already has storage attached");
  }
  if (owned_db_ == nullptr) {
    return Status::InvalidArgument(
        "AttachStorage requires a session that owns its database (the "
        "store truncates the mutation journal, which other consumers of a "
        "borrowed database would not survive)");
  }
  // Catch every engine up so the captured images all cover the same
  // journal sequence as the snapshot. Blocking: a deferred suffix would
  // leave an engine cursor behind the checkpoint sequence.
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, RefreshAllBlocking());
  (void)epoch;
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<storage::EngineStore> store,
                         storage::EngineStore::Open(dir, options));
  if (store->HasSnapshot()) {
    return Status::InvalidArgument(
        "storage dir '" + dir + "' already holds a snapshot; open it with "
        "Session::OpenFromSnapshot, or point AttachStorage at a fresh "
        "directory (the initial checkpoint would overwrite the existing "
        "durable state)");
  }
  Status st = store->InitialCheckpoint(owned_db_.get(), CaptureEngineStates());
  if (!st.ok()) return st;
  store_ = std::move(store);
  return Status::OK();
}

Status Session::SaveSnapshot() {
  std::lock_guard<std::mutex> storage_lock(storage_mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "session has no storage attached (AttachStorage first)");
  }
  // An explicit snapshot must cover everything: wait out any background
  // write, retire its snapshot, then checkpoint synchronously. The refresh
  // is blocking — every engine's journal suffix must be APPLIED before its
  // image is captured, so this waits for in-flight readers to drain.
  HYPRE_RETURN_NOT_OK(DrainBackgroundCheckpoint());
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, RefreshAllBlocking());
  (void)epoch;
  return store_->WriteCheckpoint(owned_db_.get(), CaptureEngineStates());
}

Status Session::CommitJournal() {
  std::lock_guard<std::mutex> storage_lock(storage_mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "session has no storage attached (AttachStorage first)");
  }
  return store_->CommitJournal(*db_);
}

Status Session::FinishPublishedCheckpoint() {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    if (!published_pending_) return Status::OK();
    published_pending_ = false;
    seq = published_seq_;
  }
  telemetry::TraceSpan span("storage", "checkpoint_retire");
  store_->NoteSnapshotPublished(seq);
  // The rotation re-spills every committed record past the snapshot into
  // the fresh log before the rename, so this is safe at any time on the
  // request path — see storage::EngineStore::RotateWalRespill.
  HYPRE_RETURN_NOT_OK(store_->RotateWalRespill(*db_));
  // Engine cursors were all >= seq when the blob was captured and only
  // advance; the journal prefix below seq has no remaining consumer.
  owned_db_->mutable_journal()->TruncateTo(seq);
  return Status::OK();
}

Status Session::DrainBackgroundCheckpoint() {
  {
    std::unique_lock<std::mutex> lock(checkpoint_mu_);
    checkpoint_cv_.wait(lock, [&] { return !checkpoint_inflight_; });
    if (!checkpoint_error_.ok()) {
      Status error = checkpoint_error_;
      checkpoint_error_ = Status::OK();
      return error;
    }
  }
  return FinishPublishedCheckpoint();
}

void Session::EnsureCheckpointThread() {
  if (checkpoint_thread_.joinable()) return;
  checkpoint_thread_ = std::thread([this] { CheckpointWorkerMain(); });
}

void Session::CheckpointWorkerMain() {
  std::unique_lock<std::mutex> lock(checkpoint_mu_);
  for (;;) {
    checkpoint_cv_.wait(lock, [&] {
      return checkpoint_shutdown_ || checkpoint_job_.has_value();
    });
    if (checkpoint_shutdown_) return;
    PendingCheckpoint job = std::move(*checkpoint_job_);
    checkpoint_job_.reset();
    lock.unlock();

    // File I/O only: the worker never touches the database, the engines,
    // or the WAL writer. The request thread owns all of those.
#if HYPRE_TELEMETRY_ENABLED
    auto start = std::chrono::steady_clock::now();
#endif
    Status published = store_->PublishSnapshotBlob(job.blob);
    HYPRE_TELEMETRY_STMT(
        telemetry::MetricsRegistry::Global()
            .GetHistogram("hypre_storage_checkpoint_duration_ms", "storage",
                          "Milliseconds per checkpoint (spill through "
                          "rotation)")
            ->Record(uint64_t(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
        telemetry::MetricsRegistry::Global()
            .GetCounter("hypre_storage_checkpoints_total", "storage",
                        "Checkpoints published (snapshot + WAL rotation)")
            ->Increment();
        telemetry::MetricsRegistry::Global()
            .GetCounter("hypre_storage_snapshot_bytes_total", "storage",
                        "Encoded snapshot bytes written")
            ->Add(job.blob.size()));

    lock.lock();
    if (published.ok()) {
      published_pending_ = true;
      published_seq_ = job.seq;
    } else {
      checkpoint_error_ = published;
    }
    checkpoint_inflight_ = false;
    checkpoint_cv_.notify_all();
  }
}

Status Session::MaybeAutoCheckpoint() {
  if (store_ == nullptr) return Status::OK();
  // Requests race into here; the policy itself (finish/threshold/encode/
  // enqueue) must run one at a time or two threads would encode the same
  // snapshot and double-rotate the WAL.
  std::lock_guard<std::mutex> storage_lock(storage_mu_);
  // A background failure is surfaced on the next request — the policy is
  // best-effort, but silent failure would let the WAL grow unbounded.
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    if (!checkpoint_error_.ok()) {
      Status error = checkpoint_error_;
      checkpoint_error_ = Status::OK();
      return error;
    }
  }
  HYPRE_RETURN_NOT_OK(FinishPublishedCheckpoint());
  uint64_t threshold = store_->options().auto_checkpoint_mutations;
  if (threshold == 0) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    if (checkpoint_inflight_) {
      // One snapshot at a time; the threshold check re-fires next request.
      HYPRE_TELEMETRY_STMT(
          telemetry::MetricsRegistry::Global()
              .GetCounter("hypre_storage_checkpoint_skipped_total", "storage",
                          "Auto-checkpoints skipped (one already in flight)")
              ->Increment());
      return Status::OK();
    }
  }
  uint64_t pending = db_->journal().sequence() - store_->snapshot_sequence();
  if (pending < threshold) return Status::OK();

  telemetry::TraceSpan span("storage", "checkpoint_prepare");
  // Durability point and blob capture stay on the request path. The
  // refresh is NON-blocking: with readers pinned it defers, and a deferred
  // suffix means that engine's cursor sits behind the sequence this
  // checkpoint would cover — truncating the journal to it would strand the
  // engine. Skip the round and let the threshold re-fire on a later
  // request once the readers drain; the WAL keeps everything durable
  // meanwhile.
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, Refresh());
  (void)epoch;
  {
    std::shared_lock<std::shared_mutex> lock(enhancers_mu_);
    for (const auto& [key, enhancer] : enhancers_) {
      if (enhancer->probe_engine().has_deferred_refresh()) {
        HYPRE_TELEMETRY_STMT(
            telemetry::MetricsRegistry::Global()
                .GetCounter(
                    "hypre_storage_checkpoint_deferred_total", "storage",
                    "Auto-checkpoint rounds skipped because an engine's "
                    "refresh was deferred by pinned readers")
                ->Increment());
        return Status::OK();
      }
    }
  }
  HYPRE_RETURN_NOT_OK(store_->CommitJournal(*db_));
  uint64_t seq = db_->journal().sequence();
  std::string blob =
      storage::EncodeSnapshot(*owned_db_, seq, CaptureEngineStates());
  HYPRE_TELEMETRY_STMT(
      telemetry::MetricsRegistry::Global()
          .GetCounter("hypre_storage_checkpoint_queued_total", "storage",
                      "Snapshot writes handed to the background worker")
          ->Increment());
  EnsureCheckpointThread();
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    checkpoint_job_ = PendingCheckpoint{std::move(blob), seq};
    checkpoint_inflight_ = true;
  }
  checkpoint_cv_.notify_all();
  return Status::OK();
}

Result<std::unique_ptr<Session>> Session::OpenFromSnapshot(
    const std::string& dir, const storage::StorageOptions& options) {
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<storage::EngineStore> store,
                         storage::EngineStore::Open(dir, options));
  HYPRE_ASSIGN_OR_RETURN(storage::SnapshotContents contents,
                         store->Recover());
  auto session = std::make_unique<Session>(std::move(contents.db));
  session->store_ = std::move(store);
  for (const storage::SnapshotEngineState& state : contents.engines) {
    // The persisted base SQL round-trips through the SELECT parser into
    // the same Query (and therefore the same enhancer cache key) it was
    // rendered from.
    auto stmt = sqlparse::ParseSelect(state.base_sql);
    if (!stmt.ok()) {
      return Status::Internal("snapshot engine base query '" +
                              state.base_sql +
                              "' failed to parse: " + stmt.status().message());
    }
    HYPRE_ASSIGN_OR_RETURN(
        core::QueryEnhancer * enhancer,
        session->GetEnhancer(stmt.value().query, state.key_column));
    HYPRE_RETURN_NOT_OK(enhancer->RestoreSnapshotImage(state.image));
  }
  // Consume the replayed write-ahead-log tail so every restored engine is
  // current with the recovered database before the first request.
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, session->Refresh());
  (void)epoch;
  return session;
}

Result<EnumerationResult> Session::Enumerate(
    const EnumerationRequest& request) {
  // Admission gate: with default (unlimited) caps this is one uncontended
  // mutex round-trip; configured caps queue the request FIFO here, BEFORE
  // it takes an epoch pin or touches any engine state. A bounded queue or
  // an expired admission timeout sheds the request with
  // Status::Unavailable instead of blocking (the server's 429).
  std::optional<std::chrono::steady_clock::time_point> admission_deadline;
  if (request.admission_timeout_ms > 0) {
    admission_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(request.admission_timeout_ms);
  }
  HYPRE_ASSIGN_OR_RETURN(
      AdmissionScheduler::Ticket ticket,
      scheduler_.TryAdmit(request.probe_budget, admission_deadline));
  (void)ticket;
#if HYPRE_TELEMETRY_ENABLED
  if (request.trace) {
    EnumerationResult result;
    telemetry::Trace trace;
    {
      // The target installs a thread_local, so every TraceSpan opened under
      // EnumerateInternal — engine, prober, delta, storage — lands in this
      // request's buffer with no plumbing. Both scopes must close before
      // the trace moves into the result (open spans hold its address).
      telemetry::ScopedTraceTarget target(&trace);
      telemetry::TraceSpan root("api", "enumerate");
      HYPRE_RETURN_NOT_OK(EnumerateInternal(request, &result));
    }
    result.trace = std::move(trace);
    return result;
  }
#endif
  EnumerationResult result;
  HYPRE_RETURN_NOT_OK(EnumerateInternal(request, &result));
  return result;
}

Status Session::EnumerateInternal(const EnumerationRequest& request,
                                  EnumerationResult* result) {
#if HYPRE_TELEMETRY_ENABLED
  auto request_start = std::chrono::steady_clock::now();
#endif
  HYPRE_ASSIGN_OR_RETURN(
      const CombinationEnumerator* enumerator,
      EnumeratorRegistry::Global().Find(request.algorithm));
  HYPRE_ASSIGN_OR_RETURN(
      core::QueryEnhancer * enhancer,
      GetEnhancer(request.base_query, request.key_column));

  // Auto-checkpoint BEFORE the epoch is pinned: a checkpoint refreshes
  // every engine, and doing that under this request's own pin would only
  // defer it again.
  HYPRE_RETURN_NOT_OK(MaybeAutoCheckpoint());

  // Pin the epoch: the whole run probes one consistent snapshot. A
  // refresh-first pin (request.refresh, the default) drains the mutation
  // journal up front — unless other readers are already pinned, in which
  // case the suffix defers and this request joins them on the live epoch.
  // While the pin is held a concurrent Refresh cannot resize bitmaps out
  // from under the algorithm's handles.
  HYPRE_ASSIGN_OR_RETURN(core::ProbeEngine::EpochPin pin,
                         enhancer->PinEpoch(request.refresh));
  result->epoch = pin.epoch();

  // Per-request statistics: a thread_local collector, installed for the
  // prefetch + run scope, receives every probe counted on this thread and
  // folds the totals back into the engine's lifetime counters when it goes
  // out of scope. (Snapshot subtraction against the engine's lifetime
  // counters would double-count the moment two requests share an engine.)
  core::ProbeStats request_stats;
  core::ScopedProbeStatsCollector stats_collector(&enhancer->probe_engine(),
                                                  &request_stats);

  // Every algorithm requires the list sorted descending by intensity; sort
  // a copy so callers can hand preferences in any order.
  std::vector<core::PreferenceAtom> atoms = request.preferences;
  core::SortByIntensityDesc(&atoms);

  // Resolve the request's runtime: if it asks for parallelism (num_threads
  // 0 = auto, or > 1) without naming a pool, inject the session's shared
  // TaskPool — one persistent set of workers serves every request. The
  // resolution lands ONLY in this request's ProbeOptions copy; the engine
  // itself got the pool attached once at creation (writing its atomic
  // per-request would thrash other in-flight requests' allocation paths).
  core::ProbeOptions probe_options = request.probe_options;
  if (probe_options.pool == nullptr && probe_options.num_threads != 1) {
    probe_options.pool = task_pool();
  }

  // Shared leaf prefetch: load every leaf the request's preferences reach
  // in ONE executor pass. The engine's leaf cache persists across requests,
  // so later requests over the same query spec dedup to a no-op here.
  if (request.probe_options.batching && !atoms.empty()) {
    std::vector<reldb::ExprPtr> exprs;
    exprs.reserve(atoms.size());
    for (const core::PreferenceAtom& atom : atoms) exprs.push_back(atom.expr);
    HYPRE_RETURN_NOT_OK(enhancer->probe_engine().PrefetchLeaves(exprs));
  }

  core::ProbeBudget budget(request.probe_budget);
  EnumerationContext ctx;
  ctx.enhancer = enhancer;
  ctx.preferences = &atoms;
  ctx.request = &request;
  ctx.probe_options = probe_options;
  if (request.probe_budget > 0) ctx.control.budget = &budget;
  if (request.record_sink) ctx.control.record_sink = &request.record_sink;
  if (request.tuple_sink) ctx.control.tuple_sink = &request.tuple_sink;
  ctx.control.truncated = &result->truncated;

  {
    telemetry::TraceSpan span("api", "run_algorithm");
    HYPRE_RETURN_NOT_OK(enumerator->Run(ctx, result));
  }
  result->stats = request_stats;
  HYPRE_TELEMETRY_STMT(FoldRequestStats(
      result->stats,
      uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - request_start)
                   .count())));
  // Scheduler counters are cumulative; mirroring them after each request
  // keeps the registry's view current without touching the probe path.
  if (parallel::TaskPool* pool = pool_ptr_.load(std::memory_order_acquire)) {
    HYPRE_TELEMETRY_STMT(pool->PublishStats());
    (void)pool;
  }
  return Status::OK();
}

}  // namespace api
}  // namespace hypre
