#include "hypre/api/session.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sqlparse/select_parser.h"

namespace hypre {
namespace api {

Result<core::QueryEnhancer*> Session::GetEnhancer(
    const reldb::Query& base_query, const std::string& key_column) {
  if (base_query.from.empty()) {
    return Status::InvalidArgument("request has no base query (FROM empty)");
  }
  if (key_column.empty()) {
    return Status::InvalidArgument("request has no key column");
  }
  // The rendered SQL is a stable identity for the query skeleton; the key
  // column joins it because one base query can be probed under different
  // tuple identities.
  std::string key = base_query.ToSql();
  key += '\n';
  key += key_column;
  auto it = enhancers_.find(key);
  if (it == enhancers_.end()) {
    it = enhancers_
             .emplace(std::move(key),
                      std::make_unique<core::QueryEnhancer>(db_, base_query,
                                                            key_column))
             .first;
  }
  return it->second.get();
}

parallel::TaskPool* Session::task_pool() {
  if (!pool_) pool_ = std::make_unique<parallel::TaskPool>();
  return pool_.get();
}

Result<uint64_t> Session::Refresh() {
  uint64_t epoch = 0;
  for (auto& [key, enhancer] : enhancers_) {
    HYPRE_ASSIGN_OR_RETURN(uint64_t e, enhancer->Refresh());
    epoch = std::max(epoch, e);
  }
  return epoch;
}

std::vector<storage::SnapshotEngineState> Session::CaptureEngineStates()
    const {
  // Sorted by cache key so identical sessions write byte-identical
  // snapshots (the unordered_map's iteration order is not stable).
  std::map<std::string, const core::QueryEnhancer*> ordered;
  for (const auto& [key, enhancer] : enhancers_) {
    ordered.emplace(key, enhancer.get());
  }
  std::vector<storage::SnapshotEngineState> states;
  states.reserve(ordered.size());
  for (const auto& [key, enhancer] : ordered) {
    storage::SnapshotEngineState state;
    state.base_sql = enhancer->base_query().ToSql();
    state.key_column = enhancer->key_column();
    state.image = enhancer->CaptureSnapshotImage();
    states.push_back(std::move(state));
  }
  return states;
}

Status Session::AttachStorage(const std::string& dir,
                              const storage::StorageOptions& options) {
  if (store_ != nullptr) {
    return Status::InvalidArgument("session already has storage attached");
  }
  if (owned_db_ == nullptr) {
    return Status::InvalidArgument(
        "AttachStorage requires a session that owns its database (the "
        "store truncates the mutation journal, which other consumers of a "
        "borrowed database would not survive)");
  }
  // Catch every engine up so the captured images all cover the same
  // journal sequence as the snapshot.
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, Refresh());
  (void)epoch;
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<storage::EngineStore> store,
                         storage::EngineStore::Open(dir, options));
  if (store->HasSnapshot()) {
    return Status::InvalidArgument(
        "storage dir '" + dir + "' already holds a snapshot; open it with "
        "Session::OpenFromSnapshot, or point AttachStorage at a fresh "
        "directory (the initial checkpoint would overwrite the existing "
        "durable state)");
  }
  Status st = store->InitialCheckpoint(owned_db_.get(), CaptureEngineStates());
  if (!st.ok()) return st;
  store_ = std::move(store);
  return Status::OK();
}

Status Session::SaveSnapshot() {
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "session has no storage attached (AttachStorage first)");
  }
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, Refresh());
  (void)epoch;
  return store_->WriteCheckpoint(owned_db_.get(), CaptureEngineStates());
}

Status Session::CommitJournal() {
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "session has no storage attached (AttachStorage first)");
  }
  return store_->CommitJournal(*db_);
}

Status Session::MaybeAutoCheckpoint() {
  if (store_ == nullptr) return Status::OK();
  uint64_t threshold = store_->options().auto_checkpoint_mutations;
  if (threshold == 0) return Status::OK();
  uint64_t pending = db_->journal().sequence() - store_->snapshot_sequence();
  if (pending < threshold) return Status::OK();
  return SaveSnapshot();
}

Result<std::unique_ptr<Session>> Session::OpenFromSnapshot(
    const std::string& dir, const storage::StorageOptions& options) {
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<storage::EngineStore> store,
                         storage::EngineStore::Open(dir, options));
  HYPRE_ASSIGN_OR_RETURN(storage::SnapshotContents contents,
                         store->Recover());
  auto session = std::make_unique<Session>(std::move(contents.db));
  session->store_ = std::move(store);
  for (const storage::SnapshotEngineState& state : contents.engines) {
    // The persisted base SQL round-trips through the SELECT parser into
    // the same Query (and therefore the same enhancer cache key) it was
    // rendered from.
    auto stmt = sqlparse::ParseSelect(state.base_sql);
    if (!stmt.ok()) {
      return Status::Internal("snapshot engine base query '" +
                              state.base_sql +
                              "' failed to parse: " + stmt.status().message());
    }
    HYPRE_ASSIGN_OR_RETURN(
        core::QueryEnhancer * enhancer,
        session->GetEnhancer(stmt.value().query, state.key_column));
    HYPRE_RETURN_NOT_OK(enhancer->RestoreSnapshotImage(state.image));
  }
  // Consume the replayed write-ahead-log tail so every restored engine is
  // current with the recovered database before the first request.
  HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, session->Refresh());
  (void)epoch;
  return session;
}

Result<EnumerationResult> Session::Enumerate(
    const EnumerationRequest& request) {
  HYPRE_ASSIGN_OR_RETURN(
      const CombinationEnumerator* enumerator,
      EnumeratorRegistry::Global().Find(request.algorithm));
  HYPRE_ASSIGN_OR_RETURN(
      core::QueryEnhancer * enhancer,
      GetEnhancer(request.base_query, request.key_column));

  // Auto-checkpoint BEFORE the epoch is pinned: a checkpoint refreshes
  // every engine (no algorithm holds bitmap handles yet), so running it
  // mid-request would invalidate the pinned snapshot.
  HYPRE_RETURN_NOT_OK(MaybeAutoCheckpoint());

  EnumerationResult result;
  // Pin the epoch: drain the mutation journal up front so the whole run
  // probes one consistent snapshot (Refresh must not run mid-algorithm —
  // algorithms hold bitmap handles a refresh may resize).
  if (request.refresh) {
    HYPRE_ASSIGN_OR_RETURN(result.epoch, enhancer->Refresh());
  } else {
    result.epoch = enhancer->probe_engine().epoch();
  }

  // Every algorithm requires the list sorted descending by intensity; sort
  // a copy so callers can hand preferences in any order.
  std::vector<core::PreferenceAtom> atoms = request.preferences;
  core::SortByIntensityDesc(&atoms);

  // Resolve the request's runtime: if it asks for parallelism (num_threads
  // 0 = auto, or > 1) without naming a pool, inject the session's shared
  // TaskPool — one persistent set of workers serves every request — and
  // attach it to the engine so leaf allocation/resize paths first-touch on
  // the same workers that will probe the bitmaps.
  core::ProbeOptions probe_options = request.probe_options;
  if (probe_options.pool == nullptr && probe_options.num_threads != 1) {
    probe_options.pool = task_pool();
  }
  enhancer->probe_engine().set_task_pool(probe_options.pool,
                                         probe_options.num_threads);

  // Snapshot before the prefetch so leaf loads count toward this request.
  core::ProbeStats before = enhancer->stats();

  // Shared leaf prefetch: load every leaf the request's preferences reach
  // in ONE executor pass. The engine's leaf cache persists across requests,
  // so later requests over the same query spec dedup to a no-op here.
  if (request.probe_options.batching && !atoms.empty()) {
    std::vector<reldb::ExprPtr> exprs;
    exprs.reserve(atoms.size());
    for (const core::PreferenceAtom& atom : atoms) exprs.push_back(atom.expr);
    HYPRE_RETURN_NOT_OK(enhancer->probe_engine().PrefetchLeaves(exprs));
  }

  core::ProbeBudget budget(request.probe_budget);
  EnumerationContext ctx;
  ctx.enhancer = enhancer;
  ctx.preferences = &atoms;
  ctx.request = &request;
  ctx.probe_options = probe_options;
  if (request.probe_budget > 0) ctx.control.budget = &budget;
  if (request.record_sink) ctx.control.record_sink = &request.record_sink;
  if (request.tuple_sink) ctx.control.tuple_sink = &request.tuple_sink;
  ctx.control.truncated = &result.truncated;

  HYPRE_RETURN_NOT_OK(enumerator->Run(ctx, &result));
  result.stats = enhancer->stats() - before;
  return result;
}

}  // namespace api
}  // namespace hypre
