#include "hypre/api/session.h"

#include <algorithm>
#include <utility>

namespace hypre {
namespace api {

Result<core::QueryEnhancer*> Session::GetEnhancer(
    const reldb::Query& base_query, const std::string& key_column) {
  if (base_query.from.empty()) {
    return Status::InvalidArgument("request has no base query (FROM empty)");
  }
  if (key_column.empty()) {
    return Status::InvalidArgument("request has no key column");
  }
  // The rendered SQL is a stable identity for the query skeleton; the key
  // column joins it because one base query can be probed under different
  // tuple identities.
  std::string key = base_query.ToSql();
  key += '\n';
  key += key_column;
  auto it = enhancers_.find(key);
  if (it == enhancers_.end()) {
    it = enhancers_
             .emplace(std::move(key),
                      std::make_unique<core::QueryEnhancer>(db_, base_query,
                                                            key_column))
             .first;
  }
  return it->second.get();
}

parallel::TaskPool* Session::task_pool() {
  if (!pool_) pool_ = std::make_unique<parallel::TaskPool>();
  return pool_.get();
}

Result<uint64_t> Session::Refresh() {
  uint64_t epoch = 0;
  for (auto& [key, enhancer] : enhancers_) {
    HYPRE_ASSIGN_OR_RETURN(uint64_t e, enhancer->Refresh());
    epoch = std::max(epoch, e);
  }
  return epoch;
}

Result<EnumerationResult> Session::Enumerate(
    const EnumerationRequest& request) {
  HYPRE_ASSIGN_OR_RETURN(
      const CombinationEnumerator* enumerator,
      EnumeratorRegistry::Global().Find(request.algorithm));
  HYPRE_ASSIGN_OR_RETURN(
      core::QueryEnhancer * enhancer,
      GetEnhancer(request.base_query, request.key_column));

  EnumerationResult result;
  // Pin the epoch: drain the mutation journal up front so the whole run
  // probes one consistent snapshot (Refresh must not run mid-algorithm —
  // algorithms hold bitmap handles a refresh may resize).
  if (request.refresh) {
    HYPRE_ASSIGN_OR_RETURN(result.epoch, enhancer->Refresh());
  } else {
    result.epoch = enhancer->probe_engine().epoch();
  }

  // Every algorithm requires the list sorted descending by intensity; sort
  // a copy so callers can hand preferences in any order.
  std::vector<core::PreferenceAtom> atoms = request.preferences;
  core::SortByIntensityDesc(&atoms);

  // Resolve the request's runtime: if it asks for parallelism (num_threads
  // 0 = auto, or > 1) without naming a pool, inject the session's shared
  // TaskPool — one persistent set of workers serves every request — and
  // attach it to the engine so leaf allocation/resize paths first-touch on
  // the same workers that will probe the bitmaps.
  core::ProbeOptions probe_options = request.probe_options;
  if (probe_options.pool == nullptr && probe_options.num_threads != 1) {
    probe_options.pool = task_pool();
  }
  enhancer->probe_engine().set_task_pool(probe_options.pool,
                                         probe_options.num_threads);

  // Snapshot before the prefetch so leaf loads count toward this request.
  core::ProbeStats before = enhancer->stats();

  // Shared leaf prefetch: load every leaf the request's preferences reach
  // in ONE executor pass. The engine's leaf cache persists across requests,
  // so later requests over the same query spec dedup to a no-op here.
  if (request.probe_options.batching && !atoms.empty()) {
    std::vector<reldb::ExprPtr> exprs;
    exprs.reserve(atoms.size());
    for (const core::PreferenceAtom& atom : atoms) exprs.push_back(atom.expr);
    HYPRE_RETURN_NOT_OK(enhancer->probe_engine().PrefetchLeaves(exprs));
  }

  core::ProbeBudget budget(request.probe_budget);
  EnumerationContext ctx;
  ctx.enhancer = enhancer;
  ctx.preferences = &atoms;
  ctx.request = &request;
  ctx.probe_options = probe_options;
  if (request.probe_budget > 0) ctx.control.budget = &budget;
  if (request.record_sink) ctx.control.record_sink = &request.record_sink;
  if (request.tuple_sink) ctx.control.tuple_sink = &request.tuple_sink;
  ctx.control.truncated = &result.truncated;

  HYPRE_RETURN_NOT_OK(enumerator->Run(ctx, &result));
  result.stats = enhancer->stats() - before;
  return result;
}

}  // namespace api
}  // namespace hypre
