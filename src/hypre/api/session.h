// Session: the multi-request facade over the probe stack.
//
// A Session owns (or borrows) one Database and serves any number of
// EnumerationRequests against it. Per (base query, key column) it keeps ONE
// QueryEnhancer — i.e. one ProbeEngine with its interned universe, leaf
// cache, and delta subsystem — so consecutive requests share universe
// interning and leaf prefetch instead of rebuilding them per call, and
// every consumer goes through one versioned read path:
//
//   request ──▶ EnumeratorRegistry (by name)
//           ──▶ enhancer cache [(base SQL, key column) → QueryEnhancer]
//           ──▶ Refresh(): journal drained, epoch pinned for this request
//           ──▶ bulk leaf prefetch over the request's preference leaves
//           ──▶ enumerator Run (budget + sinks wired through)
//           ──▶ result {records/top_k, ProbeStats delta, epoch, truncated}
//
// Thread model: single writer, many readers — concurrent Enumerate()
// calls from any number of threads are safe and see consistent snapshots.
//
//  * READ side. Enumerate()/GetEnhancer()/Refresh() may be called from any
//    thread at any time. Each request takes a refcounted EPOCH PIN on its
//    engine (ProbeEngine::PinEpoch): while any pin is held the engine's
//    interned state is immutable — a concurrent Refresh or auto-checkpoint
//    defers the journal suffix instead of resizing bitmaps under the run,
//    and applies it when the last reader drains. A request with
//    request.refresh = true drains the journal first (read-your-writes),
//    which reads base tables, so it belongs to the WRITE side below; a
//    request with refresh = false is a PURE reader and never touches
//    tables, making it safe even against a concurrent writer.
//  * WRITE side. Base-table mutations, refresh-bearing requests,
//    Session::Refresh(), and every storage operation (AttachStorage /
//    SaveSnapshot / CommitJournal and the auto-checkpoint policy) must be
//    serialized with EACH OTHER by the caller — one writer thread, or an
//    external lock. They need no coordination with the read side: that is
//    what the epoch pins and the internal locks below provide.
//
// Internal synchronization (lock order, outermost first — see also the
// epoch-pin section in probe_engine.h and the concurrency section of
// ARCHITECTURE.md):
//   storage_mu_   — serializes the storage entry points and the
//                   auto-checkpoint policy against each other
//   enhancers_mu_ — shared_mutex over the enhancer cache: shared for
//                   lookup/iteration, unique only for first-touch insert
//   pool_mu_      — one-time creation of the shared TaskPool (published
//                   through an atomic so readers never take it)
//   per-engine    — ProbeEngine's refresh_mu_ then cache_mu_
//
// A session owns ONE work-stealing parallel::TaskPool (created lazily on
// the first request that asks for more than one probe thread), attaches it
// to every cached engine's allocation paths once, and injects it into each
// request's resolved ProbeOptions — all batches of all requests share a
// single set of persistent, parked-when-idle workers. Concurrent requests
// also pass the AdmissionScheduler (see api/scheduler.h): strict-FIFO
// admission under a configurable concurrency cap and a bound on summed
// in-flight probe budgets; both caps default to unlimited.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypre/api/enumeration.h"
#include "hypre/api/scheduler.h"
#include "hypre/parallel/task_pool.h"
#include "hypre/query_enhancement.h"
#include "hypre/storage/store.h"
#include "reldb/database.h"

namespace hypre {
namespace api {

class Session {
 public:
  /// \brief Session over a borrowed database (must outlive the session).
  explicit Session(const reldb::Database* db) : db_(db) {}
  /// \brief Session that owns its database.
  explicit Session(std::unique_ptr<reldb::Database> db)
      : owned_db_(std::move(db)), db_(owned_db_.get()) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  /// Joins the background checkpoint worker (a queued-but-unstarted job is
  /// dropped; its mutations are already durable in the WAL).
  ~Session();

  /// \brief Reopens a session from a storage directory: loads the snapshot,
  /// replays the write-ahead journal tail, rebuilds every persisted engine
  /// (dictionary, leaf cache, delta cursor) and attaches the store for
  /// further checkpoints. Fails closed — on any corruption no session is
  /// returned and the directory is left untouched. Requires a session that
  /// OWNS its database, which this constructor arranges.
  static Result<std::unique_ptr<Session>> OpenFromSnapshot(
      const std::string& dir, const storage::StorageOptions& options = {});

  /// \brief Runs one enumeration request end to end: registry dispatch,
  /// enhancer-cache lookup, epoch pinning, leaf prefetch, the algorithm
  /// itself, and the per-request statistics delta. With no probe budget the
  /// records/tuples are byte-identical to calling the algorithm's direct
  /// entry point on an equivalent enhancer.
  Result<EnumerationResult> Enumerate(const EnumerationRequest& request);

  /// \brief The cached enhancer for (base_query, key_column), created on
  /// first use. Exposed for consumers outside the six enumerators (ranking,
  /// skyline, metrics) so they share the same engines the requests warm.
  Result<core::QueryEnhancer*> GetEnhancer(const reldb::Query& base_query,
                                           const std::string& key_column);

  /// \brief Catches every cached engine up with the database's mutation
  /// journal. Returns the highest resulting epoch (0 when no engine is
  /// cached yet). Individual requests with request.refresh (the default)
  /// do this for their own engine automatically. Never blocks on in-flight
  /// enumerations: an engine with readers pinned defers its journal suffix
  /// (see ProbeEngine::Refresh).
  Result<uint64_t> Refresh();

  /// \brief Registered algorithm names (sorted) — what `algorithm` accepts.
  std::vector<std::string> Algorithms() const {
    return EnumeratorRegistry::Global().Names();
  }

  const reldb::Database* db() const { return db_; }
  /// \brief Mutable database access; null unless the session owns it.
  reldb::Database* mutable_db() { return owned_db_.get(); }
  /// \brief Number of distinct (base query, key column) engines cached.
  size_t num_cached_engines() const {
    std::shared_lock<std::shared_mutex> lock(enhancers_mu_);
    return enhancers_.size();
  }

  /// \brief The session's work-stealing pool, created (auto-sized) on first
  /// use — safe to race; exactly one pool is ever built. Requests that
  /// leave ProbeOptions::pool null and ask for more than one thread run
  /// their batches here.
  parallel::TaskPool* task_pool();
  /// \brief True once a request has forced pool creation.
  bool has_task_pool() const {
    return pool_ptr_.load(std::memory_order_acquire) != nullptr;
  }

  /// \brief The request admission scheduler. Unlimited by default;
  /// configure with scheduler().set_options({...}) to cap concurrent
  /// requests and in-flight probe spend. Thread-safe.
  AdmissionScheduler& scheduler() { return scheduler_; }

  // --- Durable storage ------------------------------------------------------

  /// \brief Attaches a FRESH storage directory and writes the initial
  /// checkpoint (snapshot + fresh write-ahead log) covering the session's
  /// current state. Refuses a directory that already holds a snapshot —
  /// overwriting another session's durable state would be silent data
  /// loss; reopen such a directory with OpenFromSnapshot instead. Requires
  /// a session that owns its database (the store truncates the journal,
  /// which a borrowed database's other consumers would not survive).
  /// Subsequent mutations become durable via CommitJournal() /
  /// SaveSnapshot() or the auto-checkpoint policy in
  /// StorageOptions::auto_checkpoint_mutations.
  Status AttachStorage(const std::string& dir,
                       const storage::StorageOptions& options = {});

  /// \brief Refreshes every cached engine, then writes a full checkpoint:
  /// journal spill, snapshot (atomic rename), WAL rotation, in-memory
  /// journal truncation. Restarting from the result is warm — no CSV
  /// re-parse, no universe re-intern, no leaf re-materialization.
  Status SaveSnapshot();

  /// \brief Spills the journal tail to the write-ahead log and fsyncs it —
  /// the group-commit point making recent mutations durable without the
  /// cost of a full snapshot.
  Status CommitJournal();

  bool has_storage() const { return store_ != nullptr; }
  /// \brief The attached store (null when not storage-backed).
  storage::EngineStore* store() { return store_.get(); }
  /// \brief True while the background worker is writing a snapshot.
  bool checkpoint_in_flight() const {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    return checkpoint_inflight_;
  }

 private:
  /// Captures every cached engine's durable state, sorted by cache key so
  /// snapshot bytes are deterministic.
  std::vector<storage::SnapshotEngineState> CaptureEngineStates() const;
  /// RefreshBlocking on every cached engine — the checkpoint paths need
  /// every journal suffix APPLIED (a deferred refresh would leave an engine
  /// cursor behind the snapshot sequence), so this waits for in-flight
  /// readers to drain instead of deferring. Returns the highest epoch.
  Result<uint64_t> RefreshAllBlocking();
  /// The request pipeline behind Enumerate() (which only adds admission
  /// and the optional trace installation around it).
  Status EnumerateInternal(const EnumerationRequest& request,
                           EnumerationResult* result);

  // --- Background auto-checkpointing ---------------------------------------
  //
  // The auto_checkpoint_mutations policy (PR 7) ran the full checkpoint —
  // snapshot encode AND write — inside the triggering request. Now only
  // the WAL group commit and the in-memory encode stay on the request
  // path; the snapshot's file I/O (write + fsync + rename, the dominant
  // cost) moves to a lazily spawned worker thread. The WAL rotation +
  // journal truncation that retire a published snapshot are deferred to
  // the NEXT request (FinishPublishedCheckpoint), because rotating the log
  // off-thread while the request path appends to it would reintroduce the
  // recovery data-loss hazard documented in storage/store.h.

  /// Applies the auto-checkpoint policy after a mutation-bearing request:
  /// surfaces any sticky background failure, retires a published snapshot,
  /// and enqueues a new checkpoint when the threshold is reached (skipped
  /// while one is in flight).
  Status MaybeAutoCheckpoint();
  /// Request-path tail of a background checkpoint: records the published
  /// snapshot, rotates the WAL (re-spilling the tail), truncates the
  /// journal.
  Status FinishPublishedCheckpoint();
  /// Blocks until no snapshot write is in flight, surfaces any background
  /// error, and retires a published snapshot.
  Status DrainBackgroundCheckpoint();
  void EnsureCheckpointThread();
  void CheckpointWorkerMain();

  struct PendingCheckpoint {
    std::string blob;  // EncodeSnapshot output, captured while quiescent
    uint64_t seq = 0;  // journal sequence the blob covers
  };
  std::unique_ptr<reldb::Database> owned_db_;
  const reldb::Database* db_;
  // Lazily created shared runtime for all requests (see task_pool()).
  // pool_mu_ serializes the one-time construction; pool_ptr_ republishes
  // the pointer so the request path reads it with one atomic load.
  std::mutex pool_mu_;
  std::unique_ptr<parallel::TaskPool> pool_;
  std::atomic<parallel::TaskPool*> pool_ptr_{nullptr};
  // (base query SQL + key column) -> the one enhancer/engine all requests
  // over that query share. enhancers_mu_ guards the MAP (shared for
  // lookup, unique for first-touch insert); entries are unique_ptrs, so
  // QueryEnhancer pointers handed out under the shared lock stay valid
  // unlocked for the session's lifetime (entries are never erased).
  mutable std::shared_mutex enhancers_mu_;
  std::unordered_map<std::string, std::unique_ptr<core::QueryEnhancer>>
      enhancers_;
  // Request admission (FIFO, concurrency + probe-budget caps).
  AdmissionScheduler scheduler_;
  // Serializes the storage entry points (AttachStorage, SaveSnapshot,
  // CommitJournal) and the per-request auto-checkpoint policy against each
  // other. Ordered BEFORE enhancers_mu_ and the engines' refresh mutexes.
  std::mutex storage_mu_;
  // Durable storage backend; null until AttachStorage/OpenFromSnapshot.
  // The pointer is written once under storage_mu_ before concurrent use.
  std::unique_ptr<storage::EngineStore> store_;

  // Background checkpointer state (all guarded by checkpoint_mu_ except
  // the thread handle, touched only by the session's owner thread).
  std::thread checkpoint_thread_;
  mutable std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  std::optional<PendingCheckpoint> checkpoint_job_;
  bool checkpoint_inflight_ = false;
  bool checkpoint_shutdown_ = false;
  // A snapshot the worker published whose WAL rotation is still pending.
  bool published_pending_ = false;
  uint64_t published_seq_ = 0;
  // Sticky failure from the worker, surfaced on the next request.
  Status checkpoint_error_;
};

}  // namespace api
}  // namespace hypre
