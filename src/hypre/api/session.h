// Session: the multi-request facade over the probe stack.
//
// A Session owns (or borrows) one Database and serves any number of
// EnumerationRequests against it. Per (base query, key column) it keeps ONE
// QueryEnhancer — i.e. one ProbeEngine with its interned universe, leaf
// cache, and delta subsystem — so consecutive requests share universe
// interning and leaf prefetch instead of rebuilding them per call, and
// every consumer goes through one versioned read path:
//
//   request ──▶ EnumeratorRegistry (by name)
//           ──▶ enhancer cache [(base SQL, key column) → QueryEnhancer]
//           ──▶ Refresh(): journal drained, epoch pinned for this request
//           ──▶ bulk leaf prefetch over the request's preference leaves
//           ──▶ enumerator Run (budget + sinks wired through)
//           ──▶ result {records/top_k, ProbeStats delta, epoch, truncated}
//
// Thread model: a Session is NOT internally synchronized — it is one
// client's handle (the multi-user story is one session per tenant or an
// external lock), matching ProbeEngine's mutate → Refresh → probe contract.
// Internally, though, a session owns ONE work-stealing parallel::TaskPool
// (created lazily on the first request that asks for more than one probe
// thread) and injects it into every request's probe options and into each
// cached engine's allocation paths, so all batches of all requests share a
// single set of persistent, parked-when-idle workers instead of spawning
// threads per batch.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypre/api/enumeration.h"
#include "hypre/parallel/task_pool.h"
#include "hypre/query_enhancement.h"
#include "hypre/storage/store.h"
#include "reldb/database.h"

namespace hypre {
namespace api {

class Session {
 public:
  /// \brief Session over a borrowed database (must outlive the session).
  explicit Session(const reldb::Database* db) : db_(db) {}
  /// \brief Session that owns its database.
  explicit Session(std::unique_ptr<reldb::Database> db)
      : owned_db_(std::move(db)), db_(owned_db_.get()) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  /// Joins the background checkpoint worker (a queued-but-unstarted job is
  /// dropped; its mutations are already durable in the WAL).
  ~Session();

  /// \brief Reopens a session from a storage directory: loads the snapshot,
  /// replays the write-ahead journal tail, rebuilds every persisted engine
  /// (dictionary, leaf cache, delta cursor) and attaches the store for
  /// further checkpoints. Fails closed — on any corruption no session is
  /// returned and the directory is left untouched. Requires a session that
  /// OWNS its database, which this constructor arranges.
  static Result<std::unique_ptr<Session>> OpenFromSnapshot(
      const std::string& dir, const storage::StorageOptions& options = {});

  /// \brief Runs one enumeration request end to end: registry dispatch,
  /// enhancer-cache lookup, epoch pinning, leaf prefetch, the algorithm
  /// itself, and the per-request statistics delta. With no probe budget the
  /// records/tuples are byte-identical to calling the algorithm's direct
  /// entry point on an equivalent enhancer.
  Result<EnumerationResult> Enumerate(const EnumerationRequest& request);

  /// \brief The cached enhancer for (base_query, key_column), created on
  /// first use. Exposed for consumers outside the six enumerators (ranking,
  /// skyline, metrics) so they share the same engines the requests warm.
  Result<core::QueryEnhancer*> GetEnhancer(const reldb::Query& base_query,
                                           const std::string& key_column);

  /// \brief Catches every cached engine up with the database's mutation
  /// journal. Returns the highest resulting epoch (0 when no engine is
  /// cached yet). Individual requests with request.refresh (the default)
  /// do this for their own engine automatically.
  Result<uint64_t> Refresh();

  /// \brief Registered algorithm names (sorted) — what `algorithm` accepts.
  std::vector<std::string> Algorithms() const {
    return EnumeratorRegistry::Global().Names();
  }

  const reldb::Database* db() const { return db_; }
  /// \brief Mutable database access; null unless the session owns it.
  reldb::Database* mutable_db() { return owned_db_.get(); }
  /// \brief Number of distinct (base query, key column) engines cached.
  size_t num_cached_engines() const { return enhancers_.size(); }

  /// \brief The session's work-stealing pool, created (auto-sized) on first
  /// use. Requests that leave ProbeOptions::pool null and ask for more than
  /// one thread run their batches here.
  parallel::TaskPool* task_pool();
  /// \brief True once a request has forced pool creation.
  bool has_task_pool() const { return pool_ != nullptr; }

  // --- Durable storage ------------------------------------------------------

  /// \brief Attaches a FRESH storage directory and writes the initial
  /// checkpoint (snapshot + fresh write-ahead log) covering the session's
  /// current state. Refuses a directory that already holds a snapshot —
  /// overwriting another session's durable state would be silent data
  /// loss; reopen such a directory with OpenFromSnapshot instead. Requires
  /// a session that owns its database (the store truncates the journal,
  /// which a borrowed database's other consumers would not survive).
  /// Subsequent mutations become durable via CommitJournal() /
  /// SaveSnapshot() or the auto-checkpoint policy in
  /// StorageOptions::auto_checkpoint_mutations.
  Status AttachStorage(const std::string& dir,
                       const storage::StorageOptions& options = {});

  /// \brief Refreshes every cached engine, then writes a full checkpoint:
  /// journal spill, snapshot (atomic rename), WAL rotation, in-memory
  /// journal truncation. Restarting from the result is warm — no CSV
  /// re-parse, no universe re-intern, no leaf re-materialization.
  Status SaveSnapshot();

  /// \brief Spills the journal tail to the write-ahead log and fsyncs it —
  /// the group-commit point making recent mutations durable without the
  /// cost of a full snapshot.
  Status CommitJournal();

  bool has_storage() const { return store_ != nullptr; }
  /// \brief The attached store (null when not storage-backed).
  storage::EngineStore* store() { return store_.get(); }
  /// \brief True while the background worker is writing a snapshot.
  bool checkpoint_in_flight() const {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    return checkpoint_inflight_;
  }

 private:
  /// Captures every cached engine's durable state, sorted by cache key so
  /// snapshot bytes are deterministic.
  std::vector<storage::SnapshotEngineState> CaptureEngineStates() const;
  /// The request pipeline behind Enumerate() (which only adds the optional
  /// trace installation around it).
  Status EnumerateInternal(const EnumerationRequest& request,
                           EnumerationResult* result);

  // --- Background auto-checkpointing ---------------------------------------
  //
  // The auto_checkpoint_mutations policy (PR 7) ran the full checkpoint —
  // snapshot encode AND write — inside the triggering request. Now only
  // the WAL group commit and the in-memory encode stay on the request
  // path; the snapshot's file I/O (write + fsync + rename, the dominant
  // cost) moves to a lazily spawned worker thread. The WAL rotation +
  // journal truncation that retire a published snapshot are deferred to
  // the NEXT request (FinishPublishedCheckpoint), because rotating the log
  // off-thread while the request path appends to it would reintroduce the
  // recovery data-loss hazard documented in storage/store.h.

  /// Applies the auto-checkpoint policy after a mutation-bearing request:
  /// surfaces any sticky background failure, retires a published snapshot,
  /// and enqueues a new checkpoint when the threshold is reached (skipped
  /// while one is in flight).
  Status MaybeAutoCheckpoint();
  /// Request-path tail of a background checkpoint: records the published
  /// snapshot, rotates the WAL (re-spilling the tail), truncates the
  /// journal.
  Status FinishPublishedCheckpoint();
  /// Blocks until no snapshot write is in flight, surfaces any background
  /// error, and retires a published snapshot.
  Status DrainBackgroundCheckpoint();
  void EnsureCheckpointThread();
  void CheckpointWorkerMain();

  struct PendingCheckpoint {
    std::string blob;  // EncodeSnapshot output, captured while quiescent
    uint64_t seq = 0;  // journal sequence the blob covers
  };
  std::unique_ptr<reldb::Database> owned_db_;
  const reldb::Database* db_;
  // Lazily created shared runtime for all requests (see task_pool()).
  std::unique_ptr<parallel::TaskPool> pool_;
  // (base query SQL + key column) -> the one enhancer/engine all requests
  // over that query share.
  std::unordered_map<std::string, std::unique_ptr<core::QueryEnhancer>>
      enhancers_;
  // Durable storage backend; null until AttachStorage/OpenFromSnapshot.
  std::unique_ptr<storage::EngineStore> store_;

  // Background checkpointer state (all guarded by checkpoint_mu_ except
  // the thread handle, touched only by the session's owner thread).
  std::thread checkpoint_thread_;
  mutable std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  std::optional<PendingCheckpoint> checkpoint_job_;
  bool checkpoint_inflight_ = false;
  bool checkpoint_shutdown_ = false;
  // A snapshot the worker published whose WAL rotation is still pending.
  bool published_pending_ = false;
  uint64_t published_seq_ = 0;
  // Sticky failure from the worker, surfaced on the next request.
  Status checkpoint_error_;
};

}  // namespace api
}  // namespace hypre
