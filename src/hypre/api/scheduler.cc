#include "hypre/api/scheduler.h"

#include <chrono>

#include "hypre/telemetry/registry.h"

namespace hypre {
namespace api {

#if HYPRE_TELEMETRY_ENABLED
namespace {

telemetry::Gauge* QueueDepthGauge() {
  static telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
      "hypre_api_admission_queue_depth", "api",
      "Requests currently waiting for admission");
  return g;
}

telemetry::Gauge* InflightGauge() {
  static telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
      "hypre_api_admission_inflight", "api",
      "Requests currently admitted and running");
  return g;
}

telemetry::Counter* AdmittedCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "hypre_api_admission_admitted_total", "api",
          "Requests admitted by the scheduler");
  return c;
}

telemetry::Histogram* WaitHistogram() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "hypre_api_admission_wait_us", "api",
          "Microseconds spent queued before admission");
  return h;
}

}  // namespace
#endif  // HYPRE_TELEMETRY_ENABLED

bool AdmissionScheduler::HasCapacityLocked(size_t cost) const {
  if (options_.max_concurrent != 0 && inflight_ >= options_.max_concurrent) {
    return false;
  }
  if (options_.max_inflight_probe_budget != 0 && cost != 0) {
    // A request too large for the cap on its own is admitted when nothing
    // else is in flight — otherwise it would starve behind every smaller
    // request forever.
    if (inflight_budget_ + cost > options_.max_inflight_probe_budget &&
        inflight_ != 0) {
      return false;
    }
  }
  return true;
}

AdmissionScheduler::Ticket AdmissionScheduler::Admit(size_t probe_budget) {
#if HYPRE_TELEMETRY_ENABLED
  const auto enqueued = std::chrono::steady_clock::now();
#endif
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t my_ticket = next_ticket_++;
  bool waited = false;
  // Strict FIFO: even with capacity free, a request behind an unadmitted
  // older request waits — capacity freed by a release goes to the oldest
  // waiter first, so large requests cannot be starved by small ones.
  while (my_ticket != admit_cursor_ || !HasCapacityLocked(probe_budget)) {
    waited = true;
    HYPRE_TELEMETRY_STMT(QueueDepthGauge()->Set(
        static_cast<int64_t>(next_ticket_ - admit_cursor_)));
    cv_.wait(lock);
  }
  ++admit_cursor_;
  ++inflight_;
  inflight_budget_ += probe_budget;
  ++admitted_total_;
  if (waited) ++waited_total_;
  // The next-oldest waiter may also fit under the caps; let it re-check.
  cv_.notify_all();
#if HYPRE_TELEMETRY_ENABLED
  QueueDepthGauge()->Set(static_cast<int64_t>(next_ticket_ - admit_cursor_));
  InflightGauge()->Set(static_cast<int64_t>(inflight_));
  AdmittedCounter()->Increment();
  if (waited) {
    WaitHistogram()->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - enqueued)
            .count()));
  }
#endif
  return Ticket(this, probe_budget);
}

void AdmissionScheduler::ReleaseLocked(size_t cost) {
  --inflight_;
  inflight_budget_ -= cost;
  HYPRE_TELEMETRY_STMT(InflightGauge()->Set(static_cast<int64_t>(inflight_)));
}

void AdmissionScheduler::Ticket::Release() {
  if (scheduler_ == nullptr) return;
  AdmissionScheduler* scheduler = scheduler_;
  scheduler_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(scheduler->mu_);
    scheduler->ReleaseLocked(cost_);
  }
  scheduler->cv_.notify_all();
}

void AdmissionScheduler::set_options(const Options& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }
  cv_.notify_all();
}

AdmissionScheduler::Options AdmissionScheduler::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

AdmissionScheduler::Stats AdmissionScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_total_;
  stats.waited = waited_total_;
  stats.inflight = inflight_;
  stats.inflight_budget = inflight_budget_;
  stats.queue_depth = static_cast<size_t>(next_ticket_ - admit_cursor_);
  return stats;
}

}  // namespace api
}  // namespace hypre
