#include "hypre/api/scheduler.h"

#include <chrono>

#include "hypre/telemetry/registry.h"

namespace hypre {
namespace api {

#if HYPRE_TELEMETRY_ENABLED
namespace {

telemetry::Gauge* QueueDepthGauge() {
  static telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
      "hypre_api_admission_queue_depth", "api",
      "Requests currently waiting for admission");
  return g;
}

telemetry::Gauge* InflightGauge() {
  static telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
      "hypre_api_admission_inflight", "api",
      "Requests currently admitted and running");
  return g;
}

telemetry::Counter* AdmittedCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "hypre_api_admission_admitted_total", "api",
          "Requests admitted by the scheduler");
  return c;
}

telemetry::Histogram* WaitHistogram() {
  static telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "hypre_api_admission_wait_us", "api",
          "Microseconds spent queued before admission");
  return h;
}

telemetry::Counter* RejectedCounter() {
  static telemetry::Counter* c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "hypre_api_admission_rejected_total", "api",
          "Requests shed by the scheduler (queue full or deadline expired)");
  return c;
}

}  // namespace
#endif  // HYPRE_TELEMETRY_ENABLED

bool AdmissionScheduler::HasCapacityLocked(size_t cost) const {
  if (options_.max_concurrent != 0 && inflight_ >= options_.max_concurrent) {
    return false;
  }
  if (options_.max_inflight_probe_budget != 0 && cost != 0) {
    // A request too large for the cap on its own is admitted when nothing
    // else is in flight — otherwise it would starve behind every smaller
    // request forever.
    if (inflight_budget_ + cost > options_.max_inflight_probe_budget &&
        inflight_ != 0) {
      return false;
    }
  }
  return true;
}

void AdmissionScheduler::SkipAbandonedLocked() {
  while (abandoned_.erase(admit_cursor_) != 0) ++admit_cursor_;
}

AdmissionScheduler::Ticket AdmissionScheduler::Admit(size_t probe_budget) {
  // Unbounded wait cannot fail; the Result only carries the Ticket here.
  return AdmitInternal(probe_budget, /*bounded=*/false, std::nullopt)
      .TakeValue();
}

Result<AdmissionScheduler::Ticket> AdmissionScheduler::TryAdmit(
    size_t probe_budget,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  return AdmitInternal(probe_budget, /*bounded=*/true, deadline);
}

Result<AdmissionScheduler::Ticket> AdmissionScheduler::AdmitInternal(
    size_t cost, bool bounded,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
#if HYPRE_TELEMETRY_ENABLED
  const auto enqueued = std::chrono::steady_clock::now();
#endif
  std::unique_lock<std::mutex> lock(mu_);
  if (bounded && (next_ticket_ != admit_cursor_ || !HasCapacityLocked(cost))) {
    // The request would have to queue. Shed it if the queue is already at
    // its bound, or if its deadline has no waiting room left at all.
    if (options_.max_queue_depth != 0 &&
        waiting_ >= options_.max_queue_depth) {
      ++rejected_total_;
      HYPRE_TELEMETRY_STMT(RejectedCounter()->Increment());
      return Status::Unavailable(
          "admission queue full (" + std::to_string(waiting_) +
          " requests waiting, cap " +
          std::to_string(options_.max_queue_depth) + ")");
    }
    if (deadline.has_value() &&
        std::chrono::steady_clock::now() >= *deadline) {
      ++rejected_total_;
      HYPRE_TELEMETRY_STMT(RejectedCounter()->Increment());
      return Status::Unavailable(
          "admission deadline expired before the request could queue");
    }
  }
  const uint64_t my_ticket = next_ticket_++;
  bool waited = false;
  // Strict FIFO: even with capacity free, a request behind an unadmitted
  // older request waits — capacity freed by a release goes to the oldest
  // waiter first, so large requests cannot be starved by small ones.
  while (my_ticket != admit_cursor_ || !HasCapacityLocked(cost)) {
    if (!waited) {
      waited = true;
      ++waiting_;
    }
    HYPRE_TELEMETRY_STMT(
        QueueDepthGauge()->Set(static_cast<int64_t>(waiting_)));
    if (deadline.has_value()) {
      if (cv_.wait_until(lock, *deadline) == std::cv_status::timeout &&
          (my_ticket != admit_cursor_ || !HasCapacityLocked(cost))) {
        // Still queued at the deadline: abandon the place in line. A head
        // ticket advances the cursor itself so the next waiter is not
        // stalled; any other ticket is skipped when the cursor reaches it.
        --waiting_;
        if (my_ticket == admit_cursor_) {
          ++admit_cursor_;
          SkipAbandonedLocked();
          cv_.notify_all();
        } else {
          abandoned_.insert(my_ticket);
        }
        ++rejected_total_;
        HYPRE_TELEMETRY_STMT(RejectedCounter()->Increment();
                             QueueDepthGauge()->Set(
                                 static_cast<int64_t>(waiting_)));
        return Status::Unavailable("admission wait deadline exceeded");
      }
    } else {
      cv_.wait(lock);
    }
  }
  if (waited) --waiting_;
  ++admit_cursor_;
  SkipAbandonedLocked();
  ++inflight_;
  inflight_budget_ += cost;
  ++admitted_total_;
  if (waited) ++waited_total_;
  // The next-oldest waiter may also fit under the caps; let it re-check.
  cv_.notify_all();
#if HYPRE_TELEMETRY_ENABLED
  QueueDepthGauge()->Set(static_cast<int64_t>(waiting_));
  InflightGauge()->Set(static_cast<int64_t>(inflight_));
  AdmittedCounter()->Increment();
  if (waited) {
    WaitHistogram()->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - enqueued)
            .count()));
  }
#endif
  return Ticket(this, cost);
}

void AdmissionScheduler::ReleaseLocked(size_t cost) {
  --inflight_;
  inflight_budget_ -= cost;
  HYPRE_TELEMETRY_STMT(InflightGauge()->Set(static_cast<int64_t>(inflight_)));
}

void AdmissionScheduler::Ticket::Release() {
  if (scheduler_ == nullptr) return;
  AdmissionScheduler* scheduler = scheduler_;
  scheduler_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(scheduler->mu_);
    scheduler->ReleaseLocked(cost_);
  }
  scheduler->cv_.notify_all();
}

void AdmissionScheduler::set_options(const Options& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }
  cv_.notify_all();
}

AdmissionScheduler::Options AdmissionScheduler::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

AdmissionScheduler::Stats AdmissionScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_total_;
  stats.waited = waited_total_;
  stats.rejected = rejected_total_;
  stats.inflight = inflight_;
  stats.inflight_budget = inflight_budget_;
  stats.queue_depth = waiting_;
  return stats;
}

}  // namespace api
}  // namespace hypre
