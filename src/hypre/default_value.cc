#include "hypre/default_value.h"

#include <algorithm>

namespace hypre {
namespace core {

namespace {

constexpr double kClampBelowOne = 0.98;

double ClampSeed(double v) {
  if (v >= 1.0) return kClampBelowOne;
  return v;
}

}  // namespace

const char* DefaultValueStrategyToString(DefaultValueStrategy strategy) {
  switch (strategy) {
    case DefaultValueStrategy::kFixed:
      return "default";
    case DefaultValueStrategy::kMin:
      return "min";
    case DefaultValueStrategy::kMinPositive:
      return "min_pos";
    case DefaultValueStrategy::kMax:
      return "max";
    case DefaultValueStrategy::kMaxPositive:
      return "max_pos";
    case DefaultValueStrategy::kAvg:
      return "avg";
    case DefaultValueStrategy::kAvgPositive:
      return "avg_pos";
  }
  return "?";
}

double ComputeDefaultValue(DefaultValueStrategy strategy,
                           const std::vector<double>& existing,
                           double fixed_value) {
  switch (strategy) {
    case DefaultValueStrategy::kFixed:
      return fixed_value;
    case DefaultValueStrategy::kMin: {
      if (existing.empty()) return fixed_value;
      return ClampSeed(*std::min_element(existing.begin(), existing.end()));
    }
    case DefaultValueStrategy::kMinPositive: {
      double best = 2.0;
      for (double v : existing) {
        if (v >= 0.0) best = std::min(best, v);
      }
      if (best > 1.0) return 0.0;  // no qualifying value (Table 12 fallback)
      return ClampSeed(best);
    }
    case DefaultValueStrategy::kMax: {
      if (existing.empty()) return fixed_value;
      return ClampSeed(*std::max_element(existing.begin(), existing.end()));
    }
    case DefaultValueStrategy::kMaxPositive: {
      double best = -2.0;
      for (double v : existing) {
        if (v >= 0.0 && v < 1.0) best = std::max(best, v);
      }
      if (best < 0.0) return 0.0;  // no qualifying value (Table 12 fallback)
      return best;
    }
    case DefaultValueStrategy::kAvg: {
      if (existing.empty()) return fixed_value;
      double sum = 0.0;
      for (double v : existing) sum += v;
      return ClampSeed(sum / static_cast<double>(existing.size()));
    }
    case DefaultValueStrategy::kAvgPositive: {
      double sum = 0.0;
      size_t n = 0;
      for (double v : existing) {
        if (v >= 0.0) {
          sum += v;
          ++n;
        }
      }
      if (n == 0) return 0.0;  // Table 12 fallback
      return ClampSeed(sum / static_cast<double>(n));
    }
  }
  return fixed_value;
}

}  // namespace core
}  // namespace hypre
