#include "hypre/telemetry/trace.h"

#include <cinttypes>
#include <cstdio>

namespace hypre {
namespace telemetry {

namespace {
thread_local Trace* g_active_trace = nullptr;
}  // namespace

Trace* ActiveTrace() { return g_active_trace; }

ScopedTraceTarget::ScopedTraceTarget(Trace* trace)
    : previous_(g_active_trace) {
  g_active_trace = trace;
}

ScopedTraceTarget::~ScopedTraceTarget() { g_active_trace = previous_; }

int32_t Trace::Open(const char* layer, const char* name) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  TraceSpanRecord rec;
  rec.name = name;
  rec.layer = layer;
  rec.parent = current_;
  rec.depth = current_ < 0 ? 0 : spans_[size_t(current_)].depth + 1;
  rec.start_ns = NowNs();
  rec.duration_ns = 0;
  spans_.push_back(rec);
  current_ = int32_t(spans_.size() - 1);
  return current_;
}

void Trace::Close(int32_t index) {
  if (index < 0 || size_t(index) >= spans_.size()) return;
  TraceSpanRecord& rec = spans_[size_t(index)];
  rec.duration_ns = NowNs() - rec.start_ns;
  // Spans are RAII scopes, so closes arrive innermost-first; restoring the
  // closed span's parent keeps nesting correct even if an intermediate
  // span was dropped at the buffer bound.
  if (current_ == index) current_ = rec.parent;
}

void Trace::Note(const char* layer, const char* name) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  TraceSpanRecord rec;
  rec.name = name;
  rec.layer = layer;
  rec.parent = current_;
  rec.depth = current_ < 0 ? 0 : spans_[size_t(current_)].depth + 1;
  rec.start_ns = NowNs();
  rec.duration_ns = 0;
  spans_.push_back(rec);
}

bool Trace::HasLayer(const char* layer) const {
  std::string want(layer);
  for (const TraceSpanRecord& rec : spans_) {
    if (want == rec.layer) return true;
  }
  return false;
}

std::string Trace::ToJson() const {
  std::string out = "{\"spans\":[";
  char buf[64];
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpanRecord& rec = spans_[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"";
    out += rec.name;
    out += "\",\"layer\":\"";
    out += rec.layer;
    out += "\",\"parent\":";
    std::snprintf(buf, sizeof(buf), "%" PRId32, rec.parent);
    out += buf;
    out += ",\"depth\":";
    std::snprintf(buf, sizeof(buf), "%" PRId32, rec.depth);
    out += buf;
    out += ",\"start_ns\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, rec.start_ns);
    out += buf;
    out += ",\"duration_ns\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, rec.duration_ns);
    out += buf;
    out += "}";
  }
  out += "],\"dropped\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped_);
  out += buf;
  out += "}";
  return out;
}

}  // namespace telemetry
}  // namespace hypre
