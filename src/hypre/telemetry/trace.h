// Per-request trace spans: a bounded, allocation-light timeline of what one
// EnumerationRequest did, layer by layer.
//
// Usage pattern (all from the request thread):
//
//   telemetry::Trace trace;                      // per-request buffer
//   {
//     telemetry::ScopedTraceTarget target(&trace);   // install thread_local
//     telemetry::TraceSpan root("api", "enumerate"); // RAII spans nest
//     ... the work; any code on this thread can open TraceSpan ...
//   }
//   result.trace = std::move(trace);             // after target uninstalls
//
// TraceSpan reads a thread_local active-trace pointer, so instrumentation
// sites need no plumbing — storage code deep under Session::Enumerate lands
// its spans in the right request automatically. The flip side: spans are
// recorded only on the thread that installed the target. TaskPool workers
// do NOT see the thread_local, so per-task work inside ParallelFor is
// aggregated by the registry's counters/histograms instead of traced —
// deliberate, since a 64-worker batch would blow any per-request buffer.
//
// The buffer is bounded (kDefaultMaxSpans); once full, new spans still time
// themselves but are dropped, counted in dropped(). Span names and layers
// must be string LITERALS (or otherwise outlive the trace) — records store
// the pointers.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "hypre/telemetry/telemetry.h"

namespace hypre {
namespace telemetry {

struct TraceSpanRecord {
  const char* name;
  const char* layer;
  /// Index of the enclosing span in Trace::spans(), -1 for roots.
  int32_t parent;
  /// Nesting depth: 0 for roots.
  int32_t depth;
  /// Start offset from the trace's origin, monotonic clock.
  uint64_t start_ns;
  /// 0 while the span is open (or for zero-duration notes).
  uint64_t duration_ns;
};

/// \brief One request's span buffer. Movable and copyable (span records are
/// plain values) so it can ride inside EnumerationResult; move or copy only
/// AFTER the ScopedTraceTarget pointing at it is gone.
class Trace {
 public:
  static constexpr size_t kDefaultMaxSpans = 256;

  explicit Trace(size_t max_spans = kDefaultMaxSpans)
      : max_spans_(max_spans),
        origin_(std::chrono::steady_clock::now()) {}

  const std::vector<TraceSpanRecord>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  /// \brief Spans that arrived after the buffer filled.
  uint64_t dropped() const { return dropped_; }

  /// \brief Nanoseconds since this trace was constructed.
  uint64_t NowNs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - origin_)
                        .count());
  }

  /// \brief Opens a span; returns its index or -1 when the buffer is full.
  int32_t Open(const char* layer, const char* name);
  /// \brief Closes the span at `index` (no-op for -1) and restores its
  /// parent as the open span.
  void Close(int32_t index);
  /// \brief Records an instantaneous event at the current nesting level.
  void Note(const char* layer, const char* name);

  /// \brief True if any span has the given layer — acceptance checks.
  bool HasLayer(const char* layer) const;

  /// \brief {"spans":[{name,layer,parent,depth,start_ns,duration_ns}...],
  /// "dropped":N} — machine-readable; shell pretty-printing is separate.
  std::string ToJson() const;

 private:
  size_t max_spans_;
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceSpanRecord> spans_;
  // Index of the innermost open span; -1 at top level.
  int32_t current_ = -1;
  uint64_t dropped_ = 0;
};

/// \brief The trace new spans on this thread land in, or null.
Trace* ActiveTrace();

/// \brief Installs `trace` as this thread's active trace for the scope,
/// restoring whatever was active before on destruction. Pass null to
/// suppress tracing in a sub-scope.
class ScopedTraceTarget {
 public:
  explicit ScopedTraceTarget(Trace* trace);
  ~ScopedTraceTarget();
  ScopedTraceTarget(const ScopedTraceTarget&) = delete;
  ScopedTraceTarget& operator=(const ScopedTraceTarget&) = delete;

 private:
  Trace* previous_;
};

/// \brief RAII span against the thread's active trace. Free when no trace
/// is installed (one thread_local read), absent entirely in
/// -DHYPRE_TELEMETRY=OFF builds.
class TraceSpan {
 public:
  TraceSpan(const char* layer, const char* name) {
#if HYPRE_TELEMETRY_ENABLED
    trace_ = ActiveTrace();
    if (trace_ != nullptr) index_ = trace_->Open(layer, name);
#else
    (void)layer;
    (void)name;
#endif
  }
  ~TraceSpan() {
#if HYPRE_TELEMETRY_ENABLED
    if (trace_ != nullptr) trace_->Close(index_);
#endif
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if HYPRE_TELEMETRY_ENABLED
  Trace* trace_ = nullptr;
  int32_t index_ = -1;
#endif
};

/// \brief Instantaneous event on the thread's active trace.
inline void TraceNote(const char* layer, const char* name) {
#if HYPRE_TELEMETRY_ENABLED
  Trace* t = ActiveTrace();
  if (t != nullptr) t->Note(layer, name);
#else
  (void)layer;
  (void)name;
#endif
}

}  // namespace telemetry
}  // namespace hypre
