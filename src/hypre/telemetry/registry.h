// Runtime metrics registry: named counters, gauges, and log-bucketed
// latency histograms shared by every layer of the engine.
//
// (Not to be confused with hypre/metrics.h, which holds the paper's result
// QUALITY metrics — selectivity, coverage, rank agreement. This file is the
// operational side: how fast, how often, how long.)
//
// Design constraints, in order:
//
//   1. Hot-path writes never take a lock. Counter::Add and Histogram::Record
//      touch one cache-line-private atomic slot selected by a thread-local
//      shard index; contention between probe workers is limited to threads
//      that hash to the same of 16 shards. Reads (ToJson, Prometheus export,
//      percentiles) fold the shards and are allowed to be slow.
//   2. Registration is find-or-create by name under a mutex, but call sites
//      do it ONCE via a function-local static, so steady state is a pointer
//      deref. Entries are pointer-stable for the registry's lifetime.
//   3. Everything works in a -DHYPRE_TELEMETRY=OFF build — the classes stay
//      real so exports and tests compile; only the instrumentation sites
//      (wrapped in HYPRE_TELEMETRY_STMT) vanish, which is what makes the
//      compiled-out bench a fair baseline.
//
// Histograms bucket by bit width: value v lands in bucket bit_width(v), so
// bucket b covers [2^(b-1), 2^b). 65 buckets cover the full uint64 range.
// Percentiles interpolate linearly inside the winning bucket — coarse, but
// monotone and allocation-free, and plenty to tell a 200µs fsync from a 2ms
// one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hypre/telemetry/telemetry.h"

namespace hypre {
namespace telemetry {

/// Number of per-thread slots counters and histograms stripe across.
inline constexpr size_t kMetricShards = 16;

/// \brief This thread's stripe index in [0, kMetricShards). Assigned once
/// per thread from a global round-robin so thread counts beyond the shard
/// count wrap instead of colliding on slot 0.
size_t ThreadShard();

/// \brief Monotonic counter, sharded per thread. Fold with Value().
class Counter {
 public:
  void Add(uint64_t n) {
    shards_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  /// \brief Folds all shards. Monotone between calls (writers only add).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// \brief Point-in-time signed value (queue depths, worker counts). A gauge
/// is set/adjusted, not accumulated, so it is a single atomic — writers are
/// expected to be rare (per-request, not per-probe).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Folded histogram state: everything an exporter or percentile
/// query needs, detached from the live shards.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  // buckets[b] counts values in [2^(b-1), 2^b); buckets[0] counts zeros.
  uint64_t buckets[65] = {};

  /// \brief Approximate quantile (q in [0,1]) by cumulative bucket walk
  /// with linear interpolation inside the winning bucket. 0 when empty.
  double Percentile(double q) const;
  double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }
};

/// \brief Log2-bucketed histogram of nonnegative integer samples
/// (latencies in ns or µs, batch sizes, byte counts). Sharded like Counter.
class Histogram {
 public:
  void Record(uint64_t v) {
    Shard& s = shards_[ThreadShard()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;

  /// \brief Bucket index for a value: 0 for 0, else bit_width(v).
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  /// \brief Exclusive upper bound of bucket b (its `le` in Prometheus
  /// terms is UpperBound(b) - 1... we export le as inclusive 2^b - 1).
  static uint64_t UpperBound(size_t b) {
    return b >= 64 ? UINT64_MAX : (uint64_t(1) << b) - 1;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[65] = {};
  };
  Shard shards_[kMetricShards];
};

/// \brief Named metric directory. One process-wide instance behind
/// Global(); tests construct their own to keep goldens deterministic.
///
/// Naming convention (Prometheus-compatible, snake_case):
///   hypre_<layer>_<what>[_total|_ms|_us|_bytes]
/// Layers: api, engine, prober, delta, parallel, storage.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Find-or-create by name. The returned pointer is stable for the
  /// registry's lifetime; `layer` and `help` are recorded on first
  /// registration and ignored after. Names are one global namespace:
  /// re-registering a name as a different kind returns a detached dummy
  /// metric (recorded values go nowhere) rather than corrupting the
  /// original — keep names unique.
  Counter* GetCounter(const std::string& name, const std::string& layer,
                      const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& layer,
                  const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& layer,
                          const std::string& help);

  /// \brief One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count,sum,mean,p50,p95,p99}, ...}}. Keys sorted.
  std::string ToJson() const;

  /// \brief Prometheus text exposition format v0.0.4: HELP/TYPE lines, a
  /// `layer` label on every sample, histogram _bucket/_sum/_count series.
  /// Metric names are sanitized to [a-zA-Z0-9_:]; label values escape
  /// backslash, double-quote, and newline.
  std::string ToPrometheusText() const;

  size_t num_metrics() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string layer;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* FindOrCreate(const std::string& name, Kind kind,
                      const std::string& layer, const std::string& help);
  /// Name-sorted view of entries_ for deterministic export.
  std::vector<std::pair<std::string, const Entry*>> Sorted() const;

  mutable std::mutex mu_;
  // unordered_map's pointer stability for mapped values is what makes the
  // Get* pointers safe to cache in function-local statics.
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace telemetry
}  // namespace hypre
