// Telemetry build configuration.
//
// The whole telemetry layer (metrics registry, trace spans, and every
// instrumentation site in the engine) compiles out under
// -DHYPRE_TELEMETRY=OFF (cmake), which defines HYPRE_TELEMETRY_OFF. The
// classes stay present either way so call sites and tests build in both
// configurations; what changes is that recording becomes a no-op and the
// HYPRE_TELEMETRY_STMT() instrumentation blocks disappear entirely. The
// overhead bench (BENCH_telemetry.json) pins the enabled build within 2%
// of the compiled-out build on the warm PEPS session path.
#pragma once

#if defined(HYPRE_TELEMETRY_OFF)
#define HYPRE_TELEMETRY_ENABLED 0
/// \brief Compiles its body out when telemetry is disabled. Use for
/// instrumentation statements on hot paths so a -DHYPRE_TELEMETRY=OFF build
/// carries zero telemetry cost (no statics, no clock reads, no atomics).
#define HYPRE_TELEMETRY_STMT(...) \
  do {                            \
  } while (0)
#else
#define HYPRE_TELEMETRY_ENABLED 1
#define HYPRE_TELEMETRY_STMT(...) \
  do {                            \
    __VA_ARGS__;                  \
  } while (0)
#endif
