#include "hypre/telemetry/registry.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace hypre {
namespace telemetry {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q=1 maps to the last sample.
  uint64_t rank = uint64_t(q * double(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < 65; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    if (b == 0) return 0.0;
    // Interpolate within [2^(b-1), 2^b) by the rank's position among the
    // bucket's samples.
    double lo = double(uint64_t(1) << (b - 1));
    // Bucket b spans exactly [lo, 2*lo).
    double frac = double(rank - seen - 1) / double(buckets[b]);
    return lo + frac * lo;
  }
  return 0.0;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < 65; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, Kind kind, const std::string& layer,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry& e = entries_[name];
    e.kind = kind;
    e.layer = layer;
    e.help = help;
    switch (kind) {
      case Kind::kCounter:
        e.counter.reset(new Counter());
        break;
      case Kind::kGauge:
        e.gauge.reset(new Gauge());
        break;
      case Kind::kHistogram:
        e.histogram.reset(new Histogram());
        break;
    }
    return &e;
  }
  if (it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& layer,
                                     const std::string& help) {
  Entry* e = FindOrCreate(name, Kind::kCounter, layer, help);
  if (e != nullptr) return e->counter.get();
  // Kind collision: a detached sink that keeps callers harmless.
  static Counter* dummy = new Counter();
  return dummy;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& layer,
                                 const std::string& help) {
  Entry* e = FindOrCreate(name, Kind::kGauge, layer, help);
  if (e != nullptr) return e->gauge.get();
  static Gauge* dummy = new Gauge();
  return dummy;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& layer,
                                         const std::string& help) {
  Entry* e = FindOrCreate(name, Kind::kHistogram, layer, help);
  if (e != nullptr) return e->histogram.get();
  static Histogram* dummy = new Histogram();
  return dummy;
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, const MetricsRegistry::Entry*>>
MetricsRegistry::Sorted() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Entry*>> out;
  out.reserve(entries_.size());
  for (const auto& kv : entries_) {
    out.emplace_back(kv.first, &kv.second);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

namespace {

// JSON string escaping for metric names/help (control chars, quote, slash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    bool leading_digit =
        i == 0 && std::isdigit(static_cast<unsigned char>(c));
    out += (ok && !leading_digit) ? c : '_';
  }
  return out.empty() ? "_" : out;
}

// Prometheus label VALUES escape backslash, quote, and newline.
std::string PromLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  auto sorted = Sorted();
  std::string counters, gauges, histograms;
  char buf[64];
  for (const auto& kv : sorted) {
    const Entry& e = *kv.second;
    std::string key = "\"" + JsonEscape(kv.first) + "\":";
    switch (e.kind) {
      case Kind::kCounter: {
        if (!counters.empty()) counters += ",";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.counter->Value());
        counters += key + buf;
        break;
      }
      case Kind::kGauge: {
        if (!gauges.empty()) gauges += ",";
        std::snprintf(buf, sizeof(buf), "%" PRId64, e.gauge->Value());
        gauges += key + buf;
        break;
      }
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        HistogramSnapshot snap = e.histogram->Snapshot();
        histograms += key + "{\"count\":";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.count);
        histograms += buf;
        histograms += ",\"sum\":";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.sum);
        histograms += buf;
        histograms += ",\"mean\":";
        AppendDouble(&histograms, snap.Mean());
        histograms += ",\"p50\":";
        AppendDouble(&histograms, snap.Percentile(0.50));
        histograms += ",\"p95\":";
        AppendDouble(&histograms, snap.Percentile(0.95));
        histograms += ",\"p99\":";
        AppendDouble(&histograms, snap.Percentile(0.99));
        histograms += "}";
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out += counters;
  out += "},\"gauges\":{";
  out += gauges;
  out += "},\"histograms\":{";
  out += histograms;
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  auto sorted = Sorted();
  std::string out;
  char buf[64];
  for (const auto& kv : sorted) {
    const Entry& e = *kv.second;
    std::string name = PromName(kv.first);
    std::string labels = "{layer=\"" + PromLabelValue(e.layer) + "\"}";
    out += "# HELP " + name + " " + e.help + "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.counter->Value());
        out += name + labels + " " + buf + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%" PRId64, e.gauge->Value());
        out += name + labels + " " + buf + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        HistogramSnapshot snap = e.histogram->Snapshot();
        uint64_t cumulative = 0;
        // Bucket 64 ([2^63, 2^64)) folds into the trailing +Inf line.
        for (size_t b = 0; b < 64; ++b) {
          if (snap.buckets[b] == 0) continue;
          cumulative += snap.buckets[b];
          std::string le;
          std::snprintf(buf, sizeof(buf), "%" PRIu64,
                        Histogram::UpperBound(b));
          le = buf;
          std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
          out += name + "_bucket{layer=\"" + PromLabelValue(e.layer) +
                 "\",le=\"" + le + "\"} " + buf + "\n";
        }
        std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.count);
        out += name + "_bucket{layer=\"" + PromLabelValue(e.layer) +
               "\",le=\"+Inf\"} " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.sum);
        out += name + "_sum" + labels + " " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.count);
        out += name + "_count" + labels + " " + buf + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace telemetry
}  // namespace hypre
