#include "hypre/delta_engine.h"

#include <chrono>
#include <utility>

#include "hypre/parallel/task_pool.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"
#include "reldb/executor.h"
#include "reldb/expr.h"

namespace hypre {
namespace core {

namespace {

using reldb::RowId;
using reldb::Value;

/// Resolves `key_column` ("t.c" or plain "c") to the slot table that owns it
/// plus the column index there, so key-table deletes can read their key
/// straight from the tombstoned row payload.
Result<std::pair<std::string, size_t>> ResolveKeyTable(
    const reldb::Database* db, const reldb::Query& query,
    const std::string& key_column) {
  auto [table, column] = reldb::SplitQualifiedName(key_column);
  std::vector<std::string> names;
  names.reserve(query.joins.size() + 1);
  names.push_back(query.from);
  for (const auto& join : query.joins) names.push_back(join.right_table);
  std::string found_table;
  int found_col = -1;
  for (const auto& name : names) {
    if (!table.empty() && name != table) continue;
    const reldb::Table* t = db->GetTable(name);
    if (t == nullptr) continue;
    int col = t->schema().FindColumn(column);
    if (col < 0) continue;
    if (found_col >= 0) {
      return Status::InvalidArgument("ambiguous key column '" + key_column +
                                     "'");
    }
    found_table = name;
    found_col = col;
  }
  if (found_col < 0) {
    return Status::NotFound("key column '" + key_column +
                            "' not found in the base query");
  }
  return std::make_pair(found_table, static_cast<size_t>(found_col));
}

}  // namespace

void DeltaEngine::SnapshotLeaves(std::vector<reldb::ExprPtr>* exprs,
                                 std::vector<KeyBitmap*>* bits) const {
  exprs->reserve(engine_->leaf_cache_.size());
  bits->reserve(engine_->leaf_cache_.size());
  for (auto& [key, entry] : engine_->leaf_cache_) {
    exprs->push_back(entry.expr);
    bits->push_back(entry.bits.get());
  }
}

uint32_t DeltaEngine::InternKey(const Value& key) {
  uint32_t id = engine_->dict_.Lookup(key);
  if (id != reldb::DenseDictionary::kNotFound) return id;
  if (!engine_->free_ids_.empty()) {
    // Dense-id recycling: rebind a tombstoned id. Its bits in the cached
    // leaves are stale leftovers of the dead key it used to name — scrub
    // them before the new key takes the id over.
    id = engine_->free_ids_.back();
    engine_->free_ids_.pop_back();
    engine_->dict_.Reassign(id, key);
    for (auto& [canonical, entry] : engine_->leaf_cache_) {
      entry.bits->Reset(id);
    }
    --engine_->num_tombstones_;
    ++stats_.keys_recycled;
  } else {
    id = engine_->dict_.Intern(key);
    ++stats_.keys_added;
  }
  key_order_dirty_ = true;
  return id;
}

Status DeltaEngine::ApplyAppends(
    const std::unordered_map<std::string, RowId>& first_new_row,
    const std::vector<reldb::ExprPtr>& leaf_exprs,
    const std::vector<KeyBitmap*>& leaf_bits) {
  if (first_new_row.empty()) return Status::OK();
  // Buffer the bit assignments: new keys may tail-grow the id space, and
  // every cached bitmap is resized ONCE after the pass instead of per key.
  std::vector<uint32_t> tuple_ids;
  std::vector<std::pair<size_t, uint32_t>> leaf_sets;
  HYPRE_RETURN_NOT_OK(engine_->executor_.ForEachAppendedMatch(
      engine_->base_query_, engine_->key_column_, first_new_row, leaf_exprs,
      [&](const Value& key) { tuple_ids.push_back(InternKey(key)); },
      [&](size_t p, const Value& key) {
        // The tuple callback interned the key just before this fires.
        leaf_sets.emplace_back(p, engine_->dict_.Lookup(key));
      }));
  size_t new_size = engine_->dict_.size();
  if (new_size > engine_->universe_.num_bits()) {
    engine_->universe_.Resize(new_size);
    // Tail-growth fans out per leaf on the engine's pool when one is
    // attached: each cached bitmap's resize (realloc + copy + zero-fill) is
    // independent work, and large caches make this the dominant cost of an
    // append-heavy Refresh. (After a FullRebuild compaction the leaf cache
    // re-populates through PrefetchLeaves, which already first-touches on
    // the same pool.)
    parallel::TaskPool* pool = engine_->task_pool();
    if (pool != nullptr && leaf_bits.size() > 1) {
      pool->ParallelFor(
          leaf_bits.size(), /*grain=*/1, engine_->task_pool_threads(),
          [&leaf_bits, new_size](size_t begin, size_t end, size_t /*slot*/) {
            for (size_t i = begin; i < end; ++i) {
              leaf_bits[i]->Resize(new_size);
            }
          });
    } else {
      for (KeyBitmap* bits : leaf_bits) bits->Resize(new_size);
    }
  }
  for (uint32_t id : tuple_ids) engine_->universe_.Set(id);
  for (const auto& [p, id] : leaf_sets) leaf_bits[p]->Set(id);
  return Status::OK();
}

Status DeltaEngine::RecomputeKey(const Value& key, uint32_t id,
                                 const std::vector<reldb::ExprPtr>& leaf_exprs,
                                 const std::vector<KeyBitmap*>& leaf_bits) {
  ++stats_.keys_recomputed;
  // Pin the base query to this key; with a hash index on the key column the
  // recompute touches only the key's own rows.
  auto [table, column] = reldb::SplitQualifiedName(engine_->key_column_);
  reldb::ExprPtr key_eq =
      reldb::Eq(table.empty() ? reldb::Col(column) : reldb::Col(table, column),
                reldb::Lit(key));
  reldb::Query query = engine_->base_query_;
  query.where = query.where ? reldb::MakeAnd(query.where, key_eq) : key_eq;
  bool alive = false;
  std::vector<char> holds(leaf_bits.size(), 0);
  HYPRE_RETURN_NOT_OK(engine_->executor_.ForEachKeyedMatch(
      query, engine_->key_column_, leaf_exprs,
      [&](const Value&) { alive = true; },
      [&](size_t p, const Value&) { holds[p] = 1; }));
  if (!alive) {
    // The key lost its last supporting tuple: clear it from the live mask,
    // forget its dictionary mapping, and queue the dense id for recycling.
    // Stale leaf bits stay behind — masked out by the live mask until the
    // id is scrubbed on reuse (or an epoch rebuild compacts).
    engine_->universe_.Reset(id);
    engine_->dict_.Forget(key);
    engine_->free_ids_.push_back(id);
    ++engine_->num_tombstones_;
    ++stats_.keys_tombstoned;
    return Status::OK();
  }
  engine_->universe_.Set(id);
  for (size_t p = 0; p < leaf_bits.size(); ++p) {
    if (holds[p] != 0) {
      leaf_bits[p]->Set(id);
    } else {
      leaf_bits[p]->Reset(id);
    }
  }
  return Status::OK();
}

Status DeltaEngine::ApplyDeletes(
    const std::unordered_map<std::string, std::vector<RowId>>& deleted_rows,
    const std::vector<reldb::ExprPtr>& leaf_exprs,
    const std::vector<KeyBitmap*>& leaf_bits, bool* needs_rebuild) {
  if (deleted_rows.empty()) return Status::OK();
  HYPRE_ASSIGN_OR_RETURN(
      auto key_loc,
      ResolveKeyTable(engine_->db_, engine_->base_query_,
                      engine_->key_column_));
  // Affected keys: every key whose membership may have lost a supporting
  // tuple. Key-table rows carry their key in the retained payload; rows of
  // joined tables are re-joined in their pre-delete state (this slice's
  // deleted rows made visible again). Over-approximation is harmless — each
  // affected key is recomputed exactly below.
  std::unordered_set<Value, reldb::ValueHash> affected;
  for (const auto& [table_name, rows] : deleted_rows) {
    const reldb::Table* table = engine_->db_->GetTable(table_name);
    if (table == nullptr) continue;
    if (table_name == key_loc.first) {
      for (RowId row : rows) {
        if (row < table->num_rows()) {
          affected.insert(table->row(row)[key_loc.second]);
        }
      }
    } else {
      for (RowId row : rows) {
        HYPRE_RETURN_NOT_OK(engine_->executor_.ForEachMatchOfRow(
            engine_->base_query_, engine_->key_column_, table_name, row,
            deleted_rows, [&](const Value& key) { affected.insert(key); }));
      }
    }
  }
  for (const Value& key : affected) {
    if (key.is_null()) {
      // `key = NULL` never matches under SQL equality, so a NULL key cannot
      // be re-pinned for recompute; compact instead of guessing.
      *needs_rebuild = true;
      return Status::OK();
    }
    uint32_t id = engine_->dict_.Lookup(key);
    // Unknown keys never made it into this snapshot (e.g. appended and
    // deleted within the slice): nothing to patch.
    if (id == reldb::DenseDictionary::kNotFound) continue;
    HYPRE_RETURN_NOT_OK(RecomputeKey(key, id, leaf_exprs, leaf_bits));
  }
  return Status::OK();
}

void DeltaEngine::FullRebuild() {
  engine_->universe_ready_ = false;
  engine_->dict_ = reldb::DenseDictionary();
  engine_->universe_ = KeyBitmap();
  engine_->num_tombstones_ = 0;
  engine_->free_ids_.clear();
  engine_->sorted_ids_.clear();
  engine_->rank_of_id_.clear();
  engine_->leaf_cache_.clear();
  engine_->count_cache_.clear();
  ++stats_.full_rebuilds;
}

Result<uint64_t> DeltaEngine::Refresh() {
  const reldb::MutationJournal& journal = engine_->db_->journal();
  uint64_t end = journal.sequence();
  if (!engine_->universe_ready_) {
    // Nothing interned yet: the lazy universe scan will bake the whole
    // journal prefix in (EnsureUniverse re-anchors the cursor anyway).
    stats_.journal_cursor = end;
    return stats_.epoch;
  }
  if (stats_.journal_cursor == end) return stats_.epoch;
  telemetry::TraceSpan refresh_span("delta", "refresh_epoch");
#if HYPRE_TELEMETRY_ENABLED
  auto refresh_start = std::chrono::steady_clock::now();
#endif

  std::unordered_set<std::string> tables;
  tables.insert(engine_->base_query_.from);
  for (const auto& join : engine_->base_query_.joins) {
    tables.insert(join.right_table);
  }

  // Partition this epoch's journal slice: per-table append watermarks (the
  // lowest appended row id — everything at or above it is new) and deleted
  // row lists. Mutations on unrelated tables advance the cursor only.
  std::unordered_map<std::string, RowId> first_new_row;
  std::unordered_map<std::string, std::vector<RowId>> deleted_rows;
  size_t relevant = 0;
  journal.ForEachSince(stats_.journal_cursor, [&](const reldb::Mutation& m) {
    if (tables.count(m.table) == 0) return;
    ++relevant;
    if (m.kind == reldb::Mutation::Kind::kAppend) {
      ++stats_.appends_seen;
      auto [it, inserted] = first_new_row.try_emplace(m.table, m.row);
      if (!inserted && m.row < it->second) it->second = m.row;
    } else {
      ++stats_.deletes_seen;
      deleted_rows[m.table].push_back(m.row);
    }
  });
  stats_.journal_cursor = end;
  if (relevant == 0) return stats_.epoch;

  key_order_dirty_ = false;
  std::vector<reldb::ExprPtr> leaf_exprs;
  std::vector<KeyBitmap*> leaf_bits;
  SnapshotLeaves(&leaf_exprs, &leaf_bits);

  bool needs_rebuild = false;
  Status applied;
  {
    telemetry::TraceSpan span("delta", "apply_appends");
    applied = ApplyAppends(first_new_row, leaf_exprs, leaf_bits);
  }
  if (applied.ok()) {
    telemetry::TraceSpan span("delta", "apply_deletes");
    applied = ApplyDeletes(deleted_rows, leaf_exprs, leaf_bits,
                           &needs_rebuild);
  }
  if (!applied.ok()) {
    // The cursor is already past this slice and the streaming passes may
    // have mutated the dictionary mid-flight; a half-applied patch is not
    // recoverable in place. Compact: drop all interned state so the next
    // probe re-interns against the current tables, then surface the error.
    FullRebuild();
    engine_->epoch_ = ++stats_.epoch;
    return applied;
  }

  // Counts change under any applied mutation; memoized counts must go.
  engine_->count_cache_.clear();
  if (!needs_rebuild && key_order_dirty_) engine_->RebuildKeyOrder();

  // Epoch compaction once masked tombstones dominate the id space.
  if (!needs_rebuild && engine_->dict_.size() > 0) {
    double ratio = static_cast<double>(engine_->num_tombstones_) /
                   static_cast<double>(engine_->dict_.size());
    needs_rebuild = ratio > options_.rebuild_tombstone_ratio;
  }
  if (needs_rebuild) {
    FullRebuild();
    HYPRE_TELEMETRY_STMT(
        telemetry::MetricsRegistry::Global()
            .GetCounter("hypre_delta_full_rebuilds_total", "delta",
                        "Refreshes that dropped all interned state")
            ->Increment());
  } else {
    ++stats_.incremental_refreshes;
    HYPRE_TELEMETRY_STMT(
        telemetry::MetricsRegistry::Global()
            .GetCounter("hypre_delta_incremental_refreshes_total", "delta",
                        "Refreshes applied in place to leaves/universe")
            ->Increment());
  }
  HYPRE_TELEMETRY_STMT(
      telemetry::MetricsRegistry::Global()
          .GetHistogram("hypre_delta_refresh_us", "delta",
                        "Microseconds per mutation-bearing Refresh() epoch")
          ->Record(uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - refresh_start)
                                .count())));
  engine_->epoch_ = ++stats_.epoch;
  return stats_.epoch;
}

}  // namespace core
}  // namespace hypre
