#include "hypre/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace hypre {
namespace core {

double PrefSelectivity(size_t num_tuples, size_t num_preferences) {
  if (num_preferences == 0) return 0.0;
  return static_cast<double>(num_tuples) /
         static_cast<double>(num_preferences);
}

double Utility(size_t num_tuples, size_t num_preferences, double intensity,
               size_t page_cap) {
  size_t effective = num_tuples;
  if (page_cap > 0) effective = std::min(effective, page_cap);
  return PrefSelectivity(effective, num_preferences) * intensity;
}

Result<size_t> Coverage(const QueryEnhancer& enhancer,
                        const std::vector<reldb::ExprPtr>& predicates) {
  const ProbeEngine& engine = enhancer.probe_engine();
  HYPRE_ASSIGN_OR_RETURN(size_t universe, engine.UniverseSize());
  KeyBitmap covered(universe);
  for (const auto& predicate : predicates) {
    HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, engine.EvalBitmap(predicate));
    covered.OrWith(bits);
  }
  return covered.Count();
}

double Similarity(const std::vector<reldb::Value>& a,
                  const std::vector<reldb::Value>& b) {
  if (a.empty() && b.empty()) return 100.0;
  std::unordered_set<reldb::Value, reldb::ValueHash> set_a(a.begin(), a.end());
  size_t common = 0;
  std::unordered_set<reldb::Value, reldb::ValueHash> counted;
  for (const auto& v : b) {
    if (set_a.count(v) > 0 && counted.insert(v).second) ++common;
  }
  size_t denom = std::max(a.size(), b.size());
  if (denom == 0) return 100.0;
  return 100.0 * static_cast<double>(common) / static_cast<double>(denom);
}

double RankAgreement(const std::vector<RankedTuple>& a,
                     const std::vector<RankedTuple>& b) {
  std::unordered_map<reldb::Value, double, reldb::ValueHash> grade_a;
  std::unordered_map<reldb::Value, double, reldb::ValueHash> grade_b;
  for (const auto& t : a) grade_a.emplace(t.key, t.intensity);
  for (const auto& t : b) grade_b.emplace(t.key, t.intensity);
  std::vector<reldb::Value> common;
  for (const auto& t : a) {
    if (grade_b.count(t.key) > 0) common.push_back(t.key);
  }
  size_t concordant = 0;
  size_t discordant = 0;
  for (size_t i = 0; i < common.size(); ++i) {
    for (size_t j = i + 1; j < common.size(); ++j) {
      double da = grade_a.at(common[i]) - grade_a.at(common[j]);
      double db = grade_b.at(common[i]) - grade_b.at(common[j]);
      if (da == 0.0 || db == 0.0) continue;  // tied in one list: skip
      if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  if (concordant + discordant == 0) return 100.0;
  return 100.0 * static_cast<double>(concordant) /
         static_cast<double>(concordant + discordant);
}

double Overlap(const std::vector<reldb::Value>& a,
               const std::vector<reldb::Value>& b) {
  std::unordered_set<reldb::Value, reldb::ValueHash> set_a(a.begin(), a.end());
  std::unordered_set<reldb::Value, reldb::ValueHash> set_b(b.begin(), b.end());
  std::vector<reldb::Value> ra;
  std::vector<reldb::Value> rb;
  for (const auto& v : a) {
    if (set_b.count(v) > 0) ra.push_back(v);
  }
  for (const auto& v : b) {
    if (set_a.count(v) > 0) rb.push_back(v);
  }
  size_t n = std::min(ra.size(), rb.size());
  if (n == 0) return 100.0;  // vacuous: no common tuples to disagree on
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ra[i].Compare(rb[i]) == 0) ++agree;
  }
  return 100.0 * static_cast<double>(agree) / static_cast<double>(n);
}

double CountAndCombinations(size_t n) {
  return std::exp2(static_cast<double>(n)) - 1.0;
}

double CountAndOrCombinations(size_t n) {
  return (std::pow(3.0, static_cast<double>(n)) - 1.0) / 2.0;
}

}  // namespace core
}  // namespace hypre
