#include "hypre/group_profile.h"

#include <algorithm>
#include <map>

namespace hypre {
namespace core {

Result<std::vector<QuantitativePreference>> BuildGroupProfile(
    const HypreGraph& graph, const std::vector<UserId>& members,
    UserId group_uid, const GroupProfileConfig& config) {
  if (members.empty()) {
    return Status::InvalidArgument("a group needs at least one member");
  }
  if (std::find(members.begin(), members.end(), group_uid) !=
      members.end()) {
    return Status::InvalidArgument(
        "the group uid must not be one of the members");
  }
  // predicate -> member intensities (one per holding member).
  std::map<std::string, std::vector<double>> by_predicate;
  for (UserId member : members) {
    for (const auto& entry :
         graph.ListPreferences(member, config.include_negative)) {
      by_predicate[entry.predicate].push_back(entry.intensity);
    }
  }
  std::vector<QuantitativePreference> out;
  for (const auto& [predicate, intensities] : by_predicate) {
    if (intensities.size() < config.min_support) continue;
    double value = 0.0;
    switch (config.aggregation) {
      case GroupProfileConfig::Aggregation::kAverage: {
        // Average over ALL members (absent members count as indifferent 0),
        // so a preference held strongly by one of many members is diluted —
        // the combinatory attitude of §2.3.
        double sum = 0.0;
        for (double v : intensities) sum += v;
        value = sum / static_cast<double>(members.size());
        break;
      }
      case GroupProfileConfig::Aggregation::kMin:
        value = *std::min_element(intensities.begin(), intensities.end());
        break;
      case GroupProfileConfig::Aggregation::kMax:
        value = *std::max_element(intensities.begin(), intensities.end());
        break;
    }
    out.push_back(QuantitativePreference{group_uid, predicate, value});
  }
  return out;
}

Result<size_t> MaterializeGroupProfile(HypreGraph* graph,
                                       const std::vector<UserId>& members,
                                       UserId group_uid,
                                       const GroupProfileConfig& config) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<QuantitativePreference> profile,
                         BuildGroupProfile(*graph, members, group_uid,
                                           config));
  for (const auto& preference : profile) {
    HYPRE_RETURN_NOT_OK(graph->AddQuantitative(preference).status());
  }
  return profile.size();
}

}  // namespace core
}  // namespace hypre
