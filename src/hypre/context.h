// Context-enhanced preferences (dissertation §2.4 Definition 11, Figure 2,
// and §8.2 future work #2).
//
// A contextual profile attaches preferences to *context states* — tuples
// over context attributes such as (company, mood, period) where any
// position may be the wildcard ALL. States form a DAG under the
// "tight cover" relation: state A covers state B when A generalizes B
// attribute-wise; the cover is tight when no third profile state sits
// between them. Resolving a concrete situation returns the matching states'
// preferences, most specific first — which also resolves HYPRE conflicts
// that are really context splits ("I like X with friends, dislike X with
// family").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/preference.h"

namespace hypre {
namespace core {

/// \brief The wildcard value matching any concrete context value.
inline constexpr const char* kContextAll = "ALL";

/// \brief One value per context attribute; kContextAll generalizes.
using ContextState = std::vector<std::string>;

/// \brief True if `general` covers `specific`: every attribute is equal or
/// ALL in `general`. A state covers itself.
bool Covers(const ContextState& general, const ContextState& specific);

/// \brief A set of context states with attached preferences, organized as
/// the Definition-11 DAG.
class ContextualProfile {
 public:
  /// \param attributes names of the context dimensions, e.g.
  ///        {"company", "mood", "period"} (Figure 2).
  explicit ContextualProfile(std::vector<std::string> attributes)
      : attributes_(std::move(attributes)) {}

  const std::vector<std::string>& attributes() const { return attributes_; }

  /// \brief Attaches a preference to a context state (creating the state if
  /// new). The state's arity must match the profile's attributes; values
  /// must not be empty.
  Status AddContextPreference(const ContextState& state,
                              QuantitativePreference preference);

  /// \brief All states, in insertion order.
  std::vector<ContextState> States() const;

  /// \brief Definition 11: edges (more specific -> tightly covering more
  /// general state), as index pairs into States().
  std::vector<std::pair<size_t, size_t>> TightCoverEdges() const;

  /// \brief Preferences applicable to a fully concrete situation, ordered
  /// most-specific-state first (specificity = number of non-ALL
  /// attributes, ties by insertion order). The concrete state must not
  /// contain ALL.
  Result<std::vector<QuantitativePreference>> Resolve(
      const ContextState& concrete) const;

  /// \brief Like Resolve but keeps only the preferences of the most
  /// specific matching *states* whose specificity is maximal (the
  /// overriding attitude of §2.3: the tightest context wins).
  Result<std::vector<QuantitativePreference>> ResolveMostSpecific(
      const ContextState& concrete) const;

 private:
  struct StateEntry {
    ContextState state;
    std::vector<QuantitativePreference> preferences;
  };

  Status ValidateState(const ContextState& state, bool allow_all) const;
  static size_t Specificity(const ContextState& state);

  std::vector<std::string> attributes_;
  std::vector<StateEntry> entries_;
};

}  // namespace core
}  // namespace hypre
