#include "hypre/cp_net.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/string_util.h"

namespace hypre {
namespace core {

std::string CpNet::JoinKey(const std::vector<std::string>& values) {
  std::string key;
  for (const auto& value : values) {
    key += value;
    key.push_back('\x1f');
  }
  return key;
}

Status CpNet::AddAttribute(const std::string& name,
                           std::vector<std::string> domain) {
  if (name.empty()) return Status::InvalidArgument("empty attribute name");
  if (domain.empty()) {
    return Status::InvalidArgument("attribute '" + name +
                                   "' needs a non-empty domain");
  }
  std::set<std::string> seen(domain.begin(), domain.end());
  if (seen.size() != domain.size()) {
    return Status::InvalidArgument("duplicate value in domain of '" + name +
                                   "'");
  }
  if (nodes_.count(name) > 0) {
    return Status::AlreadyExists("attribute '" + name + "' already exists");
  }
  Node node;
  node.domain = std::move(domain);
  nodes_.emplace(name, std::move(node));
  order_.push_back(name);
  return Status::OK();
}

Result<const CpNet::Node*> CpNet::FindNode(const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return Status::NotFound("no attribute named '" + name + "'");
  }
  return &it->second;
}

Status CpNet::AddDependency(const std::string& parent,
                            const std::string& child) {
  HYPRE_RETURN_NOT_OK(FindNode(parent).status());
  HYPRE_ASSIGN_OR_RETURN(const Node* child_node, FindNode(child));
  if (parent == child) {
    return Status::InvalidArgument("self-dependency on '" + child + "'");
  }
  if (std::find(child_node->parents.begin(), child_node->parents.end(),
                parent) != child_node->parents.end()) {
    return Status::AlreadyExists("dependency already present");
  }
  // Cycle check: is `child` an ancestor of `parent`?
  std::deque<std::string> frontier{parent};
  std::set<std::string> visited{parent};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    if (current == child) {
      return Status::Conflict("dependency " + parent + " -> " + child +
                              " would create a cycle");
    }
    for (const auto& ancestor : nodes_.at(current).parents) {
      if (visited.insert(ancestor).second) frontier.push_back(ancestor);
    }
  }
  nodes_.at(child).parents.push_back(parent);
  // Dependent CPT rows are stale: require re-specification.
  nodes_.at(child).cpt.clear();
  return Status::OK();
}

Status CpNet::SetPreferenceOrder(const std::string& attribute,
                                 const std::vector<std::string>& parent_values,
                                 std::vector<std::string> order) {
  HYPRE_ASSIGN_OR_RETURN(const Node* node, FindNode(attribute));
  if (parent_values.size() != node->parents.size()) {
    return Status::InvalidArgument(StringFormat(
        "'%s' has %zu parents but %zu parent values were given",
        attribute.c_str(), node->parents.size(), parent_values.size()));
  }
  for (size_t i = 0; i < parent_values.size(); ++i) {
    const Node& parent = nodes_.at(node->parents[i]);
    if (std::find(parent.domain.begin(), parent.domain.end(),
                  parent_values[i]) == parent.domain.end()) {
      return Status::InvalidArgument("'" + parent_values[i] +
                                     "' is not in the domain of parent '" +
                                     node->parents[i] + "'");
    }
  }
  std::multiset<std::string> given(order.begin(), order.end());
  std::multiset<std::string> domain(node->domain.begin(),
                                    node->domain.end());
  if (given != domain) {
    return Status::InvalidArgument(
        "preference order must be a permutation of the domain of '" +
        attribute + "'");
  }
  nodes_.at(attribute).cpt[JoinKey(parent_values)] = std::move(order);
  return Status::OK();
}

bool CpNet::IsComplete() const {
  for (const auto& [name, node] : nodes_) {
    size_t expected = 1;
    for (const auto& parent : node.parents) {
      expected *= nodes_.at(parent).domain.size();
    }
    if (node.cpt.size() != expected) return false;
  }
  return !nodes_.empty();
}

Result<std::vector<std::string>> CpNet::TopologicalAttributes() const {
  std::map<std::string, size_t> in_degree;
  for (const auto& name : order_) {
    in_degree[name] = nodes_.at(name).parents.size();
  }
  std::deque<std::string> ready;
  for (const auto& name : order_) {
    if (in_degree[name] == 0) ready.push_back(name);
  }
  std::vector<std::string> topo;
  while (!ready.empty()) {
    std::string current = ready.front();
    ready.pop_front();
    topo.push_back(current);
    for (const auto& name : order_) {
      const Node& node = nodes_.at(name);
      if (std::find(node.parents.begin(), node.parents.end(), current) ==
          node.parents.end()) {
        continue;
      }
      if (--in_degree[name] == 0) ready.push_back(name);
    }
  }
  if (topo.size() != order_.size()) {
    return Status::Conflict("CP-net dependencies contain a cycle");
  }
  return topo;
}

Result<size_t> CpNet::ValueRank(const std::string& attribute,
                                const Outcome& outcome,
                                const std::string& value) const {
  HYPRE_ASSIGN_OR_RETURN(const Node* node, FindNode(attribute));
  std::vector<std::string> parent_values;
  parent_values.reserve(node->parents.size());
  for (const auto& parent : node->parents) {
    auto it = outcome.find(parent);
    if (it == outcome.end()) {
      return Status::InvalidArgument("outcome misses parent '" + parent +
                                     "'");
    }
    parent_values.push_back(it->second);
  }
  auto row = node->cpt.find(JoinKey(parent_values));
  if (row == node->cpt.end()) {
    return Status::NotFound("no CPT row for '" + attribute +
                            "' under the given parent values");
  }
  auto pos = std::find(row->second.begin(), row->second.end(), value);
  if (pos == row->second.end()) {
    return Status::InvalidArgument("'" + value +
                                   "' is not in the domain of '" +
                                   attribute + "'");
  }
  return static_cast<size_t>(pos - row->second.begin());
}

Result<Outcome> CpNet::BestOutcome(const Outcome& evidence) const {
  if (!IsComplete()) {
    return Status::InvalidArgument("CP-net has missing CPT rows");
  }
  for (const auto& [attribute, value] : evidence) {
    HYPRE_ASSIGN_OR_RETURN(const Node* node, FindNode(attribute));
    if (std::find(node->domain.begin(), node->domain.end(), value) ==
        node->domain.end()) {
      return Status::InvalidArgument("evidence value '" + value +
                                     "' not in domain of '" + attribute +
                                     "'");
    }
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<std::string> topo,
                         TopologicalAttributes());
  Outcome outcome = evidence;
  for (const auto& attribute : topo) {
    if (outcome.count(attribute) > 0) continue;  // pinned by evidence
    const Node& node = nodes_.at(attribute);
    std::vector<std::string> parent_values;
    for (const auto& parent : node.parents) {
      parent_values.push_back(outcome.at(parent));
    }
    outcome[attribute] = node.cpt.at(JoinKey(parent_values)).front();
  }
  return outcome;
}

Result<bool> CpNet::FlipDominates(const Outcome& a, const Outcome& b) const {
  std::string flipped;
  for (const auto& name : order_) {
    auto ia = a.find(name);
    auto ib = b.find(name);
    if (ia == a.end() || ib == b.end()) {
      return Status::InvalidArgument("outcomes must be complete");
    }
    if (ia->second != ib->second) {
      if (!flipped.empty()) {
        return Status::InvalidArgument(
            "outcomes differ in more than one attribute");
      }
      flipped = name;
    }
  }
  if (flipped.empty()) {
    return Status::InvalidArgument("outcomes are identical");
  }
  HYPRE_ASSIGN_OR_RETURN(size_t rank_a,
                         ValueRank(flipped, a, a.at(flipped)));
  HYPRE_ASSIGN_OR_RETURN(size_t rank_b,
                         ValueRank(flipped, b, b.at(flipped)));
  return rank_a < rank_b;
}

Result<std::vector<Outcome>> CpNet::RankOutcomes(size_t max_outcomes) const {
  if (!IsComplete()) {
    return Status::InvalidArgument("CP-net has missing CPT rows");
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<std::string> topo,
                         TopologicalAttributes());
  size_t total = 1;
  for (const auto& name : topo) {
    total *= nodes_.at(name).domain.size();
    if (total > max_outcomes) {
      return Status::InvalidArgument(StringFormat(
          "outcome space exceeds the cap of %zu", max_outcomes));
    }
  }
  // Enumerate all outcomes.
  std::vector<Outcome> outcomes{Outcome{}};
  for (const auto& name : topo) {
    std::vector<Outcome> next;
    next.reserve(outcomes.size() * nodes_.at(name).domain.size());
    for (const auto& partial : outcomes) {
      for (const auto& value : nodes_.at(name).domain) {
        Outcome extended = partial;
        extended[name] = value;
        next.push_back(std::move(extended));
      }
    }
    outcomes = std::move(next);
  }
  // Violation vector in topological order; lexicographic comparison. If A
  // flip-dominates B they share all parent contexts except the flipped
  // attribute's subtree, so A's vector is lexicographically smaller.
  struct Keyed {
    std::vector<size_t> key;
    Outcome outcome;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(outcomes.size());
  for (auto& outcome : outcomes) {
    Keyed k;
    for (const auto& name : topo) {
      HYPRE_ASSIGN_OR_RETURN(size_t rank,
                             ValueRank(name, outcome, outcome.at(name)));
      k.key.push_back(rank);
    }
    k.outcome = std::move(outcome);
    keyed.push_back(std::move(k));
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  std::vector<Outcome> result;
  result.reserve(keyed.size());
  for (auto& k : keyed) result.push_back(std::move(k.outcome));
  return result;
}

std::vector<std::string> CpNet::ParentsOf(const std::string& attribute) const {
  auto it = nodes_.find(attribute);
  if (it == nodes_.end()) return {};
  return it->second.parents;
}

}  // namespace core
}  // namespace hypre
