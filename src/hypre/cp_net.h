// Conditional Preference Networks (dissertation §2.4, Definition 12,
// Figure 3).
//
// A CP-net has one node per attribute; an edge parent -> child means the
// preference order over the child's values depends on the parents' values.
// Each node carries a conditional preference table (CPT): for every
// combination of parent values, a total order (best first) over the node's
// domain.
//
// Implemented operations:
//  * BestOutcome   — the forward sweep: choose each attribute's most
//    preferred value given its parents (optionally with evidence pinned);
//  * FlipDominates — the ceteris-paribus comparison of two outcomes that
//    differ in exactly one attribute;
//  * RankOutcomes  — a total order over all outcomes consistent with the
//    CP-net's partial order: outcomes are compared lexicographically (in
//    topological attribute order) by the rank each value takes in its CPT
//    row. If outcome A flip-dominates B then A ranks before B.
// Full dominance testing for arbitrary outcome pairs is PSPACE-hard in
// general and intentionally out of scope.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace hypre {
namespace core {

/// \brief A complete (or partial, for evidence) assignment of attribute
/// values.
using Outcome = std::map<std::string, std::string>;

class CpNet {
 public:
  /// \brief Declares an attribute with its (non-empty, duplicate-free)
  /// domain.
  Status AddAttribute(const std::string& name,
                      std::vector<std::string> domain);

  /// \brief Declares that `child`'s preference order depends on `parent`.
  /// Fails if it would create a cycle.
  Status AddDependency(const std::string& parent, const std::string& child);

  /// \brief Sets the CPT row for `attribute` under `parent_values` (values
  /// of ALL parents, in the order the dependencies were added). `order`
  /// must be a permutation of the attribute's domain, best value first.
  /// An attribute without parents passes an empty `parent_values`.
  Status SetPreferenceOrder(const std::string& attribute,
                            const std::vector<std::string>& parent_values,
                            std::vector<std::string> order);

  /// \brief True when every attribute has a CPT row for every combination
  /// of parent values.
  bool IsComplete() const;

  /// \brief The most preferred complete outcome consistent with `evidence`
  /// (attributes pinned to fixed values). Requires IsComplete().
  Result<Outcome> BestOutcome(const Outcome& evidence = {}) const;

  /// \brief Ceteris paribus: outcomes differing in exactly one attribute;
  /// returns true iff `a`'s value of that attribute is preferred to `b`'s
  /// under their (shared) parent context. Fails if they differ in zero or
  /// more than one attribute.
  Result<bool> FlipDominates(const Outcome& a, const Outcome& b) const;

  /// \brief Every complete outcome, best first (see file comment for the
  /// order's definition). Guarded: fails if the outcome space exceeds
  /// `max_outcomes`.
  Result<std::vector<Outcome>> RankOutcomes(size_t max_outcomes = 4096) const;

  const std::vector<std::string>& attribute_names() const { return order_; }
  std::vector<std::string> ParentsOf(const std::string& attribute) const;

 private:
  struct Node {
    std::vector<std::string> domain;
    std::vector<std::string> parents;
    // key: parent values joined with '\x1f' -> order (best first)
    std::map<std::string, std::vector<std::string>> cpt;
  };

  static std::string JoinKey(const std::vector<std::string>& values);
  Result<const Node*> FindNode(const std::string& name) const;
  /// Rank (0 = best) of `value` in `attribute`'s CPT row under the parent
  /// values taken from `outcome`.
  Result<size_t> ValueRank(const std::string& attribute,
                           const Outcome& outcome,
                           const std::string& value) const;
  /// Topological order of the attributes (parents first).
  Result<std::vector<std::string>> TopologicalAttributes() const;

  std::map<std::string, Node> nodes_;
  std::vector<std::string> order_;  // insertion order of attributes
};

}  // namespace core
}  // namespace hypre
