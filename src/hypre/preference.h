// Preference value types and predicate introspection.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/expr.h"

namespace hypre {
namespace core {

using UserId = int64_t;

/// \brief A quantitative preference: predicate text plus an intensity in
/// [-1, 1]. Negative intensities express dislike; zero is indifference
/// (Definition 3).
struct QuantitativePreference {
  UserId uid = 0;
  std::string predicate;
  double intensity = 0.0;
};

/// \brief A qualitative preference: tuples matching `left` are preferred
/// over tuples matching `right` with strength `intensity`. Zero intensity
/// means equally preferred; negative input intensity means the reversed
/// statement holds with the absolute strength (Proposition 7).
struct QualitativePreference {
  UserId uid = 0;
  std::string left;
  std::string right;
  double intensity = 0.0;
};

/// \brief A preference predicate ready for combination: parsed expression,
/// referenced attributes, and its quantitative intensity.
///
/// `attribute_key` identifies the attribute group for the mixed-clause
/// AND/OR rule of §4.6: predicates with the same key are OR-combined,
/// predicates with different keys are AND-combined.
struct PreferenceAtom {
  std::string predicate;
  reldb::ExprPtr expr;
  double intensity = 0.0;
  std::set<std::string> attributes;
  std::string attribute_key;
};

/// \brief The fully qualified column names referenced by a predicate string.
Result<std::set<std::string>> PredicateAttributes(const std::string& predicate);

/// \brief Parses `predicate` and derives the attribute key (sorted attribute
/// names joined with '|').
Result<PreferenceAtom> MakeAtom(const std::string& predicate,
                                double intensity);

/// \brief Sorts atoms descending by intensity (ties broken by predicate text
/// so the order is deterministic).
void SortByIntensityDesc(std::vector<PreferenceAtom>* atoms);

}  // namespace core
}  // namespace hypre
