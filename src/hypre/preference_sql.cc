#include "hypre/preference_sql.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "sqlparse/lexer.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace core {

namespace {

using sqlparse::Token;
using sqlparse::TokenType;

bool IsIdent(const Token& token, const char* word) {
  return token.type == TokenType::kIdent &&
         EqualsIgnoreCase(token.text, word);
}

/// Splits the clause into the text fragments of its preferences, honoring
/// paren depth and BETWEEN's own AND.
struct ClauseLayout {
  // blocks[i] = list of (pred_text, optional else_text)
  std::vector<std::vector<std::pair<std::string, std::string>>> blocks;
  size_t top_k = 0;
};

Result<ClauseLayout> SplitClause(const std::string& clause) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         sqlparse::Tokenize(clause));
  ClauseLayout layout;
  layout.blocks.emplace_back();

  size_t clause_end = clause.size();
  // Trailing TOP k.
  if (tokens.size() >= 3 && IsIdent(tokens[tokens.size() - 3], "TOP") &&
      tokens[tokens.size() - 2].type == TokenType::kInt) {
    layout.top_k = static_cast<size_t>(tokens[tokens.size() - 2].int_value);
    clause_end = tokens[tokens.size() - 3].position;
    tokens.erase(tokens.end() - 3, tokens.end() - 1);
  }

  size_t fragment_start = 0;
  std::string pending_predicate;  // set when an ELSE was seen
  int depth = 0;
  bool between_pending = false;  // next AND belongs to a BETWEEN

  auto flush = [&](size_t end_pos) -> Status {
    std::string fragment =
        Trim(clause.substr(fragment_start, end_pos - fragment_start));
    if (fragment.empty()) {
      return Status::ParseError("empty preference in PREFERRING clause");
    }
    if (!pending_predicate.empty()) {
      layout.blocks.back().emplace_back(pending_predicate, fragment);
      pending_predicate.clear();
    } else {
      layout.blocks.back().emplace_back(fragment, "");
    }
    return Status::OK();
  };

  for (size_t i = 0; i + 1 < tokens.size(); ++i) {  // skip trailing kEnd
    const Token& token = tokens[i];
    switch (token.type) {
      case TokenType::kLParen:
        ++depth;
        continue;
      case TokenType::kRParen:
        --depth;
        continue;
      case TokenType::kBetween:
        between_pending = true;
        continue;
      case TokenType::kAnd:
        if (depth > 0) continue;
        if (between_pending) {
          between_pending = false;
          continue;
        }
        HYPRE_RETURN_NOT_OK(flush(token.position));
        fragment_start = token.position + 3;  // past "AND"
        continue;
      case TokenType::kIdent:
        if (depth == 0 && EqualsIgnoreCase(token.text, "ELSE")) {
          if (!pending_predicate.empty()) {
            return Status::ParseError("chained ELSE is not supported");
          }
          pending_predicate =
              Trim(clause.substr(fragment_start,
                                 token.position - fragment_start));
          if (pending_predicate.empty()) {
            return Status::ParseError("ELSE without a preceding predicate");
          }
          fragment_start = token.position + 4;  // past "ELSE"
          continue;
        }
        if (depth == 0 && EqualsIgnoreCase(token.text, "PRIOR") &&
            i + 2 < tokens.size() && IsIdent(tokens[i + 1], "TO")) {
          HYPRE_RETURN_NOT_OK(flush(token.position));
          layout.blocks.emplace_back();
          fragment_start = tokens[i + 1].position + 2;  // past "TO"
          ++i;  // consume "TO"
          continue;
        }
        continue;
      default:
        continue;
    }
  }
  HYPRE_RETURN_NOT_OK(flush(clause_end));
  return layout;
}

/// Row accessor over one table row.
class TableRowAccessor : public reldb::RowAccessor {
 public:
  TableRowAccessor(const reldb::Table* table, reldb::RowId row)
      : table_(table), row_(row) {}

  Result<reldb::Value> Get(const std::string& table,
                           const std::string& column) const override {
    if (!table.empty() && table != table_->name()) {
      return Status::NotFound("table '" + table + "' not in scope");
    }
    int col = table_->schema().FindColumn(column);
    if (col < 0) {
      return Status::NotFound("no column '" + column + "'");
    }
    return table_->row(row_)[static_cast<size_t>(col)];
  }

  void set_row(reldb::RowId row) { row_ = row; }

 private:
  const reldb::Table* table_;
  reldb::RowId row_;
};

/// Distance-to-satisfaction of one violated predicate, in [0, 1].
Result<double> ViolationError(const reldb::Expr& expr,
                              const reldb::RowAccessor& row) {
  using reldb::ExprKind;
  switch (expr.kind()) {
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const reldb::BetweenExpr&>(expr);
      if (bt.column()->kind() != ExprKind::kColumnRef) return 1.0;
      const auto& ref =
          static_cast<const reldb::ColumnRefExpr&>(*bt.column());
      HYPRE_ASSIGN_OR_RETURN(reldb::Value v, row.Get(ref.table(),
                                                     ref.column()));
      if (!v.is_numeric() || !bt.lo().is_numeric() ||
          !bt.hi().is_numeric()) {
        return 1.0;
      }
      double value = v.NumericValue();
      double lo = bt.lo().NumericValue();
      double hi = bt.hi().NumericValue();
      double width = hi - lo;
      if (width <= 0) return 1.0;
      double dist = value < lo ? lo - value : value - hi;
      return std::min(1.0, dist / width);
    }
    case ExprKind::kCompare: {
      const auto& cmp = static_cast<const reldb::CompareExpr&>(expr);
      // col op literal with numerics: relative distance to the bound.
      if (cmp.lhs()->kind() == ExprKind::kColumnRef &&
          cmp.rhs()->kind() == ExprKind::kLiteral) {
        const auto& ref =
            static_cast<const reldb::ColumnRefExpr&>(*cmp.lhs());
        const auto& lit =
            static_cast<const reldb::LiteralExpr&>(*cmp.rhs());
        HYPRE_ASSIGN_OR_RETURN(reldb::Value v,
                               row.Get(ref.table(), ref.column()));
        if (v.is_numeric() && lit.value().is_numeric()) {
          double value = v.NumericValue();
          double bound = lit.value().NumericValue();
          double scale = std::max(std::abs(bound), 1.0);
          return std::min(1.0, std::abs(value - bound) / scale);
        }
      }
      return 1.0;
    }
    default:
      return 1.0;  // categorical / compound: all-or-nothing
  }
}

}  // namespace

Result<PreferringClause> ParsePreferring(const std::string& clause) {
  HYPRE_ASSIGN_OR_RETURN(ClauseLayout layout, SplitClause(clause));
  PreferringClause out;
  out.top_k = layout.top_k;
  for (const auto& block : layout.blocks) {
    std::vector<SoftPreference> prefs;
    for (const auto& [pred_text, else_text] : block) {
      SoftPreference pref;
      HYPRE_ASSIGN_OR_RETURN(pref.predicate,
                             sqlparse::ParsePredicate(pred_text));
      if (!else_text.empty()) {
        HYPRE_ASSIGN_OR_RETURN(pref.else_predicate,
                               sqlparse::ParsePredicate(else_text));
      }
      prefs.push_back(std::move(pref));
    }
    out.blocks.push_back(std::move(prefs));
  }
  return out;
}

Result<std::vector<PreferenceSqlRow>> EvaluatePreferring(
    const reldb::Table& table, const PreferringClause& clause) {
  if (clause.blocks.empty()) {
    return Status::InvalidArgument("PREFERRING clause has no preferences");
  }
  std::vector<PreferenceSqlRow> rows;
  rows.reserve(table.num_rows());
  TableRowAccessor accessor(&table, 0);
  for (reldb::RowId id = 0; id < table.num_rows(); ++id) {
    if (table.is_deleted(id)) continue;
    accessor.set_row(id);
    PreferenceSqlRow row;
    row.row = id;
    for (const auto& block : clause.blocks) {
      double error = 0.0;
      for (const auto& pref : block) {
        HYPRE_ASSIGN_OR_RETURN(bool satisfied,
                               reldb::Evaluate(*pref.predicate, accessor));
        if (satisfied) continue;
        HYPRE_ASSIGN_OR_RETURN(double violation,
                               ViolationError(*pref.predicate, accessor));
        if (pref.else_predicate) {
          HYPRE_ASSIGN_OR_RETURN(
              bool fallback,
              reldb::Evaluate(*pref.else_predicate, accessor));
          // The ELSE alternative is second-best: half credit.
          if (fallback) violation = std::min(violation, 0.5);
        }
        error += violation;
      }
      row.block_errors.push_back(error);
    }
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const PreferenceSqlRow& a, const PreferenceSqlRow& b) {
                     return a.block_errors < b.block_errors;  // lexicographic
                   });
  if (clause.top_k > 0 && rows.size() > clause.top_k) {
    rows.resize(clause.top_k);
  }
  return rows;
}

}  // namespace core
}  // namespace hypre
