// The HYPRE graph: the dissertation's unified hybrid preference model.
//
// Nodes carry (uid, predicate, intensity, provenance); an isolated node is a
// quantitative preference; a PREFERS edge between two nodes is a qualitative
// preference whose strength is the edge's intensity. Conflicting insertions
// produce CYCLE or DISCARD edges that are excluded from traversal
// (dissertation §4.2/§4.5, Algorithm 1, and §6.2.3 conflict resolution).
//
// The central mechanism is intensity propagation: inserting a qualitative
// preference computes quantitative intensities for nodes that lack one via
// Eq. 4.1/4.2, converting qualitative knowledge into quantitative scores
// without losing the pairwise structure, which is what drives the coverage
// gains of Figure 28.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graphdb/graph_store.h"
#include "hypre/default_value.h"
#include "hypre/preference.h"

namespace hypre {
namespace core {

/// \brief Edge labels (dissertation §4.2). Only kPrefers edges participate
/// in traversal and ordering.
enum class EdgeLabel { kPrefers, kCycle, kDiscard };

const char* EdgeLabelToString(EdgeLabel label);

/// \brief Where a node's intensity came from.
enum class Provenance {
  kUser,      // explicitly provided (possibly averaged over duplicates)
  kComputed,  // derived via Eq. 4.1/4.2 from a qualitative preference
  kDefault,   // seeded by the DEFAULT_VALUE strategy
};

const char* ProvenanceToString(Provenance provenance);

/// \brief Graph construction knobs.
struct HypreGraphConfig {
  DefaultValueStrategy default_strategy = DefaultValueStrategy::kFixed;
  double fixed_default = 0.5;
};

/// \brief Outcome of one qualitative insertion, for observability and tests.
struct QualitativeInsertResult {
  graphdb::EdgeId edge = graphdb::kInvalidEdge;
  EdgeLabel label = EdgeLabel::kPrefers;
  bool reversed = false;        // Proposition 7 normalization applied
  bool left_created = false;    // a new node was created for the left side
  bool right_created = false;   // a new node was created for the right side
  bool computed_left = false;   // left intensity derived via Eq. 4.1
  bool computed_right = false;  // right intensity derived via Eq. 4.2
  bool used_default = false;    // DEFAULT_VALUE seeding happened
};

/// \brief One preference as listed from a user profile.
struct PreferenceEntry {
  graphdb::NodeId node = graphdb::kInvalidNode;
  std::string predicate;
  double intensity = 0.0;
  Provenance provenance = Provenance::kUser;
};

/// \brief One qualitative (PREFERS) edge as listed from a user profile.
struct QualitativeEntry {
  graphdb::EdgeId edge = graphdb::kInvalidEdge;
  graphdb::NodeId left = graphdb::kInvalidNode;
  graphdb::NodeId right = graphdb::kInvalidNode;
  std::string left_predicate;
  std::string right_predicate;
  double intensity = 0.0;
  EdgeLabel label = EdgeLabel::kPrefers;
};

/// \brief Edge-label counters for conflict accounting.
struct EdgeLabelCounts {
  size_t prefers = 0;
  size_t cycle = 0;
  size_t discard = 0;
};

class HypreGraph {
 public:
  explicit HypreGraph(HypreGraphConfig config = {});

  // --- insertion ------------------------------------------------------------

  /// \brief Inserts a quantitative preference (§4.5 Step 1). If the user
  /// already has a node with the same predicate:
  ///  * existing user-provided value  -> averaged with the new one;
  ///  * existing computed/default value -> replaced by the user's value.
  /// Either change can invalidate incident PREFERS edges; any edge whose
  /// left < right invariant breaks is relabeled DISCARD.
  Result<graphdb::NodeId> AddQuantitative(const QuantitativePreference& pref);

  /// \brief Inserts a qualitative preference (Algorithm 1 semantics; see
  /// DESIGN.md §5 for the cleaned-up rules). Negative intensities reverse
  /// the edge (Proposition 7). Returns what happened.
  Result<QualitativeInsertResult> AddQualitative(
      const QualitativePreference& pref);

  // --- removal (predicate-based profiles support cheap removal, §3.2.1) ------

  /// \brief Removes the node for (uid, predicate) and every incident edge.
  /// Intensities that were previously derived FROM this node keep their
  /// values — removal does not rewrite history (the dissertation never
  /// recomputes on deletion; stale derivations age out when the user
  /// restates them).
  Status RemovePreference(UserId uid, const std::string& predicate);

  /// \brief Removes the edge(s) between two predicates of a user (any
  /// label). Returns the number of edges removed (0 is not an error).
  Result<size_t> RemoveQualitative(UserId uid, const std::string& left,
                                   const std::string& right);

  // --- profile queries --------------------------------------------------------

  /// \brief The user's preferences with an assigned intensity, descending by
  /// intensity. `include_negative` keeps dislikes (excluded when enhancing
  /// queries, per §4.3).
  std::vector<PreferenceEntry> ListPreferences(
      UserId uid, bool include_negative = false) const;

  /// \brief The user's PREFERS edges (or all labels if `prefers_only` is
  /// false).
  std::vector<QualitativeEntry> ListQualitative(
      UserId uid, bool prefers_only = true) const;

  /// \brief Node lookup by (uid, predicate). kInvalidNode if absent.
  graphdb::NodeId FindNode(UserId uid, const std::string& predicate) const;

  /// \brief All node ids of a user.
  std::vector<graphdb::NodeId> UserNodes(UserId uid) const;

  std::optional<double> NodeIntensity(graphdb::NodeId id) const;
  std::optional<Provenance> NodeProvenance(graphdb::NodeId id) const;

  /// \brief Users present in the graph, ascending.
  std::vector<UserId> Users() const;

  // --- statistics -------------------------------------------------------------

  size_t num_nodes() const { return store_.num_nodes(); }
  size_t num_edges() const { return store_.num_edges(); }
  EdgeLabelCounts CountEdgeLabels() const;

  /// \brief Validates the model invariants over the whole graph:
  /// intensities in range, PREFERS edges satisfy left >= right (within 1e-9),
  /// and the PREFERS subgraph is acyclic per user.
  Status CheckInvariants() const;

  // --- restoration (persistence layer) ---------------------------------------

  /// \brief Inserts a node verbatim — no dedup-averaging, no Algorithm-1
  /// processing. Fails if the (uid, predicate) pair already exists. Used by
  /// LoadGraph to rebuild a saved profile exactly.
  Result<graphdb::NodeId> RestoreNode(UserId uid,
                                      const std::string& predicate,
                                      std::optional<double> intensity,
                                      std::optional<Provenance> provenance);

  /// \brief Inserts an edge verbatim with the given label and intensity.
  Result<graphdb::EdgeId> RestoreEdge(graphdb::NodeId src,
                                      graphdb::NodeId dst, EdgeLabel label,
                                      double intensity);

  /// \brief The underlying property-graph store (for cypher_lite access and
  /// the persistence layer).
  const graphdb::GraphStore& store() const { return store_; }
  graphdb::GraphStore* mutable_store() { return &store_; }

  const HypreGraphConfig& config() const { return config_; }

 private:
  /// Returns the existing node or creates one without an intensity.
  graphdb::NodeId GetOrCreateNode(UserId uid, const std::string& predicate,
                                  bool* created);

  void SetIntensity(graphdb::NodeId node, double intensity,
                    Provenance provenance);

  /// Relabels incident PREFERS edges violating left >= right as DISCARD.
  void ReconcileIncidentEdges(graphdb::NodeId node);

  /// True if the node's only PREFERS connections are none (degree 0) and its
  /// current value was not supplied by the user, i.e. it is safe to
  /// recompute without losing information.
  bool IsRecomputable(graphdb::NodeId node) const;

  double DefaultSeed(UserId uid) const;

  graphdb::GraphStore store_;
  HypreGraphConfig config_;
  // (uid, predicate) -> node, for O(1) dedup on insertion.
  std::map<std::pair<UserId, std::string>, graphdb::NodeId> node_by_key_;
  // uid -> nodes, insertion ordered.
  std::map<UserId, std::vector<graphdb::NodeId>> nodes_by_user_;
};

}  // namespace core
}  // namespace hypre
