// Word-packed bitmap over dense key ids.
//
// The probe engine interns the base query's key universe into contiguous
// dense ids once, then represents every predicate's matching-key set as one
// of these bitmaps. Group-level set algebra (AND/OR/NOT over key sets)
// becomes word-wise bitwise ops and counting becomes popcount, which is what
// makes the thousands of probes the combination algorithms issue cheap.
//
// Storage is 64-byte aligned (cache-line / AVX2 vector) and the streaming
// word passes route through parallel::ActiveWordKernels(), so Count /
// AndWith / AndCount / AndCountMulti pick up the SIMD kernels when the
// build compiles them in. Semantics are exact — the scalar and SIMD paths
// produce byte-identical words and identical counts.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hypre/parallel/aligned_alloc.h"

namespace hypre {
namespace parallel {
class TaskPool;
}  // namespace parallel

namespace core {

class KeyBitmap {
 public:
  /// Bits per storage word. Shard widths (see batch_prober.h) are expressed
  /// in words of this size.
  static constexpr size_t kWordBits = 64;

  /// Aligned, default-initializing word storage (see aligned_alloc.h).
  using WordVector =
      std::vector<uint64_t, parallel::AlignedNoInitAllocator<uint64_t>>;

  KeyBitmap() = default;
  /// \brief A bitmap of `num_bits` bits, all clear (or all set).
  explicit KeyBitmap(size_t num_bits, bool all_set = false);
  /// \brief A cleared bitmap of `num_bits` bits whose words are zeroed IN
  /// PARALLEL on `pool` (first-touch NUMA placement: each page lands on the
  /// node of the worker that zeroes it, which is the worker set that later
  /// probes it). `max_workers` caps the zeroing slots (0 = all). A null
  /// pool (or a tiny bitmap) zeroes inline, identical to KeyBitmap(n).
  /// NOTE: pass a typed TaskPool* — a literal nullptr is ambiguous against
  /// the bool overload.
  KeyBitmap(size_t num_bits, parallel::TaskPool* pool, size_t max_workers = 0);

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  /// \brief Grows (or shrinks) to `num_bits` bits, preserving the common
  /// prefix; new bits are clear. The delta engine's universe tail-growth
  /// path resizes every cached bitmap through this before setting new-key
  /// bits.
  void Resize(size_t num_bits);

  /// \brief Raw word storage (num_words() entries, tail bits past num_bits()
  /// always clear). The batch prober's blocked shard passes read and write
  /// through these instead of per-bit accessors.
  const uint64_t* word_data() const { return words_.data(); }
  uint64_t* word_data() { return words_.data(); }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// \brief Number of set bits (popcount).
  size_t Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  /// \brief In-place set algebra. All operands must share num_bits().
  void AndWith(const KeyBitmap& other);
  void OrWith(const KeyBitmap& other);
  /// \brief this &= ~other (set difference).
  void AndNotWith(const KeyBitmap& other);
  /// \brief Complement within num_bits().
  void FlipAll();

  /// \brief popcount(a & b) without materializing the intersection — the
  /// inner loop of the PEPS pair table and expansion probes.
  static size_t AndCount(const KeyBitmap& a, const KeyBitmap& b);
  /// \brief popcount(operands[0] & ... & operands[n-1]) in one fused word
  /// pass, without materializing any intermediate — the pure-AND-chain probe
  /// shortcut. All operands must share num_bits(); n == 0 returns 0.
  static size_t AndCountMulti(const KeyBitmap* const* operands, size_t n);
  /// \brief True iff (a & b) has at least one set bit.
  static bool Intersects(const KeyBitmap& a, const KeyBitmap& b);

  /// \brief Calls `fn(id)` for every set bit in ascending id order.
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(std::countr_zero(word));
        fn(static_cast<uint32_t>((w << 6) + bit));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  /// \brief The set bits as ascending dense ids.
  std::vector<uint32_t> ToIds() const;

  bool operator==(const KeyBitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }
  bool operator!=(const KeyBitmap& other) const { return !(*this == other); }

 private:
  /// Clears the bits past num_bits_ in the last word so popcount and
  /// equality stay exact after FlipAll.
  void ClearTail();

  size_t num_bits_ = 0;
  WordVector words_;
};

}  // namespace core
}  // namespace hypre
