// Preference-aware query enhancement (dissertation §4.6).
//
// Takes a base SELECT query and splices a (combined) preference predicate
// into its WHERE clause, then executes it to count or collect the matching
// tuples.
//
// Matching semantics — group-level (existential). The dissertation's
// enhanced queries run over `dblp JOIN dblp_author` and freely AND two
// author predicates (`dblp_author.aid=2222 AND dblp_author.aid=4787`,
// §5.3.1) expecting papers co-authored by both. On a per-joined-row basis
// that predicate is unsatisfiable (each joined row carries ONE aid), so the
// intended meaning is per *key* (per paper): a key matches a leaf predicate
// if at least one of its joined rows does, and AND/OR/NOT combine those key
// sets. That is exactly how the enhancer evaluates predicates:
//   leaf      -> distinct keys of the base query filtered by the leaf
//   AND       -> set intersection
//   OR        -> set union
//   NOT       -> complement against the base query's key universe
// For single-table leaf predicates this coincides with row-level SQL
// semantics, because the key determines the row of each base table.
//
// The set algebra, leaf caching, and probe accounting all live in
// ProbeEngine (key sets are dense bitmaps there; probes reduce to bitwise
// ops and popcount); QueryEnhancer is the thin façade the algorithms take,
// plus the literal SQL rewriting of §4.6 (Enhance).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/probe_engine.h"
#include "reldb/database.h"
#include "reldb/executor.h"
#include "reldb/expr.h"

namespace hypre {
namespace core {

class QueryEnhancer {
 public:
  /// \param db database to run against (must outlive the enhancer)
  /// \param base_query query skeleton (FROM/JOINs; an existing WHERE acts as
  ///        a hard constraint that every probe keeps)
  /// \param key_column the tuple identity column (e.g. "dblp.pid") used by
  ///        COUNT(DISTINCT ...) and key collection
  QueryEnhancer(const reldb::Database* db, reldb::Query base_query,
                std::string key_column)
      : engine_(db, std::move(base_query), std::move(key_column)) {}

  /// \brief The base query with `predicate` ANDed into its WHERE clause —
  /// the literal SQL rewriting of §4.6, for display and row-level execution.
  reldb::Query Enhance(const reldb::ExprPtr& predicate) const;

  /// \brief Number of distinct keys matching `predicate` under group-level
  /// semantics. Memoized.
  Result<size_t> CountMatching(const reldb::ExprPtr& predicate) const {
    return engine_.CountMatching(predicate);
  }

  /// \brief The matching keys under group-level semantics, sorted by the
  /// Value total order (deterministic).
  Result<std::vector<reldb::Value>> MatchingKeys(
      const reldb::ExprPtr& predicate) const {
    return engine_.MatchingKeys(predicate);
  }

  /// \brief The bitmap-backed engine, for algorithms that compose probe
  /// results with KeyBitmap handles directly.
  const ProbeEngine& probe_engine() const { return engine_; }

  /// \brief Catches the engine up with base-table mutations recorded since
  /// the last Refresh (see ProbeEngine::Refresh). Returns the new epoch.
  /// Never blocks on in-flight readers: with epoch pins held the journal
  /// suffix is deferred and the current epoch returned.
  Result<uint64_t> Refresh() { return engine_.Refresh(); }

  /// \brief Refresh that waits for in-flight readers to drain first — the
  /// checkpoint path (see ProbeEngine::RefreshBlocking).
  Result<uint64_t> RefreshBlocking() { return engine_.RefreshBlocking(); }

  /// \brief Takes a refcounted epoch pin for an in-flight enumeration (see
  /// ProbeEngine::PinEpoch): while held, a concurrent Refresh defers
  /// instead of resizing bitmaps out from under the run.
  Result<ProbeEngine::EpochPin> PinEpoch(bool refresh_first) {
    return engine_.PinEpoch(refresh_first);
  }

  const std::string& key_column() const { return engine_.key_column(); }
  const reldb::Query& base_query() const { return engine_.base_query(); }
  const reldb::Database* db() const { return engine_.db(); }

  /// \brief Consolidated snapshot of every probe counter (leaf queries,
  /// cache hits, batch activity) — the one statistics surface this class
  /// exposes; api::Session reports the per-request delta of it, and the
  /// telemetry registry folds the same deltas process-wide.
  ProbeStats stats() const { return engine_.stats(); }

  /// \brief Captures the engine's interned state for a durable snapshot
  /// (see ProbeEngine::CaptureSnapshotImage).
  EngineSnapshotImage CaptureSnapshotImage() const {
    return engine_.CaptureSnapshotImage();
  }
  /// \brief Applies a snapshot image to the freshly built engine (see
  /// ProbeEngine::RestoreSnapshotImage).
  Status RestoreSnapshotImage(const EngineSnapshotImage& image) {
    return engine_.RestoreSnapshotImage(image);
  }

 private:
  ProbeEngine engine_;
};

}  // namespace core
}  // namespace hypre
