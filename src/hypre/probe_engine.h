// Bitmap-backed probe engine for group-level predicate evaluation.
//
// The combination algorithms (PEPS, TA, exhaustive, combine-two,
// partially-combine-all, bias-random) issue thousands of count/key probes
// against the same base query. The engine makes those probes cheap:
//
//  1. Universe interning. The base query's distinct keys are scanned once
//     and interned into dense ids [0, N) through the executor's
//     dense-dictionary hook. Every key set is thereafter a word-packed
//     KeyBitmap of N bits.
//  2. Leaf bitmaps. Each leaf predicate runs against the database exactly
//     once (base query AND leaf, streaming dense ids straight into a
//     bitmap); the bitmap is cached under a canonical predicate key.
//  3. Set algebra. Group-level AND/OR/NOT (dissertation §4.6 semantics, see
//     query_enhancement.h) reduce to word-wise AND/OR/ANDNOT, and
//     CountMatching to popcount.
//
// Cache keys are canonical, not rendered SQL: commutative AND/OR children
// are sorted, mirrored comparisons (literal op column) are flipped, and IN
// lists are sorted, so structurally identical predicates that render
// differently share cache entries.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypre/key_bitmap.h"
#include "reldb/database.h"
#include "reldb/executor.h"
#include "reldb/expr.h"

namespace hypre {
namespace parallel {
class TaskPool;
}  // namespace parallel

namespace core {

class DeltaEngine;
struct DeltaOptions;

/// \brief One snapshot of every probe counter the engine and the batch
/// layer maintain — the consolidated statistics record reported per
/// request by the API layer (api::EnumerationResult). Counters are
/// monotone over an engine's lifetime; subtract two snapshots for a
/// per-request delta.
struct ProbeStats {
  /// Leaf-bitmap materializations against the database — one per DISTINCT
  /// canonical leaf per epoch rebuild (see the contract in ProbeEngine).
  size_t num_leaf_queries = 0;
  /// Probes answered from cached state with no DB work (memo hits plus
  /// every combination probe answered by the scalar or batch prober).
  size_t num_cache_hits = 0;
  /// Batch frontiers evaluated by BatchProber (CountBatch, CountExtensions,
  /// CountPairs, EvalBatch calls that reached a kernel).
  size_t num_batches = 0;
  /// Probes answered inside those batches (sum of frontier sizes); always
  /// <= num_cache_hits.
  size_t num_batched_probes = 0;
  /// Blocked shard passes the batch kernels walked (shards per batch,
  /// summed) — the unit the thread split and a future node split divide.
  size_t num_shard_passes = 0;

  ProbeStats operator-(const ProbeStats& earlier) const {
    return ProbeStats{num_leaf_queries - earlier.num_leaf_queries,
                      num_cache_hits - earlier.num_cache_hits,
                      num_batches - earlier.num_batches,
                      num_batched_probes - earlier.num_batched_probes,
                      num_shard_passes - earlier.num_shard_passes};
  }
};

/// \brief A serializable image of one engine's interned state — what the
/// durable storage layer persists per engine so a restarted process resumes
/// with a warm universe and leaf cache instead of re-interning. Captured by
/// ProbeEngine::CaptureSnapshotImage() and applied to a freshly constructed
/// engine by RestoreSnapshotImage().
struct EngineSnapshotImage {
  /// False when the engine never interned (nothing else is meaningful and
  /// restore is a no-op — the universe interns lazily on first probe).
  bool universe_ready = false;
  uint64_t epoch = 0;
  /// The delta subsystem's journal cursor at capture time; a restored
  /// engine resumes consuming the mutation journal here.
  uint64_t journal_cursor = 0;
  /// (key value, live) in dense-id order. The live flags are the universe
  /// bitmap; dead entries are tombstoned ids whose stale value must stay
  /// addressable without shadowing a live key.
  std::vector<std::pair<reldb::Value, bool>> keys;
  /// Tombstoned dense ids available for recycling, in free-list order.
  std::vector<uint32_t> free_ids;
  struct Leaf {
    /// The predicate rendered by Expr::ToString() — parse-compatible with
    /// sqlparse::ParsePredicate, so the expression (which the delta engine
    /// needs for re-evaluation) survives the round trip.
    std::string predicate_sql;
    std::vector<uint64_t> words;  // bitmap words, num_bits = keys.size()
  };
  std::vector<Leaf> leaves;
};

class ProbeEngine {
 public:
  /// \param db database to run against (must outlive the engine)
  /// \param base_query query skeleton (FROM/JOINs; an existing WHERE acts as
  ///        a hard constraint that every probe keeps)
  /// \param key_column the tuple identity column (e.g. "dblp.pid")
  ProbeEngine(const reldb::Database* db, reldb::Query base_query,
              std::string key_column);
  ~ProbeEngine();
  ProbeEngine(const ProbeEngine&) = delete;
  ProbeEngine& operator=(const ProbeEngine&) = delete;

  /// \brief Canonical cache key for a predicate: stable under whitespace,
  /// commutative AND/OR child order, IN-list order, and mirrored
  /// comparisons.
  static std::string CanonicalKey(const reldb::Expr& expr);

  /// \brief Number of distinct keys matching `predicate` (null = the whole
  /// universe) under group-level semantics. Memoized.
  Result<size_t> CountMatching(const reldb::ExprPtr& predicate) const;

  /// \brief The matching keys, sorted by the Value total order.
  Result<std::vector<reldb::Value>> MatchingKeys(
      const reldb::ExprPtr& predicate) const;

  /// \brief Evaluates `predicate` (null = universe) to a bitmap handle over
  /// the dense key ids. The algorithms hold these and compose them with
  /// KeyBitmap ops instead of re-probing.
  Result<KeyBitmap> EvalBitmap(const reldb::ExprPtr& predicate) const;

  /// \brief Bulk-populates the leaf cache for every leaf predicate reachable
  /// from `exprs` (AND/OR/NOT nodes are walked; null entries are skipped) in
  /// ONE pass over the executor: the base query runs once and every pending
  /// leaf is evaluated against each matching row. After the call, probes
  /// over these predicates do pure bitmap algebra — no per-probe DB work.
  /// Counts one leaf query per distinct uncached leaf (see the statistics
  /// contract below). Idempotent; already-cached leaves are not re-run.
  Status PrefetchLeaves(const std::vector<reldb::ExprPtr>& exprs) const;

  /// \brief Bitmap with every universe key set. Valid until the engine dies.
  Result<const KeyBitmap*> UniverseBitmap() const;

  /// \brief Size of the dense-id space (forces interning). This INCLUDES
  /// tombstoned ids awaiting recycling, so after deletes it may exceed the
  /// live key count — use CountMatching(nullptr) for the latter. Callers
  /// sizing bitmaps over dense ids (e.g. EvalBatch outputs) want exactly
  /// this value.
  Result<size_t> UniverseSize() const;

  /// \brief The key Value for a dense id. Only valid after any probe or
  /// UniverseSize()/UniverseBitmap() call.
  const reldb::Value& KeyAt(uint32_t id) const { return dict_.value(id); }

  /// \brief The keys of a bitmap, sorted by the Value total order
  /// (deterministic, same order MatchingKeys uses).
  std::vector<reldb::Value> KeysOf(const KeyBitmap& bits) const;

  const std::string& key_column() const { return key_column_; }
  const reldb::Query& base_query() const { return base_query_; }
  const reldb::Database* db() const { return db_; }

  // --- Incremental maintenance (delta subsystem) --------------------------
  //
  // The engine is a snapshot of the database: cached state (the universe
  // and previously materialized leaves) keeps answering against the state
  // of the last Refresh (or interning) even after the base tables mutate.
  // A leaf FIRST touched after a mutation reads current table rows, so the
  // contract for exact snapshots is: mutate, Refresh(), then probe —
  // Refresh() also reconciles any such mixed-state leaf exactly.
  // Refresh() consumes the database's mutation journal and patches the
  // interned universe and every cached leaf bitmap in place — dense-id
  // recycling for deleted keys, tail growth for new keys, per-epoch delta
  // evaluation restricted to the mutated rows — falling back to a full
  // epoch rebuild once tombstones pass the configured threshold. See
  // delta_engine.h for the mechanics.

  /// \brief Applies all journal entries recorded since the last Refresh (or
  /// since universe interning) and advances the epoch if anything relevant
  /// changed. Returns the current epoch. Must not be called while an
  /// algorithm run is in flight (algorithms hold bitmap handles that a
  /// refresh may resize or remap).
  Result<uint64_t> Refresh();

  /// \brief Monotone counter of applied refreshes; probers revalidate their
  /// cached bitmap handles against this.
  uint64_t epoch() const { return epoch_; }

  /// \brief True if any interned key is currently tombstoned (deleted from
  /// the universe but its dense id not yet recycled). When true, cached leaf
  /// bitmaps may carry stale bits at tombstoned ids and every probe must
  /// AND the live mask (UniverseBitmap) — the engine's own evaluation and
  /// the combination/batch probers all do.
  bool has_tombstones() const { return num_tombstones_ > 0; }
  size_t num_tombstones() const { return num_tombstones_; }

  // --- Durable storage hooks ----------------------------------------------

  /// \brief Captures the interned state (dictionary, live mask, free ids,
  /// leaf cache, epoch, journal cursor) for persistence. Cheap relative to
  /// re-interning; never touches the database.
  EngineSnapshotImage CaptureSnapshotImage() const;

  /// \brief Applies a captured image to this engine. Only valid on a
  /// freshly constructed engine (nothing interned yet); the image's leaf
  /// SQL is re-parsed, so a malformed image fails closed without mutating
  /// the engine's probe-visible state.
  Status RestoreSnapshotImage(const EngineSnapshotImage& image);

  /// \brief The delta subsystem (journal cursor, epoch statistics,
  /// compaction counters).
  const DeltaEngine& delta_engine() const { return *delta_; }
  /// \brief Tunes the delta subsystem (e.g. the tombstone ratio that forces
  /// an epoch rebuild).
  void set_delta_options(const DeltaOptions& options);

  /// \brief Attaches a work-stealing pool to the engine's allocation paths:
  /// leaf and prefetch bitmaps are then zeroed in parallel on the pool
  /// (first-touch NUMA placement — each page lands on the node of the
  /// worker that later probes it), and the delta layer's tail-growth resize
  /// fans the per-leaf work out. `max_threads` caps the slots used (0 =
  /// all). The pool is not owned and must outlive the engine's probe calls;
  /// null detaches. Const because attachment is a performance hint, not
  /// observable state (api::Session attaches through its const engine ref).
  void set_task_pool(parallel::TaskPool* pool, size_t max_threads = 0) const {
    pool_ = pool;
    pool_threads_ = max_threads;
  }
  parallel::TaskPool* task_pool() const { return pool_; }
  size_t task_pool_threads() const { return pool_threads_; }

  // Probe statistics contract:
  //  * num_leaf_queries counts leaf-bitmap materializations against the
  //    database, exactly one per DISTINCT canonical leaf — whether the leaf
  //    was loaded by its own query (LeafBitmap miss) or as part of one bulk
  //    PrefetchLeaves pass. The one-time universe interning scan is not
  //    counted, and neither are the delta passes of an incremental
  //    Refresh(); an epoch-compaction rebuild clears the leaf cache, so the
  //    "one query per distinct leaf" accounting restarts per epoch rebuild.
  //    This holds for scalar, batched, and prefetched probing alike.
  //  * num_cache_hits counts probes answered from cached state with no DB
  //    work: CountMatching memo hits, plus every combination probe answered
  //    by CombinationProber::Count or a BatchProber batch (one per
  //    combination/candidate/pair in the frontier, consumed by the caller
  //    or not). Raw KeyBitmap algebra done by callers outside the probe
  //    layer is never counted, so the ABSOLUTE hit count of an algorithm
  //    may differ between its batched and scalar modes (e.g. PEPS answers
  //    its scalar pair table through raw AndCount) — the per-call
  //    accounting, not cross-mode equality, is the contract.

  /// \brief Number of leaf-predicate probes executed against the database
  /// (the one-time universe interning scan is not counted).
  size_t num_leaf_queries() const { return num_leaf_queries_; }
  /// \brief Number of count probes answered from the memo cache.
  size_t num_cache_hits() const { return num_cache_hits_; }
  /// \brief One consolidated snapshot of every probe counter (leaf queries,
  /// cache hits, batch layer activity). The API layer subtracts two
  /// snapshots to report per-request statistics.
  ProbeStats stats() const {
    return ProbeStats{num_leaf_queries_, num_cache_hits_, num_batches_,
                      num_batched_probes_, num_shard_passes_};
  }
  /// \brief Records `n` probes answered from cached bitmaps (no DB work) by
  /// the combination/batch probe layer (see the statistics contract above).
  void NoteProbesAnswered(size_t n) const { num_cache_hits_ += n; }
  /// \brief Records one batch-kernel pass answering `probes` probes across
  /// `shard_passes` blocked shards. Counts the probes as cache hits (the
  /// batch layer never touches the DB) and folds the batch-shape counters
  /// into stats().
  void NoteBatchAnswered(size_t probes, size_t shard_passes) const {
    num_cache_hits_ += probes;
    num_batches_ += 1;
    num_batched_probes_ += probes;
    num_shard_passes_ += shard_passes;
  }

 private:
  friend class DeltaEngine;  // patches the interned state on Refresh

  /// One cached leaf: the bitmap plus the expression it was evaluated from
  /// (retained so the delta engine can re-evaluate the leaf against mutated
  /// rows only).
  struct LeafEntry {
    reldb::ExprPtr expr;
    std::unique_ptr<KeyBitmap> bits;
  };

  Status EnsureUniverse() const;
  Result<const KeyBitmap*> LeafBitmap(const reldb::ExprPtr& expr) const;
  Result<KeyBitmap> Eval(const reldb::ExprPtr& expr) const;
  /// Rebuilds sorted_ids_/rank_of_id_ from the dictionary (after the delta
  /// engine added or recycled keys).
  void RebuildKeyOrder() const;

  const reldb::Database* db_;
  reldb::Executor executor_;
  reldb::Query base_query_;
  std::string key_column_;

  mutable reldb::DenseDictionary dict_;
  mutable bool universe_ready_ = false;
  // The LIVE mask: one bit per interned dense id, cleared while the id is
  // tombstoned. Doubles as the "whole universe" probe answer.
  mutable KeyBitmap universe_;
  mutable size_t num_tombstones_ = 0;
  // Tombstoned dense ids available for recycling (their dictionary mapping
  // was Forgotten; the delta engine scrubs their stale leaf bits before
  // rebinding them to a new key).
  mutable std::vector<uint32_t> free_ids_;
  mutable uint64_t epoch_ = 0;
  // Dense ids sorted by the Value total order, for deterministic key output,
  // plus the inverse permutation (id -> rank) so KeysOf can sort just the
  // set bits instead of scanning the whole universe.
  mutable std::vector<uint32_t> sorted_ids_;
  mutable std::vector<uint32_t> rank_of_id_;
  // Canonical leaf key -> retained expr + matching-key bitmap.
  mutable std::unordered_map<std::string, LeafEntry> leaf_cache_;
  mutable std::unordered_map<std::string, size_t> count_cache_;
  mutable size_t num_leaf_queries_ = 0;
  mutable size_t num_cache_hits_ = 0;
  mutable size_t num_batches_ = 0;
  mutable size_t num_batched_probes_ = 0;
  mutable size_t num_shard_passes_ = 0;
  // First-touch allocation pool (see set_task_pool); null = inline zeroing.
  mutable parallel::TaskPool* pool_ = nullptr;
  mutable size_t pool_threads_ = 0;
  std::unique_ptr<DeltaEngine> delta_;
};

}  // namespace core
}  // namespace hypre
