// Bitmap-backed probe engine for group-level predicate evaluation.
//
// The combination algorithms (PEPS, TA, exhaustive, combine-two,
// partially-combine-all, bias-random) issue thousands of count/key probes
// against the same base query. The engine makes those probes cheap:
//
//  1. Universe interning. The base query's distinct keys are scanned once
//     and interned into dense ids [0, N) through the executor's
//     dense-dictionary hook. Every key set is thereafter a word-packed
//     KeyBitmap of N bits.
//  2. Leaf bitmaps. Each leaf predicate runs against the database exactly
//     once (base query AND leaf, streaming dense ids straight into a
//     bitmap); the bitmap is cached under a canonical predicate key.
//  3. Set algebra. Group-level AND/OR/NOT (dissertation §4.6 semantics, see
//     query_enhancement.h) reduce to word-wise AND/OR/ANDNOT, and
//     CountMatching to popcount.
//
// Cache keys are canonical, not rendered SQL: commutative AND/OR children
// are sorted, mirrored comparisons (literal op column) are flipped, and IN
// lists are sorted, so structurally identical predicates that render
// differently share cache entries.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypre/key_bitmap.h"
#include "reldb/database.h"
#include "reldb/executor.h"
#include "reldb/expr.h"

namespace hypre {
namespace parallel {
class TaskPool;
}  // namespace parallel

namespace core {

class DeltaEngine;
struct DeltaOptions;

/// \brief One snapshot of every probe counter the engine and the batch
/// layer maintain — the consolidated statistics record reported per
/// request by the API layer (api::EnumerationResult). Engine counters are
/// monotone over an engine's lifetime; per-request deltas are collected
/// exactly through a ScopedProbeStatsCollector (snapshot subtraction is
/// only valid when one request at a time touches the engine).
struct ProbeStats {
  /// Leaf-bitmap materializations against the database — one per DISTINCT
  /// canonical leaf per epoch rebuild (see the contract in ProbeEngine).
  size_t num_leaf_queries = 0;
  /// Probes answered from cached state with no DB work (memo hits plus
  /// every combination probe answered by the scalar or batch prober).
  size_t num_cache_hits = 0;
  /// Batch frontiers evaluated by BatchProber (CountBatch, CountExtensions,
  /// CountPairs, EvalBatch calls that reached a kernel).
  size_t num_batches = 0;
  /// Probes answered inside those batches (sum of frontier sizes); always
  /// <= num_cache_hits.
  size_t num_batched_probes = 0;
  /// Blocked shard passes the batch kernels walked (shards per batch,
  /// summed) — the unit the thread split and a future node split divide.
  size_t num_shard_passes = 0;

  ProbeStats operator-(const ProbeStats& earlier) const {
    return ProbeStats{num_leaf_queries - earlier.num_leaf_queries,
                      num_cache_hits - earlier.num_cache_hits,
                      num_batches - earlier.num_batches,
                      num_batched_probes - earlier.num_batched_probes,
                      num_shard_passes - earlier.num_shard_passes};
  }
};

namespace internal {
/// The thread's active per-request ProbeStats sink slot. Constant-initialized
/// thread_local behind an inline accessor so the per-probe counting sites
/// compile down to one TLS load and a branch — an out-of-line call here costs
/// double-digit percent on the warm probe path.
inline ProbeStats*& ActiveProbeStatsSlot() {
  static thread_local ProbeStats* slot = nullptr;
  return slot;
}
}  // namespace internal

/// \brief The ProbeStats sink installed on this thread, or null. While a
/// sink is installed, every counting site in the engine and the batch layer
/// adds to the sink ONLY (a plain thread-local add, off the atomics); the
/// collector folds the request's totals back into the engine-lifetime
/// counters exactly once on destruction. This keeps per-request accounting
/// exact without subtracting engine-wide snapshots — the subtraction trick
/// double-counts (or goes negative) the moment two requests share an
/// engine — and keeps the per-probe cost at one TLS load.
inline ProbeStats* ActiveProbeStats() {
  return internal::ActiveProbeStatsSlot();
}

class ProbeEngine;

/// \brief Installs `sink` as this thread's per-request ProbeStats collector
/// for the scope, restoring whatever was active before on destruction (like
/// telemetry::ScopedTraceTarget). The collector is thread_local: all probe
/// accounting happens on the request thread (pool workers only zero and
/// scan bitmaps), so one collector per request is exact even when many
/// requests share one engine. On destruction the collected stats are folded
/// into `engine`'s lifetime counters (on every exit path, including
/// errors); until then the engine's counters lag by the in-flight request.
class ScopedProbeStatsCollector {
 public:
  ScopedProbeStatsCollector(const ProbeEngine* engine, ProbeStats* sink);
  ~ScopedProbeStatsCollector();
  ScopedProbeStatsCollector(const ScopedProbeStatsCollector&) = delete;
  ScopedProbeStatsCollector& operator=(const ScopedProbeStatsCollector&) =
      delete;

 private:
  const ProbeEngine* engine_;
  ProbeStats* sink_;
  ProbeStats* previous_;
};

/// \brief A serializable image of one engine's interned state — what the
/// durable storage layer persists per engine so a restarted process resumes
/// with a warm universe and leaf cache instead of re-interning. Captured by
/// ProbeEngine::CaptureSnapshotImage() and applied to a freshly constructed
/// engine by RestoreSnapshotImage().
struct EngineSnapshotImage {
  /// False when the engine never interned (nothing else is meaningful and
  /// restore is a no-op — the universe interns lazily on first probe).
  bool universe_ready = false;
  uint64_t epoch = 0;
  /// The delta subsystem's journal cursor at capture time; a restored
  /// engine resumes consuming the mutation journal here.
  uint64_t journal_cursor = 0;
  /// (key value, live) in dense-id order. The live flags are the universe
  /// bitmap; dead entries are tombstoned ids whose stale value must stay
  /// addressable without shadowing a live key.
  std::vector<std::pair<reldb::Value, bool>> keys;
  /// Tombstoned dense ids available for recycling, in free-list order.
  std::vector<uint32_t> free_ids;
  struct Leaf {
    /// The predicate rendered by Expr::ToString() — parse-compatible with
    /// sqlparse::ParsePredicate, so the expression (which the delta engine
    /// needs for re-evaluation) survives the round trip.
    std::string predicate_sql;
    std::vector<uint64_t> words;  // bitmap words, num_bits = keys.size()
  };
  std::vector<Leaf> leaves;
};

class ProbeEngine {
 public:
  /// \param db database to run against (must outlive the engine)
  /// \param base_query query skeleton (FROM/JOINs; an existing WHERE acts as
  ///        a hard constraint that every probe keeps)
  /// \param key_column the tuple identity column (e.g. "dblp.pid")
  ProbeEngine(const reldb::Database* db, reldb::Query base_query,
              std::string key_column);
  ~ProbeEngine();
  ProbeEngine(const ProbeEngine&) = delete;
  ProbeEngine& operator=(const ProbeEngine&) = delete;

  /// \brief Canonical cache key for a predicate: stable under whitespace,
  /// commutative AND/OR child order, IN-list order, and mirrored
  /// comparisons.
  static std::string CanonicalKey(const reldb::Expr& expr);

  /// \brief Number of distinct keys matching `predicate` (null = the whole
  /// universe) under group-level semantics. Memoized.
  Result<size_t> CountMatching(const reldb::ExprPtr& predicate) const;

  /// \brief The matching keys, sorted by the Value total order.
  Result<std::vector<reldb::Value>> MatchingKeys(
      const reldb::ExprPtr& predicate) const;

  /// \brief Evaluates `predicate` (null = universe) to a bitmap handle over
  /// the dense key ids. The algorithms hold these and compose them with
  /// KeyBitmap ops instead of re-probing.
  Result<KeyBitmap> EvalBitmap(const reldb::ExprPtr& predicate) const;

  /// \brief Bulk-populates the leaf cache for every leaf predicate reachable
  /// from `exprs` (AND/OR/NOT nodes are walked; null entries are skipped) in
  /// ONE pass over the executor: the base query runs once and every pending
  /// leaf is evaluated against each matching row. After the call, probes
  /// over these predicates do pure bitmap algebra — no per-probe DB work.
  /// Counts one leaf query per distinct uncached leaf (see the statistics
  /// contract below). Idempotent; already-cached leaves are not re-run.
  Status PrefetchLeaves(const std::vector<reldb::ExprPtr>& exprs) const;

  /// \brief Bitmap with every universe key set. Valid until the engine dies.
  Result<const KeyBitmap*> UniverseBitmap() const;

  /// \brief Size of the dense-id space (forces interning). This INCLUDES
  /// tombstoned ids awaiting recycling, so after deletes it may exceed the
  /// live key count — use CountMatching(nullptr) for the latter. Callers
  /// sizing bitmaps over dense ids (e.g. EvalBatch outputs) want exactly
  /// this value.
  Result<size_t> UniverseSize() const;

  /// \brief The key Value for a dense id. Only valid after any probe or
  /// UniverseSize()/UniverseBitmap() call.
  const reldb::Value& KeyAt(uint32_t id) const { return dict_.value(id); }

  /// \brief The keys of a bitmap, sorted by the Value total order
  /// (deterministic, same order MatchingKeys uses).
  std::vector<reldb::Value> KeysOf(const KeyBitmap& bits) const;

  const std::string& key_column() const { return key_column_; }
  const reldb::Query& base_query() const { return base_query_; }
  const reldb::Database* db() const { return db_; }

  // --- Incremental maintenance (delta subsystem) --------------------------
  //
  // The engine is a snapshot of the database: cached state (the universe
  // and previously materialized leaves) keeps answering against the state
  // of the last Refresh (or interning) even after the base tables mutate.
  // A leaf FIRST touched after a mutation reads current table rows, so the
  // contract for exact snapshots is: mutate, Refresh(), then probe —
  // Refresh() also reconciles any such mixed-state leaf exactly.
  // Refresh() consumes the database's mutation journal and patches the
  // interned universe and every cached leaf bitmap in place — dense-id
  // recycling for deleted keys, tail growth for new keys, per-epoch delta
  // evaluation restricted to the mutated rows — falling back to a full
  // epoch rebuild once tombstones pass the configured threshold. See
  // delta_engine.h for the mechanics.
  //
  // EPOCH PINS make that safe under concurrent readers: an in-flight
  // enumeration holds a refcounted pin on the engine's epoch, and journal
  // application — which resizes, remaps, or drops the very bitmaps the
  // algorithms hold handles to — runs ONLY while the pin count is zero.
  // Refresh() called with readers pinned returns promptly with the current
  // epoch and marks the journal suffix DEFERRED; the suffix is applied by
  // the next refresh-bearing entry point that finds the pin count at zero
  // (a refresh-first PinEpoch, another Refresh(), or RefreshBlocking()).
  // Readers therefore never block a refresh and a refresh never invalidates
  // a reader — the versioned-read discipline of Berkholz et al.'s
  // FO+MOD-under-updates pattern, with the "old version" being the current
  // bitmaps kept alive until the last reader drains.

  /// \brief A refcounted hold on the engine's current epoch. While any pin
  /// is alive the interned state (universe, dense ids, cached leaf bitmaps,
  /// key order) is immutable — journal application is deferred — so bitmap
  /// handles taken under the pin stay valid for the pin's lifetime.
  /// Move-only RAII; destruction (or Release()) drops the hold.
  class EpochPin {
   public:
    EpochPin() = default;
    EpochPin(EpochPin&& other) noexcept
        : engine_(other.engine_), epoch_(other.epoch_) {
      other.engine_ = nullptr;
    }
    EpochPin& operator=(EpochPin&& other) noexcept {
      if (this != &other) {
        Release();
        engine_ = other.engine_;
        epoch_ = other.epoch_;
        other.engine_ = nullptr;
      }
      return *this;
    }
    EpochPin(const EpochPin&) = delete;
    EpochPin& operator=(const EpochPin&) = delete;
    ~EpochPin() { Release(); }

    /// \brief Drops the hold early (idempotent).
    void Release() {
      if (engine_ != nullptr) {
        engine_->Unpin();
        engine_ = nullptr;
      }
    }
    bool pinned() const { return engine_ != nullptr; }
    /// \brief The epoch this pin froze (0 for an empty pin).
    uint64_t epoch() const { return epoch_; }

   private:
    friend class ProbeEngine;
    EpochPin(const ProbeEngine* engine, uint64_t epoch)
        : engine_(engine), epoch_(epoch) {}
    const ProbeEngine* engine_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// \brief Takes a refcounted hold on the engine's epoch for an in-flight
  /// enumeration. With `refresh_first` and no other reader pinned, the
  /// journal suffix (including any deferred one) is applied before pinning
  /// — the read-your-writes path a mutating client expects. With
  /// `refresh_first` and readers already pinned, the refresh is DEFERRED
  /// (counted in num_deferred_refreshes) and the current epoch is pinned
  /// instead — the request probes the live snapshot rather than blocking
  /// behind the readers. Refresh-first pinning reads base tables when the
  /// journal is non-empty, so it belongs to the write side of the session's
  /// single-writer/multi-reader contract (see api/session.h).
  Result<EpochPin> PinEpoch(bool refresh_first);

  /// \brief Applies all journal entries recorded since the last Refresh (or
  /// since universe interning) and advances the epoch if anything relevant
  /// changed. Returns the resulting epoch. NEVER blocks on readers: if any
  /// epoch pin is held, the application is deferred (the current epoch is
  /// returned and the suffix applies when the pins drain).
  Result<uint64_t> Refresh();

  /// \brief Refresh() that WAITS for in-flight readers to drain and then
  /// applies the journal suffix unconditionally — the checkpoint/snapshot
  /// path, which must not capture state whose journal cursor lags the
  /// truncation point. Never call while holding an EpochPin on this engine
  /// (self-deadlock).
  Result<uint64_t> RefreshBlocking();

  /// \brief Monotone counter of applied refreshes; probers revalidate their
  /// cached bitmap handles against this.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief Epoch pins currently held by in-flight enumerations.
  size_t num_epoch_pins() const {
    std::lock_guard<std::mutex> lock(refresh_mu_);
    return pin_count_;
  }
  /// \brief True when a Refresh() was requested while readers were pinned
  /// and its journal suffix has not been applied yet. Checkpoints skip
  /// their round when this is set (the engine cursor lags the journal).
  bool has_deferred_refresh() const {
    std::lock_guard<std::mutex> lock(refresh_mu_);
    return refresh_deferred_;
  }
  /// \brief Refresh requests deferred because readers held the epoch.
  uint64_t num_deferred_refreshes() const {
    return num_deferred_refreshes_.load(std::memory_order_relaxed);
  }

  /// \brief True if any interned key is currently tombstoned (deleted from
  /// the universe but its dense id not yet recycled). When true, cached leaf
  /// bitmaps may carry stale bits at tombstoned ids and every probe must
  /// AND the live mask (UniverseBitmap) — the engine's own evaluation and
  /// the combination/batch probers all do.
  bool has_tombstones() const { return num_tombstones_ > 0; }
  size_t num_tombstones() const { return num_tombstones_; }

  // --- Durable storage hooks ----------------------------------------------

  /// \brief Captures the interned state (dictionary, live mask, free ids,
  /// leaf cache, epoch, journal cursor) for persistence. Cheap relative to
  /// re-interning; never touches the database.
  EngineSnapshotImage CaptureSnapshotImage() const;

  /// \brief Applies a captured image to this engine. Only valid on a
  /// freshly constructed engine (nothing interned yet); the image's leaf
  /// SQL is re-parsed, so a malformed image fails closed without mutating
  /// the engine's probe-visible state.
  Status RestoreSnapshotImage(const EngineSnapshotImage& image);

  /// \brief The delta subsystem (journal cursor, epoch statistics,
  /// compaction counters).
  const DeltaEngine& delta_engine() const { return *delta_; }
  /// \brief Tunes the delta subsystem (e.g. the tombstone ratio that forces
  /// an epoch rebuild).
  void set_delta_options(const DeltaOptions& options);

  /// \brief Attaches a work-stealing pool to the engine's allocation paths:
  /// leaf and prefetch bitmaps are then zeroed in parallel on the pool
  /// (first-touch NUMA placement — each page lands on the node of the
  /// worker that later probes it), and the delta layer's tail-growth resize
  /// fans the per-leaf work out. `max_threads` caps the slots used (0 =
  /// all). The pool is not owned and must outlive the engine's probe calls;
  /// null detaches. Const because attachment is a performance hint, not
  /// observable state (api::Session attaches through its const engine ref).
  /// The fields are atomic so a session may attach its lazily created pool
  /// while other requests are probing; per-REQUEST thread caps belong in
  /// ProbeOptions, not here (attachment is engine-lifetime, set once).
  void set_task_pool(parallel::TaskPool* pool, size_t max_threads = 0) const {
    pool_.store(pool, std::memory_order_release);
    pool_threads_.store(max_threads, std::memory_order_relaxed);
  }
  parallel::TaskPool* task_pool() const {
    return pool_.load(std::memory_order_acquire);
  }
  size_t task_pool_threads() const {
    return pool_threads_.load(std::memory_order_relaxed);
  }

  // Probe statistics contract:
  //  * num_leaf_queries counts leaf-bitmap materializations against the
  //    database, exactly one per DISTINCT canonical leaf — whether the leaf
  //    was loaded by its own query (LeafBitmap miss) or as part of one bulk
  //    PrefetchLeaves pass. The one-time universe interning scan is not
  //    counted, and neither are the delta passes of an incremental
  //    Refresh(); an epoch-compaction rebuild clears the leaf cache, so the
  //    "one query per distinct leaf" accounting restarts per epoch rebuild.
  //    This holds for scalar, batched, and prefetched probing alike.
  //  * num_cache_hits counts probes answered from cached state with no DB
  //    work: CountMatching memo hits, plus every combination probe answered
  //    by CombinationProber::Count or a BatchProber batch (one per
  //    combination/candidate/pair in the frontier, consumed by the caller
  //    or not). Raw KeyBitmap algebra done by callers outside the probe
  //    layer is never counted, so the ABSOLUTE hit count of an algorithm
  //    may differ between its batched and scalar modes (e.g. PEPS answers
  //    its scalar pair table through raw AndCount) — the per-call
  //    accounting, not cross-mode equality, is the contract.

  /// \brief Number of leaf-predicate probes executed against the database
  /// (the one-time universe interning scan is not counted).
  size_t num_leaf_queries() const {
    return num_leaf_queries_.load(std::memory_order_relaxed);
  }
  /// \brief Number of count probes answered from the memo cache.
  size_t num_cache_hits() const {
    return num_cache_hits_.load(std::memory_order_relaxed);
  }
  /// \brief One consolidated snapshot of every probe counter (leaf queries,
  /// cache hits, batch layer activity) over the engine's LIFETIME. The API
  /// layer reports per-request statistics through a
  /// ScopedProbeStatsCollector instead of subtracting two of these —
  /// snapshot subtraction is wrong once requests overlap.
  ProbeStats stats() const {
    return ProbeStats{num_leaf_queries_.load(std::memory_order_relaxed),
                      num_cache_hits_.load(std::memory_order_relaxed),
                      num_batches_.load(std::memory_order_relaxed),
                      num_batched_probes_.load(std::memory_order_relaxed),
                      num_shard_passes_.load(std::memory_order_relaxed)};
  }
  /// \brief Records `n` probes answered from cached bitmaps (no DB work) by
  /// the combination/batch probe layer (see the statistics contract above).
  /// With a collector installed this is a plain thread-local add; the
  /// collector folds into the engine atomics once per request.
  void NoteProbesAnswered(size_t n) const {
    if (ProbeStats* sink = ActiveProbeStats()) {
      sink->num_cache_hits += n;
      return;
    }
    num_cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \brief Records one batch-kernel pass answering `probes` probes across
  /// `shard_passes` blocked shards. Counts the probes as cache hits (the
  /// batch layer never touches the DB) and folds the batch-shape counters
  /// into stats().
  void NoteBatchAnswered(size_t probes, size_t shard_passes) const {
    if (ProbeStats* sink = ActiveProbeStats()) {
      sink->num_cache_hits += probes;
      sink->num_batches += 1;
      sink->num_batched_probes += probes;
      sink->num_shard_passes += shard_passes;
      return;
    }
    num_cache_hits_.fetch_add(probes, std::memory_order_relaxed);
    num_batches_.fetch_add(1, std::memory_order_relaxed);
    num_batched_probes_.fetch_add(probes, std::memory_order_relaxed);
    num_shard_passes_.fetch_add(shard_passes, std::memory_order_relaxed);
  }
  /// \brief Adds one request's collected stats into the lifetime counters;
  /// called by ~ScopedProbeStatsCollector.
  void FoldProbeStats(const ProbeStats& stats) const {
    num_leaf_queries_.fetch_add(stats.num_leaf_queries,
                                std::memory_order_relaxed);
    num_cache_hits_.fetch_add(stats.num_cache_hits, std::memory_order_relaxed);
    num_batches_.fetch_add(stats.num_batches, std::memory_order_relaxed);
    num_batched_probes_.fetch_add(stats.num_batched_probes,
                                  std::memory_order_relaxed);
    num_shard_passes_.fetch_add(stats.num_shard_passes,
                                std::memory_order_relaxed);
  }

 private:
  friend class DeltaEngine;  // patches the interned state on Refresh

  /// One cached leaf: the bitmap plus the expression it was evaluated from
  /// (retained so the delta engine can re-evaluate the leaf against mutated
  /// rows only).
  struct LeafEntry {
    reldb::ExprPtr expr;
    std::unique_ptr<KeyBitmap> bits;
  };

  Status EnsureUniverse() const;
  /// The interning body of EnsureUniverse; caller holds cache_mu_ unique.
  Status EnsureUniverseLocked() const;
  Result<const KeyBitmap*> LeafBitmap(const reldb::ExprPtr& expr) const;
  Result<KeyBitmap> Eval(const reldb::ExprPtr& expr) const;
  /// Rebuilds sorted_ids_/rank_of_id_ from the dictionary (after the delta
  /// engine added or recycled keys).
  void RebuildKeyOrder() const;
  /// Counts `n` leaf materializations into the thread's active per-request
  /// collector, or the engine counter when none is installed.
  void NoteLeafQueries(size_t n) const {
    if (ProbeStats* sink = ActiveProbeStats()) {
      sink->num_leaf_queries += n;
      return;
    }
    num_leaf_queries_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Applies the journal suffix; caller holds refresh_mu_ with
  /// pin_count_ == 0 (takes cache_mu_ unique around the delta pass).
  Result<uint64_t> ApplyRefreshLocked();
  /// Drops one epoch pin (EpochPin::Release).
  void Unpin() const;

  const reldb::Database* db_;
  reldb::Executor executor_;
  reldb::Query base_query_;
  std::string key_column_;

  // --- Concurrency (see the epoch-pin section above and ARCHITECTURE.md) --
  //
  // Lock order: refresh_mu_ before cache_mu_; never the reverse.
  //  * refresh_mu_ guards the pin count and deferral flag; journal
  //    application happens under it with pin_count_ == 0, so pin/unpin
  //    gives every pinned reader a happens-before edge to the last applied
  //    refresh (the non-atomic interned state below is safely published).
  //  * cache_mu_ guards the STRUCTURE of the two caches and interning:
  //    shared for lookups, unique for inserts (a cold leaf's DB query runs
  //    under the unique lock, keeping one-query-per-leaf exact under
  //    racing misses) and for refresh application. Entries are node-stable
  //    (unique_ptr payloads) and only erased at pin count zero, so leaf
  //    bitmap POINTERS handed out under a pin stay valid unlocked.
  mutable std::mutex refresh_mu_;
  mutable std::condition_variable pins_cv_;
  mutable size_t pin_count_ = 0;
  mutable bool refresh_deferred_ = false;
  mutable std::atomic<uint64_t> num_deferred_refreshes_{0};
  mutable std::shared_mutex cache_mu_;

  mutable reldb::DenseDictionary dict_;
  mutable std::atomic<bool> universe_ready_{false};
  // The LIVE mask: one bit per interned dense id, cleared while the id is
  // tombstoned. Doubles as the "whole universe" probe answer.
  mutable KeyBitmap universe_;
  mutable size_t num_tombstones_ = 0;
  // Tombstoned dense ids available for recycling (their dictionary mapping
  // was Forgotten; the delta engine scrubs their stale leaf bits before
  // rebinding them to a new key).
  mutable std::vector<uint32_t> free_ids_;
  mutable std::atomic<uint64_t> epoch_{0};
  // Dense ids sorted by the Value total order, for deterministic key output,
  // plus the inverse permutation (id -> rank) so KeysOf can sort just the
  // set bits instead of scanning the whole universe.
  mutable std::vector<uint32_t> sorted_ids_;
  mutable std::vector<uint32_t> rank_of_id_;
  // Canonical leaf key -> retained expr + matching-key bitmap.
  mutable std::unordered_map<std::string, LeafEntry> leaf_cache_;
  mutable std::unordered_map<std::string, size_t> count_cache_;
  mutable std::atomic<size_t> num_leaf_queries_{0};
  mutable std::atomic<size_t> num_cache_hits_{0};
  mutable std::atomic<size_t> num_batches_{0};
  mutable std::atomic<size_t> num_batched_probes_{0};
  mutable std::atomic<size_t> num_shard_passes_{0};
  // First-touch allocation pool (see set_task_pool); null = inline zeroing.
  mutable std::atomic<parallel::TaskPool*> pool_{nullptr};
  mutable std::atomic<size_t> pool_threads_{0};
  std::unique_ptr<DeltaEngine> delta_;
};

}  // namespace core
}  // namespace hypre
