// Preference SQL baseline (dissertation §1.3 / §2.5).
//
// The only prior system combining qualitative and quantitative preferences
// is Kiessling et al.'s Preference SQL, which HYPRE is evaluated against
// conceptually throughout the dissertation. This module implements the
// relevant subset of its PREFERRING clause so the comparison is runnable:
//
//   PREFERRING <pref> [AND <pref>]... [PRIOR TO <pref> [AND <pref>]...]
//   <pref> := <predicate>                      (soft constraint)
//           | <predicate> ELSE <predicate>     (qualitative: first preferred)
//
// Semantics implemented (best-match / BMO-style):
//  * each soft predicate contributes an error per tuple: 0 when satisfied;
//    for BETWEEN/comparisons on numeric columns, the normalized distance to
//    satisfaction (capped at 1); 1 for violated categorical predicates;
//  * ELSE halves the error of a tuple that satisfies the fallback;
//  * predicates in one PRIOR TO block are summed; blocks are compared
//    lexicographically (earlier blocks strictly dominate later ones);
//  * tuples are returned ascending by that lexicographic error, i.e. the
//    best-matching tuples first, optionally truncated TOP k.
//
// The point of the baseline (and of Example 5): Preference SQL has no
// intensity, so "strongly preferred" and "slightly preferred" are
// indistinguishable (P1 vs P3 in §1.3), and its distance semantics can rank
// a near-miss above a tuple that satisfies the *important* preferences —
// the anomaly HYPRE's intensities fix.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/database.h"
#include "reldb/expr.h"

namespace hypre {
namespace core {

/// \brief One soft preference: a predicate with an optional ELSE fallback.
struct SoftPreference {
  reldb::ExprPtr predicate;
  reldb::ExprPtr else_predicate;  // may be null
};

/// \brief A parsed PREFERRING clause: blocks ordered by priority (block 0
/// strictly dominates block 1, etc. — the PRIOR TO chain).
struct PreferringClause {
  std::vector<std::vector<SoftPreference>> blocks;
  size_t top_k = 0;  // 0 = all
};

/// \brief Parses the PREFERRING clause surface syntax, e.g.
///   "price BETWEEN 7000 AND 16000 AND mileage BETWEEN 20000 AND 50000
///    PRIOR TO make IN ('BMW', 'Honda') TOP 3"
/// or with a qualitative preference:
///   "venue IN ('CIKM') ELSE venue IN ('SIGMOD') PRIOR TO year > 2010".
Result<PreferringClause> ParsePreferring(const std::string& clause);

/// \brief A result row with its per-block error vector.
struct PreferenceSqlRow {
  reldb::RowId row = 0;
  std::vector<double> block_errors;
};

/// \brief Evaluates the clause over one table, returning rows sorted by the
/// lexicographic block-error order (best first, ties in row order).
Result<std::vector<PreferenceSqlRow>> EvaluatePreferring(
    const reldb::Table& table, const PreferringClause& clause);

}  // namespace core
}  // namespace hypre
