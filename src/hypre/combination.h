// Preference combinations: mixed AND/OR clauses with combined intensity.
//
// A combination is structured as AND-of-OR-groups (dissertation §4.6):
// predicates over the same attribute are OR-combined inside one group,
// groups over different attributes are AND-combined. The combined intensity
// follows the same structure: f_or folds within a group (order dependent,
// Proposition 2), f_and across groups (order independent, Proposition 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/key_bitmap.h"
#include "hypre/preference.h"
#include "hypre/probe_engine.h"
#include "reldb/expr.h"

namespace hypre {
namespace core {

/// \brief A combination of preferences from a fixed preference list; members
/// are indices into that list.
struct Combination {
  struct Group {
    std::string attribute_key;
    std::vector<size_t> members;  // OR-combined, in insertion order
  };
  std::vector<Group> groups;  // AND-combined

  size_t NumPredicates() const;
  bool ContainsAttribute(const std::string& attribute_key) const;
  bool ContainsMember(size_t index) const;
  /// \brief True if at least two groups exist (i.e. the rendered clause
  /// contains an AND).
  bool HasAnd() const { return groups.size() > 1; }
  /// \brief Sorted member list (identity of the combination for dedup).
  std::vector<size_t> SortedMembers() const;
};

/// \brief Builds expressions and intensities for combinations over a fixed
/// preference list. The list must outlive the combiner.
class Combiner {
 public:
  explicit Combiner(const std::vector<PreferenceAtom>* preferences)
      : preferences_(preferences) {}

  const std::vector<PreferenceAtom>& preferences() const {
    return *preferences_;
  }

  /// \brief Combination of a single preference.
  Combination Single(size_t index) const;

  /// \brief AND-extends the combination with a new single-member group.
  Combination AndExtend(const Combination& base, size_t index) const;

  /// \brief OR-inserts the preference into the group with the matching
  /// attribute key (appending a new group if none matches — that only
  /// happens when callers bypass the same-attribute rule deliberately).
  Combination OrInto(const Combination& base, size_t index) const;

  /// \brief Mixed clause over `members` in order: same attribute -> OR into
  /// the existing group, new attribute -> AND a new group (§4.6 rule).
  Combination MixedClause(const std::vector<size_t>& members) const;

  /// \brief AND-of-OR-groups expression for the combination.
  reldb::ExprPtr BuildExpr(const Combination& combination) const;

  /// \brief Combined intensity: f_or fold within groups (insertion order),
  /// f_and across groups.
  double ComputeIntensity(const Combination& combination) const;

  /// \brief SQL text of BuildExpr.
  std::string ToSql(const Combination& combination) const;

 private:
  const std::vector<PreferenceAtom>* preferences_;
};

/// \brief Bitmap-backed prober over a fixed preference list: materializes
/// each preference's key bitmap (lazily, once per engine epoch) through the
/// probe engine, then answers combination probes with word-wise OR within
/// groups and AND across groups — the same group-level semantics as
/// engine-evaluating BuildExpr(), without rebuilding and re-walking an
/// expression tree per probe.
///
/// Epoch consistency: the prober revalidates its cached per-preference
/// bitmaps against ProbeEngine::epoch() on every access, so after a
/// Refresh() the next probe transparently re-derives them from the patched
/// leaf cache (pure bitmap algebra, no DB work unless the refresh
/// compacted). When the engine carries tombstoned keys, every probe result
/// additionally ANDs the engine's live mask, keeping deleted keys out even
/// of stale-bit corners.
class CombinationProber {
 public:
  /// `combiner` and `engine` must outlive the prober.
  CombinationProber(const Combiner* combiner, const ProbeEngine* engine)
      : combiner_(combiner), engine_(engine) {}

  /// \brief Bulk-prefetches every preference's leaf bitmaps through
  /// ProbeEngine::PrefetchLeaves (ONE pass over the executor instead of one
  /// query per leaf) and materializes all per-preference bitmaps from the
  /// warmed cache. Idempotent; call before an algorithm starts probing.
  Status PrefetchAll() const;

  /// \brief Key bitmap of one preference (the combination leaf handle).
  Result<const KeyBitmap*> PreferenceBits(size_t index) const;

  /// \brief Evaluates the combination (AND of OR-groups) into `out`,
  /// reusing its storage —
  /// the per-probe path for hot loops (PEPS expansion, Top-K walks) that
  /// would otherwise allocate a bitmap per probe.
  Status BitsInto(const Combination& combination, KeyBitmap* out) const;

  /// \brief Number of matching keys. Pure-AND combinations (every group a
  /// single member, any chain length) short-cut to one fused multi-operand
  /// AND+popcount pass without materializing a scratch bitmap; only mixed
  /// AND/OR shapes fall back to BitsInto. Each call counts as one answered
  /// probe in the engine's statistics.
  Result<size_t> Count(const Combination& combination) const;

  const ProbeEngine& engine() const { return *engine_; }

 private:
  const Combiner* combiner_;
  const ProbeEngine* engine_;
  // Lazily materialized per-preference bitmaps, indexed like the list;
  // dropped wholesale when the engine epoch moves past cached_epoch_.
  mutable std::vector<std::unique_ptr<KeyBitmap>> member_bits_;
  mutable uint64_t cached_epoch_ = 0;
  // Reused accumulators for BitsInto (OR-group) and Count.
  mutable KeyBitmap group_scratch_;
  mutable KeyBitmap count_scratch_;
  // Reused operand list for the pure-AND-chain Count shortcut.
  mutable std::vector<const KeyBitmap*> and_operands_;
};

}  // namespace core
}  // namespace hypre
