// Preference combinations: mixed AND/OR clauses with combined intensity.
//
// A combination is structured as AND-of-OR-groups (dissertation §4.6):
// predicates over the same attribute are OR-combined inside one group,
// groups over different attributes are AND-combined. The combined intensity
// follows the same structure: f_or folds within a group (order dependent,
// Proposition 2), f_and across groups (order independent, Proposition 1).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/preference.h"
#include "reldb/expr.h"

namespace hypre {
namespace core {

/// \brief A combination of preferences from a fixed preference list; members
/// are indices into that list.
struct Combination {
  struct Group {
    std::string attribute_key;
    std::vector<size_t> members;  // OR-combined, in insertion order
  };
  std::vector<Group> groups;  // AND-combined

  size_t NumPredicates() const;
  bool ContainsAttribute(const std::string& attribute_key) const;
  bool ContainsMember(size_t index) const;
  /// \brief True if at least two groups exist (i.e. the rendered clause
  /// contains an AND).
  bool HasAnd() const { return groups.size() > 1; }
  /// \brief Sorted member list (identity of the combination for dedup).
  std::vector<size_t> SortedMembers() const;
};

/// \brief Builds expressions and intensities for combinations over a fixed
/// preference list. The list must outlive the combiner.
class Combiner {
 public:
  explicit Combiner(const std::vector<PreferenceAtom>* preferences)
      : preferences_(preferences) {}

  const std::vector<PreferenceAtom>& preferences() const {
    return *preferences_;
  }

  /// \brief Combination of a single preference.
  Combination Single(size_t index) const;

  /// \brief AND-extends the combination with a new single-member group.
  Combination AndExtend(const Combination& base, size_t index) const;

  /// \brief OR-inserts the preference into the group with the matching
  /// attribute key (appending a new group if none matches — that only
  /// happens when callers bypass the same-attribute rule deliberately).
  Combination OrInto(const Combination& base, size_t index) const;

  /// \brief Mixed clause over `members` in order: same attribute -> OR into
  /// the existing group, new attribute -> AND a new group (§4.6 rule).
  Combination MixedClause(const std::vector<size_t>& members) const;

  /// \brief AND-of-OR-groups expression for the combination.
  reldb::ExprPtr BuildExpr(const Combination& combination) const;

  /// \brief Combined intensity: f_or fold within groups (insertion order),
  /// f_and across groups.
  double ComputeIntensity(const Combination& combination) const;

  /// \brief SQL text of BuildExpr.
  std::string ToSql(const Combination& combination) const;

 private:
  const std::vector<PreferenceAtom>* preferences_;
};

}  // namespace core
}  // namespace hypre
