#include "hypre/query_enhancement.h"

#include <algorithm>

namespace hypre {
namespace core {

using reldb::ExprKind;

reldb::Query QueryEnhancer::Enhance(const reldb::ExprPtr& predicate) const {
  reldb::Query query = base_query_;
  if (query.where && predicate) {
    query.where = reldb::MakeAnd(query.where, predicate);
  } else if (predicate) {
    query.where = predicate;
  }
  return query;
}

Result<const QueryEnhancer::KeySet*> QueryEnhancer::Universe() const {
  if (universe_ == nullptr) {
    ++num_leaf_queries_;
    HYPRE_ASSIGN_OR_RETURN(std::vector<reldb::Value> keys,
                           executor_.DistinctValues(base_query_, key_column_));
    universe_ = std::make_unique<KeySet>(keys.begin(), keys.end());
  }
  return universe_.get();
}

Result<const QueryEnhancer::KeySet*> QueryEnhancer::EvalLeaf(
    const reldb::ExprPtr& expr) const {
  std::string key = expr->ToString();
  auto it = leaf_cache_.find(key);
  if (it != leaf_cache_.end()) return it->second.get();
  ++num_leaf_queries_;
  reldb::Query query = base_query_;
  query.where = query.where ? reldb::MakeAnd(query.where, expr) : expr;
  HYPRE_ASSIGN_OR_RETURN(std::vector<reldb::Value> keys,
                         executor_.DistinctValues(query, key_column_));
  auto set = std::make_unique<KeySet>(keys.begin(), keys.end());
  const KeySet* ptr = set.get();
  leaf_cache_.emplace(std::move(key), std::move(set));
  return ptr;
}

Result<QueryEnhancer::KeySet> QueryEnhancer::EvalKeySet(
    const reldb::ExprPtr& expr) const {
  switch (expr->kind()) {
    case ExprKind::kAnd: {
      const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
      bool first = true;
      KeySet acc;
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(KeySet child_set, EvalKeySet(child));
        if (first) {
          acc = std::move(child_set);
          first = false;
        } else {
          KeySet next;
          const KeySet& small = acc.size() <= child_set.size() ? acc
                                                               : child_set;
          const KeySet& large = acc.size() <= child_set.size() ? child_set
                                                               : acc;
          for (const auto& v : small) {
            if (large.count(v) > 0) next.insert(v);
          }
          acc = std::move(next);
        }
        if (acc.empty()) break;  // short-circuit
      }
      return acc;
    }
    case ExprKind::kOr: {
      const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
      KeySet acc;
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(KeySet child_set, EvalKeySet(child));
        acc.insert(child_set.begin(), child_set.end());
      }
      return acc;
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const reldb::NotExpr&>(*expr);
      HYPRE_ASSIGN_OR_RETURN(KeySet child_set, EvalKeySet(n.child()));
      HYPRE_ASSIGN_OR_RETURN(const KeySet* universe, Universe());
      KeySet acc;
      for (const auto& v : *universe) {
        if (child_set.count(v) == 0) acc.insert(v);
      }
      return acc;
    }
    default: {
      HYPRE_ASSIGN_OR_RETURN(const KeySet* leaf, EvalLeaf(expr));
      return *leaf;
    }
  }
}

Result<size_t> QueryEnhancer::CountMatching(
    const reldb::ExprPtr& predicate) const {
  std::string key = predicate ? predicate->ToString() : "";
  auto it = count_cache_.find(key);
  if (it != count_cache_.end()) {
    ++num_cache_hits_;
    return it->second;
  }
  size_t count;
  if (!predicate) {
    HYPRE_ASSIGN_OR_RETURN(const KeySet* universe, Universe());
    count = universe->size();
  } else {
    HYPRE_ASSIGN_OR_RETURN(KeySet set, EvalKeySet(predicate));
    count = set.size();
  }
  count_cache_.emplace(std::move(key), count);
  return count;
}

Result<std::vector<reldb::Value>> QueryEnhancer::MatchingKeys(
    const reldb::ExprPtr& predicate) const {
  KeySet set;
  if (!predicate) {
    HYPRE_ASSIGN_OR_RETURN(const KeySet* universe, Universe());
    set = *universe;
  } else {
    HYPRE_ASSIGN_OR_RETURN(set, EvalKeySet(predicate));
  }
  std::vector<reldb::Value> out(set.begin(), set.end());
  std::sort(out.begin(), out.end(),
            [](const reldb::Value& a, const reldb::Value& b) {
              return a.Compare(b) < 0;
            });
  return out;
}

}  // namespace core
}  // namespace hypre
