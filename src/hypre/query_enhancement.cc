#include "hypre/query_enhancement.h"

namespace hypre {
namespace core {

reldb::Query QueryEnhancer::Enhance(const reldb::ExprPtr& predicate) const {
  reldb::Query query = base_query();
  if (query.where && predicate) {
    query.where = reldb::MakeAnd(query.where, predicate);
  } else if (predicate) {
    query.where = predicate;
  }
  return query;
}

}  // namespace core
}  // namespace hypre
