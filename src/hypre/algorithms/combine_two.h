// Combine-Two (dissertation §5.3.1, Algorithms 2 and 3).
//
// Exhaustively combines every ordered pair (i, j), i < j, of the user's
// preferences — the outer preference fixed, the inner one drawn from the
// remainder of the intensity-sorted list. Two semantics:
//   kAnd   : always AND (Algorithm 3) — some combinations are inapplicable
//            (two venues never co-occur on one paper);
//   kAndOr : same-attribute pairs use OR, different attributes use AND
//            (Algorithm 2) — eliminates the always-empty cases.
// Complexity O(N^2) probes (Proposition: C(N,2) pairs).
#pragma once

#include <vector>

#include "common/status.h"
#include "hypre/algorithms/common.h"
#include "hypre/batch_prober.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"

namespace hypre {
namespace core {

enum class CombineSemantics { kAnd, kAndOr };

/// \brief Runs Combine-Two over `preferences` (must be sorted descending by
/// intensity; use SortByIntensityDesc). Emits one record per pair in
/// generation order: (0,1), (0,2), ..., (1,2), (1,3), ... With
/// `options.batching` all C(N,2) pair combinations are submitted as one
/// batch frontier (bulk leaf prefetch + one blocked shard pass); records
/// are identical either way.
///
/// `control` bounds the probe spend (one probe per pair; only the admitted
/// generation-order prefix is probed, truncated otherwise) and streams each
/// record as it is produced. Prefer dispatching by name through
/// api::Session::Enumerate("combine-two") — this free function is the
/// compatibility entry point it wraps.
Result<std::vector<CombinationRecord>> CombineTwo(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, CombineSemantics semantics,
    const ProbeOptions& options = ProbeOptions{},
    const EnumerationControl& control = EnumerationControl{});

}  // namespace core
}  // namespace hypre
