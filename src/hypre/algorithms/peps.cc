#include "hypre/algorithms/peps.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace hypre {
namespace core {

Peps::Peps(const std::vector<PreferenceAtom>* preferences,
           const QueryEnhancer* enhancer)
    : preferences_(preferences), enhancer_(enhancer) {}

bool Peps::PairApplicable(size_t a, size_t b) const {
  size_t n = preferences_->size();
  return pair_applicable_[a * n + b];
}

Status Peps::PrecomputePairs() {
  if (pairs_ready_) return Status::OK();
  const auto& prefs = *preferences_;
  size_t n = prefs.size();
  Combiner combiner(preferences_);
  pairs_.clear();
  pair_applicable_.assign(n * n, false);

  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Combination pair = combiner.AndExtend(combiner.Single(i), j);
      HYPRE_ASSIGN_OR_RETURN(
          size_t count, enhancer_->CountMatching(combiner.BuildExpr(pair)));
      if (count == 0) continue;
      PairEntry entry;
      entry.i = i;
      entry.j = j;
      entry.intensity = combiner.ComputeIntensity(pair);
      entry.num_tuples = count;
      pairs_.push_back(entry);
      pair_applicable_[i * n + j] = true;
      pair_applicable_[j * n + i] = true;
    }
  }
  std::stable_sort(pairs_.begin(), pairs_.end(),
                   [](const PairEntry& a, const PairEntry& b) {
                     return a.intensity > b.intensity;
                   });
  pairs_ready_ = true;
  return Status::OK();
}

Result<std::vector<CombinationRecord>> Peps::GenerateOrder(PepsMode mode) {
  HYPRE_RETURN_NOT_OK(PrecomputePairs());
  const auto& prefs = *preferences_;
  Combiner combiner(preferences_);
  num_expansion_probes_ = 0;

  // Approximate mode prunes seed pairs that do not already beat the best
  // single preference (§5.5.2): combinations grown from weaker seeds would
  // need many more conjuncts to catch up (Proposition 6), and the
  // approximate variant bets they never will.
  double best_single = prefs.empty() ? 0.0 : prefs.front().intensity;

  std::vector<CombinationRecord> order;
  std::unordered_set<std::string> seen;  // dedup by sorted member sets

  auto member_key = [](const std::vector<size_t>& sorted_members) {
    std::string key;
    for (size_t m : sorted_members) {
      key += std::to_string(m);
      key += ",";
    }
    return key;
  };

  // DFS over the set-enumeration tree: members kept ascending; an extension
  // index k must form an applicable pair with every current member (the
  // pair-table pruning), and the extended set is then verified with one
  // (memoized) count probe.
  struct Frame {
    std::vector<size_t> members;  // ascending
    Combination combination;
    size_t num_tuples = 0;
  };

  std::vector<Frame> stack;
  for (const PairEntry& pair : pairs_) {
    if (mode == PepsMode::kApproximate && pair.intensity <= best_single) {
      continue;
    }
    Frame frame;
    frame.members = {pair.i, pair.j};
    frame.combination =
        combiner.AndExtend(combiner.Single(pair.i), pair.j);
    frame.num_tuples = pair.num_tuples;
    std::string key = member_key(frame.members);
    if (!seen.insert(key).second) continue;
    stack.push_back(std::move(frame));
  }

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();

    CombinationRecord record;
    record.num_predicates = frame.members.size();
    record.num_tuples = frame.num_tuples;
    record.intensity = combiner.ComputeIntensity(frame.combination);
    record.predicate_sql = combiner.ToSql(frame.combination);
    record.combination = frame.combination;
    order.push_back(std::move(record));

    size_t last = frame.members.back();
    for (size_t k = last + 1; k < prefs.size(); ++k) {
      bool all_pairs_ok = true;
      for (size_t m : frame.members) {
        if (!PairApplicable(m, k)) {
          all_pairs_ok = false;
          break;
        }
      }
      if (!all_pairs_ok) continue;
      std::vector<size_t> extended_members = frame.members;
      extended_members.push_back(k);
      std::string key = member_key(extended_members);
      if (!seen.insert(key).second) continue;
      Combination extended = combiner.AndExtend(frame.combination, k);
      ++num_expansion_probes_;
      HYPRE_ASSIGN_OR_RETURN(
          size_t count,
          enhancer_->CountMatching(combiner.BuildExpr(extended)));
      if (count == 0) continue;
      Frame next;
      next.members = std::move(extended_members);
      next.combination = std::move(extended);
      next.num_tuples = count;
      stack.push_back(std::move(next));
    }
  }

  std::stable_sort(order.begin(), order.end(),
                   [](const CombinationRecord& a, const CombinationRecord& b) {
                     return a.intensity > b.intensity;
                   });
  return order;
}

Result<std::vector<RankedTuple>> Peps::TopK(size_t k, PepsMode mode) {
  const auto& prefs = *preferences_;
  Combiner combiner(preferences_);
  HYPRE_ASSIGN_OR_RETURN(std::vector<CombinationRecord> order,
                         GenerateOrder(mode));

  // Singles participate too: tuples matching exactly one preference are
  // ranked by that preference's own intensity.
  for (size_t i = 0; i < prefs.size(); ++i) {
    Combination single = combiner.Single(i);
    CombinationRecord record;
    record.num_predicates = 1;
    record.intensity = prefs[i].intensity;
    record.combination = single;
    record.predicate_sql = prefs[i].predicate;
    // Tuple count not needed for ranking; fetched lazily below.
    order.push_back(std::move(record));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const CombinationRecord& a, const CombinationRecord& b) {
                     return a.intensity > b.intensity;
                   });

  std::vector<RankedTuple> result;
  std::unordered_set<reldb::Value, reldb::ValueHash> ranked;
  for (const CombinationRecord& record : order) {
    if (k > 0 && result.size() >= k) break;
    reldb::ExprPtr expr = combiner.BuildExpr(record.combination);
    HYPRE_ASSIGN_OR_RETURN(std::vector<reldb::Value> keys,
                           enhancer_->MatchingKeys(expr));
    // Deterministic order within one combination.
    std::sort(keys.begin(), keys.end(),
              [](const reldb::Value& a, const reldb::Value& b) {
                return a.Compare(b) < 0;
              });
    for (const auto& key : keys) {
      if (k > 0 && result.size() >= k) break;
      if (!ranked.insert(key).second) continue;
      result.push_back({key, record.intensity});
    }
  }
  return result;
}

}  // namespace core
}  // namespace hypre
