#include "hypre/algorithms/peps.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace hypre {
namespace core {

Peps::Peps(const std::vector<PreferenceAtom>* preferences,
           const QueryEnhancer* enhancer, ProbeOptions options)
    : preferences_(preferences),
      enhancer_(enhancer),
      combiner_(preferences),
      prober_(&combiner_, &enhancer->probe_engine()),
      options_(options),
      batch_(&prober_, options) {}

bool Peps::PairApplicable(size_t a, size_t b) const {
  size_t n = preferences_->size();
  return pair_applicable_[a * n + b];
}

Status Peps::PrecomputePairs(const EnumerationControl& control) {
  if (pairs_ready_) return Status::OK();
  const auto& prefs = *preferences_;
  size_t n = prefs.size();
  pairs_.clear();
  pair_applicable_.assign(n * n, false);

  auto record_pair = [&](size_t i, size_t j, size_t count) {
    if (count == 0) return;
    PairEntry entry;
    entry.i = i;
    entry.j = j;
    entry.intensity = combiner_.ComputeIntensity(
        combiner_.AndExtend(combiner_.Single(i), j));
    entry.num_tuples = count;
    pairs_.push_back(entry);
    pair_applicable_[i * n + j] = true;
    pair_applicable_[j * n + i] = true;
  };

  if (options_.batching) {
    // Bulk leaf prefetch (one executor pass), then the whole upper triangle
    // as one blocked shard pass. The budget admits a generation-order
    // prefix of the triangle, matching the scalar loop's truncation point.
    HYPRE_RETURN_NOT_OK(prober_.PrefetchAll());
    std::vector<std::pair<size_t, size_t>> pair_list;
    pair_list.reserve(n * (n - 1) / 2);
    for (size_t i = 0; i + 1 < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) pair_list.emplace_back(i, j);
    }
    pair_list.resize(control.Admit(pair_list.size()));
    if (!pair_list.empty()) {
      HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                             batch_.CountPairs(pair_list));
      for (size_t p = 0; p < pair_list.size(); ++p) {
        record_pair(pair_list[p].first, pair_list[p].second, counts[p]);
      }
    }
  } else {
    bool budget_dry = false;
    for (size_t i = 0; i + 1 < n && !budget_dry; ++i) {
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits_i,
                             prober_.PreferenceBits(i));
      for (size_t j = i + 1; j < n; ++j) {
        if (control.Admit(1) == 0) {
          budget_dry = true;
          break;
        }
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* bits_j,
                               prober_.PreferenceBits(j));
        record_pair(i, j, KeyBitmap::AndCount(*bits_i, *bits_j));
      }
    }
  }
  std::stable_sort(pairs_.begin(), pairs_.end(),
                   [](const PairEntry& a, const PairEntry& b) {
                     return a.intensity > b.intensity;
                   });
  pairs_ready_ = true;
  return Status::OK();
}

Result<std::vector<CombinationRecord>> Peps::GenerateOrder(
    PepsMode mode, const EnumerationControl& control) {
  HYPRE_RETURN_NOT_OK(PrecomputePairs(control));
  const auto& prefs = *preferences_;
  num_expansion_probes_ = 0;

  // Approximate mode prunes seed pairs that do not already beat the best
  // single preference (§5.5.2): combinations grown from weaker seeds would
  // need many more conjuncts to catch up (Proposition 6), and the
  // approximate variant bets they never will.
  double best_single = prefs.empty() ? 0.0 : prefs.front().intensity;

  std::vector<CombinationRecord> order;
  std::unordered_set<std::string> seen;  // dedup by sorted member sets

  auto member_key = [](const std::vector<size_t>& sorted_members) {
    std::string key;
    for (size_t m : sorted_members) {
      key += std::to_string(m);
      key += ",";
    }
    return key;
  };

  // DFS over the set-enumeration tree: members kept ascending; an extension
  // index k must form an applicable pair with every current member (the
  // pair-table pruning), and the extended set is then verified with one
  // AND+popcount against the frame's bitmap. The bitmap is rebuilt into a
  // reused scratch buffer on pop (an AND per member over the cached
  // per-preference bitmaps) rather than stored per frame, so frames stay
  // small and the DFS does no per-frame heap traffic.
  struct Frame {
    std::vector<size_t> members;  // ascending
    Combination combination;
    size_t num_tuples = 0;
  };

  std::vector<Frame> stack;
  for (const PairEntry& pair : pairs_) {
    if (mode == PepsMode::kApproximate && pair.intensity <= best_single) {
      continue;
    }
    Frame frame;
    frame.members = {pair.i, pair.j};
    frame.combination =
        combiner_.AndExtend(combiner_.Single(pair.i), pair.j);
    frame.num_tuples = pair.num_tuples;
    std::string key = member_key(frame.members);
    if (!seen.insert(key).second) continue;
    stack.push_back(std::move(frame));
  }

  KeyBitmap frame_bits;
  std::vector<size_t> candidates;  // reused per-frame extension batch
  bool budget_dry = false;
  while (!stack.empty() && !budget_dry) {
    Frame frame = std::move(stack.back());
    stack.pop_back();

    CombinationRecord record;
    record.num_predicates = frame.members.size();
    record.num_tuples = frame.num_tuples;
    record.intensity = combiner_.ComputeIntensity(frame.combination);
    record.predicate_sql = combiner_.ToSql(frame.combination);
    record.combination = frame.combination;
    control.Emit(record);
    order.push_back(std::move(record));

    // Collect every extension k that survives the pair-table pruning and the
    // dedup check; they form the frame's candidate frontier.
    candidates.clear();
    size_t last = frame.members.back();
    for (size_t k = last + 1; k < prefs.size(); ++k) {
      bool all_pairs_ok = true;
      for (size_t m : frame.members) {
        if (!PairApplicable(m, k)) {
          all_pairs_ok = false;
          break;
        }
      }
      if (!all_pairs_ok) continue;
      std::vector<size_t> extended_members = frame.members;
      extended_members.push_back(k);
      if (!seen.insert(member_key(extended_members)).second) continue;
      candidates.push_back(k);
    }
    // The budget admits a prefix of the frame's candidate frontier BEFORE
    // probing (identical truncation batched or scalar); once dry, the DFS
    // stops after this frame.
    size_t admitted = control.Admit(candidates.size());
    if (admitted < candidates.size()) {
      budget_dry = true;
      candidates.resize(admitted);
    }
    if (candidates.empty()) continue;

    // Verify the whole frontier against the frame's bitmap: one blocked
    // batch pass when batching is on, one AND+popcount per candidate off.
    HYPRE_RETURN_NOT_OK(prober_.BitsInto(frame.combination, &frame_bits));
    num_expansion_probes_ += candidates.size();
    std::vector<size_t> counts;
    if (options_.batching) {
      HYPRE_ASSIGN_OR_RETURN(counts,
                             batch_.CountExtensions(frame_bits, candidates));
    } else {
      counts.reserve(candidates.size());
      for (size_t k : candidates) {
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* k_bits,
                               prober_.PreferenceBits(k));
        counts.push_back(KeyBitmap::AndCount(frame_bits, *k_bits));
      }
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] == 0) continue;
      size_t k = candidates[c];
      Frame next;
      next.members = frame.members;
      next.members.push_back(k);
      next.combination = combiner_.AndExtend(frame.combination, k);
      next.num_tuples = counts[c];
      stack.push_back(std::move(next));
    }
  }

  std::stable_sort(order.begin(), order.end(),
                   [](const CombinationRecord& a, const CombinationRecord& b) {
                     return a.intensity > b.intensity;
                   });
  return order;
}

Result<std::vector<RankedTuple>> Peps::TopK(
    size_t k, PepsMode mode, const EnumerationControl& control) {
  const auto& prefs = *preferences_;
  HYPRE_ASSIGN_OR_RETURN(std::vector<CombinationRecord> order,
                         GenerateOrder(mode, control));

  // Singles participate too: tuples matching exactly one preference are
  // ranked by that preference's own intensity.
  for (size_t i = 0; i < prefs.size(); ++i) {
    Combination single = combiner_.Single(i);
    CombinationRecord record;
    record.num_predicates = 1;
    record.intensity = prefs[i].intensity;
    record.combination = single;
    record.predicate_sql = prefs[i].predicate;
    // Tuple count not needed for ranking; fetched lazily below.
    order.push_back(std::move(record));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const CombinationRecord& a, const CombinationRecord& b) {
                     return a.intensity > b.intensity;
                   });

  std::vector<RankedTuple> result;
  std::unordered_set<reldb::Value, reldb::ValueHash> ranked;
  KeyBitmap bits;
  for (const CombinationRecord& record : order) {
    if (k > 0 && result.size() >= k) break;
    HYPRE_RETURN_NOT_OK(prober_.BitsInto(record.combination, &bits));
    // KeysOf is deterministic: keys come out in Value total order.
    std::vector<reldb::Value> keys =
        enhancer_->probe_engine().KeysOf(bits);
    for (const auto& key : keys) {
      if (k > 0 && result.size() >= k) break;
      if (!ranked.insert(key).second) continue;
      result.push_back({key, record.intensity});
      control.Emit(result.back());
    }
  }
  return result;
}

}  // namespace core
}  // namespace hypre
