// Bias-Random-Selection (dissertation §5.4, Algorithm 5).
//
// Grows AND-combinations by repeatedly drawing the next preference with a
// coin flip biased toward high intensities. The experiment's point
// (Figures 35/36): without knowing which combinations are applicable, a
// randomized search wastes most of its probes on empty combinations — the
// motivation for PEPS's precomputed pair table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hypre/algorithms/common.h"
#include "hypre/batch_prober.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"

namespace hypre {
namespace core {

struct BiasRandomResult {
  /// Applicable combinations recorded (the run's "solutions").
  std::vector<CombinationRecord> records;
  /// Probes that returned at least one tuple.
  size_t valid_checks = 0;
  /// Probes that returned nothing.
  size_t invalid_checks = 0;
};

/// \brief One full pass of Algorithm 5: every preference serves once as the
/// chain start; subsequent members are drawn (without replacement) with
/// probability proportional to intensity. A chain ends — and is recorded —
/// when an extension probe comes back empty or the pool is exhausted.
/// Deterministic given `seed`. With `options.batching` the seed generation
/// (every candidate second member of a chain start) is evaluated as one
/// batch up front — that table answers the whole Step-4 redraw loop, which
/// is where a random search burns most of its probes (Figures 35/36) —
/// while chain extensions probe the drawn candidate against an
/// incrementally maintained chain bitmap. The draw sequence, probe
/// verdicts, valid/invalid tallies, and records are identical to the
/// scalar path.
///
/// `control` bounds the probe spend: every consulted check (valid or
/// invalid) charges one probe, and the run stops — truncated, the
/// in-flight chain dropped — when the budget runs dry; because checks are
/// charged as their verdicts are CONSUMED, a budgeted run is identical
/// batched or scalar. Records stream through the control's sink in probe
/// order. Prefer dispatching by name through
/// api::Session::Enumerate("bias-random") — this free function is the
/// compatibility entry point it wraps.
Result<BiasRandomResult> BiasRandomSelection(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, uint64_t seed,
    const ProbeOptions& options = ProbeOptions{},
    const EnumerationControl& control = EnumerationControl{});

}  // namespace core
}  // namespace hypre
