#include "hypre/algorithms/exhaustive.h"

#include <algorithm>

#include "common/string_util.h"

namespace hypre {
namespace core {

Result<std::vector<CombinationRecord>> ExhaustiveAndCombinations(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, size_t max_n) {
  size_t n = preferences.size();
  if (n > max_n) {
    return Status::InvalidArgument(StringFormat(
        "exhaustive enumeration over %zu preferences would probe 2^%zu - 1 "
        "combinations (cap %zu)",
        n, n, max_n));
  }
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  std::vector<CombinationRecord> records;
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    Combination combination;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) {
        combination = combination.groups.empty()
                          ? combiner.Single(i)
                          : combiner.AndExtend(combination, i);
      }
    }
    CombinationRecord record;
    record.num_predicates = combination.NumPredicates();
    record.intensity = combiner.ComputeIntensity(combination);
    HYPRE_ASSIGN_OR_RETURN(record.num_tuples, prober.Count(combination));
    if (record.num_tuples == 0) continue;
    record.predicate_sql = combiner.ToSql(combination);
    record.combination = std::move(combination);
    records.push_back(std::move(record));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const CombinationRecord& a, const CombinationRecord& b) {
                     return a.intensity > b.intensity;
                   });
  return records;
}

}  // namespace core
}  // namespace hypre
