#include "hypre/algorithms/exhaustive.h"

#include <algorithm>

#include "common/string_util.h"

namespace hypre {
namespace core {

Result<std::vector<CombinationRecord>> ExhaustiveAndCombinations(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, size_t max_n,
    const ProbeOptions& options, const EnumerationControl& control) {
  size_t n = preferences.size();
  if (n > max_n) {
    return Status::InvalidArgument(StringFormat(
        "exhaustive enumeration over %zu preferences would probe 2^%zu - 1 "
        "combinations (cap %zu)",
        n, n, max_n));
  }
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  BatchProber batch(&prober, options);
  if (options.batching && n > 0) {
    HYPRE_RETURN_NOT_OK(prober.PrefetchAll());
  }
  std::vector<CombinationRecord> records;

  // Probe the subset space one fixed-size generation at a time: build the
  // next chunk of combinations, evaluate them in one blocked batch pass (or
  // scalar probes when batching is off), keep the applicable ones.
  constexpr size_t kGeneration = 2048;
  std::vector<Combination> frontier;
  bool budget_dry = false;
  // The budget admits each generation as a prefix BEFORE it is probed, so
  // batched and scalar runs truncate at the same subset either way.
  auto flush = [&]() -> Status {
    if (frontier.empty()) return Status::OK();
    size_t admitted = control.Admit(frontier.size());
    if (admitted < frontier.size()) {
      budget_dry = true;
      frontier.resize(admitted);
      if (frontier.empty()) return Status::OK();
    }
    HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                           batch.CountMaybeBatched(frontier));
    for (size_t f = 0; f < frontier.size(); ++f) {
      if (counts[f] == 0) continue;
      CombinationRecord record;
      record.num_predicates = frontier[f].NumPredicates();
      record.num_tuples = counts[f];
      record.intensity = combiner.ComputeIntensity(frontier[f]);
      record.predicate_sql = combiner.ToSql(frontier[f]);
      record.combination = std::move(frontier[f]);
      control.Emit(record);
      records.push_back(std::move(record));
    }
    frontier.clear();
    return Status::OK();
  };

  for (uint64_t mask = 1; mask < (1ULL << n) && !budget_dry; ++mask) {
    Combination combination;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) {
        combination = combination.groups.empty()
                          ? combiner.Single(i)
                          : combiner.AndExtend(combination, i);
      }
    }
    frontier.push_back(std::move(combination));
    if (frontier.size() >= kGeneration) HYPRE_RETURN_NOT_OK(flush());
  }
  HYPRE_RETURN_NOT_OK(flush());
  std::stable_sort(records.begin(), records.end(),
                   [](const CombinationRecord& a, const CombinationRecord& b) {
                     return a.intensity > b.intensity;
                   });
  return records;
}

}  // namespace core
}  // namespace hypre
