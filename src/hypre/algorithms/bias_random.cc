#include "hypre/algorithms/bias_random.h"

#include <algorithm>

#include "common/random.h"

namespace hypre {
namespace core {

namespace {

/// Weighted draw without replacement: picks an index from `pool` with
/// probability proportional to its preference intensity (clamped to a small
/// positive floor so zero-intensity preferences stay reachable) and removes
/// it from the pool.
size_t DrawBiased(const std::vector<PreferenceAtom>& preferences,
                  std::vector<size_t>* pool, Rng* rng) {
  constexpr double kFloor = 1e-3;
  double total = 0.0;
  for (size_t idx : *pool) {
    total += std::max(preferences[idx].intensity, kFloor);
  }
  double u = rng->NextDouble() * total;
  double acc = 0.0;
  size_t chosen_pos = pool->size() - 1;
  for (size_t pos = 0; pos < pool->size(); ++pos) {
    acc += std::max(preferences[(*pool)[pos]].intensity, kFloor);
    if (u < acc) {
      chosen_pos = pos;
      break;
    }
  }
  size_t chosen = (*pool)[chosen_pos];
  pool->erase(pool->begin() + static_cast<std::ptrdiff_t>(chosen_pos));
  return chosen;
}

Status Record(const Combiner& combiner, const CombinationProber& prober,
              const Combination& combination,
              std::vector<CombinationRecord>* records) {
  CombinationRecord record;
  record.num_predicates = combination.NumPredicates();
  record.intensity = combiner.ComputeIntensity(combination);
  HYPRE_ASSIGN_OR_RETURN(record.num_tuples, prober.Count(combination));
  record.predicate_sql = combiner.ToSql(combination);
  record.combination = combination;
  records->push_back(std::move(record));
  return Status::OK();
}

}  // namespace

Result<BiasRandomResult> BiasRandomSelection(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, uint64_t seed) {
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  BiasRandomResult result;
  Rng rng(seed);

  auto probe = [&](const Combination& c) -> Result<bool> {
    HYPRE_ASSIGN_OR_RETURN(size_t count, prober.Count(c));
    if (count > 0) {
      ++result.valid_checks;
      return true;
    }
    ++result.invalid_checks;
    return false;
  };

  for (size_t first = 0; first < preferences.size(); ++first) {
    std::vector<size_t> pool;
    for (size_t i = 0; i < preferences.size(); ++i) {
      if (i != first) pool.push_back(i);
    }
    // Find an applicable two-preference seed (Step 1-2 of §5.4).
    while (!pool.empty()) {
      size_t second = DrawBiased(preferences, &pool, &rng);
      Combination chain =
          combiner.AndExtend(combiner.Single(first), second);
      HYPRE_ASSIGN_OR_RETURN(bool ok, probe(chain));
      if (!ok) continue;  // try another second (Step 4 loops back)
      // Extend the chain until a probe fails or the pool runs dry
      // (Steps 3-6).
      for (;;) {
        if (pool.empty()) {
          HYPRE_RETURN_NOT_OK(
              Record(combiner, prober, chain, &result.records));
          break;
        }
        size_t next = DrawBiased(preferences, &pool, &rng);
        Combination extended = combiner.AndExtend(chain, next);
        HYPRE_ASSIGN_OR_RETURN(bool extended_ok, probe(extended));
        if (!extended_ok) {
          HYPRE_RETURN_NOT_OK(
              Record(combiner, prober, chain, &result.records));
          break;
        }
        chain = std::move(extended);
      }
      break;  // chain recorded; move to the next starting preference
    }
  }
  return result;
}

}  // namespace core
}  // namespace hypre
