#include "hypre/algorithms/bias_random.h"

#include <algorithm>

#include "common/random.h"

namespace hypre {
namespace core {

namespace {

/// Weighted draw without replacement: picks an index from `pool` with
/// probability proportional to its preference intensity (clamped to a small
/// positive floor so zero-intensity preferences stay reachable) and removes
/// it from the pool.
size_t DrawBiased(const std::vector<PreferenceAtom>& preferences,
                  std::vector<size_t>* pool, Rng* rng) {
  constexpr double kFloor = 1e-3;
  double total = 0.0;
  for (size_t idx : *pool) {
    total += std::max(preferences[idx].intensity, kFloor);
  }
  double u = rng->NextDouble() * total;
  double acc = 0.0;
  size_t chosen_pos = pool->size() - 1;
  for (size_t pos = 0; pos < pool->size(); ++pos) {
    acc += std::max(preferences[(*pool)[pos]].intensity, kFloor);
    if (u < acc) {
      chosen_pos = pos;
      break;
    }
  }
  size_t chosen = (*pool)[chosen_pos];
  pool->erase(pool->begin() + static_cast<std::ptrdiff_t>(chosen_pos));
  return chosen;
}

void Record(const Combiner& combiner, const EnumerationControl& control,
            const Combination& combination, size_t num_tuples,
            std::vector<CombinationRecord>* records) {
  CombinationRecord record;
  record.num_predicates = combination.NumPredicates();
  record.num_tuples = num_tuples;
  record.intensity = combiner.ComputeIntensity(combination);
  record.predicate_sql = combiner.ToSql(combination);
  record.combination = combination;
  control.Emit(record);
  records->push_back(std::move(record));
}

}  // namespace

Result<BiasRandomResult> BiasRandomSelection(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, uint64_t seed,
    const ProbeOptions& options, const EnumerationControl& control) {
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  BatchProber batch(&prober, options);
  if (options.batching && !preferences.empty()) {
    HYPRE_RETURN_NOT_OK(prober.PrefetchAll());
  }
  BiasRandomResult result;
  Rng rng(seed);

  // With batching on, the seed generation (chain = {first} against every
  // other preference) is evaluated as ONE batch and the Step-4 redraw loop
  // consults the precomputed counts; ext_counts[p] is only valid for p in
  // the pool the last refresh saw. The draw sequence and every probe
  // verdict are identical to the scalar path, which probes one candidate
  // at a time.
  std::vector<size_t> ext_counts(preferences.size(), 0);
  auto refresh = [&](const KeyBitmap& chain_bits,
                     const std::vector<size_t>& pool) -> Status {
    HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                           batch.CountExtensions(chain_bits, pool));
    for (size_t p = 0; p < pool.size(); ++p) ext_counts[pool[p]] = counts[p];
    return Status::OK();
  };
  auto consult = [&](size_t count) {
    if (count > 0) {
      ++result.valid_checks;
    } else {
      ++result.invalid_checks;
    }
    return count > 0;
  };

  // Budget: one charge per CONSUMED verdict (the seed table's precomputed
  // counts are only charged when a draw consults them), so the truncation
  // point is identical batched or scalar. The in-flight chain is dropped,
  // not recorded, when the budget runs dry mid-chain.
  bool budget_dry = false;

  KeyBitmap chain_bits;
  for (size_t first = 0; first < preferences.size() && !budget_dry;
       ++first) {
    std::vector<size_t> pool;
    for (size_t i = 0; i < preferences.size(); ++i) {
      if (i != first) pool.push_back(i);
    }
    if (options.batching && !pool.empty()) {
      // chain = {first}: one generation answers every seed probe below.
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* first_bits,
                             prober.PreferenceBits(first));
      HYPRE_RETURN_NOT_OK(refresh(*first_bits, pool));
    }
    // Find an applicable two-preference seed (Step 1-2 of §5.4).
    while (!pool.empty()) {
      if (control.Admit(1) == 0) {
        budget_dry = true;
        break;
      }
      size_t second = DrawBiased(preferences, &pool, &rng);
      Combination chain =
          combiner.AndExtend(combiner.Single(first), second);
      size_t chain_count;
      if (options.batching) {
        chain_count = ext_counts[second];
      } else {
        HYPRE_ASSIGN_OR_RETURN(chain_count, prober.Count(chain));
      }
      if (!consult(chain_count)) continue;  // try another second (Step 4)
      if (options.batching) {
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* first_bits,
                               prober.PreferenceBits(first));
        HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* second_bits,
                               prober.PreferenceBits(second));
        chain_bits = *first_bits;
        chain_bits.AndWith(*second_bits);
      }
      // Extend the chain until a probe fails or the pool runs dry
      // (Steps 3-6). Unlike the seed loop, an extension table would be
      // consulted at most once before the chain state changes (success) or
      // the chain is recorded (failure), so batching the whole pool here
      // would discard |pool|-1 counts — probe just the drawn candidate
      // against the incrementally maintained chain bitmap instead.
      for (;;) {
        if (pool.empty()) {
          Record(combiner, control, chain, chain_count, &result.records);
          break;
        }
        if (control.Admit(1) == 0) {
          budget_dry = true;
          break;
        }
        size_t next = DrawBiased(preferences, &pool, &rng);
        Combination extended = combiner.AndExtend(chain, next);
        size_t extended_count;
        if (options.batching) {
          HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* next_bits,
                                 prober.PreferenceBits(next));
          extended_count = KeyBitmap::AndCount(chain_bits, *next_bits);
          enhancer.probe_engine().NoteProbesAnswered(1);
        } else {
          HYPRE_ASSIGN_OR_RETURN(extended_count, prober.Count(extended));
        }
        if (!consult(extended_count)) {
          Record(combiner, control, chain, chain_count, &result.records);
          break;
        }
        chain = std::move(extended);
        chain_count = extended_count;
        if (options.batching) {
          HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* next_bits,
                                 prober.PreferenceBits(next));
          chain_bits.AndWith(*next_bits);
        }
      }
      break;  // chain recorded; move to the next starting preference
    }
  }
  return result;
}

}  // namespace core
}  // namespace hypre
