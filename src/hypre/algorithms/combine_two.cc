#include "hypre/algorithms/combine_two.h"

namespace hypre {
namespace core {

Result<std::vector<CombinationRecord>> CombineTwo(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, CombineSemantics semantics,
    const ProbeOptions& options, const EnumerationControl& control) {
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  BatchProber batch(&prober, options);
  std::vector<CombinationRecord> records;
  if (preferences.size() < 2) return records;

  // Build the whole C(N,2) frontier in generation order, then evaluate it as
  // one batch (or scalar probes when batching is off).
  std::vector<Combination> frontier;
  frontier.reserve(preferences.size() * (preferences.size() - 1) / 2);
  for (size_t i = 0; i + 1 < preferences.size(); ++i) {
    for (size_t j = i + 1; j < preferences.size(); ++j) {
      Combination base = combiner.Single(i);
      bool same_attribute =
          preferences[i].attribute_key == preferences[j].attribute_key;
      if (semantics == CombineSemantics::kAndOr && same_attribute) {
        frontier.push_back(combiner.OrInto(base, j));
      } else {
        frontier.push_back(combiner.AndExtend(base, j));
      }
    }
  }

  // The budget admits a generation-order prefix of the pair frontier BEFORE
  // probing, so batched and scalar runs truncate at the same pair.
  frontier.resize(control.Admit(frontier.size()));
  if (frontier.empty()) return records;

  if (options.batching) {
    HYPRE_RETURN_NOT_OK(prober.PrefetchAll());
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                         batch.CountMaybeBatched(frontier));

  records.reserve(frontier.size());
  for (size_t f = 0; f < frontier.size(); ++f) {
    CombinationRecord record;
    record.num_predicates = 2;
    record.num_tuples = counts[f];
    record.intensity = combiner.ComputeIntensity(frontier[f]);
    record.predicate_sql = combiner.ToSql(frontier[f]);
    record.combination = std::move(frontier[f]);
    control.Emit(record);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace core
}  // namespace hypre
