#include "hypre/algorithms/combine_two.h"

namespace hypre {
namespace core {

Result<std::vector<CombinationRecord>> CombineTwo(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, CombineSemantics semantics) {
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  std::vector<CombinationRecord> records;
  if (preferences.size() < 2) return records;
  records.reserve(preferences.size() * (preferences.size() - 1) / 2);

  for (size_t i = 0; i + 1 < preferences.size(); ++i) {
    for (size_t j = i + 1; j < preferences.size(); ++j) {
      Combination base = combiner.Single(i);
      Combination combination;
      bool same_attribute =
          preferences[i].attribute_key == preferences[j].attribute_key;
      if (semantics == CombineSemantics::kAndOr && same_attribute) {
        combination = combiner.OrInto(base, j);
      } else {
        combination = combiner.AndExtend(base, j);
      }
      CombinationRecord record;
      record.num_predicates = 2;
      record.intensity = combiner.ComputeIntensity(combination);
      HYPRE_ASSIGN_OR_RETURN(record.num_tuples, prober.Count(combination));
      record.predicate_sql = combiner.ToSql(combination);
      record.combination = std::move(combination);
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace core
}  // namespace hypre
