// PEPS — Practical and Efficient Preference Selection (dissertation §5.5,
// Algorithm 6). The dissertation's Top-K contribution.
//
// PEPS precomputes the table of all *applicable* two-preference AND
// combinations (pairs that return at least one tuple), each with its
// combined intensity and tuple count; the table is the pruning oracle for
// multi-predicate expansion, because AND is monotone:
//     a combination can only be applicable if every member pair is.
// Expansion then enumerates applicable AND combinations in a
// set-enumeration tree seeded from the pair table, verifying candidates
// with (memoized) count probes, and returns them ordered by combined
// intensity. Two modes:
//  * Complete    — seeds from every applicable pair: no applicable
//    combination is missed.
//  * Approximate — only seeds whose pair intensity already exceeds the best
//    single-preference intensity survive (the Proposition 6 bound applied at
//    its cheapest point), trading possible misses for fewer probes.
//
// TopK() walks the ordered combinations (plus the single preferences), so
// each tuple receives the intensity of the best applicable combination it
// matches.
#pragma once

#include <vector>

#include "common/status.h"
#include "hypre/algorithms/common.h"
#include "hypre/batch_prober.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"
#include "hypre/ranking.h"

namespace hypre {
namespace core {

enum class PepsMode { kComplete, kApproximate };

/// \brief One row of the precomputed pair table.
struct PairEntry {
  size_t i = 0;
  size_t j = 0;
  double intensity = 0.0;
  size_t num_tuples = 0;
};

class Peps {
 public:
  /// `preferences` must be sorted descending by intensity and must outlive
  /// the engine; `enhancer` likewise. All probes run through the enhancer's
  /// bitmap-backed probe engine. With `options.batching` (the default) the
  /// preference leaf bitmaps are bulk-prefetched in one executor pass, the
  /// pair table is one batched upper-triangle pass, and DFS expansion
  /// batches all candidate extensions of a popped frame into one blocked
  /// shard pass (optionally multi-threaded via options.num_threads). With
  /// batching off every probe is a scalar AND+popcount — outputs are
  /// byte-identical either way (enforced by the differential tests).
  explicit Peps(const std::vector<PreferenceAtom>* preferences,
                const QueryEnhancer* enhancer,
                ProbeOptions options = ProbeOptions{});

  // prober_ points at combiner_, so default copy/move would leave the new
  // object probing through the old one's (possibly destroyed) combiner.
  Peps(const Peps&) = delete;
  Peps& operator=(const Peps&) = delete;

  /// \brief Builds the applicable-pair table (one probe per AND pair).
  /// Idempotent; TopK/GenerateOrder call it lazily. A probe budget admits a
  /// generation-order prefix of the upper triangle (identical batched or
  /// scalar); a truncated table seeds fewer expansions, and the truncation
  /// flag records that the run was incomplete.
  Status PrecomputePairs(const EnumerationControl& control =
                             EnumerationControl{});

  /// \brief The applicable pairs, descending by combined intensity.
  const std::vector<PairEntry>& pairs() const { return pairs_; }

  /// \brief All applicable AND combinations of >= 2 preferences reachable in
  /// the given mode, descending by combined intensity. The control's budget
  /// charges one probe per pair-table entry and per expansion candidate
  /// (the DFS stops — truncated — when it runs dry); records stream through
  /// the record sink in DFS pop order. Prefer dispatching by name through
  /// api::Session::Enumerate("peps").
  Result<std::vector<CombinationRecord>> GenerateOrder(
      PepsMode mode,
      const EnumerationControl& control = EnumerationControl{});

  /// \brief Top-K tuples: each tuple is ranked by the best applicable
  /// combination (or single preference) that matches it, descending. The
  /// control's budget applies to the underlying GenerateOrder (the record
  /// walk itself does bitmap algebra only and is not charged); ranked
  /// tuples stream through the tuple sink in rank order.
  Result<std::vector<RankedTuple>> TopK(
      size_t k, PepsMode mode,
      const EnumerationControl& control = EnumerationControl{});

  /// \brief Number of multi-predicate candidate probes issued by the last
  /// GenerateOrder call (observability for the Fig. 39/40 analysis).
  size_t num_expansion_probes() const { return num_expansion_probes_; }

 private:
  const std::vector<PreferenceAtom>* preferences_;
  const QueryEnhancer* enhancer_;
  Combiner combiner_;
  CombinationProber prober_;
  ProbeOptions options_;
  BatchProber batch_;
  bool pairs_ready_ = false;
  std::vector<PairEntry> pairs_;
  // pair applicability matrix, row-major over preference indices
  std::vector<bool> pair_applicable_;
  size_t num_expansion_probes_ = 0;

  bool PairApplicable(size_t a, size_t b) const;
};

}  // namespace core
}  // namespace hypre
