// Partially-Combine-All (dissertation §5.3.2, Algorithm 4).
//
// Consumes the intensity-sorted preference list one preference at a time and
// grows mixed AND/OR clauses:
//  * first preference: starts the first combination;
//  * preference over a NEW attribute: AND-extends every combination created
//    so far (AND is inflationary, so re-running old combinations with the
//    extra conjunct can only raise their intensity);
//  * preference over an ALREADY-SEEN attribute:
//      - if the latest combination has no AND yet, OR it into that
//        combination only (OR lowers intensity, so it is not propagated);
//      - otherwise, AND-extend every earlier combination that does not yet
//        constrain this attribute, and OR it into the matching group of the
//        latest combination.
// Complexity O(N) probes in the single-attribute cases and O(N^2) in the
// mixed case (Proposition 5).
#pragma once

#include <vector>

#include "common/status.h"
#include "hypre/algorithms/common.h"
#include "hypre/batch_prober.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"

namespace hypre {
namespace core {

/// \brief Runs Partially-Combine-All over `preferences` (sorted descending
/// by intensity). Records are emitted in probe order; combination sizes grow
/// over time, and the same size reappears whenever older combinations are
/// re-run with a new conjunct (which is why Figures 32-34 plot "combination
/// order" per size). With `options.batching` each generation — the set of
/// combinations a new preference spawns — is submitted as one batch
/// frontier; records are identical either way.
///
/// `control` bounds the probe spend (one probe per spawned combination; each
/// generation is admitted as a prefix before probing and the run stops —
/// truncated — when the budget runs dry) and streams records in probe
/// order. Prefer dispatching by name through
/// api::Session::Enumerate("partially-combine-all") — this free function is
/// the compatibility entry point it wraps.
Result<std::vector<CombinationRecord>> PartiallyCombineAll(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer,
    const ProbeOptions& options = ProbeOptions{},
    const EnumerationControl& control = EnumerationControl{});

}  // namespace core
}  // namespace hypre
