#include "hypre/algorithms/threshold_algorithm.h"

#include <algorithm>
#include <unordered_set>

#include "hypre/intensity.h"

namespace hypre {
namespace core {

void GradedList::AddGrade(const reldb::Value& key, double grade) {
  auto [it, inserted] = grades_.emplace(key, grade);
  if (!inserted) it->second = CombineAnd(it->second, grade);
}

void GradedList::Finalize() {
  sorted_.assign(grades_.begin(), grades_.end());
  std::sort(sorted_.begin(), sorted_.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.Compare(b.first) < 0;
            });
}

std::optional<double> GradedList::Grade(const reldb::Value& key) const {
  auto it = grades_.find(key);
  if (it == grades_.end()) return std::nullopt;
  return it->second;
}

Result<std::vector<RankedTuple>> ThresholdAlgorithmTopK(
    const std::vector<GradedList>& lists, size_t k,
    size_t* sorted_accesses, size_t max_depth, bool* budget_capped) {
  if (lists.empty()) {
    return Status::InvalidArgument("TA requires at least one graded list");
  }
  size_t natural_depth = 0;
  for (const auto& list : lists) {
    natural_depth = std::max(natural_depth, list.size());
  }
  // A depth cap (the API layer's probe budget, in sorted-access rounds)
  // stops the descent early; the capped flag distinguishes that from the
  // threshold halt and natural exhaustion.
  size_t depth_limit = natural_depth;
  if (max_depth > 0) depth_limit = std::min(depth_limit, max_depth);

  // Aggregate grade of an object: f_and over its grades, absent grades
  // contributing 0 (f_and(p, 0) = p).
  auto aggregate = [&](const reldb::Value& key) {
    double acc = 0.0;
    for (const auto& list : lists) {
      auto grade = list.Grade(key);
      if (grade) acc = CombineAnd(acc, *grade);
    }
    return acc;
  };

  std::vector<RankedTuple> top;  // kept sorted ascending by intensity
  std::unordered_set<reldb::Value, reldb::ValueHash> seen;

  auto consider = [&](const reldb::Value& key) {
    if (!seen.insert(key).second) return;
    RankedTuple tuple{key, aggregate(key)};
    auto pos = std::lower_bound(
        top.begin(), top.end(), tuple,
        [](const RankedTuple& a, const RankedTuple& b) {
          return a.intensity < b.intensity;
        });
    top.insert(pos, std::move(tuple));
    if (k > 0 && top.size() > k) top.erase(top.begin());
  };

  size_t depth = 0;
  bool halted = false;
  for (; depth < depth_limit; ++depth) {
    // Sorted access in parallel across all lists.
    double threshold = 0.0;
    for (const auto& list : lists) {
      if (depth < list.size()) {
        const auto& [key, grade] = list.at(depth);
        consider(key);
        threshold = CombineAnd(threshold, grade);
      }
      // Exhausted lists contribute 0 to the threshold: f_and identity.
    }
    // Halt once k objects reach the threshold (Definition 20, step 2).
    if (k > 0 && top.size() >= k && top.front().intensity >= threshold) {
      ++depth;
      halted = true;
      break;
    }
  }
  if (sorted_accesses != nullptr) *sorted_accesses = depth;
  if (budget_capped != nullptr && !halted && depth_limit < natural_depth) {
    *budget_capped = true;
  }

  std::vector<RankedTuple> result(top.rbegin(), top.rend());
  SortRanked(&result);
  if (k > 0 && result.size() > k) result.resize(k);
  return result;
}

Result<std::vector<GradedList>> BuildGradedLists(
    const ProbeEngine& engine, const std::vector<PreferenceAtom>& atoms,
    const std::function<std::string(const PreferenceAtom&)>& list_key) {
  std::vector<GradedList> lists;
  std::unordered_map<std::string, size_t> index_of;
  for (const auto& atom : atoms) {
    std::string name = list_key ? list_key(atom) : atom.attribute_key;
    auto [it, inserted] = index_of.emplace(name, lists.size());
    if (inserted) lists.emplace_back(name);
    GradedList& list = lists[it->second];
    HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, engine.EvalBitmap(atom.expr));
    bits.ForEachSet(
        [&](uint32_t id) { list.AddGrade(engine.KeyAt(id), atom.intensity); });
  }
  for (auto& list : lists) list.Finalize();
  return lists;
}

}  // namespace core
}  // namespace hypre
