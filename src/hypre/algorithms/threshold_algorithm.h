// Fagin's Threshold Algorithm (TA) — the Top-K baseline (dissertation
// §7.6.1, Definition 20).
//
// TA consumes m per-attribute graded lists (here: a venue list and an
// author list whose per-paper grades are f_and-aggregated over the paper's
// authors), does sorted access in parallel with random access to the other
// lists, and halts once k objects are at least as good as the threshold
// t(x_1..x_m) of the last sorted-access grades. The aggregation function is
// the same f_and used by HYPRE, with a missing grade contributing 0
// (f_and(p, 0) = p), matching the dissertation's list-merging step.
//
// TA sees only the ORIGINAL quantitative preferences — it has no access to
// graph-derived intensities — which is exactly why PEPS covers more tuples
// in Figures 37/38.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hypre/preference.h"
#include "hypre/probe_engine.h"
#include "hypre/ranking.h"
#include "reldb/value.h"

namespace hypre {
namespace core {

/// \brief One per-attribute list: (object key, grade) pairs supporting
/// sorted access (descending by grade) and random access by key.
class GradedList {
 public:
  explicit GradedList(std::string name = "") : name_(std::move(name)) {}

  /// \brief Adds or f_and-merges a grade for `key` (merging implements the
  /// per-paper aggregation over multiple matching preferences).
  void AddGrade(const reldb::Value& key, double grade);

  /// \brief Sorts for descending sorted access. Must be called before TopK.
  void Finalize();

  size_t size() const { return sorted_.size(); }
  const std::pair<reldb::Value, double>& at(size_t depth) const {
    return sorted_[depth];
  }

  /// \brief Random access: the grade of `key`, if present.
  std::optional<double> Grade(const reldb::Value& key) const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::unordered_map<reldb::Value, double, reldb::ValueHash> grades_;
  std::vector<std::pair<reldb::Value, double>> sorted_;
};

/// \brief Runs TA over the finalized lists; returns min(k, #objects) tuples
/// descending by aggregate grade. `sorted_accesses`, if non-null, receives
/// the number of sorted-access rounds performed (early-termination
/// observability). `max_depth` > 0 caps the sorted-access depth — the probe
/// budget of the unified API: when TA would have descended further,
/// `*budget_capped` (if non-null) is set and the ranking reflects only the
/// rounds performed. Prefer dispatching by name through
/// api::Session::Enumerate("ta").
Result<std::vector<RankedTuple>> ThresholdAlgorithmTopK(
    const std::vector<GradedList>& lists, size_t k,
    size_t* sorted_accesses = nullptr, size_t max_depth = 0,
    bool* budget_capped = nullptr);

/// \brief Builds TA's finalized graded lists from preference atoms, probing
/// each atom's matching keys through the engine's bitmap handles. Atoms are
/// grouped into one list per `list_key(atom)` (defaults to the atom's
/// attribute key); each atom grades its matching keys with its intensity,
/// f_and-merged per key within a list.
Result<std::vector<GradedList>> BuildGradedLists(
    const ProbeEngine& engine, const std::vector<PreferenceAtom>& atoms,
    const std::function<std::string(const PreferenceAtom&)>& list_key =
        nullptr);

}  // namespace core
}  // namespace hypre
