// Exhaustive AND-combination enumeration — the reference oracle.
//
// Enumerates every non-empty subset of the preference list as an AND
// combination (2^N - 1 of them, Eq. 5.3). Exponential by construction
// (Proposition 3 is the reason PEPS exists), so it is guarded to small N and
// used only to validate PEPS in tests and to calibrate the pruning benches.
#pragma once

#include <vector>

#include "common/status.h"
#include "hypre/algorithms/common.h"
#include "hypre/batch_prober.h"
#include "hypre/preference.h"
#include "hypre/query_enhancement.h"

namespace hypre {
namespace core {

/// \brief All applicable AND combinations (any size >= 1), descending by
/// combined intensity. Fails with InvalidArgument when N > `max_n`
/// (default 20) to prevent accidental 2^N blowups. With `options.batching`
/// the subset space is probed in fixed-size batched generations (bulk leaf
/// prefetch + blocked shard passes) instead of one scalar probe per subset;
/// records are identical either way.
///
/// `control` bounds the probe spend (one probe per subset; the run stops —
/// truncated — once the budget is spent) and streams applicable records in
/// probe order; the returned vector stays intensity-sorted. Prefer
/// dispatching by name through api::Session::Enumerate("exhaustive") — this
/// free function is the compatibility entry point it wraps.
Result<std::vector<CombinationRecord>> ExhaustiveAndCombinations(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, size_t max_n = 20,
    const ProbeOptions& options = ProbeOptions{},
    const EnumerationControl& control = EnumerationControl{});

}  // namespace core
}  // namespace hypre
