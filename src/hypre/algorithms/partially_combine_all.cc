#include "hypre/algorithms/partially_combine_all.h"

namespace hypre {
namespace core {

namespace {

Status RunAndRecord(const Combiner& combiner,
                    const CombinationProber& prober, Combination combination,
                    std::vector<CombinationRecord>* records,
                    std::vector<Combination>* queries_ran) {
  CombinationRecord record;
  record.num_predicates = combination.NumPredicates();
  record.intensity = combiner.ComputeIntensity(combination);
  HYPRE_ASSIGN_OR_RETURN(record.num_tuples, prober.Count(combination));
  record.predicate_sql = combiner.ToSql(combination);
  record.combination = combination;
  records->push_back(std::move(record));
  queries_ran->push_back(std::move(combination));
  return Status::OK();
}

}  // namespace

Result<std::vector<CombinationRecord>> PartiallyCombineAll(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer) {
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  std::vector<CombinationRecord> records;
  std::vector<Combination> queries_ran;
  std::set<std::string> attributes_used;

  for (size_t i = 0; i < preferences.size(); ++i) {
    const std::string& attr = preferences[i].attribute_key;
    if (queries_ran.empty()) {
      HYPRE_RETURN_NOT_OK(RunAndRecord(combiner, prober,
                                       combiner.Single(i), &records,
                                       &queries_ran));
      attributes_used.insert(attr);
      continue;
    }
    if (attributes_used.count(attr) == 0) {
      // New attribute: AND-extend every combination created so far.
      std::vector<Combination> to_run;
      to_run.reserve(queries_ran.size());
      for (const Combination& c : queries_ran) {
        to_run.push_back(combiner.AndExtend(c, i));
      }
      for (Combination& c : to_run) {
        HYPRE_RETURN_NOT_OK(RunAndRecord(combiner, prober, std::move(c),
                                         &records, &queries_ran));
      }
      attributes_used.insert(attr);
      continue;
    }
    // Attribute already used.
    const Combination last = queries_ran.back();
    if (!last.HasAnd()) {
      // Single-attribute combination so far: OR into it only.
      HYPRE_RETURN_NOT_OK(RunAndRecord(combiner, prober,
                                       combiner.OrInto(last, i), &records,
                                       &queries_ran));
      continue;
    }
    // Mixed combination: AND-extend earlier combinations that do not
    // constrain this attribute, then OR into the latest combination.
    std::vector<Combination> to_run;
    for (const Combination& c : queries_ran) {
      if (!c.ContainsAttribute(attr)) {
        to_run.push_back(combiner.AndExtend(c, i));
      }
    }
    to_run.push_back(combiner.OrInto(last, i));
    for (Combination& c : to_run) {
      HYPRE_RETURN_NOT_OK(RunAndRecord(combiner, prober, std::move(c),
                                       &records, &queries_ran));
    }
  }
  return records;
}

}  // namespace core
}  // namespace hypre
