#include "hypre/algorithms/partially_combine_all.h"

#include <set>

namespace hypre {
namespace core {

namespace {

/// Probes one generation of combinations — as a single batch frontier when
/// batching is on, scalar probes otherwise — and appends a record per
/// combination in generation order. The budget admits a generation-order
/// prefix BEFORE probing (identical truncation batched or scalar); sets
/// `*budget_dry` when the generation did not fully fit.
Status RunGeneration(const Combiner& combiner, const BatchProber& batch,
                     const EnumerationControl& control,
                     std::vector<Combination> generation,
                     std::vector<CombinationRecord>* records,
                     std::vector<Combination>* queries_ran,
                     bool* budget_dry) {
  size_t admitted = control.Admit(generation.size());
  if (admitted < generation.size()) {
    *budget_dry = true;
    generation.resize(admitted);
    if (generation.empty()) return Status::OK();
  }
  HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                         batch.CountMaybeBatched(generation));
  for (size_t g = 0; g < generation.size(); ++g) {
    CombinationRecord record;
    record.num_predicates = generation[g].NumPredicates();
    record.num_tuples = counts[g];
    record.intensity = combiner.ComputeIntensity(generation[g]);
    record.predicate_sql = combiner.ToSql(generation[g]);
    record.combination = generation[g];
    control.Emit(record);
    records->push_back(std::move(record));
    queries_ran->push_back(std::move(generation[g]));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<CombinationRecord>> PartiallyCombineAll(
    const std::vector<PreferenceAtom>& preferences,
    const QueryEnhancer& enhancer, const ProbeOptions& options,
    const EnumerationControl& control) {
  Combiner combiner(&preferences);
  CombinationProber prober(&combiner, &enhancer.probe_engine());
  BatchProber batch(&prober, options);
  if (options.batching && !preferences.empty()) {
    HYPRE_RETURN_NOT_OK(prober.PrefetchAll());
  }
  std::vector<CombinationRecord> records;
  std::vector<Combination> queries_ran;
  std::set<std::string> attributes_used;
  bool budget_dry = false;

  auto run = [&](std::vector<Combination> generation) {
    return RunGeneration(combiner, batch, control, std::move(generation),
                         &records, &queries_ran, &budget_dry);
  };

  for (size_t i = 0; i < preferences.size() && !budget_dry; ++i) {
    const std::string& attr = preferences[i].attribute_key;
    if (queries_ran.empty()) {
      HYPRE_RETURN_NOT_OK(run({combiner.Single(i)}));
      attributes_used.insert(attr);
      continue;
    }
    if (attributes_used.count(attr) == 0) {
      // New attribute: AND-extend every combination created so far — one
      // generation, one batch.
      std::vector<Combination> generation;
      generation.reserve(queries_ran.size());
      for (const Combination& c : queries_ran) {
        generation.push_back(combiner.AndExtend(c, i));
      }
      HYPRE_RETURN_NOT_OK(run(std::move(generation)));
      attributes_used.insert(attr);
      continue;
    }
    // Attribute already used.
    const Combination last = queries_ran.back();
    if (!last.HasAnd()) {
      // Single-attribute combination so far: OR into it only.
      HYPRE_RETURN_NOT_OK(run({combiner.OrInto(last, i)}));
      continue;
    }
    // Mixed combination: AND-extend earlier combinations that do not
    // constrain this attribute, then OR into the latest combination.
    std::vector<Combination> generation;
    for (const Combination& c : queries_ran) {
      if (!c.ContainsAttribute(attr)) {
        generation.push_back(combiner.AndExtend(c, i));
      }
    }
    generation.push_back(combiner.OrInto(last, i));
    HYPRE_RETURN_NOT_OK(run(std::move(generation)));
  }
  return records;
}

}  // namespace core
}  // namespace hypre
