// Shared result record for the combination-enumeration algorithms.
//
// Every algorithm in this directory consumes a preference list sorted
// descending by intensity and emits, per combination probed,
//   <#predicates, #tuples returned, combined intensity>
// exactly as the dissertation's experiment harness records (§5.3).
#pragma once

#include <string>
#include <vector>

#include "hypre/combination.h"

namespace hypre {
namespace core {

struct CombinationRecord {
  size_t num_predicates = 0;
  size_t num_tuples = 0;
  double intensity = 0.0;
  std::string predicate_sql;
  Combination combination;

  /// \brief An applicable combination returns at least one tuple
  /// (Definition 15).
  bool applicable() const { return num_tuples > 0; }
};

}  // namespace core
}  // namespace hypre
