// Shared result record and run controls for the combination-enumeration
// algorithms.
//
// Every algorithm in this directory consumes a preference list sorted
// descending by intensity and emits, per combination probed,
//   <#predicates, #tuples returned, combined intensity>
// exactly as the dissertation's experiment harness records (§5.3).
//
// EnumerationControl is the per-run control plane the unified API
// (src/hypre/api/) threads through every algorithm: a probe budget that
// bounds how many combination probes a run may spend (with a truncation
// verdict when it stops early), and streaming sinks that receive records /
// ranked tuples as they are produced instead of only in the final vector.
// Budgets are charged at the SAME granularity on the batched and scalar
// paths (a generation/frontier is admitted as a prefix before it is
// probed), so a budgeted run emits byte-identical records whether batching
// is on or off.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "hypre/combination.h"
#include "hypre/ranking.h"

namespace hypre {
namespace core {

struct CombinationRecord {
  size_t num_predicates = 0;
  size_t num_tuples = 0;
  double intensity = 0.0;
  std::string predicate_sql;
  Combination combination;

  /// \brief An applicable combination returns at least one tuple
  /// (Definition 15).
  bool applicable() const { return num_tuples > 0; }
};

/// \brief Streaming consumer of combination records, called in probe order
/// as each record is produced (before any final intensity sort).
using RecordSink = std::function<void(const CombinationRecord&)>;
/// \brief Streaming consumer of ranked tuples, called in rank order as the
/// Top-K walk emits them.
using TupleSink = std::function<void(const RankedTuple&)>;

/// \brief A bounded probe allowance. Combination probes (pair-table
/// entries, frontier members, expansion candidates, bias-random checks, TA
/// sorted-access rounds) are charged against it; once spent, enumeration
/// stops with a truncation verdict instead of running to completion.
class ProbeBudget {
 public:
  /// `limit` == 0 means unlimited.
  explicit ProbeBudget(size_t limit = 0) : limit_(limit) {}

  bool limited() const { return limit_ > 0; }
  size_t limit() const { return limit_; }
  size_t spent() const { return spent_; }
  size_t remaining() const {
    return limited() ? limit_ - spent_ : ~size_t{0};
  }
  bool exhausted() const { return limited() && spent_ >= limit_; }

  /// \brief Admits up to `n` probes: charges what fits and returns how many
  /// were admitted. A return < n means the budget ran dry.
  size_t Admit(size_t n) {
    if (!limited()) return n;
    size_t admitted = std::min(n, limit_ - spent_);
    spent_ += admitted;
    return admitted;
  }

 private:
  size_t limit_ = 0;
  size_t spent_ = 0;
};

/// \brief Per-run control plane: optional probe budget, optional streaming
/// sinks, and the truncation flag a budget-stopped run raises. The default
/// (all null) reproduces the historical unbounded, collect-then-return
/// behavior, so pre-API call sites pass `{}`.
struct EnumerationControl {
  ProbeBudget* budget = nullptr;       // null = unlimited
  const RecordSink* record_sink = nullptr;
  const TupleSink* tuple_sink = nullptr;
  bool* truncated = nullptr;  // set when a run stops early on budget

  /// \brief Admits up to `n` probes; raises the truncation flag when fewer
  /// than `n` fit. Algorithms probe exactly the admitted prefix of the
  /// pending generation and then stop.
  size_t Admit(size_t n) const {
    if (budget == nullptr) return n;
    size_t admitted = budget->Admit(n);
    if (admitted < n && truncated != nullptr) *truncated = true;
    return admitted;
  }

  void Emit(const CombinationRecord& record) const {
    if (record_sink != nullptr && *record_sink) (*record_sink)(record);
  }
  void Emit(const RankedTuple& tuple) const {
    if (tuple_sink != nullptr && *tuple_sink) (*tuple_sink)(tuple);
  }
};

}  // namespace core
}  // namespace hypre
