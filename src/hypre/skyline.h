// Attribute-based preferences and skyline queries (dissertation §1.4/§8.2).
//
// The dissertation sketches attribute-based preference nodes `<attr, func>`
// — e.g. <price, min> and <distance, min> for "the cheapest hotel close to
// the beach" — and notes that a preference graph with such nodes supports
// skyline queries. This module implements that extension:
//  * AttributePreference: a column plus an optimization direction;
//  * BlockNestedLoopSkyline: the classic BNL skyline operator returning the
//    tuples not dominated under the attribute preferences;
//  * RankSkylineByPriority: a total order over the skyline using qualitative
//    priorities between attributes ("price is more important than
//    distance"), expressed as per-attribute weights derived from the same
//    intensity machinery as the rest of HYPRE.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/key_bitmap.h"
#include "reldb/table.h"

namespace hypre {
namespace core {

struct AttributePreference {
  enum class Direction { kMin, kMax };
  std::string column;
  Direction direction = Direction::kMin;
  /// Relative importance (used only by RankSkylineByPriority); higher wins.
  double weight = 1.0;
};

/// \brief True if row `a` dominates row `b`: at least as good on every
/// preference attribute and strictly better on at least one. NULLs are
/// treated as worst (dominated by any concrete value on that attribute).
Result<bool> Dominates(const reldb::Table& table, reldb::RowId a,
                       reldb::RowId b,
                       const std::vector<AttributePreference>& prefs);

/// \brief Block-nested-loop skyline: row ids of tuples not dominated by any
/// other tuple, in table order. Requires at least one preference; all
/// preference columns must be numeric or NULL.
Result<std::vector<reldb::RowId>> BlockNestedLoopSkyline(
    const reldb::Table& table,
    const std::vector<AttributePreference>& prefs);

/// \brief Skyline restricted to the rows whose bit is set in `candidates`
/// (bit i == RowId i; num_bits must equal the table's row count).
///
/// NOTE: the bit positions here are table RowIds, NOT the probe engine's
/// dense key ids (those are interned in first-seen order over the possibly
/// joined base query). To restrict the skyline to keys matching a
/// predicate, map each matching key back to its row (e.g. via a hash index
/// on the key column) and set that RowId's bit — do not pass an engine
/// bitmap through unchanged.
Result<std::vector<reldb::RowId>> BlockNestedLoopSkyline(
    const reldb::Table& table, const std::vector<AttributePreference>& prefs,
    const KeyBitmap& candidates);

/// \brief Orders skyline rows by a weighted normalized score: each attribute
/// is min-max normalized over the skyline (inverted for kMin so that better
/// is larger), then combined as a weight-normalized sum. The weights play
/// the role of qualitative priorities between attribute nodes.
Result<std::vector<reldb::RowId>> RankSkylineByPriority(
    const reldb::Table& table, const std::vector<reldb::RowId>& skyline,
    const std::vector<AttributePreference>& prefs);

}  // namespace core
}  // namespace hypre
