#include "hypre/probe_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "hypre/delta_engine.h"
#include "hypre/telemetry/trace.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace core {

ProbeEngine::ProbeEngine(const reldb::Database* db, reldb::Query base_query,
                         std::string key_column)
    : db_(db),
      executor_(db),
      base_query_(std::move(base_query)),
      key_column_(std::move(key_column)),
      delta_(std::make_unique<DeltaEngine>(this, DeltaOptions{})) {}

ProbeEngine::~ProbeEngine() = default;

Result<uint64_t> ProbeEngine::Refresh() {
  // The span covers the epoch pin even when the journal is drained — a
  // traced request always shows where its version check happened.
  telemetry::TraceSpan span("delta", "refresh");
  return delta_->Refresh();
}

void ProbeEngine::set_delta_options(const DeltaOptions& options) {
  delta_->set_options(options);
}

using reldb::CompareOp;
using reldb::ExprKind;

namespace {

/// Flips a comparison operator for the mirrored `literal op column` form.
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // =, != are symmetric
  }
}

/// Collects the canonical keys of an n-ary chain, flattening nested nodes of
/// the same kind so `(a AND b) AND c` and `a AND (b AND c)` agree.
void CollectNaryKeys(const reldb::Expr& expr, ExprKind kind,
                     std::vector<std::string>* out) {
  if (expr.kind() == kind) {
    for (const auto& child :
         static_cast<const reldb::NaryExpr&>(expr).children()) {
      CollectNaryKeys(*child, kind, out);
    }
    return;
  }
  out->push_back(ProbeEngine::CanonicalKey(expr));
}

/// Collects the leaf-level subexpressions of `expr` (everything below the
/// AND/OR/NOT combinators — the nodes LeafBitmap would query one by one).
void CollectLeaves(const reldb::ExprPtr& expr,
                   std::vector<reldb::ExprPtr>* out) {
  switch (expr->kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& child :
           static_cast<const reldb::NaryExpr&>(*expr).children()) {
        CollectLeaves(child, out);
      }
      return;
    case ExprKind::kNot:
      CollectLeaves(static_cast<const reldb::NotExpr&>(*expr).child(), out);
      return;
    default:
      out->push_back(expr);
  }
}

}  // namespace

std::string ProbeEngine::CanonicalKey(const reldb::Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr.ToString();
    case ExprKind::kCompare: {
      const auto& cmp = static_cast<const reldb::CompareExpr&>(expr);
      const reldb::Expr* lhs = cmp.lhs().get();
      const reldb::Expr* rhs = cmp.rhs().get();
      CompareOp op = cmp.op();
      // Normalize `literal op column` to `column op' literal`.
      if (lhs->kind() == ExprKind::kLiteral &&
          rhs->kind() != ExprKind::kLiteral) {
        std::swap(lhs, rhs);
        op = MirrorOp(op);
      }
      return CanonicalKey(*lhs) + reldb::CompareOpToString(op) +
             CanonicalKey(*rhs);
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const reldb::BetweenExpr&>(expr);
      return CanonicalKey(*bt.column()) + " BETWEEN " + bt.lo().ToString() +
             " AND " + bt.hi().ToString();
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const reldb::InListExpr&>(expr);
      std::vector<reldb::Value> values = in.values();
      std::sort(values.begin(), values.end());
      std::string key = CanonicalKey(*in.column()) + " IN (";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) key += ",";
        key += values[i].ToString();
      }
      return key + ")";
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<std::string> keys;
      CollectNaryKeys(expr, expr.kind(), &keys);
      std::sort(keys.begin(), keys.end());
      std::string out = "(";
      const char* sep = expr.kind() == ExprKind::kAnd ? " AND " : " OR ";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out += sep;
        out += keys[i];
      }
      return out + ")";
    }
    case ExprKind::kNot:
      return "NOT(" +
             CanonicalKey(*static_cast<const reldb::NotExpr&>(expr).child()) +
             ")";
  }
  return expr.ToString();  // unreachable; keeps the compiler happy
}

Status ProbeEngine::EnsureUniverse() const {
  if (universe_ready_) return Status::OK();
  // The fresh scan bakes in every mutation recorded so far; re-anchor the
  // delta cursor before scanning so Refresh only replays what comes after.
  delta_->OnUniverseInterned(db_->journal().sequence());
  HYPRE_RETURN_NOT_OK(
      executor_.InternDistinctValues(base_query_, key_column_, &dict_));
  universe_ = KeyBitmap(dict_.size(), /*all_set=*/true);
  RebuildKeyOrder();
  universe_ready_ = true;
  return Status::OK();
}

void ProbeEngine::RebuildKeyOrder() const {
  sorted_ids_.resize(dict_.size());
  for (uint32_t id = 0; id < dict_.size(); ++id) sorted_ids_[id] = id;
  // Tombstoned ids keep their stale value and sort wherever it lands; they
  // never surface because every probe result is masked by the live mask.
  std::sort(sorted_ids_.begin(), sorted_ids_.end(),
            [&](uint32_t a, uint32_t b) {
              return dict_.value(a).Compare(dict_.value(b)) < 0;
            });
  rank_of_id_.resize(dict_.size());
  for (uint32_t rank = 0; rank < sorted_ids_.size(); ++rank) {
    rank_of_id_[sorted_ids_[rank]] = rank;
  }
}

EngineSnapshotImage ProbeEngine::CaptureSnapshotImage() const {
  EngineSnapshotImage image;
  image.universe_ready = universe_ready_;
  if (!universe_ready_) return image;
  image.epoch = epoch_;
  image.journal_cursor = delta_->stats().journal_cursor;
  image.keys.reserve(dict_.size());
  for (uint32_t id = 0; id < dict_.size(); ++id) {
    image.keys.emplace_back(dict_.value(id), universe_.Test(id));
  }
  image.free_ids = free_ids_;
  image.leaves.reserve(leaf_cache_.size());
  // Stable output order: sort by cache key so identical states produce
  // byte-identical snapshots.
  std::vector<const std::pair<const std::string, LeafEntry>*> entries;
  entries.reserve(leaf_cache_.size());
  for (const auto& kv : leaf_cache_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : entries) {
    EngineSnapshotImage::Leaf leaf;
    leaf.predicate_sql = kv->second.expr->ToString();
    const KeyBitmap& bits = *kv->second.bits;
    leaf.words.assign(bits.word_data(), bits.word_data() + bits.num_words());
    image.leaves.push_back(std::move(leaf));
  }
  return image;
}

Status ProbeEngine::RestoreSnapshotImage(const EngineSnapshotImage& image) {
  if (universe_ready_ || dict_.size() != 0) {
    return Status::InvalidArgument(
        "RestoreSnapshotImage requires a freshly constructed engine");
  }
  if (!image.universe_ready) return Status::OK();  // interns lazily later

  // Parse and validate everything BEFORE touching engine state, so a
  // corrupt image fails closed with the engine still pristine.
  size_t num_keys = image.keys.size();
  size_t words_per_leaf = (num_keys + KeyBitmap::kWordBits - 1) /
                          KeyBitmap::kWordBits;
  struct ParsedLeaf {
    reldb::ExprPtr expr;
    const EngineSnapshotImage::Leaf* src;
  };
  std::vector<ParsedLeaf> parsed;
  parsed.reserve(image.leaves.size());
  for (const EngineSnapshotImage::Leaf& leaf : image.leaves) {
    auto expr = sqlparse::ParsePredicate(leaf.predicate_sql);
    if (!expr.ok()) {
      return Status::Internal("snapshot leaf predicate '" +
                              leaf.predicate_sql +
                              "' failed to parse: " + expr.status().message());
    }
    if (leaf.words.size() != words_per_leaf) {
      return Status::Internal(StringFormat(
          "snapshot leaf '%s' carries %zu bitmap words, universe of %zu "
          "keys needs %zu",
          leaf.predicate_sql.c_str(), leaf.words.size(), num_keys,
          words_per_leaf));
    }
    parsed.push_back({std::move(expr).TakeValue(), &leaf});
  }
  for (uint32_t id : image.free_ids) {
    if (id >= num_keys) {
      return Status::Internal(StringFormat(
          "snapshot free id %u out of range (universe of %zu keys)",
          unsigned{id}, num_keys));
    }
  }

  size_t num_dead = 0;
  dict_.Reserve(num_keys);
  for (size_t id = 0; id < num_keys; ++id) {
    dict_.Restore(image.keys[id].first, image.keys[id].second);
    if (!image.keys[id].second) ++num_dead;
  }
  universe_ = KeyBitmap(num_keys);
  for (size_t id = 0; id < num_keys; ++id) {
    if (image.keys[id].second) universe_.Set(id);
  }
  num_tombstones_ = num_dead;
  free_ids_ = image.free_ids;
  epoch_ = image.epoch;
  leaf_cache_.clear();
  count_cache_.clear();
  for (ParsedLeaf& p : parsed) {
    auto bits = std::make_unique<KeyBitmap>(num_keys);
    std::copy(p.src->words.begin(), p.src->words.end(), bits->word_data());
    std::string key = CanonicalKey(*p.expr);
    leaf_cache_[key] = LeafEntry{std::move(p.expr), std::move(bits)};
  }
  RebuildKeyOrder();
  universe_ready_ = true;
  delta_->OnSnapshotRestored(image.journal_cursor, image.epoch);
  return Status::OK();
}

Result<const KeyBitmap*> ProbeEngine::UniverseBitmap() const {
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  return &universe_;
}

Result<size_t> ProbeEngine::UniverseSize() const {
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  return dict_.size();
}

Result<const KeyBitmap*> ProbeEngine::LeafBitmap(
    const reldb::ExprPtr& expr) const {
  std::string key = CanonicalKey(*expr);
  auto it = leaf_cache_.find(key);
  if (it != leaf_cache_.end()) return it->second.bits.get();
  // Cache MISSES get a span (each one runs a relational query); hits are
  // visible as the stats ratio instead — noting every hit would flood the
  // bounded trace buffer from the probe hot path.
  telemetry::TraceSpan span("engine", "leaf_query");
  ++num_leaf_queries_;
  reldb::Query query = base_query_;
  query.where = query.where ? reldb::MakeAnd(query.where, expr) : expr;
  // First-touch: with a pool attached the fresh bitmap's pages are zeroed
  // by the workers that will probe them.
  auto bits = std::make_unique<KeyBitmap>(dict_.size(), pool_, pool_threads_);
  HYPRE_RETURN_NOT_OK(executor_.ForEachDenseId(
      query, key_column_, dict_, [&](uint32_t id) { bits->Set(id); }));
  const KeyBitmap* ptr = bits.get();
  leaf_cache_.emplace(std::move(key), LeafEntry{expr, std::move(bits)});
  return ptr;
}

Status ProbeEngine::PrefetchLeaves(
    const std::vector<reldb::ExprPtr>& exprs) const {
  telemetry::TraceSpan span("engine", "prefetch_leaves");
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  std::vector<reldb::ExprPtr> leaves;
  for (const auto& expr : exprs) {
    if (expr) CollectLeaves(expr, &leaves);
  }
  // Keep only leaves that are neither cached nor already pending.
  std::vector<reldb::ExprPtr> pending;
  std::vector<std::string> pending_keys;
  std::unordered_set<std::string> queued;
  for (const auto& leaf : leaves) {
    std::string key = CanonicalKey(*leaf);
    if (leaf_cache_.count(key) > 0 || !queued.insert(key).second) continue;
    pending.push_back(leaf);
    pending_keys.push_back(std::move(key));
  }
  if (pending.empty()) return Status::OK();

  std::vector<std::unique_ptr<KeyBitmap>> bitmaps;
  bitmaps.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    bitmaps.push_back(
        std::make_unique<KeyBitmap>(dict_.size(), pool_, pool_threads_));
  }
  HYPRE_RETURN_NOT_OK(executor_.ForEachDenseIdMulti(
      base_query_, key_column_, dict_, pending,
      [&](size_t p, uint32_t id) { bitmaps[p]->Set(id); }));
  // One leaf query per distinct leaf, even though the bulk pass ran the base
  // query only once (the statistics contract in the header).
  num_leaf_queries_ += pending.size();
  for (size_t i = 0; i < pending.size(); ++i) {
    leaf_cache_.emplace(std::move(pending_keys[i]),
                        LeafEntry{pending[i], std::move(bitmaps[i])});
  }
  return Status::OK();
}

Result<KeyBitmap> ProbeEngine::Eval(const reldb::ExprPtr& expr) const {
  switch (expr->kind()) {
    case ExprKind::kAnd: {
      const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
      bool first = true;
      KeyBitmap acc;
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(KeyBitmap child_bits, Eval(child));
        if (first) {
          acc = std::move(child_bits);
          first = false;
        } else {
          acc.AndWith(child_bits);
        }
        if (acc.None()) break;  // short-circuit
      }
      return acc;
    }
    case ExprKind::kOr: {
      const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
      KeyBitmap acc(dict_.size());
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(KeyBitmap child_bits, Eval(child));
        acc.OrWith(child_bits);
      }
      return acc;
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const reldb::NotExpr&>(*expr);
      HYPRE_ASSIGN_OR_RETURN(KeyBitmap child_bits, Eval(n.child()));
      child_bits.FlipAll();  // complement against the key universe
      // The flip resurrects tombstoned ids; mask them back out.
      if (num_tombstones_ > 0) child_bits.AndWith(universe_);
      return child_bits;
    }
    default: {
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* leaf, LeafBitmap(expr));
      KeyBitmap bits = *leaf;
      // Cached leaves may carry stale bits at tombstoned ids (scrubbed only
      // on recycle or compaction); the live mask hides them.
      if (num_tombstones_ > 0) bits.AndWith(universe_);
      return bits;
    }
  }
}

Result<KeyBitmap> ProbeEngine::EvalBitmap(
    const reldb::ExprPtr& predicate) const {
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  if (!predicate) return universe_;
  return Eval(predicate);
}

Result<size_t> ProbeEngine::CountMatching(
    const reldb::ExprPtr& predicate) const {
  std::string key = predicate ? CanonicalKey(*predicate) : "";
  auto it = count_cache_.find(key);
  if (it != count_cache_.end()) {
    ++num_cache_hits_;
    return it->second;
  }
  HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, EvalBitmap(predicate));
  size_t count = bits.Count();
  count_cache_.emplace(std::move(key), count);
  return count;
}

std::vector<reldb::Value> ProbeEngine::KeysOf(const KeyBitmap& bits) const {
  // The bitmap must come from this engine: its bits are dense key ids.
  // Smaller bitmaps are fine — ids are stable under tail growth, and the
  // empty-combination degenerate is a 0-bit bitmap — but a LARGER one can
  // only be foreign (or predate an epoch compaction that shrank the id
  // space), so its ids would name the wrong keys.
  assert(bits.num_bits() <= dict_.size());
  // Collect the set ids, then order them by their precomputed rank in the
  // Value total order — O(count log count) instead of a full universe scan
  // per call (KeysOf sits in the Top-K record-walk hot loop). Bits past the
  // universe (foreign bitmaps) are ignored, as the old scan did.
  std::vector<uint32_t> ranks;
  bits.ForEachSet([&](uint32_t id) {
    if (id < rank_of_id_.size()) ranks.push_back(rank_of_id_[id]);
  });
  std::sort(ranks.begin(), ranks.end());
  std::vector<reldb::Value> out;
  out.reserve(ranks.size());
  for (uint32_t rank : ranks) out.push_back(dict_.value(sorted_ids_[rank]));
  return out;
}

Result<std::vector<reldb::Value>> ProbeEngine::MatchingKeys(
    const reldb::ExprPtr& predicate) const {
  HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, EvalBitmap(predicate));
  return KeysOf(bits);
}

}  // namespace core
}  // namespace hypre
