#include "hypre/probe_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "hypre/delta_engine.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"
#include "sqlparse/parser.h"

namespace hypre {
namespace core {

ScopedProbeStatsCollector::ScopedProbeStatsCollector(const ProbeEngine* engine,
                                                     ProbeStats* sink)
    : engine_(engine),
      sink_(sink),
      previous_(internal::ActiveProbeStatsSlot()) {
  internal::ActiveProbeStatsSlot() = sink;
}

ScopedProbeStatsCollector::~ScopedProbeStatsCollector() {
  internal::ActiveProbeStatsSlot() = previous_;
  if (engine_ != nullptr && sink_ != nullptr) {
    engine_->FoldProbeStats(*sink_);
  }
}

ProbeEngine::ProbeEngine(const reldb::Database* db, reldb::Query base_query,
                         std::string key_column)
    : db_(db),
      executor_(db),
      base_query_(std::move(base_query)),
      key_column_(std::move(key_column)),
      delta_(std::make_unique<DeltaEngine>(this, DeltaOptions{})) {}

ProbeEngine::~ProbeEngine() = default;

Result<uint64_t> ProbeEngine::ApplyRefreshLocked() {
  // Serialize against in-flight cache lookups: the delta pass rewrites the
  // leaf cache, count cache, and key order in place.
  std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
  return delta_->Refresh();
}

Result<uint64_t> ProbeEngine::Refresh() {
  // The span covers the epoch pin even when the journal is drained — a
  // traced request always shows where its version check happened.
  telemetry::TraceSpan span("delta", "refresh");
  std::lock_guard<std::mutex> lock(refresh_mu_);
  if (pin_count_ > 0) {
    // Readers hold the epoch: defer the journal suffix instead of resizing
    // bitmaps out from under their handles. The suffix applies when the
    // pins drain (next refresh-bearing entry point at pin count zero).
    refresh_deferred_ = true;
    num_deferred_refreshes_.fetch_add(1, std::memory_order_relaxed);
    delta_->NoteRefreshDeferred();
    HYPRE_TELEMETRY_STMT(
        telemetry::MetricsRegistry::Global()
            .GetCounter("hypre_delta_refresh_deferred_total", "delta",
                        "Refreshes deferred because readers pinned the epoch")
            ->Increment());
    return epoch_.load(std::memory_order_relaxed);
  }
  refresh_deferred_ = false;
  return ApplyRefreshLocked();
}

Result<uint64_t> ProbeEngine::RefreshBlocking() {
  std::unique_lock<std::mutex> lock(refresh_mu_);
  pins_cv_.wait(lock, [&] { return pin_count_ == 0; });
  refresh_deferred_ = false;
  return ApplyRefreshLocked();
}

Result<ProbeEngine::EpochPin> ProbeEngine::PinEpoch(bool refresh_first) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  // Only refresh-first pins drain the journal (possibly including a
  // previously deferred suffix): a refresh=false pin is a PURE reader and
  // must never touch base tables, or it would race a concurrent writer the
  // single-writer contract allows.
  if (refresh_first) {
    if (pin_count_ == 0) {
      refresh_deferred_ = false;
      HYPRE_ASSIGN_OR_RETURN(uint64_t epoch, ApplyRefreshLocked());
      (void)epoch;
    } else {
      // Readers in flight: pin the live epoch instead of blocking behind
      // them; the journal suffix is deferred exactly like Refresh() above.
      refresh_deferred_ = true;
      num_deferred_refreshes_.fetch_add(1, std::memory_order_relaxed);
      delta_->NoteRefreshDeferred();
      HYPRE_TELEMETRY_STMT(
          telemetry::MetricsRegistry::Global()
              .GetCounter("hypre_delta_refresh_deferred_total", "delta",
                          "Refreshes deferred because readers pinned the "
                          "epoch")
              ->Increment());
    }
  }
  ++pin_count_;
  return EpochPin(this, epoch_.load(std::memory_order_relaxed));
}

void ProbeEngine::Unpin() const {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  --pin_count_;
  if (pin_count_ == 0) pins_cv_.notify_all();
}

void ProbeEngine::set_delta_options(const DeltaOptions& options) {
  delta_->set_options(options);
}

using reldb::CompareOp;
using reldb::ExprKind;

namespace {

/// Flips a comparison operator for the mirrored `literal op column` form.
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // =, != are symmetric
  }
}

/// Collects the canonical keys of an n-ary chain, flattening nested nodes of
/// the same kind so `(a AND b) AND c` and `a AND (b AND c)` agree.
void CollectNaryKeys(const reldb::Expr& expr, ExprKind kind,
                     std::vector<std::string>* out) {
  if (expr.kind() == kind) {
    for (const auto& child :
         static_cast<const reldb::NaryExpr&>(expr).children()) {
      CollectNaryKeys(*child, kind, out);
    }
    return;
  }
  out->push_back(ProbeEngine::CanonicalKey(expr));
}

/// Collects the leaf-level subexpressions of `expr` (everything below the
/// AND/OR/NOT combinators — the nodes LeafBitmap would query one by one).
void CollectLeaves(const reldb::ExprPtr& expr,
                   std::vector<reldb::ExprPtr>* out) {
  switch (expr->kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& child :
           static_cast<const reldb::NaryExpr&>(*expr).children()) {
        CollectLeaves(child, out);
      }
      return;
    case ExprKind::kNot:
      CollectLeaves(static_cast<const reldb::NotExpr&>(*expr).child(), out);
      return;
    default:
      out->push_back(expr);
  }
}

}  // namespace

std::string ProbeEngine::CanonicalKey(const reldb::Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr.ToString();
    case ExprKind::kCompare: {
      const auto& cmp = static_cast<const reldb::CompareExpr&>(expr);
      const reldb::Expr* lhs = cmp.lhs().get();
      const reldb::Expr* rhs = cmp.rhs().get();
      CompareOp op = cmp.op();
      // Normalize `literal op column` to `column op' literal`.
      if (lhs->kind() == ExprKind::kLiteral &&
          rhs->kind() != ExprKind::kLiteral) {
        std::swap(lhs, rhs);
        op = MirrorOp(op);
      }
      return CanonicalKey(*lhs) + reldb::CompareOpToString(op) +
             CanonicalKey(*rhs);
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const reldb::BetweenExpr&>(expr);
      return CanonicalKey(*bt.column()) + " BETWEEN " + bt.lo().ToString() +
             " AND " + bt.hi().ToString();
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const reldb::InListExpr&>(expr);
      std::vector<reldb::Value> values = in.values();
      std::sort(values.begin(), values.end());
      std::string key = CanonicalKey(*in.column()) + " IN (";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) key += ",";
        key += values[i].ToString();
      }
      return key + ")";
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<std::string> keys;
      CollectNaryKeys(expr, expr.kind(), &keys);
      std::sort(keys.begin(), keys.end());
      std::string out = "(";
      const char* sep = expr.kind() == ExprKind::kAnd ? " AND " : " OR ";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out += sep;
        out += keys[i];
      }
      return out + ")";
    }
    case ExprKind::kNot:
      return "NOT(" +
             CanonicalKey(*static_cast<const reldb::NotExpr&>(expr).child()) +
             ")";
  }
  return expr.ToString();  // unreachable; keeps the compiler happy
}

Status ProbeEngine::EnsureUniverse() const {
  // Double-checked: the release store below publishes the interned state,
  // and after an epoch compaction the re-intern races are resolved by the
  // unique lock (one thread interns, the rest wait and see ready).
  if (universe_ready_.load(std::memory_order_acquire)) return Status::OK();
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  return EnsureUniverseLocked();
}

Status ProbeEngine::EnsureUniverseLocked() const {
  if (universe_ready_.load(std::memory_order_relaxed)) return Status::OK();
  // The fresh scan bakes in every mutation recorded so far; re-anchor the
  // delta cursor before scanning so Refresh only replays what comes after.
  delta_->OnUniverseInterned(db_->journal().sequence());
  HYPRE_RETURN_NOT_OK(
      executor_.InternDistinctValues(base_query_, key_column_, &dict_));
  universe_ = KeyBitmap(dict_.size(), /*all_set=*/true);
  RebuildKeyOrder();
  universe_ready_.store(true, std::memory_order_release);
  return Status::OK();
}

void ProbeEngine::RebuildKeyOrder() const {
  sorted_ids_.resize(dict_.size());
  for (uint32_t id = 0; id < dict_.size(); ++id) sorted_ids_[id] = id;
  // Tombstoned ids keep their stale value and sort wherever it lands; they
  // never surface because every probe result is masked by the live mask.
  std::sort(sorted_ids_.begin(), sorted_ids_.end(),
            [&](uint32_t a, uint32_t b) {
              return dict_.value(a).Compare(dict_.value(b)) < 0;
            });
  rank_of_id_.resize(dict_.size());
  for (uint32_t rank = 0; rank < sorted_ids_.size(); ++rank) {
    rank_of_id_[sorted_ids_[rank]] = rank;
  }
}

EngineSnapshotImage ProbeEngine::CaptureSnapshotImage() const {
  // A shared lock is enough: concurrent readers only ADD cache entries
  // (under the unique lock), never mutate the universe or existing leaves,
  // so the captured image is one consistent engine state.
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  EngineSnapshotImage image;
  image.universe_ready = universe_ready_.load(std::memory_order_acquire);
  if (!image.universe_ready) return image;
  image.epoch = epoch_.load(std::memory_order_relaxed);
  image.journal_cursor = delta_->stats().journal_cursor;
  image.keys.reserve(dict_.size());
  for (uint32_t id = 0; id < dict_.size(); ++id) {
    image.keys.emplace_back(dict_.value(id), universe_.Test(id));
  }
  image.free_ids = free_ids_;
  image.leaves.reserve(leaf_cache_.size());
  // Stable output order: sort by cache key so identical states produce
  // byte-identical snapshots.
  std::vector<const std::pair<const std::string, LeafEntry>*> entries;
  entries.reserve(leaf_cache_.size());
  for (const auto& kv : leaf_cache_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : entries) {
    EngineSnapshotImage::Leaf leaf;
    leaf.predicate_sql = kv->second.expr->ToString();
    const KeyBitmap& bits = *kv->second.bits;
    leaf.words.assign(bits.word_data(), bits.word_data() + bits.num_words());
    image.leaves.push_back(std::move(leaf));
  }
  return image;
}

Status ProbeEngine::RestoreSnapshotImage(const EngineSnapshotImage& image) {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  if (universe_ready_.load(std::memory_order_relaxed) || dict_.size() != 0) {
    return Status::InvalidArgument(
        "RestoreSnapshotImage requires a freshly constructed engine");
  }
  if (!image.universe_ready) return Status::OK();  // interns lazily later

  // Parse and validate everything BEFORE touching engine state, so a
  // corrupt image fails closed with the engine still pristine.
  size_t num_keys = image.keys.size();
  size_t words_per_leaf = (num_keys + KeyBitmap::kWordBits - 1) /
                          KeyBitmap::kWordBits;
  struct ParsedLeaf {
    reldb::ExprPtr expr;
    const EngineSnapshotImage::Leaf* src;
  };
  std::vector<ParsedLeaf> parsed;
  parsed.reserve(image.leaves.size());
  for (const EngineSnapshotImage::Leaf& leaf : image.leaves) {
    auto expr = sqlparse::ParsePredicate(leaf.predicate_sql);
    if (!expr.ok()) {
      return Status::Internal("snapshot leaf predicate '" +
                              leaf.predicate_sql +
                              "' failed to parse: " + expr.status().message());
    }
    if (leaf.words.size() != words_per_leaf) {
      return Status::Internal(StringFormat(
          "snapshot leaf '%s' carries %zu bitmap words, universe of %zu "
          "keys needs %zu",
          leaf.predicate_sql.c_str(), leaf.words.size(), num_keys,
          words_per_leaf));
    }
    parsed.push_back({std::move(expr).TakeValue(), &leaf});
  }
  for (uint32_t id : image.free_ids) {
    if (id >= num_keys) {
      return Status::Internal(StringFormat(
          "snapshot free id %u out of range (universe of %zu keys)",
          unsigned{id}, num_keys));
    }
  }

  size_t num_dead = 0;
  dict_.Reserve(num_keys);
  for (size_t id = 0; id < num_keys; ++id) {
    dict_.Restore(image.keys[id].first, image.keys[id].second);
    if (!image.keys[id].second) ++num_dead;
  }
  universe_ = KeyBitmap(num_keys);
  for (size_t id = 0; id < num_keys; ++id) {
    if (image.keys[id].second) universe_.Set(id);
  }
  num_tombstones_ = num_dead;
  free_ids_ = image.free_ids;
  epoch_ = image.epoch;
  leaf_cache_.clear();
  count_cache_.clear();
  for (ParsedLeaf& p : parsed) {
    auto bits = std::make_unique<KeyBitmap>(num_keys);
    std::copy(p.src->words.begin(), p.src->words.end(), bits->word_data());
    std::string key = CanonicalKey(*p.expr);
    leaf_cache_[key] = LeafEntry{std::move(p.expr), std::move(bits)};
  }
  RebuildKeyOrder();
  universe_ready_.store(true, std::memory_order_release);
  delta_->OnSnapshotRestored(image.journal_cursor, image.epoch);
  return Status::OK();
}

Result<const KeyBitmap*> ProbeEngine::UniverseBitmap() const {
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  return &universe_;
}

Result<size_t> ProbeEngine::UniverseSize() const {
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  return dict_.size();
}

Result<const KeyBitmap*> ProbeEngine::LeafBitmap(
    const reldb::ExprPtr& expr) const {
  std::string key = CanonicalKey(*expr);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = leaf_cache_.find(key);
    // The raw pointer outlives the lock: entries are node-stable
    // (unique_ptr payload) and only erased at pin count zero.
    if (it != leaf_cache_.end()) return it->second.bits.get();
  }
  // Miss: upgrade to the unique lock and re-check (another thread may have
  // materialized the leaf in the window). The DB query runs UNDER the
  // unique lock — cold path only — which keeps the one-query-per-distinct-
  // leaf statistics contract exact under racing misses.
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  auto it = leaf_cache_.find(key);
  if (it != leaf_cache_.end()) return it->second.bits.get();
  // Cache MISSES get a span (each one runs a relational query); hits are
  // visible as the stats ratio instead — noting every hit would flood the
  // bounded trace buffer from the probe hot path.
  telemetry::TraceSpan span("engine", "leaf_query");
  NoteLeafQueries(1);
  reldb::Query query = base_query_;
  query.where = query.where ? reldb::MakeAnd(query.where, expr) : expr;
  // First-touch: with a pool attached the fresh bitmap's pages are zeroed
  // by the workers that will probe them.
  auto bits = std::make_unique<KeyBitmap>(dict_.size(), task_pool(),
                                          task_pool_threads());
  HYPRE_RETURN_NOT_OK(executor_.ForEachDenseId(
      query, key_column_, dict_, [&](uint32_t id) { bits->Set(id); }));
  const KeyBitmap* ptr = bits.get();
  leaf_cache_.emplace(std::move(key), LeafEntry{expr, std::move(bits)});
  return ptr;
}

Status ProbeEngine::PrefetchLeaves(
    const std::vector<reldb::ExprPtr>& exprs) const {
  telemetry::TraceSpan span("engine", "prefetch_leaves");
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  std::vector<reldb::ExprPtr> leaves;
  for (const auto& expr : exprs) {
    if (expr) CollectLeaves(expr, &leaves);
  }
  // Keep only leaves that are neither cached nor already pending.
  std::vector<reldb::ExprPtr> pending;
  std::vector<std::string> pending_keys;
  auto collect_pending = [&] {
    pending.clear();
    pending_keys.clear();
    std::unordered_set<std::string> queued;
    for (const auto& leaf : leaves) {
      std::string key = CanonicalKey(*leaf);
      if (leaf_cache_.count(key) > 0 || !queued.insert(key).second) continue;
      pending.push_back(leaf);
      pending_keys.push_back(std::move(key));
    }
  };
  {
    // Warm path: everything cached already — one shared lock, no DB work.
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    collect_pending();
    if (pending.empty()) return Status::OK();
  }
  // Cold path: re-derive the pending set under the unique lock (a racing
  // prefetch may have landed some of these) and run the bulk pass while
  // holding it, so each leaf is queried exactly once engine-wide.
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  collect_pending();
  if (pending.empty()) return Status::OK();

  std::vector<std::unique_ptr<KeyBitmap>> bitmaps;
  bitmaps.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    bitmaps.push_back(std::make_unique<KeyBitmap>(dict_.size(), task_pool(),
                                                  task_pool_threads()));
  }
  HYPRE_RETURN_NOT_OK(executor_.ForEachDenseIdMulti(
      base_query_, key_column_, dict_, pending,
      [&](size_t p, uint32_t id) { bitmaps[p]->Set(id); }));
  // One leaf query per distinct leaf, even though the bulk pass ran the base
  // query only once (the statistics contract in the header).
  NoteLeafQueries(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    leaf_cache_.emplace(std::move(pending_keys[i]),
                        LeafEntry{pending[i], std::move(bitmaps[i])});
  }
  return Status::OK();
}

Result<KeyBitmap> ProbeEngine::Eval(const reldb::ExprPtr& expr) const {
  switch (expr->kind()) {
    case ExprKind::kAnd: {
      const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
      bool first = true;
      KeyBitmap acc;
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(KeyBitmap child_bits, Eval(child));
        if (first) {
          acc = std::move(child_bits);
          first = false;
        } else {
          acc.AndWith(child_bits);
        }
        if (acc.None()) break;  // short-circuit
      }
      return acc;
    }
    case ExprKind::kOr: {
      const auto& nary = static_cast<const reldb::NaryExpr&>(*expr);
      KeyBitmap acc(dict_.size());
      for (const auto& child : nary.children()) {
        HYPRE_ASSIGN_OR_RETURN(KeyBitmap child_bits, Eval(child));
        acc.OrWith(child_bits);
      }
      return acc;
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const reldb::NotExpr&>(*expr);
      HYPRE_ASSIGN_OR_RETURN(KeyBitmap child_bits, Eval(n.child()));
      child_bits.FlipAll();  // complement against the key universe
      // The flip resurrects tombstoned ids; mask them back out.
      if (num_tombstones_ > 0) child_bits.AndWith(universe_);
      return child_bits;
    }
    default: {
      HYPRE_ASSIGN_OR_RETURN(const KeyBitmap* leaf, LeafBitmap(expr));
      KeyBitmap bits = *leaf;
      // Cached leaves may carry stale bits at tombstoned ids (scrubbed only
      // on recycle or compaction); the live mask hides them.
      if (num_tombstones_ > 0) bits.AndWith(universe_);
      return bits;
    }
  }
}

Result<KeyBitmap> ProbeEngine::EvalBitmap(
    const reldb::ExprPtr& predicate) const {
  HYPRE_RETURN_NOT_OK(EnsureUniverse());
  if (!predicate) return universe_;
  return Eval(predicate);
}

Result<size_t> ProbeEngine::CountMatching(
    const reldb::ExprPtr& predicate) const {
  std::string key = predicate ? CanonicalKey(*predicate) : "";
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = count_cache_.find(key);
    if (it != count_cache_.end()) {
      NoteProbesAnswered(1);
      return it->second;
    }
  }
  // Eval takes its own locks per leaf; never hold cache_mu_ across it.
  HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, EvalBitmap(predicate));
  size_t count = bits.Count();
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  // try_emplace: a racing thread may have memoized the same (deterministic)
  // count in the window — first writer wins, both answers agree.
  count_cache_.try_emplace(std::move(key), count);
  return count;
}

std::vector<reldb::Value> ProbeEngine::KeysOf(const KeyBitmap& bits) const {
  // The bitmap must come from this engine: its bits are dense key ids.
  // Smaller bitmaps are fine — ids are stable under tail growth, and the
  // empty-combination degenerate is a 0-bit bitmap — but a LARGER one can
  // only be foreign (or predate an epoch compaction that shrank the id
  // space), so its ids would name the wrong keys.
  assert(bits.num_bits() <= dict_.size());
  // Collect the set ids, then order them by their precomputed rank in the
  // Value total order — O(count log count) instead of a full universe scan
  // per call (KeysOf sits in the Top-K record-walk hot loop). Bits past the
  // universe (foreign bitmaps) are ignored, as the old scan did.
  std::vector<uint32_t> ranks;
  bits.ForEachSet([&](uint32_t id) {
    if (id < rank_of_id_.size()) ranks.push_back(rank_of_id_[id]);
  });
  std::sort(ranks.begin(), ranks.end());
  std::vector<reldb::Value> out;
  out.reserve(ranks.size());
  for (uint32_t rank : ranks) out.push_back(dict_.value(sorted_ids_[rank]));
  return out;
}

Result<std::vector<reldb::Value>> ProbeEngine::MatchingKeys(
    const reldb::ExprPtr& predicate) const {
  HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, EvalBitmap(predicate));
  return KeysOf(bits);
}

}  // namespace core
}  // namespace hypre
