#include "hypre/skyline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace hypre {
namespace core {

namespace {

Result<std::vector<size_t>> ResolveColumns(
    const reldb::Table& table,
    const std::vector<AttributePreference>& prefs) {
  if (prefs.empty()) {
    return Status::InvalidArgument("skyline requires at least one preference");
  }
  std::vector<size_t> cols;
  cols.reserve(prefs.size());
  for (const auto& pref : prefs) {
    HYPRE_ASSIGN_OR_RETURN(size_t col,
                           table.schema().ResolveColumn(pref.column));
    cols.push_back(col);
  }
  return cols;
}

/// Numeric view with NULL mapped to the worst value for the direction.
double ValueFor(const reldb::Value& v, AttributePreference::Direction dir) {
  if (v.is_null() || !v.is_numeric()) {
    return dir == AttributePreference::Direction::kMin
               ? std::numeric_limits<double>::infinity()
               : -std::numeric_limits<double>::infinity();
  }
  return v.NumericValue();
}

/// "Goodness" comparison on one attribute: negative if a is better.
int CompareOnAttribute(double a, double b,
                       AttributePreference::Direction dir) {
  if (a == b) return 0;
  bool a_better = dir == AttributePreference::Direction::kMin ? a < b : a > b;
  return a_better ? -1 : 1;
}

}  // namespace

Result<bool> Dominates(const reldb::Table& table, reldb::RowId a,
                       reldb::RowId b,
                       const std::vector<AttributePreference>& prefs) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                         ResolveColumns(table, prefs));
  bool strictly_better = false;
  for (size_t i = 0; i < prefs.size(); ++i) {
    double va = ValueFor(table.row(a)[cols[i]], prefs[i].direction);
    double vb = ValueFor(table.row(b)[cols[i]], prefs[i].direction);
    int cmp = CompareOnAttribute(va, vb, prefs[i].direction);
    if (cmp > 0) return false;  // worse on some attribute: no domination
    if (cmp < 0) strictly_better = true;
  }
  return strictly_better;
}

Result<std::vector<reldb::RowId>> BlockNestedLoopSkyline(
    const reldb::Table& table,
    const std::vector<AttributePreference>& prefs) {
  return BlockNestedLoopSkyline(
      table, prefs, KeyBitmap(table.num_rows(), /*all_set=*/true));
}

Result<std::vector<reldb::RowId>> BlockNestedLoopSkyline(
    const reldb::Table& table, const std::vector<AttributePreference>& prefs,
    const KeyBitmap& candidates) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                         ResolveColumns(table, prefs));
  if (candidates.num_bits() != table.num_rows()) {
    return Status::InvalidArgument(StringFormat(
        "candidate bitmap has %zu bits for a table of %zu rows",
        candidates.num_bits(), table.num_rows()));
  }

  auto dominates = [&](reldb::RowId a, reldb::RowId b) {
    bool strictly = false;
    for (size_t i = 0; i < prefs.size(); ++i) {
      double va = ValueFor(table.row(a)[cols[i]], prefs[i].direction);
      double vb = ValueFor(table.row(b)[cols[i]], prefs[i].direction);
      int cmp = CompareOnAttribute(va, vb, prefs[i].direction);
      if (cmp > 0) return false;
      if (cmp < 0) strictly = true;
    }
    return strictly;
  };

  // Block-nested-loop with an in-memory window (the window IS memory here).
  std::vector<reldb::RowId> window;
  for (reldb::RowId candidate = 0; candidate < table.num_rows();
       ++candidate) {
    if (!candidates.Test(candidate)) continue;
    if (table.is_deleted(candidate)) continue;  // tombstones never compete
    bool dominated = false;
    for (size_t w = 0; w < window.size();) {
      if (dominates(window[w], candidate)) {
        dominated = true;
        break;
      }
      if (dominates(candidate, window[w])) {
        window[w] = window.back();
        window.pop_back();
        continue;  // same slot now holds a new row
      }
      ++w;
    }
    if (!dominated) window.push_back(candidate);
  }
  std::sort(window.begin(), window.end());
  return window;
}

Result<std::vector<reldb::RowId>> RankSkylineByPriority(
    const reldb::Table& table, const std::vector<reldb::RowId>& skyline,
    const std::vector<AttributePreference>& prefs) {
  HYPRE_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                         ResolveColumns(table, prefs));
  if (skyline.empty()) return std::vector<reldb::RowId>{};

  // Min-max normalize each attribute over the skyline rows.
  std::vector<double> lo(prefs.size(),
                         std::numeric_limits<double>::infinity());
  std::vector<double> hi(prefs.size(),
                         -std::numeric_limits<double>::infinity());
  for (reldb::RowId id : skyline) {
    for (size_t i = 0; i < prefs.size(); ++i) {
      double v = ValueFor(table.row(id)[cols[i]], prefs[i].direction);
      if (std::isfinite(v)) {
        lo[i] = std::min(lo[i], v);
        hi[i] = std::max(hi[i], v);
      }
    }
  }
  double total_weight = 0.0;
  for (const auto& pref : prefs) total_weight += std::max(pref.weight, 0.0);
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("all preference weights are non-positive");
  }

  auto score = [&](reldb::RowId id) {
    double acc = 0.0;
    for (size_t i = 0; i < prefs.size(); ++i) {
      double v = ValueFor(table.row(id)[cols[i]], prefs[i].direction);
      double span = hi[i] - lo[i];
      double normalized =
          span > 0 && std::isfinite(v) ? (v - lo[i]) / span : 0.5;
      if (prefs[i].direction == AttributePreference::Direction::kMin) {
        normalized = 1.0 - normalized;  // smaller is better
      }
      acc += std::max(prefs[i].weight, 0.0) / total_weight * normalized;
    }
    return acc;
  };

  std::vector<reldb::RowId> out = skyline;
  std::stable_sort(out.begin(), out.end(),
                   [&](reldb::RowId a, reldb::RowId b) {
                     return score(a) > score(b);
                   });
  return out;
}

}  // namespace core
}  // namespace hypre
