// Incremental universe maintenance: the delta/epoch subsystem.
//
// The probe engine interns the base query's key universe once and caches a
// bitmap per leaf predicate. Without maintenance, any append or delete on a
// base table silently invalidates all of that and forces a full engine
// rebuild. DeltaEngine keeps the interned state correct under mutations at
// a cost proportional to the delta, not the database:
//
//  * Journal consumption. Tables owned by a Database record every append
//    and tombstone delete into the database's MutationJournal
//    (src/reldb/mutation_journal.h). Refresh() replays the journal suffix
//    since its cursor; mutations on tables outside the base query are
//    skipped without an epoch change.
//  * Append pass. New joined tuples are exactly the tuples involving at
//    least one appended row, so one watermark-restricted executor pass per
//    affected slot (Executor::ForEachAppendedMatch) evaluates the delta
//    rows against every cached leaf. New keys get dense ids — recycled from
//    tombstoned ids when available (stale leaf bits scrubbed first),
//    otherwise tail-grown with every cached bitmap resized once. Appends
//    only ever ADD memberships, so re-emitted tuples are harmless.
//  * Delete pass. A tombstoned row names the keys whose memberships may
//    have lost a supporting tuple: rows of the key column's own table carry
//    their key directly; rows of joined tables are re-joined in their
//    pre-delete state (Executor::ForEachMatchOfRow with the slice's deleted
//    rows made visible). Each affected key is then recomputed exactly with
//    one key-pinned query — alive keys get their leaf bits set/cleared
//    per-leaf, dead keys leave the universe: their live-mask bit clears,
//    their dictionary mapping is forgotten, and their dense id joins the
//    free list. Stale leaf bits at tombstoned ids are NOT scrubbed eagerly;
//    every probe path ANDs the live mask instead (ProbeEngine::Eval,
//    CombinationProber::Count/BitsInto, BatchProber's compiled mask group).
//  * Epoch compaction. Once tombstoned ids exceed
//    DeltaOptions::rebuild_tombstone_ratio of the universe, Refresh falls
//    back to a full epoch rebuild (clear + lazy re-intern) — the compaction
//    path that keeps the dense-id space tight.
//
// Every applied Refresh bumps the engine epoch. CombinationProber (and
// through it BatchProber and all six algorithms) revalidates its cached
// per-preference bitmaps against the epoch, so algorithm runs started after
// a Refresh see one consistent snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "hypre/probe_engine.h"
#include "reldb/mutation_journal.h"

namespace hypre {
namespace core {

/// \brief Tuning knobs for the delta subsystem.
struct DeltaOptions {
  /// Tombstoned fraction of the universe above which Refresh() compacts via
  /// a full epoch rebuild instead of keeping masked tombstones around.
  double rebuild_tombstone_ratio = 0.5;
};

/// \brief Consumes the database's mutation journal and patches its owning
/// ProbeEngine's interned universe, leaf-bitmap cache, and key order in
/// place. Owned by (and friend of) ProbeEngine; drive it through
/// ProbeEngine::Refresh().
class DeltaEngine {
 public:
  struct Stats {
    uint64_t epoch = 0;           // == ProbeEngine::epoch()
    uint64_t journal_cursor = 0;  // next journal sequence to consume
    size_t appends_seen = 0;      // journal appends on base-query tables
    size_t deletes_seen = 0;      // journal deletes on base-query tables
    size_t keys_added = 0;        // tail-grown dense ids
    size_t keys_recycled = 0;     // tombstoned ids rebound to new keys
    size_t keys_tombstoned = 0;   // keys removed from the universe
    size_t keys_recomputed = 0;   // affected keys re-evaluated exactly
    size_t incremental_refreshes = 0;
    size_t full_rebuilds = 0;  // epoch compactions (threshold or NULL key)
    // Refresh requests that found readers holding epoch pins: the journal
    // suffix was left in place and applies when the pins drain (see the
    // epoch-pin section in probe_engine.h).
    size_t refreshes_deferred = 0;
  };

  DeltaEngine(ProbeEngine* engine, DeltaOptions options)
      : engine_(engine), options_(options) {}

  /// \brief See ProbeEngine::Refresh().
  Result<uint64_t> Refresh();

  /// \brief Called by the engine when the universe is (re)interned: the
  /// journal prefix is baked into the fresh scan, so consumption restarts
  /// at `journal_sequence`.
  void OnUniverseInterned(uint64_t journal_sequence) {
    stats_.journal_cursor = journal_sequence;
  }

  /// \brief Called by the engine after a snapshot image restore: the image
  /// baked in everything up to `journal_cursor` at epoch `epoch`, so
  /// consumption resumes there with the epoch counter carried over.
  void OnSnapshotRestored(uint64_t journal_cursor, uint64_t epoch) {
    stats_.journal_cursor = journal_cursor;
    stats_.epoch = epoch;
  }

  const Stats& stats() const { return stats_; }
  void set_options(const DeltaOptions& options) { options_ = options; }
  const DeltaOptions& options() const { return options_; }

  /// \brief Called by ProbeEngine (under its refresh mutex) when a Refresh
  /// found readers pinned and deferred the journal suffix.
  void NoteRefreshDeferred() { ++stats_.refreshes_deferred; }

 private:
  /// Collects the cached leaves in a stable order (exprs + bitmap slots).
  void SnapshotLeaves(std::vector<reldb::ExprPtr>* exprs,
                      std::vector<KeyBitmap*>* bits) const;
  /// Interns `key` (recycling a tombstoned id when possible) or returns its
  /// existing id.
  uint32_t InternKey(const reldb::Value& key);
  Status ApplyAppends(
      const std::unordered_map<std::string, reldb::RowId>& first_new_row,
      const std::vector<reldb::ExprPtr>& leaf_exprs,
      const std::vector<KeyBitmap*>& leaf_bits);
  Status ApplyDeletes(
      const std::unordered_map<std::string, std::vector<reldb::RowId>>&
          deleted_rows,
      const std::vector<reldb::ExprPtr>& leaf_exprs,
      const std::vector<KeyBitmap*>& leaf_bits, bool* needs_rebuild);
  /// Exact re-evaluation of one key against the current table state.
  Status RecomputeKey(const reldb::Value& key, uint32_t id,
                      const std::vector<reldb::ExprPtr>& leaf_exprs,
                      const std::vector<KeyBitmap*>& leaf_bits);
  /// Epoch compaction: drops all interned state; the next probe re-interns
  /// lazily against the current table state.
  void FullRebuild();

  ProbeEngine* engine_;
  DeltaOptions options_;
  Stats stats_;
  // True once ApplyAppends grew or recycled ids (key order must be rebuilt).
  bool key_order_dirty_ = false;
};

}  // namespace core
}  // namespace hypre
