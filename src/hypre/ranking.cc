#include "hypre/ranking.h"

#include <algorithm>

#include "hypre/intensity.h"

namespace hypre {
namespace core {

void SortRanked(std::vector<RankedTuple>* tuples) {
  std::stable_sort(tuples->begin(), tuples->end(),
                   [](const RankedTuple& a, const RankedTuple& b) {
                     if (a.intensity != b.intensity) {
                       return a.intensity > b.intensity;
                     }
                     return a.key.Compare(b.key) < 0;
                   });
}

Result<std::vector<RankedTuple>> ScoreTuplesByPreferences(
    const QueryEnhancer& enhancer,
    const std::vector<PreferenceAtom>& preferences) {
  // For each preference, probe its key bitmap, then fold f_and per key over
  // dense score/matched arrays (one slot per universe key).
  const ProbeEngine& engine = enhancer.probe_engine();
  HYPRE_ASSIGN_OR_RETURN(size_t universe, engine.UniverseSize());
  std::vector<double> score(universe, 0.0);
  std::vector<char> matched(universe, 0);
  for (const auto& pref : preferences) {
    HYPRE_ASSIGN_OR_RETURN(KeyBitmap bits, engine.EvalBitmap(pref.expr));
    bits.ForEachSet([&](uint32_t id) {
      if (!matched[id]) {
        matched[id] = 1;
        score[id] = pref.intensity;
      } else {
        score[id] = CombineAnd(score[id], pref.intensity);
      }
    });
  }
  std::vector<RankedTuple> out;
  for (uint32_t id = 0; id < universe; ++id) {
    if (matched[id]) out.push_back({engine.KeyAt(id), score[id]});
  }
  SortRanked(&out);
  return out;
}

}  // namespace core
}  // namespace hypre
