#include "hypre/ranking.h"

#include <algorithm>
#include <unordered_map>

#include "hypre/intensity.h"

namespace hypre {
namespace core {

void SortRanked(std::vector<RankedTuple>* tuples) {
  std::stable_sort(tuples->begin(), tuples->end(),
                   [](const RankedTuple& a, const RankedTuple& b) {
                     if (a.intensity != b.intensity) {
                       return a.intensity > b.intensity;
                     }
                     return a.key.Compare(b.key) < 0;
                   });
}

Result<std::vector<RankedTuple>> ScoreTuplesByPreferences(
    const QueryEnhancer& enhancer,
    const std::vector<PreferenceAtom>& preferences) {
  // For each preference, collect its matching keys, then fold f_and per key.
  std::unordered_map<reldb::Value, double, reldb::ValueHash> scores;
  for (const auto& pref : preferences) {
    HYPRE_ASSIGN_OR_RETURN(std::vector<reldb::Value> keys,
                           enhancer.MatchingKeys(pref.expr));
    for (const auto& key : keys) {
      auto [it, inserted] = scores.emplace(key, pref.intensity);
      if (!inserted) {
        it->second = CombineAnd(it->second, pref.intensity);
      }
    }
  }
  std::vector<RankedTuple> out;
  out.reserve(scores.size());
  for (const auto& [key, intensity] : scores) {
    out.push_back({key, intensity});
  }
  SortRanked(&out);
  return out;
}

}  // namespace core
}  // namespace hypre
