#include "hypre/persistence.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace hypre {
namespace core {

namespace {

constexpr const char* kHeader = "hypre-graph v1";

/// Escapes newlines and backslashes so predicates survive the line format.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::ParseError("dangling escape in predicate");
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        return Status::ParseError("unknown escape in predicate");
    }
  }
  return out;
}

Result<Provenance> ParseProvenance(const std::string& s) {
  if (s == "user") return Provenance::kUser;
  if (s == "computed") return Provenance::kComputed;
  if (s == "default") return Provenance::kDefault;
  if (s == "none") return Provenance::kUser;  // placeholder for no intensity
  return Status::ParseError("unknown provenance '" + s + "'");
}

Result<EdgeLabel> ParseEdgeLabel(const std::string& s) {
  if (s == "PREFERS") return EdgeLabel::kPrefers;
  if (s == "CYCLE") return EdgeLabel::kCycle;
  if (s == "DISCARD") return EdgeLabel::kDiscard;
  return Status::ParseError("unknown edge label '" + s + "'");
}

}  // namespace

Status SaveGraph(const HypreGraph& graph, std::ostream* out) {
  *out << kHeader << "\n";
  const graphdb::GraphStore& store = graph.store();
  store.ForEachNode([&](const graphdb::Node& node) {
    auto uid = graphdb::GetProperty(node.props, "uid");
    auto predicate = graphdb::GetProperty(node.props, "predicate");
    auto intensity = graph.NodeIntensity(node.id);
    auto provenance = graph.NodeProvenance(node.id);
    *out << "node " << node.id << " "
         << (uid ? uid->AsInt() : 0) << " "
         << (intensity
                 ? ProvenanceToString(provenance ? *provenance
                                                 : Provenance::kUser)
                 : "none")
         << " " << (intensity ? 1 : 0);
    if (intensity) {
      *out << " " << StringFormat("%.17g", *intensity);
    }
    *out << " " << Escape(predicate ? predicate->AsString() : "") << "\n";
  });
  store.ForEachEdge([&](const graphdb::Edge& edge) {
    auto intensity = graphdb::GetProperty(edge.props, "intensity");
    *out << "edge " << edge.src << " " << edge.dst << " " << edge.type << " "
         << StringFormat("%.17g",
                         intensity ? intensity->NumericValue() : 0.0)
         << "\n";
  });
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveGraphToFile(const HypreGraph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return SaveGraph(graph, &file);
}

Status LoadGraph(std::istream* in, HypreGraph* graph) {
  if (graph->num_nodes() != 0) {
    return Status::InvalidArgument("LoadGraph requires an empty graph");
  }
  // All-or-nothing: parse into a scratch graph and swap it in only on
  // success. A malformed line mid-file must not leave `graph` holding the
  // valid prefix — callers reasonably treat a non-OK load as "nothing
  // happened" and may retry into the same object.
  HypreGraph scratch(graph->config());
  std::string line;
  if (!std::getline(*in, line) || Trim(line) != kHeader) {
    return Status::ParseError("missing or unsupported header");
  }
  // Saved node id -> restored node id.
  std::map<graphdb::NodeId, graphdb::NodeId> id_map;
  size_t line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    std::string_view trimmed = TrimView(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    if (kind == "node") {
      uint64_t saved_id = 0;
      int64_t uid = 0;
      std::string provenance_text;
      int has_intensity = 0;
      fields >> saved_id >> uid >> provenance_text >> has_intensity;
      std::optional<double> intensity;
      if (has_intensity != 0) {
        double v = 0;
        fields >> v;
        intensity = v;
      }
      if (!fields) {
        return Status::ParseError(
            StringFormat("malformed node at line %zu", line_number));
      }
      std::string rest;
      std::getline(fields, rest);
      HYPRE_ASSIGN_OR_RETURN(std::string predicate, Unescape(Trim(rest)));
      HYPRE_ASSIGN_OR_RETURN(Provenance provenance,
                             ParseProvenance(provenance_text));
      HYPRE_ASSIGN_OR_RETURN(
          graphdb::NodeId restored,
          scratch.RestoreNode(uid, predicate, intensity, provenance));
      id_map[saved_id] = restored;
    } else if (kind == "edge") {
      uint64_t src = 0;
      uint64_t dst = 0;
      std::string label_text;
      double intensity = 0;
      fields >> src >> dst >> label_text >> intensity;
      if (!fields) {
        return Status::ParseError(
            StringFormat("malformed edge at line %zu", line_number));
      }
      auto src_it = id_map.find(src);
      auto dst_it = id_map.find(dst);
      if (src_it == id_map.end() || dst_it == id_map.end()) {
        return Status::ParseError(StringFormat(
            "edge references unknown node at line %zu", line_number));
      }
      HYPRE_ASSIGN_OR_RETURN(EdgeLabel label, ParseEdgeLabel(label_text));
      HYPRE_RETURN_NOT_OK(scratch
                              .RestoreEdge(src_it->second, dst_it->second,
                                           label, intensity)
                              .status());
    } else {
      return Status::ParseError(StringFormat(
          "unknown record '%s' at line %zu", kind.c_str(), line_number));
    }
  }
  *graph = std::move(scratch);
  return Status::OK();
}

Status LoadGraphFromFile(const std::string& path, HypreGraph* graph) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return LoadGraph(&file, graph);
}

}  // namespace core
}  // namespace hypre
