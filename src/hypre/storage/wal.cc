#include "hypre/storage/wal.h"

#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "hypre/storage/format.h"
#include "hypre/telemetry/registry.h"
#include "hypre/telemetry/trace.h"

namespace hypre {
namespace storage {

namespace {

constexpr char kWalMagic[8] = {'H', 'Y', 'W', 'A', 'L', '0', '0', '1'};
constexpr size_t kWalHeaderSize = 8 + 8 + 4;     // magic + base_seq + crc
constexpr size_t kRecordHeaderSize = 4 + 4 + 4;  // len + header_crc + payload_crc

std::string EncodeWalHeader(uint64_t base_seq) {
  BufferWriter w;
  w.PutRaw(kWalMagic, sizeof(kWalMagic));
  w.PutU64(base_seq);
  w.PutU32(Crc32(w.data()));
  return w.TakeData();
}

}  // namespace

std::string EncodeWalRecord(uint64_t seq, reldb::Mutation::Kind kind,
                            const std::string& table, reldb::RowId row_id,
                            const reldb::Row* row) {
  BufferWriter w;
  w.PutU64(seq);
  w.PutU8(kind == reldb::Mutation::Kind::kAppend ? 0 : 1);
  w.PutString(table);
  w.PutU64(row_id);
  if (kind == reldb::Mutation::Kind::kAppend) {
    w.PutU32(static_cast<uint32_t>(row->size()));
    for (const reldb::Value& v : *row) w.PutValue(v);
  }
  return w.TakeData();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Env* env,
                                                     const std::string& path,
                                                     uint64_t base_seq) {
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(path, /*truncate=*/true));
  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(file), path));
  HYPRE_RETURN_NOT_OK(writer->file_->Append(EncodeWalHeader(base_seq)));
  HYPRE_RETURN_NOT_OK(writer->Sync());
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Attach(Env* env,
                                                     const std::string& path,
                                                     uint64_t valid_size) {
  HYPRE_ASSIGN_OR_RETURN(uint64_t size, env->FileSize(path));
  if (size > valid_size) {
    // Cut off a torn tail before appending after it.
    HYPRE_RETURN_NOT_OK(env->TruncateFile(path, valid_size));
  } else if (size < valid_size) {
    return Status::Internal(StringFormat(
        "wal '%s': file shrank below its valid prefix (%llu < %llu bytes)",
        path.c_str(), (unsigned long long)size,
        (unsigned long long)valid_size));
  }
  HYPRE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), path));
}

Status WalWriter::AppendRecord(const std::string& payload) {
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(frame.data()));  // header crc protects the length field
  frame.PutU32(Crc32(payload));
  frame.PutRaw(payload.data(), payload.size());
  ++pending_records_;
  HYPRE_TELEMETRY_STMT(
      telemetry::MetricsRegistry::Global()
          .GetCounter("hypre_storage_wal_bytes_total", "storage",
                      "Framed bytes appended to the write-ahead log")
          ->Add(frame.data().size()));
  return file_->Append(frame.data());
}

Status WalWriter::Sync() {
  telemetry::TraceSpan span("storage", "wal_fsync");
#if HYPRE_TELEMETRY_ENABLED
  auto start = std::chrono::steady_clock::now();
#endif
  Status synced = file_->Sync();
  HYPRE_TELEMETRY_STMT(
      telemetry::MetricsRegistry::Global()
          .GetHistogram("hypre_storage_fsync_us", "storage",
                        "Microseconds per WAL fsync")
          ->Record(uint64_t(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
      telemetry::MetricsRegistry::Global()
          .GetHistogram("hypre_storage_group_commit_records", "storage",
                        "WAL records covered by one Sync group commit")
          ->Record(pending_records_));
  pending_records_ = 0;
  return synced;
}

namespace {

Result<WalRecord> DecodeWalRecord(const char* payload, size_t n,
                                  const std::string& context) {
  BufferReader r(payload, n, context);
  WalRecord rec;
  HYPRE_ASSIGN_OR_RETURN(rec.seq, r.ReadU64());
  HYPRE_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > 1) {
    return r.CorruptionError(
        StringFormat("unknown record kind %u", unsigned{kind}));
  }
  rec.kind = kind == 0 ? reldb::Mutation::Kind::kAppend
                       : reldb::Mutation::Kind::kDelete;
  HYPRE_ASSIGN_OR_RETURN(rec.table, r.ReadString());
  HYPRE_ASSIGN_OR_RETURN(rec.row_id, r.ReadU64());
  if (rec.kind == reldb::Mutation::Kind::kAppend) {
    HYPRE_ASSIGN_OR_RETURN(uint32_t num_cols, r.ReadU32());
    rec.row.reserve(num_cols);
    for (uint32_t i = 0; i < num_cols; ++i) {
      HYPRE_ASSIGN_OR_RETURN(reldb::Value v, r.ReadValue());
      rec.row.push_back(std::move(v));
    }
  }
  if (!r.AtEnd()) {
    return r.CorruptionError("trailing bytes after record payload");
  }
  return rec;
}

}  // namespace

Result<WalContents> ReadWal(Env* env, const std::string& path) {
  HYPRE_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));

  // Header. A wal file is only ever observed under its final name after its
  // header was written and synced (creation happens under a temp name or
  // before the matching snapshot is exposed), so a short or mismatched
  // header is corruption, not a torn tail.
  BufferReader header(data.data(),
                      data.size() < kWalHeaderSize ? data.size()
                                                   : kWalHeaderSize,
                      "wal '" + path + "' header");
  char magic[sizeof(kWalMagic)];
  HYPRE_RETURN_NOT_OK(header.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Internal("wal '" + path +
                            "': bad magic (not a wal file, or corrupted)");
  }
  WalContents out;
  HYPRE_ASSIGN_OR_RETURN(out.base_seq, header.ReadU64());
  HYPRE_ASSIGN_OR_RETURN(uint32_t header_crc, header.ReadU32());
  uint32_t expect = Crc32(data.data(), 8 + 8);
  if (header_crc != expect) {
    return Status::Internal(StringFormat(
        "wal '%s': header checksum mismatch (stored %08x, computed %08x)",
        path.c_str(), header_crc, expect));
  }

  uint64_t offset = kWalHeaderSize;
  uint64_t prev_seq = out.base_seq;
  while (offset < data.size()) {
    uint64_t remaining = data.size() - offset;
    if (remaining < kRecordHeaderSize) {
      // Torn tail: the record header itself was cut mid-write.
      break;
    }
    BufferReader rh(data.data() + offset, kRecordHeaderSize,
                    StringFormat("wal '%s' record header at byte %llu",
                                 path.c_str(), (unsigned long long)offset));
    HYPRE_ASSIGN_OR_RETURN(uint32_t len, rh.ReadU32());
    HYPRE_ASSIGN_OR_RETURN(uint32_t len_crc, rh.ReadU32());
    HYPRE_ASSIGN_OR_RETURN(uint32_t payload_crc, rh.ReadU32());
    uint32_t expect_len_crc = Crc32(data.data() + offset, 4);
    if (len_crc != expect_len_crc) {
      // The 12 header bytes are fully present, so they were once written
      // whole; a mismatch means they changed since. Fail closed.
      return Status::Internal(StringFormat(
          "wal '%s': record length checksum mismatch at byte %llu (stored "
          "%08x, computed %08x)",
          path.c_str(), (unsigned long long)offset, len_crc,
          expect_len_crc));
    }
    if (remaining - kRecordHeaderSize < len) {
      // Torn tail: payload cut mid-write.
      break;
    }
    const char* payload = data.data() + offset + kRecordHeaderSize;
    uint32_t expect_payload_crc = Crc32(payload, len);
    if (payload_crc != expect_payload_crc) {
      return Status::Internal(StringFormat(
          "wal '%s': record checksum mismatch at byte %llu (stored %08x, "
          "computed %08x)",
          path.c_str(), (unsigned long long)offset, payload_crc,
          expect_payload_crc));
    }
    HYPRE_ASSIGN_OR_RETURN(
        WalRecord rec,
        DecodeWalRecord(payload, len,
                        StringFormat("wal '%s' record at byte %llu",
                                     path.c_str(),
                                     (unsigned long long)offset)));
    if (rec.seq < prev_seq) {
      return Status::Internal(StringFormat(
          "wal '%s': record at byte %llu has sequence %llu below its "
          "predecessor %llu",
          path.c_str(), (unsigned long long)offset,
          (unsigned long long)rec.seq, (unsigned long long)prev_seq));
    }
    prev_seq = rec.seq;
    out.records.push_back(std::move(rec));
    offset += kRecordHeaderSize + len;
  }
  out.valid_size = offset;
  return out;
}

}  // namespace storage
}  // namespace hypre
