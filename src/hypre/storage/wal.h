// Write-ahead journal log: durable spill of MutationJournal segments.
//
// File layout:
//
//   [8B magic "HYWAL001"][u64 base_seq][u32 crc(magic+base)]    <- header
//   [u32 len][u32 header_crc][u32 payload_crc][payload]  ...    <- records
//
// where each record payload is
//
//   u64 seq, u8 kind (0=append 1=delete), string table, u64 row_id,
//   and for appends: u32 num_columns followed by that many Values.
//
// `base_seq` is the journal sequence the co-resident snapshot covers: every
// record in the file has seq >= base_seq, and replaying the file on top of
// that snapshot reproduces the journal suffix exactly (appends re-journal
// through Table::Append, so replayed sequence numbers line up).
//
// Tail semantics are the crux of crash safety. A record whose bytes run out
// before its declared end is a TORN TAIL — the process died mid-write, the
// record was never acknowledged, and recovery keeps the valid prefix. A
// record that is fully present but fails either checksum is CORRUPTION —
// those bytes were once written completely, so the file no longer says what
// it said at commit time — and the reader fails closed rather than guess.
// The header_crc exists precisely so a flipped bit in a length field cannot
// disguise corruption as a torn tail (the unprotected-length weakness of
// classic log formats).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hypre/storage/env.h"
#include "reldb/mutation_journal.h"
#include "reldb/schema.h"

namespace hypre {
namespace storage {

/// \brief One decoded WAL record.
struct WalRecord {
  uint64_t seq = 0;
  reldb::Mutation::Kind kind = reldb::Mutation::Kind::kAppend;
  std::string table;
  reldb::RowId row_id = 0;
  /// Row payload; meaningful for appends only.
  reldb::Row row;
};

/// \brief Everything a valid WAL (or valid prefix of one) contains.
struct WalContents {
  uint64_t base_seq = 0;
  std::vector<WalRecord> records;
  /// Size in bytes of the valid prefix (header + intact records). When the
  /// file carried a torn tail this is smaller than the file; re-attaching a
  /// writer first truncates to this size.
  uint64_t valid_size = 0;
};

/// \brief Serializes one mutation into a record payload. For appends `row`
/// must point at the row's values; for deletes it may be null.
std::string EncodeWalRecord(uint64_t seq, reldb::Mutation::Kind kind,
                            const std::string& table, reldb::RowId row_id,
                            const reldb::Row* row);

/// \brief Appends framed records to a WAL file through an Env.
class WalWriter {
 public:
  /// \brief Creates `path` fresh (truncating), writes + syncs the header.
  static Result<std::unique_ptr<WalWriter>> Create(Env* env,
                                                   const std::string& path,
                                                   uint64_t base_seq);

  /// \brief Re-attaches to an existing WAL whose valid prefix is
  /// `valid_size` bytes (from ReadWal); any torn tail beyond it is cut off
  /// before appending resumes.
  static Result<std::unique_ptr<WalWriter>> Attach(Env* env,
                                                   const std::string& path,
                                                   uint64_t valid_size);

  /// \brief Appends one framed record (no sync).
  Status AppendRecord(const std::string& payload);

  /// \brief Durably flushes all appended records. Each call is one group
  /// commit: telemetry records how many appended records it covered and the
  /// fsync latency.
  Status Sync();

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  // Records appended since the last Sync — the group-commit batch size.
  size_t pending_records_ = 0;
};

/// \brief Reads and validates a WAL file. Returns the decoded records of
/// the valid prefix; fails closed on header corruption or on any record
/// that is fully present but fails a checksum.
Result<WalContents> ReadWal(Env* env, const std::string& path);

}  // namespace storage
}  // namespace hypre
