// storage::Env — the file-system seam under the durable storage layer.
//
// Every byte the snapshot writer and the write-ahead log touch goes through
// this interface, for two reasons:
//
//  1. Crash-safe write discipline lives in ONE place. Snapshots are written
//     to a temp file, Sync()ed, and RenameFile()d over the live name, so a
//     reader never observes a half-written snapshot; WAL appends are
//     Sync()ed at commit points. PosixEnv implements the fsync/rename
//     contract with real file descriptors (including a best-effort
//     directory fsync after rename, so the rename itself is durable).
//
//  2. Faults are injectable. FaultInjectionEnv wraps any Env and can cut a
//     file at byte N, flip a bit, fail a write or an fsync, and then
//     simulate the process dying (every subsequent operation fails). The
//     crash-recovery differential test drives the whole storage layer
//     through it, once per injection point, and asserts that recovery from
//     the surviving bytes either reproduces the committed state exactly or
//     fails closed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hypre {
namespace storage {

/// \brief An append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  /// \brief Durably flushes everything appended so far (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// \brief File-system operations the storage layer needs. Paths are plain
/// file-system paths; errors carry the path (and offset where meaningful).
class Env {
 public:
  virtual ~Env() = default;

  /// \brief The process-wide POSIX environment.
  static Env* Default();

  /// \brief Opens `path` for writing. `truncate` starts fresh; otherwise
  /// appends to existing content (the WAL re-attach path).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// \brief Reads the whole file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// \brief Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;

  /// \brief Truncates `path` to `size` bytes (discarding a torn WAL tail
  /// before re-attaching a writer; also the test harness's crash scissors).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// \brief One scheduled fault.
struct FaultPlan {
  enum class Kind {
    kNone,
    /// Write calls succeed until the file's cumulative written size would
    /// exceed `byte_offset`; the write is cut there and the env "crashes".
    kTruncateWriteAt,
    /// The write covering `byte_offset` flips the lowest bit of that byte
    /// and carries on silently (latent corruption reaching the disk).
    kFlipBitAt,
    /// The write covering `byte_offset` fails outright (clean error).
    kFailWriteAt,
    /// The next Sync() on a matching file fails (and the env crashes, so
    /// nothing after the failed fsync can be observed as durable).
    kFailSync,
  };
  Kind kind = Kind::kNone;
  /// Byte offset within the matching file's write stream.
  uint64_t byte_offset = 0;
  /// Substring of the path the fault applies to (empty = every file).
  std::string path_substring;
};

/// \brief Env wrapper that injects one fault, then optionally simulates the
/// process dying (all later operations fail with kInternal "crashed").
/// Reads pass through untouched — recovery is always run on a clean env
/// against whatever bytes survived.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  void set_plan(FaultPlan plan) {
    plan_ = plan;
    fired_ = false;
    crashed_ = false;
  }
  bool fault_fired() const { return fired_; }
  bool crashed() const { return crashed_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

 private:
  friend class FaultyWritableFile;

  bool Matches(const std::string& path) const {
    return plan_.path_substring.empty() ||
           path.find(plan_.path_substring) != std::string::npos;
  }
  Status CrashedStatus() const {
    return Status::Internal("storage env crashed (fault injection)");
  }

  Env* base_;
  FaultPlan plan_;
  bool fired_ = false;
  bool crashed_ = false;
};

}  // namespace storage
}  // namespace hypre
